# Tier-1 gate: everything a PR must keep green.
.PHONY: tier1
tier1: lint
	go build ./...
	go test ./...
	go test -race ./internal/gemm ./internal/conv ./internal/par ./internal/serve ./internal/obs ./internal/telemetry ./internal/planner ./internal/analysis/...

# Static analysis: the stock vet suite plus this repo's analyzers
# (spanend, arenaput, errcmp, ctxbg, rawgo, obsstop, lockheld,
# hotalloc, atomicmix, wallclock, bareignore — see internal/analysis).
# cmd/lint re-execs itself as go vet's -vettool, so one invocation
# runs everything.
.PHONY: lint
lint:
	go vet ./...
	go run ./cmd/lint ./...

# Machine-readable lint: same suite, findings as a JSON array on
# stdout (file/line/col/analyzer/message), non-zero exit when any
# finding survives suppression.
.PHONY: lint-json
lint-json:
	go run ./cmd/lint -json ./...

# Kernel microbenchmarks: 5 repetitions of the GEMM and convolution
# benches, summarised into BENCH_kernels.json (ns/op medians plus any
# GFLOPS metrics). Compare runs with benchstat if available.
.PHONY: bench-kernels
bench-kernels:
	go test ./internal/gemm -run '^$$' -bench 'BenchmarkBlockedGEMM|BenchmarkGEMM|BenchmarkCGEMM' -count=5 -timeout 60m | tee bench_kernels.txt
	go test ./internal/conv -run '^$$' -bench 'BenchmarkConvForward' -count=5 -timeout 60m | tee -a bench_kernels.txt
	go run ./cmd/benchjson -in bench_kernels.txt -out BENCH_kernels.json

.PHONY: bench-kernels-quick
bench-kernels-quick:
	go test ./internal/gemm -run '^$$' -bench 'BenchmarkBlockedGEMM' -count=3 -timeout 30m

# Re-run the kernel benchmarks and diff the medians against the
# committed BENCH_kernels.json. Exits non-zero if any benchmark's
# new/old ns ratio exceeds the -regress threshold; benchmarks that are
# new or removed are reported but never fail the run. Refresh the
# snapshot itself with `make bench-kernels`.
.PHONY: bench-kernels-compare
bench-kernels-compare:
	go test ./internal/gemm -run '^$$' -bench 'BenchmarkBlockedGEMM|BenchmarkGEMM|BenchmarkCGEMM' -count=5 -timeout 60m | tee bench_kernels_new.txt
	go test ./internal/conv -run '^$$' -bench 'BenchmarkConvForward' -count=5 -timeout 60m | tee -a bench_kernels_new.txt
	go run ./cmd/benchjson -in bench_kernels_new.txt -compare BENCH_kernels.json -regress 1.15

# Planner decision-quality snapshot: decision latency (cold + cached)
# and the autotuned-vs-best-fixed ratio over the five Figure 3 sweeps
# (the "ratio" metric; 1.0 = always matches the per-cell winner),
# summarised into BENCH_planner.json.
.PHONY: bench-planner
bench-planner:
	go test ./internal/planner -run '^$$' -bench 'BenchmarkPlanner' -count=5 -timeout 30m | tee bench_planner.txt
	go run ./cmd/benchjson -in bench_planner.txt -note "planner decision quality and latency (medians over -count runs)" -out BENCH_planner.json

# Re-run the planner benchmarks and diff against the committed
# snapshot; exits non-zero past the -regress threshold (this gates the
# decision-quality ratio as well as the latencies).
.PHONY: bench-planner-compare
bench-planner-compare:
	go test ./internal/planner -run '^$$' -bench 'BenchmarkPlanner' -count=5 -timeout 30m | tee bench_planner_new.txt
	go run ./cmd/benchjson -in bench_planner_new.txt -compare BENCH_planner.json -regress 1.15

# Serving-path microbenchmarks: the dynamic batcher vs the batch=1
# baseline (wall cost of the serving machinery plus the simulated
# per-image GPU cost as sim_us_per_img), and the admission-control
# rejection fast path. Summarised into BENCH_serve.json.
.PHONY: serve-bench
serve-bench:
	go test ./internal/serve -run '^$$' -bench 'BenchmarkServe|BenchmarkSubmitReject|BenchmarkFleet' -count=5 -timeout 30m | tee bench_serve.txt
	go run ./cmd/benchjson -in bench_serve.txt -note "serving-path benchmark snapshot (medians over -count runs)" -out BENCH_serve.json
