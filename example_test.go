package gpucnn_test

import (
	"fmt"

	"gpucnn"
)

// Measure one implementation on one layer shape and inspect the
// simulated results.
func ExampleMeasure() {
	cfg := gpucnn.Config{Batch: 64, Input: 128, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
	cell := gpucnn.Measure(gpucnn.NewFbfft(), cfg)
	fmt.Println("ok:", cell.Ok())
	fmt.Println("config:", cell.Cfg)
	// Output:
	// ok: true
	// config: (64,128,64,11,1)
}

// Shape limitations surface as non-Ok cells, the way the paper plots
// missing points.
func ExampleEngine_supports() {
	strided := gpucnn.Config{Batch: 64, Input: 64, Channels: 3, Filters: 64, Kernel: 5, Stride: 2}
	for _, e := range gpucnn.Engines() {
		if e.Strategy() == gpucnn.FFT {
			fmt.Println(e.Name(), "supports stride 2:", e.Supports(strided) == nil)
		}
	}
	// Output:
	// Theano-fft supports stride 2: false
	// fbfft supports stride 2: false
}

// Run a real convolution while the device model profiles it.
func ExampleNewDevice() {
	cfg := gpucnn.Config{Batch: 4, Input: 12, Channels: 2, Filters: 4, Kernel: 3, Stride: 1}
	dev := gpucnn.NewDevice(gpucnn.TeslaK40c())
	plan, err := gpucnn.NewCuDNN().Plan(dev, cfg)
	if err != nil {
		panic(err)
	}
	defer plan.Release()

	r := gpucnn.NewRNG(1)
	x := gpucnn.NewTensor(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w := gpucnn.NewTensor(cfg.FilterShape()...)
	w.FillUniform(r, -1, 1)
	y := gpucnn.NewTensor(cfg.OutputShape()...)
	if err := plan.Forward(x, w, y); err != nil {
		panic(err)
	}
	fmt.Println("output shape:", y.Shape())
	fmt.Println("clock advanced:", dev.Elapsed() > 0)
	// Output:
	// output shape: [4 4 10 10]
	// clock advanced: true
}

// The Auto extension applies the paper's guidance per layer shape.
func ExampleNewAuto() {
	auto := gpucnn.NewAuto(0)
	large := gpucnn.BaseConfig() // kernel 11
	small := gpucnn.BaseConfig()
	small.Kernel = 3
	fmt.Println("large kernels supported:", auto.Supports(large) == nil)
	fmt.Println("small kernels supported:", auto.Supports(small) == nil)
	// Output:
	// large kernels supported: true
	// small kernels supported: true
}
