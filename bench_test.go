package gpucnn

import (
	"testing"

	"gpucnn/internal/bench"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workload"
)

// One testing.B benchmark per table/figure of the paper. Each
// benchmark regenerates its experiment once per iteration; custom
// metrics expose the headline quantity of the corresponding figure
// (simulated milliseconds, shares, megabytes), so `go test -bench=.`
// doubles as the reproduction run.

// BenchmarkFigure2ModelBreakdown regenerates Figure 2 and reports each
// model's convolution share.
func BenchmarkFigure2ModelBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		breakdowns := bench.Figure2()
		if i == 0 {
			for _, mb := range breakdowns {
				b.ReportMetric(mb.ConvShare*100, mb.Model+"_conv_%")
			}
		}
	}
}

func benchSweep(b *testing.B, sweep string) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure3(sweep)
		if i == 0 {
			// Report the base-row fbfft and cuDNN times as the
			// figure's headline series points.
			for _, row := range rows {
				if row.Value == workload.SweptValue(sweep, workload.Base()) {
					if c, ok := row.CellFor("fbfft"); ok && c.Ok() {
						b.ReportMetric(float64(c.Time.Microseconds())/1000, "fbfft_ms")
					}
					if c, ok := row.CellFor("cuDNN"); ok && c.Ok() {
						b.ReportMetric(float64(c.Time.Microseconds())/1000, "cuDNN_ms")
					}
				}
			}
		}
	}
}

// BenchmarkFigure3aBatchSweep regenerates Figure 3(a).
func BenchmarkFigure3aBatchSweep(b *testing.B) { benchSweep(b, "batch") }

// BenchmarkFigure3bInputSweep regenerates Figure 3(b).
func BenchmarkFigure3bInputSweep(b *testing.B) { benchSweep(b, "input") }

// BenchmarkFigure3cFilterSweep regenerates Figure 3(c).
func BenchmarkFigure3cFilterSweep(b *testing.B) { benchSweep(b, "filter") }

// BenchmarkFigure3dKernelSweep regenerates Figure 3(d).
func BenchmarkFigure3dKernelSweep(b *testing.B) { benchSweep(b, "kernel") }

// BenchmarkFigure3eStrideSweep regenerates Figure 3(e).
func BenchmarkFigure3eStrideSweep(b *testing.B) { benchSweep(b, "stride") }

// BenchmarkFigure4HotspotKernels regenerates Figure 4 and reports the
// unrolling implementations' GEMM shares.
func BenchmarkFigure4HotspotKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		shares := bench.Figure4()
		if i == 0 {
			for _, name := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM"} {
				b.ReportMetric(bench.GEMMShare(shares[name])*100, name+"_gemm_%")
			}
		}
	}
}

// BenchmarkFigure5MemoryUsage regenerates Figure 5 (batch panel) and
// reports the extreme peak-memory values.
func BenchmarkFigure5MemoryUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure5("batch")
		if i == 0 {
			last := rows[len(rows)-1]
			if c, ok := last.CellFor("fbfft"); ok && c.Ok() {
				b.ReportMetric(float64(c.PeakBytes>>20), "fbfft_peak_MB")
			}
			if c, ok := last.CellFor("cuda-convnet2"); ok && c.Ok() {
				b.ReportMetric(float64(c.PeakBytes>>20), "cc2_peak_MB")
			}
		}
	}
}

// BenchmarkFigure6GPUMetrics regenerates Figure 6 and reports the two
// occupancy extremes the paper highlights.
func BenchmarkFigure6GPUMetrics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure6()
		if i == 0 {
			for _, r := range rows {
				if r.Config != "Conv1" || !r.Cell.Ok() {
					continue
				}
				switch r.Impl {
				case "cuda-convnet2", "Theano-fft":
					b.ReportMetric(r.Cell.Metrics.AchievedOccupancy*100, r.Impl+"_occ_%")
				}
			}
		}
	}
}

// BenchmarkFigure7TransferOverhead regenerates Figure 7 and reports
// Theano-CorrMM's Conv2 spike.
func BenchmarkFigure7TransferOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Figure7()
		if i == 0 {
			for _, r := range rows {
				if r.Impl == "Theano-CorrMM" && r.Config == "Conv2" && r.Ok {
					b.ReportMetric(r.Share*100, "corrMM_conv2_transfer_%")
				}
			}
		}
	}
}

// BenchmarkTableIIResourceUsage regenerates Table II.
func BenchmarkTableIIResourceUsage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.TableII()
		if i == 0 && len(rows) != 7 {
			b.Fatalf("Table II has %d rows", len(rows))
		}
	}
}

// BenchmarkSingleIterationPerEngine times one simulated training
// iteration of the base configuration per engine — the cost of driving
// the simulator itself (host-side), not the simulated GPU time.
func BenchmarkSingleIterationPerEngine(b *testing.B) {
	for _, e := range impls.All() {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			dev := gpusim.New(gpusim.TeslaK40c())
			plan, err := e.Plan(dev, workload.Base())
			if err != nil {
				b.Fatal(err)
			}
			defer plan.Release()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := plan.Iteration(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRealConvolutionForward measures the host-side arithmetic
// throughput of the three strategies' actual compute paths on a small
// configuration — the functional layer under the simulation.
func BenchmarkRealConvolutionForward(b *testing.B) {
	cfg := Config{Batch: 8, Input: 32, Channels: 8, Filters: 16, Kernel: 5, Stride: 1}
	x, w := workload.SyntheticTensors(cfg, 1)
	y := tensor.New(cfg.OutputShape()...)
	for _, e := range impls.All() {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			if err := e.Supports(cfg); err != nil {
				b.Skip(err)
			}
			dev := gpusim.New(gpusim.TeslaK40c())
			plan, err := e.Plan(dev, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer plan.Release()
			b.SetBytes(cfg.InputBytes() + cfg.FilterBytes() + cfg.OutputBytes())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := plan.Forward(x, w, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLeNetTrainStep measures a real end-to-end training step.
func BenchmarkLeNetTrainStep(b *testing.B) {
	m := models.LeNet5(impls.NewCuDNN())
	dev := gpusim.New(gpusim.TeslaK40c())
	ctx := nn.NewContext(dev, true)
	opt := nn.NewSGD(0.03, 0.9, 0)
	x, labels := workload.SyntheticBatch(16, 1, 28, 10, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Net.TrainStep(ctx, x, labels)
		opt.Step(m.Net.Params())
	}
	b.StopTimer()
	m.Net.Release()
}
