module gpucnn

go 1.22

// golang.org/x/tools is vendored under third_party/ from the Go
// toolchain's own cmd/vendor tree (the exact analysis framework vet is
// built on) because this environment has no module proxy access. The
// version below matches the toolchain's pinned revision; the replace
// directive makes the build fully hermetic.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
