module gpucnn

go 1.22
