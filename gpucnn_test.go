package gpucnn

import (
	"errors"
	"testing"
)

// These tests exercise the public facade exactly as a downstream user
// would: no internal imports.

func TestPublicEngines(t *testing.T) {
	engines := Engines()
	if len(engines) != 7 {
		t.Fatalf("Engines() = %d, want the paper's 7", len(engines))
	}
	if len(EngineNames()) != 7 {
		t.Fatal("EngineNames() should list 7")
	}
	e, err := EngineByName("fbfft")
	if err != nil || e.Strategy() != FFT {
		t.Fatalf("EngineByName(fbfft) = %v, %v", e, err)
	}
	if NewCaffe().Strategy() != Unrolling || NewCudaConvnet2().Strategy() != Direct {
		t.Fatal("strategy constants wired wrong")
	}
}

func TestPublicEndToEnd(t *testing.T) {
	cfg := Config{Batch: 8, Input: 16, Channels: 2, Filters: 8, Kernel: 3, Stride: 1}
	dev := NewDevice(TeslaK40c())
	plan, err := NewCuDNN().Plan(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plan.Release()

	r := NewRNG(1)
	x := NewTensor(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w := NewTensor(cfg.FilterShape()...)
	w.FillUniform(r, -1, 1)
	y := NewTensor(cfg.OutputShape()...)
	if err := plan.Forward(x, w, y); err != nil {
		t.Fatal(err)
	}
	if !y.AllFinite() || y.AbsMax() == 0 {
		t.Fatal("forward produced no usable output")
	}
	if dev.Elapsed() <= 0 {
		t.Fatal("simulated clock did not advance")
	}
}

func TestPublicMeasure(t *testing.T) {
	cell := Measure(NewFbfft(), BaseConfig())
	if !cell.Ok() || cell.Time <= 0 || cell.PeakBytes <= 0 {
		t.Fatalf("Measure failed: %+v", cell)
	}
	// Shape limits surface through the same path.
	strided := BaseConfig()
	strided.Stride = 2
	if Measure(NewFbfft(), strided).Ok() {
		t.Fatal("fbfft at stride 2 should be unsupported")
	}
}

func TestPublicOOMErrorType(t *testing.T) {
	dev := NewDevice(TeslaK40c())
	_, err := dev.Mem.Alloc(13<<30, "too-big")
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want *OOMError, got %v", err)
	}
}

func TestPublicTableI(t *testing.T) {
	rows := TableI()
	if len(rows) != 5 || rows[0].Name != "Conv1" {
		t.Fatalf("TableI = %v", rows)
	}
}

func TestPublicModelTraining(t *testing.T) {
	m := LeNet5(NewCuDNN())
	ctx := NewContext(nil, true)
	r := NewRNG(3)
	x := NewTensor(m.InputShape(4)...)
	x.FillUniform(r, 0, 1)
	loss, _ := m.Net.TrainStep(ctx, x, []int{0, 1, 2, 3})
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	opt := NewSGD(0.01, 0.9, 0)
	opt.Step(m.Net.Params())
	loss2, _ := m.Net.TrainStep(ctx, x, []int{0, 1, 2, 3})
	if loss2 >= loss {
		t.Fatalf("one SGD step on the same batch should reduce loss: %v -> %v", loss, loss2)
	}
}
