package gpusim

import (
	"fmt"
	"sort"
	"sync"
)

// OOMError is returned when a device allocation exceeds the remaining
// device memory — the failure mode the paper observed with fbfft's
// "abnormal memory usage" leading to crashes.
type OOMError struct {
	Requested int64
	Free      int64
	Total     int64
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("gpusim: out of device memory: requested %d B, free %d B of %d B",
		e.Requested, e.Free, e.Total)
}

// Buffer is a device-memory allocation handle.
type Buffer struct {
	Tag   string
	Size  int64 // requested size
	alloc int64 // size after alignment
	freed bool
	owner *MemTracker
}

// Free releases the buffer. Freeing twice is a no-op.
func (b *Buffer) Free() {
	if b == nil || b.freed {
		return
	}
	b.freed = true
	b.owner.release(b.alloc)
}

// MemTracker is the device-memory accountant: it plays the role
// nvidia-smi played in the paper, tracking live and peak bytes, and
// enforces the 12 GB capacity of the K40c.
type MemTracker struct {
	mu       sync.Mutex
	total    int64
	used     int64
	peak     int64
	byTag    map[string]int64
	allocCnt int64
}

// NewMemTracker creates a tracker for a device with the given capacity.
func NewMemTracker(total int64) *MemTracker {
	return &MemTracker{total: total, byTag: make(map[string]int64)}
}

const allocAlign = 256 // CUDA allocations are 256-byte aligned

// Alloc reserves size bytes (rounded up to the allocation alignment)
// under the given tag. It returns an OOMError if the device is full.
func (m *MemTracker) Alloc(size int64, tag string) (*Buffer, error) {
	if size < 0 {
		return nil, fmt.Errorf("gpusim: negative allocation %d", size)
	}
	aligned := (size + allocAlign - 1) / allocAlign * allocAlign
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.used+aligned > m.total {
		return nil, &OOMError{Requested: aligned, Free: m.total - m.used, Total: m.total}
	}
	m.used += aligned
	if m.used > m.peak {
		m.peak = m.used
	}
	m.byTag[tag] += aligned
	m.allocCnt++
	return &Buffer{Tag: tag, Size: size, alloc: aligned, owner: m}, nil
}

func (m *MemTracker) release(aligned int64) {
	m.mu.Lock()
	m.used -= aligned
	m.mu.Unlock()
}

// Used returns the live allocation total in bytes.
func (m *MemTracker) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Peak returns the high-water mark in bytes since the last ResetPeak.
func (m *MemTracker) Peak() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Total returns device capacity in bytes.
func (m *MemTracker) Total() int64 { return m.total }

// ResetPeak sets the high-water mark to the current live total.
func (m *MemTracker) ResetPeak() {
	m.mu.Lock()
	m.peak = m.used
	m.mu.Unlock()
}

// AllocCount returns the number of allocations performed.
func (m *MemTracker) AllocCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocCnt
}

// TagTotal returns cumulative bytes ever allocated under a tag.
func (m *MemTracker) TagTotal(tag string) int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.byTag[tag]
}

// Tags returns all allocation tags in sorted order.
func (m *MemTracker) Tags() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	tags := make([]string, 0, len(m.byTag))
	for t := range m.byTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	return tags
}
