package gpusim

import (
	"strings"
	"testing"
)

func TestExplainComputeBoundKernel(t *testing.T) {
	spec := TeslaK40c()
	ex, err := spec.Explain(KernelSpec{
		Name: "gemm", Grid: Dim3{X: 4096}, Block: Dim3{X: 256},
		RegsPerThread: 32, FLOPs: 1e10, ILP: 3,
		UsesShared: true, SharedPerBlock: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Bound != "compute" {
		t.Fatalf("pure-flops kernel classified %s", ex.Bound)
	}
	if ex.SustainedGF <= 0 || ex.SustainedGF > spec.PeakGFLOPS() {
		t.Fatalf("sustained %v GFLOP/s out of range", ex.SustainedGF)
	}
	out := ex.String()
	for _, want := range []string{"gemm", "compute-bound", "occupancy"} {
		if !strings.Contains(out, want) {
			t.Fatalf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainMemoryBoundKernel(t *testing.T) {
	ex, err := TeslaK40c().Explain(KernelSpec{
		Name: "copy", Grid: Dim3{X: 4096}, Block: Dim3{X: 256},
		RegsPerThread: 16, FLOPs: 1e6,
		GlobalLoadBytes: 2e9, GlobalStoreBytes: 2e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ex.Bound != "memory" {
		t.Fatalf("streaming copy classified %s", ex.Bound)
	}
	if ex.EffectiveBWGB <= 0 || ex.EffectiveBWGB > TeslaK40c().MemBandwidthGBps {
		t.Fatalf("bandwidth %v GB/s out of range", ex.EffectiveBWGB)
	}
}

func TestExplainNotes(t *testing.T) {
	spec := TeslaK40c()
	// Register-starved kernel with bad coalescing and divergence: every
	// advisory note should fire.
	ex, err := spec.Explain(KernelSpec{
		Name: "bad", Grid: Dim3{X: 1024}, Block: Dim3{X: 256},
		RegsPerThread: 200, FLOPs: 1e9,
		GlobalLoadBytes: 1e8, LoadTransPerReq: 6,
		UsesShared: true, SharedPerBlock: 8 << 10, BankConflictRate: 2,
		ActiveThreadFrac: 0.7,
	})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(ex.Notes, "\n")
	for _, want := range []string{"register-limited", "replay", "bank conflicts", "divergent"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("notes missing %q:\n%s", want, joined)
		}
	}
	// A clean kernel gets the no-inefficiency note.
	clean, err := spec.Explain(KernelSpec{
		Name: "clean", Grid: Dim3{X: 4096}, Block: Dim3{X: 256},
		RegsPerThread: 32, FLOPs: 1e9, ILP: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.Join(clean.Notes, "\n"), "no first-order inefficiency") {
		t.Fatalf("clean kernel notes: %v", clean.Notes)
	}
}

func TestExplainRejectsBadLaunch(t *testing.T) {
	if _, err := TeslaK40c().Explain(KernelSpec{Name: "x", Block: Dim3{X: 4096}}); err == nil {
		t.Fatal("oversized block should error")
	}
}
