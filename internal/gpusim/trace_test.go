package gpusim

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestTraceRecordsLaunchesAndCopies(t *testing.T) {
	d := New(TeslaK40c())
	tr := d.EnableTrace()
	d.MustLaunch(testKernel("k1", 1e9))
	d.Copy(Transfer{Bytes: 1 << 20})
	d.MustLaunch(testKernel("k2", 1e9))
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(events))
	}
	if events[0].Name != "k1" || events[0].Category != "kernel" || events[0].Start != 0 {
		t.Fatalf("first event wrong: %+v", events[0])
	}
	if events[1].Category != "transfer" {
		t.Fatalf("second event should be a transfer: %+v", events[1])
	}
	// Events must be laid out back to back on the simulated timeline.
	if events[1].Start != events[0].Duration {
		t.Fatalf("transfer start %v, want %v", events[1].Start, events[0].Duration)
	}
	if events[2].Start != events[0].Duration+events[1].Duration {
		t.Fatalf("k2 start %v misplaced", events[2].Start)
	}
}

func TestTraceChromeJSON(t *testing.T) {
	d := New(TeslaK40c())
	tr := d.EnableTrace()
	d.MustLaunch(testKernel("sgemm", 1e9))
	d.Copy(Transfer{Bytes: 1 << 20, Async: true})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("%d chrome events", len(events))
	}
	if events[0]["name"] != "sgemm" || events[0]["ph"] != "X" {
		t.Fatalf("bad event %v", events[0])
	}
	if events[1]["name"] != "memcpy_HtoD_async" || events[1]["tid"].(float64) != 2 {
		t.Fatalf("transfers should land on track 2: %v", events[1])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	d := New(TeslaK40c())
	d.MustLaunch(testKernel("k", 1e9)) // must not panic with no trace
	tr := d.EnableTrace()
	if tr.Len() != 0 {
		t.Fatal("pre-enable launches must not be recorded")
	}
}
