package gpusim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestTraceRecordsLaunchesAndCopies(t *testing.T) {
	d := New(TeslaK40c())
	tr := d.EnableTrace()
	d.MustLaunch(testKernel("k1", 1e9))
	d.Copy(Transfer{Bytes: 1 << 20})
	d.MustLaunch(testKernel("k2", 1e9))
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("recorded %d events, want 3", len(events))
	}
	if events[0].Name != "k1" || events[0].Category != "kernel" || events[0].Start != 0 {
		t.Fatalf("first event wrong: %+v", events[0])
	}
	if events[1].Category != "transfer" {
		t.Fatalf("second event should be a transfer: %+v", events[1])
	}
	// Events must be laid out back to back on the simulated timeline.
	if events[1].Start != events[0].Duration {
		t.Fatalf("transfer start %v, want %v", events[1].Start, events[0].Duration)
	}
	if events[2].Start != events[0].Duration+events[1].Duration {
		t.Fatalf("k2 start %v misplaced", events[2].Start)
	}
}

func TestTraceChromeJSON(t *testing.T) {
	d := New(TeslaK40c())
	tr := d.EnableTrace()
	d.MustLaunch(testKernel("sgemm", 1e9))
	d.Copy(Transfer{Bytes: 1 << 20, Async: true})
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("%d chrome events", len(events))
	}
	if events[0]["name"] != "sgemm" || events[0]["ph"] != "X" {
		t.Fatalf("bad event %v", events[0])
	}
	if events[1]["name"] != "memcpy_HtoD_async" || events[1]["tid"].(float64) != 2 {
		t.Fatalf("transfers should land on track 2: %v", events[1])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	d := New(TeslaK40c())
	d.MustLaunch(testKernel("k", 1e9)) // must not panic with no trace
	tr := d.EnableTrace()
	if tr.Len() != 0 {
		t.Fatal("pre-enable launches must not be recorded")
	}
}

// goldenUpdate regenerates the golden file when running
// `go test -run TestTraceChromeObjectGolden -update ./internal/gpusim`.
var goldenUpdate = flag.Bool("update", false, "rewrite golden files")

func TestTraceChromeObjectGolden(t *testing.T) {
	// A fixed, fully deterministic timeline: the object form and field
	// layout of the export are a contract with external trace viewers,
	// so the exact bytes are pinned in testdata.
	tr := &Trace{}
	tr.RecordEvent(TraceEvent{Name: "memcpy_HtoD", Category: "transfer",
		Start: 0, Duration: 1500 * time.Microsecond, Bytes: 1 << 20})
	tr.RecordEvent(TraceEvent{Name: "cudnn_gemm", Category: "kernel",
		Start: 1500 * time.Microsecond, Duration: 4200 * time.Microsecond, FLOPs: 1e9, DRAMBytes: 5e6})
	tr.RecordEvent(TraceEvent{Name: "fft_r2c", Category: "kernel",
		Start: 5700 * time.Microsecond, Duration: 800 * time.Microsecond, FLOPs: 2e8, DRAMBytes: 1e6})

	var buf bytes.Buffer
	if err := tr.WriteChromeObject(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_object.golden")
	if *goldenUpdate {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("WriteChromeObject drifted from golden:\ngot:  %s\nwant: %s", buf.Bytes(), want)
	}
}

func TestTraceChromeObjectParses(t *testing.T) {
	d := New(TeslaK40c())
	tr := d.EnableTrace()
	d.MustLaunch(testKernel("k", 1e9))
	var buf bytes.Buffer
	if err := tr.WriteChromeObject(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("invalid object-form JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ns" || len(file.TraceEvents) != 1 {
		t.Fatalf("object form wrong: %+v", file)
	}
}
