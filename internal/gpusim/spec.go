// Package gpusim models a CUDA GPU well enough to reproduce the
// architectural effects the paper's measurements hinge on: occupancy
// limited by register and shared-memory pressure, global-memory
// coalescing, shared-memory bank conflicts, warp divergence, latency
// hiding as a function of resident warps, device-memory capacity, and
// PCIe transfer cost. It exposes an nvprof-style profiler and an
// nvidia-smi-style peak-memory tracker.
//
// The model is analytical: a kernel launch is characterised by its
// launch configuration, resource usage, and work volume; the simulator
// computes its achieved occupancy and efficiency metrics, derives a
// duration, advances a simulated clock, and records per-kernel
// statistics. No real GPU is involved anywhere.
package gpusim

// DeviceSpec captures the architectural parameters of a GPU.
type DeviceSpec struct {
	Name string

	// Compute resources.
	SMs          int     // streaming multiprocessors
	CoresPerSM   int     // CUDA cores per SM
	ClockMHz     float64 // core clock
	FLOPsPerCore int     // FMA = 2 flops per cycle per core

	// Per-SM scheduling limits.
	WarpSize           int
	MaxWarpsPerSM      int
	MaxThreadsPerSM    int
	MaxBlocksPerSM     int
	MaxThreadsPerBlock int

	// Per-SM storage resources.
	RegistersPerSM    int // 32-bit registers
	MaxRegsPerThread  int
	SharedMemPerSM    int // bytes
	SharedMemPerBlock int // bytes

	// Allocation granularities (CUDA occupancy calculator rules).
	RegAllocUnit  int // registers are allocated per warp in this granularity
	SmemAllocUnit int // shared memory allocation granularity in bytes

	// Memory system.
	GlobalMemBytes   int64
	MemBandwidthGBps float64
	// PCIe bandwidths in GB/s. Pinned (page-locked) host memory
	// transfers faster than pageable memory.
	PCIePinnedGBps   float64
	PCIePageableGBps float64

	// Modelled overheads.
	KernelLaunchOverheadNs float64
	TransferLatencyNs      float64
}

// PeakGFLOPS returns the single-precision peak in GFLOP/s.
func (s DeviceSpec) PeakGFLOPS() float64 {
	return float64(s.SMs) * float64(s.CoresPerSM) * float64(s.FLOPsPerCore) * s.ClockMHz / 1e3
}

// TitanXMaxwell returns the specification of the GeForce GTX Titan X
// (Maxwell, 2015) — the generation that followed the paper's K40c.
// Included for cross-architecture ablations: more SMs with smaller
// warp-scheduler pressure, twice the per-SM shared memory, higher
// clock and bandwidth. Rerunning the paper's sweeps on this spec shows
// which conclusions are architectural and which are universal.
func TitanXMaxwell() DeviceSpec {
	return DeviceSpec{
		Name:                   "GTX Titan X (Maxwell)",
		SMs:                    24,
		CoresPerSM:             128,
		ClockMHz:               1000,
		FLOPsPerCore:           2,
		WarpSize:               32,
		MaxWarpsPerSM:          64,
		MaxThreadsPerSM:        2048,
		MaxBlocksPerSM:         32,
		MaxThreadsPerBlock:     1024,
		RegistersPerSM:         65536,
		MaxRegsPerThread:       255,
		SharedMemPerSM:         96 * 1024,
		SharedMemPerBlock:      48 * 1024,
		RegAllocUnit:           256,
		SmemAllocUnit:          256,
		GlobalMemBytes:         12 << 30,
		MemBandwidthGBps:       336,
		PCIePinnedGBps:         11.5,
		PCIePageableGBps:       4.5,
		KernelLaunchOverheadNs: 4000,
		TransferLatencyNs:      9000,
	}
}

// TeslaK40c returns the specification of the card used in the paper:
// 15 SMs × 192 cores at 745 MHz (4.29 TFLOPS single precision), 12 GB
// of device memory at 288 GB/s, 64K registers and 48 KB shared memory
// per SM.
func TeslaK40c() DeviceSpec {
	return DeviceSpec{
		Name:                   "Tesla K40c",
		SMs:                    15,
		CoresPerSM:             192,
		ClockMHz:               745,
		FLOPsPerCore:           2,
		WarpSize:               32,
		MaxWarpsPerSM:          64,
		MaxThreadsPerSM:        2048,
		MaxBlocksPerSM:         16,
		MaxThreadsPerBlock:     1024,
		RegistersPerSM:         65536,
		MaxRegsPerThread:       255,
		SharedMemPerSM:         48 * 1024,
		SharedMemPerBlock:      48 * 1024,
		RegAllocUnit:           256,
		SmemAllocUnit:          256,
		GlobalMemBytes:         12 << 30,
		MemBandwidthGBps:       288,
		PCIePinnedGBps:         10.5,
		PCIePageableGBps:       4.0,
		KernelLaunchOverheadNs: 5000,
		TransferLatencyNs:      10000,
	}
}
