package gpusim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func testKernel(name string, flops float64) KernelSpec {
	return KernelSpec{
		Name:          name,
		Grid:          Dim3{X: 1024},
		Block:         Dim3{X: 256},
		RegsPerThread: 32,
		FLOPs:         flops,
	}
}

func TestLaunchAdvancesClock(t *testing.T) {
	d := New(TeslaK40c())
	m := d.MustLaunch(testKernel("k", 1e9))
	if m.Duration <= 0 {
		t.Fatal("kernel duration must be positive")
	}
	if d.Elapsed() != m.Duration {
		t.Fatalf("elapsed %v != kernel duration %v", d.Elapsed(), m.Duration)
	}
	if d.Launches() != 1 {
		t.Fatalf("launches = %d", d.Launches())
	}
}

func TestMoreFLOPsTakeLonger(t *testing.T) {
	d := New(TeslaK40c())
	m1 := d.MustLaunch(testKernel("small", 1e8))
	m2 := d.MustLaunch(testKernel("large", 1e10))
	if m2.Duration <= m1.Duration {
		t.Fatalf("100× flops should take longer: %v vs %v", m2.Duration, m1.Duration)
	}
}

func TestComputeTimeNearPeakForIdealKernel(t *testing.T) {
	// A fully-occupied, perfectly-behaved kernel should sustain a large
	// fraction of the 4.29 TFLOPS peak.
	d := New(TeslaK40c())
	flops := 1e12
	m := d.MustLaunch(KernelSpec{
		Name: "ideal", Grid: Dim3{X: 1 << 16}, Block: Dim3{X: 256},
		RegsPerThread: 32, FLOPs: flops, ILP: 4, EfficiencyScale: 1,
	})
	achieved := flops / m.Duration.Seconds() / 1e9 // GFLOPS
	peak := TeslaK40c().PeakGFLOPS()
	if achieved < 0.7*peak || achieved > peak {
		t.Fatalf("ideal kernel sustains %v GFLOPS, want 70-100%% of %v", achieved, peak)
	}
}

func TestLowOccupancySlowsCompute(t *testing.T) {
	d := New(TeslaK40c())
	base := KernelSpec{Name: "a", Grid: Dim3{X: 4096}, Block: Dim3{X: 256}, FLOPs: 1e10, RegsPerThread: 24}
	fast := d.MustLaunch(base)
	base.Name = "b"
	base.RegsPerThread = 200 // register-starved: few resident warps
	slow := d.MustLaunch(base)
	if slow.Duration <= fast.Duration {
		t.Fatalf("register-starved kernel should be slower: %v vs %v", slow.Duration, fast.Duration)
	}
	if slow.AchievedOccupancy >= fast.AchievedOccupancy {
		t.Fatal("register-starved kernel should have lower occupancy")
	}
}

func TestILPCompensatesLowOccupancy(t *testing.T) {
	// cuda-convnet2's trick: high register ILP recovers throughput at
	// low occupancy.
	d := New(TeslaK40c())
	noILP := d.MustLaunch(KernelSpec{Name: "a", Grid: Dim3{X: 4096}, Block: Dim3{X: 128},
		RegsPerThread: 116, SharedPerBlock: 16 * 1024, FLOPs: 1e10, ILP: 1})
	withILP := d.MustLaunch(KernelSpec{Name: "b", Grid: Dim3{X: 4096}, Block: Dim3{X: 128},
		RegsPerThread: 116, SharedPerBlock: 16 * 1024, FLOPs: 1e10, ILP: 4})
	if withILP.Duration >= noILP.Duration {
		t.Fatal("ILP should speed up a latency-limited kernel")
	}
	if withILP.AchievedOccupancy != noILP.AchievedOccupancy {
		t.Fatal("ILP must not change occupancy")
	}
}

func TestUncoalescedAccessSlowsMemoryBoundKernel(t *testing.T) {
	d := New(TeslaK40c())
	base := KernelSpec{Name: "a", Grid: Dim3{X: 8192}, Block: Dim3{X: 256},
		RegsPerThread: 24, GlobalLoadBytes: 4e9, LoadTransPerReq: 1}
	fast := d.MustLaunch(base)
	base.Name = "b"
	base.LoadTransPerReq = 8 // badly coalesced
	slow := d.MustLaunch(base)
	if slow.Duration < time.Duration(float64(fast.Duration)*4) {
		t.Fatalf("8× transaction replay should slow a memory-bound kernel ≥4×: %v vs %v",
			slow.Duration, fast.Duration)
	}
	if slow.GldEff >= fast.GldEff {
		t.Fatal("replayed transactions should lower gld efficiency")
	}
	if fast.GldEff != 100 {
		t.Fatalf("perfectly coalesced load efficiency = %v, want 100", fast.GldEff)
	}
}

func TestBankConflictsSlowSharedKernel(t *testing.T) {
	d := New(TeslaK40c())
	base := KernelSpec{Name: "a", Grid: Dim3{X: 4096}, Block: Dim3{X: 256},
		RegsPerThread: 32, SharedPerBlock: 8 * 1024, FLOPs: 1e10, UsesShared: true}
	clean := d.MustLaunch(base)
	base.Name = "b"
	base.BankConflictRate = 4
	conflicted := d.MustLaunch(base)
	if conflicted.Duration <= clean.Duration {
		t.Fatal("bank conflicts should slow a shared-memory kernel")
	}
	if conflicted.SharedEff >= clean.SharedEff {
		t.Fatal("bank conflicts should lower shared efficiency")
	}
}

func TestSharedBroadcastExceeds100(t *testing.T) {
	// The paper reports cuDNN shared efficiency "over 130%" — broadcast
	// accesses push the requested/required ratio above 1.
	d := New(TeslaK40c())
	m := d.MustLaunch(KernelSpec{Name: "k", Grid: Dim3{X: 1024}, Block: Dim3{X: 256},
		RegsPerThread: 32, SharedPerBlock: 8 * 1024, FLOPs: 1e9,
		UsesShared: true, SharedBroadcast: 1.35})
	if m.SharedEff <= 100 {
		t.Fatalf("broadcast-heavy kernel shared efficiency = %v, want >100", m.SharedEff)
	}
}

func TestDivergenceLowersWEEAndThroughput(t *testing.T) {
	d := New(TeslaK40c())
	base := KernelSpec{Name: "a", Grid: Dim3{X: 4096}, Block: Dim3{X: 256}, RegsPerThread: 32, FLOPs: 1e10}
	straight := d.MustLaunch(base)
	base.Name = "b"
	base.ActiveThreadFrac = 0.7
	divergent := d.MustLaunch(base)
	if divergent.WarpExecEff != 70 {
		t.Fatalf("WEE = %v, want 70", divergent.WarpExecEff)
	}
	if divergent.Duration <= straight.Duration {
		t.Fatal("divergence should lower throughput")
	}
}

func TestGridTailLowersAchievedOccupancy(t *testing.T) {
	d := New(TeslaK40c())
	full := d.MustLaunch(KernelSpec{Name: "a", Grid: Dim3{X: 15 * 8 * 10}, Block: Dim3{X: 256}, RegsPerThread: 16, FLOPs: 1e9})
	tiny := d.MustLaunch(KernelSpec{Name: "b", Grid: Dim3{X: 4}, Block: Dim3{X: 256}, RegsPerThread: 16, FLOPs: 1e9})
	if tiny.AchievedOccupancy >= full.AchievedOccupancy {
		t.Fatalf("a 4-block grid cannot fill the device: %v vs %v",
			tiny.AchievedOccupancy, full.AchievedOccupancy)
	}
}

func TestZeroGlobalTrafficReportsZeroEfficiency(t *testing.T) {
	// cuDNN's compute kernels run out of shared memory only; nvprof
	// reports their global efficiency as 0%.
	d := New(TeslaK40c())
	m := d.MustLaunch(KernelSpec{Name: "smem_only", Grid: Dim3{X: 512}, Block: Dim3{X: 256},
		RegsPerThread: 64, SharedPerBlock: 8 * 1024, FLOPs: 1e9, UsesShared: true})
	if m.GldEff != 0 || m.GstEff != 0 {
		t.Fatalf("no-global-traffic kernel should report 0%% gld/gst, got %v/%v", m.GldEff, m.GstEff)
	}
}

func TestLaunchErrorPropagates(t *testing.T) {
	d := New(TeslaK40c())
	_, err := d.Launch(KernelSpec{Name: "bad", Block: Dim3{X: 4096}, FLOPs: 1})
	if err == nil {
		t.Fatal("oversized block should fail")
	}
}

func TestCopyPinnedFasterThanPageable(t *testing.T) {
	d := New(TeslaK40c())
	pageable := d.Copy(Transfer{Bytes: 100 << 20})
	pinned := d.Copy(Transfer{Bytes: 100 << 20, Pinned: true})
	if pinned >= pageable {
		t.Fatalf("pinned transfer should be faster: %v vs %v", pinned, pageable)
	}
}

func TestAsyncCopyOffCriticalPath(t *testing.T) {
	d := New(TeslaK40c())
	d.Copy(Transfer{Bytes: 1 << 20, Async: true})
	if d.TransferTime() != 0 {
		t.Fatal("async copy must not extend the critical path")
	}
	if d.HiddenTransferTime() == 0 {
		t.Fatal("async copy must be accounted as hidden")
	}
	d.Copy(Transfer{Bytes: 1 << 20})
	if d.TransferTime() == 0 {
		t.Fatal("sync copy must extend the critical path")
	}
}

func TestElapsedCombinesKernelAndTransfer(t *testing.T) {
	d := New(TeslaK40c())
	d.MustLaunch(testKernel("k", 1e9))
	d.Copy(Transfer{Bytes: 10 << 20})
	if d.Elapsed() != d.KernelTime()+d.TransferTime() {
		t.Fatal("Elapsed must be kernel + critical-path transfer time")
	}
}

func TestResetClock(t *testing.T) {
	d := New(TeslaK40c())
	d.MustLaunch(testKernel("k", 1e9))
	d.Copy(Transfer{Bytes: 1 << 20})
	buf, _ := d.Mem.Alloc(1<<20, "weights")
	d.ResetClock()
	if d.Elapsed() != 0 || d.Launches() != 0 || d.Prof.TotalTime() != 0 {
		t.Fatal("ResetClock must zero time and profile")
	}
	if d.Mem.Used() == 0 {
		t.Fatal("ResetClock must keep live allocations")
	}
	buf.Free()
}

func TestDeterministicSimulation(t *testing.T) {
	k := KernelSpec{Name: "k", Grid: Dim3{X: 777}, Block: Dim3{X: 192},
		RegsPerThread: 40, SharedPerBlock: 4096, FLOPs: 3.14e9,
		GlobalLoadBytes: 1e8, LoadTransPerReq: 2.5, UsesShared: true, BankConflictRate: 0.3}
	m1, err1 := TeslaK40c().simulate(k)
	m2, err2 := TeslaK40c().simulate(k)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if m1 != m2 {
		t.Fatal("simulation must be deterministic")
	}
}

func TestMemTrackerPeak(t *testing.T) {
	m := NewMemTracker(1 << 30)
	a, err := m.Alloc(100<<20, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc(200<<20, "b")
	if err != nil {
		t.Fatal(err)
	}
	if m.Peak() < 300<<20 {
		t.Fatalf("peak = %d, want ≥300 MB", m.Peak())
	}
	a.Free()
	b.Free()
	if m.Used() != 0 {
		t.Fatalf("used after free = %d", m.Used())
	}
	if m.Peak() < 300<<20 {
		t.Fatal("peak must survive frees")
	}
	m.ResetPeak()
	if m.Peak() != 0 {
		t.Fatal("ResetPeak should drop to live usage")
	}
}

func TestMemTrackerOOM(t *testing.T) {
	m := NewMemTracker(1 << 20)
	_, err := m.Alloc(2<<20, "big")
	var oom *OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOMError, got %v", err)
	}
	if !strings.Contains(oom.Error(), "out of device memory") {
		t.Fatalf("unhelpful OOM message: %v", oom)
	}
}

func TestMemTrackerAlignment(t *testing.T) {
	m := NewMemTracker(1 << 20)
	b, err := m.Alloc(1, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if m.Used() != allocAlign {
		t.Fatalf("1-byte alloc should consume %d aligned bytes, used %d", allocAlign, m.Used())
	}
	b.Free()
	b.Free() // double free is a no-op
	if m.Used() != 0 {
		t.Fatal("double free must not underflow")
	}
}

func TestMemTrackerTags(t *testing.T) {
	m := NewMemTracker(1 << 30)
	m.Alloc(1<<10, "weights")
	m.Alloc(2<<10, "workspace")
	m.Alloc(1<<10, "workspace")
	if m.TagTotal("workspace") != 3<<10 {
		t.Fatalf("workspace tag total = %d", m.TagTotal("workspace"))
	}
	tags := m.Tags()
	if len(tags) != 2 || tags[0] != "weights" || tags[1] != "workspace" {
		t.Fatalf("tags = %v", tags)
	}
	if m.AllocCount() != 3 {
		t.Fatalf("alloc count = %d", m.AllocCount())
	}
}

func TestProfilerSharesAndTop(t *testing.T) {
	p := NewProfiler()
	p.Record("gemm", Metrics{Duration: 80 * time.Millisecond, AchievedOccupancy: 0.5})
	p.Record("im2col", Metrics{Duration: 20 * time.Millisecond, AchievedOccupancy: 0.9})
	shares := p.Shares()
	if s := shares["gemm"]; s < 0.79 || s > 0.81 {
		t.Fatalf("gemm share = %v, want 0.8", s)
	}
	top := p.TopKernels(1)
	if len(top) != 1 || top[0].Name != "gemm" {
		t.Fatalf("top kernel = %v", top)
	}
	w := p.WeightedMetrics(10)
	// 0.8*0.5 + 0.2*0.9 = 0.58
	if w.AchievedOccupancy < 0.57 || w.AchievedOccupancy > 0.59 {
		t.Fatalf("weighted occupancy = %v, want 0.58", w.AchievedOccupancy)
	}
}

func TestProfilerSummaryRenders(t *testing.T) {
	p := NewProfiler()
	p.Record("sgemm_128x64", Metrics{Duration: time.Millisecond, WarpExecEff: 99})
	s := p.Summary()
	if !strings.Contains(s, "sgemm_128x64") || !strings.Contains(s, "Kernel") {
		t.Fatalf("summary missing content:\n%s", s)
	}
}

func TestProfilerReset(t *testing.T) {
	p := NewProfiler()
	p.Record("k", Metrics{Duration: time.Millisecond})
	p.Reset()
	if p.TotalTime() != 0 || len(p.Kernels()) != 0 {
		t.Fatal("reset should clear the profile")
	}
}

func TestDim3Count(t *testing.T) {
	if (Dim3{}).Count() != 1 {
		t.Fatal("zero Dim3 should count as 1")
	}
	if (Dim3{X: 2, Y: 3, Z: 4}).Count() != 24 {
		t.Fatal("Dim3 product wrong")
	}
	if (Dim3{X: 5}).Count() != 5 {
		t.Fatal("1-D Dim3 wrong")
	}
}

func TestRooflineClassification(t *testing.T) {
	spec := TeslaK40c()
	d := New(spec)
	// Compute-bound: lots of flops, no DRAM traffic.
	d.MustLaunch(KernelSpec{Name: "gemm", Grid: Dim3{X: 1024}, Block: Dim3{X: 256},
		RegsPerThread: 32, FLOPs: 1e10, UsesShared: true, SharedPerBlock: 8 << 10})
	// Memory-bound: streaming copy.
	d.MustLaunch(KernelSpec{Name: "copy", Grid: Dim3{X: 1024}, Block: Dim3{X: 256},
		RegsPerThread: 16, FLOPs: 1e6, GlobalLoadBytes: 1e9, GlobalStoreBytes: 1e9})
	for _, k := range d.Prof.Kernels() {
		switch k.Name {
		case "gemm":
			if k.Bound(spec) != "compute" {
				t.Errorf("gemm classified %s", k.Bound(spec))
			}
		case "copy":
			if k.Bound(spec) != "memory" {
				t.Errorf("copy classified %s (intensity %v)", k.Bound(spec), k.ArithmeticIntensity())
			}
		}
	}
	// The ridge point of the K40c is peak/bandwidth ≈ 14.9 flops/byte.
	ridge := spec.PeakGFLOPS() / spec.MemBandwidthGBps
	if ridge < 14 || ridge > 16 {
		t.Fatalf("K40c ridge point = %v flops/byte, want ~14.9", ridge)
	}
}
