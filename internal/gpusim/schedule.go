package gpusim

import (
	"fmt"
	"time"
)

// Task is one node of a kernel dependency graph scheduled onto
// concurrent streams: a kernel spec plus the indices of the tasks that
// must complete before it may start.
type Task struct {
	Kernel KernelSpec
	Deps   []int
}

// ScheduleResult reports a multi-stream schedule.
type ScheduleResult struct {
	Makespan     time.Duration   // end of the last task
	SerialTime   time.Duration   // sum of all task durations (1-stream lower bound on work)
	CriticalPath time.Duration   // longest dependency chain (∞-stream lower bound)
	Starts       []time.Duration // per-task start times
	Streams      []int           // per-task stream assignment
}

// Speedup returns the serial-over-makespan ratio.
func (r ScheduleResult) Speedup() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return r.SerialTime.Seconds() / r.Makespan.Seconds()
}

// Schedule simulates running a task DAG on the device with `streams`
// concurrent CUDA streams using list scheduling: a task becomes ready
// when its dependencies finish and is placed on the earliest-available
// stream. The paper's frameworks issue kernels on a single stream; this
// models the overlap opportunities (e.g. fbfft's independent input and
// filter transforms) a multi-stream implementation could exploit —
// a what-if tool, not part of the reproduced measurements.
//
// Concurrency caveat: real SM sharing between concurrent kernels is
// approximated by running each kernel at its solo rate; the makespan is
// therefore an optimistic bound, which is the right direction for a
// what-if analysis.
func (d *Device) Schedule(tasks []Task, streams int) (ScheduleResult, error) {
	if streams <= 0 {
		return ScheduleResult{}, fmt.Errorf("gpusim: %d streams", streams)
	}
	n := len(tasks)
	durations := make([]time.Duration, n)
	var serial time.Duration
	for i, task := range tasks {
		for _, dep := range task.Deps {
			if dep < 0 || dep >= n {
				return ScheduleResult{}, fmt.Errorf("gpusim: task %d has out-of-range dep %d", i, dep)
			}
			if dep >= i {
				return ScheduleResult{}, fmt.Errorf("gpusim: task %d depends on later task %d (tasks must be topologically ordered)", i, dep)
			}
		}
		m, err := d.Spec.simulate(task.Kernel)
		if err != nil {
			return ScheduleResult{}, fmt.Errorf("gpusim: task %d: %w", i, err)
		}
		durations[i] = m.Duration
		serial += m.Duration
	}

	res := ScheduleResult{
		SerialTime: serial,
		Starts:     make([]time.Duration, n),
		Streams:    make([]int, n),
	}
	finish := make([]time.Duration, n)
	streamFree := make([]time.Duration, streams)
	critical := make([]time.Duration, n)
	for i, task := range tasks {
		// Ready when every dependency has finished.
		var ready time.Duration
		var chain time.Duration
		for _, dep := range task.Deps {
			if finish[dep] > ready {
				ready = finish[dep]
			}
			if critical[dep] > chain {
				chain = critical[dep]
			}
		}
		critical[i] = chain + durations[i]
		if critical[i] > res.CriticalPath {
			res.CriticalPath = critical[i]
		}
		// Earliest-available stream.
		best := 0
		for s := 1; s < streams; s++ {
			if streamFree[s] < streamFree[best] {
				best = s
			}
		}
		start := ready
		if streamFree[best] > start {
			start = streamFree[best]
		}
		res.Starts[i] = start
		res.Streams[i] = best
		finish[i] = start + durations[i]
		streamFree[best] = finish[i]
		if finish[i] > res.Makespan {
			res.Makespan = finish[i]
		}
	}
	return res, nil
}
