package gpusim

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWeightedMetricsSharedEfficiencyWeighting(t *testing.T) {
	// Two kernels: one touches shared memory (SharedEff > 0), one does
	// not (nvprof would report no shared_efficiency for it). The Figure 6
	// methodology averages shared efficiency only over the shared-memory
	// kernels, but occupancy over all of them, time-weighted.
	p := NewProfiler()
	p.Record("shared_kernel", Metrics{
		Duration: 3 * time.Second, AchievedOccupancy: 0.6, SharedEff: 80,
	})
	p.Record("global_kernel", Metrics{
		Duration: 1 * time.Second, AchievedOccupancy: 0.2, SharedEff: 0,
	})

	m := p.WeightedMetrics(5)
	if math.Abs(m.SharedEff-80) > 1e-9 {
		t.Fatalf("SharedEff = %v, want 80 (averaged only over shared-memory kernels)", m.SharedEff)
	}
	// Occupancy is weighted across both: (0.6·3 + 0.2·1) / 4 = 0.5.
	if math.Abs(m.AchievedOccupancy-0.5) > 1e-9 {
		t.Fatalf("AchievedOccupancy = %v, want 0.5", m.AchievedOccupancy)
	}
	if m.Duration != 4*time.Second {
		t.Fatalf("Duration = %v, want 4s", m.Duration)
	}
}

func TestWeightedMetricsNoSharedKernels(t *testing.T) {
	p := NewProfiler()
	p.Record("k", Metrics{Duration: time.Second, AchievedOccupancy: 0.4})
	if m := p.WeightedMetrics(5); m.SharedEff != 0 {
		t.Fatalf("SharedEff = %v with no shared-memory kernels, want 0", m.SharedEff)
	}
}

func TestWeightedMetricsRespectsTopN(t *testing.T) {
	// Only the top-N kernels by total time enter the average.
	p := NewProfiler()
	p.Record("hot", Metrics{Duration: 10 * time.Second, IPC: 2})
	p.Record("cold", Metrics{Duration: time.Millisecond, IPC: 100})
	if m := p.WeightedMetrics(1); math.Abs(m.IPC-2) > 1e-9 {
		t.Fatalf("top-1 IPC = %v, want 2 (cold kernel excluded)", m.IPC)
	}
}

func TestKernelStatsBoundAtRidgePoint(t *testing.T) {
	spec := TeslaK40c()
	ridge := spec.PeakGFLOPS() * 1e9 / (spec.MemBandwidthGBps * 1e9)

	below := &KernelStats{FLOPs: ridge * 0.99, DRAMBytes: 1}
	if got := below.Bound(spec); got != "memory" {
		t.Fatalf("AI just below the ridge (%v): Bound = %q, want memory", ridge, got)
	}
	above := &KernelStats{FLOPs: ridge * 1.01, DRAMBytes: 1}
	if got := above.Bound(spec); got != "compute" {
		t.Fatalf("AI just above the ridge (%v): Bound = %q, want compute", ridge, got)
	}
	// No DRAM traffic at all (shared-memory-only kernels): compute-bound
	// by construction, with zero arithmetic intensity reported.
	none := &KernelStats{FLOPs: 1e9, DRAMBytes: 0}
	if none.Bound(spec) != "compute" || none.ArithmeticIntensity() != 0 {
		t.Fatal("zero-DRAM kernel must classify as compute-bound")
	}
}

func TestSharesSumToOneUnderConcurrentRecords(t *testing.T) {
	// Shares() must take its total and kernel list from one consistent
	// snapshot: with the old two-lock implementation, Records landing
	// between the two reads made the shares sum above or below 1.
	p := NewProfiler()
	p.Record("seed", Metrics{Duration: time.Second})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p.Record("writer", Metrics{Duration: time.Millisecond})
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		sum := 0.0
		for _, share := range p.Shares() {
			sum += share
		}
		if math.Abs(sum-1) > 1e-9 {
			close(stop)
			wg.Wait()
			t.Fatalf("shares sum to %v under concurrent records, want 1", sum)
		}
	}
	close(stop)
	wg.Wait()
}

func TestKernelsReturnsCopies(t *testing.T) {
	p := NewProfiler()
	p.Record("k", Metrics{Duration: time.Second})
	snap := p.Kernels()
	p.Record("k", Metrics{Duration: time.Second})
	if snap[0].Launches != 1 {
		t.Fatal("Kernels() snapshot mutated by a later Record")
	}
}

func TestSummaryConsistent(t *testing.T) {
	p := NewProfiler()
	p.Record("alpha", Metrics{Duration: 3 * time.Second, AchievedOccupancy: 0.5})
	p.Record("beta", Metrics{Duration: time.Second})
	s := p.Summary()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "beta") {
		t.Fatalf("summary missing kernels:\n%s", s)
	}
	if !strings.Contains(s, "75.0%") {
		t.Fatalf("summary missing the 75%% share:\n%s", s)
	}
}
