package gpusim

import (
	"sync"
	"time"
)

// Device is a simulated GPU: a spec, a memory accountant, a profiler,
// and a simulated clock that advances with every kernel launch and
// data transfer. It is safe for concurrent use, though the convolution
// engines drive it sequentially (one stream), matching how the paper's
// frameworks issue their kernels.
type Device struct {
	Spec DeviceSpec
	Mem  *MemTracker
	Prof *Profiler

	mu             sync.Mutex
	kernelTime     time.Duration
	transferTime   time.Duration // transfers on the critical path
	hiddenTransfer time.Duration // transfers overlapped with compute
	launches       int64
	trace          *Trace
	sink           TraceSink
}

// SetSink installs (or, with nil, removes) an additional event sink —
// the hook internal/telemetry's Recorder uses to nest kernel and
// transfer events under the span that issued them. The sink receives
// events alongside any EnableTrace recorder.
func (d *Device) SetSink(s TraceSink) {
	d.mu.Lock()
	d.sink = s
	d.mu.Unlock()
}

// Sink returns the installed event sink, if any.
func (d *Device) Sink() TraceSink {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sink
}

// New creates a device from a spec.
func New(spec DeviceSpec) *Device {
	return &Device{
		Spec: spec,
		Mem:  NewMemTracker(spec.GlobalMemBytes),
		Prof: NewProfiler(),
	}
}

// Launch simulates one kernel, records it with the profiler, advances
// the clock, and returns its metrics.
func (d *Device) Launch(k KernelSpec) (Metrics, error) {
	m, err := d.Spec.simulate(k)
	if err != nil {
		return Metrics{}, err
	}
	d.Prof.Record(k.Name, m)
	d.mu.Lock()
	start := d.kernelTime + d.transferTime
	d.kernelTime += m.Duration
	d.launches++
	tr, sink := d.trace, d.sink
	d.mu.Unlock()
	if tr != nil || sink != nil {
		e := TraceEvent{Name: k.Name, Category: "kernel", Start: start, Duration: m.Duration,
			FLOPs: m.FLOPs, DRAMBytes: m.DRAMBytes}
		if tr != nil {
			tr.RecordEvent(e)
		}
		if sink != nil {
			sink.RecordEvent(e)
		}
	}
	return m, nil
}

// MustLaunch is Launch for callers whose kernel specs are statically
// valid; it panics on configuration errors.
func (d *Device) MustLaunch(k KernelSpec) Metrics {
	m, err := d.Launch(k)
	if err != nil {
		panic(err)
	}
	return m
}

// Transfer describes one host↔device copy.
type Transfer struct {
	Bytes  int64
	Pinned bool // page-locked host memory: full PCIe bandwidth
	Async  bool // overlapped with compute (prefetching): off the critical path
}

// Copy simulates a host↔device transfer and returns its duration. Async
// transfers are accounted separately and do not extend the critical
// path (the prefetching trick Caffe uses to hide its input transfers).
func (d *Device) Copy(t Transfer) time.Duration {
	bw := d.Spec.PCIePageableGBps
	if t.Pinned {
		bw = d.Spec.PCIePinnedGBps
	}
	sec := float64(t.Bytes)/(bw*1e9) + d.Spec.TransferLatencyNs/1e9
	dur := time.Duration(sec * 1e9)
	d.mu.Lock()
	start := d.kernelTime + d.transferTime
	if t.Async {
		d.hiddenTransfer += dur
	} else {
		d.transferTime += dur
	}
	tr, sink := d.trace, d.sink
	d.mu.Unlock()
	if tr != nil || sink != nil {
		name := "memcpy_HtoD"
		if t.Async {
			name = "memcpy_HtoD_async"
		}
		e := TraceEvent{Name: name, Category: "transfer", Start: start, Duration: dur, Bytes: t.Bytes}
		if tr != nil {
			tr.RecordEvent(e)
		}
		if sink != nil {
			sink.RecordEvent(e)
		}
	}
	return dur
}

// KernelTime returns accumulated simulated kernel execution time.
func (d *Device) KernelTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernelTime
}

// TransferTime returns accumulated critical-path transfer time.
func (d *Device) TransferTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transferTime
}

// HiddenTransferTime returns accumulated overlapped transfer time.
func (d *Device) HiddenTransferTime() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.hiddenTransfer
}

// Elapsed returns the simulated wall clock: kernel time plus
// non-overlapped transfers.
func (d *Device) Elapsed() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.kernelTime + d.transferTime
}

// Launches returns the number of kernels launched.
func (d *Device) Launches() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.launches
}

// ResetClock zeroes the simulated clock and profiler but keeps live
// allocations (weights stay resident between iterations, as on a real
// training run).
func (d *Device) ResetClock() {
	d.mu.Lock()
	d.kernelTime = 0
	d.transferTime = 0
	d.hiddenTransfer = 0
	d.launches = 0
	d.mu.Unlock()
	d.Prof.Reset()
}
