package gpusim

import (
	"testing"
	"time"
)

func chainTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Kernel: testKernel("k", 1e9)}
		if i > 0 {
			tasks[i].Deps = []int{i - 1}
		}
	}
	return tasks
}

func independentTasks(n int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Kernel: testKernel("k", 1e9)}
	}
	return tasks
}

func TestScheduleChainIsSerial(t *testing.T) {
	d := New(TeslaK40c())
	res, err := d.Schedule(chainTasks(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	// A pure chain cannot benefit from extra streams.
	if res.Makespan != res.SerialTime {
		t.Fatalf("chain makespan %v != serial %v", res.Makespan, res.SerialTime)
	}
	if res.CriticalPath != res.SerialTime {
		t.Fatalf("chain critical path %v != serial %v", res.CriticalPath, res.SerialTime)
	}
	if res.Speedup() < 0.999 || res.Speedup() > 1.001 {
		t.Fatalf("chain speedup %v", res.Speedup())
	}
}

func TestScheduleIndependentTasksOverlap(t *testing.T) {
	d := New(TeslaK40c())
	res, err := d.Schedule(independentTasks(4), 4)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := TeslaK40c().simulate(testKernel("k", 1e9).withDefaults())
	if res.Makespan != one.Duration {
		t.Fatalf("4 independent tasks on 4 streams: makespan %v, want %v", res.Makespan, one.Duration)
	}
	if s := res.Speedup(); s < 3.99 || s > 4.01 {
		t.Fatalf("speedup %v, want 4", s)
	}
	// On 2 streams the same work takes two rounds.
	res2, _ := d.Schedule(independentTasks(4), 2)
	if res2.Makespan != 2*one.Duration {
		t.Fatalf("2-stream makespan %v, want %v", res2.Makespan, 2*one.Duration)
	}
}

func TestScheduleDiamondDAG(t *testing.T) {
	// 0 -> {1, 2} -> 3: with 2 streams, 1 and 2 overlap.
	d := New(TeslaK40c())
	tasks := []Task{
		{Kernel: testKernel("a", 1e9)},
		{Kernel: testKernel("b", 1e9), Deps: []int{0}},
		{Kernel: testKernel("c", 1e9), Deps: []int{0}},
		{Kernel: testKernel("d", 1e9), Deps: []int{1, 2}},
	}
	res, err := d.Schedule(tasks, 2)
	if err != nil {
		t.Fatal(err)
	}
	one, _ := TeslaK40c().simulate(testKernel("a", 1e9).withDefaults())
	if res.Makespan != 3*one.Duration {
		t.Fatalf("diamond makespan %v, want 3 kernels worth (%v)", res.Makespan, 3*one.Duration)
	}
	if res.CriticalPath != 3*one.Duration {
		t.Fatalf("diamond critical path %v", res.CriticalPath)
	}
	// Tasks 1 and 2 must start simultaneously on different streams.
	if res.Starts[1] != res.Starts[2] || res.Streams[1] == res.Streams[2] {
		t.Fatalf("middle tasks should overlap: starts %v/%v streams %d/%d",
			res.Starts[1], res.Starts[2], res.Streams[1], res.Streams[2])
	}
}

func TestScheduleValidation(t *testing.T) {
	d := New(TeslaK40c())
	if _, err := d.Schedule(chainTasks(2), 0); err == nil {
		t.Error("zero streams should error")
	}
	bad := []Task{{Kernel: testKernel("k", 1), Deps: []int{5}}}
	if _, err := d.Schedule(bad, 1); err == nil {
		t.Error("out-of-range dep should error")
	}
	forward := []Task{
		{Kernel: testKernel("k", 1), Deps: []int{1}},
		{Kernel: testKernel("k", 1)},
	}
	if _, err := d.Schedule(forward, 1); err == nil {
		t.Error("forward dep should error")
	}
}

func TestScheduleMakespanBounds(t *testing.T) {
	// Makespan always sits between the critical path and serial time.
	d := New(TeslaK40c())
	tasks := []Task{
		{Kernel: testKernel("a", 2e9)},
		{Kernel: testKernel("b", 1e9)},
		{Kernel: testKernel("c", 3e9), Deps: []int{0}},
		{Kernel: testKernel("d", 1e9), Deps: []int{1}},
		{Kernel: testKernel("e", 1e9), Deps: []int{2, 3}},
	}
	for _, streams := range []int{1, 2, 3} {
		res, err := d.Schedule(tasks, streams)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan < res.CriticalPath || res.Makespan > res.SerialTime {
			t.Fatalf("streams=%d: makespan %v outside [%v, %v]",
				streams, res.Makespan, res.CriticalPath, res.SerialTime)
		}
		if streams == 1 && res.Makespan != res.SerialTime {
			t.Fatalf("1 stream must serialise: %v vs %v", res.Makespan, res.SerialTime)
		}
	}
}

// TestScheduleZeroDurationFloor: even tiny kernels pay the launch
// overhead, so makespan is never zero.
func TestScheduleZeroDurationFloor(t *testing.T) {
	d := New(TeslaK40c())
	res, err := d.Schedule([]Task{{Kernel: testKernel("tiny", 1)}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < time.Duration(TeslaK40c().KernelLaunchOverheadNs) {
		t.Fatalf("makespan %v below the launch-overhead floor", res.Makespan)
	}
}
