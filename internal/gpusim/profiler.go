package gpusim

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// KernelStats accumulates the profile of one kernel name across
// launches, mirroring an nvprof summary row.
type KernelStats struct {
	Name      string
	Launches  int
	Total     time.Duration
	FLOPs     float64
	DRAMBytes float64
	// Launch resource usage (constant per kernel name; last seen).
	RegsPerThread int
	SmemPerBlock  int
	// Metric sums for averaging (time-weighted).
	occSum, ipcSum, weeSum, gldSum, gstSum, sharedSum float64 // weighted by duration seconds
	weight                                            float64
}

// Mean returns the time-weighted mean metrics of this kernel.
func (k *KernelStats) Mean() Metrics {
	if k.weight == 0 {
		return Metrics{}
	}
	w := k.weight
	return Metrics{
		Duration:          k.Total,
		AchievedOccupancy: k.occSum / w,
		IPC:               k.ipcSum / w,
		WarpExecEff:       k.weeSum / w,
		GldEff:            k.gldSum / w,
		GstEff:            k.gstSum / w,
		SharedEff:         k.sharedSum / w,
		FLOPs:             k.FLOPs,
		DRAMBytes:         k.DRAMBytes,
	}
}

// Profiler records every kernel launch on a device, like nvprof. It is
// safe for concurrent use.
type Profiler struct {
	mu      sync.Mutex
	kernels map[string]*KernelStats
	order   []string // first-launch order, for stable output
}

// NewProfiler creates an empty profiler.
func NewProfiler() *Profiler {
	return &Profiler{kernels: make(map[string]*KernelStats)}
}

// Record adds one launch of the named kernel.
func (p *Profiler) Record(name string, m Metrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ks, ok := p.kernels[name]
	if !ok {
		ks = &KernelStats{Name: name}
		p.kernels[name] = ks
		p.order = append(p.order, name)
	}
	ks.Launches++
	ks.Total += m.Duration
	ks.FLOPs += m.FLOPs
	ks.DRAMBytes += m.DRAMBytes
	ks.RegsPerThread = m.RegsPerThread
	ks.SmemPerBlock = m.SmemPerBlock
	w := m.Duration.Seconds()
	ks.weight += w
	ks.occSum += m.AchievedOccupancy * w
	ks.ipcSum += m.IPC * w
	ks.weeSum += m.WarpExecEff * w
	ks.gldSum += m.GldEff * w
	ks.gstSum += m.GstEff * w
	ks.sharedSum += m.SharedEff * w
}

// Reset discards all recorded launches.
func (p *Profiler) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.kernels = make(map[string]*KernelStats)
	p.order = nil
}

// totalLocked sums all recorded launch durations. Callers hold p.mu.
func (p *Profiler) totalLocked() time.Duration {
	var t time.Duration
	for _, k := range p.kernels {
		t += k.Total
	}
	return t
}

// kernelsLocked copies all kernel stats sorted by descending total
// time. Callers hold p.mu; the copies stay valid (and race-free)
// after release even while concurrent Records continue.
func (p *Profiler) kernelsLocked() []*KernelStats {
	out := make([]*KernelStats, 0, len(p.kernels))
	for _, name := range p.order {
		c := *p.kernels[name]
		out = append(out, &c)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// TotalTime returns the summed duration of all recorded launches.
func (p *Profiler) TotalTime() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalLocked()
}

// Kernels returns a snapshot of all kernel stats sorted by descending
// total time.
func (p *Profiler) Kernels() []*KernelStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.kernelsLocked()
}

// TopKernels returns up to n kernels by descending total time.
func (p *Profiler) TopKernels(n int) []*KernelStats {
	ks := p.Kernels()
	if len(ks) > n {
		ks = ks[:n]
	}
	return ks
}

// Shares returns each kernel's fraction of total recorded time, in the
// same order as Kernels(). This is the quantity behind the paper's
// Figure 4 pie-style breakdowns. The total and the kernel list come
// from one consistent snapshot (a single lock acquisition), so the
// shares sum to 1 even while concurrent Records land.
func (p *Profiler) Shares() map[string]float64 {
	p.mu.Lock()
	total := p.totalLocked().Seconds()
	ks := p.kernelsLocked()
	p.mu.Unlock()
	out := make(map[string]float64)
	if total == 0 {
		return out
	}
	for _, k := range ks {
		out[k.Name] = k.Total.Seconds() / total
	}
	return out
}

// WeightedMetrics reproduces the paper's Figure 6 methodology: profile
// the top kernels of an implementation and take the average of each
// metric weighted by the kernel's share of total runtime. Shared
// efficiency is averaged only over kernels that touch shared memory
// (nvprof reports no shared_efficiency for the others).
func (p *Profiler) WeightedMetrics(topN int) Metrics {
	ks := p.TopKernels(topN)
	var wsum, sharedW float64
	var out Metrics
	for _, k := range ks {
		w := k.Total.Seconds()
		m := k.Mean()
		out.AchievedOccupancy += m.AchievedOccupancy * w
		out.IPC += m.IPC * w
		out.WarpExecEff += m.WarpExecEff * w
		out.GldEff += m.GldEff * w
		out.GstEff += m.GstEff * w
		if m.SharedEff > 0 {
			out.SharedEff += m.SharedEff * w
			sharedW += w
		}
		out.Duration += k.Total
		out.FLOPs += k.FLOPs
		out.DRAMBytes += k.DRAMBytes
		wsum += w
	}
	if wsum > 0 {
		out.AchievedOccupancy /= wsum
		out.IPC /= wsum
		out.WarpExecEff /= wsum
		out.GldEff /= wsum
		out.GstEff /= wsum
	}
	if sharedW > 0 {
		out.SharedEff /= sharedW
	}
	return out
}

// Summary renders an nvprof-like text table of the recorded kernels,
// from one consistent snapshot of the profile.
func (p *Profiler) Summary() string {
	p.mu.Lock()
	total := p.totalLocked().Seconds()
	ks := p.kernelsLocked()
	p.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "%-42s %8s %12s %7s %6s %6s %6s %6s %6s\n",
		"Kernel", "Launches", "Time", "Share", "Occ%", "IPC", "WEE%", "Gld%", "Shm%")
	for _, k := range ks {
		m := k.Mean()
		share := 0.0
		if total > 0 {
			share = k.Total.Seconds() / total * 100
		}
		fmt.Fprintf(&b, "%-42s %8d %12s %6.1f%% %6.1f %6.2f %6.1f %6.1f %6.1f\n",
			k.Name, k.Launches, k.Total.Round(time.Microsecond), share,
			m.AchievedOccupancy*100, m.IPC, m.WarpExecEff, m.GldEff, m.SharedEff)
	}
	return b.String()
}

// ArithmeticIntensity returns the kernel's cumulative flops per DRAM
// byte — the x-axis of a roofline plot.
func (k *KernelStats) ArithmeticIntensity() float64 {
	if k.DRAMBytes == 0 {
		return 0
	}
	return k.FLOPs / k.DRAMBytes
}

// Bound classifies the kernel against the device's roofline ridge
// point: kernels whose arithmetic intensity falls below
// peak-flops/bandwidth are "memory"-bound, the rest "compute"-bound.
// Kernels with no DRAM traffic at all (cuDNN's shared-memory-only
// compute kernels) are compute-bound by construction.
func (k *KernelStats) Bound(spec DeviceSpec) string {
	if k.DRAMBytes == 0 {
		return "compute"
	}
	ridge := spec.PeakGFLOPS() * 1e9 / (spec.MemBandwidthGBps * 1e9)
	if k.ArithmeticIntensity() < ridge {
		return "memory"
	}
	return "compute"
}
