package gpusim

import (
	"fmt"
	"strings"
	"time"
)

// Explanation decomposes where one kernel's simulated time comes from —
// the reasoning behind the number, rendered for humans. This is the
// paper's Section V analysis methodology packaged as a tool: occupancy
// limiter, compute-vs-memory bound, and the efficiency factors in play.
type Explanation struct {
	Kernel        string
	Duration      time.Duration
	Occ           Occupancy
	Achieved      float64
	Bound         string // "compute" or "memory"
	ComputeTime   time.Duration
	MemoryTime    time.Duration
	SustainedGF   float64 // achieved GFLOP/s
	EffectiveBWGB float64 // achieved DRAM GB/s
	Notes         []string
}

// Explain runs the performance model for a kernel and returns the
// decomposed reasoning. It does not record the launch anywhere.
func (s DeviceSpec) Explain(k KernelSpec) (Explanation, error) {
	k = k.withDefaults()
	m, err := s.simulate(k)
	if err != nil {
		return Explanation{}, err
	}
	occ, err := s.ComputeOccupancy(k.Block.Count(), k.RegsPerThread, k.SharedPerBlock)
	if err != nil {
		return Explanation{}, err
	}
	ex := Explanation{
		Kernel:   k.Name,
		Duration: m.Duration,
		Occ:      occ,
		Achieved: m.AchievedOccupancy,
	}
	overhead := time.Duration(s.KernelLaunchOverheadNs)
	// Recover the two sides of the max() from the work volumes and the
	// reported duration.
	if m.DRAMBytes > 0 {
		// Invert the memory model to its time.
		memOcc := m.AchievedOccupancy * k.ILP
		if memOcc > 1 {
			memOcc = 1
		}
		bw := s.MemBandwidthGBps * 1e9 * latencyHiding(memOcc)
		ex.MemoryTime = time.Duration(m.DRAMBytes / bw * 1e9)
	}
	ex.ComputeTime = m.Duration - overhead
	if ex.MemoryTime > 0 && ex.MemoryTime >= ex.ComputeTime-time.Nanosecond {
		ex.Bound = "memory"
	} else {
		ex.Bound = "compute"
	}
	if sec := m.Duration.Seconds(); sec > 0 {
		ex.SustainedGF = m.FLOPs / sec / 1e9
		ex.EffectiveBWGB = m.DRAMBytes / sec / 1e9
	}

	// Advisory notes, echoing the paper's Section V summaries.
	if occ.LimitedBy == "registers" {
		ex.Notes = append(ex.Notes, fmt.Sprintf(
			"occupancy is register-limited (%d regs/thread → %d resident warps); reduce register pressure or rely on ILP",
			k.RegsPerThread, occ.ActiveWarps))
	}
	if occ.LimitedBy == "shared" {
		ex.Notes = append(ex.Notes, fmt.Sprintf(
			"occupancy is shared-memory-limited (%d B/block → %d resident blocks)",
			k.SharedPerBlock, occ.BlocksPerSM))
	}
	if k.LoadTransPerReq > 2 {
		ex.Notes = append(ex.Notes, fmt.Sprintf(
			"global loads replay %.1f transactions per request; align and coalesce accesses",
			k.LoadTransPerReq))
	}
	if k.UsesShared && k.BankConflictRate > 0.5 {
		ex.Notes = append(ex.Notes, fmt.Sprintf(
			"shared memory suffers %.1f extra passes per access from bank conflicts; pad or reorder the layout",
			k.BankConflictRate))
	}
	if k.ActiveThreadFrac < 0.9 {
		ex.Notes = append(ex.Notes, fmt.Sprintf(
			"warp execution efficiency is %.0f%%; reduce divergent control flow",
			k.ActiveThreadFrac*100))
	}
	if len(ex.Notes) == 0 {
		ex.Notes = append(ex.Notes, "no first-order inefficiency; improvements require algorithmic change")
	}
	return ex, nil
}

// String renders the explanation as indented text.
func (e Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %v (%s-bound)\n", e.Kernel, e.Duration.Round(time.Microsecond), e.Bound)
	fmt.Fprintf(&b, "  occupancy   %5.1f%% achieved (theoretical %.1f%%, limited by %s: %d warps/SM)\n",
		e.Achieved*100, e.Occ.Theoretical*100, e.Occ.LimitedBy, e.Occ.ActiveWarps)
	fmt.Fprintf(&b, "  compute     %v (%.0f GFLOP/s sustained)\n",
		e.ComputeTime.Round(time.Microsecond), e.SustainedGF)
	fmt.Fprintf(&b, "  memory      %v (%.0f GB/s DRAM)\n",
		e.MemoryTime.Round(time.Microsecond), e.EffectiveBWGB)
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}
