package gpusim

import (
	"fmt"
	"time"
)

// Dim3 is a CUDA launch dimension triple.
type Dim3 struct{ X, Y, Z int }

// Count returns the total number of elements in the 3-D range.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// KernelSpec characterises one GPU kernel launch for the performance
// model. Resource fields follow the CUDA launch model; behavioural
// fields describe how well the kernel's access patterns map onto the
// hardware and are the knobs that differentiate the seven convolution
// implementations.
type KernelSpec struct {
	Name  string
	Grid  Dim3
	Block Dim3

	RegsPerThread  int
	SharedPerBlock int // bytes

	// Work volume.
	FLOPs            float64
	GlobalLoadBytes  float64
	GlobalStoreBytes float64

	// Memory behaviour. LoadTransPerReq/StoreTransPerReq are the mean
	// number of 32-byte transactions issued per coalesced-request
	// equivalent: 1.0 is perfectly coalesced, higher values mean
	// replayed transactions and proportionally wasted bandwidth.
	// L2HitFrac is the fraction of replayed transactions absorbed by
	// the L2 cache instead of DRAM: tiled kernels with poor reported
	// coalescing can still be DRAM-frugal, which is how cuBLAS shows
	// low gld efficiency in nvprof without being bandwidth-bound.
	LoadTransPerReq  float64
	StoreTransPerReq float64
	L2HitFrac        float64

	// Shared-memory behaviour. BankConflictRate is the mean number of
	// extra serialised passes per shared access (0 = conflict-free);
	// SharedBroadcast is the fraction of accesses served by broadcast
	// (which raises the reported efficiency above 100%, as the paper
	// observes for cuDNN).
	UsesShared       bool
	BankConflictRate float64
	SharedBroadcast  float64

	// Execution behaviour. ActiveThreadFrac is the mean fraction of
	// active threads per executed warp instruction (the warp execution
	// efficiency); ILP is the per-thread instruction-level parallelism
	// the kernel exposes to hide latency on top of occupancy.
	ActiveThreadFrac float64
	ILP              float64

	// EfficiencyScale is a final implementation-quality multiplier on
	// sustained arithmetic throughput (code generation quality,
	// instruction mix). 1.0 = as good as the best hand-tuned kernels.
	EfficiencyScale float64

	// OccupancyDerate scales achieved occupancy below the theoretical
	// bound for kernels whose warps spend time blocked on barriers or
	// scoreboard stalls (nvprof's achieved_occupancy routinely sits
	// well under the theoretical value). Default 1.
	OccupancyDerate float64
}

func (k KernelSpec) withDefaults() KernelSpec {
	if k.Block.Count() == 0 {
		k.Block = Dim3{X: 256}
	}
	if k.Grid.Count() == 0 {
		k.Grid = Dim3{X: 1}
	}
	if k.LoadTransPerReq < 1 {
		k.LoadTransPerReq = 1
	}
	if k.StoreTransPerReq < 1 {
		k.StoreTransPerReq = 1
	}
	if k.ActiveThreadFrac <= 0 || k.ActiveThreadFrac > 1 {
		k.ActiveThreadFrac = 1
	}
	if k.ILP <= 0 {
		k.ILP = 1
	}
	if k.SharedBroadcast <= 0 {
		k.SharedBroadcast = 1
	}
	if k.EfficiencyScale <= 0 {
		k.EfficiencyScale = 1
	}
	if k.OccupancyDerate <= 0 || k.OccupancyDerate > 1 {
		k.OccupancyDerate = 1
	}
	return k
}

// Metrics are the nvprof-style metrics the paper profiles (Section V.C),
// plus the derived kernel duration.
type Metrics struct {
	Duration          time.Duration
	AchievedOccupancy float64 // fraction of max resident warps, 0..1
	IPC               float64 // instructions per cycle per SM
	WarpExecEff       float64 // %, 0..100
	GldEff            float64 // %, 0..100 (0 when kernel bypasses global loads)
	GstEff            float64 // %
	SharedEff         float64 // %, can exceed 100 via broadcast
	FLOPs             float64
	DRAMBytes         float64
	RegsPerThread     int // launch resource usage (Table II)
	SmemPerBlock      int // bytes per block (Table II)
}

// simulate runs the analytical model for one launch and returns its
// metrics. It is deterministic: the same spec on the same device
// always produces identical results.
func (s DeviceSpec) simulate(k KernelSpec) (Metrics, error) {
	k = k.withDefaults()
	threads := k.Block.Count()
	occ, err := s.ComputeOccupancy(threads, k.RegsPerThread, k.SharedPerBlock)
	if err != nil {
		return Metrics{}, fmt.Errorf("kernel %s: %w", k.Name, err)
	}

	// Achieved occupancy: theoretical, degraded by grid tail effects.
	// A grid that does not fill every SM with full waves leaves warp
	// slots idle on average.
	gridBlocks := k.Grid.Count()
	blocksPerWave := occ.BlocksPerSM * s.SMs
	waves := float64(gridBlocks) / float64(blocksPerWave)
	tail := 1.0
	if waves < 1 {
		tail = waves
	} else {
		full := float64(int(waves))
		frac := waves - full
		if frac > 0 {
			tail = (full + frac) / (full + 1)
		}
	}
	achieved := occ.Theoretical * tail * k.OccupancyDerate
	if achieved > 1 {
		achieved = 1
	}

	wee := k.ActiveThreadFrac

	// Sustained compute throughput: latency hiding from resident warps,
	// boosted by per-thread ILP, reduced by divergence and the
	// implementation-quality scale. Shared-memory bank conflicts
	// serialise the pipeline and show up as a compute-side penalty.
	hide := latencyHiding(achieved) * k.ILP
	if hide > 1 {
		hide = 1
	}
	conflictPenalty := 1.0
	if k.UsesShared && k.BankConflictRate > 0 {
		conflictPenalty = 1 / (1 + 0.5*k.BankConflictRate)
	}
	computeEff := hide * wee * k.EfficiencyScale * conflictPenalty
	if computeEff > 0.98 {
		// No kernel sustains the theoretical peak: instruction issue
		// overhead keeps even perfect kernels a bit below it.
		computeEff = 0.98
	}
	if computeEff <= 0 {
		computeEff = 1e-6
	}
	peak := s.PeakGFLOPS() * 1e9
	computeSec := k.FLOPs / (peak * computeEff)

	// Memory time: uncoalesced access replays transactions, dividing
	// useful bandwidth. Low occupancy also caps achievable bandwidth
	// (not enough outstanding requests), but per-thread memory-level
	// parallelism (multiple in-flight loads, counted via ILP)
	// compensates exactly the way register-blocked kernels do on real
	// hardware.
	loadEff := 1 / k.LoadTransPerReq
	storeEff := 1 / k.StoreTransPerReq
	memOcc := achieved * k.ILP
	if memOcc > 1 {
		memOcc = 1
	}
	bw := s.MemBandwidthGBps * 1e9 * latencyHiding(memOcc)
	loadReplay := 1 + (k.LoadTransPerReq-1)*(1-k.L2HitFrac)
	storeReplay := 1 + (k.StoreTransPerReq-1)*(1-k.L2HitFrac)
	memBytes := k.GlobalLoadBytes*loadReplay + k.GlobalStoreBytes*storeReplay
	memSec := memBytes / bw

	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	sec += s.KernelLaunchOverheadNs / 1e9

	// Derived reporting metrics.
	gld, gst := 0.0, 0.0
	if k.GlobalLoadBytes > 0 {
		gld = 100 * loadEff
	}
	if k.GlobalStoreBytes > 0 {
		gst = 100 * storeEff
	}
	shared := 0.0
	if k.UsesShared {
		shared = 100 * k.SharedBroadcast / (1 + k.BankConflictRate)
	}
	// IPC: warp-level instructions over elapsed cycles per SM. We
	// approximate the instruction count from flops (one FMA warp
	// instruction covers WarpSize×2 flops) plus one instruction per
	// 128-byte memory transaction.
	warpInsts := k.FLOPs/(float64(s.WarpSize)*2) + memBytes/128
	cycles := sec * s.ClockMHz * 1e6
	ipc := 0.0
	if cycles > 0 {
		ipc = warpInsts / (cycles * float64(s.SMs))
	}

	return Metrics{
		Duration:          time.Duration(sec * 1e9),
		AchievedOccupancy: achieved,
		IPC:               ipc,
		WarpExecEff:       100 * wee,
		GldEff:            gld,
		GstEff:            gst,
		SharedEff:         shared,
		FLOPs:             k.FLOPs,
		DRAMBytes:         memBytes,
		RegsPerThread:     k.RegsPerThread,
		SmemPerBlock:      k.SharedPerBlock,
	}, nil
}
