package gpusim

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// TraceEvent is one simulated-timeline entry: a kernel execution or a
// host↔device transfer, positioned at its simulated start time.
type TraceEvent struct {
	Name     string
	Category string // "kernel" or "transfer"
	Start    time.Duration
	Duration time.Duration

	// Work attribution, for sinks that aggregate as well as render.
	FLOPs     float64 // kernel events
	DRAMBytes float64 // kernel events
	Bytes     int64   // transfer events
}

// TraceSink receives every kernel launch and host↔device copy as it is
// simulated. The flat Trace implements it; internal/telemetry's
// Recorder implements it to attach events to a hierarchical span tree.
type TraceSink interface {
	RecordEvent(TraceEvent)
}

// Trace records the device's simulated timeline for visualisation. It
// is enabled per device with EnableTrace and rendered with WriteChrome
// into the Chrome trace-event format (chrome://tracing, Perfetto).
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// EnableTrace attaches a timeline recorder to the device and returns
// it. Subsequent launches and copies are recorded at their simulated
// start offsets.
func (d *Device) EnableTrace() *Trace {
	t := &Trace{}
	d.mu.Lock()
	d.trace = t
	d.mu.Unlock()
	return t
}

// RecordEvent implements TraceSink.
func (t *Trace) RecordEvent(e TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded timeline.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TraceEvent(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// chromeEvent is the Chrome trace-event JSON schema ("X" = complete
// event with timestamp and duration in microseconds).
type chromeEvent struct {
	Name string  `json:"name"`
	Cat  string  `json:"cat"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChrome renders the timeline as a bare Chrome trace-event JSON
// array, loadable in chrome://tracing or https://ui.perfetto.dev.
// Kernels and transfers land on separate tracks. See WriteChromeObject
// for the {"traceEvents":[...]} object form.
func (t *Trace) WriteChrome(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.chromeEvents())
}

// chromeFile is the object form of the trace-event format. The
// displayTimeUnit field makes viewers render the microsecond
// timestamps at full precision ("ns") instead of rounding to ms.
type chromeFile struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

// WriteChromeObject renders the timeline in the trace-event object form
// {"displayTimeUnit":"ns","traceEvents":[...]}, which Perfetto prefers
// and which leaves room for the format's top-level metadata fields.
func (t *Trace) WriteChromeObject(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{DisplayTimeUnit: "ns", TraceEvents: t.chromeEvents()})
}

func (t *Trace) chromeEvents() []chromeEvent {
	t.mu.Lock()
	events := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	out := make([]chromeEvent, 0, len(events))
	for _, e := range events {
		tid := 1
		if e.Category == "transfer" {
			tid = 2
		}
		out = append(out, chromeEvent{
			Name: e.Name,
			Cat:  e.Category,
			Ph:   "X",
			Ts:   float64(e.Start.Nanoseconds()) / 1e3,
			Dur:  float64(e.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  tid,
		})
	}
	return out
}
