package gpusim

import (
	"testing"
	"testing/quick"
)

func TestPeakGFLOPS(t *testing.T) {
	// 15 SMs × 192 cores × 2 flops × 745 MHz = 4291.2 GFLOPS (the
	// paper's "4.29 TFLOPS").
	got := TeslaK40c().PeakGFLOPS()
	if got < 4291 || got > 4292 {
		t.Fatalf("PeakGFLOPS = %v, want ~4291.2", got)
	}
}

func TestOccupancyUnlimitedKernel(t *testing.T) {
	// 256 threads, few registers, no shared memory: warp-limited at
	// 100% occupancy (8 blocks × 8 warps = 64 warps).
	s := TeslaK40c()
	occ, err := s.ComputeOccupancy(256, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.Theoretical != 1.0 {
		t.Fatalf("occupancy = %v, want 1.0 (limited by %s)", occ.Theoretical, occ.LimitedBy)
	}
	if occ.BlocksPerSM != 8 {
		t.Fatalf("blocks/SM = %d, want 8", occ.BlocksPerSM)
	}
}

// TestOccupancyCudaConvnet2Registers reproduces the paper's Section
// V.C.1 analysis: with 116 registers per thread the K40c can keep only
// 17 warps (≈544–564 threads) resident per SM, a ~27% ceiling that
// explains cuda-convnet2's 14–22% achieved occupancy.
func TestOccupancyCudaConvnet2Registers(t *testing.T) {
	s := TeslaK40c()
	occ, err := s.ComputeOccupancy(256, 116, 16*1024)
	if err != nil {
		t.Fatal(err)
	}
	if occ.ActiveWarps < 12 || occ.ActiveWarps > 17 {
		t.Fatalf("active warps = %d, want ≈17 (paper's register-pressure analysis)", occ.ActiveWarps)
	}
	if occ.LimitedBy != "registers" {
		t.Fatalf("limited by %s, want registers", occ.LimitedBy)
	}
	if occ.Theoretical > 0.30 {
		t.Fatalf("theoretical occupancy %v too high for 116 regs/thread", occ.Theoretical)
	}
}

func TestOccupancySharedLimited(t *testing.T) {
	s := TeslaK40c()
	// 24 KB of shared memory per block allows only 2 resident blocks.
	occ, err := s.ComputeOccupancy(64, 16, 24*1024)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 2 || occ.LimitedBy != "shared" {
		t.Fatalf("blocks=%d limitedBy=%s, want 2 blocks limited by shared", occ.BlocksPerSM, occ.LimitedBy)
	}
}

func TestOccupancyBlockSlotLimited(t *testing.T) {
	s := TeslaK40c()
	// Tiny blocks: 32 threads each, 16-block slot limit binds first.
	occ, err := s.ComputeOccupancy(32, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if occ.BlocksPerSM != 16 || occ.LimitedBy != "blocks" {
		t.Fatalf("blocks=%d limitedBy=%s, want 16/blocks", occ.BlocksPerSM, occ.LimitedBy)
	}
	if occ.ActiveWarps != 16 {
		t.Fatalf("active warps = %d, want 16", occ.ActiveWarps)
	}
}

func TestOccupancyErrors(t *testing.T) {
	s := TeslaK40c()
	if _, err := s.ComputeOccupancy(0, 16, 0); err == nil {
		t.Error("zero block size should error")
	}
	if _, err := s.ComputeOccupancy(2048, 16, 0); err == nil {
		t.Error("block size above 1024 should error")
	}
	if _, err := s.ComputeOccupancy(256, 300, 0); err == nil {
		t.Error("register count above limit should error")
	}
	if _, err := s.ComputeOccupancy(256, 16, 64*1024); err == nil {
		t.Error("shared memory above per-block limit should error")
	}
}

func TestOccupancyInvariants(t *testing.T) {
	s := TeslaK40c()
	f := func(seed uint64) bool {
		// Draw a random valid launch config.
		threads := 32 * (1 + int(seed%32))
		regs := int(seed/32%200) + 2
		smem := int(seed / 7 % 48000)
		occ, err := s.ComputeOccupancy(threads, regs, smem)
		if err != nil {
			// Resource-starved configs may legitimately not fit.
			return true
		}
		if occ.Theoretical <= 0 || occ.Theoretical > 1 {
			return false
		}
		if occ.ActiveWarps > s.MaxWarpsPerSM || occ.ActiveThreads > s.MaxThreadsPerSM {
			return false
		}
		if occ.BlocksPerSM < 1 || occ.BlocksPerSM > s.MaxBlocksPerSM {
			return false
		}
		// Register accounting must fit in the register file.
		if occ.RegsPerBlock*occ.BlocksPerSM > s.RegistersPerSM {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOccupancyMonotonicInRegisters: increasing register pressure never
// increases occupancy.
func TestOccupancyMonotonicInRegisters(t *testing.T) {
	s := TeslaK40c()
	prev := 2.0
	for regs := 8; regs <= 255; regs += 4 {
		occ, err := s.ComputeOccupancy(256, regs, 0)
		if err != nil {
			t.Fatal(err)
		}
		if occ.Theoretical > prev {
			t.Fatalf("occupancy rose from %v to %v at %d regs", prev, occ.Theoretical, regs)
		}
		prev = occ.Theoretical
	}
}

func TestLatencyHidingCurve(t *testing.T) {
	if latencyHiding(0) != 0 {
		t.Fatal("zero occupancy must hide nothing")
	}
	if latencyHiding(1.0) <= latencyHiding(0.1) {
		t.Fatal("latency hiding must increase with occupancy")
	}
	if latencyHiding(1.0) > 1.0 {
		t.Fatal("latency hiding cannot exceed 1")
	}
	// Saturation: the marginal gain from 50%→100% must be much smaller
	// than from 5%→50%.
	lo := latencyHiding(0.5) - latencyHiding(0.05)
	hi := latencyHiding(1.0) - latencyHiding(0.5)
	if hi >= lo {
		t.Fatal("latency-hiding curve should saturate")
	}
}
