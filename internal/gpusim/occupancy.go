package gpusim

import "fmt"

// Occupancy is the result of running the CUDA occupancy algorithm for
// one launch configuration on one device.
type Occupancy struct {
	WarpsPerBlock int
	BlocksPerSM   int
	ActiveWarps   int     // per SM
	ActiveThreads int     // per SM
	Theoretical   float64 // ActiveWarps / MaxWarpsPerSM
	LimitedBy     string  // "warps", "registers", "shared", or "blocks"
	RegsPerBlock  int     // after allocation-granularity rounding
	SmemPerBlock  int     // after allocation-granularity rounding
}

func ceilTo(v, unit int) int {
	if unit <= 0 {
		return v
	}
	return (v + unit - 1) / unit * unit
}

// ComputeOccupancy runs the standard CUDA occupancy calculation:
// resident blocks per SM are limited by the warp budget, the register
// file (registers are allocated per warp with a granularity), the
// shared-memory budget (with its own granularity), and the hardware
// block-slot limit; theoretical occupancy is the resulting resident
// warp count over the SM maximum.
func (s DeviceSpec) ComputeOccupancy(threadsPerBlock, regsPerThread, smemPerBlock int) (Occupancy, error) {
	if threadsPerBlock <= 0 || threadsPerBlock > s.MaxThreadsPerBlock {
		return Occupancy{}, fmt.Errorf("gpusim: block size %d outside (0, %d]", threadsPerBlock, s.MaxThreadsPerBlock)
	}
	if regsPerThread < 0 || regsPerThread > s.MaxRegsPerThread {
		return Occupancy{}, fmt.Errorf("gpusim: %d registers/thread exceeds limit %d", regsPerThread, s.MaxRegsPerThread)
	}
	if smemPerBlock < 0 || smemPerBlock > s.SharedMemPerBlock {
		return Occupancy{}, fmt.Errorf("gpusim: %d B shared/block exceeds limit %d", smemPerBlock, s.SharedMemPerBlock)
	}

	warpsPerBlock := (threadsPerBlock + s.WarpSize - 1) / s.WarpSize

	byWarps := s.MaxWarpsPerSM / warpsPerBlock
	if t := s.MaxThreadsPerSM / threadsPerBlock; t < byWarps {
		byWarps = t
	}

	byRegs := s.MaxBlocksPerSM
	regsPerBlock := 0
	if regsPerThread > 0 {
		regsPerWarp := ceilTo(regsPerThread*s.WarpSize, s.RegAllocUnit)
		regsPerBlock = regsPerWarp * warpsPerBlock
		byRegs = s.RegistersPerSM / regsPerBlock
	}

	bySmem := s.MaxBlocksPerSM
	smemRounded := 0
	if smemPerBlock > 0 {
		smemRounded = ceilTo(smemPerBlock, s.SmemAllocUnit)
		bySmem = s.SharedMemPerSM / smemRounded
	}

	blocks := s.MaxBlocksPerSM
	limit := "blocks"
	if byWarps < blocks {
		blocks, limit = byWarps, "warps"
	}
	if byRegs < blocks {
		blocks, limit = byRegs, "registers"
	}
	if bySmem < blocks {
		blocks, limit = bySmem, "shared"
	}
	if blocks < 1 {
		return Occupancy{}, fmt.Errorf("gpusim: launch config (block=%d threads, %d regs, %d B smem) cannot fit a single block per SM",
			threadsPerBlock, regsPerThread, smemPerBlock)
	}

	activeWarps := blocks * warpsPerBlock
	if activeWarps > s.MaxWarpsPerSM {
		activeWarps = s.MaxWarpsPerSM
	}
	return Occupancy{
		WarpsPerBlock: warpsPerBlock,
		BlocksPerSM:   blocks,
		ActiveWarps:   activeWarps,
		ActiveThreads: activeWarps * s.WarpSize,
		Theoretical:   float64(activeWarps) / float64(s.MaxWarpsPerSM),
		LimitedBy:     limit,
		RegsPerBlock:  regsPerBlock,
		SmemPerBlock:  smemRounded,
	}, nil
}

// latencyHiding maps occupancy to the fraction of peak issue rate a
// kernel can sustain: with few resident warps the SM stalls on
// arithmetic and memory latency; the curve saturates well below 100%
// occupancy, which is why moderately-occupied kernels (cuDNN at
// 29–37%) can still run near peak while very low occupancy
// (cuda-convnet2's register-limited 14–22%) needs high ILP to
// compensate — exactly the trade-off the paper discusses.
func latencyHiding(occ float64) float64 {
	if occ <= 0 {
		return 0
	}
	// Michaelis-Menten-style saturation: 50% of peak at ~12% occupancy.
	return occ / (occ + 0.12)
}
