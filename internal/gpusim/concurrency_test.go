package gpusim

import (
	"sync"
	"testing"
	"time"
)

// TestDeviceConcurrentLaunches: the device must tolerate concurrent
// launches (the nn framework's parallel branches can race on it) and
// account every one.
func TestDeviceConcurrentLaunches(t *testing.T) {
	d := New(TeslaK40c())
	const workers, per = 8, 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.MustLaunch(testKernel("k", 1e8))
			}
		}()
	}
	wg.Wait()
	if d.Launches() != workers*per {
		t.Fatalf("launches = %d, want %d", d.Launches(), workers*per)
	}
	one, _ := TeslaK40c().simulate(testKernel("k", 1e8).withDefaults())
	want := time.Duration(workers*per) * one.Duration
	if diff := d.KernelTime() - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Fatalf("kernel time %v, want %v", d.KernelTime(), want)
	}
}

// TestMemTrackerConcurrentAllocFree: racing allocations must never
// corrupt the accounting.
func TestMemTrackerConcurrentAllocFree(t *testing.T) {
	m := NewMemTracker(1 << 30)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b, err := m.Alloc(1<<16, "t")
				if err != nil {
					t.Error(err)
					return
				}
				b.Free()
			}
		}()
	}
	wg.Wait()
	if m.Used() != 0 {
		t.Fatalf("used = %d after all frees", m.Used())
	}
	if m.AllocCount() != 800 {
		t.Fatalf("alloc count = %d", m.AllocCount())
	}
}

// TestProfilerConcurrentRecords: concurrent Record calls accumulate
// exactly.
func TestProfilerConcurrentRecords(t *testing.T) {
	p := NewProfiler()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				p.Record("k", Metrics{Duration: time.Microsecond})
			}
		}()
	}
	wg.Wait()
	ks := p.Kernels()
	if len(ks) != 1 || ks[0].Launches != 800 {
		t.Fatalf("kernels = %+v", ks)
	}
	if p.TotalTime() != 800*time.Microsecond {
		t.Fatalf("total = %v", p.TotalTime())
	}
}

// TestTitanXSpec sanity: the Maxwell part must be strictly faster on
// paper in peak flops and bandwidth.
func TestTitanXSpec(t *testing.T) {
	k40, titan := TeslaK40c(), TitanXMaxwell()
	if titan.PeakGFLOPS() <= k40.PeakGFLOPS() {
		t.Fatalf("Titan X peak %v should exceed K40c %v", titan.PeakGFLOPS(), k40.PeakGFLOPS())
	}
	if titan.MemBandwidthGBps <= k40.MemBandwidthGBps {
		t.Fatal("Titan X bandwidth should exceed K40c")
	}
	if titan.SharedMemPerSM != 96*1024 {
		t.Fatalf("Maxwell shared pool = %d", titan.SharedMemPerSM)
	}
}
