package ctxbg_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/ctxbg"
)

func TestCtxBg(t *testing.T) {
	atest.Run(t, atest.TestData(t), ctxbg.Analyzer, "a")
}
