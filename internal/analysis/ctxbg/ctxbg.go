// Package ctxbg defines an Analyzer that forbids minting a fresh
// context with context.Background() or context.TODO() inside library
// code that already has a context.Context parameter in scope.
//
// PR 2 threaded context.Context through every figure API precisely so
// cancellation and telemetry (the context carries the tracer, span and
// registry) flow end to end; a Background() call in the middle of that
// chain silently severs both. Package main and _test.go files are
// exempt — they are where fresh root contexts legitimately start — as
// are context-free compatibility wrappers like bench.Figure2, which
// have no context parameter in scope.
package ctxbg

import (
	"fmt"
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"gpucnn/internal/analysis/lintutil"
)

const doc = `check that library code threads ctx instead of calling context.Background

Inside a function (or closure nested in one) that has a
context.Context parameter, context.Background()/context.TODO() severs
the caller's cancellation and telemetry; pass the parameter instead.`

var Analyzer = &analysis.Analyzer{
	Name:     "ctxbg",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		fn := lintutil.FuncCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if name := fn.Name(); name != "Background" && name != "TODO" {
			return true
		}
		if lintutil.IsTestFile(pass.Fset, call.Pos()) {
			return true
		}
		if param := ctxParamInScope(pass, stack); param != "" {
			lintutil.Report(pass, "ctxbg", analysis.Diagnostic{
				Pos: call.Pos(), End: call.End(),
				Message: fmt.Sprintf("context.%s() called with context.Context parameter %q in scope; thread %s instead", fn.Name(), param, param),
			})
		}
		return true
	})
	return nil, nil
}

// ctxParamInScope returns the name of a context.Context parameter of
// any function enclosing the call (closures inherit their enclosing
// function's parameters lexically), or "".
func ctxParamInScope(pass *analysis.Pass, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			ft = f.Type
		case *ast.FuncLit:
			ft = f.Type
		default:
			continue
		}
		if ft.Params == nil {
			continue
		}
		for _, field := range ft.Params.List {
			t := pass.TypesInfo.TypeOf(field.Type)
			if t == nil || !lintutil.IsNamed(t, "context", "Context") {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
	}
	return ""
}
