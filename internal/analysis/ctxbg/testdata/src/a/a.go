// Package a holds the positive ctxbg findings and the guard cases.
package a

import "context"

func work(ctx context.Context) error { return ctx.Err() }

// --- positive findings -------------------------------------------------

func severs(ctx context.Context) error {
	return work(context.Background()) // want `context\.Background\(\) called with context\.Context parameter "ctx" in scope; thread ctx instead`
}

func seversTODO(ctx context.Context) error {
	return work(context.TODO()) // want `context\.TODO\(\) called with context\.Context parameter "ctx" in scope; thread ctx instead`
}

func seversInClosure(ctx context.Context) func() error {
	return func() error {
		return work(context.Background()) // want `context\.Background\(\) called with context\.Context parameter "ctx" in scope; thread ctx instead`
	}
}

// --- guards ------------------------------------------------------------

// A context-free compatibility wrapper may mint a root context.
func wrapper() error {
	return work(context.Background())
}

// A blank context parameter signals "deliberately unused".
func blankParam(_ context.Context) error {
	return work(context.Background())
}

// Threading the parameter is of course fine.
func threads(ctx context.Context) error {
	return work(ctx)
}

// A closure with its own ctx parameter shadows nothing; using a fresh
// root inside a context-free function stays allowed even when the
// closure is the thing calling Background.
func closureNoCtx() func() error {
	return func() error {
		return work(context.Background())
	}
}

func suppressed(ctx context.Context) error {
	//lint:ignore ctxbg detached audit span must outlive the request
	return work(context.Background())
}
