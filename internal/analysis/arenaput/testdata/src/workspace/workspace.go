// Package workspace is a stub of gpucnn/internal/workspace for the
// arenaput fixtures: the analyzer matches by import-path base, so this
// GOPATH-style stand-in exercises it exactly.
package workspace

type Arena struct{}

func Get() *Arena  { return &Arena{} }
func Put(a *Arena) {}

func (a *Arena) Reset()                        {}
func (a *Arena) Float32(n int) []float32       { return make([]float32, n) }
func (a *Arena) Float32Uninit(n int) []float32 { return make([]float32, n) }
