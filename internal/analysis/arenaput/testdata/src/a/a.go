// Package a holds the positive arenaput findings and the suppression /
// false-positive guard cases.
package a

import "workspace"

// --- positive findings -------------------------------------------------

func leakOnEarlyReturn(fail bool) int {
	ws := workspace.Get() // want `arena from workspace\.Get\(\) assigned to ws does not reach workspace\.Put`
	buf := ws.Float32(16)
	if fail {
		return len(buf) // want `this return may be reached without releasing ws`
	}
	workspace.Put(ws)
	return 0
}

func leakDespiteReset() {
	ws := workspace.Get() // want `arena from workspace\.Get\(\) assigned to ws does not reach workspace\.Put`
	ws.Reset()
	return // want `this return may be reached without releasing ws`
}

func discarded() {
	workspace.Get() // want `result of arena from workspace\.Get\(\) is discarded`
}

func blanked() {
	_ = workspace.Get() // want `assigned to the blank identifier`
}

func carvedInline() []float32 {
	return workspace.Get().Float32(8) // want `result of arena from workspace\.Get\(\) is consumed by \.Float32`
}

// --- suppressed by defer ----------------------------------------------

func deferPut(fail bool) int {
	ws := workspace.Get()
	defer workspace.Put(ws)
	if fail {
		return 1
	}
	return len(ws.Float32(4))
}

func putOnAllPaths(fail bool) int {
	ws := workspace.Get()
	if fail {
		workspace.Put(ws)
		return 1
	}
	workspace.Put(ws)
	return 0
}

func deferClosure() {
	ws := workspace.Get()
	defer func() {
		ws.Reset()
		workspace.Put(ws)
	}()
	_ = ws.Float32Uninit(4)
}

// --- false-positive guards: ownership transfer ------------------------

type cache struct{ ws *workspace.Arena }

// Stored in a struct: the owner puts it back later.
func storeInStruct(c *cache) {
	c.ws = workspace.Get()
}

// Returned to the caller, directly and via a variable.
func checkout() *workspace.Arena {
	return workspace.Get()
}

func checkoutVar(warm bool) *workspace.Arena {
	ws := workspace.Get()
	if warm {
		ws.Reset()
	}
	return ws
}

// Handed to another function, which owns the release.
func runOn(ws *workspace.Arena) {}

func passAlong() {
	runOn(workspace.Get())
}

func passAlongVar() {
	ws := workspace.Get()
	runOn(ws)
}
