package arenaput_test

import (
	"testing"

	"gpucnn/internal/analysis/arenaput"
	"gpucnn/internal/analysis/atest"
)

func TestArenaPut(t *testing.T) {
	atest.Run(t, atest.TestData(t), arenaput.Analyzer, "a")
}
