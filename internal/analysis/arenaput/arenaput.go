// Package arenaput defines an Analyzer that checks that every arena
// checked out with workspace.Get is returned with workspace.Put on all
// control-flow paths (defer preferred), or handed to an owner.
//
// A leaked arena is not a crash: the sync.Pool just allocates a fresh
// slab next time. It is a silent performance bug — the zero-allocation
// guarantees of the conv/gemm hot paths (TestUnrollZeroAllocTableI)
// quietly degrade into steady-state garbage, which skews exactly the
// memory-bound measurements the paper's Figures 4–6 rest on.
package arenaput

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"gpucnn/internal/analysis/lintutil"
	"gpucnn/internal/analysis/paircheck"
)

const doc = `check that workspace.Get arenas reach workspace.Put on all paths

Every arena from workspace.Get() must be released with
workspace.Put(ws) — "defer workspace.Put(ws)" immediately after the
Get is the house idiom — on every path, or escape to an owner.`

var Analyzer = &analysis.Analyzer{
	Name:     "arenaput",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
}

var spec = paircheck.Spec{
	Analyzer: "arenaput",
	NewCall:  newArenaCall,
	Hint:     "workspace.Put (defer preferred)",
}

func run(pass *analysis.Pass) (any, error) {
	return paircheck.Run(pass, spec)
}

// newArenaCall matches the package-level workspace.Get().
func newArenaCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := lintutil.FuncCallee(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Get" || fn.Pkg() == nil {
		return "", false
	}
	if !lintutil.PathIs(fn.Pkg().Path(), "workspace") {
		return "", false
	}
	return "arena from workspace.Get()", true
}
