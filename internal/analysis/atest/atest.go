// Package atest is this repo's analysistest: it runs a single analyzer
// (plus its Requires graph) over a GOPATH-style fixture tree and
// checks the diagnostics against // want "regexp" comments, exactly
// the golden-test convention of golang.org/x/tools/go/analysis.
//
// The real analysistest depends on go/packages, which the offline
// vendored x/tools subset (lifted from the Go toolchain's cmd/vendor
// tree) does not carry; this harness instead typechecks fixtures with
// the stdlib source importer in GOPATH mode. Fixtures therefore import
// their dependencies by bare path ("telemetry", "workspace") from
// stub packages placed next to them under testdata/src — which is also
// why the analyzers match packages by import-path base rather than by
// full module path.
package atest

import (
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the package's testdata dir.
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// Run loads each package (by its import path under testdata/src), runs
// the analyzer over it, and checks diagnostics against want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	// GOPATH mode makes go/build resolve fixture imports from
	// testdata/src and stdlib from GOROOT source, with no module proxy
	// or export data needed.
	t.Setenv("GO111MODULE", "off")
	ctxt := build.Default
	ctxt.GOPATH = testdata
	ctxt.Dir = ""
	prev := build.Default
	build.Default = ctxt
	defer func() { build.Default = prev }()

	for _, path := range pkgpaths {
		t.Run(path, func(t *testing.T) {
			runOne(t, testdata, a, path)
		})
	}
}

func runOne(t *testing.T, testdata string, a *analysis.Analyzer, path string) {
	t.Helper()
	dir := filepath.Join(testdata, "src", filepath.FromSlash(path))
	fset := token.NewFileSet()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		name := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
		names = append(names, name)
	}
	if len(files) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	info := &types.Info{
		Types:        map[ast.Expr]types.TypeAndValue{},
		Instances:    map[*ast.Ident]types.Instance{},
		Defs:         map[*ast.Ident]types.Object{},
		Uses:         map[*ast.Ident]types.Object{},
		Implicits:    map[ast.Node]types.Object{},
		Selections:   map[*ast.SelectorExpr]*types.Selection{},
		Scopes:       map[ast.Node]*types.Scope{},
		FileVersions: map[*ast.File]string{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "source", nil),
		Error:    func(err error) { t.Errorf("fixture typecheck: %v", err) },
	}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking %s: %v", path, err)
	}

	var diags []analysis.Diagnostic
	runDAG(t, a, fset, files, pkg, info, &diags)
	checkWants(t, fset, files, names, diags)
}

// runDAG runs the analyzer's Requires closure in dependency order and
// collects the root analyzer's diagnostics.
func runDAG(t *testing.T, root *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, diags *[]analysis.Diagnostic) {
	t.Helper()
	results := map[*analysis.Analyzer]any{}
	var run func(a *analysis.Analyzer)
	run = func(a *analysis.Analyzer) {
		if _, done := results[a]; done {
			return
		}
		resultOf := map[*analysis.Analyzer]any{}
		for _, req := range a.Requires {
			run(req)
			resultOf[req] = results[req]
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", build.Default.GOARCH),
			ResultOf:   resultOf,
			Report: func(d analysis.Diagnostic) {
				if a == root {
					*diags = append(*diags, d)
				}
			},
			ReadFile: os.ReadFile,
			// The harness analyzes one package with no dependencies'
			// facts; ctrlflow degrades gracefully to intraprocedural
			// noReturn knowledge.
			ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
			ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
			ExportObjectFact:  func(types.Object, analysis.Fact) {},
			ExportPackageFact: func(analysis.Fact) {},
			AllObjectFacts:    func() []analysis.ObjectFact { return nil },
			AllPackageFacts:   func() []analysis.PackageFact { return nil },
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", a.Name, err)
		}
		results[a] = res
	}
	run(root)
}

// expectation is one // want "regexp" on a fixture line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRe = regexp.MustCompile(`// want (.*)$`)

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, names []string, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		tf := fset.File(f.Pos())
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				for _, raw := range splitQuoted(t, tf.Name(), m[1]) {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", tf.Name(), raw, err)
					}
					wants = append(wants, &expectation{
						file: tf.Name(), line: tf.Line(c.Pos()), re: re, raw: raw,
					})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool { return wants[i].line < wants[j].line })
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted parses the payload of a want comment: a sequence of
// space-separated "double-quoted" or `backquoted` regexps.
func splitQuoted(t *testing.T, file, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				t.Fatalf("%s: unterminated want string: %s", file, s)
			}
			uq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				t.Fatalf("%s: bad want string %s: %v", file, s[:end+1], err)
			}
			out = append(out, uq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated want backquote: %s", file, s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("%s: malformed want payload: %s", file, s)
		}
	}
	if len(out) == 0 {
		t.Fatalf("%s: want comment with no patterns", file)
	}
	return out
}
