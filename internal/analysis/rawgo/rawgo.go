// Package rawgo defines an Analyzer that forbids naked `go` statements
// in library packages: a panic in an unsupervised goroutine takes down
// the whole process, which is why the PR 2 sweep executor grew
// per-cell panic isolation in the first place. Library code must spawn
// through par.Go (last-resort recovery, panic accounting) or a
// supervised loop; the one legitimate primitive spawn in package par
// carries a //lint:ignore rawgo directive.
//
// Package main and _test.go files are exempt: a cmd tool or a test
// crashing on panic is the behaviour you want.
package rawgo

import (
	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"go/ast"

	"gpucnn/internal/analysis/lintutil"
)

const doc = `check that library goroutines are spawned through par.Go

A naked go statement in a library package bypasses panic isolation:
one panicking goroutine crashes the whole process. Spawn through
par.Go, or suppress with //lint:ignore rawgo <reason> where the naked
spawn IS the supervised primitive.`

var Analyzer = &analysis.Analyzer{
	Name:     "rawgo",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

func run(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.GoStmt)(nil)}, func(n ast.Node) {
		if lintutil.IsTestFile(pass.Fset, n.Pos()) {
			return
		}
		lintutil.Report(pass, "rawgo", analysis.Diagnostic{
			Pos: n.Pos(), End: n.End(),
			Message: "naked go statement in library code bypasses panic isolation; spawn through par.Go (or //lint:ignore rawgo <reason>)",
		})
	})
	return nil, nil
}
