// Test files are exempt: helpers and harnesses may spawn directly.
package a

func spawnInTest(f func()) {
	go f()
}
