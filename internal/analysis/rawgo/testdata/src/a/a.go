// Package a holds the positive rawgo findings and the guard cases.
package a

import "sync"

// --- positive findings -------------------------------------------------

func spawn(f func()) {
	go f() // want `naked go statement in library code bypasses panic isolation; spawn through par\.Go`
}

func spawnClosure(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `naked go statement in library code bypasses panic isolation; spawn through par\.Go`
		defer wg.Done()
	}()
}

// --- guards ------------------------------------------------------------

func suppressed(f func()) {
	//lint:ignore rawgo this goroutine is the supervisor itself
	go f()
}

func suppressedSameLine(f func()) {
	go f() //lint:ignore rawgo crash-on-panic is the desired failure mode here
}

func noGoroutines(f func()) {
	f()
}
