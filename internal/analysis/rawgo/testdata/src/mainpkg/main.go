// Package main is exempt: top-of-process code owns its own crash
// semantics, and a panic should take the binary down loudly.
package main

func main() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
