package rawgo_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/rawgo"
)

func TestRawGo(t *testing.T) {
	atest.Run(t, atest.TestData(t), rawgo.Analyzer, "a", "mainpkg")
}
