package spanend_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	atest.Run(t, atest.TestData(t), spanend.Analyzer, "a")
}
