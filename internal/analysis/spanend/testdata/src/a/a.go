// Package a holds the positive spanend findings and the suppression /
// false-positive guard cases.
package a

import "telemetry"

// --- positive findings -------------------------------------------------

func leakOnEarlyReturn(t *telemetry.Tracer, fail bool) int {
	sp := t.Root("work") // want `span "work" assigned to sp does not reach \.End`
	if fail {
		return 1 // want `this return may be reached without releasing sp`
	}
	sp.End()
	return 0
}

func leakDespiteSetAttr(t *telemetry.Tracer, fail bool) int {
	sp := t.Root("attr") // want `span "attr" assigned to sp does not reach \.End`
	sp.SetAttr("k", "v")
	if fail {
		return 1 // want `this return may be reached without releasing sp`
	}
	sp.End()
	return 0
}

func leakFluentChain(t *telemetry.Tracer) { // never ended at all
	sp := t.Root("chain").SetAttr("k", "v") // want `span "chain" assigned to sp does not reach \.End`
	_ = sp.Ended()
	return // want `this return may be reached without releasing sp`
}

func discarded(t *telemetry.Tracer) {
	t.Root("dropped") // want `span "dropped" is discarded`
}

func discardedChild(sp *telemetry.Span) {
	sp.Child("kid").SetAttr("k", "v") // want `span "kid" is discarded`
}

func blanked(t *telemetry.Tracer) {
	_ = t.Root("blank") // want `span "blank" is assigned to the blank identifier`
}

func consumedWithoutEnd(t *telemetry.Tracer) bool {
	return t.Root("probe").Ended() // want `result of span "probe" is consumed by \.Ended`
}

func innerChildLeaks(t *telemetry.Tracer) {
	t.Root("outer").Child("inner").End() // want `result of span "outer" is consumed by \.Child`
}

// --- suppressed by defer ----------------------------------------------

func deferEnd(t *telemetry.Tracer, fail bool) int {
	sp := t.Root("ok")
	defer sp.End()
	if fail {
		return 1
	}
	return 0
}

func deferEndIfOpen(t *telemetry.Tracer, fail bool) int {
	sp := t.Root("guarded")
	defer sp.EndIfOpen()
	if fail {
		return 1
	}
	sp.End()
	return 0
}

func deferClosure(t *telemetry.Tracer, fail bool) int {
	sp := t.Root("closure")
	defer func() {
		sp.SetSim(0, 1)
		sp.End()
	}()
	if fail {
		return 1
	}
	return 0
}

func endedOnBothBranches(t *telemetry.Tracer, fail bool) int {
	sp := t.Root("branches")
	if fail {
		sp.End()
		return 1
	}
	sp.End()
	return 0
}

func inlineChainEnd(t *telemetry.Tracer) {
	t.Root("inline").SetAttr("k", "v").End()
}

// --- false-positive guards: ownership transfer ------------------------

type holder struct{ sp *telemetry.Span }

// Stored in a struct: the owner ends it later.
func storeInStruct(t *telemetry.Tracer, h *holder) {
	h.sp = t.Root("owned")
}

func storeInLiteral(t *telemetry.Tracer) holder {
	return holder{sp: t.Root("lit")}
}

// Returned to the caller, directly and via a variable.
func openSpan(t *telemetry.Tracer) *telemetry.Span {
	return t.Root("returned")
}

func openSpanVar(t *telemetry.Tracer, fail bool) *telemetry.Span {
	sp := t.Root("returned-var")
	if fail {
		return sp
	}
	return sp
}

// Handed to another function.
func register(sp *telemetry.Span) {}

func passAlong(t *telemetry.Tracer) {
	register(t.Root("passed"))
}

func passAlongVar(t *telemetry.Tracer) {
	sp := t.Root("passed-var")
	register(sp)
}
