// Package telemetry is a stub of gpucnn/internal/telemetry for the
// spanend fixtures: the analyzer matches by import-path base and
// method shape, so this GOPATH-style stand-in exercises it exactly.
package telemetry

type Tracer struct{}

func (t *Tracer) Root(name string) *Span { return &Span{} }

type Span struct{ ended bool }

func (s *Span) Child(name string) *Span    { return &Span{} }
func (s *Span) SetAttr(k, v string) *Span  { return s }
func (s *Span) SetProc(p int) *Span        { return s }
func (s *Span) SetSim(a, b int64) *Span    { return s }
func (s *Span) End()                       { s.ended = true }
func (s *Span) EndIfOpen() bool            { return !s.ended }
func (s *Span) Ended() bool                { return s.ended }
func (s *Span) AddEventCount(n int) *Tracer { return nil }
