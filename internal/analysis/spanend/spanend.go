// Package spanend defines an Analyzer that checks that every telemetry
// span minted by Tracer.Root or Span.Child reaches End (or EndIfOpen)
// on all control-flow paths of the creating function, unless ownership
// is handed to someone else (returned, stored, passed on, or captured
// by a closure — typically a defer).
//
// Un-ended spans are not cosmetic here: exporters walk the span tree
// and an open span under-reports its wall duration and keeps absorbing
// foreign events through any recorder still attached to it, which is
// exactly the measurement-corruption bug class PR 4 hand-fixed in
// multigpu. This analyzer makes that fix mechanical.
package spanend

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"gpucnn/internal/analysis/lintutil"
	"gpucnn/internal/analysis/paircheck"
)

const doc = `check that telemetry spans are ended on all control-flow paths

Every result of telemetry.Tracer.Root or telemetry.Span.Child must
reach .End() or .EndIfOpen() on every path through the creating
function (defer preferred), or escape to an owner that ends it.`

var Analyzer = &analysis.Analyzer{
	Name:     "spanend",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
}

var spec = paircheck.Spec{
	Analyzer: "spanend",
	NewCall:  newSpanCall,
	Fluent:   map[string]bool{"SetAttr": true, "SetProc": true, "SetSim": true},
	Release:  map[string]bool{"End": true, "EndIfOpen": true},
	Hint:     ".End (defer .EndIfOpen preferred on multi-exit paths)",
}

func run(pass *analysis.Pass) (any, error) {
	return paircheck.Run(pass, spec)
}

// newSpanCall matches telemetry.Tracer.Root and telemetry.Span.Child.
func newSpanCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := lintutil.MethodCallee(pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv().Type()
	switch fn.Name() {
	case "Root":
		if lintutil.IsNamed(recv, "telemetry", "Tracer") {
			return fmt.Sprintf("span %s", callDesc(call)), true
		}
	case "Child":
		if lintutil.IsNamed(recv, "telemetry", "Span") {
			return fmt.Sprintf("span %s", callDesc(call)), true
		}
	}
	return "", false
}

// callDesc renders the span's name argument when it is a literal, for
// friendlier diagnostics.
func callDesc(call *ast.CallExpr) string {
	if len(call.Args) == 1 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok {
			return lit.Value
		}
	}
	return "(dynamic name)"
}
