package lockheld_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/lockheld"
)

func TestLockHeld(t *testing.T) {
	atest.Run(t, atest.TestData(t), lockheld.Analyzer, "a")
}
