// Fixtures for the lockheld analyzer: blocking operations under held
// mutexes (positives), lock-free or default-guarded variants
// (negatives), //lint:ignore suppression, and lock-array acquisition
// ordering.
package a

import (
	"os"
	"sync"
	"time"

	"multigpu"
)

type S struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	ch    chan int
	wg    sync.WaitGroup
	locks []sync.Mutex
}

// SendLocked blocks on a channel send inside the critical section.
func (s *S) SendLocked() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send may block while s.mu is held`
	s.mu.Unlock()
}

// SendUnlocked releases first: clean.
func (s *S) SendUnlocked() {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- 1
}

// RecvDeferred: defer keeps the lock held through the receive.
func (s *S) RecvDeferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want `channel receive may block while s.mu is held`
}

// WaitRLocked: the read side of an RWMutex counts as held.
func (s *S) WaitRLocked() {
	s.rw.RLock()
	s.wg.Wait() // want `sync.WaitGroup.Wait may block while s.rw is held`
	s.rw.RUnlock()
}

// WaitUnlocked: no lock, no finding.
func (s *S) WaitUnlocked() {
	s.wg.Wait()
}

// TrySend: select with a default clause never blocks.
func (s *S) TrySend() {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

// BlockingSelect: no default clause, so the select parks the goroutine.
func (s *S) BlockingSelect(done chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-done: // want `select without default may block while s.mu is held`
	case s.ch <- 1:
	}
}

// BranchMerge: released on one branch only — still may-held after the
// merge, which is the conservative answer the check needs.
func (s *S) BranchMerge(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
	}
	s.ch <- 1 // want `channel send may block while s.mu is held`
}

// EarlyReturn: released on every path before the send — clean.
func (s *S) EarlyReturn(c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.ch <- 1
}

// RangeLocked: ranging over a channel blocks between elements.
func (s *S) RangeLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `range over channel may block while s.mu is held`
		_ = v
	}
}

// SleepLocked: time.Sleep is an intrinsic blocking call.
func (s *S) SleepLocked() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep may block while s.mu is held`
	s.mu.Unlock()
}

// ReadLocked: file I/O under the lock.
func (s *S) ReadLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = os.ReadFile("weights.bin") // want `os.ReadFile may block while s.mu is held`
}

// SpawnLocked: the goroutine body neither inherits the creator's held
// set nor charges its blocking to the creator.
func (s *S) SpawnLocked() {
	s.mu.Lock()
	go func() {
		s.ch <- 1
	}()
	s.mu.Unlock()
}

// LockedClosure: a function literal is analyzed on its own, so a lock
// taken inside it guards its own body.
func (s *S) LockedClosure() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.wg.Wait() // want `sync.WaitGroup.Wait may block while s.mu is held`
	}
}

// drain blocks; callers holding a lock inherit the finding.
func (s *S) drain() {
	s.wg.Wait()
}

// CloseLocked: transitive blocking through a same-package callee.
func (s *S) CloseLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.drain() // want `call to drain may block \(sync.WaitGroup.Wait\) while s.mu is held`
}

// Exec: Cluster.ExecOn queues behind the device's exclusive section.
func Exec(c *multigpu.Cluster, mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	c.ExecOn(0, func() {}) // want `Cluster.ExecOn may block while mu is held`
}

// IgnoredWait: suppressed with a reasoned directive.
func (s *S) IgnoredWait() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:ignore lockheld this mutex exists to serialise exactly this wait
	s.wg.Wait()
}

// OrderOK: constant indices in increasing order.
func (s *S) OrderOK() {
	s.locks[0].Lock()
	s.locks[1].Lock()
	s.locks[1].Unlock()
	s.locks[0].Unlock()
}

// OrderBad: constant indices in decreasing order deadlock against
// OrderOK running concurrently.
func (s *S) OrderBad() {
	s.locks[1].Lock()
	s.locks[0].Lock() // want `s.locks\[0\] acquired while s.locks\[1\] is held`
	s.locks[0].Unlock()
	s.locks[1].Unlock()
}

// OrderUnknown: non-constant indices cannot be proven increasing.
func (s *S) OrderUnknown(i, j int) {
	s.locks[i].Lock()
	s.locks[j].Lock() // want `s.locks\[j\] acquired while s.locks\[i\] is held`
	s.locks[j].Unlock()
	s.locks[i].Unlock()
}
