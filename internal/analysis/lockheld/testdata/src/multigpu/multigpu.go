// Package multigpu is a fixture stub of the real cluster type: the
// analyzer matches Cluster.ExecOn by receiver type name and package
// base, so this stands in for gpucnn/internal/multigpu.
package multigpu

import "sync"

// Cluster owns one lock per device.
type Cluster struct {
	locks []sync.Mutex
}

// ExecOn runs fn inside device i's exclusive section; it queues behind
// any other caller on the same device, i.e. it may block.
func (c *Cluster) ExecOn(i int, fn func()) {
	c.locks[i].Lock()
	defer c.locks[i].Unlock()
	fn()
}
