// Package lockheld defines an Analyzer that forbids blocking
// operations while a sync.Mutex or sync.RWMutex is held, and enforces
// a consistent acquisition order over lock arrays (the multigpu
// per-device `locks []sync.Mutex` pattern).
//
// Blocking operations are: channel send and receive, select without a
// default clause, ranging over a channel, sync.WaitGroup.Wait,
// multigpu's Cluster.ExecOn (it queues behind another dispatcher's
// exclusive device section), time.Sleep, and file/network I/O (os,
// net, net/http, os/exec). A function containing one of these — or
// calling, however deep, a function that does — is marked with a
// "may block" fact that is exported across package boundaries via the
// go/analysis facts mechanism, so `mu.Lock(); s.Close()` is caught
// even when the WaitGroup.Wait hides three packages away.
//
// Why it matters here: every serve/multigpu/planner cache serialises
// its state behind a mutex that the request hot path also takes. A
// blocking operation inside such a critical section converts an
// isolated stall (one slow device, one draining replica) into a
// pile-up of every goroutine that touches the lock. Lock-ordering
// violations on the per-device lock array are rarer but worse: two
// dispatchers acquiring locks[i]/locks[j] in opposite orders deadlock
// the whole cluster.
//
// The lock-held state comes from the paircheck lockflow layer: a
// forward may-analysis over the ctrlflow CFG, so a lock released on
// one branch but not the other still counts as (possibly) held after
// the merge, and a `defer mu.Unlock()` keeps the lock held to the end
// of the body — precisely the region the check must police.
//
// Suppress intentional blocking-under-lock (a mutex whose purpose is
// to serialise the blocking section itself, e.g. obs's process-wide
// CPU-profile window) with //lint:ignore lockheld <reason>.
package lockheld

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"gpucnn/internal/analysis/lintutil"
	"gpucnn/internal/analysis/paircheck"
)

const doc = `check that no blocking operation runs while a mutex is held

Channel operations, WaitGroup.Wait, Cluster.ExecOn, time.Sleep and
file/network I/O must not execute inside a sync.Mutex/RWMutex critical
section; calls to functions that transitively block are tracked via
facts. Locks taken from the same array must be acquired in increasing
index order.`

// Analyzer is the lockheld pass.
var Analyzer = &analysis.Analyzer{
	Name:      "lockheld",
	Doc:       doc,
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*blocksFact)(nil)},
}

// blocksFact marks a function that may block: it contains a blocking
// operation, or calls a function carrying this fact.
type blocksFact struct {
	Why string
}

func (*blocksFact) AFact()           {}
func (f *blocksFact) String() string { return "mayBlock(" + f.Why + ")" }

// candidate is one direct blocking operation found in a function body,
// keyed in funcScan by the node the CFG carries for it.
type candidate struct {
	desc string
}

// funcScan is the per-function result of scanBody.
type funcScan struct {
	cands   map[ast.Node]candidate
	callees []*ast.CallExpr // statically-resolved calls, for fact lookup
}

func run(pass *analysis.Pass) (any, error) {
	// Standard-library bodies are out of scope: the curated intrinsic
	// list below IS the stdlib blocking model. Analyzing GOROOT source
	// would mark half of fmt as blocking through channel operations on
	// cold panic paths and drown real findings in noise.
	if len(pass.Files) > 0 {
		if f := pass.Fset.File(pass.Files[0].Pos()); f != nil && inGoroot(f.Name()) {
			return nil, nil
		}
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	// Phase 1: compute the "may block" property for every declared
	// function — seeded by direct blocking operations and by facts
	// imported from dependencies, then propagated to fixpoint through
	// the package-local call graph — and export it as facts.
	type finfo struct {
		obj  *types.Func
		scan funcScan
	}
	var infos []finfo
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok || decl.Body == nil {
			return
		}
		infos = append(infos, finfo{obj: obj, scan: scanBody(pass, decl.Body)})
	})

	blocked := map[*types.Func]string{}
	calleeWhy := func(fn *types.Func) (string, bool) {
		if why, ok := blocked[fn]; ok {
			return why, true
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			var fact blocksFact
			if pass.ImportObjectFact(fn, &fact) {
				return fact.Why, true
			}
		}
		return "", false
	}
	for _, fi := range infos {
		for _, c := range fi.scan.cands {
			blocked[fi.obj] = c.desc
			break
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			if _, done := blocked[fi.obj]; done {
				continue
			}
			for _, call := range fi.scan.callees {
				callee := staticCallee(pass, call)
				if callee == nil || callee == fi.obj {
					continue
				}
				if why, ok := calleeWhy(callee); ok {
					blocked[fi.obj] = trimWhy(callee.Name() + ": " + why)
					changed = true
					break
				}
			}
		}
	}
	for obj, why := range blocked {
		pass.ExportObjectFact(obj, &blocksFact{Why: why})
	}

	// Phase 2: lock-aware check of every function and function literal.
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		if lintutil.IsTestFile(pass.Fset, n.Pos()) {
			return
		}
		var body *ast.BlockStmt
		var flow *paircheck.LockFlow
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			body = fn.Body
			flow = paircheck.NewLockFlow(pass, cfgs.FuncDecl(fn))
		case *ast.FuncLit:
			body = fn.Body
			flow = paircheck.NewLockFlow(pass, cfgs.FuncLit(fn))
		}
		scan := scanBody(pass, body)
		reported := map[ast.Node]bool{}
		flow.VisitHeld(func(n ast.Node, held paircheck.HeldSet) {
			if reported[n] {
				return
			}
			call, isCall := n.(*ast.CallExpr)

			// Acquisition ordering over lock arrays: taking locks[j]
			// while locks[i] from the same array is held requires a
			// provably increasing index (i < j, both constant).
			if isCall {
				if op, lock, ok := paircheck.MutexCall(pass, call); ok {
					if op == paircheck.OpAcquire && lock.Base != "" {
						for _, h := range held {
							if h.Base != lock.Base || h.Key == lock.Key {
								continue
							}
							if h.IndexVal != nil && lock.IndexVal != nil &&
								constant.Compare(h.IndexVal, token.LSS, lock.IndexVal) {
								continue // provably increasing order
							}
							reported[n] = true
							report(pass, call, "%s acquired while %s is held: same lock array without provably increasing index order", lock.Key, h.Key)
							break
						}
					}
					return // mutex ops themselves are not blocking candidates
				}
			}

			if len(held) == 0 {
				return
			}
			h, _ := held.Any()
			hline := pass.Fset.Position(h.Acquired).Line
			if c, ok := scan.cands[n]; ok {
				reported[n] = true
				report(pass, n, "%s may block while %s is held (acquired line %d); release the lock first", c.desc, h.Key, hline)
				return
			}
			if isCall {
				callee := staticCallee(pass, call)
				if callee == nil {
					return
				}
				if why, ok := calleeWhy(callee); ok {
					reported[n] = true
					report(pass, n, "call to %s may block (%s) while %s is held (acquired line %d); release the lock first", callee.Name(), trimWhy(why), h.Key, hline)
				}
			}
		})
	})
	return nil, nil
}

func report(pass *analysis.Pass, n ast.Node, format string, args ...any) {
	lintutil.Report(pass, "lockheld", analysis.Diagnostic{
		Pos: n.Pos(), End: n.End(),
		Message: fmt.Sprintf(format, args...),
	})
}

// inGoroot reports whether filename lies under GOROOT/src.
func inGoroot(filename string) bool {
	root := runtime.GOROOT()
	if root == "" {
		return false
	}
	prefix := filepath.Join(root, "src") + string(filepath.Separator)
	return strings.HasPrefix(filename, prefix)
}

// trimWhy bounds the transitive-reason chain in diagnostics and facts.
func trimWhy(why string) string {
	const max = 120
	if len(why) > max {
		return why[:max] + "..."
	}
	return why
}

// staticCallee resolves call to a statically-known function or method;
// nil for indirect, interface-method, builtin and conversion calls.
// Interface methods have no analyzable body anywhere, so facts never
// attach to them — filtering keeps them from looking resolvable.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	if m := lintutil.MethodCallee(pass.TypesInfo, call); m != nil {
		recv := m.Type().(*types.Signature).Recv().Type()
		if _, isIface := recv.Underlying().(*types.Interface); isIface {
			return nil
		}
		return m
	}
	return lintutil.FuncCallee(pass.TypesInfo, call)
}

// scanBody finds every direct blocking operation in body, skipping
// nested function literals, defers and go statements (they do not
// block body at that point), and collects statically-resolved calls
// for the transitive fact lookup. Select statements are handled as a
// unit: a select with a default clause never blocks (its comm
// operations are exempt), a select without one blocks and is recorded
// once, anchored at its first comm statement — the node the CFG
// carries for it.
func scanBody(pass *analysis.Pass, body *ast.BlockStmt) funcScan {
	scan := funcScan{cands: map[ast.Node]candidate{}}
	if body == nil {
		return scan
	}
	exempt := map[ast.Node]bool{}
	markExempt := func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			if m != nil {
				exempt[m] = true
			}
			return true
		})
	}
	addCand := func(n ast.Node, desc string) {
		if !exempt[n] {
			scan.cands[n] = candidate{desc: desc}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case nil:
			return true
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			hasDefault := false
			var firstComm ast.Stmt
			for _, cc := range s.Body.List {
				clause := cc.(*ast.CommClause)
				if clause.Comm == nil {
					hasDefault = true
				} else {
					if firstComm == nil {
						firstComm = clause.Comm
					}
					markExempt(clause.Comm)
				}
			}
			if !hasDefault && firstComm != nil {
				scan.cands[firstComm] = candidate{desc: "select without default"}
			}
		case *ast.SendStmt:
			addCand(s, "channel send")
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				addCand(s, "channel receive")
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(s.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					addCand(s.X, "range over channel")
				}
			}
		case *ast.CallExpr:
			if desc, ok := intrinsicBlocking(pass, s); ok {
				addCand(s, desc)
			} else if staticCallee(pass, s) != nil {
				scan.callees = append(scan.callees, s)
			}
		}
		return true
	})
	return scan
}

// intrinsicBlocking matches the curated list of known-blocking calls.
func intrinsicBlocking(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	if m := lintutil.MethodCallee(pass.TypesInfo, call); m != nil {
		recv := m.Type().(*types.Signature).Recv().Type()
		name := m.Name()
		switch {
		case lintutil.IsNamed(recv, "sync", "WaitGroup") && name == "Wait":
			return "sync.WaitGroup.Wait", true
		case lintutil.IsNamed(recv, "multigpu", "Cluster") && name == "ExecOn":
			return "Cluster.ExecOn", true
		case lintutil.IsNamed(recv, "os", "File") &&
			(name == "Read" || name == "ReadAt" || name == "Write" ||
				name == "WriteAt" || name == "WriteString" || name == "Sync" || name == "Close"):
			return "os.File." + name, true
		case lintutil.IsNamed(recv, "http", "Client") &&
			(name == "Do" || name == "Get" || name == "Post" || name == "PostForm" || name == "Head"):
			return "http.Client." + name, true
		case lintutil.IsNamed(recv, "http", "Server") &&
			(name == "ListenAndServe" || name == "Serve" || name == "Shutdown"):
			return "http.Server." + name, true
		case lintutil.IsNamed(recv, "exec", "Cmd") &&
			(name == "Run" || name == "Wait" || name == "Output" || name == "CombinedOutput"):
			return "exec.Cmd." + name, true
		}
		return "", false
	}
	fn := lintutil.FuncCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep", true
	case path == "os":
		switch name {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile",
			"Remove", "RemoveAll", "Rename", "Mkdir", "MkdirAll", "ReadDir":
			return "os." + name, true
		}
	case path == "net":
		switch name {
		case "Dial", "DialTimeout", "Listen", "ListenPacket":
			return "net." + name, true
		}
	case lintutil.PathIs(path, "http"):
		switch name {
		case "Get", "Head", "Post", "PostForm", "ListenAndServe", "ListenAndServeTLS":
			return "http." + name, true
		}
	}
	return "", false
}
