// Golden tests for the paircheck engine itself, driven by a minimal
// acquire/release discipline over the res fixture stub. The fixtures
// stress the control-flow corners the lockflow layer leans on:
// deferred closures, method values, defer inside loops, and
// early-return paths.
package paircheck_test

import (
	"go/ast"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/lintutil"
	"gpucnn/internal/analysis/paircheck"
)

var restest = &analysis.Analyzer{
	Name:     "restest",
	Doc:      "exercise the paircheck engine over the res fixture stub",
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	Run: func(pass *analysis.Pass) (any, error) {
		return paircheck.Run(pass, paircheck.Spec{
			Analyzer: "restest",
			NewCall: func(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
				fn := lintutil.FuncCallee(pass.TypesInfo, call)
				if fn == nil || fn.Name() != "Acquire" ||
					fn.Pkg() == nil || !lintutil.PathIs(fn.Pkg().Path(), "res") {
					return "", false
				}
				if len(call.Args) == 1 {
					if lit, ok := call.Args[0].(*ast.BasicLit); ok {
						return "handle " + lit.Value, true
					}
				}
				return "handle", true
			},
			Fluent:  map[string]bool{"Tag": true},
			Release: map[string]bool{"Close": true},
			Hint:    ".Close",
		})
	},
}

func TestPairCheckEdges(t *testing.T) {
	atest.Run(t, atest.TestData(t), restest, "a")
}
