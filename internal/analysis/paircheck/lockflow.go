// lockflow.go is the lock-aware dataflow layer of the paircheck
// engine: a forward may-analysis over the ctrlflow CFG that computes,
// for every reachable point of a function, the set of sync.Mutex /
// sync.RWMutex values that may be held there.
//
// The abstraction is deliberately syntactic: a lock is identified by
// the canonical source text of the receiver expression ("s.mu",
// "c.locks[i]"), which is exactly the granularity a reviewer reasons
// at. Acquisitions (Lock, RLock, TryLock, TryRLock) add the lock to
// the set; releases (Unlock, RUnlock) remove it; joins union — a lock
// released on only one branch still *may* be held after the merge,
// which is the conservative direction for "no blocking op while a
// lock is held" checks. A `defer mu.Unlock()` has no in-body effect:
// the lock really is held for the rest of the function, which is the
// region downstream analyzers must police.
//
// Function literals, deferred calls and go statements are opaque:
// their bodies neither apply lock effects at the point of definition
// nor receive the creator's held set (a closure may run on any
// goroutine at any time). Each FuncLit is analyzed separately with an
// empty entry set by whoever drives LockFlow over the inspector.
package paircheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/cfg"
)

// HeldLock describes one mutex that may be held at a program point.
type HeldLock struct {
	Key      string         // canonical receiver text, e.g. "s.mu" or "c.locks[i]"
	RLock    bool           // acquired via RLock/TryRLock (read side of an RWMutex)
	Acquired token.Pos      // acquisition site
	Base     string         // for locks in a slice/array ("c.locks"); "" otherwise
	Index    ast.Expr       // index expression when Base != ""
	IndexVal constant.Value // constant value of Index, or nil
}

// HeldSet is the set of locks that may be held, keyed by HeldLock.Key.
type HeldSet map[string]HeldLock

func (s HeldSet) clone() HeldSet {
	out := make(HeldSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Any returns an arbitrary held lock (the one with the smallest
// acquisition position, for deterministic diagnostics).
func (s HeldSet) Any() (HeldLock, bool) {
	var best HeldLock
	found := false
	for _, h := range s {
		if !found || h.Acquired < best.Acquired {
			best, found = h, true
		}
	}
	return best, found
}

// MutexOp classifies a mutex method call.
type MutexOp int

const (
	OpAcquire MutexOp = iota // Lock, RLock, TryLock, TryRLock
	OpRelease                // Unlock, RUnlock
)

// MutexCall reports whether call invokes a locking method on a
// sync.Mutex or sync.RWMutex (directly or through embedding) and
// classifies it. The returned HeldLock identifies the receiver.
func MutexCall(pass *analysis.Pass, call *ast.CallExpr) (MutexOp, HeldLock, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, HeldLock{}, false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return 0, HeldLock{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return 0, HeldLock{}, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return 0, HeldLock{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" ||
		(obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return 0, HeldLock{}, false
	}

	var op MutexOp
	rlock := false
	switch fn.Name() {
	case "Lock", "TryLock":
		op = OpAcquire
	case "RLock", "TryRLock":
		op, rlock = OpAcquire, true
	case "Unlock", "RUnlock":
		op = OpRelease
	default:
		return 0, HeldLock{}, false // Locker conversions, RLocker, ...
	}

	h := HeldLock{
		Key:      types.ExprString(sel.X),
		RLock:    rlock,
		Acquired: call.Pos(),
	}
	if ix, ok := sel.X.(*ast.IndexExpr); ok {
		// Only slices/arrays of mutexes count as lock arrays (an
		// IndexExpr can also be a generic instantiation or map index).
		switch pass.TypesInfo.TypeOf(ix.X).Underlying().(type) {
		case *types.Slice, *types.Array, *types.Pointer:
			h.Base = types.ExprString(ix.X)
			h.Index = ix.Index
			if tv, ok := pass.TypesInfo.Types[ix.Index]; ok && tv.Value != nil {
				h.IndexVal = tv.Value
			}
		}
	}
	return op, h, true
}

// lockEffect is one acquisition or release inside a CFG node, in
// source order.
type lockEffect struct {
	op   MutexOp
	lock HeldLock
	pos  token.Pos
}

// LockFlow holds the per-function analysis result.
type LockFlow struct {
	pass    *analysis.Pass
	g       *cfg.CFG
	effects map[*cfg.Block][][]lockEffect // aligned with Block.Nodes
	entry   map[*cfg.Block]HeldSet        // held at block entry (reachable blocks only)
}

// NewLockFlow runs the forward dataflow over g and returns the result.
// g may be nil (e.g. for external functions), in which case every
// query returns an empty set.
func NewLockFlow(pass *analysis.Pass, g *cfg.CFG) *LockFlow {
	lf := &LockFlow{
		pass:    pass,
		g:       g,
		effects: map[*cfg.Block][][]lockEffect{},
		entry:   map[*cfg.Block]HeldSet{},
	}
	if g == nil || len(g.Blocks) == 0 {
		return lf
	}

	for _, b := range g.Blocks {
		effs := make([][]lockEffect, len(b.Nodes))
		for i, n := range b.Nodes {
			effs[i] = lf.nodeEffects(n)
		}
		lf.effects[b] = effs
	}

	// Worklist fixpoint: entry[b] = ∪ exit[preds]; the CFG exposes only
	// successors, so propagation pushes exit sets forward.
	entryB := g.Blocks[0]
	lf.entry[entryB] = HeldSet{}
	work := []*cfg.Block{entryB}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := lf.entry[b].clone()
		for _, effs := range lf.effects[b] {
			for _, e := range effs {
				out = apply(out, e)
			}
		}
		for _, succ := range b.Succs {
			cur, seen := lf.entry[succ]
			if !seen {
				lf.entry[succ] = out.clone()
				work = append(work, succ)
				continue
			}
			changed := false
			for k, v := range out {
				if _, ok := cur[k]; !ok {
					cur[k] = v
					changed = true
				}
			}
			if changed {
				work = append(work, succ)
			}
		}
	}
	return lf
}

func apply(held HeldSet, e lockEffect) HeldSet {
	switch e.op {
	case OpAcquire:
		if _, ok := held[e.lock.Key]; !ok {
			held[e.lock.Key] = e.lock
		}
	case OpRelease:
		delete(held, e.lock.Key)
	}
	return held
}

// nodeEffects extracts the lock operations of one CFG node's subtree
// in source order. Function literals, defers and go statements are
// opaque: a `defer mu.Unlock()` keeps mu held for the rest of the
// body, and a closure's lock traffic happens whenever the closure
// runs, not here.
func (lf *LockFlow) nodeEffects(node ast.Node) []lockEffect {
	var out []lockEffect
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if op, h, ok := MutexCall(lf.pass, call); ok {
				out = append(out, lockEffect{op: op, lock: h, pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

// VisitHeld walks every AST node of every reachable CFG node, in
// source order within each node, and invokes visit with the set of
// locks that may be held when that node begins to execute. The set
// excludes effects of the node itself at or after its own position —
// an acquisition call sees the state *before* it takes the lock,
// which is what an acquisition-ordering check needs. Subtrees of
// FuncLit, DeferStmt and GoStmt are not visited (see package doc).
//
// The held set passed to visit is shared and must not be retained or
// mutated; clone it if needed beyond the callback.
func (lf *LockFlow) VisitHeld(visit func(n ast.Node, held HeldSet)) {
	if lf.g == nil {
		return
	}
	for _, b := range lf.g.Blocks {
		entry, reachable := lf.entry[b]
		if !reachable {
			continue
		}
		held := entry.clone()
		for i, node := range b.Nodes {
			effs := lf.effects[b][i]
			next := 0
			ast.Inspect(node, func(n ast.Node) bool {
				if n == nil {
					return true
				}
				switch n.(type) {
				case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
					return false
				}
				// Apply every effect positioned strictly before n, so n
				// observes the state it executes under.
				for next < len(effs) && effs[next].pos < n.Pos() {
					held = apply(held, effs[next])
					next++
				}
				visit(n, held)
				return true
			})
			for next < len(effs) {
				held = apply(held, effs[next])
				next++
			}
		}
	}
}
