// Package paircheck is the shared control-flow engine behind the
// spanend and arenaput analyzers: a resource minted by a "creation"
// call must reach a releasing use on every path from its creation to
// every return of the enclosing function.
//
// The engine is modeled on vet's lostcancel pass: creations bound to a
// local variable are tracked through the function's CFG (provided by
// the ctrlflow pass) and a diagnostic is emitted when some path reaches
// a return with the resource still open. Unlike lostcancel, not every
// reference to the variable counts as a release: a method call on the
// tracked value (span.SetAttr, arena.Float32) leaves the resource open,
// while handing the value to another function, returning it, storing
// it, or capturing it in a closure transfers ownership and ends
// tracking — that conservatism is what keeps "span stored in a struct
// and ended by its owner" from being a false positive.
package paircheck

import (
	"fmt"
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"

	"gpucnn/internal/analysis/lintutil"
)

// Spec configures one pairing discipline.
type Spec struct {
	// Analyzer is the analyzer name, used to honour //lint:ignore.
	Analyzer string

	// NewCall reports whether call mints a tracked resource and, if so,
	// describes it for diagnostics (e.g. `span "batch"` or
	// `workspace.Get()`).
	NewCall func(pass *analysis.Pass, call *ast.CallExpr) (what string, ok bool)

	// Fluent lists methods that return the receiver itself, so chain
	// tracking continues through them (Span.SetAttr and friends).
	Fluent map[string]bool

	// Release lists methods on the resource that close it (Span.End).
	// When empty, release must happen by passing the value to a
	// function (workspace.Put), which the escape rule recognises.
	Release map[string]bool

	// Hint names the releasing call in diagnostics, e.g.
	// "End (defer preferred)" or "workspace.Put (defer preferred)".
	Hint string
}

// Run executes the pairing check over every function in the pass.
func Run(pass *analysis.Pass, spec Spec) (any, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		runFunc(pass, spec, n)
	})
	return nil, nil
}

// report emits a formatted diagnostic at n, honouring //lint:ignore.
func report(pass *analysis.Pass, spec Spec, n ast.Node, format string, args ...any) {
	lintutil.Report(pass, spec.Analyzer, analysis.Diagnostic{
		Pos: n.Pos(), End: n.End(),
		Message: fmt.Sprintf(format, args...),
	})
}

// tracked is one creation bound to a local variable.
type tracked struct {
	v    *types.Var
	stmt ast.Node // the AssignStmt/ValueSpec that defines v
	what string
}

// runFunc analyzes a single named or literal function. Nested function
// literals are skipped here; the inspector visits them separately.
// Test files are exempt: unit tests legitimately construct half-open
// resources (telemetry's own span tests assert Ended() == false).
func runFunc(pass *analysis.Pass, spec Spec, node ast.Node) {
	if lintutil.IsTestFile(pass.Fset, node.Pos()) {
		return
	}
	var funcScope *types.Scope
	switch v := node.(type) {
	case *ast.FuncDecl:
		funcScope = pass.TypesInfo.Scopes[v.Type]
	case *ast.FuncLit:
		funcScope = pass.TypesInfo.Scopes[v.Type]
	}
	if funcScope == nil {
		return
	}

	var vars []tracked

	stack := make([]ast.Node, 0, 32)
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit:
			if len(stack) > 0 {
				return false // analyzed on its own visit
			}
		case nil:
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)

		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		what, ok := spec.NewCall(pass, call)
		if !ok {
			return true
		}

		// Climb the method chain built on the creation's result:
		// fluent methods keep the resource flowing, a release method
		// closes it inline, and any other method consumes the value
		// with the resource still open.
		top := len(stack) - 1
		for top >= 3 {
			sel, ok := stack[top-1].(*ast.SelectorExpr)
			if !ok || sel.X != stack[top] {
				break
			}
			outer, ok := stack[top-2].(*ast.CallExpr)
			if !ok || outer.Fun != sel {
				break
			}
			m := sel.Sel.Name
			if spec.Release[m] {
				return true // released inline: t.Root("x").SetAttr(...).End()
			}
			if !spec.Fluent[m] {
				report(pass, spec, call,
					"result of %s is consumed by .%s with the resource still open; call %s first",
					what, m, spec.Hint)
				return true
			}
			top -= 2
		}

		// stack[top] is the outermost chain expression; classify what
		// receives its value.
		if top < 1 {
			return true
		}
		switch parent := stack[top-1].(type) {
		case *ast.ExprStmt:
			report(pass, spec, call,
				"result of %s is discarded; call %s on it", what, spec.Hint)
		case *ast.AssignStmt:
			if id := lhsFor(parent.Lhs, parent.Rhs, stack[top].(ast.Expr)); id != nil {
				if id.Name == "_" {
					report(pass, spec, call,
						"result of %s is assigned to the blank identifier; call %s on it", what, spec.Hint)
					return true
				}
				if v := localVar(pass, funcScope, id); v != nil {
					vars = append(vars, tracked{v: v, stmt: parent, what: what})
				}
			}
		case *ast.ValueSpec:
			if id := lhsIdentFor(parent.Names, parent.Values, stack[top].(ast.Expr)); id != nil && id.Name != "_" {
				if v := localVar(pass, funcScope, id); v != nil {
					vars = append(vars, tracked{v: v, stmt: parent, what: what})
				}
			}
		default:
			// Argument, return value, composite literal, channel send,
			// …: the value escapes and its new owner is responsible.
		}
		return true
	})

	if len(vars) == 0 {
		return
	}

	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)
	var g *cfg.CFG
	switch node := node.(type) {
	case *ast.FuncDecl:
		g = cfgs.FuncDecl(node)
	case *ast.FuncLit:
		g = cfgs.FuncLit(node)
	}
	if g == nil {
		return
	}

	for _, tr := range vars {
		if ret := leakPath(pass, spec, g, tr); ret != nil {
			line := pass.Fset.Position(tr.stmt.Pos()).Line
			lintutil.Report(pass, spec.Analyzer, analysis.Diagnostic{
				Pos: tr.stmt.Pos(), End: tr.stmt.End(),
				Message: fmt.Sprintf("%s assigned to %s does not reach %s on all paths", tr.what, tr.v.Name(), spec.Hint),
			})
			pos, end := ret.Pos(), ret.End()
			if pass.Fset.File(pos) != pass.Fset.File(end) {
				end = pos // guard against synthetic returns past EOF
			}
			lintutil.Report(pass, spec.Analyzer, analysis.Diagnostic{
				Pos: pos, End: end,
				Message: fmt.Sprintf("this return may be reached without releasing %s defined on line %d", tr.v.Name(), line),
			})
		}
	}
}

// lhsFor returns the assignment target aligned with rhs, or nil.
func lhsFor(lhs, rhs []ast.Expr, target ast.Expr) *ast.Ident {
	if len(lhs) != len(rhs) {
		return nil
	}
	for i, r := range rhs {
		if r == target {
			id, _ := lhs[i].(*ast.Ident)
			return id
		}
	}
	return nil
}

// lhsIdentFor is lhsFor for var declarations.
func lhsIdentFor(names []*ast.Ident, values []ast.Expr, target ast.Expr) *ast.Ident {
	if len(names) != len(values) {
		return nil
	}
	for i, v := range values {
		if v == target {
			return names[i]
		}
	}
	return nil
}

// localVar resolves id to a variable declared inside the function;
// wider-scoped variables are assumed to have other owners.
func localVar(pass *analysis.Pass, funcScope *types.Scope, id *ast.Ident) *types.Var {
	if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok && funcScope.Contains(v.Pos()) {
		return v
	}
	return nil
}

// leakPath searches the CFG for a path from the defining statement to a
// return along which the tracked variable is never released (and never
// escapes). It returns the offending return statement, or nil.
func leakPath(pass *analysis.Pass, spec Spec, g *cfg.CFG, tr tracked) *ast.ReturnStmt {
	// released reports whether stmts contain a use of v that releases
	// the resource or transfers ownership.
	released := func(stmts []ast.Node) bool {
		found := false
		for _, stmt := range stmts {
			if found {
				break
			}
			st := make([]ast.Node, 0, 16)
			ast.Inspect(stmt, func(n ast.Node) bool {
				if n == nil {
					st = st[:len(st)-1]
					return true
				}
				st = append(st, n)
				if found {
					return false
				}
				id, ok := n.(*ast.Ident)
				if !ok || pass.TypesInfo.Uses[id] != tr.v {
					return true
				}
				if classifyUse(spec, st) {
					found = true
				}
				return true
			})
		}
		return found
	}

	memo := make(map[*cfg.Block]bool)
	blockReleases := func(b *cfg.Block) bool {
		r, ok := memo[b]
		if !ok {
			r = released(b.Nodes)
			memo[b] = r
		}
		return r
	}

	// Locate the defining block and the statements after the creation.
	var defblock *cfg.Block
	var rest []ast.Node
outer:
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			if n == tr.stmt {
				defblock = b
				rest = b.Nodes[i+1:]
				break outer
			}
		}
	}
	if defblock == nil {
		return nil // e.g. dead code: the creation never executes
	}

	if released(rest) {
		return nil
	}
	if ret := defblock.Return(); ret != nil {
		return ret
	}

	seen := make(map[*cfg.Block]bool)
	var search func(blocks []*cfg.Block) *ast.ReturnStmt
	search = func(blocks []*cfg.Block) *ast.ReturnStmt {
		for _, b := range blocks {
			if seen[b] {
				continue
			}
			seen[b] = true
			if blockReleases(b) {
				continue
			}
			if ret := b.Return(); ret != nil {
				return ret
			}
			if ret := search(b.Succs); ret != nil {
				return ret
			}
		}
		return nil
	}
	return search(defblock.Succs)
}

// classifyUse decides whether the variable reference at the top of the
// stack releases the resource or transfers its ownership. Method calls
// on the value (other than Release methods, reached through any run of
// Fluent methods) keep the resource open; every other kind of use —
// function argument, return value, store, closure capture — counts as
// an ownership transfer.
func classifyUse(spec Spec, stack []ast.Node) bool {
	// A reference inside a nested function literal is a capture; the
	// closure (often a defer) owns the release from here on.
	for _, n := range stack[:len(stack)-1] {
		if _, ok := n.(*ast.FuncLit); ok {
			return true
		}
	}

	top := len(stack) - 1
	for {
		if top == 0 {
			// The fluent chain (or the bare variable) is the entire
			// CFG node — go/cfg stores an ExprStmt's expression, not
			// the statement — so the resource is still open.
			return false
		}
		sel, ok := stack[top-1].(*ast.SelectorExpr)
		if !ok || sel.X != stack[top] {
			// Not a method-call receiver. A bare expression statement
			// (a fluent chain that petered out) leaves the resource
			// open; any other context hands the value on.
			_, isStmt := stack[top-1].(*ast.ExprStmt)
			return !isStmt
		}
		if top == 1 {
			return true // method value at the node root: treat as escape
		}
		call, ok := stack[top-2].(*ast.CallExpr)
		if !ok || call.Fun != sel {
			return true // method value like f := sp.End: treat as escape
		}
		m := sel.Sel.Name
		if spec.Release[m] {
			return true
		}
		if !spec.Fluent[m] {
			return false // carve/setter call: resource still open
		}
		top -= 2
	}
}
