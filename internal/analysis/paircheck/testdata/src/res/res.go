// Package res is a minimal acquire/release resource for the paircheck
// engine's own golden tests: Acquire mints, Tag is fluent, Close
// releases, Done merely consumes.
package res

// Handle is the tracked resource.
type Handle struct{ open bool }

// Acquire mints an open handle.
func Acquire(name string) *Handle { return &Handle{open: true} }

// Tag returns its receiver, continuing the fluent chain.
func (h *Handle) Tag(t string) *Handle { return h }

// Close releases the handle.
func (h *Handle) Close() { h.open = false }

// Done consumes the handle without releasing it.
func (h *Handle) Done() bool { return !h.open }
