// Fixtures for the paircheck engine's edge cases: early returns,
// deferred closures, method values, and defer inside loops.
package a

import "res"

// --- early-return paths ------------------------------------------------

func earlyReturnLeak(fail bool) int {
	h := res.Acquire("early") // want `handle "early" assigned to h does not reach \.Close`
	if fail {
		return 1 // want `this return may be reached without releasing h`
	}
	h.Close()
	return 0
}

func earlyReturnClosed(fail bool) int {
	h := res.Acquire("both")
	if fail {
		h.Close()
		return 1
	}
	h.Close()
	return 0
}

// --- deferred closures -------------------------------------------------

// A deferred closure that closes: the capture transfers ownership and
// the release really happens on every path.
func deferredClosure(fail bool) int {
	h := res.Acquire("dc")
	defer func() { h.Close() }()
	if fail {
		return 1
	}
	return 0
}

// A closure capture hands the handle to a new owner even when the
// engine cannot see the release; conservatively clean by design.
func capturedForLater() func() {
	h := res.Acquire("cap")
	return func() { h.Tag("later").Close() }
}

// A plain defer of the release method on a fluent chain result.
func deferDirect(fail bool) int {
	h := res.Acquire("dd").Tag("t")
	defer h.Close()
	if fail {
		return 1
	}
	return 0
}

// --- method values -----------------------------------------------------

// Binding h.Close as a method value transfers ownership to the value;
// whoever calls f releases.
func methodValue(fail bool) int {
	h := res.Acquire("mv")
	f := h.Close
	if fail {
		return 1
	}
	f()
	return 0
}

// --- defer in loops ----------------------------------------------------

// defer h.Close() inside a loop releases every iteration's handle at
// function exit: late, but released — clean.
func deferInLoop(n int) {
	for i := 0; i < n; i++ {
		h := res.Acquire("loop")
		defer h.Close()
	}
}

// The loop body that never releases leaks each iteration.
func loopLeak(n int) {
	for i := 0; i < n; i++ {
		h := res.Acquire("leak") // want `handle "leak" assigned to h does not reach \.Close`
		h.Tag("t")
	}
	return // want `this return may be reached without releasing h`
}

// --- chain consumption -------------------------------------------------

func consumed() bool {
	return res.Acquire("c").Done() // want `result of handle "c" is consumed by \.Done`
}

func discarded() {
	res.Acquire("d") // want `result of handle "d" is discarded`
}

func inlineChainClose() {
	res.Acquire("inline").Tag("t").Close()
}
