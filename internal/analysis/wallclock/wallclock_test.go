package wallclock_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/wallclock"
)

func TestWallClock(t *testing.T) {
	// gpusim is in the sim domain; a is not and stays silent.
	atest.Run(t, atest.TestData(t), wallclock.Analyzer, "gpusim", "a")
}
