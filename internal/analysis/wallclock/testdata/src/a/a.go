// Package a is outside the sim domain: wall-clock reads are fine.
package a

import "time"

// Latency is a serving-layer measurement; wallclock must not fire.
func Latency(start time.Time) time.Duration {
	return time.Since(start)
}

// Stamp is likewise fine here.
func Stamp() time.Time {
	return time.Now()
}
