// Fixtures for wallclock: this package's base name ("gpusim") puts it
// in the simulated-time domain.
package gpusim

import "time"

// Cost models a kernel's duration — entirely from parameters.
func Cost(flops, flopsPerSec float64) time.Duration {
	return time.Duration(flops / flopsPerSec * float64(time.Second))
}

// Stamp reads the wall clock in the sim domain.
func Stamp() time.Time {
	return time.Now() // want `time.Now in sim-domain package gpusim`
}

// Elapsed measures host time in the sim domain.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in sim-domain package gpusim`
}

// Probe is a sanctioned calibration boundary.
func Probe(start time.Time) time.Duration {
	//lint:ignore wallclock calibration probe comparing model to measurement
	return time.Since(start)
}

// Sleeping is not a clock read; other time functions stay legal.
func Sleeping() {
	time.Sleep(time.Millisecond)
}
