// Package wallclock defines an Analyzer that keeps the wall clock out
// of the simulated-time domain: no time.Now or time.Since in the
// gpusim and planner packages.
//
// The paper reproduction derives every crossover in Figure 3 and
// Table I from *modeled* time — gpusim's device cost model and the
// planner's objective scoring. A stray time.Now in that domain
// silently mixes measured host time into modeled GPU time, the exact
// conflation DeLTA warns about, and turns a deterministic cost model
// into one that depends on the build machine's load. The serving
// layer (serve, obs, telemetry) lives in wall-clock time on purpose
// and is out of scope.
//
// The one legitimate crossing is an explicitly marked probe boundary,
// where the planner calibrates the model against a real measurement:
// suppress it with //lint:ignore wallclock <reason>.
package wallclock

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"gpucnn/internal/analysis/lintutil"
)

const doc = `forbid wall-clock reads in simulated-time packages

gpusim and planner model time; time.Now/time.Since there mixes
measured host time into modeled GPU time. Mark deliberate calibration
probes with //lint:ignore wallclock <reason>.`

// Analyzer is the wallclock pass.
var Analyzer = &analysis.Analyzer{
	Name:     "wallclock",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

// simDomain lists the import-path bases whose time is modeled, not
// measured.
var simDomain = []string{"gpusim", "planner"}

func run(pass *analysis.Pass) (any, error) {
	inSim := false
	for _, base := range simDomain {
		if lintutil.PathIs(pass.Pkg.Path(), base) {
			inSim = true
			break
		}
	}
	if !inSim {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if lintutil.IsTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn := lintutil.FuncCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
			return
		}
		if name := fn.Name(); name == "Now" || name == "Since" {
			lintutil.Report(pass, "wallclock", analysis.Diagnostic{
				Pos: call.Pos(), End: call.End(),
				Message: "time." + name + " in sim-domain package " + pass.Pkg.Name() +
					": model time flows through gpusim costs, not the wall clock (//lint:ignore wallclock <reason> for calibration probes)",
			})
		}
	})
	return nil, nil
}
