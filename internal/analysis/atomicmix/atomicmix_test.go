package atomicmix_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	atest.Run(t, atest.TestData(t), atomicmix.Analyzer, "a")
}
