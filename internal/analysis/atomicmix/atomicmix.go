// Package atomicmix defines an Analyzer that reports variables
// accessed both through sync/atomic and through plain loads and
// stores.
//
// Mixing the two is the subtlest kind of data race: the atomic side
// establishes no happens-before edge for the plain side, so the code
// passes casual testing (and often the race detector, if the plain
// access sits on a rarely-taken path) and then loses updates under
// load. The shared counters in par, serve and the planner cache are
// exactly where this bites. The fix is mechanical — make every access
// atomic, or better, change the field's type to atomic.Int64 and let
// the type system enforce it.
//
// A variable is "atomic" once any &v is passed to a sync/atomic
// Add/Load/Store/Swap/CompareAndSwap function; that classification is
// exported as a fact on the variable, so a plain access in a
// downstream package is caught too. Suppress deliberate mixed access
// (e.g. a plain read inside a section that excludes all writers) with
// //lint:ignore atomicmix <reason>.
package atomicmix

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"gpucnn/internal/analysis/lintutil"
)

const doc = `report variables accessed both atomically and with plain loads/stores

Once &v goes to sync/atomic, every access to v must be atomic: the
plain side of a mixed access has no happens-before edge and races with
the atomic side. Prefer converting the field to atomic.Int64.`

// Analyzer is the atomicmix pass.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicmix",
	Doc:       doc,
	Run:       run,
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*AtomicFact)(nil)},
}

// AtomicFact marks a variable that some analyzed package accesses via
// sync/atomic.
type AtomicFact struct {
	Op string // the atomic function first seen, e.g. "AddInt64"
}

func (*AtomicFact) AFact()           {}
func (f *AtomicFact) String() string { return "atomic(" + f.Op + ")" }

func run(pass *analysis.Pass) (any, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Phase 1: find every &v handed to sync/atomic; classify v as
	// atomic and exempt the argument subtree from the plain-access scan.
	type site struct {
		op  string
		pos token.Pos
	}
	atomicVars := map[*types.Var]site{}
	exempt := map[ast.Node]bool{}
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		fn := lintutil.FuncCallee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomicOp(fn.Name()) {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		addr, ok := call.Args[0].(*ast.UnaryExpr)
		if !ok || addr.Op != token.AND {
			return
		}
		if v := resolveVar(pass, addr.X); v != nil {
			if _, seen := atomicVars[v]; !seen {
				atomicVars[v] = site{op: fn.Name(), pos: call.Pos()}
			}
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if m != nil {
					exempt[m] = true
				}
				return true
			})
		}
	})
	for v, s := range atomicVars {
		if v.Pkg() == pass.Pkg {
			pass.ExportObjectFact(v, &AtomicFact{Op: s.op})
		}
	}

	// Phase 2: every remaining use of an atomic variable is a plain
	// load or store. Variables atomic in an upstream package arrive as
	// facts.
	insp.Preorder([]ast.Node{(*ast.Ident)(nil)}, func(n ast.Node) {
		id := n.(*ast.Ident)
		if exempt[id] || lintutil.IsTestFile(pass.Fset, id.Pos()) {
			return
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok {
			return
		}
		if s, ok := atomicVars[v]; ok {
			report(pass, id, fmt.Sprintf("%s is accessed via atomic.%s (line %d) but plainly here; use sync/atomic for every access (or an atomic.Int64 field)",
				id.Name, s.op, pass.Fset.Position(s.pos).Line))
			return
		}
		var fact AtomicFact
		if v.Pkg() != nil && v.Pkg() != pass.Pkg && pass.ImportObjectFact(v, &fact) {
			report(pass, id, fmt.Sprintf("%s is accessed via atomic.%s in its home package but plainly here; use sync/atomic for every access",
				id.Name, fact.Op))
		}
	})
	return nil, nil
}

func report(pass *analysis.Pass, n ast.Node, msg string) {
	lintutil.Report(pass, "atomicmix", analysis.Diagnostic{
		Pos: n.Pos(), End: n.End(), Message: msg,
	})
}

// atomicOp reports whether name is a sync/atomic access function
// (AddInt64, LoadUint32, StoreInt32, SwapPointer, CompareAndSwap...).
func atomicOp(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

// resolveVar maps the operand of &operand to the variable object it
// names: an identifier or the field of a selector. Index expressions
// (&xs[i]) have no per-element object and are not tracked.
func resolveVar(pass *analysis.Pass, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, _ := pass.TypesInfo.Uses[x].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := pass.TypesInfo.Uses[x.Sel].(*types.Var)
		return v
	}
	return nil
}
