// Fixtures for atomicmix: mixed atomic/plain access (positives),
// consistently-atomic and consistently-plain variables (negatives),
// and //lint:ignore suppression.
package a

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	plain  int64
	boxed  atomic.Int64
}

// IncHits makes hits an atomic variable.
func (c *counters) IncHits() {
	atomic.AddInt64(&c.hits, 1)
}

// ReadHits reads it plainly: racy against IncHits.
func (c *counters) ReadHits() int64 {
	return c.hits // want `hits is accessed via atomic.AddInt64 \(line 17\) but plainly here`
}

// Reset stores plainly: the same race on the write side.
func (c *counters) Reset() {
	c.hits = 0 // want `hits is accessed via atomic.AddInt64`
}

// IncMisses keeps misses consistently atomic: clean.
func (c *counters) IncMisses() {
	atomic.AddInt64(&c.misses, 1)
}

// ReadMisses too.
func (c *counters) ReadMisses() int64 {
	return atomic.LoadInt64(&c.misses)
}

// Plain never touches sync/atomic: plain access is fine.
func (c *counters) Plain() int64 {
	c.plain++
	return c.plain
}

// Boxed uses atomic.Int64, whose methods are the only way in: clean
// by construction, and the fix this analyzer's findings point at.
func (c *counters) Boxed() int64 {
	c.boxed.Add(1)
	return c.boxed.Load()
}

// IgnoredSnapshot reads hits plainly behind an exclusion the analyzer
// cannot see; the directive records why that is safe.
func (c *counters) IgnoredSnapshot() int64 {
	//lint:ignore atomicmix all writers are stopped before snapshotting
	return c.hits
}

var gen int64

// Next makes the package-level gen atomic.
func Next() int64 {
	return atomic.AddInt64(&gen, 1)
}

// Peek reads it plainly.
func Peek() int64 {
	return gen // want `gen is accessed via atomic.AddInt64`
}
