// Package lintutil holds the small helpers shared by the repo's custom
// analyzers: package-path matching that works both for the real module
// layout ("gpucnn/internal/telemetry") and the flat GOPATH layout of
// analyzer test fixtures ("telemetry"), test-file detection, and the
// //lint:ignore suppression directive.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// PathIs reports whether the import path's final segment equals base.
// Analyzers match packages by base name so the same check fires on
// "gpucnn/internal/telemetry" in the live tree and on the "telemetry"
// stub inside an analyzer's testdata GOPATH.
func PathIs(path, base string) bool {
	return path == base || strings.HasSuffix(path, "/"+base)
}

// IsNamed reports whether t (after pointer peeling) is the named type
// pkgBase.name.
func IsNamed(t types.Type, pkgBase, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && PathIs(obj.Pkg().Path(), pkgBase)
}

// IsTestFile reports whether pos lies in a _test.go file.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// MethodCallee returns the method a call invokes (nil for non-method
// calls, conversions, and builtins).
func MethodCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() == nil {
		return nil
	}
	return fn
}

// FuncCallee returns the package-level function a call invokes (nil for
// methods, conversions, builtins and indirect calls).
func FuncCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok || fn.Type().(*types.Signature).Recv() != nil {
		return nil
	}
	return fn
}

// Ignored reports whether a diagnostic from the named analyzer at pos
// is suppressed by a directive of the form
//
//	//lint:ignore name1[,name2...] reason
//
// placed on the same line or the line immediately above. The reason is
// mandatory; "all" matches every analyzer.
func Ignored(pass *analysis.Pass, pos token.Pos, name string) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	line := tf.Line(pos)
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) != tf {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				cl := tf.Line(c.Pos())
				if cl != line && cl != line-1 {
					continue
				}
				for _, n := range names {
					if n == name || n == "all" {
						return true
					}
				}
			}
		}
	}
	return false
}

// parseIgnore extracts the analyzer names from a //lint:ignore
// directive. Directives without a reason are rejected so suppressions
// stay self-documenting; a nested comment marker is not a reason.
func parseIgnore(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//lint:ignore ")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) < 2 { // names + at least one word of reason
		return nil, false
	}
	if strings.HasPrefix(fields[0], "/") || strings.HasPrefix(fields[1], "//") {
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// DirectiveAnalyzer (name "bareignore") enforces the suppression
// policy on the directives themselves: every //lint:ignore must name
// at least one analyzer and give a non-empty reason. A bare directive
// is worse than none — parseIgnore rejects it, so it suppresses
// nothing while looking like it does.
var DirectiveAnalyzer = &analysis.Analyzer{
	Name: "bareignore",
	Doc: `report //lint:ignore directives with no analyzer name or no reason

A malformed directive silently fails to suppress; the required shape
is //lint:ignore <analyzer>[,<analyzer>] <reason>.`,
	Run: runDirectives,
}

func runDirectives(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				if _, ok := parseIgnore(c.Text); !ok {
					pass.Report(analysis.Diagnostic{
						Pos: c.Pos(), End: c.End(),
						Message: "malformed //lint:ignore: it suppresses nothing without both an analyzer name and a reason (//lint:ignore <analyzer>[,<analyzer>] <reason>)",
					})
				}
			}
		}
	}
	return nil, nil
}

// Report emits d unless an ignore directive for the named analyzer
// covers its position.
func Report(pass *analysis.Pass, name string, d analysis.Diagnostic) {
	if Ignored(pass, d.Pos, name) {
		return
	}
	pass.Report(d)
}
