package lintutil_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/lintutil"
)

func TestBareIgnore(t *testing.T) {
	atest.Run(t, atest.TestData(t), lintutil.DirectiveAnalyzer, "a")
}
