// Fixtures for the bareignore directive check: well-formed directives
// (negatives) and the malformed shapes that silently suppress nothing
// (positives).
package a

// WellFormed carries a complete directive: clean.
func WellFormed() {
	//lint:ignore rawgo the reason lives here and satisfies the policy
	_ = 0
}

// MultiName directives with a reason are fine too.
func MultiName() {
	//lint:ignore rawgo,ctxbg one reason can cover several analyzers
	_ = 0
}

// NoReason omits the mandatory reason.
func NoReason() {
	//lint:ignore rawgo // want `malformed //lint:ignore`
	_ = 0
}

// NoName has neither analyzer name nor reason.
func NoName() {
	//lint:ignore // want `malformed //lint:ignore`
	_ = 0
}

// NotADirective mentions the prefix in prose without being one; the
// longer token does not match.
func NotADirective() {
	//lint:ignorance is not a directive
	_ = 0
}
