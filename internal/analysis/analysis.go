// Package analysis aggregates the repo's custom go/analysis lint suite
// — the invariants two rounds of measurement-corruption bugfixes (PR 2
// panic isolation, PR 4 span/sink hygiene) taught us to enforce by
// machine rather than by reviewer:
//
//	spanend    every Tracer.Root/Span.Child reaches End on all paths
//	arenaput   every workspace.Get is paired with workspace.Put
//	errcmp     sentinel errors are tested with errors.Is, never == / !=
//	ctxbg      no context.Background() where a ctx parameter is in scope
//	rawgo      no naked goroutines in library packages (use par.Go)
//	obsstop    every obs.NewMonitor / obs.NewProfiler reaches Stop
//	lockheld   no blocking operation while a mutex is held; lock arrays
//	           are acquired in increasing index order
//	hotalloc   no allocation constructs in //hot:noalloc functions
//	atomicmix  no variable accessed both atomically and plainly
//	wallclock  no time.Now/time.Since in the gpusim/planner sim domain
//	bareignore every //lint:ignore names an analyzer and gives a reason
//
// cmd/lint drives the suite through go vet; see README "Static
// analysis" for running and suppressing.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"gpucnn/internal/analysis/arenaput"
	"gpucnn/internal/analysis/atomicmix"
	"gpucnn/internal/analysis/ctxbg"
	"gpucnn/internal/analysis/errcmp"
	"gpucnn/internal/analysis/hotalloc"
	"gpucnn/internal/analysis/lintutil"
	"gpucnn/internal/analysis/lockheld"
	"gpucnn/internal/analysis/obsstop"
	"gpucnn/internal/analysis/rawgo"
	"gpucnn/internal/analysis/spanend"
	"gpucnn/internal/analysis/wallclock"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		spanend.Analyzer,
		arenaput.Analyzer,
		errcmp.Analyzer,
		ctxbg.Analyzer,
		rawgo.Analyzer,
		obsstop.Analyzer,
		lockheld.Analyzer,
		hotalloc.Analyzer,
		atomicmix.Analyzer,
		wallclock.Analyzer,
		lintutil.DirectiveAnalyzer,
	}
}
