// Package analysis aggregates the repo's custom go/analysis lint suite
// — the invariants two rounds of measurement-corruption bugfixes (PR 2
// panic isolation, PR 4 span/sink hygiene) taught us to enforce by
// machine rather than by reviewer:
//
//	spanend   every Tracer.Root/Span.Child reaches End on all paths
//	arenaput  every workspace.Get is paired with workspace.Put
//	errcmp    sentinel errors are tested with errors.Is, never == / !=
//	ctxbg     no context.Background() where a ctx parameter is in scope
//	rawgo     no naked goroutines in library packages (use par.Go)
//	obsstop   every obs.NewMonitor / obs.NewProfiler reaches Stop
//
// cmd/lint drives the suite through go vet; see README "Static
// analysis" for running and suppressing.
package analysis

import (
	"golang.org/x/tools/go/analysis"

	"gpucnn/internal/analysis/arenaput"
	"gpucnn/internal/analysis/ctxbg"
	"gpucnn/internal/analysis/errcmp"
	"gpucnn/internal/analysis/obsstop"
	"gpucnn/internal/analysis/rawgo"
	"gpucnn/internal/analysis/spanend"
)

// All returns the full suite in reporting order.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		spanend.Analyzer,
		arenaput.Analyzer,
		errcmp.Analyzer,
		ctxbg.Analyzer,
		rawgo.Analyzer,
		obsstop.Analyzer,
	}
}
