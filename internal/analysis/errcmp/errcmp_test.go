package errcmp_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/errcmp"
)

func TestErrCmp(t *testing.T) {
	atest.Run(t, atest.TestData(t), errcmp.Analyzer, "a")
}
