// Package a holds the positive errcmp findings and the guard cases.
package a

import (
	"errors"

	"sentinels"
)

var ErrBoom = errors.New("boom")
var errInternal = errors.New("internal")

// --- positive findings -------------------------------------------------

func eqLocal(err error) bool {
	return err == ErrBoom // want `sentinel error ErrBoom compared with ==; use errors\.Is`
}

func neqImported(err error) bool {
	return err != sentinels.ErrRemote // want `sentinel error ErrRemote compared with !=; use errors\.Is`
}

func eqUnexported(err error) bool {
	return errInternal == err // want `sentinel error errInternal compared with ==; use errors\.Is`
}

func switchCase(err error) int {
	switch err {
	case ErrBoom: // want `sentinel error ErrBoom used as a switch case; use errors\.Is`
		return 1
	case sentinels.ErrRemote: // want `sentinel error ErrRemote used as a switch case; use errors\.Is`
		return 2
	}
	return 0
}

// --- guards ------------------------------------------------------------

func nilChecks(err error) bool {
	return err == nil || nil != err // nil comparisons are fine
}

func errorsIs(err error) bool {
	return errors.Is(err, ErrBoom) || errors.Is(err, sentinels.ErrRemote)
}

func notAnError() bool {
	return sentinels.ErrCount == 0 // Err-named, but not an error value
}

func localShadow(err error) bool {
	ErrShadow := errors.New("local")
	return err == ErrShadow // function-local, not a package sentinel
}

func twoPlainErrors(a, b error) bool {
	return a == b // neither side is a sentinel
}

func suppressed(err error) bool {
	//lint:ignore errcmp identity is intentional here: the sentinel is never wrapped
	return err == ErrBoom
}
