// Package sentinels stands in for a library package exporting sentinel
// errors (the shape of gpucnn/internal/serve's ErrOverloaded/ErrClosed).
package sentinels

import "errors"

var ErrRemote = errors.New("remote failed")

// Count is error-adjacent by name only — not an error value.
var ErrCount = 0
