// Package errcmp defines an Analyzer that forbids comparing sentinel
// errors with == or != (or switch cases): wrapped errors — and this
// repo wraps aggressively with %w (serve wraps engine errors, multigpu
// wraps shard errors) — never compare equal to their sentinel, so an
// identity comparison against serve.ErrOverloaded or serve.ErrClosed
// is a latent bug that errors.Is does not have.
//
// A sentinel is a package-level error variable whose name matches the
// Err/errX convention. Comparisons against nil are fine and ignored.
package errcmp

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
	"unicode"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"gpucnn/internal/analysis/lintutil"
)

const doc = `check that sentinel errors are tested with errors.Is, not == or !=

Identity comparison against a package-level Err… variable breaks as
soon as anyone wraps the error with fmt.Errorf("…: %w", err). Use
errors.Is(err, ErrFoo) (and errors.Is in switch conditions).`

var Analyzer = &analysis.Analyzer{
	Name:     "errcmp",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

func run(pass *analysis.Pass) (any, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.BinaryExpr)(nil), (*ast.SwitchStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			x, y := ast.Unparen(n.X), ast.Unparen(n.Y)
			if isNil(pass, x) || isNil(pass, y) {
				return
			}
			for _, side := range []ast.Expr{x, y} {
				if name, ok := sentinel(pass, side); ok {
					lintutil.Report(pass, "errcmp", analysis.Diagnostic{
						Pos: n.Pos(), End: n.End(),
						Message: fmt.Sprintf("sentinel error %s compared with %s; use errors.Is", name, n.Op),
					})
					return
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return
			}
			tag := pass.TypesInfo.TypeOf(n.Tag)
			if tag == nil || !isErrorType(tag) {
				return
			}
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CaseClause)
				if !ok {
					continue
				}
				for _, e := range cc.List {
					if name, ok := sentinel(pass, ast.Unparen(e)); ok {
						lintutil.Report(pass, "errcmp", analysis.Diagnostic{
							Pos: e.Pos(), End: e.End(),
							Message: fmt.Sprintf("sentinel error %s used as a switch case; use errors.Is in an if/else chain", name),
						})
					}
				}
			}
		}
	})
	return nil, nil
}

// sentinel reports whether e denotes a package-level error variable
// following the Err…/err… naming convention, returning its name.
func sentinel(pass *analysis.Pass, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !sentinelName(v.Name()) || !isErrorType(v.Type()) {
		return "", false
	}
	return v.Name(), true
}

// sentinelName matches Err…, ErrFoo, errFoo — the package-level
// sentinel conventions — without catching ordinary locals like err.
func sentinelName(name string) bool {
	if strings.HasPrefix(name, "Err") {
		return true
	}
	return strings.HasPrefix(name, "err") && len(name) > 3 && unicode.IsUpper(rune(name[3]))
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}
