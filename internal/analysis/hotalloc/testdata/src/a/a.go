// Fixtures for hotalloc: allocation constructs inside //hot:noalloc
// functions (positives), the same constructs in unannotated functions
// (negatives), alloc-free hot code (negative), and suppression.
package a

import "fmt"

type vec struct{ x, y float32 }

// Dot is the shape of a real kernel: index arithmetic, no allocation.
//
//hot:noalloc
func Dot(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

//hot:noalloc
func EscapingComposite() *vec {
	return &vec{1, 2} // want `&composite literal escapes to the heap`
}

//hot:noalloc
func SliceLit() []int {
	return []int{1, 2, 3} // want `slice literal allocates its backing array`
}

//hot:noalloc
func MapLit() map[string]int {
	return map[string]int{"a": 1} // want `map literal allocates`
}

//hot:noalloc
func MakeSlice(n int) []float32 {
	return make([]float32, n) // want `make allocates`
}

//hot:noalloc
func NewVec() *vec {
	return new(vec) // want `new allocates`
}

//hot:noalloc
func Append(dst []int, v int) []int {
	return append(dst, v) // want `append may grow \(reallocate\) its backing array`
}

//hot:noalloc
func Closure(k float32) func(float32) float32 {
	return func(x float32) float32 { return k * x } // want `function literal allocates`
}

//hot:noalloc
func Boxing(i int) string {
	return fmt.Sprintf("%d", i) // want `argument boxes int into any`
}

//hot:noalloc
func ConstArgs() {
	// Constant arguments are static interface data: no allocation.
	fmt.Println("warm")
}

//hot:noalloc
func PointerArg(v *vec) {
	// Pointer-shaped values live in the interface word: no allocation.
	fmt.Println(v)
}

//hot:noalloc
func Conversion(i int) any {
	return any(i) // want `conversion boxes int into any`
}

//hot:noalloc
func ValueLiterals() vec {
	// Plain struct and array value literals stay on the stack.
	tmp := [4]float32{}
	_ = tmp
	return vec{3, 4}
}

//hot:noalloc
func IgnoredAppend(dst []int, v int) []int {
	//lint:ignore hotalloc caller guarantees cap(dst) > len(dst)
	return append(dst, v)
}

// ColdPath is unannotated: the contract does not apply.
func ColdPath(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
