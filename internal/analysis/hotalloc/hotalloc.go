// Package hotalloc defines an Analyzer that statically enforces the
// zero-steady-state-allocation contract of functions annotated
// //hot:noalloc.
//
// The GEMM, im2col and convolution inner loops earn their throughput
// by never touching the allocator once buffers are warm — the
// property TestUnrollZeroAllocTableI samples dynamically with
// testing.AllocsPerRun. Sampling catches regressions only on the
// configurations the test happens to run; this analyzer catches them
// on every path at compile time. A function carrying //hot:noalloc in
// its doc comment may not contain:
//
//   - heap-escaping composite literals: &T{...}, new(T), slice or map
//     literals, or make of a slice/map/channel
//   - append (growth reallocates the backing array)
//   - function literals (a closure's captured variables escape)
//   - interface boxing: passing or converting a concrete value to an
//     interface-typed parameter allocates (fmt arguments being the
//     classic offender)
//
// The annotation is the contract: un-annotated functions are not
// scanned, so allocation-heavy setup paths (pack-buffer construction,
// plan building) stay out of scope by default. Genuinely safe
// exceptions — an append into a slice with proven capacity, an error
// path that boxes only on failure — are suppressed per-site with
// //lint:ignore hotalloc <reason>; panic arguments are exempt because
// a panicking hot loop has already left the steady state.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"gpucnn/internal/analysis/lintutil"
)

const doc = `enforce zero allocations in //hot:noalloc functions

Functions annotated //hot:noalloc may not contain heap-escaping
composite literals, new/make of heap types, append, closures, or
interface boxing. Suppress proven-safe sites with
//lint:ignore hotalloc <reason>.`

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
}

// Annotated reports whether decl's doc comment carries //hot:noalloc.
func Annotated(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.HasPrefix(c.Text, "//hot:noalloc") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		decl := n.(*ast.FuncDecl)
		if decl.Body == nil || !Annotated(decl) || lintutil.IsTestFile(pass.Fset, decl.Pos()) {
			return
		}
		checkBody(pass, decl.Name.Name, decl.Body)
	})
	return nil, nil
}

func checkBody(pass *analysis.Pass, fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			report(pass, e, fname, "function literal allocates (captured variables escape)")
			return false // one finding per closure, not per capture
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
					report(pass, e, fname, "&composite literal escapes to the heap")
					return false
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(e).Underlying().(type) {
			case *types.Slice:
				report(pass, e, fname, "slice literal allocates its backing array")
				return false
			case *types.Map:
				report(pass, e, fname, "map literal allocates")
				return false
			}
		case *ast.CallExpr:
			checkCall(pass, fname, e)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fname string, call *ast.CallExpr) {
	// Builtins: new always allocates; make allocates for slices, maps
	// and channels; append may grow its backing array.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				report(pass, call, fname, "new allocates")
			case "make":
				report(pass, call, fname, "make allocates")
			case "append":
				report(pass, call, fname, "append may grow (reallocate) its backing array")
			}
			return // other builtins (len, cap, panic, ...) are exempt
		}
	}

	// Conversions to an interface type box the operand.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && boxes(pass, tv.Type, call.Args[0]) {
			report(pass, call, fname, fmt.Sprintf("conversion boxes %s into %s",
				types.TypeString(pass.TypesInfo.TypeOf(call.Args[0]), types.RelativeTo(pass.Pkg)), tv.Type.String()))
		}
		return
	}

	// Ordinary calls: a concrete argument for an interface-typed
	// parameter (including variadic ...any) is boxed at the call site.
	sigT := pass.TypesInfo.TypeOf(call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return // f(xs...) passes the slice through without boxing
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if boxes(pass, pt, arg) {
			report(pass, arg, fname, fmt.Sprintf("argument boxes %s into %s",
				types.TypeString(pass.TypesInfo.TypeOf(arg), types.RelativeTo(pass.Pkg)), pt.String()))
		}
	}
}

// boxes reports whether passing arg as parameter type pt allocates an
// interface box at run time: pt is an interface and arg is a concrete
// value whose data does not fit the interface word. Pointer-shaped
// values (pointers, channels, maps, funcs, unsafe.Pointer) are stored
// directly, and compile-time constants are backed by read-only static
// data — neither allocates, so neither is flagged.
func boxes(pass *analysis.Pass, pt types.Type, arg ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || pt == nil || tv.Type == nil {
		return false
	}
	if _, ok := pt.Underlying().(*types.Interface); !ok {
		return false
	}
	if tv.Value != nil {
		return false // constant: static interface data, no allocation
	}
	switch at := tv.Type.Underlying().(type) {
	case *types.Interface:
		return false // interface-to-interface: no new box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored in the interface word
	case *types.Basic:
		return at.Kind() != types.UntypedNil && at.Kind() != types.UnsafePointer
	}
	return true
}

func report(pass *analysis.Pass, n ast.Node, fname, msg string) {
	lintutil.Report(pass, "hotalloc", analysis.Diagnostic{
		Pos: n.Pos(), End: n.End(),
		Message: msg + " in //hot:noalloc function " + fname,
	})
}
