package hotalloc_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	atest.Run(t, atest.TestData(t), hotalloc.Analyzer, "a")
}
