// Package a holds the positive obsstop findings and the suppression /
// false-positive guard cases.
package a

import "obs"

// --- positive findings -------------------------------------------------

func leakOnEarlyReturn(fail bool) int {
	m := obs.NewMonitor(obs.MonitorConfig{}) // want `monitor from obs\.NewMonitor assigned to m does not reach \.Stop`
	m.Eval()
	if fail {
		return 1 // want `this return may be reached without releasing m`
	}
	m.Stop()
	return 0
}

func profilerNeverStopped() {
	p := obs.NewProfiler(obs.ProfilerConfig{}) // want `profiler from obs\.NewProfiler assigned to p does not reach \.Stop`
	p.Start()
	return // want `this return may be reached without releasing p`
}

func discarded() {
	obs.NewMonitor(obs.MonitorConfig{}) // want `result of monitor from obs\.NewMonitor is discarded`
}

func blanked() {
	_ = obs.NewProfiler(obs.ProfilerConfig{}) // want `assigned to the blank identifier`
}

// --- suppressed by defer / release on all paths -----------------------

func deferStop(fail bool) int {
	m := obs.NewMonitor(obs.MonitorConfig{})
	defer m.Stop()
	if fail {
		return 1
	}
	m.Eval()
	return 0
}

func stopOnAllPaths(fail bool) {
	p := obs.NewProfiler(obs.ProfilerConfig{})
	p.Start()
	if fail {
		p.Stop()
		return
	}
	p.Stop()
}

func deferClosure() {
	p := obs.NewProfiler(obs.ProfilerConfig{})
	p.Start()
	defer func() {
		p.Stop()
	}()
	_, _ = p.CaptureOnce()
}

// --- false-positive guards: ownership transfer ------------------------

type server struct{ m *obs.Monitor }

// Stored in a struct: the owner's Close stops it.
func wire(s *server) {
	s.m = obs.NewMonitor(obs.MonitorConfig{})
}

// Returned to the caller, directly and via a variable.
func build() *obs.Monitor {
	return obs.NewMonitor(obs.MonitorConfig{})
}

func buildVar(warm bool) *obs.Monitor {
	m := obs.NewMonitor(obs.MonitorConfig{})
	if warm {
		m.Eval()
	}
	return m
}

// Handed to another function, which owns the release.
func watch(m *obs.Monitor) {}

func passAlong() {
	watch(obs.NewMonitor(obs.MonitorConfig{}))
}

// Explicitly suppressed, with the mandatory reason.
func suppressed() {
	//lint:ignore obsstop demo: leaked on purpose in this fixture
	obs.NewMonitor(obs.MonitorConfig{})
}
