// Package obs is a stub of gpucnn/internal/obs for the obsstop
// fixtures: the analyzer matches by import-path base, so this
// GOPATH-style stand-in exercises it exactly.
package obs

type Monitor struct{}
type Profiler struct{}
type MonitorConfig struct{}
type ProfilerConfig struct{}
type Transition struct{}
type Capture struct{}

func NewMonitor(cfg MonitorConfig) *Monitor    { return &Monitor{} }
func NewProfiler(cfg ProfilerConfig) *Profiler { return &Profiler{} }

func (m *Monitor) Eval() []Transition { return nil }
func (m *Monitor) Stop()              {}

func (p *Profiler) Start()                          {}
func (p *Profiler) Stop()                           {}
func (p *Profiler) CaptureOnce() ([]Capture, error) { return nil, nil }
