// Package obsstop defines an Analyzer that checks that every SLO
// monitor or profiler minted by obs.NewMonitor / obs.NewProfiler
// reaches Stop on all control-flow paths of the creating function,
// unless ownership is handed to someone else (returned, stored in a
// struct, passed on, or captured by a closure — typically a defer).
//
// Both types own background goroutines when running on the wall clock:
// a leaked monitor keeps evaluating its objectives (and firing
// OnTransition callbacks) forever, and a leaked profiler keeps taking
// 200 ms CPU profiles — which does not just waste cycles but perturbs
// the very latency distributions the SLOs are judging. Stop is also
// what flushes a monitor out of its plane's dashboard; see
// serve.Server.Close for the house pattern.
package obsstop

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/ctrlflow"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"gpucnn/internal/analysis/lintutil"
	"gpucnn/internal/analysis/paircheck"
)

const doc = `check that obs monitors and profilers reach Stop on all paths

Every result of obs.NewMonitor or obs.NewProfiler must reach .Stop()
on every path through the creating function (defer preferred), or
escape to an owner that stops it.`

var Analyzer = &analysis.Analyzer{
	Name:     "obsstop",
	Doc:      doc,
	Run:      run,
	Requires: []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
}

var spec = paircheck.Spec{
	Analyzer: "obsstop",
	NewCall:  newObsCall,
	Release:  map[string]bool{"Stop": true},
	Hint:     ".Stop (defer preferred)",
}

func run(pass *analysis.Pass) (any, error) {
	return paircheck.Run(pass, spec)
}

// newObsCall matches the package-level obs.NewMonitor and
// obs.NewProfiler constructors.
func newObsCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := lintutil.FuncCallee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || !lintutil.PathIs(fn.Pkg().Path(), "obs") {
		return "", false
	}
	switch fn.Name() {
	case "NewMonitor":
		return "monitor from obs.NewMonitor", true
	case "NewProfiler":
		return "profiler from obs.NewProfiler", true
	}
	return "", false
}
