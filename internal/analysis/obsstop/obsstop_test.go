package obsstop_test

import (
	"testing"

	"gpucnn/internal/analysis/atest"
	"gpucnn/internal/analysis/obsstop"
)

func TestObsStop(t *testing.T) {
	atest.Run(t, atest.TestData(t), obsstop.Analyzer, "a")
}
