//go:build race

package workspace

// raceEnabled lets allocation-count tests skip under -race: the race
// runtime allocates shadow state on hot paths, so AllocsPerRun is
// meaningless there.
const raceEnabled = true
