package workspace

import (
	"sync"
	"testing"
)

func TestCarvesAreDisjoint(t *testing.T) {
	a := Get()
	defer Put(a)
	x := a.Float32(100)
	y := a.Float32(100)
	for i := range x {
		x[i] = 1
	}
	for _, v := range y {
		if v != 0 {
			t.Fatalf("writes to one carve leaked into another")
		}
	}
	x2 := a.Complex64(50)
	y2 := a.Complex64(50)
	for i := range x2 {
		x2[i] = 1
	}
	for _, v := range y2 {
		if v != 0 {
			t.Fatalf("complex carves alias")
		}
	}
}

func TestFloat32IsZeroed(t *testing.T) {
	a := Get()
	s := a.Float32Uninit(64)
	for i := range s {
		s[i] = 42
	}
	Put(a)
	b := Get()
	defer Put(b)
	z := b.Float32(64)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("Float32 carve not zeroed at %d: %v", i, v)
		}
	}
}

func TestCarveCapacityIsClipped(t *testing.T) {
	a := Get()
	defer Put(a)
	s := a.Float32(10)
	if cap(s) != 10 {
		t.Fatalf("carve capacity %d exceeds requested length 10: append could clobber the next carve", cap(s))
	}
}

func TestGrowKeepsOldCarvesValid(t *testing.T) {
	a := Get()
	defer Put(a)
	first := a.Float32(8)
	for i := range first {
		first[i] = float32(i)
	}
	// Force a slab replacement.
	a.Float32(1 << 20)
	for i, v := range first {
		if v != float32(i) {
			t.Fatalf("pre-grow carve corrupted at %d: %v", i, v)
		}
	}
}

func TestSteadyStateDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments allocations")
	}
	// Warm the pool and the slab capacity.
	for i := 0; i < 3; i++ {
		a := Get()
		a.Float32(4096)
		a.Complex64(2048)
		Put(a)
	}
	allocs := testing.AllocsPerRun(20, func() {
		a := Get()
		a.Float32Uninit(4096)
		a.Complex64Uninit(2048)
		Put(a)
	})
	if allocs != 0 {
		t.Fatalf("steady-state arena cycle allocates %v times", allocs)
	}
}

func TestConcurrentGetPut(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				a := Get()
				s := a.Float32(128)
				for j := range s {
					s[j] = float32(seed)
				}
				for _, v := range s {
					if v != float32(seed) {
						t.Errorf("arena shared across goroutines: got %v want %d", v, seed)
						break
					}
				}
				Put(a)
			}
		}(g)
	}
	wg.Wait()
}
