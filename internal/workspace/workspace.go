// Package workspace provides the scratch-memory arena shared by the
// compute kernels. The convolution engines need large per-call buffers
// (im2col column matrices, FFT grids, GEMM packing panels); allocating
// them per call makes the garbage collector a hot-path participant.
// An Arena is a growable slab checked out of a process-wide sync.Pool:
// a worker Gets one, carves typed sub-buffers off it, and Puts it back,
// so steady-state passes perform zero heap allocations — the workspace
// discipline of cuDNN (caller-provided workspace) and the memory-pool
// designs of arXiv:1610.03618.
//
// Usage pattern:
//
//	ws := workspace.Get()
//	defer workspace.Put(ws)
//	col := ws.Float32Uninit(rows * cols) // fully overwritten by caller
//	acc := ws.Complex64(n * n)           // cleared carve-out
//
// Carve-outs are only valid until the arena is Put (or Reset); they must
// not be retained. Arenas are not safe for concurrent use — each
// goroutine checks out its own.
package workspace

import (
	"sync"
	"sync/atomic"
)

// Arena is a growable scratch slab handing out typed carve-outs. The
// zero value is ready to use.
type Arena struct {
	f32        []float32
	c64        []complex64
	f32off     int
	c64off     int
	cycleBytes int64 // bytes carved since Get, for the high-water stat
}

// Package-wide arena statistics (atomic: arenas are per-goroutine but
// the pool is shared). A carve that fits the checked-out slab is a hit;
// one that forces a slab grow is a miss — steady state should be
// all-hits, and the high-water mark is the largest single Get/Put
// cycle's carved footprint (the number the fused im2col path shrinks).
var (
	statGets      atomic.Int64
	statPuts      atomic.Int64
	statCarves    atomic.Int64
	statGrows     atomic.Int64
	statHighWater atomic.Int64
)

// Stats is a snapshot of the arena pool counters.
type Stats struct {
	Gets           int64 // arena checkouts
	Puts           int64 // arena returns
	Carves         int64 // typed carve-out requests
	SlabGrows      int64 // carves that had to grow a slab (pool misses)
	HighWaterBytes int64 // largest bytes carved in one Get/Put cycle
}

// Hits returns the carves served from already-grown slabs.
func (s Stats) Hits() int64 { return s.Carves - s.SlabGrows }

// ReadStats snapshots the pool counters.
func ReadStats() Stats {
	return Stats{
		Gets:           statGets.Load(),
		Puts:           statPuts.Load(),
		Carves:         statCarves.Load(),
		SlabGrows:      statGrows.Load(),
		HighWaterBytes: statHighWater.Load(),
	}
}

// ResetStats zeroes the pool counters (tests and dashboard epochs).
func ResetStats() {
	statGets.Store(0)
	statPuts.Store(0)
	statCarves.Store(0)
	statGrows.Store(0)
	statHighWater.Store(0)
}

var pool = sync.Pool{New: func() any { return new(Arena) }}

// Get checks an empty arena out of the shared pool. Pair with Put.
func Get() *Arena {
	a := pool.Get().(*Arena)
	a.Reset()
	statGets.Add(1)
	return a
}

// Put returns the arena — and its grown capacity — to the pool. All
// carve-outs handed out since Get become invalid.
func Put(a *Arena) {
	statPuts.Add(1)
	for {
		cur := statHighWater.Load()
		if a.cycleBytes <= cur || statHighWater.CompareAndSwap(cur, a.cycleBytes) {
			break
		}
	}
	pool.Put(a)
}

// Reset invalidates all carve-outs while keeping the backing capacity.
func (a *Arena) Reset() {
	a.f32off, a.c64off = 0, 0
	a.cycleBytes = 0
}

// Float32Uninit carves n float32s of scratch without clearing them. Use
// when the caller overwrites the whole buffer (im2col, packing panels).
func (a *Arena) Float32Uninit(n int) []float32 {
	statCarves.Add(1)
	a.cycleBytes += int64(n) * 4
	if a.f32off+n > len(a.f32) {
		a.f32 = grow(a.f32, a.f32off+n)
		a.f32off = 0
		statGrows.Add(1)
	}
	s := a.f32[a.f32off : a.f32off+n : a.f32off+n]
	a.f32off += n
	return s
}

// Float32 carves n zeroed float32s of scratch.
func (a *Arena) Float32(n int) []float32 {
	s := a.Float32Uninit(n)
	clear(s)
	return s
}

// Complex64Uninit carves n complex64s of scratch without clearing them.
func (a *Arena) Complex64Uninit(n int) []complex64 {
	statCarves.Add(1)
	a.cycleBytes += int64(n) * 8
	if a.c64off+n > len(a.c64) {
		a.c64 = grow(a.c64, a.c64off+n)
		a.c64off = 0
		statGrows.Add(1)
	}
	s := a.c64[a.c64off : a.c64off+n : a.c64off+n]
	a.c64off += n
	return s
}

// Complex64 carves n zeroed complex64s of scratch.
func (a *Arena) Complex64(n int) []complex64 {
	s := a.Complex64Uninit(n)
	clear(s)
	return s
}

// grow replaces a full backing slab. Earlier carve-outs keep aliasing
// the old slab (still valid until Put); the new slab is sized for the
// whole cycle so far, so after a few cycles the arena stops allocating.
func grow[T any](old []T, need int) []T {
	size := 2 * len(old)
	if size < need {
		size = need
	}
	if size < 1024 {
		size = 1024
	}
	return make([]T, size)
}
