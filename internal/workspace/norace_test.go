//go:build !race

package workspace

const raceEnabled = false
