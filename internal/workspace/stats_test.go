package workspace

import "testing"

func TestStatsCountersAndHighWater(t *testing.T) {
	ResetStats()
	ws := Get()
	_ = ws.Float32Uninit(1000)   // 4000 bytes
	_ = ws.Complex64Uninit(1000) // 8000 bytes
	Put(ws)
	s := ReadStats()
	if s.Gets != 1 || s.Puts != 1 || s.Carves != 2 {
		t.Fatalf("counters = %+v, want 1 get, 1 put, 2 carves", s)
	}
	if s.HighWaterBytes != 12000 {
		t.Fatalf("HighWaterBytes = %d, want 12000", s.HighWaterBytes)
	}

	// A smaller later cycle must not lower the high-water mark.
	ws = Get()
	_ = ws.Float32Uninit(10)
	Put(ws)
	if s := ReadStats(); s.HighWaterBytes != 12000 {
		t.Fatalf("high-water dropped to %d after a small cycle", s.HighWaterBytes)
	}
}

func TestStatsHitMissClassification(t *testing.T) {
	ResetStats()
	// Drive one arena through a grow (miss), then repeat the same carve
	// pattern: the pool retains capacity, so the repeats should be hits.
	// Loop a few times because the sync.Pool may hand back a different
	// arena; convergence, not the exact count, is the contract.
	const n = 1 << 16
	for i := 0; i < 8; i++ {
		ws := Get()
		_ = ws.Float32Uninit(n)
		Put(ws)
	}
	s := ReadStats()
	if s.Carves != 8 {
		t.Fatalf("Carves = %d, want 8", s.Carves)
	}
	if s.SlabGrows == 0 {
		t.Fatal("first-touch carve did not count a slab grow")
	}
	if s.Hits() <= 0 {
		t.Fatalf("no carve hits after %d identical cycles (grows=%d)", s.Carves, s.SlabGrows)
	}
	if s.Hits()+s.SlabGrows != s.Carves {
		t.Fatalf("hits(%d) + grows(%d) != carves(%d)", s.Hits(), s.SlabGrows, s.Carves)
	}
}
