// Package tensor provides dense float32 tensors in NCHW layout plus the
// complex-valued buffers and layout transforms needed by the convolution
// strategies. It is the shared data substrate for every convolution
// implementation in this repository.
package tensor

import (
	"fmt"
	"strings"
)

// Shape describes the extent of each tensor dimension, outermost first.
// A 4-D activation tensor uses (N, C, H, W) order; a filter bank uses
// (F, C, Kh, Kw).
type Shape []int

// Elems returns the total number of elements implied by the shape.
// The empty shape has one element (a scalar).
func (s Shape) Elems() int {
	n := 1
	for _, d := range s {
		n *= d
	}
	return n
}

// Equal reports whether two shapes have identical rank and extents.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the shape.
func (s Shape) Clone() Shape {
	c := make(Shape, len(s))
	copy(c, s)
	return c
}

// String renders the shape as "[N C H W]"-style text.
func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// Tensor is a dense, row-major float32 tensor. The zero value is an empty
// tensor; use New or FromSlice to construct a usable one.
type Tensor struct {
	shape  Shape
	stride []int
	Data   []float32
}

// New allocates a zero-filled tensor with the given dimensions.
func New(dims ...int) *Tensor {
	s := Shape(dims)
	for _, d := range dims {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in %v", dims))
		}
	}
	t := &Tensor{shape: s.Clone(), Data: make([]float32, s.Elems())}
	t.computeStrides()
	return t
}

// FromSlice wraps an existing backing slice. The slice length must equal
// the number of elements implied by dims; the tensor aliases the slice.
func FromSlice(data []float32, dims ...int) *Tensor {
	s := Shape(dims)
	if s.Elems() != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (%d elems)",
			len(data), s, s.Elems()))
	}
	t := &Tensor{shape: s.Clone(), Data: data}
	t.computeStrides()
	return t
}

func (t *Tensor) computeStrides() {
	t.stride = make([]int, len(t.shape))
	acc := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		t.stride[i] = acc
		acc *= t.shape[i]
	}
}

// Shape returns the tensor's shape. The returned slice must not be mutated.
func (t *Tensor) Shape() Shape { return t.shape }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.shape) }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Bytes returns the storage footprint in bytes (4 bytes per element).
func (t *Tensor) Bytes() int64 { return int64(len(t.Data)) * 4 }

// Offset converts a multi-index to a flat offset into Data.
func (t *Tensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off += x * t.stride[i]
	}
	return off
}

// At returns the element at the multi-index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.Offset(idx...)] }

// Set stores v at the multi-index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.Offset(idx...)] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a tensor sharing t's data with a new shape. The element
// count must be preserved.
func (t *Tensor) Reshape(dims ...int) *Tensor {
	return FromSlice(t.Data, dims...)
}

// Zero resets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Scale multiplies every element by v in place.
func (t *Tensor) Scale(v float32) {
	for i := range t.Data {
		t.Data[i] *= v
	}
}

// AddScaled adds alpha*o to t element-wise. Shapes must match.
func (t *Tensor) AddScaled(o *Tensor, alpha float32) {
	if !t.shape.Equal(o.shape) {
		panic(fmt.Sprintf("tensor: AddScaled shape mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.Data {
		t.Data[i] += alpha * o.Data[i]
	}
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// AbsMax returns the maximum absolute element value.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}
