package tensor

import (
	"fmt"
	"math"
)

// MaxAbsDiff returns the maximum element-wise absolute difference between
// two tensors of identical shape.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.Shape().Equal(b.Shape()) {
		panic(fmt.Sprintf("tensor: MaxAbsDiff shape mismatch %v vs %v", a.Shape(), b.Shape()))
	}
	var m float64
	for i := range a.Data {
		d := math.Abs(float64(a.Data[i]) - float64(b.Data[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// RelDiff returns the maximum element-wise difference normalised by the
// larger tensor's absolute maximum. It is the comparison used to
// cross-validate convolution engines against each other: float32
// accumulation order differs between strategies, so exact equality is
// not expected.
func RelDiff(a, b *Tensor) float64 {
	scale := float64(a.AbsMax())
	if s := float64(b.AbsMax()); s > scale {
		scale = s
	}
	if scale == 0 {
		return MaxAbsDiff(a, b)
	}
	return MaxAbsDiff(a, b) / scale
}

// AllClose reports whether every pair of elements differs by at most tol
// after normalisation by the tensors' magnitude.
func AllClose(a, b *Tensor, tol float64) bool {
	return RelDiff(a, b) <= tol
}

// AllFinite reports whether the tensor contains no NaN or Inf values.
func (t *Tensor) AllFinite() bool {
	for _, v := range t.Data {
		f := float64(v)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
