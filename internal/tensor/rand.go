package tensor

// RNG is a small deterministic pseudo-random generator (xorshift64*)
// used to fill tensors with reproducible synthetic data. It is not
// cryptographically secure and does not need to be; benchmark inputs
// only need to be well-spread and deterministic across runs.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant because xorshift cannot escape the all-zero state).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float32 returns a uniform value in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Normalish returns a roughly normal value with mean 0 and standard
// deviation near 1, via the sum of uniforms (Irwin–Hall with n=12).
func (r *RNG) Normalish() float32 {
	var s float32
	for i := 0; i < 12; i++ {
		s += r.Float32()
	}
	return s - 6
}

// Intn returns a uniform integer in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: Intn requires n > 0")
	}
	return int(r.Uint64() % uint64(n))
}

// FillUniform fills t with uniform values in [lo, hi).
func (t *Tensor) FillUniform(r *RNG, lo, hi float32) {
	span := hi - lo
	for i := range t.Data {
		t.Data[i] = lo + span*r.Float32()
	}
}

// FillNormal fills t with approximately normal values scaled by sigma.
func (t *Tensor) FillNormal(r *RNG, sigma float32) {
	for i := range t.Data {
		t.Data[i] = sigma * r.Normalish()
	}
}
