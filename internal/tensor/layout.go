package tensor

import "fmt"

// Layout identifies how a 4-D activation tensor is ordered in memory.
// The unrolling-based engines use NCHW (Caffe's layout); cuda-convnet2
// uses CHWN; fbfft transposes BDHW (=NCHW) to HWBD around its CGEMM.
type Layout int

const (
	// NCHW orders batch, channel, height, width — outermost to innermost.
	NCHW Layout = iota
	// CHWN orders channel, height, width, batch (cuda-convnet2's layout).
	CHWN
	// HWNC orders height, width, batch, channel (fbfft's CGEMM layout,
	// called HWBD in the paper).
	HWNC
)

// String returns the conventional name of the layout.
func (l Layout) String() string {
	switch l {
	case NCHW:
		return "NCHW"
	case CHWN:
		return "CHWN"
	case HWNC:
		return "HWNC"
	}
	return fmt.Sprintf("Layout(%d)", int(l))
}

// ToCHWN converts an NCHW tensor to CHWN order, returning a new tensor
// with shape (C, H, W, N).
func ToCHWN(t *Tensor) *Tensor {
	if t.Rank() != 4 {
		panic("tensor: ToCHWN requires a rank-4 tensor")
	}
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := New(c, h, w, n)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			for ih := 0; ih < h; ih++ {
				src := t.Data[((in*c+ic)*h+ih)*w:]
				for iw := 0; iw < w; iw++ {
					out.Data[((ic*h+ih)*w+iw)*n+in] = src[iw]
				}
			}
		}
	}
	return out
}

// FromCHWN converts a CHWN tensor (shape C,H,W,N) back to NCHW order.
func FromCHWN(t *Tensor) *Tensor {
	if t.Rank() != 4 {
		panic("tensor: FromCHWN requires a rank-4 tensor")
	}
	c, h, w, n := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := New(n, c, h, w)
	for ic := 0; ic < c; ic++ {
		for ih := 0; ih < h; ih++ {
			for iw := 0; iw < w; iw++ {
				src := t.Data[((ic*h+ih)*w+iw)*n:]
				for in := 0; in < n; in++ {
					out.Data[((in*c+ic)*h+ih)*w+iw] = src[in]
				}
			}
		}
	}
	return out
}

// ToHWNC converts an NCHW tensor to HWNC order, returning a new tensor
// with shape (H, W, N, C). fbfft uses this transposition so that its
// frequency-domain CGEMM reads contiguous (N, C) panels per pixel.
func ToHWNC(t *Tensor) *Tensor {
	if t.Rank() != 4 {
		panic("tensor: ToHWNC requires a rank-4 tensor")
	}
	n, c, h, w := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := New(h, w, n, c)
	for in := 0; in < n; in++ {
		for ic := 0; ic < c; ic++ {
			for ih := 0; ih < h; ih++ {
				src := t.Data[((in*c+ic)*h+ih)*w:]
				for iw := 0; iw < w; iw++ {
					out.Data[((ih*w+iw)*n+in)*c+ic] = src[iw]
				}
			}
		}
	}
	return out
}

// FromHWNC converts an HWNC tensor (shape H,W,N,C) back to NCHW order.
func FromHWNC(t *Tensor) *Tensor {
	if t.Rank() != 4 {
		panic("tensor: FromHWNC requires a rank-4 tensor")
	}
	h, w, n, c := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	out := New(n, c, h, w)
	for ih := 0; ih < h; ih++ {
		for iw := 0; iw < w; iw++ {
			for in := 0; in < n; in++ {
				src := t.Data[((ih*w+iw)*n+in)*c:]
				for ic := 0; ic < c; ic++ {
					out.Data[((in*c+ic)*h+ih)*w+iw] = src[ic]
				}
			}
		}
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 tensor.
func Transpose2D(t *Tensor) *Tensor {
	if t.Rank() != 2 {
		panic("tensor: Transpose2D requires a rank-2 tensor")
	}
	r, c := t.Dim(0), t.Dim(1)
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j := 0; j < c; j++ {
			out.Data[j*r+i] = row[j]
		}
	}
	return out
}
