package tensor

import "fmt"

// ComplexTensor is a dense complex64 tensor used by the FFT-based
// convolution strategies to hold frequency-domain data.
type ComplexTensor struct {
	shape Shape
	Data  []complex64
}

// NewComplex allocates a zero-filled complex tensor.
func NewComplex(dims ...int) *ComplexTensor {
	s := Shape(dims)
	return &ComplexTensor{shape: s.Clone(), Data: make([]complex64, s.Elems())}
}

// Shape returns the tensor's shape.
func (t *ComplexTensor) Shape() Shape { return t.shape }

// Dim returns the extent of dimension i.
func (t *ComplexTensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *ComplexTensor) Len() int { return len(t.Data) }

// Bytes returns the storage footprint in bytes (8 bytes per element).
func (t *ComplexTensor) Bytes() int64 { return int64(len(t.Data)) * 8 }

// Offset converts a multi-index to a flat offset.
func (t *ComplexTensor) Offset(idx ...int) int {
	if len(idx) != len(t.shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match tensor rank %d", len(idx), len(t.shape)))
	}
	off := 0
	acc := 1
	for i := len(t.shape) - 1; i >= 0; i-- {
		x := idx[i]
		if x < 0 || x >= t.shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.shape))
		}
		off += x * acc
		acc *= t.shape[i]
	}
	return off
}

// At returns the element at the multi-index.
func (t *ComplexTensor) At(idx ...int) complex64 { return t.Data[t.Offset(idx...)] }

// Set stores v at the multi-index.
func (t *ComplexTensor) Set(v complex64, idx ...int) { t.Data[t.Offset(idx...)] = v }

// Zero resets every element.
func (t *ComplexTensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}
