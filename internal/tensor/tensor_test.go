package tensor

import (
	"testing"
	"testing/quick"
)

func TestShapeElems(t *testing.T) {
	cases := []struct {
		shape Shape
		want  int
	}{
		{Shape{}, 1},
		{Shape{5}, 5},
		{Shape{2, 3}, 6},
		{Shape{4, 3, 2, 1}, 24},
		{Shape{7, 0, 3}, 0},
	}
	for _, c := range cases {
		if got := c.shape.Elems(); got != c.want {
			t.Errorf("Elems(%v) = %d, want %d", c.shape, got, c.want)
		}
	}
}

func TestShapeEqualClone(t *testing.T) {
	s := Shape{2, 3, 4}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatalf("clone not equal: %v vs %v", s, c)
	}
	c[0] = 9
	if s.Equal(c) {
		t.Fatal("mutating clone affected original comparison")
	}
	if s.Equal(Shape{2, 3}) {
		t.Fatal("shapes of different rank compared equal")
	}
}

func TestShapeString(t *testing.T) {
	if got := (Shape{1, 2, 3}).String(); got != "[1 2 3]" {
		t.Errorf("String() = %q", got)
	}
}

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Len() != 6 {
		t.Fatalf("Len = %d, want 6", x.Len())
	}
	for i, v := range x.Data {
		if v != 0 {
			t.Fatalf("element %d = %v, want 0", i, v)
		}
	}
}

func TestOffsetRowMajor(t *testing.T) {
	x := New(2, 3, 4)
	want := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if got := x.Offset(i, j, k); got != want {
					t.Fatalf("Offset(%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
				want++
			}
		}
	}
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if got := x.Data[2*4+1]; got != 7.5 {
		t.Fatalf("flat storage = %v, want 7.5", got)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-bounds index")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank mismatch")
		}
	}()
	New(2, 2).At(1)
}

func TestFromSliceAliases(t *testing.T) {
	data := []float32{1, 2, 3, 4}
	x := FromSlice(data, 2, 2)
	x.Set(9, 0, 1)
	if data[1] != 9 {
		t.Fatal("FromSlice should alias the backing slice")
	}
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestReshapeSharesData(t *testing.T) {
	x := New(2, 6)
	y := x.Reshape(3, 4)
	y.Set(5, 2, 3)
	if x.At(1, 5) != 5 {
		t.Fatal("Reshape should share backing data")
	}
}

func TestCloneIndependent(t *testing.T) {
	x := New(2, 2)
	x.Fill(1)
	y := x.Clone()
	y.Set(2, 0, 0)
	if x.At(0, 0) != 1 {
		t.Fatal("Clone should be independent")
	}
}

func TestScaleAddScaledSum(t *testing.T) {
	x := New(4)
	x.Fill(2)
	x.Scale(3)
	if x.Sum() != 24 {
		t.Fatalf("Sum after scale = %v, want 24", x.Sum())
	}
	y := New(4)
	y.Fill(1)
	x.AddScaled(y, -2)
	if x.Sum() != 16 {
		t.Fatalf("Sum after AddScaled = %v, want 16", x.Sum())
	}
}

func TestAbsMax(t *testing.T) {
	x := FromSlice([]float32{1, -5, 3}, 3)
	if got := x.AbsMax(); got != 5 {
		t.Fatalf("AbsMax = %v, want 5", got)
	}
}

func TestBytes(t *testing.T) {
	if got := New(10, 10).Bytes(); got != 400 {
		t.Fatalf("Bytes = %d, want 400", got)
	}
	if got := NewComplex(10, 10).Bytes(); got != 800 {
		t.Fatalf("complex Bytes = %d, want 800", got)
	}
}

func TestComplexAtSet(t *testing.T) {
	x := NewComplex(2, 3)
	x.Set(complex(1, -1), 1, 2)
	if got := x.At(1, 2); got != complex(1, -1) {
		t.Fatalf("complex At = %v", got)
	}
	if got := x.Data[1*3+2]; got != complex(1, -1) {
		t.Fatalf("complex flat = %v", got)
	}
	x.Zero()
	if x.At(1, 2) != 0 {
		t.Fatal("Zero did not clear element")
	}
}

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give identical stream")
		}
	}
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed must be remapped to a working state")
	}
}

func TestRNGFloat32Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of range: %v", v)
		}
	}
}

func TestFillUniformBounds(t *testing.T) {
	x := New(1000)
	x.FillUniform(NewRNG(3), -2, 2)
	for _, v := range x.Data {
		if v < -2 || v >= 2 {
			t.Fatalf("uniform fill out of range: %v", v)
		}
	}
}

func TestFillNormalStats(t *testing.T) {
	x := New(20000)
	x.FillNormal(NewRNG(5), 1)
	mean := x.Sum() / float64(x.Len())
	if mean < -0.05 || mean > 0.05 {
		t.Fatalf("normal fill mean too far from 0: %v", mean)
	}
}

func TestIntn(t *testing.T) {
	r := NewRNG(11)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) did not cover all values: %v", seen)
	}
}

func TestLayoutRoundTripCHWN(t *testing.T) {
	x := New(3, 2, 4, 5)
	x.FillUniform(NewRNG(1), -1, 1)
	y := FromCHWN(ToCHWN(x))
	if MaxAbsDiff(x, y) != 0 {
		t.Fatal("CHWN round trip should be exact")
	}
}

func TestLayoutRoundTripHWNC(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.FillUniform(NewRNG(2), -1, 1)
	y := FromHWNC(ToHWNC(x))
	if MaxAbsDiff(x, y) != 0 {
		t.Fatal("HWNC round trip should be exact")
	}
}

func TestToCHWNElementMapping(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.FillUniform(NewRNG(8), 0, 1)
	y := ToCHWN(x)
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					if x.At(n, c, h, w) != y.At(c, h, w, n) {
						t.Fatalf("CHWN mapping wrong at (%d,%d,%d,%d)", n, c, h, w)
					}
				}
			}
		}
	}
}

func TestToHWNCElementMapping(t *testing.T) {
	x := New(2, 3, 4, 5)
	x.FillUniform(NewRNG(9), 0, 1)
	y := ToHWNC(x)
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 5; w++ {
					if x.At(n, c, h, w) != y.At(h, w, n, c) {
						t.Fatalf("HWNC mapping wrong at (%d,%d,%d,%d)", n, c, h, w)
					}
				}
			}
		}
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := Transpose2D(x)
	if !y.Shape().Equal(Shape{3, 2}) {
		t.Fatalf("transpose shape = %v", y.Shape())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if x.At(i, j) != y.At(j, i) {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		rows, cols := 1+r.Intn(16), 1+r.Intn(16)
		x := New(rows, cols)
		x.FillUniform(r, -1, 1)
		return MaxAbsDiff(x, Transpose2D(Transpose2D(x))) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		n, c := 1+r.Intn(4), 1+r.Intn(4)
		h, w := 1+r.Intn(6), 1+r.Intn(6)
		x := New(n, c, h, w)
		x.FillUniform(r, -1, 1)
		return MaxAbsDiff(x, FromCHWN(ToCHWN(x))) == 0 &&
			MaxAbsDiff(x, FromHWNC(ToHWNC(x))) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelDiffAndAllClose(t *testing.T) {
	a := FromSlice([]float32{10, 20}, 2)
	b := FromSlice([]float32{10, 21}, 2)
	if d := RelDiff(a, b); d < 0.047 || d > 0.048 {
		t.Fatalf("RelDiff = %v, want ~1/21", d)
	}
	if !AllClose(a, b, 0.05) {
		t.Fatal("AllClose(0.05) should hold")
	}
	if AllClose(a, b, 0.01) {
		t.Fatal("AllClose(0.01) should fail")
	}
}

func TestRelDiffZeroTensors(t *testing.T) {
	a, b := New(3), New(3)
	if RelDiff(a, b) != 0 {
		t.Fatal("zero tensors should have zero RelDiff")
	}
}

func TestAllFinite(t *testing.T) {
	x := New(3)
	if !x.AllFinite() {
		t.Fatal("zeros should be finite")
	}
	big := float32(1e38)
	x.Data[1] = big * 10 // overflows to +Inf
	if x.AllFinite() {
		t.Fatal("Inf should be detected")
	}
}
