package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForEachNSerialFallback(t *testing.T) {
	sum := 0
	// workers=1 must run inline with no data race on the plain int.
	ForEachN(50, 1, func(i int) { sum += i })
	if sum != 49*50/2 {
		t.Fatalf("sum = %d", sum)
	}
}

func TestChunksCoverExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1001} {
		for _, w := range []int{0, 1, 3, 8} {
			hits := make([]int32, n)
			Chunks(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}
