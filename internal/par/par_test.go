package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1000} {
		hits := make([]int32, n)
		ForEach(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

func TestForEachNSerialFallback(t *testing.T) {
	sum := 0
	// workers=1 must run inline with no data race on the plain int.
	ForEachN(50, 1, func(i int) { sum += i })
	if sum != 49*50/2 {
		t.Fatalf("sum = %d", sum)
	}
}

// TestForEachNZeroWorkersClampsToGOMAXPROCS is the regression test for
// the workers<=0 bug: a miscomputed 0 used to silently run serial. Two
// loop bodies rendezvous through an unbuffered-style channel pair;
// that can only complete if they run concurrently, i.e. if workers=0
// was clamped up to GOMAXPROCS rather than down to 1.
func TestForEachNZeroWorkersClampsToGOMAXPROCS(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	if old < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(old)
	}
	for _, workers := range []int{0, -3} {
		meet := make(chan int)
		done := make(chan struct{})
		go func() {
			defer close(done)
			ForEachN(2, workers, func(i int) {
				select {
				case meet <- i:
				case <-meet:
				}
			})
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: loop bodies never ran concurrently — non-positive workers not clamped to GOMAXPROCS", workers)
		}
	}
}

// TestForEachNNegativeWorkersCoverAll double-checks index coverage on
// the clamped path.
func TestForEachNNegativeWorkersCoverAll(t *testing.T) {
	const n = 200
	hits := make([]int32, n)
	ForEachN(n, -1, func(i int) { atomic.AddInt32(&hits[i], 1) })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

// TestNestedForEachDoesNotDeadlock issues a parallel loop from inside a
// parallel loop; the submitter participates in its own task, so this
// must finish even when every pool worker is occupied.
func TestNestedForEachDoesNotDeadlock(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		var total int64
		ForEach(8, func(i int) {
			ForEach(8, func(j int) {
				atomic.AddInt64(&total, 1)
			})
		})
		if total != 64 {
			t.Errorf("nested loops ran %d bodies, want 64", total)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested ForEach deadlocked")
	}
}

type countRunner struct{ hits []int32 }

func (r *countRunner) Run(i int) { atomic.AddInt32(&r.hits[i], 1) }

func TestForEachRunnerCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 100} {
		r := &countRunner{hits: make([]int32, n)}
		ForEachRunner(n, r)
		for i, h := range r.hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d hit %d times", n, i, h)
			}
		}
	}
}

type nopRunner struct{ sink int64 }

func (r *nopRunner) Run(i int) { atomic.AddInt64(&r.sink, int64(i)) }

// TestRunnerDispatchDoesNotAllocate is the zero-allocation contract the
// conv engines rely on: dispatching a pooled Runner through the
// persistent worker pool must not touch the heap once warm.
func TestRunnerDispatchDoesNotAllocate(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments allocations")
	}
	r := &nopRunner{}
	ForEachRunner(64, r) // warm pool and task cache
	allocs := testing.AllocsPerRun(50, func() {
		ForEachRunner(64, r)
	})
	if allocs != 0 {
		t.Fatalf("Runner dispatch allocates %v times per call", allocs)
	}
}

func TestChunksCoverExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 1001} {
		for _, w := range []int{0, 1, 3, 8} {
			hits := make([]int32, n)
			Chunks(n, w, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d w=%d: index %d hit %d times", n, w, i, h)
				}
			}
		}
	}
}
