//go:build !race

package par

const raceEnabled = false
