// Package par provides the small work-distribution helpers shared by
// the compute kernels: a bounded parallel for-loop over an index range.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ForEach runs f(i) for every i in [0, n), distributing indices over at
// most GOMAXPROCS goroutines. It runs serially for tiny ranges so
// fine-grained callers don't pay spawn overhead.
func ForEach(n int, f func(i int)) {
	ForEachN(n, runtime.GOMAXPROCS(0), f)
}

// ForEachN is ForEach with an explicit worker bound.
func ForEachN(n, workers int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next int64 = -1
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// Chunks splits [0, n) into roughly equal [lo, hi) chunks and runs
// f(lo, hi) for each in parallel. Use when per-index work is tiny and
// the body can amortise across a contiguous range.
func Chunks(n, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	per := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			f(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
