// Package par provides the work-distribution helpers shared by the
// compute kernels: bounded parallel for-loops over an index range,
// backed by a persistent worker pool so hot paths pay neither goroutine
// spawns nor (when dispatching a pooled Runner) any heap allocation.
// It also owns Go, the supervised goroutine spawn that library code
// must use instead of a naked go statement (enforced by the rawgo
// analyzer in internal/analysis).
package par

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// goPanics counts panics recovered by Go-spawned goroutines; lastPanic
// keeps the most recent one for tests and postmortems.
var (
	goPanics  atomic.Int64
	lastPanic atomic.Pointer[PanicInfo]
)

// PanicInfo describes a panic recovered in a supervised goroutine.
type PanicInfo struct {
	Name  string // the name passed to Go
	Value string // fmt.Sprint of the recovered value
	Stack string // stack at recovery
}

// Go spawns f in a supervised goroutine. A panic in f is recovered,
// counted, recorded (LastGoPanic) and written to stderr instead of
// killing the process — the library-side counterpart of the per-cell
// panic isolation the sweep executor already has. The name labels the
// goroutine in the panic report; keep it stable and descriptive
// ("serve.batchLoop", "bench.executor-3").
//
// Deferred cleanups inside f still run during unwinding before the
// recovery here, so WaitGroup.Done / channel-close shutdown protocols
// keep working even when f panics.
func Go(name string, f func()) {
	//lint:ignore rawgo Go is the supervised spawn primitive itself
	go func() {
		defer func() {
			if r := recover(); r != nil {
				goPanics.Add(1)
				lastPanic.Store(&PanicInfo{Name: name, Value: fmt.Sprint(r), Stack: string(debug.Stack())})
				fmt.Fprintf(os.Stderr, "par: recovered panic in goroutine %q: %v\n", name, r)
			}
		}()
		f()
	}()
}

// GoPanics returns the number of panics recovered in Go-spawned
// goroutines since process start.
func GoPanics() int64 { return goPanics.Load() }

// LastGoPanic returns the most recently recovered panic, if any.
func LastGoPanic() (PanicInfo, bool) {
	p := lastPanic.Load()
	if p == nil {
		return PanicInfo{}, false
	}
	return *p, true
}

// Runner is a unit of indexed work. Hot paths implement it on a pooled
// struct instead of passing a closure: storing a struct pointer in the
// dispatch task allocates nothing, while a capturing closure escapes to
// the heap on every call.
type Runner interface {
	Run(i int)
}

// funcRunner adapts a plain function to Runner. Func values are
// pointer-shaped, so the interface conversion itself does not allocate
// (the closure, if capturing, still does — use Runner directly on
// zero-allocation paths).
type funcRunner func(int)

func (f funcRunner) Run(i int) { f(i) }

// task is one ForEach invocation in flight: workers atomically claim
// indices until the range is exhausted. Tasks are pooled and the worker
// goroutines are persistent, so steady-state dispatch allocates nothing.
type task struct {
	r    Runner
	n    int64
	next atomic.Int64
	wg   sync.WaitGroup
}

var taskPool = sync.Pool{New: func() any { return new(task) }}

var (
	poolOnce sync.Once
	workCh   chan *task
)

// startWorkers spins up the persistent pool: GOMAXPROCS goroutines (at
// first use) that block on the task channel for the process lifetime.
func startWorkers() {
	w := runtime.GOMAXPROCS(0)
	workCh = make(chan *task, 8*w)
	for i := 0; i < w; i++ {
		// A panicking kernel Runner must fail fast: recovering here
		// would leave the task's WaitGroup undone and convert the crash
		// into a silent ForEach deadlock.
		//lint:ignore rawgo pool workers deliberately fail fast on kernel panics
		go func() {
			for t := range workCh {
				t.run()
			}
		}()
	}
}

// run claims and executes indices until the task is exhausted, then
// signals completion. Called by pool workers and by the submitter (which
// always participates, so a ForEach issued from inside a worker makes
// progress even when every pool worker is busy — no nesting deadlock).
func (t *task) run() {
	for {
		i := t.next.Add(1)
		if i >= t.n {
			break
		}
		t.r.Run(int(i))
	}
	t.wg.Done()
}

// ForEach runs f(i) for every i in [0, n), distributing indices over at
// most GOMAXPROCS goroutines.
func ForEach(n int, f func(i int)) {
	forEach(n, runtime.GOMAXPROCS(0), funcRunner(f))
}

// ForEachN is ForEach with an explicit worker bound. A non-positive
// bound is clamped to GOMAXPROCS: callers passing a miscomputed 0 used
// to silently lose all parallelism.
func ForEachN(n, workers int, f func(i int)) {
	forEach(n, workers, funcRunner(f))
}

// ForEachRunner is ForEach dispatching a Runner; with a pooled Runner
// the call is allocation-free.
func ForEachRunner(n int, r Runner) {
	forEach(n, runtime.GOMAXPROCS(0), r)
}

// ForEachNRunner is ForEachRunner with an explicit worker bound,
// clamped to GOMAXPROCS when non-positive.
func ForEachNRunner(n, workers int, r Runner) {
	forEach(n, workers, r)
}

func forEach(n, workers int, r Runner) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			r.Run(i)
		}
		return
	}
	poolOnce.Do(startWorkers)
	t := taskPool.Get().(*task)
	t.r, t.n = r, int64(n)
	t.next.Store(-1)
	helpers := workers - 1
	t.wg.Add(helpers + 1)
	sent := 0
	for sent < helpers {
		ok := false
		select {
		case workCh <- t:
			ok = true
		default:
		}
		if !ok {
			break // queue full: the submitter absorbs the remaining shares
		}
		sent++
	}
	for i := sent; i < helpers; i++ {
		t.wg.Done()
	}
	t.run()
	t.wg.Wait()
	t.r = nil
	taskPool.Put(t)
}

// Chunks splits [0, n) into roughly equal [lo, hi) chunks and runs
// f(lo, hi) for each in parallel. Use when per-index work is tiny and
// the body can amortise across a contiguous range.
func Chunks(n, workers int, f func(lo, hi int)) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		if n > 0 {
			f(0, n)
		}
		return
	}
	per := (n + workers - 1) / workers
	ForEachN((n+per-1)/per, workers, func(ci int) {
		lo := ci * per
		hi := lo + per
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}
