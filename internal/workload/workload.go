// Package workload defines the paper's experimental configurations: the
// base 5-tuple (64,128,64,11,1), the five single-parameter sweeps of
// Figures 3 and 5, the Table I benchmarking layers used by Figures 6
// and 7, and deterministic synthetic tensor generation.
package workload

import (
	"gpucnn/internal/conv"
	"gpucnn/internal/tensor"
)

// Base returns the paper's base configuration (64, 128, 64, 11, 1) with
// the default 3 input channels.
func Base() conv.Config {
	return conv.Config{Batch: 64, Input: 128, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
}

// BatchSweep returns (b, 128, 64, 11, 1) for b = 32..512 step 32
// (Figure 3a / 5a).
func BatchSweep() []conv.Config {
	var out []conv.Config
	for b := 32; b <= 512; b += 32 {
		c := Base()
		c.Batch = b
		out = append(out, c)
	}
	return out
}

// InputSweep returns (64, i, 64, 11, 1) for i = 32..256 step 16
// (Figure 3b / 5b).
func InputSweep() []conv.Config {
	var out []conv.Config
	for i := 32; i <= 256; i += 16 {
		c := Base()
		c.Input = i
		out = append(out, c)
	}
	return out
}

// FilterSweep returns (64, 128, f, 11, 1) for f = 32..512 step 16
// (Figure 3c / 5c).
func FilterSweep() []conv.Config {
	var out []conv.Config
	for f := 32; f <= 512; f += 16 {
		c := Base()
		c.Filters = f
		out = append(out, c)
	}
	return out
}

// KernelSweep returns (64, 128, 64, k, 1) for odd k = 3..15
// (Figure 3d / 5d).
func KernelSweep() []conv.Config {
	var out []conv.Config
	for k := 3; k <= 15; k += 2 {
		c := Base()
		c.Kernel = k
		out = append(out, c)
	}
	return out
}

// StrideSweep returns (64, 128, 64, 11, s) for s = 1..4
// (Figure 3e / 5e).
func StrideSweep() []conv.Config {
	var out []conv.Config
	for s := 1; s <= 4; s++ {
		c := Base()
		c.Stride = s
		out = append(out, c)
	}
	return out
}

// Sweeps returns all five sweeps keyed by the paper's parameter names.
func Sweeps() map[string][]conv.Config {
	return map[string][]conv.Config{
		"batch":  BatchSweep(),
		"input":  InputSweep(),
		"filter": FilterSweep(),
		"kernel": KernelSweep(),
		"stride": StrideSweep(),
	}
}

// SweepNames returns the sweep keys in the paper's presentation order.
func SweepNames() []string {
	return []string{"batch", "input", "filter", "kernel", "stride"}
}

// SweptValue returns the value of the swept parameter for a config.
func SweptValue(sweep string, cfg conv.Config) int {
	switch sweep {
	case "batch":
		return cfg.Batch
	case "input":
		return cfg.Input
	case "filter":
		return cfg.Filters
	case "kernel":
		return cfg.Kernel
	case "stride":
		return cfg.Stride
	}
	return 0
}

// NamedConfig is a Table I row.
type NamedConfig struct {
	Name string
	Cfg  conv.Config
}

// TableI returns the paper's five benchmarking configurations
// (Table I). The paper's tuples omit the channel depth; we use the
// convnet-benchmarks depths the table derives from (Conv1 is a
// first-layer RGB shape, the deeper layers inherit the previous
// layer's filter counts).
func TableI() []NamedConfig {
	return []NamedConfig{
		{"Conv1", conv.Config{Batch: 128, Input: 128, Channels: 3, Filters: 96, Kernel: 11, Stride: 1}},
		{"Conv2", conv.Config{Batch: 128, Input: 128, Channels: 64, Filters: 96, Kernel: 3, Stride: 1}},
		{"Conv3", conv.Config{Batch: 128, Input: 32, Channels: 128, Filters: 128, Kernel: 9, Stride: 1}},
		{"Conv4", conv.Config{Batch: 128, Input: 16, Channels: 128, Filters: 128, Kernel: 7, Stride: 1}},
		{"Conv5", conv.Config{Batch: 128, Input: 13, Channels: 384, Filters: 384, Kernel: 3, Stride: 1}},
	}
}

// SyntheticTensors builds deterministic input and filter tensors for a
// configuration. Runtime depends only on shapes, but the cross-engine
// validation paths use these values.
func SyntheticTensors(cfg conv.Config, seed uint64) (x, w *tensor.Tensor) {
	r := tensor.NewRNG(seed)
	x = tensor.New(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w = tensor.New(cfg.FilterShape()...)
	w.FillUniform(r, -0.1, 0.1)
	return x, w
}

// SyntheticBatch builds a deterministic image batch and labels for
// model training examples.
func SyntheticBatch(batch, channels, size, classes int, seed uint64) (*tensor.Tensor, []int) {
	r := tensor.NewRNG(seed)
	x := tensor.New(batch, channels, size, size)
	labels := make([]int, batch)
	for bi := 0; bi < batch; bi++ {
		label := r.Intn(classes)
		labels[bi] = label
		// A label-dependent bright band plus noise: learnable but not
		// trivial.
		row := (2 + label*2) % size
		for c := 0; c < channels; c++ {
			base := (bi*channels + c) * size * size
			for j := 0; j < size*size; j++ {
				x.Data[base+j] = 0.1 * (2*r.Float32() - 1)
			}
			for col := 0; col < size; col++ {
				x.Data[base+row*size+col] += 1
			}
		}
	}
	return x, labels
}
