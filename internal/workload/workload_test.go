package workload

import (
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/tensor"
)

func TestBaseConfig(t *testing.T) {
	b := Base()
	if b.String() != "(64,128,64,11,1)" {
		t.Fatalf("base config = %v, want the paper's (64,128,64,11,1)", b)
	}
	if b.Channels != 3 {
		t.Fatalf("base channels = %d, want 3", b.Channels)
	}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSweepRangesMatchPaper(t *testing.T) {
	// Paper: batch 32–512 step 32, input 32–256 step 16, filters
	// 32–512 step 16, kernel and stride sweeps around the base.
	bs := BatchSweep()
	if bs[0].Batch != 32 || bs[len(bs)-1].Batch != 512 || len(bs) != 16 {
		t.Errorf("batch sweep wrong: %d cfgs, first %d last %d", len(bs), bs[0].Batch, bs[len(bs)-1].Batch)
	}
	is := InputSweep()
	if is[0].Input != 32 || is[len(is)-1].Input != 256 || len(is) != 15 {
		t.Errorf("input sweep wrong: %d cfgs", len(is))
	}
	fs := FilterSweep()
	if fs[0].Filters != 32 || fs[len(fs)-1].Filters != 512 || len(fs) != 31 {
		t.Errorf("filter sweep wrong: %d cfgs", len(fs))
	}
	ks := KernelSweep()
	if ks[0].Kernel != 3 || ks[len(ks)-1].Kernel != 15 {
		t.Errorf("kernel sweep wrong: %v", ks)
	}
	ss := StrideSweep()
	if len(ss) != 4 || ss[0].Stride != 1 || ss[3].Stride != 4 {
		t.Errorf("stride sweep wrong: %v", ss)
	}
}

func TestSweepsOnlyVaryOneParameter(t *testing.T) {
	base := Base()
	for name, cfgs := range Sweeps() {
		for _, cfg := range cfgs {
			diff := 0
			if cfg.Batch != base.Batch {
				diff++
			}
			if cfg.Input != base.Input {
				diff++
			}
			if cfg.Filters != base.Filters {
				diff++
			}
			if cfg.Kernel != base.Kernel {
				diff++
			}
			if cfg.Stride != base.Stride {
				diff++
			}
			if diff > 1 {
				t.Errorf("%s sweep config %v varies %d parameters", name, cfg, diff)
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s sweep contains invalid config %v: %v", name, cfg, err)
			}
		}
	}
}

func TestSweptValue(t *testing.T) {
	cfg := conv.Config{Batch: 1, Input: 2, Channels: 3, Filters: 4, Kernel: 5, Stride: 6}
	cases := map[string]int{"batch": 1, "input": 2, "filter": 4, "kernel": 5, "stride": 6}
	for name, want := range cases {
		if got := SweptValue(name, cfg); got != want {
			t.Errorf("SweptValue(%s) = %d, want %d", name, got, want)
		}
	}
	if SweptValue("bogus", cfg) != 0 {
		t.Error("unknown sweep should yield 0")
	}
}

func TestSweepNamesCoverSweeps(t *testing.T) {
	names := SweepNames()
	sweeps := Sweeps()
	if len(names) != len(sweeps) {
		t.Fatalf("%d names for %d sweeps", len(names), len(sweeps))
	}
	for _, n := range names {
		if _, ok := sweeps[n]; !ok {
			t.Errorf("sweep name %q has no sweep", n)
		}
	}
}

func TestSyntheticTensorsDeterministic(t *testing.T) {
	cfg := Base()
	cfg.Batch, cfg.Input = 2, 16
	x1, w1 := SyntheticTensors(cfg, 42)
	x2, w2 := SyntheticTensors(cfg, 42)
	if tensor.MaxAbsDiff(x1, x2) != 0 || tensor.MaxAbsDiff(w1, w2) != 0 {
		t.Fatal("same seed must give identical tensors")
	}
	x3, _ := SyntheticTensors(cfg, 43)
	if tensor.MaxAbsDiff(x1, x3) == 0 {
		t.Fatal("different seeds should differ")
	}
	if !x1.Shape().Equal(cfg.InputShape()) || !w1.Shape().Equal(cfg.FilterShape()) {
		t.Fatal("wrong shapes")
	}
}

func TestSyntheticBatchLabels(t *testing.T) {
	x, labels := SyntheticBatch(32, 3, 16, 10, 7)
	if !x.Shape().Equal(tensor.Shape{32, 3, 16, 16}) {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if len(labels) != 32 {
		t.Fatalf("%d labels", len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
	}
	if !x.AllFinite() {
		t.Fatal("non-finite synthetic data")
	}
}

func TestTableIChannels(t *testing.T) {
	want := []int{3, 64, 128, 128, 384}
	for i, nc := range TableI() {
		if nc.Cfg.Channels != want[i] {
			t.Errorf("%s channels = %d, want %d", nc.Name, nc.Cfg.Channels, want[i])
		}
	}
}
