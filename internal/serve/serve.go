// Package serve is the inference-serving layer over the simulated
// cluster: single-image requests are coalesced by a dynamic batcher
// (flush on max-batch-size or max-wait deadline, whichever comes
// first), formed batches are dispatched to the least-loaded device of a
// multigpu.Cluster, and admission is controlled by a bounded queue that
// rejects with ErrOverloaded instead of building unbounded backlog.
//
// The economics being exploited are the paper's own: Figure 3a shows
// per-image cost falling steeply with batch size (fixed kernel-launch
// and transfer overheads amortise across the batch) while Figure 7
// shows the host↔device transfer share staying near-constant — so a
// server that waits a bounded few milliseconds to form larger batches
// buys a multiple of simulated throughput for a bounded latency cost.
// cmd/serve sweeps batching policies and renders exactly that
// trade-off.
//
// Every request's journey is observable: an optional telemetry.Tracer
// receives a span per batch (kernel/transfer events attached, one
// process lane per device) with a child span per request, and the
// telemetry.Registry carries queue-depth and in-flight gauges,
// batch-size, queue-wait and end-to-end latency histograms, and
// per-device busy-time counters, so p50/p99 under load fall out of the
// standard exporters.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/impls"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/obs"
	"gpucnn/internal/par"
	"gpucnn/internal/telemetry"
)

// ErrOverloaded is returned by Submit when the admission queue is full:
// the caller should shed load or retry after backoff.
var ErrOverloaded = errors.New("serve: server overloaded, request rejected")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("serve: server closed")

// Priority is a request's admission class. Under queue pressure the
// classes shed in order: batch first, then standard, and interactive
// only when the queue is completely full — so the bounded admission
// queue degrades offline traffic before user-facing traffic.
type Priority int

const (
	// PriorityBatch is offline/backfill traffic: shed first.
	PriorityBatch Priority = iota
	// PriorityStandard is ordinary traffic.
	PriorityStandard
	// PriorityInteractive is user-facing traffic: sheds only when the
	// queue is full. Submit uses this class.
	PriorityInteractive
)

func (p Priority) String() string {
	switch p {
	case PriorityBatch:
		return "batch"
	case PriorityStandard:
		return "standard"
	case PriorityInteractive:
		return "interactive"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// index clamps p onto the per-class instrument arrays.
func (p Priority) index() int {
	if p < PriorityBatch {
		return int(PriorityBatch)
	}
	if p > PriorityInteractive {
		return int(PriorityInteractive)
	}
	return int(p)
}

// Options configures a Server. Zero values take the documented
// defaults.
type Options struct {
	// Engine runs the model's convolution. Default: impls.NewCuDNN()
	// (the only paper engine without shape limits, so partial batches
	// of any size are servable).
	Engine impls.Engine
	// Model is the per-image convolution configuration; Batch is
	// overridden per formed batch. Default: a CIFAR-scale layer
	// (1, 32, 32, 5, 1) with padding 2.
	Model conv.Config
	// MaxBatch is the batch size that flushes the batcher immediately.
	// Default 32.
	MaxBatch int
	// MaxWait is the longest the batcher holds an admitted request to
	// let a batch fill. Default 2ms.
	MaxWait time.Duration
	// QueueCap bounds the admission queue; a full queue rejects with
	// ErrOverloaded. Default 4×MaxBatch.
	QueueCap int
	// DeviceQueue bounds the per-device in-flight batch queue. Default 2.
	DeviceQueue int
	// TimeScale converts simulated batch duration into wall occupancy:
	// after running a batch the device worker sleeps sim×TimeScale, so
	// closed-loop load and queueing behave as they would on hardware of
	// that speed. Negative disables the sleep (pure simulation).
	// Default 1.
	TimeScale float64
	// Registry receives the serve_* metrics. Default telemetry.Default().
	Registry *telemetry.Registry
	// Tracer, when set, receives one root span per server with a child
	// span per batch and grandchild per request.
	Tracer *telemetry.Tracer
	// Obs, when set, receives the server's rolling-window instruments
	// (offered/admitted/shed/completed/failed counters, queue-depth and
	// batch-occupancy gauges, e2e and queue-wait histograms, per-device
	// throughput via sinks), a "batcher" dashboard section, and — unless
	// SLO.Disable — a burn-rate monitor over the serving objectives.
	Obs *obs.Plane
	// SLO tunes the objectives registered on Obs.
	SLO SLOConfig
}

// SLOConfig declares the serving objectives the obs monitor watches.
// Zero values take the documented defaults.
type SLOConfig struct {
	// Disable skips monitor creation even when Obs is set.
	Disable bool
	// E2EThreshold is the end-to-end latency bound in seconds; requests
	// slower than this burn the latency budget. Default 10ms. The bound
	// is inserted into the windowed histogram's buckets, so the bad
	// fraction is exact at the threshold.
	E2EThreshold float64
	// E2ETarget is the fraction of requests that must meet the bound.
	// Default 0.99 (budget: 1% slow).
	E2ETarget float64
	// ShedMax is the tolerated shed (ErrOverloaded) fraction of offered
	// load. Default 0.05.
	ShedMax float64
	// Fast/Slow are the burn-rate windows; Interval the evaluation
	// period (obs defaults apply; Interval < 0 means manual Eval).
	Fast, Slow, Interval time.Duration
}

func (c SLOConfig) withDefaults() SLOConfig {
	if c.E2EThreshold <= 0 {
		c.E2EThreshold = 0.010
	}
	if c.E2ETarget <= 0 || c.E2ETarget >= 1 {
		c.E2ETarget = 0.99
	}
	if c.ShedMax <= 0 || c.ShedMax >= 1 {
		c.ShedMax = 0.05
	}
	return c
}

func (o Options) withDefaults() Options {
	if o.Engine == nil {
		o.Engine = impls.NewCuDNN()
	}
	if (o.Model == conv.Config{}) {
		o.Model = conv.Config{Input: 32, Channels: 3, Filters: 32, Kernel: 5, Stride: 1, Pad: 2}
	}
	o.Model.Batch = 1
	o.Model = o.Model.WithDefaults()
	if o.MaxBatch <= 0 {
		o.MaxBatch = 32
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 4 * o.MaxBatch
	}
	if o.DeviceQueue <= 0 {
		o.DeviceQueue = 2
	}
	if o.TimeScale < 0 {
		o.TimeScale = 0
	} else if o.TimeScale == 0 {
		o.TimeScale = 1
	}
	if o.Registry == nil {
		o.Registry = telemetry.Default()
	}
	return o
}

// Result describes one served request.
type Result struct {
	BatchSize int           // size of the batch the request rode in
	Device    int           // cluster device that ran it
	QueueWait time.Duration // admission → execution start (wall)
	E2E       time.Duration // admission → completion (wall)
	BatchSim  time.Duration // simulated GPU time of the whole batch
}

// SimPerImage returns the request's share of simulated GPU time — the
// per-image cost the batch amortised.
func (r Result) SimPerImage() time.Duration {
	if r.BatchSize <= 0 {
		return 0
	}
	return r.BatchSim / time.Duration(r.BatchSize)
}

type reqDone struct {
	res Result
	err error
}

type request struct {
	enq  time.Time
	done chan reqDone
}

// Stats is a point-in-time counter snapshot, mainly for tests; the
// registry carries the full metric surface.
type Stats struct {
	Submitted int64
	Rejected  int64
	Completed int64
	Failed    int64
	Batches   []int64 // per device
	Images    []int64 // per device
}

// Server accepts single-image inference requests and serves them in
// dynamically formed batches across a cluster's devices.
type Server struct {
	opts    Options
	cluster *multigpu.Cluster
	plans   *multigpu.PlanCache

	mu      sync.RWMutex // guards closed, started, and the queue send
	closed  bool
	started bool

	queue chan *request
	devq  []chan *batch
	load  []atomic.Int64 // outstanding images per device
	wg    sync.WaitGroup

	root   *telemetry.Span
	nbatch atomic.Uint64

	submitted, rejected, completed, failed atomic.Int64
	devBatches, devImages                  []atomic.Int64

	qDepth    *telemetry.Gauge
	inflight  *telemetry.Gauge
	hBatch    *telemetry.Histogram
	hQueue    *telemetry.Histogram
	hE2E      *telemetry.Histogram
	cRequests *telemetry.Counter
	cRejected *telemetry.Counter
	cFailed   *telemetry.Counter
	cImages   *telemetry.Counter
	cBatches  *telemetry.Counter

	// Rolling-window plane (every instrument nil-safe, so the hot path
	// writes unconditionally whether or not Options.Obs was set).
	plane      *obs.Plane
	monitor    *obs.Monitor
	devObs     []*obs.DeviceSink
	wOffered   *obs.WindowedCounter
	wAdmitted  *obs.WindowedCounter
	wShed      *obs.WindowedCounter
	wCompleted *obs.WindowedCounter
	wFailed    *obs.WindowedCounter
	wBatches   *obs.WindowedCounter
	wQDepth    *obs.WindowedGauge
	wInflight  *obs.WindowedGauge
	wOccup     *obs.WindowedGauge
	wE2E       *obs.WindowedHistogram
	wQueue     *obs.WindowedHistogram
	wShedClass [3]*obs.WindowedCounter // per Priority class
}

// New builds a server over the cluster. Call Start before Submit.
func New(cluster *multigpu.Cluster, opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if err := opts.Model.Validate(); err != nil {
		return nil, fmt.Errorf("serve: bad model: %w", err)
	}
	// Batches of every size 1..MaxBatch must be servable, or deadline
	// flushes would fail at runtime; reject shape-limited engines now.
	for _, b := range []int{1, opts.MaxBatch} {
		cfg := opts.Model
		cfg.Batch = b
		if err := opts.Engine.Supports(cfg); err != nil {
			return nil, fmt.Errorf("serve: engine %s cannot run batch %d: %w", opts.Engine.Name(), b, err)
		}
	}
	n := cluster.Size()
	s := &Server{
		opts:       opts,
		cluster:    cluster,
		plans:      multigpu.NewPlanCache(cluster, opts.Engine),
		queue:      make(chan *request, opts.QueueCap),
		devq:       make([]chan *batch, n),
		load:       make([]atomic.Int64, n),
		devBatches: make([]atomic.Int64, n),
		devImages:  make([]atomic.Int64, n),
	}
	for i := range s.devq {
		s.devq[i] = make(chan *batch, opts.DeviceQueue)
	}
	reg, labels := opts.Registry, telemetry.Labels{"engine": opts.Engine.Name()}
	reg.Help("serve_queue_depth", "Requests waiting in the admission queue.")
	reg.Help("serve_batch_size_images", "Images per dispatched batch.")
	reg.Help("serve_queue_wait_seconds", "Admission to execution start, per request.")
	reg.Help("serve_e2e_latency_seconds", "Admission to completion, per request.")
	s.qDepth = reg.Gauge("serve_queue_depth", labels)
	s.inflight = reg.Gauge("serve_outstanding_images", labels)
	s.hBatch = reg.Histogram("serve_batch_size_images", labels, batchBuckets(opts.MaxBatch))
	s.hQueue = reg.Histogram("serve_queue_wait_seconds", labels, nil)
	s.hE2E = reg.Histogram("serve_e2e_latency_seconds", labels, nil)
	s.cRequests = reg.Counter("serve_requests_total", labels)
	s.cRejected = reg.Counter("serve_rejected_total", labels)
	s.cFailed = reg.Counter("serve_failed_total", labels)
	s.cImages = reg.Counter("serve_images_total", labels)
	s.cBatches = reg.Counter("serve_batches_total", labels)
	if opts.Tracer != nil {
		s.root = opts.Tracer.Root("serve").
			SetAttr("engine", opts.Engine.Name()).
			SetAttr("devices", fmt.Sprint(n))
	}
	s.wireObs(n)
	return s, nil
}

// serveLatencyBuckets are ms-aligned e2e bounds; the SLO threshold is
// spliced in so FractionAbove is exact at the objective's boundary.
func serveLatencyBuckets(threshold float64) []float64 {
	out := []float64{
		1e-4, 2.5e-4, 5e-4, 1e-3, 2e-3, 4e-3, 8e-3,
		1.6e-2, 3.2e-2, 6.4e-2, 0.128, 0.256, 0.512, 1.024,
	}
	for _, b := range out {
		if b == threshold {
			return out
		}
	}
	return append(out, threshold) // Plane.Histogram sorts
}

// wireObs registers the windowed instruments, the batcher dashboard
// section, per-device sinks, and the SLO monitor on Options.Obs. With
// a nil plane every instrument comes back nil and no-ops.
func (s *Server) wireObs(devices int) {
	p := s.opts.Obs
	s.plane = p
	slo := s.opts.SLO.withDefaults()
	s.wOffered = p.Counter("serve.offered")
	s.wAdmitted = p.Counter("serve.admitted")
	s.wShed = p.Counter("serve.shed")
	s.wCompleted = p.Counter("serve.completed")
	s.wFailed = p.Counter("serve.failed")
	s.wBatches = p.Counter("serve.batches")
	s.wQDepth = p.Gauge("serve.queue_depth")
	s.wInflight = p.Gauge("serve.inflight_images")
	s.wOccup = p.Gauge("serve.batch_occupancy")
	s.wE2E = p.Histogram("serve.e2e_seconds", serveLatencyBuckets(slo.E2EThreshold))
	s.wQueue = p.Histogram("serve.queue_wait_seconds", serveLatencyBuckets(slo.E2EThreshold))
	for pr := PriorityBatch; pr <= PriorityInteractive; pr++ {
		s.wShedClass[pr.index()] = p.Counter("serve.shed_" + pr.String())
	}
	if p == nil {
		return
	}
	s.devObs = make([]*obs.DeviceSink, devices)
	for i := range s.devObs {
		s.devObs[i] = obs.NewDeviceSink(p, fmt.Sprint(i))
	}
	p.Section("batcher", func() map[string]any {
		sec := map[string]any{
			"queue_len":    len(s.queue),
			"queue_cap":    cap(s.queue),
			"max_batch":    s.opts.MaxBatch,
			"max_wait":     s.opts.MaxWait.String(),
			"device_queue": s.opts.DeviceQueue,
			"engine":       s.opts.Engine.Name(),
		}
		for i := range s.devq {
			sec[fmt.Sprintf("dev%d_queued_batches", i)] = len(s.devq[i])
			sec[fmt.Sprintf("dev%d_outstanding_images", i)] = s.load[i].Load()
		}
		return sec
	})
	if !slo.Disable {
		s.monitor = obs.NewMonitor(obs.MonitorConfig{
			Clock: p.Clock(), Fast: slo.Fast, Slow: slo.Slow, Interval: slo.Interval,
		},
			obs.LatencyObjective{
				ObjName: "e2e-p99", H: s.wE2E,
				Threshold: slo.E2EThreshold, Target: slo.E2ETarget,
			},
			obs.RateObjective{
				ObjName: "shed-rate", Bad: s.wShed, Total: s.wOffered,
				MaxRate: slo.ShedMax,
			},
		)
		p.Watch(s.monitor)
	}
}

// Monitor returns the SLO monitor, or nil when Options.Obs was unset
// or SLO.Disable was set.
func (s *Server) Monitor() *obs.Monitor { return s.monitor }

// batchBuckets covers 1..max in powers of two.
func batchBuckets(max int) []float64 {
	var out []float64
	for b := 1; b < max; b *= 2 {
		out = append(out, float64(b))
	}
	return append(out, float64(max))
}

// Options returns the resolved (defaulted) options.
func (s *Server) Options() Options { return s.opts }

// Cluster returns the cluster the server dispatches over.
func (s *Server) Cluster() *multigpu.Cluster { return s.cluster }

// Start launches the batcher and one worker per device. It is a no-op
// when called twice or after Close. The started/closed transition is
// serialized under s.mu: a Start racing a Close can never spawn a
// batchLoop that drains the queue alongside Close's manual drain (or
// Add to the WaitGroup while Close is already Waiting on it).
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started || s.closed {
		return
	}
	s.started = true
	s.wg.Add(1 + len(s.devq))
	par.Go("serve.batchLoop", s.batchLoop)
	for i := range s.devq {
		par.Go(fmt.Sprintf("serve.device-%d", i), func() { s.deviceLoop(i) })
	}
}

// Submit admits one single-image request at interactive priority and
// blocks until it is served, the server rejects it, or ctx is
// cancelled. Cancellation abandons the wait but not the work: an
// admitted request still occupies its batch slot.
func (s *Server) Submit(ctx context.Context) (Result, error) {
	return s.SubmitPriority(ctx, PriorityInteractive)
}

// SubmitPriority is Submit with an explicit priority class: lower
// classes are admitted only while the queue is below their depth
// limit, so under ErrOverloaded pressure batch traffic sheds first,
// then standard, and interactive keeps the full queue capacity.
func (s *Server) SubmitPriority(ctx context.Context, pr Priority) (Result, error) {
	r := &request{enq: time.Now(), done: make(chan reqDone, 1)}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return Result{}, ErrClosed
	}
	s.wOffered.Inc()
	admitted := false
	if len(s.queue) < s.admitLimit(pr) {
		select {
		case s.queue <- r:
			admitted = true
		default:
		}
	}
	s.mu.RUnlock()
	if !admitted {
		s.rejected.Add(1)
		s.cRejected.Inc()
		s.wShed.Inc()
		s.wShedClass[pr.index()].Inc()
		return Result{}, ErrOverloaded
	}
	s.submitted.Add(1)
	s.cRequests.Inc()
	s.wAdmitted.Inc()
	s.qDepth.Set(float64(len(s.queue)))
	s.wQDepth.Set(float64(len(s.queue)))
	select {
	case d := <-r.done:
		return d.res, d.err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// admitLimit returns the queue depth at which class pr stops being
// admitted: batch traffic may fill half the queue, standard 7/8 of it,
// interactive all of it — the reserved headroom is what the higher
// classes ride out a burst on.
func (s *Server) admitLimit(pr Priority) int {
	c := cap(s.queue)
	switch {
	case pr <= PriorityBatch:
		return c / 2
	case pr == PriorityStandard:
		return c - c/8
	default:
		return c
	}
}

// QueueDepth returns the instantaneous admission-queue length.
func (s *Server) QueueDepth() int { return len(s.queue) }

// Load returns the server's instantaneous load proxy: queued requests
// plus images outstanding on devices — the quantity a least-loaded
// front-door router compares.
func (s *Server) Load() int64 { return int64(len(s.queue)) + sumLoads(s.load) }

// Close stops admission, drains every already-admitted request, waits
// for the workers, and releases the cached device plans. Safe to call
// twice, and safe against a concurrent Start: started is read under
// the same critical section that publishes closed, so either the Start
// happened first (its batchLoop drains the closed queue) or it is a
// no-op and Close's manual drain is the only consumer.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	started := s.started
	close(s.queue)
	s.mu.Unlock()
	if !started {
		// Never started: no batcher to drain admitted requests.
		for r := range s.queue {
			r.done <- reqDone{err: ErrClosed}
		}
	}
	s.wg.Wait()
	s.plans.Release()
	s.root.End()
	s.monitor.Stop()
	s.plane.Unwatch(s.monitor)
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Submitted: s.submitted.Load(),
		Rejected:  s.rejected.Load(),
		Completed: s.completed.Load(),
		Failed:    s.failed.Load(),
	}
	for i := range s.devBatches {
		st.Batches = append(st.Batches, s.devBatches[i].Load())
		st.Images = append(st.Images, s.devImages[i].Load())
	}
	return st
}
