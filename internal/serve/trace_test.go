package serve

import (
	"context"
	"reflect"
	"testing"
	"time"

	"gpucnn/internal/obs"
	"gpucnn/internal/telemetry"
)

// TestBuildTraceDeterminism: the schedule is a pure function of the
// options — replaying an experiment means rebuilding its trace.
func TestBuildTraceDeterminism(t *testing.T) {
	opts := TraceOptions{
		Shape: ShapeDiurnal, BaseRPS: 500, Duration: time.Second,
		Seed: 42, HeavyTailP: 0.1,
	}
	a, b := BuildTrace(opts), BuildTrace(opts)
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("arrivals not monotonic at %d: %v < %v", i, a[i].At, a[i-1].At)
		}
	}
	for _, ar := range a {
		if ar.At < 0 || ar.At >= opts.Duration {
			t.Fatalf("arrival %v outside [0,%v)", ar.At, opts.Duration)
		}
		if ar.Key == "" {
			t.Fatal("arrival with empty routing key")
		}
	}
	opts.Seed = 43
	if c := BuildTrace(opts); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestBuildTraceShapes checks each curve's signature property by
// counting arrivals per region of the run.
func TestBuildTraceShapes(t *testing.T) {
	count := func(tr []Arrival, lo, hi float64, d time.Duration) int {
		n := 0
		for _, a := range tr {
			x := a.At.Seconds() / d.Seconds()
			if x >= lo && x < hi {
				n++
			}
		}
		return n
	}
	d := 2 * time.Second

	ramp := BuildTrace(TraceOptions{Shape: ShapeRamp, BaseRPS: 200, PeakRPS: 2000, Duration: d, Seed: 7})
	if lo, hi := count(ramp, 0, 0.5, d), count(ramp, 0.5, 1, d); hi < 2*lo {
		t.Errorf("ramp second half (%d) not ≫ first half (%d)", hi, lo)
	}

	burst := BuildTrace(TraceOptions{Shape: ShapeBurst, BaseRPS: 200, PeakRPS: 2000, Duration: d, Seed: 7})
	mid := count(burst, 0.4, 0.6, d)
	edges := count(burst, 0, 0.4, d) + count(burst, 0.6, 1, d)
	midRate, edgeRate := float64(mid)/0.2, float64(edges)/0.8
	if midRate < 2*edgeRate {
		t.Errorf("burst plateau density %.0f not ≫ edge density %.0f", midRate, edgeRate)
	}

	steady := BuildTrace(TraceOptions{Shape: ShapeSteady, BaseRPS: 1000, Duration: d, Seed: 7})
	got := float64(len(steady)) / d.Seconds()
	if got < 700 || got > 1300 {
		t.Errorf("steady 1000 RPS trace realised %.0f RPS", got)
	}
}

// TestBuildTracePriorityMix: the class split tracks the configured
// fractions and every class appears.
func TestBuildTracePriorityMix(t *testing.T) {
	tr := BuildTrace(TraceOptions{
		BaseRPS: 2000, Duration: 2 * time.Second, Seed: 11,
		InteractiveFrac: 0.5, StandardFrac: 0.3,
	})
	var byClass [3]int
	for _, a := range tr {
		byClass[a.Pri.index()]++
	}
	n := float64(len(tr))
	for pr, want := range map[Priority]float64{
		PriorityInteractive: 0.5, PriorityStandard: 0.3, PriorityBatch: 0.2,
	} {
		got := float64(byClass[pr.index()]) / n
		if got < want-0.1 || got > want+0.1 {
			t.Errorf("%s fraction %.2f, want %.2f±0.1", pr, got, want)
		}
	}
}

// TestTraceShapeByName round-trips every shape and rejects junk.
func TestTraceShapeByName(t *testing.T) {
	for sh := ShapeSteady; sh <= ShapeBurst; sh++ {
		got, err := TraceShapeByName(sh.String())
		if err != nil || got != sh {
			t.Errorf("round-trip %v: got %v, %v", sh, got, err)
		}
	}
	if _, err := TraceShapeByName("sawtooth"); err == nil {
		t.Error("unknown shape accepted")
	}
}

// TestRunTraceAgainstFleet replays a short steady trace open-loop
// against a two-replica fleet and checks the report reconciles.
func TestRunTraceAgainstFleet(t *testing.T) {
	plane := obs.NewPlane(obs.Options{})
	f, err := NewFleet(FleetOptions{
		Replicas: 2, ShardDevices: 2,
		Server: Options{
			Model: testModel(), MaxBatch: 16, MaxWait: 500 * time.Microsecond,
			QueueCap: 1024, TimeScale: -1,
			Registry: telemetry.NewRegistry(), Obs: plane,
		},
		SLO:       SLOConfig{Interval: -1},
		Autoscale: AutoscaleConfig{Min: 2, Max: 2, Interval: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	rep := RunTrace(context.Background(), f, TraceOptions{
		Shape: ShapeSteady, BaseRPS: 2000, Duration: 300 * time.Millisecond, Seed: 3,
	})
	if rep.Offered == 0 || rep.Completed == 0 {
		t.Fatalf("trace did not serve: %+v", rep)
	}
	if rep.Completed+rep.Shed+rep.Failed != rep.Offered {
		t.Fatalf("report does not reconcile: %+v", rep)
	}
	if rep.Failed != 0 {
		t.Fatalf("unexpected hard failures: %+v", rep)
	}
	if rep.P50 > rep.P95 || rep.P95 > rep.P99 || rep.P99 > rep.Max {
		t.Fatalf("percentiles not ordered: %+v", rep)
	}
	if rep.ReplicaMin != 2 || rep.ReplicaMax != 2 {
		t.Fatalf("pinned fleet changed size: %+v", rep)
	}
	st := f.Stats()
	for id, rs := range st.PerReplica {
		if rs.Submitted == 0 {
			t.Errorf("replica %d idle for the whole trace", id)
		}
	}
}
