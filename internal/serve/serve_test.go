package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/obs"
	"gpucnn/internal/telemetry"
)

// testModel is a small CIFAR-scale layer: cheap enough that tests are
// fast, big enough that batching amortisation is visible.
func testModel() conv.Config {
	return conv.Config{Input: 32, Channels: 3, Filters: 32, Kernel: 5, Stride: 1, Pad: 2}
}

func newTestServer(t *testing.T, devices int, opts Options) *Server {
	t.Helper()
	if (opts.Model == conv.Config{}) {
		opts.Model = testModel()
	}
	if opts.Registry == nil {
		opts.Registry = telemetry.NewRegistry()
	}
	s, err := New(multigpu.New(devices, gpusim.TeslaK40c()), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestBatchFormsOnMaxBatch: with a deadline far away, the batch must
// flush the moment it fills.
func TestBatchFormsOnMaxBatch(t *testing.T) {
	s := newTestServer(t, 1, Options{MaxBatch: 4, MaxWait: 10 * time.Second})
	s.Start()
	var wg sync.WaitGroup
	results := make([]Result, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := s.Submit(context.Background())
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			results[i] = r
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("batch never flushed: max-batch trigger broken")
	}
	for i, r := range results {
		if r.BatchSize != 4 {
			t.Errorf("request %d rode a batch of %d, want 4", i, r.BatchSize)
		}
	}
}

// TestBatchFlushesOnDeadline: a lone request must be served after
// roughly MaxWait even though the batch never fills.
func TestBatchFlushesOnDeadline(t *testing.T) {
	const wait = 30 * time.Millisecond
	s := newTestServer(t, 1, Options{MaxBatch: 64, MaxWait: wait})
	s.Start()
	start := time.Now()
	r, err := s.Submit(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	el := time.Since(start)
	if r.BatchSize != 1 {
		t.Fatalf("lone request rode a batch of %d", r.BatchSize)
	}
	if el < wait {
		t.Fatalf("served in %v, before the %v deadline", el, wait)
	}
	if el > wait+2*time.Second {
		t.Fatalf("deadline flush took %v", el)
	}
}

// TestAdmissionControl: with no batcher running, the bounded queue
// must accept exactly QueueCap requests and reject the next with
// ErrOverloaded; once started, everything admitted must be served.
func TestAdmissionControl(t *testing.T) {
	s := newTestServer(t, 1, Options{MaxBatch: 8, MaxWait: time.Millisecond, QueueCap: 8})
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 9)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Submit(ctx)
			errs <- err
		}()
	}
	// Wait until all 8 are actually queued before probing the 9th.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) < 8 {
		if time.Now().After(deadline) {
			t.Fatal("requests never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Submit(ctx); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("9th request on a full queue: err=%v, want ErrOverloaded", err)
	}
	s.Start()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("admitted request failed: %v", err)
		}
	}
	if st := s.Stats(); st.Rejected != 1 || st.Completed != 8 {
		t.Fatalf("stats = %+v, want 1 rejected / 8 completed", st)
	}
}

// TestSubmitAfterClose returns ErrClosed, and Close drains admitted
// requests rather than abandoning them.
func TestSubmitAfterClose(t *testing.T) {
	s := newTestServer(t, 1, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	s.Start()
	if _, err := s.Submit(context.Background()); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Submit(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestLeastLoadedSpread: under sustained concurrent load every device
// of the cluster must end up serving batches.
func TestLeastLoadedSpread(t *testing.T) {
	s := newTestServer(t, 4, Options{MaxBatch: 4, MaxWait: 500 * time.Microsecond})
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 32, Requests: 256})
	if rep.Completed != 256 {
		t.Fatalf("completed %d of 256", rep.Completed)
	}
	st := s.Stats()
	for i, b := range st.Batches {
		if b == 0 {
			t.Errorf("device %d served no batches: %+v", i, st)
		}
	}
}

// TestUnsupportedEngineRejectedUpFront: an engine with shape limits
// that would fail a deadline flush (batch 1) must be rejected by New.
func TestUnsupportedEngineRejectedUpFront(t *testing.T) {
	c := multigpu.New(1, gpusim.TeslaK40c())
	_, err := New(c, Options{
		Engine: shapeLimitedEngine{},
		Model:  testModel(),
	})
	if err == nil {
		t.Fatal("engine that cannot serve batch=1 must be rejected")
	}
}

// TestTelemetry: spans exist per batch with kernel events attached and
// all ended; registry carries the serving metric surface.
func TestTelemetry(t *testing.T) {
	tr := telemetry.NewTracer()
	reg := telemetry.NewRegistry()
	s := newTestServer(t, 2, Options{
		MaxBatch: 4, MaxWait: time.Millisecond,
		Tracer: tr, Registry: reg,
	})
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 8, Requests: 64})
	if rep.Completed != 64 {
		t.Fatalf("completed %d of 64", rep.Completed)
	}
	s.Close()

	roots := tr.Roots()
	if len(roots) != 1 || roots[0].Name() != "serve" {
		t.Fatalf("want one 'serve' root span, got %d", len(roots))
	}
	batches := roots[0].Children()
	if len(batches) == 0 {
		t.Fatal("no batch spans recorded")
	}
	reqSpans := 0
	for _, b := range batches {
		if tot := b.Totals(); tot.Kernels == 0 || tot.Transfers == 0 {
			t.Errorf("batch span %q missing device events: %+v", b.Name(), tot)
		}
		for _, c := range b.Children() {
			if c.Name() == "request" {
				reqSpans++
			}
		}
	}
	if reqSpans != 64 {
		t.Errorf("want 64 request spans across batches, got %d", reqSpans)
	}
	roots[0].Walk(func(_ int, sp *telemetry.Span) {
		if !sp.Ended() {
			t.Errorf("span %q left un-ended", sp.Name())
		}
	})

	for i, dev := range s.Cluster().Devices {
		if dev.Sink() != nil {
			t.Errorf("device %d sink still attached after close", i)
		}
	}

	if v := reg.Counter("serve_images_total", telemetry.Labels{"engine": "cuDNN"}).Value(); v != 64 {
		t.Errorf("serve_images_total = %v, want 64", v)
	}
	if h := reg.Histogram("serve_e2e_latency_seconds", telemetry.Labels{"engine": "cuDNN"}, nil); h.Count() != 64 {
		t.Errorf("e2e histogram count = %d, want 64", h.Count())
	}
	busy := 0.0
	for i := 0; i < 2; i++ {
		busy += reg.Counter("serve_device_busy_seconds_total",
			telemetry.Labels{"engine": "cuDNN", "device": []string{"0", "1"}[i]}).Value()
	}
	if busy <= 0 {
		t.Error("no simulated busy time accumulated")
	}
}

// TestDynamicBatchingBeatsBatchOne is the acceptance check: on the
// same cluster and model, dynamic batching must deliver a multiple of
// the batch=1 baseline's simulated throughput while its p99 queue wait
// stays bounded by the max-wait knob (plus generous scheduler slack).
func TestDynamicBatchingBeatsBatchOne(t *testing.T) {
	run := func(maxBatch int, maxWait time.Duration) Report {
		reg := telemetry.NewRegistry()
		s := newTestServer(t, 2, Options{
			MaxBatch: maxBatch, MaxWait: maxWait, Registry: reg,
		})
		defer s.Close()
		return RunLoad(context.Background(), s, LoadOptions{Clients: 64, Requests: 512})
	}
	base := run(1, time.Millisecond)
	dyn := run(32, 2*time.Millisecond)
	if base.Completed != 512 || dyn.Completed != 512 {
		t.Fatalf("incomplete runs: base %d, dyn %d", base.Completed, dyn.Completed)
	}
	if dyn.MeanBatch < 2 {
		t.Fatalf("dynamic batcher never batched: mean batch %.1f", dyn.MeanBatch)
	}
	if dyn.SimImagesPerSec < 1.5*base.SimImagesPerSec {
		t.Fatalf("dynamic batching %.0f sim img/s does not beat batch=1 %.0f sim img/s",
			dyn.SimImagesPerSec, base.SimImagesPerSec)
	}
	// Bounded latency: p99 queue wait within max-wait plus service and
	// a generous scheduling margin.
	if limit := 2*time.Millisecond + 500*time.Millisecond; dyn.QueueP99 > limit {
		t.Fatalf("dynamic p99 queue wait %v exceeds bound %v", dyn.QueueP99, limit)
	}
}

// TestStartAfterCloseIsNoop: once Close has run, Start must not spawn
// workers over the closed queue.
func TestStartAfterCloseIsNoop(t *testing.T) {
	s := newTestServer(t, 1, Options{MaxBatch: 4, MaxWait: time.Millisecond})
	s.Close()
	s.Start()
	if _, err := s.Submit(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close+start: %v, want ErrClosed", err)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("second Close hung: Start-after-Close spawned workers")
	}
}

// TestStartCloseRaceStress is the regression test for the Close/Start
// race: Close used to read started *after* closing the queue, so a
// Start slipping in between could spawn a batchLoop draining the queue
// alongside Close's manual drain (and Add to the WaitGroup Close was
// already Waiting on). Run under -race in the tier-1 gate; every
// interleaving must resolve every request exactly once and shut down
// cleanly.
func TestStartCloseRaceStress(t *testing.T) {
	for iter := 0; iter < 30; iter++ {
		s, err := New(multigpu.New(1, gpusim.TeslaK40c()), Options{
			Model: testModel(), MaxBatch: 4, MaxWait: 200 * time.Microsecond,
			QueueCap: 8, TimeScale: -1, Registry: telemetry.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		gate := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-gate
				_, _ = s.Submit(ctx) // served, ErrClosed or ErrOverloaded — all fine
			}()
		}
		wg.Add(2)
		go func() { defer wg.Done(); <-gate; s.Start() }()
		go func() { defer wg.Done(); <-gate; s.Close() }()
		close(gate)
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			t.Fatalf("iter %d: Start/Close race deadlocked the server", iter)
		}
		cancel()
		s.Close()
	}
}

// TestPrioritySheddingOrder: with the batcher withheld the queue fills
// deterministically, and the admission limits must shed batch traffic
// at half capacity, standard at 7/8, and interactive only when full.
func TestPrioritySheddingOrder(t *testing.T) {
	plane := obs.NewPlane(obs.Options{})
	s := newTestServer(t, 1, Options{
		MaxBatch: 4, QueueCap: 16, TimeScale: -1,
		Obs: plane, SLO: SLOConfig{Interval: -1},
	})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel() // admitted submits return immediately; queued slots persist

	fill := func(n int, pr Priority) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, err := s.SubmitPriority(cancelled, pr); !errors.Is(err, context.Canceled) {
				t.Fatalf("fill at depth %d class %v: %v", len(s.queue), pr, err)
			}
		}
	}

	fill(8, PriorityInteractive) // depth 8 = cap/2: batch limit reached
	if _, err := s.SubmitPriority(cancelled, PriorityBatch); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("batch at half-full queue: %v, want ErrOverloaded", err)
	}
	fill(6, PriorityStandard) // depth 14 = cap−cap/8: standard limit
	if _, err := s.SubmitPriority(cancelled, PriorityStandard); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("standard at 7/8-full queue: %v, want ErrOverloaded", err)
	}
	fill(2, PriorityInteractive) // depth 16: full
	if _, err := s.SubmitPriority(cancelled, PriorityInteractive); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("interactive at full queue: %v, want ErrOverloaded", err)
	}

	for pr, want := range map[Priority]float64{
		PriorityBatch: 1, PriorityStandard: 1, PriorityInteractive: 1,
	} {
		name := "serve.shed_" + pr.String()
		if got := plane.Counter(name).Total(); got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	s.Start() // drain the queued requests before Cleanup closes
}

// shapeLimitedEngine rejects batch sizes below 32 (the cuda-convnet2
// style constraint that makes deadline flushes unservable).
type shapeLimitedEngine struct{}

func (shapeLimitedEngine) Name() string            { return "limited" }
func (shapeLimitedEngine) Strategy() conv.Strategy { return conv.Direct }
func (shapeLimitedEngine) Supports(cfg conv.Config) error {
	if cfg.Batch%32 != 0 {
		return errors.New("batch must be a multiple of 32")
	}
	return nil
}
func (shapeLimitedEngine) Plan(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return nil, errors.New("unused")
}
func (shapeLimitedEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return nil, errors.New("unused")
}
