package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/obs"
	"gpucnn/internal/telemetry"
)

// newTestFleet builds a fleet with test-friendly defaults: instant
// simulated service (no wall occupancy), manual SLO evaluation and a
// manual autoscaler.
func newTestFleet(t *testing.T, opts FleetOptions) *Fleet {
	t.Helper()
	if opts.Server.Model == (conv.Config{}) {
		opts.Server.Model = testModel()
	}
	if opts.Server.Registry == nil {
		opts.Server.Registry = telemetry.NewRegistry()
	}
	if opts.Server.MaxBatch == 0 {
		opts.Server.MaxBatch = 4
	}
	if opts.Server.MaxWait == 0 {
		opts.Server.MaxWait = time.Millisecond
	}
	if opts.Server.TimeScale == 0 {
		opts.Server.TimeScale = -1
	}
	if opts.ShardDevices == 0 {
		opts.ShardDevices = 1
	}
	if opts.SLO.Interval == 0 {
		opts.SLO.Interval = -1
	}
	if opts.Autoscale.Interval == 0 {
		opts.Autoscale.Interval = -1
	}
	f, err := NewFleet(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

// TestHashRingStability: removing a replica must remap only the keys
// that lived on it; every surviving replica's keys stay put.
func TestHashRingStability(t *testing.T) {
	r := newHashRing(64)
	r.rebuild([]int{0, 1, 2})
	before := map[string]int{}
	perID := map[int]int{}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("user-%d", i)
		id, ok := r.pick(key)
		if !ok {
			t.Fatal("pick on a populated ring failed")
		}
		before[key] = id
		perID[id]++
	}
	for id := 0; id < 3; id++ {
		if perID[id] == 0 {
			t.Fatalf("replica %d owns no keys: vnode spread broken (%v)", id, perID)
		}
	}
	r.rebuild([]int{0, 2})
	moved := 0
	for key, id := range before {
		after, _ := r.pick(key)
		if id == 1 {
			moved++
			if after == 1 {
				t.Fatalf("key %s still routed to removed replica 1", key)
			}
			continue
		}
		if after != id {
			t.Errorf("key %s moved %d→%d though its replica survived", key, id, after)
		}
	}
	if moved != perID[1] {
		t.Fatalf("moved %d keys, want exactly replica 1's %d", moved, perID[1])
	}
}

// TestFleetHashRoutingStickiness: the fleet's front door keeps a key on
// one replica across calls, and a membership change (scale-in) leaves
// the surviving replicas' keys in place.
func TestFleetHashRoutingStickiness(t *testing.T) {
	f := newTestFleet(t, FleetOptions{
		Replicas: 3, Route: RouteHash,
		Autoscale: AutoscaleConfig{Min: 1, Max: 4, Interval: -1},
	})
	routeID := func(key string) int {
		f.mu.RLock()
		defer f.mu.RUnlock()
		r := f.route(key)
		if r == nil {
			t.Fatalf("no route for %s", key)
		}
		return r.id
	}
	assign := map[string]int{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("user-%d", i)
		id := routeID(key)
		if again := routeID(key); again != id {
			t.Fatalf("key %s flapped %d→%d with stable membership", key, id, again)
		}
		assign[key] = id
	}
	if n := f.scaleIn(1); n != 2 {
		t.Fatalf("scale-in left %d replicas, want 2", n)
	}
	moved := 0
	for key, id := range assign {
		after := routeID(key)
		if id == 1 {
			moved++
			continue
		}
		if after != id {
			t.Errorf("key %s moved %d→%d though its replica survived", key, id, after)
		}
	}
	if moved == 0 {
		t.Fatal("no keys lived on the removed replica: test never exercised the remap")
	}
}

// TestFleetAutoscaleOnBurnAndIdle is the acceptance-criterion test:
// under a fake clock, injected shed burn walks the fleet monitor into
// PAGE and the autoscaler scales out (respecting hysteresis and the
// max bound); once the burn clears and traffic stops, sustained cold
// ticks scale the fleet back to min.
func TestFleetAutoscaleOnBurnAndIdle(t *testing.T) {
	fc := obs.NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	plane := obs.NewPlane(obs.Options{Clock: fc, Window: time.Minute, Resolution: time.Second})
	f := newTestFleet(t, FleetOptions{
		Server: Options{Obs: plane},
		Autoscale: AutoscaleConfig{
			Min: 1, Max: 3, Interval: -1,
			ScaleOutAfter: 2, ScaleInAfter: 3, Cooldown: 1, ColdPerReplica: 1,
		},
	})
	if f.Size() != 1 {
		t.Fatalf("initial size %d, want 1 (= min)", f.Size())
	}

	// Phase 1: inject a 50% shed rate (burn 10× the 5% budget) for ten
	// fake seconds. ScaleOutAfter=2 with Cooldown=1 means events land
	// on ticks 2 and 4: 1→2→3, then the max bound holds.
	var sizes []int
	for sec := 0; sec < 10; sec++ {
		plane.Counter("serve.offered").Add(100)
		plane.Counter("serve.shed").Add(50)
		fc.Advance(time.Second)
		f.Autoscaler().Tick()
		sizes = append(sizes, f.Size())
	}
	if f.Size() != 3 {
		t.Fatalf("after sustained burn: size %d, want 3 (= max); walk %v", f.Size(), sizes)
	}
	if sizes[0] != 1 {
		t.Fatalf("scaled out on the first burn tick — hysteresis broken: %v", sizes)
	}
	if got := f.Monitor().State("fleet-shed-rate"); got != obs.PAGE {
		t.Fatalf("shed objective = %v, want PAGE", got)
	}

	// Phase 2: burn stops and traffic goes idle. The fast window drains
	// in 10 fake seconds, the state returns to OK, and cold ticks scale
	// the fleet back 3→2→1.
	for sec := 0; sec < 40 && f.Size() > 1; sec++ {
		fc.Advance(time.Second)
		f.Autoscaler().Tick()
	}
	if f.Size() != 1 {
		t.Fatalf("idle fleet did not scale in: size %d, want 1", f.Size())
	}
	if ids := f.ReplicaIDs(); len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("survivor ids %v, want the founding replica [0]", ids)
	}

	events := f.Autoscaler().Events()
	if len(events) != 4 {
		t.Fatalf("events = %v, want 2 scale-outs + 2 scale-ins", events)
	}
	for i, want := range []string{"slo burn", "slo burn", "idle", "idle"} {
		if !strings.Contains(events[i].Reason, want) {
			t.Errorf("event %d reason %q, want ~%q", i, events[i].Reason, want)
		}
	}
	for _, e := range events[:2] {
		if e.To != e.From+1 {
			t.Errorf("scale-out event %v not a single step", e)
		}
	}
}

// TestFleetServesTraffic: an end-to-end smoke over the least-loaded
// front door — every replica serves, aggregates reconcile, and Close
// is clean.
func TestFleetServesTraffic(t *testing.T) {
	plane := obs.NewPlane(obs.Options{})
	f := newTestFleet(t, FleetOptions{
		Replicas: 2, ShardDevices: 2,
		Server:    Options{Obs: plane, MaxBatch: 8, MaxWait: 500 * time.Microsecond, QueueCap: 1024},
		Autoscale: AutoscaleConfig{Min: 2, Max: 2, Interval: -1},
	})
	ctx := context.Background()
	const n = 256
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("user-%d", i%16)
		go func() {
			_, err := f.Submit(ctx, key, PriorityStandard)
			done <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	st := f.Stats()
	if st.Total.Completed != n {
		t.Fatalf("fleet completed %d of %d: %+v", st.Total.Completed, n, st)
	}
	for id, rs := range st.PerReplica {
		if rs.Submitted == 0 {
			t.Errorf("replica %d saw no traffic under least-loaded routing", id)
		}
	}
	if got := plane.Counter("serve.completed").Total(); got != n {
		t.Errorf("plane-aggregate completed = %v, want %v", got, n)
	}
	snap := plane.Dash()
	if snap.Sections["fleet"] == nil || snap.Sections["autoscaler"] == nil {
		t.Errorf("fleet/autoscaler dashboard sections missing: %v", snap.Sections)
	}
}

// BenchmarkFleet measures the fleet front door (routing + admission +
// batcher + dispatch) with the wall-occupancy sleep disabled.
func BenchmarkFleet(b *testing.B) {
	for _, route := range []RoutePolicy{RouteLeastLoaded, RouteHash} {
		b.Run(route.String(), func(b *testing.B) {
			f, err := NewFleet(FleetOptions{
				Replicas: 2, ShardDevices: 2,
				Server: Options{
					Model: testModel(), MaxBatch: 32, MaxWait: 500 * time.Microsecond,
					QueueCap: 4096, TimeScale: -1, Registry: telemetry.NewRegistry(),
				},
				Route:     route,
				Autoscale: AutoscaleConfig{Min: 2, Max: 2, Interval: -1},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for i := 0; pb.Next(); i++ {
					key := fmt.Sprintf("user-%d", i%64)
					if _, err := f.Submit(context.Background(), key, PriorityStandard); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}
