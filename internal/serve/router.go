package serve

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// RoutePolicy selects the fleet's front-door routing discipline.
type RoutePolicy int

const (
	// RouteLeastLoaded sends each request to the replica with the
	// smallest instantaneous load (queued requests plus outstanding
	// images) — best for uniform traffic, maximises batch formation.
	RouteLeastLoaded RoutePolicy = iota
	// RouteHash routes by consistent hash of the request key, so one
	// key's traffic sticks to one replica (cache affinity) and a
	// membership change remaps only the keys that lived on the replica
	// that left or the arc the replica that joined took over.
	RouteHash
)

func (p RoutePolicy) String() string {
	switch p {
	case RouteLeastLoaded:
		return "least-loaded"
	case RouteHash:
		return "hash"
	}
	return fmt.Sprintf("RoutePolicy(%d)", int(p))
}

// RoutePolicyByName parses a -route flag value.
func RoutePolicyByName(s string) (RoutePolicy, error) {
	switch s {
	case "least-loaded", "leastloaded", "ll":
		return RouteLeastLoaded, nil
	case "hash", "consistent-hash", "ch":
		return RouteHash, nil
	}
	return 0, fmt.Errorf("serve: unknown route policy %q (want least-loaded or hash)", s)
}

// defaultVnodes is the virtual-node count per replica: enough that the
// ring's arcs even out (load spread within a few percent) while a
// rebuild stays trivially cheap at fleet sizes.
const defaultVnodes = 64

// hashRing is a consistent-hash ring over replica ids. Placement is a
// pure function of (id, vnode), so rebuilding from any membership set
// reproduces the surviving replicas' points exactly — the property the
// stability test pins down.
type hashRing struct {
	vnodes int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	id   int
}

func newHashRing(vnodes int) *hashRing {
	if vnodes <= 0 {
		vnodes = defaultVnodes
	}
	return &hashRing{vnodes: vnodes}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	// FNV-1a alone clusters short sequential keys ("user-1", "user-2")
	// into adjacent ring positions; a 64-bit avalanche finalizer
	// (murmur3 fmix64) restores uniform arc spread.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rebuild replaces the ring's membership.
func (r *hashRing) rebuild(ids []int) {
	r.points = r.points[:0]
	for _, id := range ids {
		for v := 0; v < r.vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("replica-%d/vnode-%d", id, v)),
				id:   id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].id < r.points[j].id
	})
}

// pick returns the replica owning the key's arc, or false on an empty
// ring.
func (r *hashRing) pick(key string) (int, bool) {
	if len(r.points) == 0 {
		return 0, false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the first point owns the arc past the last hash
	}
	return r.points[i].id, true
}
