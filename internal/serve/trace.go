package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"gpucnn/internal/par"
)

// TraceShape selects the arrival-rate curve of a generated trace.
type TraceShape int

const (
	// ShapeSteady holds BaseRPS for the whole duration.
	ShapeSteady TraceShape = iota
	// ShapeRamp climbs linearly BaseRPS→PeakRPS — the diurnal morning,
	// compressed.
	ShapeRamp
	// ShapeDiurnal is a raised-cosine day: BaseRPS at the edges,
	// PeakRPS mid-run.
	ShapeDiurnal
	// ShapeBurst holds BaseRPS with a PeakRPS plateau across the middle
	// fifth of the run.
	ShapeBurst
)

func (s TraceShape) String() string {
	switch s {
	case ShapeSteady:
		return "steady"
	case ShapeRamp:
		return "ramp"
	case ShapeDiurnal:
		return "diurnal"
	case ShapeBurst:
		return "burst"
	}
	return fmt.Sprintf("TraceShape(%d)", int(s))
}

// TraceShapeByName parses a -trace flag value.
func TraceShapeByName(s string) (TraceShape, error) {
	for sh := ShapeSteady; sh <= ShapeBurst; sh++ {
		if sh.String() == s {
			return sh, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown trace shape %q (want steady, ramp, diurnal or burst)", s)
}

// TraceOptions configures BuildTrace. Zero values take the documented
// defaults.
type TraceOptions struct {
	// Shape is the rate curve. Default ShapeSteady.
	Shape TraceShape
	// BaseRPS and PeakRPS bound the arrival rate. Defaults 200 and
	// 5×BaseRPS.
	BaseRPS, PeakRPS float64
	// Duration is the trace length. Default 2s.
	Duration time.Duration
	// Seed makes the trace reproducible. Default 1.
	Seed int64
	// HeavyTailP is the probability an inter-arrival gap is drawn from
	// a Pareto tail instead of the exponential body — the bursty,
	// heavy-tailed mix real front doors see. Default 0 (pure Poisson).
	HeavyTailP float64
	// TailAlpha is the Pareto shape (smaller = heavier). Default 1.5.
	TailAlpha float64
	// Keys is the distinct routing-key population. Default 64.
	Keys int
	// InteractiveFrac and StandardFrac split the priority mix; the
	// remainder is batch. Defaults 0.5 and 0.3 (both-zero selects the
	// defaults).
	InteractiveFrac, StandardFrac float64
}

func (o TraceOptions) withDefaults() TraceOptions {
	if o.BaseRPS <= 0 {
		o.BaseRPS = 200
	}
	if o.PeakRPS <= 0 {
		o.PeakRPS = 5 * o.BaseRPS
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TailAlpha <= 1 {
		o.TailAlpha = 1.5
	}
	if o.Keys <= 0 {
		o.Keys = 64
	}
	if o.InteractiveFrac <= 0 && o.StandardFrac <= 0 {
		o.InteractiveFrac, o.StandardFrac = 0.5, 0.3
	}
	return o
}

// rate evaluates the shape's arrival rate at offset t.
func (o TraceOptions) rate(t time.Duration) float64 {
	x := t.Seconds() / o.Duration.Seconds()
	switch o.Shape {
	case ShapeRamp:
		return o.BaseRPS + (o.PeakRPS-o.BaseRPS)*x
	case ShapeDiurnal:
		return o.BaseRPS + (o.PeakRPS-o.BaseRPS)*0.5*(1-math.Cos(2*math.Pi*x))
	case ShapeBurst:
		if x >= 0.4 && x < 0.6 {
			return o.PeakRPS
		}
		return o.BaseRPS
	}
	return o.BaseRPS
}

// Arrival is one scheduled request of a trace.
type Arrival struct {
	At  time.Duration // offset from trace start
	Key string
	Pri Priority
}

// maxTraceArrivals bounds a generated trace (runaway-rate backstop).
const maxTraceArrivals = 1 << 20

// BuildTrace generates the open-loop arrival schedule: a
// non-homogeneous Poisson process following the shape's rate curve,
// optionally mixed with Pareto-tailed gaps, each arrival carrying a
// routing key and a priority class. The schedule is a pure function of
// the options — same seed, same trace — which is what makes fleet
// experiments replayable.
func BuildTrace(opts TraceOptions) []Arrival {
	opts = opts.withDefaults()
	rng := rand.New(rand.NewSource(opts.Seed))
	var out []Arrival
	t := time.Duration(0)
	for t < opts.Duration && len(out) < maxTraceArrivals {
		r := opts.rate(t)
		if r < 1e-3 {
			r = 1e-3
		}
		mean := 1 / r // seconds between arrivals at this rate
		u := rng.Float64()
		var gap float64
		if opts.HeavyTailP > 0 && rng.Float64() < opts.HeavyTailP {
			// Pareto with the same mean as the exponential body:
			// xm = mean·(α−1)/α, gap = xm·(1−u)^(−1/α).
			xm := mean * (opts.TailAlpha - 1) / opts.TailAlpha
			gap = xm * math.Pow(1-u, -1/opts.TailAlpha)
		} else {
			gap = -math.Log(1-u) * mean
		}
		if lim := opts.Duration.Seconds() / 4; gap > lim {
			gap = lim // one tail sample may not swallow the trace
		}
		t += time.Duration(gap * float64(time.Second))
		if t >= opts.Duration {
			break
		}
		pri := PriorityBatch
		switch p := rng.Float64(); {
		case p < opts.InteractiveFrac:
			pri = PriorityInteractive
		case p < opts.InteractiveFrac+opts.StandardFrac:
			pri = PriorityStandard
		}
		out = append(out, Arrival{
			At:  t,
			Key: fmt.Sprintf("user-%03d", rng.Intn(opts.Keys)),
			Pri: pri,
		})
	}
	return out
}

// TraceReport summarises one open-loop trace replay against a fleet.
type TraceReport struct {
	Offered   int // arrivals issued
	Completed int
	Shed      int // ErrOverloaded (server) plus client-side drops
	Failed    int
	Wall      time.Duration

	OfferedRPS    float64
	ThroughputRPS float64

	P50, P95, P99, Max time.Duration

	// ShedByClass counts server-side sheds per priority class,
	// indexed by Priority — the shedding-order evidence.
	ShedByClass [3]int

	// ReplicaMin and ReplicaMax bracket the fleet size observed during
	// the replay — the autoscaler's visible response to the trace.
	ReplicaMin, ReplicaMax int
}

// maxTraceInflight bounds the open loop's outstanding requests; an
// arrival finding the window full is dropped client-side (counted as
// shed) rather than blocking the arrival process — open-loop traffic
// never waits for the server.
const maxTraceInflight = 8192

// RunTrace replays the trace against the fleet at wall-clock pace:
// each arrival fires at its scheduled offset whether or not earlier
// requests have completed — the open-loop model whose offered load is
// set by the trace, not by the server's speed. Returns when every
// issued request has resolved.
func RunTrace(ctx context.Context, f *Fleet, opts TraceOptions) TraceReport {
	opts = opts.withDefaults()
	arrivals := BuildTrace(opts)

	var (
		mu    sync.Mutex
		e2es  []time.Duration
		rep   TraceReport
		wg    sync.WaitGroup
		infl  = make(chan struct{}, maxTraceInflight)
		start = time.Now()
	)
	rep.ReplicaMin, rep.ReplicaMax = f.Size(), f.Size()

	sampleSize := func() {
		n := f.Size()
		if n < rep.ReplicaMin {
			rep.ReplicaMin = n
		}
		if n > rep.ReplicaMax {
			rep.ReplicaMax = n
		}
	}

	for i, a := range arrivals {
		if ctx.Err() != nil {
			break
		}
		if d := a.At - time.Since(start); d > 0 {
			select {
			case <-time.After(d):
			case <-ctx.Done():
			}
		}
		if ctx.Err() != nil {
			break
		}
		rep.Offered++
		if i%32 == 0 {
			mu.Lock()
			sampleSize()
			mu.Unlock()
		}
		select {
		case infl <- struct{}{}:
		default:
			mu.Lock()
			rep.Shed++ // client-side drop: the open loop never blocks
			mu.Unlock()
			continue
		}
		wg.Add(1)
		a := a
		par.Go(fmt.Sprintf("serve.trace-%d", i), func() {
			defer wg.Done()
			defer func() { <-infl }()
			res, err := f.Submit(ctx, a.Key, a.Pri)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				rep.Completed++
				e2es = append(e2es, res.E2E)
			case ctx.Err() != nil:
			case errors.Is(err, ErrOverloaded):
				rep.Shed++
				rep.ShedByClass[a.Pri.index()]++
			default:
				rep.Failed++
			}
		})
	}
	wg.Wait()
	mu.Lock()
	sampleSize()
	mu.Unlock()
	rep.Wall = time.Since(start)
	if rep.Wall > 0 {
		rep.OfferedRPS = float64(rep.Offered) / rep.Wall.Seconds()
		rep.ThroughputRPS = float64(rep.Completed) / rep.Wall.Seconds()
	}
	rep.P50 = percentile(e2es, 0.50)
	rep.P95 = percentile(e2es, 0.95)
	rep.P99 = percentile(e2es, 0.99)
	rep.Max = percentile(e2es, 1)
	return rep
}
