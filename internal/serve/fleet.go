// Fleet scales the single-server batcher to a simulated multi-node
// serving fleet: a pool of replicas, each a full Server (bounded
// admission, dynamic batcher, least-loaded device dispatch) over a
// private multigpu.Cluster shard, behind a front door that routes by
// consistent hash or least load. Priority classes shed low-value
// traffic first under pressure, and an autoscaler grows and shrinks
// the pool off the obs plane's SLO burn-rate monitor — the PR 6
// substrate consumed as a control signal.

package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/obs"
)

// FleetOptions configures a Fleet. Zero values take the documented
// defaults.
type FleetOptions struct {
	// Replicas is the initial replica count. Default: Autoscale.Min
	// (itself defaulted to 1).
	Replicas int
	// ShardDevices is the device count of each replica's private
	// cluster shard. Default 2.
	ShardDevices int
	// Spec is the simulated device model. Default gpusim.TeslaK40c().
	Spec gpusim.DeviceSpec
	// Server configures every replica's server. The fleet overrides
	// SLO.Disable: burn-rate monitoring runs once at fleet level over
	// the shared Obs plane (all replicas write the same windowed
	// instruments, so the plane's serve.* series are fleet aggregates).
	Server Options
	// Route picks the front-door policy. Default RouteLeastLoaded.
	Route RoutePolicy
	// HashVnodes is the consistent-hash virtual-node count per replica.
	// Default 64.
	HashVnodes int
	// SLO tunes the fleet-level objectives (fleet-e2e-p99,
	// fleet-shed-rate) registered when Server.Obs is set.
	SLO SLOConfig
	// Autoscale bounds and paces the autoscaler.
	Autoscale AutoscaleConfig
}

func (o FleetOptions) withDefaults() FleetOptions {
	o.Autoscale = o.Autoscale.withDefaults()
	if o.Replicas <= 0 {
		o.Replicas = o.Autoscale.Min
	}
	if o.Replicas < o.Autoscale.Min {
		o.Replicas = o.Autoscale.Min
	}
	if o.Replicas > o.Autoscale.Max {
		o.Replicas = o.Autoscale.Max
	}
	if o.ShardDevices <= 0 {
		o.ShardDevices = 2
	}
	if o.Spec.Name == "" {
		o.Spec = gpusim.TeslaK40c()
	}
	if o.HashVnodes <= 0 {
		o.HashVnodes = defaultVnodes
	}
	return o
}

// replica is one fleet member: a server over its private shard.
type replica struct {
	id      int
	srv     *Server
	cluster *multigpu.Cluster
}

// Fleet is a pool of serving replicas behind one routed front door.
type Fleet struct {
	opts    FleetOptions
	plane   *obs.Plane
	monitor *obs.Monitor
	scaler  *Autoscaler

	mu       sync.RWMutex
	replicas map[int]*replica
	order    []int // live replica ids, ascending
	ring     *hashRing
	nextID   int
	closed   bool
}

// FleetStats aggregates the replica counters.
type FleetStats struct {
	Replicas   int
	Total      Stats
	PerReplica map[int]Stats
}

// NewFleet builds and starts the initial replica pool, registers the
// fleet-level SLO monitor on the plane (when Server.Obs is set), and
// launches the autoscaler loop (when its interval applies — see
// AutoscaleConfig).
func NewFleet(opts FleetOptions) (*Fleet, error) {
	opts = opts.withDefaults()
	f := &Fleet{
		opts:     opts,
		plane:    opts.Server.Obs,
		replicas: map[int]*replica{},
		ring:     newHashRing(opts.HashVnodes),
	}
	if f.plane != nil && !opts.SLO.Disable {
		slo := opts.SLO.withDefaults()
		f.monitor = obs.NewMonitor(obs.MonitorConfig{
			Clock: f.plane.Clock(), Fast: slo.Fast, Slow: slo.Slow, Interval: slo.Interval,
		},
			obs.LatencyObjective{
				ObjName: "fleet-e2e-p99",
				H:       f.plane.Histogram("serve.e2e_seconds", serveLatencyBuckets(slo.E2EThreshold)),
				Threshold: slo.E2EThreshold, Target: slo.E2ETarget,
			},
			obs.RateObjective{
				ObjName: "fleet-shed-rate",
				Bad:     f.plane.Counter("serve.shed"), Total: f.plane.Counter("serve.offered"),
				MaxRate: slo.ShedMax,
			},
		)
		f.plane.Watch(f.monitor)
	}
	f.mu.Lock()
	for i := 0; i < opts.Replicas; i++ {
		if _, err := f.addReplicaLocked(); err != nil {
			f.mu.Unlock()
			f.Close()
			return nil, err
		}
	}
	f.mu.Unlock()
	f.plane.Section("fleet", f.dashSection)
	f.scaler = newAutoscaler(f, opts.Autoscale)
	return f, nil
}

// replicaOptions derives one replica's server options: the shared
// plane feeds fleet-aggregate instruments, but the per-replica SLO
// monitor is disabled — the fleet runs exactly one.
func (f *Fleet) replicaOptions() Options {
	o := f.opts.Server
	o.SLO.Disable = true
	return o
}

// addReplicaLocked builds, starts and enrolls one replica. Caller
// holds f.mu.
func (f *Fleet) addReplicaLocked() (*replica, error) {
	id := f.nextID
	f.nextID++
	cl := multigpu.New(f.opts.ShardDevices, f.opts.Spec)
	srv, err := New(cl, f.replicaOptions())
	if err != nil {
		return nil, fmt.Errorf("serve: fleet replica %d: %w", id, err)
	}
	srv.Start()
	r := &replica{id: id, srv: srv, cluster: cl}
	f.replicas[id] = r
	f.order = append(f.order, id)
	sort.Ints(f.order)
	f.ring.rebuild(f.order)
	return r, nil
}

// scaleOut adds one replica and returns the new size (or the current
// size and an error after close / at the bound).
func (f *Fleet) scaleOut() (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return len(f.order), ErrClosed
	}
	if len(f.order) >= f.opts.Autoscale.Max {
		return len(f.order), fmt.Errorf("serve: fleet at max replicas %d", f.opts.Autoscale.Max)
	}
	if _, err := f.addReplicaLocked(); err != nil {
		return len(f.order), err
	}
	return len(f.order), nil
}

// scaleIn drains and removes the replica with the given id, returning
// the new size. The replica leaves the routing membership first, then
// closes outside the fleet lock so its queued requests finish serving
// while new traffic already lands elsewhere.
func (f *Fleet) scaleIn(id int) int {
	f.mu.Lock()
	r, ok := f.replicas[id]
	if !ok || f.closed || len(f.order) <= f.opts.Autoscale.Min {
		n := len(f.order)
		f.mu.Unlock()
		return n
	}
	delete(f.replicas, id)
	for i, v := range f.order {
		if v == id {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
	f.ring.rebuild(f.order)
	n := len(f.order)
	f.mu.Unlock()
	r.srv.Close()
	return n
}

// route picks a replica for the key under the configured policy.
// Caller holds f.mu (read).
func (f *Fleet) route(key string) *replica {
	if len(f.order) == 0 {
		return nil
	}
	if f.opts.Route == RouteHash {
		if id, ok := f.ring.pick(key); ok {
			return f.replicas[id]
		}
		return nil
	}
	var best *replica
	var bestLoad int64
	for _, id := range f.order {
		r := f.replicas[id]
		if l := r.srv.Load(); best == nil || l < bestLoad {
			best, bestLoad = r, l
		}
	}
	return best
}

// Submit routes one single-image request to a replica and blocks until
// it is served, shed, or ctx is cancelled. A replica closed by a
// concurrent scale-in is retried once against the new membership.
func (f *Fleet) Submit(ctx context.Context, key string, pr Priority) (Result, error) {
	for attempt := 0; ; attempt++ {
		f.mu.RLock()
		if f.closed {
			f.mu.RUnlock()
			return Result{}, ErrClosed
		}
		r := f.route(key)
		f.mu.RUnlock()
		if r == nil {
			return Result{}, ErrOverloaded
		}
		res, err := r.srv.SubmitPriority(ctx, pr)
		if errors.Is(err, ErrClosed) && attempt == 0 {
			continue // raced a scale-in; the membership has moved on
		}
		return res, err
	}
}

// Size returns the live replica count.
func (f *Fleet) Size() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.order)
}

// ReplicaIDs returns the live replica ids, ascending.
func (f *Fleet) ReplicaIDs() []int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return append([]int(nil), f.order...)
}

// Monitor returns the fleet-level SLO monitor (nil without a plane or
// with SLO.Disable).
func (f *Fleet) Monitor() *obs.Monitor { return f.monitor }

// Autoscaler returns the fleet's autoscaler.
func (f *Fleet) Autoscaler() *Autoscaler { return f.scaler }

// Options returns the resolved (defaulted) fleet options.
func (f *Fleet) Options() FleetOptions { return f.opts }

// Stats aggregates every live replica's counters. Replicas already
// scaled in are not represented — the fleet-wide monotonic view lives
// in the shared registry and plane counters.
func (f *Fleet) Stats() FleetStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	st := FleetStats{Replicas: len(f.order), PerReplica: map[int]Stats{}}
	for _, id := range f.order {
		s := f.replicas[id].srv.Stats()
		st.PerReplica[id] = s
		st.Total.Submitted += s.Submitted
		st.Total.Rejected += s.Rejected
		st.Total.Completed += s.Completed
		st.Total.Failed += s.Failed
	}
	return st
}

// dashSection feeds the plane's "fleet" dashboard section.
func (f *Fleet) dashSection() map[string]any {
	f.mu.RLock()
	defer f.mu.RUnlock()
	sec := map[string]any{
		"replicas":      len(f.order),
		"route":         f.opts.Route.String(),
		"shard_devices": f.opts.ShardDevices,
		"min":           f.opts.Autoscale.Min,
		"max":           f.opts.Autoscale.Max,
	}
	for _, id := range f.order {
		r := f.replicas[id]
		sec[fmt.Sprintf("replica%d_load", id)] = r.srv.Load()
		sec[fmt.Sprintf("replica%d_queue", id)] = r.srv.QueueDepth()
	}
	return sec
}

// Close stops the autoscaler, drains and closes every replica, and
// retires the fleet monitor from the plane. Safe to call twice.
func (f *Fleet) Close() {
	f.scaler.stop()
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	victims := make([]*replica, 0, len(f.order))
	for _, id := range f.order {
		victims = append(victims, f.replicas[id])
	}
	f.replicas = map[int]*replica{}
	f.order = nil
	f.mu.Unlock()
	for _, r := range victims {
		r.srv.Close()
	}
	f.monitor.Stop()
	f.plane.Unwatch(f.monitor)
}
