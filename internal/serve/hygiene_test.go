package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/tensor"
)

// brokenPlan fails (or panics) on every inference pass.
type brokenPlan struct {
	cfg   conv.Config
	panic bool
}

func (p brokenPlan) Config() conv.Config { return p.cfg }
func (brokenPlan) Forward(x, w, y *tensor.Tensor) error {
	return errors.New("unused")
}
func (brokenPlan) BackwardData(dy, w, dx *tensor.Tensor) error   { return errors.New("unused") }
func (brokenPlan) BackwardFilter(x, dy, dw *tensor.Tensor) error { return errors.New("unused") }
func (brokenPlan) Iteration() error                       { return errors.New("unused") }
func (p brokenPlan) Inference() error {
	if p.panic {
		panic("engine exploded mid-batch")
	}
	return errors.New("device fault")
}
func (brokenPlan) Release() {}

// brokenEngine serves any shape but every batch it runs fails.
type brokenEngine struct{ panics bool }

func (brokenEngine) Name() string                  { return "broken" }
func (brokenEngine) Strategy() conv.Strategy       { return conv.Direct }
func (brokenEngine) Supports(cfg conv.Config) error { return nil }
func (e brokenEngine) Plan(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return brokenPlan{cfg: cfg, panic: e.panics}, nil
}
func (e brokenEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return e.Plan(dev, cfg)
}

// TestSpanHygieneOnEngineFailure is the regression test for the PR 4
// bug class the spanend analyzer and the EndIfOpen guard exist for: a
// server whose engine fails every batch must still end every span it
// opened — a failed batch may not leak an open span into the trace.
func TestSpanHygieneOnEngineFailure(t *testing.T) {
	tr := telemetry.NewTracer()
	s := newTestServer(t, 2, Options{
		Engine:   brokenEngine{},
		MaxBatch: 4, MaxWait: time.Millisecond,
		Tracer: tr,
	})
	s.Start()
	for i := 0; i < 16; i++ {
		if _, err := s.Submit(context.Background()); err == nil {
			t.Fatal("broken engine served a request without error")
		}
	}
	s.Close()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("want one root span, got %d", len(roots))
	}
	spans := 0
	roots[0].Walk(func(_ int, sp *telemetry.Span) {
		spans++
		if !sp.Ended() {
			t.Errorf("failed batch leaked un-ended span %q", sp.Name())
		}
	})
	if spans < 2 {
		t.Fatalf("expected batch spans under the root, walked only %d spans", spans)
	}
}

// TestSpanHygieneOnEnginePanic drives runBatch directly with a plan
// that panics mid-inference and asserts the deferred EndIfOpen guard
// closes the batch span during unwinding.
func TestSpanHygieneOnEnginePanic(t *testing.T) {
	tr := telemetry.NewTracer()
	s := newTestServer(t, 1, Options{
		Engine:   brokenEngine{panics: true},
		MaxBatch: 1, MaxWait: time.Millisecond,
		Tracer: tr,
	})

	req := &request{enq: time.Now(), done: make(chan reqDone, 1)}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panicking engine did not propagate out of runBatch")
			}
		}()
		s.runBatch(0, &batch{reqs: []*request{req}, device: 0, formedAt: time.Now()})
	}()

	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("want one root span, got %d", len(roots))
	}
	batches := roots[0].Children()
	if len(batches) != 1 {
		t.Fatalf("want one batch span, got %d", len(batches))
	}
	if !batches[0].Ended() {
		t.Error("panic path leaked an open batch span: deferred EndIfOpen guard broken")
	}
}
