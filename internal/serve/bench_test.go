package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/multigpu"
	"gpucnn/internal/telemetry"
)

// BenchmarkServe measures end-to-end serving cost per request across
// batching policies on a 2-device cluster, with the wall-occupancy
// sleep disabled so the numbers isolate the serving machinery (queue,
// batcher, dispatch, plan cache) rather than the modelled GPU speed.
// The custom sim_us_per_img metric carries the simulated per-image GPU
// cost — the batch-amortisation figure.
func BenchmarkServe(b *testing.B) {
	policies := []struct {
		name     string
		maxBatch int
		maxWait  time.Duration
	}{
		{"batch1", 1, time.Millisecond},
		{"dyn8", 8, 500 * time.Microsecond},
		{"dyn32", 32, 500 * time.Microsecond},
	}
	for _, p := range policies {
		b.Run(p.name, func(b *testing.B) {
			s, err := New(multigpu.New(2, gpusim.TeslaK40c()), Options{
				Model:     testModel(),
				MaxBatch:  p.maxBatch,
				MaxWait:   p.maxWait,
				QueueCap:  4096,
				TimeScale: -1, // no wall occupancy: measure the machinery
				Registry:  telemetry.NewRegistry(),
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			s.Start()
			var mu sync.Mutex
			var simShare time.Duration
			// Closed-loop concurrency must exceed the batch size for
			// batches to form; RunParallel alone gives GOMAXPROCS
			// clients, which may be 1.
			b.SetParallelism(64)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					res, err := s.Submit(context.Background())
					if err != nil {
						b.Error(err)
						return
					}
					mu.Lock()
					simShare += res.SimPerImage()
					mu.Unlock()
				}
			})
			b.StopTimer()
			if b.N > 0 {
				b.ReportMetric(float64(simShare.Microseconds())/float64(b.N), "sim_us_per_img")
			}
		})
	}
}

// BenchmarkSubmitReject measures the admission-control fast path: a
// full queue must shed load cheaply, not block the caller.
func BenchmarkSubmitReject(b *testing.B) {
	s, err := New(multigpu.New(1, gpusim.TeslaK40c()), Options{
		Model:    testModel(),
		QueueCap: 1,
		Registry: telemetry.NewRegistry(),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	// Never started: one async submit occupies the single queue slot
	// forever, so every further submit takes the rejection path.
	go s.Submit(context.Background())
	for len(s.queue) < 1 {
		time.Sleep(time.Millisecond)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Submit(context.Background()); !errors.Is(err, ErrOverloaded) {
			b.Fatalf("want ErrOverloaded, got %v", err)
		}
	}
}
