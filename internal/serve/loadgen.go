package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gpucnn/internal/par"
	"gpucnn/internal/telemetry"
)

// LoadOptions configures the closed-loop load generator: Clients
// concurrent callers each submit, wait for completion, and immediately
// submit again — the classical closed-loop model whose offered load is
// set by the concurrency level rather than an arrival rate.
type LoadOptions struct {
	// Clients is the closed-loop concurrency. Default 8.
	Clients int
	// Requests stops the run after that many completions (0: run for
	// Duration instead).
	Requests int
	// Duration is the wall window when Requests is 0. Default 1s.
	Duration time.Duration
	// RetryWait is the client backoff after ErrOverloaded. Default 200µs.
	RetryWait time.Duration
}

func (o LoadOptions) withDefaults() LoadOptions {
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Requests <= 0 && o.Duration <= 0 {
		o.Duration = time.Second
	}
	if o.RetryWait <= 0 {
		o.RetryWait = 200 * time.Microsecond
	}
	return o
}

// Report summarises one load-generator run.
type Report struct {
	Clients   int
	Completed int
	Rejected  int
	Failed    int
	Wall      time.Duration

	// ThroughputRPS is completed requests per wall second.
	ThroughputRPS float64
	// SimImagesPerSec is images per simulated GPU-busy second — the
	// batch-amortisation number (Figure 3a as a serving result).
	SimImagesPerSec float64
	// MeanBatch is the mean formed batch size over completed requests.
	MeanBatch float64

	// End-to-end wall latency percentiles (admission → completion).
	P50, P95, P99, Max time.Duration
	// Queue-wait percentiles (admission → execution start).
	QueueP50, QueueP99 time.Duration
}

// RunLoad drives the server with a closed loop until the request quota
// or the wall window is exhausted, then publishes the headline numbers
// (throughput, simulated images/s, p99) as gauges in the server's
// registry and returns the full report.
func RunLoad(ctx context.Context, s *Server, opts LoadOptions) Report {
	opts = opts.withDefaults()
	s.Start()
	if opts.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	var (
		mu        sync.Mutex
		e2es      []time.Duration
		queues    []time.Duration
		simShare  time.Duration // Σ per-request share of batch sim time
		batchSum  int64
		rejected  atomic.Int64
		failed    atomic.Int64
		remaining atomic.Int64
	)
	remaining.Store(int64(opts.Requests)) // 0 or negative: unbounded

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		par.Go(fmt.Sprintf("serve.loadgen-%d", c), func() {
			defer wg.Done()
			for ctx.Err() == nil {
				if opts.Requests > 0 && remaining.Add(-1) < 0 {
					return
				}
				res, err := s.Submit(ctx)
				switch {
				case err == nil:
					mu.Lock()
					e2es = append(e2es, res.E2E)
					queues = append(queues, res.QueueWait)
					simShare += res.SimPerImage()
					batchSum += int64(res.BatchSize)
					mu.Unlock()
				case errors.Is(err, ErrOverloaded):
					rejected.Add(1)
					if opts.Requests > 0 {
						remaining.Add(1) // the quota counts completions
					}
					select {
					case <-time.After(opts.RetryWait):
					case <-ctx.Done():
					}
				case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
					return
				default:
					failed.Add(1)
					if opts.Requests > 0 {
						remaining.Add(1) // the quota counts completions
					}
				}
			}
		})
	}
	wg.Wait()
	wall := time.Since(start)

	rep := Report{
		Clients:   opts.Clients,
		Completed: len(e2es),
		Rejected:  int(rejected.Load()),
		Failed:    int(failed.Load()),
		Wall:      wall,
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(rep.Completed) / wall.Seconds()
	}
	if simShare > 0 {
		rep.SimImagesPerSec = float64(rep.Completed) / simShare.Seconds()
	}
	if rep.Completed > 0 {
		rep.MeanBatch = float64(batchSum) / float64(rep.Completed)
	}
	rep.P50 = percentile(e2es, 0.50)
	rep.P95 = percentile(e2es, 0.95)
	rep.P99 = percentile(e2es, 0.99)
	rep.Max = percentile(e2es, 1)
	rep.QueueP50 = percentile(queues, 0.50)
	rep.QueueP99 = percentile(queues, 0.99)

	labels := telemetry.Labels{"engine": s.opts.Engine.Name()}
	reg := s.opts.Registry
	reg.Gauge("serve_load_throughput_rps", labels).Set(rep.ThroughputRPS)
	reg.Gauge("serve_load_sim_images_per_second", labels).Set(rep.SimImagesPerSec)
	reg.Gauge("serve_load_p99_seconds", labels).Set(rep.P99.Seconds())
	return rep
}

// percentile returns the q-quantile (0 < q ≤ 1) by nearest-rank over a
// copy of the sample: the ⌈n·q⌉-th smallest value.
func percentile(xs []time.Duration, q float64) time.Duration {
	if len(xs) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), xs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(math.Ceil(float64(len(s))*q)) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
