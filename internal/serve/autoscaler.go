package serve

import (
	"fmt"
	"sync"
	"time"

	"gpucnn/internal/obs"
	"gpucnn/internal/par"
)

// AutoscaleConfig tunes the fleet autoscaler. Zero values take the
// documented defaults.
type AutoscaleConfig struct {
	// Min and Max bound the replica count. Defaults 1 and 8.
	Min, Max int
	// Interval paces the tick loop. 0 means 1 s under the wall clock
	// and manual Tick under a fake one (mirroring obs.MonitorConfig);
	// negative forces manual Tick.
	Interval time.Duration
	// ScaleOutAfter is the consecutive non-OK ticks required before a
	// scale-out — the burn must be sustained, not a blip. Default 2.
	ScaleOutAfter int
	// ScaleInAfter is the consecutive cold ticks required before a
	// scale-in. Default 5.
	ScaleInAfter int
	// Cooldown is the ticks after any scale event during which the
	// autoscaler holds still, letting the new membership's effect reach
	// the burn windows before judging again (hysteresis). Default 3.
	Cooldown int
	// ColdPerReplica is the admitted-requests-per-tick-per-replica rate
	// at or below which a tick counts cold. Default 1.
	ColdPerReplica float64
	// Disable skips the tick loop even under the wall clock (manual
	// Tick still works).
	Disable bool
}

func (c AutoscaleConfig) withDefaults() AutoscaleConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 8
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.ScaleOutAfter <= 0 {
		c.ScaleOutAfter = 2
	}
	if c.ScaleInAfter <= 0 {
		c.ScaleInAfter = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 3
	}
	if c.ColdPerReplica <= 0 {
		c.ColdPerReplica = 1
	}
	return c
}

// ScaleEvent records one autoscaler decision.
type ScaleEvent struct {
	At       time.Time
	From, To int
	Reason   string
}

func (e ScaleEvent) String() string {
	dir := "+"
	if e.To < e.From {
		dir = "-"
	}
	return fmt.Sprintf("[%s] %d→%d (%s)", dir, e.From, e.To, e.Reason)
}

// Autoscaler drives the fleet's replica count off the fleet monitor's
// burn-rate states: sustained WARN/PAGE scales out, a sustained cold
// fleet scales in its least-trafficked replica, and cooldown plus
// consecutive-tick thresholds provide the hysteresis that keeps the
// pool from flapping. Under a fake plane clock it never self-ticks —
// tests call Tick after each clock advance, exactly like Monitor.Eval.
type Autoscaler struct {
	f   *Fleet
	cfg AutoscaleConfig

	mu            sync.Mutex
	hot, cold     int
	cooldown      int
	lastSubmitted map[int]int64
	events        []ScaleEvent
	stopped       bool

	stopCh chan struct{}
	done   chan struct{}
}

// maxScaleEvents bounds the kept event log.
const maxScaleEvents = 256

func newAutoscaler(f *Fleet, cfg AutoscaleConfig) *Autoscaler {
	a := &Autoscaler{
		f:             f,
		cfg:           cfg,
		lastSubmitted: map[int]int64{},
		stopCh:        make(chan struct{}),
		done:          make(chan struct{}),
	}
	interval := cfg.Interval
	if interval == 0 && obs.IsWall(f.plane.Clock()) {
		interval = time.Second
	}
	if interval > 0 && !cfg.Disable {
		par.Go("serve.autoscaler", func() { a.loop(interval) })
	} else {
		close(a.done)
	}
	f.plane.Section("autoscaler", a.dashSection)
	return a
}

func (a *Autoscaler) loop(interval time.Duration) {
	defer close(a.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-a.stopCh:
			return
		case <-t.C:
			a.Tick()
		}
	}
}

// Tick evaluates the fleet monitor and applies at most one scale
// decision, returning the event it caused (usually nil). The ticker
// calls it under the wall clock; fake-clock tests call it directly
// after each Advance.
func (a *Autoscaler) Tick() *ScaleEvent {
	m := a.f.Monitor()
	if m != nil {
		m.Eval() // refresh burn states against the (possibly fake) clock
	}
	worst := m.Worst()
	size := a.f.Size()

	// Per-replica admitted deltas since the last tick: the scale-in
	// coldness signal and the victim selector.
	stats := a.f.Stats()
	deltas := map[int]int64{}
	var total int64
	for id, st := range stats.PerReplica {
		d := st.Submitted - a.lastSubmitted[id]
		deltas[id] = d
		total += d
	}

	// Decide under the lock, but never hold it across the scale
	// operations: scaleIn drains the victim replica (WaitGroup.Wait
	// behind Server.Close), and holding a.mu through that drain would
	// stall Events, the dashboard section and stop() for its whole
	// duration — the lockheld analyzer's canonical finding.
	a.mu.Lock()
	a.lastSubmitted = map[int]int64{}
	for id, st := range stats.PerReplica {
		a.lastSubmitted[id] = st.Submitted
	}

	if worst >= obs.WARN {
		a.hot++
		a.cold = 0
	} else {
		a.hot = 0
		perReplica := float64(total)
		if size > 0 {
			perReplica /= float64(size)
		}
		if worst == obs.OK && perReplica <= a.cfg.ColdPerReplica {
			a.cold++
		} else {
			a.cold = 0
		}
	}

	if a.cooldown > 0 {
		a.cooldown--
		a.mu.Unlock()
		return nil
	}

	var doOut, doIn bool
	var victim int
	switch {
	case a.hot >= a.cfg.ScaleOutAfter && size < a.cfg.Max:
		doOut = true
	case a.cold >= a.cfg.ScaleInAfter && size > a.cfg.Min:
		victim, doIn = coldestReplica(deltas)
	}
	a.mu.Unlock()

	switch {
	case doOut:
		to, err := a.f.scaleOut()
		if err != nil {
			return nil
		}
		a.mu.Lock()
		defer a.mu.Unlock()
		a.hot = 0
		a.cooldown = a.cfg.Cooldown
		return a.record(size, to, fmt.Sprintf("slo burn %s", worst))
	case doIn:
		to := a.f.scaleIn(victim)
		if to == size {
			return nil
		}
		a.mu.Lock()
		defer a.mu.Unlock()
		a.cold = 0
		a.cooldown = a.cfg.Cooldown
		return a.record(size, to, fmt.Sprintf("idle replica %d", victim))
	}
	return nil
}

// coldestReplica picks the replica with the smallest traffic delta,
// breaking ties toward the highest id so the founding replicas
// survive longest (stable hash arcs for the steady keys).
func coldestReplica(deltas map[int]int64) (int, bool) {
	victim, ok := 0, false
	var min int64
	for id, d := range deltas {
		if !ok || d < min || (d == min && id > victim) {
			victim, min, ok = id, d, true
		}
	}
	return victim, ok
}

// record appends the event under a.mu (held by Tick).
func (a *Autoscaler) record(from, to int, reason string) *ScaleEvent {
	e := ScaleEvent{At: a.f.plane.Clock().Now(), From: from, To: to, Reason: reason}
	a.events = append(a.events, e)
	if len(a.events) > maxScaleEvents {
		a.events = a.events[len(a.events)-maxScaleEvents:]
	}
	return &e
}

// Events returns the recorded scale decisions, oldest first.
func (a *Autoscaler) Events() []ScaleEvent {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]ScaleEvent(nil), a.events...)
}

// dashSection feeds the plane's "autoscaler" dashboard section.
func (a *Autoscaler) dashSection() map[string]any {
	a.mu.Lock()
	defer a.mu.Unlock()
	sec := map[string]any{
		"hot_ticks":  a.hot,
		"cold_ticks": a.cold,
		"cooldown":   a.cooldown,
		"events":     len(a.events),
	}
	if n := len(a.events); n > 0 {
		sec["last_event"] = a.events[n-1].String()
	}
	return sec
}

// stop halts the tick loop. Nil-safe and idempotent; Fleet.Close calls
// it.
func (a *Autoscaler) stop() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.mu.Unlock()
	close(a.stopCh)
	<-a.done
}
