package serve

import (
	"context"
	"testing"
	"time"

	"gpucnn/internal/telemetry"
)

func TestPercentile(t *testing.T) {
	xs := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 3},
		{1, 5},
		{0.99, 5},
		{0.2, 1},
	}
	for _, c := range cases {
		if got := percentile(xs, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty sample p50 = %v", got)
	}
}

// TestRunLoadQuota: the request-count mode completes exactly the quota
// and reports consistent aggregates.
func TestRunLoadQuota(t *testing.T) {
	s := newTestServer(t, 2, Options{MaxBatch: 8, MaxWait: time.Millisecond})
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 16, Requests: 128})
	if rep.Completed != 128 {
		t.Fatalf("completed %d, want 128", rep.Completed)
	}
	if rep.ThroughputRPS <= 0 || rep.SimImagesPerSec <= 0 {
		t.Fatalf("throughput not computed: %+v", rep)
	}
	if rep.P50 > rep.P99 || rep.P99 > rep.Max {
		t.Fatalf("percentiles not ordered: p50=%v p99=%v max=%v", rep.P50, rep.P99, rep.Max)
	}
	if rep.MeanBatch < 1 || rep.MeanBatch > 8 {
		t.Fatalf("mean batch %v outside [1,8]", rep.MeanBatch)
	}
}

// TestRunLoadDuration: the wall-window mode stops near the deadline
// and still drains cleanly.
func TestRunLoadDuration(t *testing.T) {
	s := newTestServer(t, 1, Options{MaxBatch: 8, MaxWait: 500 * time.Microsecond})
	start := time.Now()
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 4, Duration: 100 * time.Millisecond})
	el := time.Since(start)
	if rep.Completed == 0 {
		t.Fatal("no requests completed in the window")
	}
	if el > 5*time.Second {
		t.Fatalf("run overshot its window: %v", el)
	}
}

// TestRunLoadExportsHeadlines: the headline gauges land in the
// server's registry — the acceptance criterion's export path.
func TestRunLoadExportsHeadlines(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, 1, Options{MaxBatch: 8, MaxWait: time.Millisecond, Registry: reg})
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 8, Requests: 64})
	labels := telemetry.Labels{"engine": "cuDNN"}
	if g := reg.Gauge("serve_load_sim_images_per_second", labels).Value(); g != rep.SimImagesPerSec || g <= 0 {
		t.Fatalf("sim img/s gauge %v, report %v", g, rep.SimImagesPerSec)
	}
	if g := reg.Gauge("serve_load_p99_seconds", labels).Value(); g != rep.P99.Seconds() {
		t.Fatalf("p99 gauge %v, report %v", g, rep.P99.Seconds())
	}
	if g := reg.Gauge("serve_load_throughput_rps", labels).Value(); g != rep.ThroughputRPS {
		t.Fatalf("throughput gauge %v, report %v", g, rep.ThroughputRPS)
	}
}
