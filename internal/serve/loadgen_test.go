package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
)

func TestPercentile(t *testing.T) {
	xs := []time.Duration{5, 1, 4, 2, 3} // unsorted on purpose
	cases := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 3},
		{1, 5},
		{0.99, 5},
		{0.2, 1},
	}
	for _, c := range cases {
		if got := percentile(xs, c.q); got != c.want {
			t.Errorf("p%v = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("empty sample p50 = %v", got)
	}
}

// TestPercentileNearestRank pins the ⌈n·q⌉ nearest-rank definition
// against hand-computed quantiles. The regression case is a rank whose
// fractional part is below 0.5 (n=7, q=0.3 → rank ⌈2.1⌉ = 3): the old
// rounded-rank formula picked the 2nd smallest sample instead of the
// 3rd, under-reporting the tail.
func TestPercentileNearestRank(t *testing.T) {
	xs7 := []time.Duration{70, 10, 50, 30, 60, 20, 40} // sorted: 10..70
	xs4 := []time.Duration{40, 10, 30, 20}
	cases := []struct {
		name string
		xs   []time.Duration
		q    float64
		want time.Duration
	}{
		{"n7 q0.30 rank ceil(2.1)=3", xs7, 0.30, 30},
		{"n7 q0.25 rank ceil(1.75)=2", xs7, 0.25, 20},
		{"n7 q0.50 rank ceil(3.5)=4", xs7, 0.50, 40},
		{"n7 q0.99 rank ceil(6.93)=7", xs7, 0.99, 70},
		{"n7 q1.00 rank 7", xs7, 1.00, 70},
		{"n7 q0.01 rank ceil(0.07)=1", xs7, 0.01, 10},
		{"n4 q0.50 rank ceil(2)=2", xs4, 0.50, 20},
		{"n4 q0.51 rank ceil(2.04)=3", xs4, 0.51, 30},
	}
	for _, c := range cases {
		if got := percentile(c.xs, c.q); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

// flakyPlan fails its first shared-countdown Inference calls, then
// delegates to the real plan.
type flakyPlan struct {
	impls.Plan
	failures *atomic.Int64
}

func (p flakyPlan) Inference() error {
	if p.failures.Add(-1) >= 0 {
		return errors.New("transient device fault")
	}
	return p.Plan.Inference()
}

// flakyEngine wraps a real engine so that the first N batches anywhere
// on the cluster fail wholesale.
type flakyEngine struct {
	impls.Engine
	failures *atomic.Int64
}

func (e flakyEngine) Plan(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	p, err := e.Engine.Plan(dev, cfg)
	if err != nil {
		return nil, err
	}
	return flakyPlan{Plan: p, failures: e.failures}, nil
}

func (e flakyEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return e.Plan(dev, cfg)
}

// TestRunLoadQuotaSurvivesEngineFailures is the quota-leak regression
// test: a Requests-bounded run whose engine fails some batches must
// still finish with exactly the requested completions — a failed
// submission may not consume a completion slot. Pre-fix, the default
// error branch never restored the slot and the run finished short.
func TestRunLoadQuotaSurvivesEngineFailures(t *testing.T) {
	var failures atomic.Int64
	failures.Store(3) // first three batches fail wholesale
	s := newTestServer(t, 1, Options{
		Engine:   flakyEngine{Engine: impls.NewCuDNN(), failures: &failures},
		MaxBatch: 8, MaxWait: time.Millisecond, TimeScale: -1,
	})
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 8, Requests: 64})
	if rep.Failed == 0 {
		t.Fatal("engine never failed a request; the regression test is vacuous")
	}
	if rep.Completed != 64 {
		t.Fatalf("quota leak: completed %d of 64 (failed %d counted against the quota)",
			rep.Completed, rep.Failed)
	}
}

// TestRunLoadQuota: the request-count mode completes exactly the quota
// and reports consistent aggregates.
func TestRunLoadQuota(t *testing.T) {
	s := newTestServer(t, 2, Options{MaxBatch: 8, MaxWait: time.Millisecond})
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 16, Requests: 128})
	if rep.Completed != 128 {
		t.Fatalf("completed %d, want 128", rep.Completed)
	}
	if rep.ThroughputRPS <= 0 || rep.SimImagesPerSec <= 0 {
		t.Fatalf("throughput not computed: %+v", rep)
	}
	if rep.P50 > rep.P99 || rep.P99 > rep.Max {
		t.Fatalf("percentiles not ordered: p50=%v p99=%v max=%v", rep.P50, rep.P99, rep.Max)
	}
	if rep.MeanBatch < 1 || rep.MeanBatch > 8 {
		t.Fatalf("mean batch %v outside [1,8]", rep.MeanBatch)
	}
}

// TestRunLoadDuration: the wall-window mode stops near the deadline
// and still drains cleanly.
func TestRunLoadDuration(t *testing.T) {
	s := newTestServer(t, 1, Options{MaxBatch: 8, MaxWait: 500 * time.Microsecond})
	start := time.Now()
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 4, Duration: 100 * time.Millisecond})
	el := time.Since(start)
	if rep.Completed == 0 {
		t.Fatal("no requests completed in the window")
	}
	if el > 5*time.Second {
		t.Fatalf("run overshot its window: %v", el)
	}
}

// TestRunLoadExportsHeadlines: the headline gauges land in the
// server's registry — the acceptance criterion's export path.
func TestRunLoadExportsHeadlines(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newTestServer(t, 1, Options{MaxBatch: 8, MaxWait: time.Millisecond, Registry: reg})
	rep := RunLoad(context.Background(), s, LoadOptions{Clients: 8, Requests: 64})
	labels := telemetry.Labels{"engine": "cuDNN"}
	if g := reg.Gauge("serve_load_sim_images_per_second", labels).Value(); g != rep.SimImagesPerSec || g <= 0 {
		t.Fatalf("sim img/s gauge %v, report %v", g, rep.SimImagesPerSec)
	}
	if g := reg.Gauge("serve_load_p99_seconds", labels).Value(); g != rep.P99.Seconds() {
		t.Fatalf("p99 gauge %v, report %v", g, rep.P99.Seconds())
	}
	if g := reg.Gauge("serve_load_throughput_rps", labels).Value(); g != rep.ThroughputRPS {
		t.Fatalf("throughput gauge %v, report %v", g, rep.ThroughputRPS)
	}
}
