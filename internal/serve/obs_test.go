package serve

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"gpucnn/internal/obs"
)

// TestServeFeedsObsPlane serves real traffic and checks every windowed
// surface the server registers: counters, gauges, histograms, the
// batcher section, and the per-device sink.
func TestServeFeedsObsPlane(t *testing.T) {
	plane := obs.NewPlane(obs.Options{})
	s := newTestServer(t, 2, Options{
		MaxBatch: 4, MaxWait: time.Millisecond, TimeScale: -1,
		Obs: plane, SLO: SLOConfig{Interval: -1},
	})
	s.Start()
	for i := 0; i < 16; i++ {
		if _, err := s.Submit(context.Background()); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	if got := plane.Counter("serve.offered").Total(); got != 16 {
		t.Errorf("offered = %v, want 16", got)
	}
	if got := plane.Counter("serve.admitted").Total(); got != 16 {
		t.Errorf("admitted = %v, want 16", got)
	}
	if got := plane.Counter("serve.completed").Total(); got != 16 {
		t.Errorf("completed = %v, want 16", got)
	}
	if got := plane.Counter("serve.shed").Total(); got != 0 {
		t.Errorf("shed = %v, want 0", got)
	}
	if got := plane.Histogram("serve.e2e_seconds", nil).Count(0); got != 16 {
		t.Errorf("e2e observations = %v, want 16", got)
	}
	if got := plane.Counter("dev0.kernels").Total() + plane.Counter("dev1.kernels").Total(); got == 0 {
		t.Error("device sinks saw no kernels")
	}
	if s.Monitor() == nil {
		t.Fatal("monitor missing")
	}
	if st := s.Monitor().Status(); len(st) != 2 {
		t.Fatalf("objectives = %+v", st)
	}
	snap := plane.Dash()
	if snap.Sections["batcher"] == nil {
		t.Error("batcher section missing from dash")
	}
	if snap.Op == "" {
		t.Error("active op not set by runBatch")
	}
}

// TestServeSLOEscalationFakeClock is the acceptance-criterion test: an
// under-provisioned server walks the shed-rate objective OK→WARN→PAGE
// under a fake clock, and the PAGE state is visible in the dashboard
// JSON. Phase 1 serves a healthy minute; phase 2 swaps in a server
// whose batcher never drains (Start withheld), so a fixed slice of
// each second's offered load is admitted and the rest is shed.
func TestServeSLOEscalationFakeClock(t *testing.T) {
	fc := obs.NewFakeClock(time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC))
	plane := obs.NewPlane(obs.Options{Clock: fc, Window: time.Minute, Resolution: time.Second})

	// Phase 1: healthy traffic fills the slow window — 20 served
	// requests per fake second for a minute.
	healthy := newTestServer(t, 1, Options{
		MaxBatch: 4, MaxWait: time.Millisecond, TimeScale: -1,
		Obs: plane, SLO: SLOConfig{Interval: -1},
	})
	healthy.Start()
	for sec := 0; sec < 60; sec++ {
		for i := 0; i < 20; i++ {
			if _, err := healthy.Submit(context.Background()); err != nil {
				t.Fatalf("healthy submit: %v", err)
			}
		}
		fc.Advance(time.Second)
		healthy.Monitor().Eval()
	}
	if got := healthy.Monitor().State("shed-rate"); got != obs.OK {
		t.Fatalf("after healthy minute: %v, want OK", got)
	}
	healthy.Close()

	// Phase 2: an under-provisioned server on the same plane. Its
	// batcher is never started, so the queue (cap 4) fills once and
	// every further request sheds; the cancelled context returns each
	// admitted Submit immediately instead of blocking on completion.
	// The shared plane keeps the healthy history in the slow window,
	// so the burn ramps WARN before PAGE instead of jumping.
	under := newTestServer(t, 1, Options{
		MaxBatch: 4, QueueCap: 4, TimeScale: -1,
		Obs: plane, SLO: SLOConfig{Interval: -1},
	})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	var walk []obs.State
	deadline := 0
	for sec := 0; sec < 60; sec++ {
		for i := 0; i < 100; i++ {
			_, err := under.Submit(cancelled)
			if err != nil && !errors.Is(err, ErrOverloaded) && !errors.Is(err, context.Canceled) {
				t.Fatalf("overload submit: %v", err)
			}
		}
		fc.Advance(time.Second)
		for _, tr := range under.Monitor().Eval() {
			if tr.Objective == "shed-rate" {
				walk = append(walk, tr.To)
			}
		}
		if st := under.Monitor().State("shed-rate"); st == obs.PAGE && deadline == 0 {
			deadline = sec
		}
	}
	if got := under.Monitor().State("shed-rate"); got != obs.PAGE {
		t.Fatalf("under-provisioned server = %v, want PAGE", got)
	}
	if len(walk) != 2 || walk[0] != obs.WARN || walk[1] != obs.PAGE {
		t.Fatalf("escalation walk = %v, want [WARN PAGE]", walk)
	}
	if stats := under.Stats(); stats.Rejected == 0 {
		t.Fatal("Stats().Rejected must count the shed load")
	}

	// The PAGE state and the transition history are on the dashboard.
	rr := httptest.NewRecorder()
	obs.DashHandler(plane).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/dash.json", nil))
	var snap obs.DashSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("dash.json: %v", err)
	}
	paged := false
	for _, o := range snap.SLOs {
		if o.Name == "shed-rate" && o.State == "PAGE" {
			paged = true
		}
	}
	if !paged {
		t.Fatalf("dashboard JSON does not show the PAGE: %+v", snap.SLOs)
	}
	if len(snap.Transitions) == 0 {
		t.Fatal("dashboard JSON carries no transitions")
	}
}
