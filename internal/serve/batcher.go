package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/obs"
	"gpucnn/internal/telemetry"
)

// batch is a formed group of requests bound for one device.
type batch struct {
	reqs     []*request
	device   int
	formedAt time.Time
}

// batchLoop is the dynamic batcher: it blocks for the first request,
// then accumulates until the batch is full or the max-wait deadline
// passes, and hands the formed batch to the least-loaded device. When
// the admission queue closes it drains every remaining request into
// final batches before shutting the device queues.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	defer func() {
		for _, q := range s.devq {
			close(q)
		}
	}()
	for {
		first, ok := <-s.queue
		if !ok {
			return
		}
		s.dispatch(s.collect(first))
	}
}

// collect forms one batch starting from an already-received request.
func (s *Server) collect(first *request) []*request {
	reqs := []*request{first}
	if s.opts.MaxBatch == 1 {
		return reqs
	}
	timer := time.NewTimer(s.opts.MaxWait)
	defer timer.Stop()
	for len(reqs) < s.opts.MaxBatch {
		select {
		case r, ok := <-s.queue:
			if !ok {
				return reqs
			}
			reqs = append(reqs, r)
		case <-timer.C:
			return reqs
		}
	}
	return reqs
}

// dispatch assigns the batch to the device with the fewest outstanding
// images (queued plus running — a direct proxy for remaining service
// time on identical devices) and enqueues it there. A full device
// queue blocks the batcher, which in turn fills the admission queue
// and surfaces as ErrOverloaded — backpressure instead of backlog.
func (s *Server) dispatch(reqs []*request) {
	s.qDepth.Set(float64(len(s.queue)))
	s.wQDepth.Set(float64(len(s.queue)))
	d := 0
	min := s.load[0].Load()
	for i := 1; i < len(s.load); i++ {
		if l := s.load[i].Load(); l < min {
			min, d = l, i
		}
	}
	s.load[d].Add(int64(len(reqs)))
	s.devq[d] <- &batch{reqs: reqs, device: d, formedAt: time.Now()}
}

// deviceLoop serves one device's batch queue.
func (s *Server) deviceLoop(i int) {
	defer s.wg.Done()
	for b := range s.devq[i] {
		s.runBatch(i, b)
		s.load[i].Add(-int64(len(b.reqs)))
	}
}

// runBatch executes one formed batch on device i: transfer + forward
// through the cached plan, simulated duration measured as the device
// clock delta, then (TimeScale permitting) the wall occupancy sleep
// that makes closed-loop load realistic.
func (s *Server) runBatch(i int, b *batch) {
	start := time.Now()
	cfg := s.opts.Model
	cfg.Batch = len(b.reqs)

	nb := s.nbatch.Add(1)
	bsp := s.root.Child(fmt.Sprintf("batch-%d", nb)).
		SetProc(i).
		SetAttr("device", fmt.Sprint(i)).
		SetAttr("size", fmt.Sprint(len(b.reqs)))
	// Guard every exit — including a panicking engine — so a failed
	// batch can never leak an open span into the trace (the PR 4 bug
	// class); the explicit End below stays the precise close.
	defer bsp.EndIfOpen()
	s.plane.SetOp(fmt.Sprintf("serve/dev%d/batch-%d/size-%d", i, nb, len(b.reqs)))

	var sim time.Duration
	err := s.plans.Exec(i, cfg, func(dev *gpusim.Device, p impls.Plan) error {
		// Tee the span recorder (when tracing) with the plane's device
		// sink (when observing): one event stream, both consumers.
		var sink gpusim.TraceSink
		if bsp != nil {
			rec := telemetry.NewRecorder()
			rec.Attach(bsp)
			sink = rec
		}
		if s.devObs != nil {
			sink = obs.TeeSinks(sink, s.devObs[i])
		}
		if sink != nil {
			dev.SetSink(sink)
			defer dev.SetSink(nil)
		}
		e0 := dev.Elapsed()
		err := p.Inference()
		sim = dev.Elapsed() - e0
		bsp.SetSim(e0, e0+sim)
		return err
	})
	if err == nil && s.opts.TimeScale > 0 && sim > 0 {
		time.Sleep(time.Duration(float64(sim) * s.opts.TimeScale))
	}

	s.inflight.Set(float64(sumLoads(s.load)))
	s.wInflight.Set(float64(sumLoads(s.load)))
	s.cBatches.Inc()
	s.wBatches.Inc()
	s.hBatch.Observe(float64(len(b.reqs)))
	s.wOccup.Set(float64(len(b.reqs)) / float64(s.opts.MaxBatch))
	s.devBatches[i].Add(1)
	labels := telemetry.Labels{"engine": s.opts.Engine.Name(), "device": fmt.Sprint(i)}
	s.opts.Registry.Counter("serve_device_busy_seconds_total", labels).Add(sim.Seconds())
	s.opts.Registry.Counter("serve_device_images_total", labels).Add(float64(len(b.reqs)))

	res := Result{BatchSize: len(b.reqs), Device: i, BatchSim: sim}
	for _, r := range b.reqs {
		rr := res
		rr.QueueWait = start.Sub(r.enq)
		rr.E2E = time.Since(r.enq)
		s.hQueue.Observe(rr.QueueWait.Seconds())
		s.wQueue.Observe(rr.QueueWait.Seconds())
		if err != nil {
			s.failed.Add(1)
			s.cFailed.Inc()
			s.wFailed.Inc()
			r.done <- reqDone{err: err}
			continue
		}
		s.hE2E.Observe(rr.E2E.Seconds())
		s.wE2E.Observe(rr.E2E.Seconds())
		s.completed.Add(1)
		s.cImages.Inc()
		s.wCompleted.Inc()
		s.devImages[i].Add(1)
		bsp.Child("request").
			SetAttr("queue_wait", rr.QueueWait.String()).
			SetAttr("e2e", rr.E2E.String()).
			SetSim(bsp.SimInterval()).End()
		r.done <- reqDone{res: rr}
	}
	bsp.End()
}

func sumLoads(ls []atomic.Int64) int64 {
	var t int64
	for i := range ls {
		t += ls[i].Load()
	}
	return t
}

