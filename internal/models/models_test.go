package models

import (
	"testing"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/nn"
	"gpucnn/internal/tensor"
)

// simulate runs one training iteration of a model at the given batch
// and returns the context (ledger) and device.
func simulate(t *testing.T, m *Model, batch int) (*nn.Context, *gpusim.Device) {
	t.Helper()
	dev := gpusim.New(gpusim.TeslaK40c())
	ctx := nn.NewContext(dev, true)
	m.Net.SimulateIteration(ctx, tensor.Shape(m.InputShape(batch)))
	return ctx, dev
}

// TestParameterCounts asserts the sizes the paper quotes in Section I:
// AlexNet "more than 60 million parameters", VGGNet "over 144 million"
// (VGG-19's exact count is 143.67 M), GoogLeNet "about 6.8 million".
func TestParameterCounts(t *testing.T) {
	cases := []struct {
		m        *Model
		min, max int
	}{
		{AlexNet(nil), 60_000_000, 65_000_000},
		{VGG19(nil), 140_000_000, 147_000_000},
		{VGG16(nil), 136_000_000, 141_000_000}, // reference count 138.36 M
		{GoogLeNet(nil), 6_500_000, 7_500_000},
		{OverFeat(nil), 130_000_000, 150_000_000},
		{LeNet5(nil), 40_000, 70_000},
	}
	for _, c := range cases {
		// Parameters initialise lazily on the first (simulate-only) pass.
		ctx := nn.NewContext(nil, true)
		c.m.Net.SimulateIteration(ctx, tensor.Shape(c.m.InputShape(1)))
		got := c.m.Net.ParamCount()
		if got < c.min || got > c.max {
			t.Errorf("%s parameter count = %d, want in [%d, %d]",
				c.m.Net.Name, got, c.min, c.max)
		}
	}
}

// TestLayerComposition checks the architectural shape the paper quotes:
// AlexNet 5 conv + 3 FC, VGG-19 16 conv + 3 FC, GoogLeNet 22
// weight-bearing levels.
func TestLayerComposition(t *testing.T) {
	count := func(net *nn.Net) (convs, fcs int) {
		var walk func(ls []nn.Layer)
		walk = func(ls []nn.Layer) {
			for _, l := range ls {
				switch v := l.(type) {
				case *nn.Conv:
					convs++
				case *nn.FC:
					fcs++
				case *nn.Branch:
					for _, p := range v.Paths {
						walk(p)
					}
				}
			}
		}
		walk(net.Layers)
		return
	}
	if c, f := count(AlexNet(nil).Net); c != 5 || f != 3 {
		t.Errorf("AlexNet has %d conv + %d fc, want 5 + 3", c, f)
	}
	if c, f := count(VGG19(nil).Net); c != 16 || f != 3 {
		t.Errorf("VGG-19 has %d conv + %d fc, want 16 + 3", c, f)
	}
	if c, f := count(OverFeat(nil).Net); c != 5 || f != 3 {
		t.Errorf("OverFeat has %d conv + %d fc, want 5 + 3", c, f)
	}
	c, f := count(GoogLeNet(nil).Net)
	// 9 inception modules × 6 convs + 3 stem convs = 57 convs, 1 FC.
	if c != 57 || f != 1 {
		t.Errorf("GoogLeNet has %d conv + %d fc, want 57 + 1", c, f)
	}
}

func TestOutputShapes(t *testing.T) {
	for name, m := range All(nil) {
		out := m.Net.OutShape(tensor.Shape(m.InputShape(4)))
		if !out.Equal(tensor.Shape{4, 1000}) {
			t.Errorf("%s output shape = %v, want [4 1000]", name, out)
		}
	}
	le := LeNet5(nil)
	if out := le.Net.OutShape(tensor.Shape(le.InputShape(2))); !out.Equal(tensor.Shape{2, 10}) {
		t.Errorf("LeNet-5 output shape = %v", out)
	}
}

// TestFigure2ConvDominance reproduces the paper's Figure 2 headline:
// convolutional layers consume the bulk (86–94% in the paper) of each
// model's training iteration.
func TestFigure2ConvDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("model simulation in short mode")
	}
	batches := map[string]int{"AlexNet": 128, "GoogLeNet": 128, "OverFeat": 128, "VGG": 64}
	for name, m := range All(impls.NewCaffe()) {
		ctx, dev := simulate(t, m, batches[name])
		share := nn.ConvShare(ctx.TimeByKind)
		if share < 0.80 || share > 0.98 {
			t.Errorf("%s conv share = %.1f%%, want within [80%%, 98%%] (paper: 86-94%%)",
				name, share*100)
		}
		if dev.Elapsed() <= 0 {
			t.Errorf("%s: no simulated time", name)
		}
		m.Net.Release()
		if dev.Mem.Used() != 0 {
			t.Errorf("%s leaked %d device bytes", name, dev.Mem.Used())
		}
	}
}

// TestGoogLeNetHasConcatTime: the Concat category must appear for
// GoogLeNet (the paper calls it out as GoogLeNet-specific).
func TestGoogLeNetHasConcatTime(t *testing.T) {
	m := GoogLeNet(impls.NewCuDNN())
	ctx, _ := simulate(t, m, 32)
	if ctx.TimeByKind[nn.KindConcat] <= 0 {
		t.Fatal("GoogLeNet should spend time in Concat")
	}
	m.Net.Release()
	a := AlexNet(impls.NewCuDNN())
	ctxA, _ := simulate(t, a, 32)
	if ctxA.TimeByKind[nn.KindConcat] != 0 {
		t.Fatal("AlexNet has no concat layers")
	}
	a.Net.Release()
}

// TestLeNetTrains runs real training on LeNet-5 with synthetic digits
// and checks the loss decreases.
func TestLeNetTrains(t *testing.T) {
	m := LeNet5(nil)
	r := tensor.NewRNG(3)
	batch := 8
	makeBatch := func() (*tensor.Tensor, []int) {
		x := tensor.New(batch, 1, 28, 28)
		labels := make([]int, batch)
		for bi := 0; bi < batch; bi++ {
			label := r.Intn(10)
			labels[bi] = label
			// Synthetic class signature: a bright band at a
			// label-dependent row.
			row := 2 + label*2
			for c := 0; c < 28; c++ {
				x.Data[bi*784+row*28+c] = 1
				x.Data[bi*784+(row+1)*28+c] = 0.5
			}
		}
		return x, labels
	}
	ctx := nn.NewContext(nil, true)
	opt := nn.NewSGD(0.05, 0.9, 0)
	var first, last float64
	for step := 0; step < 25; step++ {
		x, labels := makeBatch()
		loss, _ := m.Net.TrainStep(ctx, x, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(m.Net.Params())
	}
	if last >= first*0.7 {
		t.Fatalf("LeNet-5 did not learn: first %.4f last %.4f", first, last)
	}
}

func TestCIFARNetShapeAndTraining(t *testing.T) {
	m := CIFARNet(nil)
	if out := m.Net.OutShape(tensor.Shape(m.InputShape(4))); !out.Equal(tensor.Shape{4, 10}) {
		t.Fatalf("CIFARNet output = %v", out)
	}
	ctx := nn.NewContext(nil, true)
	opt := nn.NewSGD(0.05, 0.9, 0)
	r := tensor.NewRNG(9)
	var first, last float64
	for step := 0; step < 40; step++ {
		x := tensor.New(8, 3, 32, 32)
		labels := make([]int, 8)
		for bi := 0; bi < 8; bi++ {
			labels[bi] = r.Intn(2) // two easy classes
			base := float32(labels[bi])*2 - 1
			for j := 0; j < 3*1024; j++ {
				x.Data[bi*3*1024+j] = base + 0.3*(2*r.Float32()-1)
			}
		}
		loss, _ := m.Net.TrainStep(ctx, x, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(m.Net.Params())
	}
	if last >= first*0.7 {
		t.Fatalf("CIFARNet did not learn: %v -> %v", first, last)
	}
}

func TestEvaluateBatches(t *testing.T) {
	m := LeNet5(nil)
	r := tensor.NewRNG(44)
	images := tensor.New(10, 1, 28, 28)
	images.FillUniform(r, 0, 1)
	labels := make([]int, 10)
	for i := range labels {
		labels[i] = r.Intn(10)
	}
	// Batched evaluation must match single-shot evaluation. Not
	// bitwise: the batch dimension is the GEMM m dimension, and rows
	// inside a full 8-row register tile run through the FMA micro-kernel
	// (fused rounding) while tail rows take the scalar kernel — so the
	// same sample's logits can differ at float32 rounding order
	// depending on batch size, like any vectorised BLAS.
	l1, a1 := Evaluate(m, images, labels, 10)
	l2, a2 := Evaluate(m, images, labels, 3)
	if diff := l1 - l2; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("batched loss %v != full-batch loss %v", l2, l1)
	}
	if a1 != a2 {
		t.Fatalf("batched accuracy %v != %v", a2, a1)
	}
}

// TestAutoEngineRunsEveryModel: the dispatching engine must plan every
// layer of every profiled model (strided, 1×1, 3×3, 5×5, 7×7, 11×11)
// and never be slower than a fixed cuDNN choice.
func TestAutoEngineRunsEveryModel(t *testing.T) {
	for name := range All(nil) {
		auto := All(impls.NewAuto(0))[name]
		fixed := All(impls.NewCuDNN())[name]
		_, devA := simulate(t, auto, 32)
		_, devF := simulate(t, fixed, 32)
		if devA.Elapsed() > devF.Elapsed() {
			t.Errorf("%s: Auto (%v) slower than fixed cuDNN (%v)", name, devA.Elapsed(), devF.Elapsed())
		}
		auto.Net.Release()
		fixed.Net.Release()
	}
}
