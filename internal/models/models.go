// Package models builds the CNN architectures the paper profiles in
// Figure 2 — AlexNet, VGGNet (VGG-19), GoogLeNet and OverFeat — plus
// LeNet-5, the introductory example of the paper's Figure 1. Parameter
// counts reproduce the figures quoted in the paper's introduction
// (AlexNet > 60 M, VGGNet > 144 M, GoogLeNet ≈ 6.8 M).
package models

import (
	"gpucnn/internal/impls"
	"gpucnn/internal/nn"
	"gpucnn/internal/tensor"
)

// Model couples a network with its canonical input geometry.
type Model struct {
	Net        *nn.Net
	InputSize  int // square spatial extent
	InputChans int
	Classes    int
}

// InputShape returns the NCHW input shape for a batch size.
func (m *Model) InputShape(batch int) []int {
	return []int{batch, m.InputChans, m.InputSize, m.InputSize}
}

// conv is a helper building Conv+ReLU with a shared engine.
func convRelu(name string, eng impls.Engine, filters, kernel, stride, pad int) []nn.Layer {
	return []nn.Layer{
		nn.NewConv(name, eng, filters, kernel, stride, pad),
		nn.NewReLU(name + ".relu"),
	}
}

// AlexNet builds the ILSVRC-2012 winner: 5 convolutional + 3
// fully-connected layers, >60 M parameters (the paper's Section I).
// Grouped convolutions are modelled ungrouped, as all the surveyed
// frameworks' reference re-implementations do.
func AlexNet(eng impls.Engine) *Model {
	net := nn.NewNet("AlexNet")
	add := func(ls ...nn.Layer) {
		for _, l := range ls {
			net.Add(l)
		}
	}
	add(convRelu("conv1", eng, 96, 11, 4, 0)...) // 227 -> 55
	add(nn.NewLRN("norm1", 5, 0, 0, 0))
	add(nn.NewMaxPool("pool1", 3, 2, 0)) // 55 -> 27
	add(convRelu("conv2", eng, 256, 5, 1, 2)...)
	add(nn.NewLRN("norm2", 5, 0, 0, 0))
	add(nn.NewMaxPool("pool2", 3, 2, 0)) // 27 -> 13
	add(convRelu("conv3", eng, 384, 3, 1, 1)...)
	add(convRelu("conv4", eng, 384, 3, 1, 1)...)
	add(convRelu("conv5", eng, 256, 3, 1, 1)...)
	add(nn.NewMaxPool("pool5", 3, 2, 0)) // 13 -> 6
	add(nn.NewFC("fc6", 4096), nn.NewReLU("fc6.relu"), nn.NewDropout("drop6", 0.5))
	add(nn.NewFC("fc7", 4096), nn.NewReLU("fc7.relu"), nn.NewDropout("drop7", 0.5))
	add(nn.NewFC("fc8", 1000))
	add(nn.NewSoftmaxLoss("loss"))
	return &Model{Net: net, InputSize: 227, InputChans: 3, Classes: 1000}
}

// VGG19 builds VGGNet configuration E: 16 convolutional + 3
// fully-connected layers, >144 M parameters (the paper's Section I).
func VGG19(eng impls.Engine) *Model {
	net := nn.NewNet("VGG-19")
	add := func(ls ...nn.Layer) {
		for _, l := range ls {
			net.Add(l)
		}
	}
	block := func(prefix string, filters, convs int) {
		for i := 1; i <= convs; i++ {
			add(convRelu(prefix+string(rune('0'+i)), eng, filters, 3, 1, 1)...)
		}
		add(nn.NewMaxPool(prefix+"pool", 2, 2, 0))
	}
	block("conv1_", 64, 2)  // 224 -> 112
	block("conv2_", 128, 2) // -> 56
	block("conv3_", 256, 4) // -> 28
	block("conv4_", 512, 4) // -> 14
	block("conv5_", 512, 4) // -> 7
	add(nn.NewFC("fc6", 4096), nn.NewReLU("fc6.relu"), nn.NewDropout("drop6", 0.5))
	add(nn.NewFC("fc7", 4096), nn.NewReLU("fc7.relu"), nn.NewDropout("drop7", 0.5))
	add(nn.NewFC("fc8", 1000))
	add(nn.NewSoftmaxLoss("loss"))
	return &Model{Net: net, InputSize: 224, InputChans: 3, Classes: 1000}
}

// VGG16 builds VGGNet configuration D (13 convolutional + 3
// fully-connected layers, 138.36 M parameters) — the smaller sibling of
// the paper's VGG-19, included for ablations.
func VGG16(eng impls.Engine) *Model {
	net := nn.NewNet("VGG-16")
	add := func(ls ...nn.Layer) {
		for _, l := range ls {
			net.Add(l)
		}
	}
	block := func(prefix string, filters, convs int) {
		for i := 1; i <= convs; i++ {
			add(convRelu(prefix+string(rune('0'+i)), eng, filters, 3, 1, 1)...)
		}
		add(nn.NewMaxPool(prefix+"pool", 2, 2, 0))
	}
	block("conv1_", 64, 2)
	block("conv2_", 128, 2)
	block("conv3_", 256, 3)
	block("conv4_", 512, 3)
	block("conv5_", 512, 3)
	add(nn.NewFC("fc6", 4096), nn.NewReLU("fc6.relu"), nn.NewDropout("drop6", 0.5))
	add(nn.NewFC("fc7", 4096), nn.NewReLU("fc7.relu"), nn.NewDropout("drop7", 0.5))
	add(nn.NewFC("fc8", 1000))
	add(nn.NewSoftmaxLoss("loss"))
	return &Model{Net: net, InputSize: 224, InputChans: 3, Classes: 1000}
}

// inception builds one GoogLeNet inception module.
func inception(name string, eng impls.Engine, c1, r3, c3, r5, c5, pp int) *nn.Branch {
	return nn.NewBranch(name,
		convRelu(name+".1x1", eng, c1, 1, 1, 0),
		append(convRelu(name+".3x3r", eng, r3, 1, 1, 0), convRelu(name+".3x3", eng, c3, 3, 1, 1)...),
		append(convRelu(name+".5x5r", eng, r5, 1, 1, 0), convRelu(name+".5x5", eng, c5, 5, 1, 2)...),
		append([]nn.Layer{nn.NewMaxPool(name+".pool", 3, 1, 1)}, convRelu(name+".proj", eng, pp, 1, 1, 0)...),
	)
}

// GoogLeNet builds the 22-layer inception network, ≈6.8 M parameters
// (the paper's Section I). Auxiliary classifiers are omitted, as in the
// deployed model.
func GoogLeNet(eng impls.Engine) *Model {
	net := nn.NewNet("GoogLeNet")
	add := func(ls ...nn.Layer) {
		for _, l := range ls {
			net.Add(l)
		}
	}
	add(convRelu("conv1", eng, 64, 7, 2, 3)...) // 224 -> 112
	add(nn.NewMaxPool("pool1", 3, 2, 0))        // -> 56
	add(nn.NewLRN("norm1", 5, 0, 0, 0))
	add(convRelu("conv2r", eng, 64, 1, 1, 0)...)
	add(convRelu("conv2", eng, 192, 3, 1, 1)...)
	add(nn.NewLRN("norm2", 5, 0, 0, 0))
	add(nn.NewMaxPool("pool2", 3, 2, 0)) // -> 28
	add(inception("3a", eng, 64, 96, 128, 16, 32, 32))
	add(inception("3b", eng, 128, 128, 192, 32, 96, 64))
	add(nn.NewMaxPool("pool3", 3, 2, 0)) // -> 14
	add(inception("4a", eng, 192, 96, 208, 16, 48, 64))
	add(inception("4b", eng, 160, 112, 224, 24, 64, 64))
	add(inception("4c", eng, 128, 128, 256, 24, 64, 64))
	add(inception("4d", eng, 112, 144, 288, 32, 64, 64))
	add(inception("4e", eng, 256, 160, 320, 32, 128, 128))
	add(nn.NewMaxPool("pool4", 3, 2, 0)) // -> 7
	add(inception("5a", eng, 256, 160, 320, 32, 128, 128))
	add(inception("5b", eng, 384, 192, 384, 48, 128, 128))
	add(nn.NewAvgPool("pool5", 7, 1, 0)) // -> 1
	add(nn.NewDropout("drop", 0.4))
	add(nn.NewFC("fc", 1000))
	add(nn.NewSoftmaxLoss("loss"))
	return &Model{Net: net, InputSize: 224, InputChans: 3, Classes: 1000}
}

// OverFeat builds the fast OverFeat model (5 conv + 3 FC).
func OverFeat(eng impls.Engine) *Model {
	net := nn.NewNet("OverFeat")
	add := func(ls ...nn.Layer) {
		for _, l := range ls {
			net.Add(l)
		}
	}
	add(convRelu("conv1", eng, 96, 11, 4, 0)...) // 231 -> 56
	add(nn.NewMaxPool("pool1", 2, 2, 0))         // -> 28
	add(convRelu("conv2", eng, 256, 5, 1, 0)...) // -> 24
	add(nn.NewMaxPool("pool2", 2, 2, 0))         // -> 12
	add(convRelu("conv3", eng, 512, 3, 1, 1)...)
	add(convRelu("conv4", eng, 1024, 3, 1, 1)...)
	add(convRelu("conv5", eng, 1024, 3, 1, 1)...)
	add(nn.NewMaxPool("pool5", 2, 2, 0)) // -> 6
	add(nn.NewFC("fc6", 3072), nn.NewReLU("fc6.relu"), nn.NewDropout("drop6", 0.5))
	add(nn.NewFC("fc7", 4096), nn.NewReLU("fc7.relu"), nn.NewDropout("drop7", 0.5))
	add(nn.NewFC("fc8", 1000))
	add(nn.NewSoftmaxLoss("loss"))
	return &Model{Net: net, InputSize: 231, InputChans: 3, Classes: 1000}
}

// LeNet5 builds the paper's Figure 1 example network for 28×28
// grayscale digits (MNIST geometry with pad-2 on the first layer).
func LeNet5(eng impls.Engine) *Model {
	net := nn.NewNet("LeNet-5")
	add := func(ls ...nn.Layer) {
		for _, l := range ls {
			net.Add(l)
		}
	}
	add(convRelu("conv1", eng, 6, 5, 1, 2)...)  // 28 -> 28
	add(nn.NewMaxPool("pool1", 2, 2, 0))        // -> 14
	add(convRelu("conv2", eng, 16, 5, 1, 0)...) // -> 10
	add(nn.NewMaxPool("pool2", 2, 2, 0))        // -> 5
	add(nn.NewFC("fc3", 120), nn.NewReLU("fc3.relu"))
	add(nn.NewFC("fc4", 84), nn.NewReLU("fc4.relu"))
	add(nn.NewFC("fc5", 10))
	add(nn.NewSoftmaxLoss("loss"))
	return &Model{Net: net, InputSize: 28, InputChans: 1, Classes: 10}
}

// All returns the paper's four profiled models keyed by name.
func All(eng impls.Engine) map[string]*Model {
	return map[string]*Model{
		"AlexNet":   AlexNet(eng),
		"GoogLeNet": GoogLeNet(eng),
		"VGG":       VGG19(eng),
		"OverFeat":  OverFeat(eng),
	}
}

// CIFARNet builds cuda-convnet's classic CIFAR-10 architecture
// ("layers-80sec": three 5×5 conv/pool stages and a linear classifier)
// — the CIFAR-10 workload the paper's introduction cites alongside
// MNIST and ImageNet.
func CIFARNet(eng impls.Engine) *Model {
	net := nn.NewNet("CIFARNet")
	add := func(ls ...nn.Layer) {
		for _, l := range ls {
			net.Add(l)
		}
	}
	add(convRelu("conv1", eng, 32, 5, 1, 2)...) // 32 -> 32
	add(nn.NewMaxPool("pool1", 3, 2, 0))        // -> 16
	add(convRelu("conv2", eng, 32, 5, 1, 2)...)
	add(nn.NewAvgPool("pool2", 3, 2, 0)) // -> 8
	add(convRelu("conv3", eng, 64, 5, 1, 2)...)
	add(nn.NewAvgPool("pool3", 3, 2, 0)) // -> 4
	add(nn.NewFC("fc10", 10))
	add(nn.NewSoftmaxLoss("loss"))
	return &Model{Net: net, InputSize: 32, InputChans: 3, Classes: 10}
}

// Evaluate runs the model on a full dataset in evaluation mode and
// returns the mean loss and top-1 accuracy, batching the forward passes.
func Evaluate(m *Model, images *tensor.Tensor, labels []int, batch int) (loss, acc float64) {
	n := images.Dim(0)
	if batch <= 0 || batch > n {
		batch = n
	}
	ctx := nn.NewContext(nil, false)
	per := images.Len() / n
	var total, correct float64
	seen := 0
	for start := 0; start < n; start += batch {
		end := start + batch
		if end > n {
			end = n
		}
		x := tensor.FromSlice(images.Data[start*per:end*per], append([]int{end - start}, images.Shape()[1:]...)...)
		m.Net.Forward(ctx, nn.NewValue(x))
		l, a := m.Net.Loss().Loss(labels[start:end])
		total += l * float64(end-start)
		correct += a * float64(end-start)
		seen += end - start
	}
	return total / float64(seen), correct / float64(seen)
}
