package conv

import (
	"gpucnn/internal/tensor"
)

// Forwarder is any forward convolution implementation with the shared
// (cfg, x, w, y) signature.
type Forwarder func(cfg Config, x, w, y *tensor.Tensor)

// NumericalGradInput estimates dL/dx by central finite differences for
// the loss L = Σ y ⊙ r, where r is a fixed projection tensor. It is
// O(|x|) forward passes, so only call it on tiny configurations.
func NumericalGradInput(cfg Config, fwd Forwarder, x, w, r *tensor.Tensor, eps float32) *tensor.Tensor {
	grad := tensor.New(x.Shape()...)
	y := tensor.New(cfg.OutputShape()...)
	loss := func() float64 {
		fwd(cfg, x, w, y)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(r.Data[i])
		}
		return s
	}
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		lp := loss()
		x.Data[i] = orig - eps
		lm := loss()
		x.Data[i] = orig
		grad.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	return grad
}

// NumericalGradFilter estimates dL/dw by central finite differences for
// the loss L = Σ y ⊙ r.
func NumericalGradFilter(cfg Config, fwd Forwarder, x, w, r *tensor.Tensor, eps float32) *tensor.Tensor {
	grad := tensor.New(w.Shape()...)
	y := tensor.New(cfg.OutputShape()...)
	loss := func() float64 {
		fwd(cfg, x, w, y)
		var s float64
		for i := range y.Data {
			s += float64(y.Data[i]) * float64(r.Data[i])
		}
		return s
	}
	for i := range w.Data {
		orig := w.Data[i]
		w.Data[i] = orig + eps
		lp := loss()
		w.Data[i] = orig - eps
		lm := loss()
		w.Data[i] = orig
		grad.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	return grad
}
