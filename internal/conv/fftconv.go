package conv

import (
	"fmt"

	"gpucnn/internal/fft"
	"gpucnn/internal/gemm"
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workspace"
)

// FFTPlanSize returns the per-axis transform size used by the FFT
// strategy for a config: the padded input extent rounded up to a power
// of two. This rounding is what produces the step-function memory
// profile of fbfft in the paper's Figure 5.
func FFTPlanSize(cfg Config) int {
	return fft.NextPow2(cfg.Input + 2*cfg.Pad)
}

func fftCheckStride(cfg Config) {
	if cfg.Stride != 1 {
		panic(fmt.Sprintf("conv: FFT strategy requires stride 1, got %d (config %v)", cfg.Stride, cfg))
	}
}

// paddedPlane copies one i×i channel plane into an arena-carved
// zero-padded ip×ip buffer, or returns the original plane when pad == 0.
func paddedPlane(cfg Config, plane []float32, ws *workspace.Arena) ([]float32, int) {
	ip := cfg.Input + 2*cfg.Pad
	if cfg.Pad == 0 {
		return plane[:ip*ip], ip
	}
	out := ws.Float32(ip * ip)
	for r := 0; r < cfg.Input; r++ {
		copy(out[(r+cfg.Pad)*ip+cfg.Pad:][:cfg.Input], plane[r*cfg.Input:][:cfg.Input])
	}
	return out, ip
}

// fftPlaneJob FFTs real planes (h×w each, stored flat in src) into
// flat n×n frequency grids in dst; pooled for allocation-free dispatch.
type fftPlaneJob struct {
	plan     *fft.Plan2D
	h, w, nn int
	src      []float32
	dst      []complex64
}

func (j *fftPlaneJob) Run(i int) {
	plane := j.src[i*j.h*j.w : (i+1)*j.h*j.w]
	j.plan.ForwardRealInto(plane, j.h, j.w, j.dst[i*j.nn:(i+1)*j.nn])
}

var fftPlanePool = newJobPool[fftPlaneJob]()

// fftPadPlaneJob FFTs zero-padded input channel planes: plane j is
// channel j%C of image j/C, padded to ip×ip before the transform.
type fftPadPlaneJob struct {
	cfg    Config
	plan   *fft.Plan2D
	nn     int
	imgLen int
	x      []float32
	dst    []complex64
}

func (j *fftPadPlaneJob) Run(i int) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	c := j.cfg.Channels
	bi, ci := i/c, i%c
	plane := j.x[bi*j.imgLen+ci*j.cfg.Input*j.cfg.Input:]
	padded, ip := paddedPlane(j.cfg, plane, ws)
	j.plan.ForwardRealInto(padded, ip, ip, j.dst[i*j.nn:(i+1)*j.nn])
}

var fftPadPlanePool = newJobPool[fftPadPlaneJob]()

// transformFiltersInto FFTs every (f, c) filter plane into flat n×n
// grids carved by the caller.
func transformFiltersInto(cfg Config, plan *fft.Plan2D, w []float32, dst []complex64) {
	k := cfg.Kernel
	j := fftPlanePool.Get()
	j.plan, j.h, j.w, j.nn = plan, k, k, plan.N()*plan.N()
	j.src, j.dst = w, dst
	par.ForEachRunner(cfg.Filters*cfg.Channels, j)
	j.src, j.dst = nil, nil
	fftPlanePool.Put(j)
}

// transformPaddedInputsInto FFTs every (batch, channel) input plane —
// zero-padded — into flat grids carved by the caller.
func transformPaddedInputsInto(cfg Config, plan *fft.Plan2D, x []float32, dst []complex64) {
	j := fftPadPlanePool.Get()
	j.cfg, j.plan, j.nn = cfg, plan, plan.N()*plan.N()
	j.imgLen = cfg.Channels * cfg.Input * cfg.Input
	j.x, j.dst = x, dst
	par.ForEachRunner(cfg.Batch*cfg.Channels, j)
	j.x, j.dst = nil, nil
	fftPadPlanePool.Put(j)
}

// fftFwdJob computes one image's outputs: it transforms the image's
// channel planes into per-worker arena grids (so the live grid
// footprint stays at workers×C×n², not batch×C×n²) and reduces them
// against the shared pre-transformed filter spectra.
type fftFwdJob struct {
	cfg    Config
	plan   *fft.Plan2D
	nn, o  int
	imgLen int
	x      []float32
	wgrids []complex64
	y      []float32
}

func (j *fftFwdJob) Run(bi int) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	cfg, nn, o := j.cfg, j.nn, j.o
	planeLen := cfg.Input * cfg.Input
	xg := ws.Complex64Uninit(cfg.Channels * nn)
	for c := 0; c < cfg.Channels; c++ {
		plane := j.x[bi*j.imgLen+c*planeLen:]
		padded, ip := paddedPlane(cfg, plane, ws)
		j.plan.ForwardRealInto(padded, ip, ip, xg[c*nn:(c+1)*nn])
	}
	acc := ws.Complex64Uninit(nn)
	for f := 0; f < cfg.Filters; f++ {
		clear(acc)
		for c := 0; c < cfg.Channels; c++ {
			gemm.CMulAccPointwise(acc, xg[c*nn:(c+1)*nn], j.wgrids[(f*cfg.Channels+c)*nn:(f*cfg.Channels+c+1)*nn], true)
		}
		j.plan.InverseRealInto(acc, j.y[(bi*cfg.Filters+f)*o*o:(bi*cfg.Filters+f+1)*o*o], o, o, 0, 0)
	}
}

var fftFwdPool = newJobPool[fftFwdJob]()

// FFTForward computes the convolution in the frequency domain:
// transform inputs and filters, multiply input spectra with conjugated
// filter spectra (correlation form), accumulate over channels, inverse
// transform, crop the valid o×o region. Requires stride 1.
func FFTForward(cfg Config, x, w, y *tensor.Tensor) {
	fftCheckStride(cfg)
	checkShapes(cfg, x, w, y)
	n := FFTPlanSize(cfg)
	plan := fft.Plan2DFor(n)
	nn := n * n
	ws := workspace.Get()
	defer workspace.Put(ws)
	wgrids := ws.Complex64Uninit(cfg.Filters * cfg.Channels * nn)
	transformFiltersInto(cfg, plan, w.Data, wgrids)
	j := fftFwdPool.Get()
	j.cfg, j.plan, j.nn, j.o = cfg, plan, nn, cfg.Out()
	j.imgLen = cfg.Channels * cfg.Input * cfg.Input
	j.x, j.wgrids, j.y = x.Data, wgrids, y.Data
	par.ForEachRunner(cfg.Batch, j)
	j.x, j.wgrids, j.y = nil, nil, nil
	fftFwdPool.Put(j)
}

// fftBwdDataJob computes one image's input gradient from
// pre-transformed output-gradient and filter spectra.
type fftBwdDataJob struct {
	cfg     Config
	plan    *fft.Plan2D
	nn      int
	dygrids []complex64
	wgrids  []complex64
	dx      []float32
}

func (j *fftBwdDataJob) Run(bi int) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	cfg, nn := j.cfg, j.nn
	i := cfg.Input
	acc := ws.Complex64Uninit(nn)
	dyg := j.dygrids[bi*cfg.Filters*nn:]
	for c := 0; c < cfg.Channels; c++ {
		clear(acc)
		for f := 0; f < cfg.Filters; f++ {
			gemm.CMulAccPointwise(acc, dyg[f*nn:(f+1)*nn], j.wgrids[(f*cfg.Channels+c)*nn:(f*cfg.Channels+c+1)*nn], false)
		}
		j.plan.InverseRealInto(acc, j.dx[(bi*cfg.Channels+c)*i*i:(bi*cfg.Channels+c+1)*i*i], i, i, cfg.Pad, cfg.Pad)
	}
}

var fftBwdDataPool = newJobPool[fftBwdDataJob]()

// FFTBackwardData computes dx in the frequency domain: the gradient is
// the full (non-conjugated) product of output-gradient spectra with
// filter spectra, summed over filters. Requires stride 1.
func FFTBackwardData(cfg Config, dy, w, dx *tensor.Tensor) {
	fftCheckStride(cfg)
	checkShapes(cfg, dx, w, dy)
	n := FFTPlanSize(cfg)
	plan := fft.Plan2DFor(n)
	nn := n * n
	o := cfg.Out()
	ws := workspace.Get()
	defer workspace.Put(ws)
	wgrids := ws.Complex64Uninit(cfg.Filters * cfg.Channels * nn)
	transformFiltersInto(cfg, plan, w.Data, wgrids)
	dygrids := ws.Complex64Uninit(cfg.Batch * cfg.Filters * nn)
	pj := fftPlanePool.Get()
	pj.plan, pj.h, pj.w, pj.nn = plan, o, o, nn
	pj.src, pj.dst = dy.Data, dygrids
	par.ForEachRunner(cfg.Batch*cfg.Filters, pj)
	pj.src, pj.dst = nil, nil
	fftPlanePool.Put(pj)
	j := fftBwdDataPool.Get()
	j.cfg, j.plan, j.nn = cfg, plan, nn
	j.dygrids, j.wgrids, j.dx = dygrids, wgrids, dx.Data
	par.ForEachRunner(cfg.Batch, j)
	j.dygrids, j.wgrids, j.dx = nil, nil, nil
	fftBwdDataPool.Put(j)
}

// fftBwdFilterJob reduces one (filter, channel) pair's gradient
// spectrum over the batch.
type fftBwdFilterJob struct {
	cfg     Config
	plan    *fft.Plan2D
	nn      int
	xgrids  []complex64
	dygrids []complex64
	dw      []float32
}

func (j *fftBwdFilterJob) Run(idx int) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	cfg, nn := j.cfg, j.nn
	k := cfg.Kernel
	f, c := idx/cfg.Channels, idx%cfg.Channels
	acc := ws.Complex64(nn)
	for bi := 0; bi < cfg.Batch; bi++ {
		gemm.CMulAccPointwise(acc, j.xgrids[(bi*cfg.Channels+c)*nn:(bi*cfg.Channels+c+1)*nn],
			j.dygrids[(bi*cfg.Filters+f)*nn:(bi*cfg.Filters+f+1)*nn], true)
	}
	j.plan.InverseRealInto(acc, j.dw[idx*k*k:(idx+1)*k*k], k, k, 0, 0)
}

var fftBwdFilterPool = newJobPool[fftBwdFilterJob]()

// FFTBackwardFilter computes dw in the frequency domain: for each
// (filter, channel) pair the gradient spectrum is Σ_batch X·conj(DY),
// inverse-transformed and cropped to k×k. Requires stride 1.
func FFTBackwardFilter(cfg Config, x, dy, dw *tensor.Tensor) {
	fftCheckStride(cfg)
	checkShapes(cfg, x, dw, dy)
	n := FFTPlanSize(cfg)
	plan := fft.Plan2DFor(n)
	nn := n * n
	o := cfg.Out()
	ws := workspace.Get()
	defer workspace.Put(ws)
	// Transform all activations and gradients up front; the per-(f,c)
	// reduction below then reads them without synchronisation.
	xgrids := ws.Complex64Uninit(cfg.Batch * cfg.Channels * nn)
	transformPaddedInputsInto(cfg, plan, x.Data, xgrids)
	dygrids := ws.Complex64Uninit(cfg.Batch * cfg.Filters * nn)
	pj := fftPlanePool.Get()
	pj.plan, pj.h, pj.w, pj.nn = plan, o, o, nn
	pj.src, pj.dst = dy.Data, dygrids
	par.ForEachRunner(cfg.Batch*cfg.Filters, pj)
	pj.src, pj.dst = nil, nil
	fftPlanePool.Put(pj)
	j := fftBwdFilterPool.Get()
	j.cfg, j.plan, j.nn = cfg, plan, nn
	j.xgrids, j.dygrids, j.dw = xgrids, dygrids, dw.Data
	par.ForEachRunner(cfg.Filters*cfg.Channels, j)
	j.xgrids, j.dygrids, j.dw = nil, nil, nil
	fftBwdFilterPool.Put(j)
}
