package conv

import (
	"fmt"

	"gpucnn/internal/fft"
	"gpucnn/internal/gemm"
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// FFTPlanSize returns the per-axis transform size used by the FFT
// strategy for a config: the padded input extent rounded up to a power
// of two. This rounding is what produces the step-function memory
// profile of fbfft in the paper's Figure 5.
func FFTPlanSize(cfg Config) int {
	return fft.NextPow2(cfg.Input + 2*cfg.Pad)
}

func fftCheckStride(cfg Config) {
	if cfg.Stride != 1 {
		panic(fmt.Sprintf("conv: FFT strategy requires stride 1, got %d (config %v)", cfg.Stride, cfg))
	}
}

// paddedImage copies one C×i×i image into a zero-padded C×ip×ip buffer,
// or returns the original slice when pad == 0.
func paddedImage(cfg Config, img []float32) ([]float32, int) {
	ip := cfg.Input + 2*cfg.Pad
	if cfg.Pad == 0 {
		return img, ip
	}
	out := make([]float32, cfg.Channels*ip*ip)
	for c := 0; c < cfg.Channels; c++ {
		for r := 0; r < cfg.Input; r++ {
			src := img[(c*cfg.Input+r)*cfg.Input:]
			dst := out[(c*ip+r+cfg.Pad)*ip+cfg.Pad:]
			copy(dst[:cfg.Input], src[:cfg.Input])
		}
	}
	return out, ip
}

// transformFilters FFTs every (f, c) filter plane into an n×n grid.
func transformFilters(cfg Config, plan *fft.Plan2D, w *tensor.Tensor) [][]complex64 {
	k := cfg.Kernel
	grids := make([][]complex64, cfg.Filters*cfg.Channels)
	par.ForEach(len(grids), func(j int) {
		grids[j] = plan.ForwardReal(w.Data[j*k*k:(j+1)*k*k], k, k)
	})
	return grids
}

// FFTForward computes the convolution in the frequency domain:
// transform inputs and filters, multiply input spectra with conjugated
// filter spectra (correlation form), accumulate over channels, inverse
// transform, crop the valid o×o region. Requires stride 1.
func FFTForward(cfg Config, x, w, y *tensor.Tensor) {
	fftCheckStride(cfg)
	checkShapes(cfg, x, w, y)
	n := FFTPlanSize(cfg)
	plan := fft.NewPlan2D(n)
	wgrids := transformFilters(cfg, plan, w)
	o := cfg.Out()
	imgLen := cfg.Channels * cfg.Input * cfg.Input
	par.ForEach(cfg.Batch, func(bi int) {
		img, ip := paddedImage(cfg, x.Data[bi*imgLen:(bi+1)*imgLen])
		xgrids := make([][]complex64, cfg.Channels)
		for c := 0; c < cfg.Channels; c++ {
			xgrids[c] = plan.ForwardReal(img[c*ip*ip:(c+1)*ip*ip], ip, ip)
		}
		acc := make([]complex64, plan.N()*plan.N())
		for f := 0; f < cfg.Filters; f++ {
			for i := range acc {
				acc[i] = 0
			}
			for c := 0; c < cfg.Channels; c++ {
				gemm.CMulAccPointwise(acc, xgrids[c], wgrids[f*cfg.Channels+c], true)
			}
			plan.InverseRealInto(acc, y.Data[((bi*cfg.Filters+f)*o*o):((bi*cfg.Filters+f)+1)*o*o], o, o, 0, 0)
		}
	})
}

// FFTBackwardData computes dx in the frequency domain: the gradient is
// the full (non-conjugated) product of output-gradient spectra with
// filter spectra, summed over filters. Requires stride 1.
func FFTBackwardData(cfg Config, dy, w, dx *tensor.Tensor) {
	fftCheckStride(cfg)
	checkShapes(cfg, dx, w, dy)
	n := FFTPlanSize(cfg)
	plan := fft.NewPlan2D(n)
	wgrids := transformFilters(cfg, plan, w)
	o := cfg.Out()
	i := cfg.Input
	par.ForEach(cfg.Batch, func(bi int) {
		dygrids := make([][]complex64, cfg.Filters)
		for f := 0; f < cfg.Filters; f++ {
			dygrids[f] = plan.ForwardReal(dy.Data[(bi*cfg.Filters+f)*o*o:(bi*cfg.Filters+f+1)*o*o], o, o)
		}
		acc := make([]complex64, plan.N()*plan.N())
		for c := 0; c < cfg.Channels; c++ {
			for j := range acc {
				acc[j] = 0
			}
			for f := 0; f < cfg.Filters; f++ {
				gemm.CMulAccPointwise(acc, dygrids[f], wgrids[f*cfg.Channels+c], false)
			}
			plan.InverseRealInto(acc, dx.Data[(bi*cfg.Channels+c)*i*i:(bi*cfg.Channels+c+1)*i*i], i, i, cfg.Pad, cfg.Pad)
		}
	})
}

// FFTBackwardFilter computes dw in the frequency domain: for each
// (filter, channel) pair the gradient spectrum is Σ_batch X·conj(DY),
// inverse-transformed and cropped to k×k. Requires stride 1.
func FFTBackwardFilter(cfg Config, x, dy, dw *tensor.Tensor) {
	fftCheckStride(cfg)
	checkShapes(cfg, x, dw, dy)
	n := FFTPlanSize(cfg)
	plan := fft.NewPlan2D(n)
	o := cfg.Out()
	k := cfg.Kernel
	imgLen := cfg.Channels * cfg.Input * cfg.Input
	// Transform all activations and gradients up front; the per-(f,c)
	// reduction below then reads them without synchronisation.
	xgrids := make([][]complex64, cfg.Batch*cfg.Channels)
	par.ForEach(len(xgrids), func(j int) {
		bi, c := j/cfg.Channels, j%cfg.Channels
		img, ip := paddedImage(cfg, x.Data[bi*imgLen:(bi+1)*imgLen])
		xgrids[j] = plan.ForwardReal(img[c*ip*ip:(c+1)*ip*ip], ip, ip)
	})
	dygrids := make([][]complex64, cfg.Batch*cfg.Filters)
	par.ForEach(len(dygrids), func(j int) {
		dygrids[j] = plan.ForwardReal(dy.Data[j*o*o:(j+1)*o*o], o, o)
	})
	par.ForEach(cfg.Filters*cfg.Channels, func(j int) {
		f, c := j/cfg.Channels, j%cfg.Channels
		acc := make([]complex64, plan.N()*plan.N())
		for bi := 0; bi < cfg.Batch; bi++ {
			gemm.CMulAccPointwise(acc, xgrids[bi*cfg.Channels+c], dygrids[bi*cfg.Filters+f], true)
		}
		plan.InverseRealInto(acc, dw.Data[j*k*k:(j+1)*k*k], k, k, 0, 0)
	})
}
