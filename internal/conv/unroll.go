package conv

import (
	"gpucnn/internal/gemm"
	"gpucnn/internal/im2col"
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// geom builds the im2col geometry for one image of the config.
func (c Config) geom() im2col.Geom {
	return im2col.Geom{
		C: c.Channels, H: c.Input, W: c.Input,
		KH: c.Kernel, KW: c.Kernel,
		StrideH: c.Stride, StrideW: c.Stride,
		PadH: c.Pad, PadW: c.Pad,
	}
}

// UnrollForward computes the convolution by lowering each image to a
// column matrix (im2col) and multiplying it by the filter bank viewed
// as an f×(c·k²) matrix — the Caffe/Torch-cunn/Theano-CorrMM scheme,
// one GEMM per image, parallel over the batch.
func UnrollForward(cfg Config, x, w, y *tensor.Tensor) {
	checkShapes(cfg, x, w, y)
	g := cfg.geom()
	rows, cols := g.ColRows(), g.ColCols()
	imgLen := cfg.Channels * cfg.Input * cfg.Input
	outLen := cfg.Filters * cols
	par.ForEach(cfg.Batch, func(n int) {
		col := make([]float32, rows*cols)
		im2col.Im2col(g, x.Data[n*imgLen:(n+1)*imgLen], col)
		// y_n (f×o²) = W (f×(c·k²)) · col ((c·k²)×o²)
		gemm.Blocked(1, w.Data, col, 0, y.Data[n*outLen:(n+1)*outLen], cfg.Filters, cols, rows)
	})
}

// UnrollBackwardData computes dx: per image, col = Wᵀ·dy_n followed by
// col2im to scatter-accumulate the gradient back to input pixels.
func UnrollBackwardData(cfg Config, dy, w, dx *tensor.Tensor) {
	checkShapes(cfg, dx, w, dy)
	g := cfg.geom()
	rows, cols := g.ColRows(), g.ColCols()
	imgLen := cfg.Channels * cfg.Input * cfg.Input
	outLen := cfg.Filters * cols
	par.ForEach(cfg.Batch, func(n int) {
		col := make([]float32, rows*cols)
		// col ((c·k²)×o²) = Wᵀ ((c·k²)×f) · dy_n (f×o²)
		gemm.TN(1, w.Data, dy.Data[n*outLen:(n+1)*outLen], 0, col, rows, cols, cfg.Filters)
		im2col.Col2im(g, col, dx.Data[n*imgLen:(n+1)*imgLen])
	})
}

// UnrollBackwardFilter computes dw = Σ_n dy_n · col_nᵀ. Per-image
// partial products are computed in parallel and reduced at the end, so
// no worker writes shared state.
func UnrollBackwardFilter(cfg Config, x, dy, dw *tensor.Tensor) {
	checkShapes(cfg, x, dw, dy)
	g := cfg.geom()
	rows, cols := g.ColRows(), g.ColCols()
	imgLen := cfg.Channels * cfg.Input * cfg.Input
	outLen := cfg.Filters * cols
	wLen := cfg.Filters * rows
	partials := make([][]float32, cfg.Batch)
	par.ForEach(cfg.Batch, func(n int) {
		col := make([]float32, rows*cols)
		im2col.Im2col(g, x.Data[n*imgLen:(n+1)*imgLen], col)
		partial := make([]float32, wLen)
		// dw_n (f×(c·k²)) = dy_n (f×o²) · colᵀ (o²×(c·k²)) — NT form
		// with B stored row-major as (c·k²)×o².
		gemm.NT(1, dy.Data[n*outLen:(n+1)*outLen], col, 0, partial, cfg.Filters, rows, cols)
		partials[n] = partial
	})
	for i := range dw.Data {
		dw.Data[i] = 0
	}
	for _, partial := range partials {
		for i, v := range partial {
			dw.Data[i] += v
		}
	}
}
