package conv

import (
	"runtime"

	"gpucnn/internal/gemm"
	"gpucnn/internal/im2col"
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workspace"
)

// geom builds the im2col geometry for one image of the config.
func (c Config) geom() im2col.Geom {
	return im2col.Geom{
		C: c.Channels, H: c.Input, W: c.Input,
		KH: c.Kernel, KW: c.Kernel,
		StrideH: c.Stride, StrideW: c.Stride,
		PadH: c.Pad, PadW: c.Pad,
	}
}

// unrollFwdJob is the pooled per-image work unit of UnrollForward. The
// lowered column matrix is never materialised: a pooled im2col
// PanelPacker generates each packed B micro-panel on demand inside the
// GEMM (fused im2col→pack), so the engine's former dominant workspace
// carve-out — rows×cols floats per worker — is gone entirely.
type unrollFwdJob struct {
	g              im2col.Geom
	rows, cols     int
	imgLen, outLen int
	filters        int
	x, w, y        []float32
}

//hot:noalloc
func (j *unrollFwdJob) Run(n int) {
	pk := im2col.GetPacker()
	pk.Reset(j.g, j.x[n*j.imgLen:(n+1)*j.imgLen])
	// y_n (f×o²) = W (f×(c·k²)) · col ((c·k²)×o²), col virtual
	gemm.BlockedVirtualB(1, j.w, pk, 0, j.y[n*j.outLen:(n+1)*j.outLen], j.filters, j.cols, j.rows)
	im2col.PutPacker(pk)
}

var unrollFwdPool = newJobPool[unrollFwdJob]()

// UnrollForward computes the convolution by lowering each image to a
// column matrix (im2col) and multiplying it by the filter bank viewed
// as an f×(c·k²) matrix — the Caffe/Torch-cunn/Theano-CorrMM scheme,
// one GEMM per image, parallel over the batch. The lowering is fused
// into the GEMM's packing, so the column matrix only ever exists as
// L1-resident micro-panels.
func UnrollForward(cfg Config, x, w, y *tensor.Tensor) {
	checkShapes(cfg, x, w, y)
	g := cfg.geom()
	j := unrollFwdPool.Get()
	j.g, j.rows, j.cols = g, g.ColRows(), g.ColCols()
	j.imgLen = cfg.Channels * cfg.Input * cfg.Input
	j.outLen = cfg.Filters * j.cols
	j.filters = cfg.Filters
	j.x, j.w, j.y = x.Data, w.Data, y.Data
	par.ForEachRunner(cfg.Batch, j)
	j.x, j.w, j.y = nil, nil, nil
	unrollFwdPool.Put(j)
}

// unrollBwdDataJob is the pooled per-image work unit of
// UnrollBackwardData.
type unrollBwdDataJob struct {
	g              im2col.Geom
	rows, cols     int
	imgLen, outLen int
	filters        int
	dy, w, dx      []float32
}

func (j *unrollBwdDataJob) Run(n int) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	col := ws.Float32Uninit(j.rows * j.cols)
	// col ((c·k²)×o²) = Wᵀ ((c·k²)×f) · dy_n (f×o²)
	gemm.TN(1, j.w, j.dy[n*j.outLen:(n+1)*j.outLen], 0, col, j.rows, j.cols, j.filters)
	im2col.Col2im(j.g, col, j.dx[n*j.imgLen:(n+1)*j.imgLen])
}

var unrollBwdDataPool = newJobPool[unrollBwdDataJob]()

// UnrollBackwardData computes dx: per image, col = Wᵀ·dy_n followed by
// col2im to scatter-accumulate the gradient back to input pixels.
func UnrollBackwardData(cfg Config, dy, w, dx *tensor.Tensor) {
	checkShapes(cfg, dx, w, dy)
	g := cfg.geom()
	j := unrollBwdDataPool.Get()
	j.g, j.rows, j.cols = g, g.ColRows(), g.ColCols()
	j.imgLen = cfg.Channels * cfg.Input * cfg.Input
	j.outLen = cfg.Filters * j.cols
	j.filters = cfg.Filters
	j.dy, j.w, j.dx = dy.Data, w.Data, dx.Data
	par.ForEachRunner(cfg.Batch, j)
	j.dy, j.w, j.dx = nil, nil, nil
	unrollBwdDataPool.Put(j)
}

// unrollBwdFilterJob processes one contiguous chunk of the batch,
// accumulating that chunk's filter gradient into its own partial buffer
// (one buffer per chunk, not per sample — the per-sample `partial`
// allocation this replaces dominated backward-filter GC traffic).
type unrollBwdFilterJob struct {
	g              im2col.Geom
	rows, cols     int
	imgLen, outLen int
	filters, wLen  int
	batch, per     int
	x, dy          []float32
	partials       []float32
}

//hot:noalloc
func (j *unrollBwdFilterJob) Run(ci int) {
	lo := ci * j.per
	hi := lo + j.per
	if hi > j.batch {
		hi = j.batch
	}
	partial := j.partials[ci*j.wLen : (ci+1)*j.wLen]
	pk := im2col.GetPacker()
	for n := lo; n < hi; n++ {
		// dw_n (f×(c·k²)) = dy_n (f×o²) · colᵀ (o²×(c·k²)) — an NN GEMM
		// against the virtual transposed lowering; beta=1 accumulates
		// straight into the chunk partial and col is never materialised.
		pk.ResetTransposed(j.g, j.x[n*j.imgLen:(n+1)*j.imgLen])
		gemm.BlockedVirtualB(1, j.dy[n*j.outLen:(n+1)*j.outLen], pk, 1, partial, j.filters, j.rows, j.cols)
	}
	im2col.PutPacker(pk)
}

var unrollBwdFilterPool = newJobPool[unrollBwdFilterJob]()

// UnrollBackwardFilter computes dw = Σ_n dy_n · col_nᵀ. The batch is
// split into one chunk per worker; each chunk accumulates into a
// private arena-carved partial and the partials are reduced serially,
// so no worker writes shared state.
func UnrollBackwardFilter(cfg Config, x, dy, dw *tensor.Tensor) {
	checkShapes(cfg, x, dw, dy)
	g := cfg.geom()
	workers := runtime.GOMAXPROCS(0)
	if workers > cfg.Batch {
		workers = cfg.Batch
	}
	wLen := cfg.Filters * g.ColRows()
	ws := workspace.Get()
	defer workspace.Put(ws)
	partials := ws.Float32(workers * wLen)
	j := unrollBwdFilterPool.Get()
	j.g, j.rows, j.cols = g, g.ColRows(), g.ColCols()
	j.imgLen = cfg.Channels * cfg.Input * cfg.Input
	j.outLen = cfg.Filters * j.cols
	j.filters, j.wLen = cfg.Filters, wLen
	j.batch, j.per = cfg.Batch, (cfg.Batch+workers-1)/workers
	j.x, j.dy, j.partials = x.Data, dy.Data, partials
	par.ForEachNRunner(workers, workers, j)
	j.x, j.dy, j.partials = nil, nil, nil
	unrollBwdFilterPool.Put(j)
	clear(dw.Data)
	for w := 0; w < workers; w++ {
		partial := partials[w*wLen : (w+1)*wLen]
		for i, v := range partial {
			dw.Data[i] += v
		}
	}
}
