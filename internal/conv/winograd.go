package conv

import (
	"fmt"

	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workspace"
)

// Winograd F(2×2, 3×3) convolution — the minimal-filtering algorithm
// (Lavin & Gray) that cuDNN adopted after the paper's study. It is
// implemented here as the paper's "opportunities for further
// optimization": for 3×3/stride-1 layers it needs 2.25× fewer
// multiplications than direct or unrolled convolution (16 multiplies
// per 4 outputs per channel instead of 36).
//
// Transforms for one 4×4 input tile d and 3×3 filter g:
//
//	U = G·g·Gᵀ   V = Bᵀ·d·B   M = Σ_c U ⊙ V   y = Aᵀ·M·A (2×2)
//
// with the standard F(2,3) matrices G (4×3), Bᵀ (4×4), Aᵀ (2×4).

// winogradFilter computes U = G·g·Gᵀ for one 3×3 filter plane into a
// 16-element tile.
func winogradFilter(g []float32, u *[16]float32) {
	// t = G·g (4×3), with G = [[1,0,0],[½,½,½],[½,−½,½],[0,0,1]].
	var t [4][3]float32
	for c := 0; c < 3; c++ {
		g0, g1, g2 := g[0*3+c], g[1*3+c], g[2*3+c]
		t[0][c] = g0
		t[1][c] = 0.5 * (g0 + g1 + g2)
		t[2][c] = 0.5 * (g0 - g1 + g2)
		t[3][c] = g2
	}
	// U = t·Gᵀ (4×4).
	for r := 0; r < 4; r++ {
		a, b, c := t[r][0], t[r][1], t[r][2]
		u[r*4+0] = a
		u[r*4+1] = 0.5 * (a + b + c)
		u[r*4+2] = 0.5 * (a - b + c)
		u[r*4+3] = c
	}
}

// winogradInput computes V = Bᵀ·d·B for one 4×4 input tile, with
// Bᵀ = [[1,0,−1,0],[0,1,1,0],[0,−1,1,0],[0,1,0,−1]].
func winogradInput(d *[16]float32, v *[16]float32) {
	var t [16]float32
	// t = Bᵀ·d
	for c := 0; c < 4; c++ {
		d0, d1, d2, d3 := d[0*4+c], d[1*4+c], d[2*4+c], d[3*4+c]
		t[0*4+c] = d0 - d2
		t[1*4+c] = d1 + d2
		t[2*4+c] = d2 - d1
		t[3*4+c] = d1 - d3
	}
	// v = t·B
	for r := 0; r < 4; r++ {
		t0, t1, t2, t3 := t[r*4+0], t[r*4+1], t[r*4+2], t[r*4+3]
		v[r*4+0] = t0 - t2
		v[r*4+1] = t1 + t2
		v[r*4+2] = t2 - t1
		v[r*4+3] = t1 - t3
	}
}

// winogradOutput computes y = Aᵀ·m·A (2×2) with Aᵀ = [[1,1,1,0],[0,1,−1,−1]].
func winogradOutput(m *[16]float32, y *[4]float32) {
	var t [8]float32
	for c := 0; c < 4; c++ {
		m0, m1, m2, m3 := m[0*4+c], m[1*4+c], m[2*4+c], m[3*4+c]
		t[0*4+c] = m0 + m1 + m2
		t[1*4+c] = m1 - m2 - m3
	}
	for r := 0; r < 2; r++ {
		t0, t1, t2, t3 := t[r*4+0], t[r*4+1], t[r*4+2], t[r*4+3]
		y[r*2+0] = t0 + t1 + t2
		y[r*2+1] = t1 - t2 - t3
	}
}

// WinogradSupported reports whether the config fits F(2×2,3×3).
func WinogradSupported(cfg Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Kernel != 3 {
		return fmt.Errorf("conv: winograd F(2x2,3x3) requires kernel 3, got %d", cfg.Kernel)
	}
	if cfg.Stride != 1 {
		return fmt.Errorf("conv: winograd F(2x2,3x3) requires stride 1, got %d", cfg.Stride)
	}
	return nil
}

// wgFilterJob transforms filter planes into a flat arena-carved U
// buffer (16 floats per plane); pooled for allocation-free dispatch.
type wgFilterJob struct {
	w, us []float32
}

func (j *wgFilterJob) Run(i int) {
	winogradFilter(j.w[i*9:(i+1)*9], (*[16]float32)(j.us[i*16:(i+1)*16]))
}

var wgFilterPool = newJobPool[wgFilterJob]()

// wgTileJob computes one (batch, filter) output plane from the
// pre-transformed filter bank.
type wgTileJob struct {
	c, i, f, p, o int
	x, us, y      []float32
}

func (j *wgTileJob) Run(job int) {
	c, i, p, o := j.c, j.i, j.p, j.o
	tilesY := (o + 1) / 2
	tilesX := (o + 1) / 2
	n, fi := job/j.f, job%j.f
	out := j.y[(n*j.f+fi)*o*o:]
	var d, v, m [16]float32
	var ytile [4]float32
	for ty := 0; ty < tilesY; ty++ {
		for tx := 0; tx < tilesX; tx++ {
			for k := range m {
				m[k] = 0
			}
			for ci := 0; ci < c; ci++ {
				// Gather the 4×4 input tile (with padding).
				xChan := j.x[(n*c+ci)*i*i:]
				for r := 0; r < 4; r++ {
					iy := ty*2 + r - p
					for cc := 0; cc < 4; cc++ {
						ix := tx*2 + cc - p
						if iy < 0 || iy >= i || ix < 0 || ix >= i {
							d[r*4+cc] = 0
						} else {
							d[r*4+cc] = xChan[iy*i+ix]
						}
					}
				}
				winogradInput(&d, &v)
				u := (*[16]float32)(j.us[(fi*c+ci)*16:])
				for k := 0; k < 16; k++ {
					m[k] += u[k] * v[k]
				}
			}
			winogradOutput(&m, &ytile)
			// Scatter the 2×2 output tile (clipping the ragged edge).
			for r := 0; r < 2; r++ {
				oy := ty*2 + r
				if oy >= o {
					continue
				}
				for cc := 0; cc < 2; cc++ {
					ox := tx*2 + cc
					if ox >= o {
						continue
					}
					out[oy*o+ox] = ytile[r*2+cc]
				}
			}
		}
	}
}

var wgTilePool = newJobPool[wgTileJob]()

// WinogradForward computes y = x ⋆ w with the F(2×2, 3×3) minimal
// filtering algorithm. Results match DirectForward within float32
// round-off. Work is distributed over (batch, filter) pairs.
func WinogradForward(cfg Config, x, w, y *tensor.Tensor) {
	if err := WinogradSupported(cfg); err != nil {
		panic(err)
	}
	checkShapes(cfg, x, w, y)
	winogradForwardRaw(cfg, x.Data, w.Data, y.Data)
}

// winogradForwardRaw is WinogradForward on raw slices, used by the
// backward-data pass so the reinterpreted filter bank can live in an
// arena carve-out instead of a fresh tensor.
func winogradForwardRaw(cfg Config, x, w, y []float32) {
	f, c := cfg.Filters, cfg.Channels
	ws := workspace.Get()
	defer workspace.Put(ws)
	// Pre-transform every filter plane: U[f][c] is 16 floats, stored
	// flat in the arena.
	us := ws.Float32Uninit(f * c * 16)
	fj := wgFilterPool.Get()
	fj.w, fj.us = w, us
	par.ForEachRunner(f*c, fj)
	fj.w, fj.us = nil, nil
	wgFilterPool.Put(fj)

	tj := wgTilePool.Get()
	tj.c, tj.i, tj.f, tj.p, tj.o = c, cfg.Input, f, cfg.Pad, cfg.Out()
	tj.x, tj.us, tj.y = x, us, y
	par.ForEachRunner(cfg.Batch*f, tj)
	tj.x, tj.us, tj.y = nil, nil, nil
	wgTilePool.Put(tj)
}

// WinogradMultiplies returns the number of elementwise multiplies the
// F(2×2,3×3) forward pass performs: 16 per tile per (b, f, c) triple —
// the 2.25× arithmetic reduction over direct convolution's 36.
func WinogradMultiplies(cfg Config) float64 {
	o := cfg.Out()
	tiles := float64((o + 1) / 2 * ((o + 1) / 2))
	return 16 * tiles * float64(cfg.Batch) * float64(cfg.Filters) * float64(cfg.Channels)
}

// WinogradBackwardData computes dx for a 3×3/stride-1 layer with the
// same minimal-filtering algorithm: the data gradient is itself a full
// 3×3 correlation of the padded output gradient with the
// spatially-rotated, channel-transposed filter bank, so WinogradForward
// applies directly to a reinterpreted configuration.
func WinogradBackwardData(cfg Config, dy, w, dx *tensor.Tensor) {
	if err := WinogradSupported(cfg); err != nil {
		panic(err)
	}
	checkShapes(cfg, dx, w, dy)
	o := cfg.Out()
	// Reinterpreted geometry: "input" is dy (f channels, o×o), "filters"
	// are the rotated transposed bank (c filters over f channels), and
	// full-correlation padding k-1-p recovers the i×i gradient.
	back := Config{
		Batch: cfg.Batch, Input: o, Channels: cfg.Filters,
		Filters: cfg.Channels, Kernel: cfg.Kernel, Stride: 1,
		Pad: cfg.Kernel - 1 - cfg.Pad,
	}
	if got := back.Out(); got != cfg.Input {
		panic(fmt.Sprintf("conv: winograd backward geometry produced %d, want %d", got, cfg.Input))
	}
	// wT[c][f] = rot180(w[f][c]), built in an arena carve-out.
	k := cfg.Kernel
	ws := workspace.Get()
	defer workspace.Put(ws)
	wT := ws.Float32Uninit(cfg.Channels * cfg.Filters * k * k)
	rj := wgRotPool.Get()
	rj.k2, rj.f, rj.c = k*k, cfg.Filters, cfg.Channels
	rj.w, rj.wT = w.Data, wT
	par.ForEachRunner(cfg.Filters*cfg.Channels, rj)
	rj.w, rj.wT = nil, nil
	wgRotPool.Put(rj)
	winogradForwardRaw(back, dy.Data, wT, dx.Data)
}

// wgRotJob builds the rotated, channel-transposed filter bank used by
// the backward-data pass.
type wgRotJob struct {
	k2, f, c int
	w, wT    []float32
}

func (j *wgRotJob) Run(idx int) {
	f, c := idx/j.c, idx%j.c
	src := j.w[(f*j.c+c)*j.k2:]
	dst := j.wT[(c*j.f+f)*j.k2:]
	for t := 0; t < j.k2; t++ {
		dst[t] = src[j.k2-1-t]
	}
}

var wgRotPool = newJobPool[wgRotJob]()
