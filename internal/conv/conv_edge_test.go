package conv

import (
	"testing"

	"gpucnn/internal/tensor"
)

// Edge geometries: 1×1 kernels, kernel == input, single-pixel outputs,
// and batch-size-1 paths through every strategy.

func TestOneByOneKernelAllStrategies(t *testing.T) {
	cfg := Config{Batch: 2, Input: 8, Channels: 3, Filters: 4, Kernel: 1, Stride: 1}
	x, w := randTensors(cfg, 101)
	ref := tensor.New(cfg.OutputShape()...)
	DirectForward(cfg, x, w, ref)
	// A 1×1 convolution is a per-pixel channel mix; verify one element
	// by hand.
	var want float32
	for c := 0; c < 3; c++ {
		want += x.At(0, c, 2, 3) * w.At(1, c, 0, 0)
	}
	if got := ref.At(0, 1, 2, 3); absDiff(got, want) > 1e-5 {
		t.Fatalf("1x1 reference wrong: %v vs %v", got, want)
	}
	for name, fwd := range map[string]Forwarder{"unroll": UnrollForward, "fft": FFTForward} {
		y := tensor.New(cfg.OutputShape()...)
		fwd(cfg, x, w, y)
		if !tensor.AllClose(ref, y, 1e-3) {
			t.Errorf("%s differs on 1x1 kernel: %g", name, tensor.RelDiff(ref, y))
		}
	}
}

func TestKernelEqualsInput(t *testing.T) {
	// k == i collapses the output to a single pixel (a full dot
	// product — an FC layer in disguise).
	cfg := Config{Batch: 2, Input: 7, Channels: 2, Filters: 3, Kernel: 7, Stride: 1}
	if cfg.Out() != 1 {
		t.Fatalf("out = %d, want 1", cfg.Out())
	}
	x, w := randTensors(cfg, 102)
	ref := tensor.New(cfg.OutputShape()...)
	DirectForward(cfg, x, w, ref)
	for name, fwd := range map[string]Forwarder{"unroll": UnrollForward, "fft": FFTForward} {
		y := tensor.New(cfg.OutputShape()...)
		fwd(cfg, x, w, y)
		if !tensor.AllClose(ref, y, 1e-3) {
			t.Errorf("%s differs with kernel==input: %g", name, tensor.RelDiff(ref, y))
		}
	}
}

func TestBatchOfOne(t *testing.T) {
	cfg := Config{Batch: 1, Input: 9, Channels: 2, Filters: 2, Kernel: 3, Stride: 2}
	x, w := randTensors(cfg, 103)
	y1 := tensor.New(cfg.OutputShape()...)
	y2 := tensor.New(cfg.OutputShape()...)
	DirectForward(cfg, x, w, y1)
	UnrollForward(cfg, x, w, y2)
	if !tensor.AllClose(y1, y2, 1e-4) {
		t.Fatal("batch-1 strided disagreement")
	}
}

func TestLargePaddingBeyondKernel(t *testing.T) {
	// Padding larger than the kernel still has a well-defined output.
	cfg := Config{Batch: 1, Input: 4, Channels: 1, Filters: 1, Kernel: 3, Stride: 1, Pad: 3}
	x, w := randTensors(cfg, 104)
	y1 := tensor.New(cfg.OutputShape()...)
	y2 := tensor.New(cfg.OutputShape()...)
	y3 := tensor.New(cfg.OutputShape()...)
	DirectForward(cfg, x, w, y1)
	UnrollForward(cfg, x, w, y2)
	FFTForward(cfg, x, w, y3)
	if !tensor.AllClose(y1, y2, 1e-4) || !tensor.AllClose(y1, y3, 1e-3) {
		t.Fatal("large-padding disagreement")
	}
	// Corner outputs see only padding -> exactly zero.
	if y1.At(0, 0, 0, 0) != 0 {
		t.Fatalf("all-padding corner = %v, want 0", y1.At(0, 0, 0, 0))
	}
}

func TestZeroInputGivesZeroOutput(t *testing.T) {
	cfg := Config{Batch: 2, Input: 8, Channels: 2, Filters: 3, Kernel: 3, Stride: 1}
	x := tensor.New(cfg.InputShape()...)
	_, w := randTensors(cfg, 105)
	for name, fwd := range map[string]Forwarder{"direct": DirectForward, "unroll": UnrollForward, "fft": FFTForward} {
		y := tensor.New(cfg.OutputShape()...)
		y.Fill(9)
		fwd(cfg, x, w, y)
		if y.AbsMax() > 1e-5 {
			t.Errorf("%s: zero input must give zero output, max %v", name, y.AbsMax())
		}
	}
}

// TestLinearityInInput: conv(a·x1 + x2) = a·conv(x1) + conv(x2) for
// every strategy (convolution is linear).
func TestLinearityInInput(t *testing.T) {
	cfg := Config{Batch: 1, Input: 10, Channels: 2, Filters: 2, Kernel: 3, Stride: 1}
	x1, w := randTensors(cfg, 106)
	x2, _ := randTensors(cfg, 107)
	combo := x1.Clone()
	combo.Scale(2.5)
	combo.AddScaled(x2, 1)
	for name, fwd := range map[string]Forwarder{"direct": DirectForward, "unroll": UnrollForward, "fft": FFTForward} {
		yCombo := tensor.New(cfg.OutputShape()...)
		fwd(cfg, combo, w, yCombo)
		y1 := tensor.New(cfg.OutputShape()...)
		fwd(cfg, x1, w, y1)
		y2 := tensor.New(cfg.OutputShape()...)
		fwd(cfg, x2, w, y2)
		want := y1.Clone()
		want.Scale(2.5)
		want.AddScaled(y2, 1)
		if !tensor.AllClose(yCombo, want, 1e-3) {
			t.Errorf("%s violates linearity: %g", name, tensor.RelDiff(yCombo, want))
		}
	}
}
