package conv

import (
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workspace"
)

// Winograd F(4×4, 3×3): the higher-order minimal-filtering variant with
// 6×6 input tiles and 4×4 output tiles — 36 multiplies per 16 outputs
// per channel against direct convolution's 144, a 4× reduction (at the
// price of larger transform constants and hence more float32 round-off,
// which is why production libraries bound its use; the tests assert a
// correspondingly looser tolerance).

// f4BT is the 6×6 input transform Bᵀ.
var f4BT = [6][6]float32{
	{4, 0, -5, 0, 1, 0},
	{0, -4, -4, 1, 1, 0},
	{0, 4, -4, -1, 1, 0},
	{0, -2, -1, 2, 1, 0},
	{0, 2, -1, -2, 1, 0},
	{0, 4, 0, -5, 0, 1},
}

// f4G is the 6×3 filter transform G.
var f4G = [6][3]float32{
	{1.0 / 4, 0, 0},
	{-1.0 / 6, -1.0 / 6, -1.0 / 6},
	{-1.0 / 6, 1.0 / 6, -1.0 / 6},
	{1.0 / 24, 1.0 / 12, 1.0 / 6},
	{1.0 / 24, -1.0 / 12, 1.0 / 6},
	{0, 0, 1},
}

// f4AT is the 4×6 output transform Aᵀ.
var f4AT = [4][6]float32{
	{1, 1, 1, 1, 1, 0},
	{0, 1, -1, 2, -2, 0},
	{0, 1, 1, 4, 4, 0},
	{0, 1, -1, 8, -8, 1},
}

// winograd4Filter computes U = G·g·Gᵀ (6×6) for one 3×3 filter plane.
func winograd4Filter(g []float32, u *[36]float32) {
	// t = G·g (6×3)
	var t [6][3]float32
	for r := 0; r < 6; r++ {
		for c := 0; c < 3; c++ {
			var acc float32
			for k := 0; k < 3; k++ {
				acc += f4G[r][k] * g[k*3+c]
			}
			t[r][c] = acc
		}
	}
	// U = t·Gᵀ (6×6)
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			var acc float32
			for k := 0; k < 3; k++ {
				acc += t[r][k] * f4G[c][k]
			}
			u[r*6+c] = acc
		}
	}
}

// winograd4Input computes V = Bᵀ·d·B (6×6) for one 6×6 input tile.
func winograd4Input(d *[36]float32, v *[36]float32) {
	var t [36]float32
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			var acc float32
			for k := 0; k < 6; k++ {
				acc += f4BT[r][k] * d[k*6+c]
			}
			t[r*6+c] = acc
		}
	}
	for r := 0; r < 6; r++ {
		for c := 0; c < 6; c++ {
			var acc float32
			for k := 0; k < 6; k++ {
				acc += t[r*6+k] * f4BT[c][k]
			}
			v[r*6+c] = acc
		}
	}
}

// winograd4Output computes y = Aᵀ·m·A (4×4).
func winograd4Output(m *[36]float32, y *[16]float32) {
	var t [4][6]float32
	for r := 0; r < 4; r++ {
		for c := 0; c < 6; c++ {
			var acc float32
			for k := 0; k < 6; k++ {
				acc += f4AT[r][k] * m[k*6+c]
			}
			t[r][c] = acc
		}
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			var acc float32
			for k := 0; k < 6; k++ {
				acc += t[r][k] * f4AT[c][k]
			}
			y[r*4+c] = acc
		}
	}
}

// wg4FilterJob transforms filter planes into a flat arena-carved U
// buffer (36 floats per plane).
type wg4FilterJob struct {
	w, us []float32
}

func (j *wg4FilterJob) Run(i int) {
	winograd4Filter(j.w[i*9:(i+1)*9], (*[36]float32)(j.us[i*36:(i+1)*36]))
}

var wg4FilterPool = newJobPool[wg4FilterJob]()

// wg4TileJob computes one (batch, filter) output plane.
type wg4TileJob struct {
	c, i, f, p, o int
	x, us, y      []float32
}

func (j *wg4TileJob) Run(job int) {
	c, i, p, o := j.c, j.i, j.p, j.o
	tiles := (o + 3) / 4
	n, fi := job/j.f, job%j.f
	out := j.y[(n*j.f+fi)*o*o:]
	var d, v, m [36]float32
	var ytile [16]float32
	for ty := 0; ty < tiles; ty++ {
		for tx := 0; tx < tiles; tx++ {
			for k := range m {
				m[k] = 0
			}
			for ci := 0; ci < c; ci++ {
				xChan := j.x[(n*c+ci)*i*i:]
				for r := 0; r < 6; r++ {
					iy := ty*4 + r - p
					for cc := 0; cc < 6; cc++ {
						ix := tx*4 + cc - p
						if iy < 0 || iy >= i || ix < 0 || ix >= i {
							d[r*6+cc] = 0
						} else {
							d[r*6+cc] = xChan[iy*i+ix]
						}
					}
				}
				winograd4Input(&d, &v)
				u := (*[36]float32)(j.us[(fi*c+ci)*36:])
				for k := 0; k < 36; k++ {
					m[k] += u[k] * v[k]
				}
			}
			winograd4Output(&m, &ytile)
			for r := 0; r < 4; r++ {
				oy := ty*4 + r
				if oy >= o {
					continue
				}
				for cc := 0; cc < 4; cc++ {
					ox := tx*4 + cc
					if ox >= o {
						continue
					}
					out[oy*o+ox] = ytile[r*4+cc]
				}
			}
		}
	}
}

var wg4TilePool = newJobPool[wg4TileJob]()

// Winograd4Forward computes y = x ⋆ w with F(4×4, 3×3). Shape limits
// are the same as WinogradForward (3×3 kernels, stride 1).
func Winograd4Forward(cfg Config, x, w, y *tensor.Tensor) {
	if err := WinogradSupported(cfg); err != nil {
		panic(err)
	}
	checkShapes(cfg, x, w, y)
	f, c := cfg.Filters, cfg.Channels
	ws := workspace.Get()
	defer workspace.Put(ws)
	us := ws.Float32Uninit(f * c * 36)
	fj := wg4FilterPool.Get()
	fj.w, fj.us = w.Data, us
	par.ForEachRunner(f*c, fj)
	fj.w, fj.us = nil, nil
	wg4FilterPool.Put(fj)

	tj := wg4TilePool.Get()
	tj.c, tj.i, tj.f, tj.p, tj.o = c, cfg.Input, f, cfg.Pad, cfg.Out()
	tj.x, tj.us, tj.y = x.Data, us, y.Data
	par.ForEachRunner(cfg.Batch*f, tj)
	tj.x, tj.us, tj.y = nil, nil, nil
	wg4TilePool.Put(tj)
}

// Winograd4Multiplies returns the elementwise multiply count of
// F(4×4,3×3): 36 per tile per (b, f, c) triple — a 4× reduction over
// direct convolution when outputs align to the 4×4 tile.
func Winograd4Multiplies(cfg Config) float64 {
	o := cfg.Out()
	tiles := float64((o + 3) / 4 * ((o + 3) / 4))
	return 36 * tiles * float64(cfg.Batch) * float64(cfg.Filters) * float64(cfg.Channels)
}
