// Package conv defines the convolution-layer configuration space used
// throughout the paper (the 5-tuple (b, i, f, k, s)) and implements the
// three convolution strategies the surveyed frameworks follow — direct,
// unrolling (im2col + GEMM), and FFT — each with forward, backward-data,
// and backward-filter passes. These are the reference algorithms the
// seven engine implementations in internal/impls are built from and
// cross-validated against.
//
// Like the paper's frameworks, "convolution" here is cross-correlation
// (no kernel flip), which is the convention of Caffe, Torch and cuDNN.
package conv

import (
	"fmt"

	"gpucnn/internal/tensor"
)

// Config is the paper's 5-tuple (b, i, f, k, s) extended with the input
// channel count (the paper leaves c implicit; we default it to 3, the
// RGB depth of the first layer of a real network) and optional padding.
// Input images and kernels are square, matching the paper's setup.
type Config struct {
	Batch    int // b: mini-batch size
	Input    int // i: input spatial extent (square)
	Channels int // c: input feature maps
	Filters  int // f: output feature maps
	Kernel   int // k: kernel extent (square)
	Stride   int // s
	Pad      int // zero padding on each border
}

// WithDefaults returns the config with Channels defaulted to 3 and
// Stride defaulted to 1 if unset.
func (c Config) WithDefaults() Config {
	if c.Channels == 0 {
		c.Channels = 3
	}
	if c.Stride == 0 {
		c.Stride = 1
	}
	return c
}

// Out returns the output spatial extent.
func (c Config) Out() int {
	return (c.Input+2*c.Pad-c.Kernel)/c.Stride + 1
}

// Validate reports an error for configurations no strategy can run.
func (c Config) Validate() error {
	if c.Batch <= 0 || c.Input <= 0 || c.Channels <= 0 || c.Filters <= 0 || c.Kernel <= 0 {
		return fmt.Errorf("conv: non-positive dimension in %v", c)
	}
	if c.Stride <= 0 {
		return fmt.Errorf("conv: non-positive stride in %v", c)
	}
	if c.Pad < 0 {
		return fmt.Errorf("conv: negative padding in %v", c)
	}
	if c.Input+2*c.Pad < c.Kernel {
		return fmt.Errorf("conv: kernel %d larger than padded input %d", c.Kernel, c.Input+2*c.Pad)
	}
	return nil
}

// String renders the config as the paper's tuple, e.g. "(64,128,64,11,1)".
func (c Config) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d,%d)", c.Batch, c.Input, c.Filters, c.Kernel, c.Stride)
}

// InputShape returns the NCHW activation shape.
func (c Config) InputShape() tensor.Shape {
	return tensor.Shape{c.Batch, c.Channels, c.Input, c.Input}
}

// FilterShape returns the FCHW filter-bank shape.
func (c Config) FilterShape() tensor.Shape {
	return tensor.Shape{c.Filters, c.Channels, c.Kernel, c.Kernel}
}

// OutputShape returns the NCHW output shape.
func (c Config) OutputShape() tensor.Shape {
	o := c.Out()
	return tensor.Shape{c.Batch, c.Filters, o, o}
}

// InputBytes returns the input tensor footprint in bytes.
func (c Config) InputBytes() int64 { return int64(c.InputShape().Elems()) * 4 }

// FilterBytes returns the filter tensor footprint in bytes.
func (c Config) FilterBytes() int64 { return int64(c.FilterShape().Elems()) * 4 }

// OutputBytes returns the output tensor footprint in bytes.
func (c Config) OutputBytes() int64 { return int64(c.OutputShape().Elems()) * 4 }

// ForwardFLOPs returns the multiply-add flop count of a direct/unrolled
// forward pass: 2·b·f·c·k²·o².
func (c Config) ForwardFLOPs() float64 {
	o := float64(c.Out())
	return 2 * float64(c.Batch) * float64(c.Filters) * float64(c.Channels) *
		float64(c.Kernel) * float64(c.Kernel) * o * o
}

// TrainingFLOPs returns the flop count of one training iteration
// (forward + backward-data + backward-filter ≈ 3× forward for the
// spatial strategies).
func (c Config) TrainingFLOPs() float64 {
	return 3 * c.ForwardFLOPs()
}

// Strategy labels the three convolution families the paper compares.
type Strategy int

const (
	// Direct convolution slides the filter over the input with no
	// intermediate data structure (cuda-convnet2, Theano-legacy).
	Direct Strategy = iota
	// Unrolling lowers convolution to a single large GEMM via im2col
	// (Caffe, Torch-cunn, Theano-CorrMM, cuDNN).
	Unrolling
	// FFT multiplies in the frequency domain (fbfft, Theano-fft).
	FFT
)

// String returns the strategy name used in the paper.
func (s Strategy) String() string {
	switch s {
	case Direct:
		return "direct"
	case Unrolling:
		return "unrolling"
	case FFT:
		return "fft"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}
