//go:build !race

package conv

const raceEnabled = false
