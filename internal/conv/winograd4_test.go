package conv

import (
	"testing"
	"testing/quick"

	"gpucnn/internal/tensor"
)

func TestWinograd4MatchesDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(2), Input: 6 + r.Intn(14),
			Channels: 1 + r.Intn(4), Filters: 1 + r.Intn(4),
			Kernel: 3, Stride: 1, Pad: r.Intn(2),
		}
		if cfg.Validate() != nil {
			return true
		}
		x, w := randTensors(cfg, seed+60)
		y1 := tensor.New(cfg.OutputShape()...)
		y2 := tensor.New(cfg.OutputShape()...)
		DirectForward(cfg, x, w, y1)
		Winograd4Forward(cfg, x, w, y2)
		// F(4,3)'s larger transform constants amplify float32 noise;
		// allow a proportionally looser tolerance.
		return tensor.AllClose(y1, y2, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWinograd4TileClipping(t *testing.T) {
	// Outputs not divisible by 4 exercise the ragged tile edge.
	for _, in := range []int{5, 6, 7, 8, 9, 13} {
		cfg := Config{Batch: 1, Input: in, Channels: 2, Filters: 2, Kernel: 3, Stride: 1}
		x, w := randTensors(cfg, uint64(100+in))
		y1 := tensor.New(cfg.OutputShape()...)
		y2 := tensor.New(cfg.OutputShape()...)
		DirectForward(cfg, x, w, y1)
		Winograd4Forward(cfg, x, w, y2)
		if !tensor.AllClose(y1, y2, 1e-3) {
			t.Fatalf("input %d: F(4,3) differs from direct by %g", in, tensor.RelDiff(y1, y2))
		}
	}
}

func TestWinograd4MultiplyReduction(t *testing.T) {
	// Aligned outputs: exactly 144/36 = 4× fewer multiplies.
	cfg := Config{Batch: 2, Input: 18, Channels: 4, Filters: 8, Kernel: 3, Stride: 1}
	if cfg.Out()%4 != 0 {
		t.Fatalf("test wants output divisible by 4, got %d", cfg.Out())
	}
	direct := cfg.ForwardFLOPs() / 2
	wino := Winograd4Multiplies(cfg)
	if ratio := direct / wino; ratio < 3.99 || ratio > 4.01 {
		t.Fatalf("multiply reduction = %.3f, want 4", ratio)
	}
	// And F(4,3) beats F(2,3)'s 2.25× on aligned shapes.
	if Winograd4Multiplies(cfg) >= WinogradMultiplies(cfg) {
		t.Fatal("F(4,3) should use fewer multiplies than F(2,3)")
	}
}
