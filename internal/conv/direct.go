package conv

import (
	"fmt"

	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

func checkShapes(cfg Config, x, w, y *tensor.Tensor) {
	if !x.Shape().Equal(cfg.InputShape()) {
		panic(fmt.Sprintf("conv: input shape %v does not match config %v (%v)", x.Shape(), cfg, cfg.InputShape()))
	}
	if !w.Shape().Equal(cfg.FilterShape()) {
		panic(fmt.Sprintf("conv: filter shape %v does not match config %v (%v)", w.Shape(), cfg, cfg.FilterShape()))
	}
	if !y.Shape().Equal(cfg.OutputShape()) {
		panic(fmt.Sprintf("conv: output shape %v does not match config %v (%v)", y.Shape(), cfg, cfg.OutputShape()))
	}
}

// DirectForward computes y = x ⋆ w by the definition: each output
// element is the dot product of one receptive field with one filter.
// Work is distributed over (batch, filter) pairs.
func DirectForward(cfg Config, x, w, y *tensor.Tensor) {
	checkShapes(cfg, x, w, y)
	b, c, i := cfg.Batch, cfg.Channels, cfg.Input
	f, k, s, p, o := cfg.Filters, cfg.Kernel, cfg.Stride, cfg.Pad, cfg.Out()
	par.ForEach(b*f, func(job int) {
		n, fi := job/f, job%f
		wBase := w.Data[fi*c*k*k:]
		for oy := 0; oy < o; oy++ {
			for ox := 0; ox < o; ox++ {
				var acc float32
				for ci := 0; ci < c; ci++ {
					xChan := x.Data[(n*c+ci)*i*i:]
					wChan := wBase[ci*k*k:]
					for kh := 0; kh < k; kh++ {
						iy := oy*s + kh - p
						if iy < 0 || iy >= i {
							continue
						}
						xRow := xChan[iy*i:]
						wRow := wChan[kh*k:]
						for kw := 0; kw < k; kw++ {
							ix := ox*s + kw - p
							if ix < 0 || ix >= i {
								continue
							}
							acc += xRow[ix] * wRow[kw]
						}
					}
				}
				y.Data[((n*f+fi)*o+oy)*o+ox] = acc
			}
		}
	})
}

// DirectBackwardData computes dx given dy and w: every input pixel
// gathers the contributions of all output positions whose receptive
// field covers it. Work is distributed over (batch, channel) pairs so
// each goroutine owns its dx slab.
func DirectBackwardData(cfg Config, dy, w, dx *tensor.Tensor) {
	checkShapes(cfg, dx, w, dy)
	b, c, i := cfg.Batch, cfg.Channels, cfg.Input
	f, k, s, p, o := cfg.Filters, cfg.Kernel, cfg.Stride, cfg.Pad, cfg.Out()
	par.ForEach(b*c, func(job int) {
		n, ci := job/c, job%c
		out := dx.Data[(n*c+ci)*i*i : (n*c+ci+1)*i*i]
		for idx := range out {
			out[idx] = 0
		}
		for fi := 0; fi < f; fi++ {
			dyMap := dy.Data[(n*f+fi)*o*o:]
			wChan := w.Data[(fi*c+ci)*k*k:]
			for oy := 0; oy < o; oy++ {
				dyRow := dyMap[oy*o:]
				for ox := 0; ox < o; ox++ {
					g := dyRow[ox]
					if g == 0 {
						continue
					}
					for kh := 0; kh < k; kh++ {
						iy := oy*s + kh - p
						if iy < 0 || iy >= i {
							continue
						}
						dxRow := out[iy*i:]
						wRow := wChan[kh*k:]
						for kw := 0; kw < k; kw++ {
							ix := ox*s + kw - p
							if ix < 0 || ix >= i {
								continue
							}
							dxRow[ix] += g * wRow[kw]
						}
					}
				}
			}
		}
	})
}

// DirectBackwardFilter computes dw given x and dy, accumulating over
// the batch. Work is distributed over filters so each goroutine owns
// its dw slab.
func DirectBackwardFilter(cfg Config, x, dy, dw *tensor.Tensor) {
	checkShapes(cfg, x, dw, dy)
	b, c, i := cfg.Batch, cfg.Channels, cfg.Input
	f, k, s, p, o := cfg.Filters, cfg.Kernel, cfg.Stride, cfg.Pad, cfg.Out()
	par.ForEach(f, func(fi int) {
		wBase := dw.Data[fi*c*k*k : (fi+1)*c*k*k]
		for idx := range wBase {
			wBase[idx] = 0
		}
		for n := 0; n < b; n++ {
			dyMap := dy.Data[(n*f+fi)*o*o:]
			for ci := 0; ci < c; ci++ {
				xChan := x.Data[(n*c+ci)*i*i:]
				wChan := wBase[ci*k*k:]
				for oy := 0; oy < o; oy++ {
					dyRow := dyMap[oy*o:]
					for ox := 0; ox < o; ox++ {
						g := dyRow[ox]
						if g == 0 {
							continue
						}
						for kh := 0; kh < k; kh++ {
							iy := oy*s + kh - p
							if iy < 0 || iy >= i {
								continue
							}
							xRow := xChan[iy*i:]
							wRow := wChan[kh*k:]
							for kw := 0; kw < k; kw++ {
								ix := ox*s + kw - p
								if ix < 0 || ix >= i {
									continue
								}
								wRow[kw] += g * xRow[ix]
							}
						}
					}
				}
			}
		}
	})
}
