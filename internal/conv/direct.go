package conv

import (
	"fmt"

	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

func checkShapes(cfg Config, x, w, y *tensor.Tensor) {
	if !x.Shape().Equal(cfg.InputShape()) {
		panic(fmt.Sprintf("conv: input shape %v does not match config %v (%v)", x.Shape(), cfg, cfg.InputShape()))
	}
	if !w.Shape().Equal(cfg.FilterShape()) {
		panic(fmt.Sprintf("conv: filter shape %v does not match config %v (%v)", w.Shape(), cfg, cfg.FilterShape()))
	}
	if !y.Shape().Equal(cfg.OutputShape()) {
		panic(fmt.Sprintf("conv: output shape %v does not match config %v (%v)", y.Shape(), cfg, cfg.OutputShape()))
	}
}

// directFwdJob computes one (batch, filter) output plane by the
// definition; pooled for allocation-free dispatch.
type directFwdJob struct {
	cfg     Config
	x, w, y []float32
}

//hot:noalloc
func (j *directFwdJob) Run(job int) {
	cfg := j.cfg
	c, i := cfg.Channels, cfg.Input
	f, k, s, p, o := cfg.Filters, cfg.Kernel, cfg.Stride, cfg.Pad, cfg.Out()
	n, fi := job/f, job%f
	wBase := j.w[fi*c*k*k:]
	for oy := 0; oy < o; oy++ {
		for ox := 0; ox < o; ox++ {
			var acc float32
			for ci := 0; ci < c; ci++ {
				xChan := j.x[(n*c+ci)*i*i:]
				wChan := wBase[ci*k*k:]
				for kh := 0; kh < k; kh++ {
					iy := oy*s + kh - p
					if iy < 0 || iy >= i {
						continue
					}
					xRow := xChan[iy*i:]
					wRow := wChan[kh*k:]
					for kw := 0; kw < k; kw++ {
						ix := ox*s + kw - p
						if ix < 0 || ix >= i {
							continue
						}
						acc += xRow[ix] * wRow[kw]
					}
				}
			}
			j.y[((n*f+fi)*o+oy)*o+ox] = acc
		}
	}
}

var directFwdPool = newJobPool[directFwdJob]()

// DirectForward computes y = x ⋆ w by the definition: each output
// element is the dot product of one receptive field with one filter.
// Work is distributed over (batch, filter) pairs.
func DirectForward(cfg Config, x, w, y *tensor.Tensor) {
	checkShapes(cfg, x, w, y)
	j := directFwdPool.Get()
	j.cfg, j.x, j.w, j.y = cfg, x.Data, w.Data, y.Data
	par.ForEachRunner(cfg.Batch*cfg.Filters, j)
	j.x, j.w, j.y = nil, nil, nil
	directFwdPool.Put(j)
}

// directBwdDataJob computes one (batch, channel) input-gradient plane.
type directBwdDataJob struct {
	cfg       Config
	dy, w, dx []float32
}

//hot:noalloc
func (j *directBwdDataJob) Run(job int) {
	cfg := j.cfg
	c, i := cfg.Channels, cfg.Input
	f, k, s, p, o := cfg.Filters, cfg.Kernel, cfg.Stride, cfg.Pad, cfg.Out()
	n, ci := job/c, job%c
	out := j.dx[(n*c+ci)*i*i : (n*c+ci+1)*i*i]
	clear(out)
	for fi := 0; fi < f; fi++ {
		dyMap := j.dy[(n*f+fi)*o*o:]
		wChan := j.w[(fi*c+ci)*k*k:]
		for oy := 0; oy < o; oy++ {
			dyRow := dyMap[oy*o:]
			for ox := 0; ox < o; ox++ {
				g := dyRow[ox]
				if g == 0 {
					continue
				}
				for kh := 0; kh < k; kh++ {
					iy := oy*s + kh - p
					if iy < 0 || iy >= i {
						continue
					}
					dxRow := out[iy*i:]
					wRow := wChan[kh*k:]
					for kw := 0; kw < k; kw++ {
						ix := ox*s + kw - p
						if ix < 0 || ix >= i {
							continue
						}
						dxRow[ix] += g * wRow[kw]
					}
				}
			}
		}
	}
}

var directBwdDataPool = newJobPool[directBwdDataJob]()

// DirectBackwardData computes dx given dy and w: every input pixel
// gathers the contributions of all output positions whose receptive
// field covers it. Work is distributed over (batch, channel) pairs so
// each goroutine owns its dx slab.
func DirectBackwardData(cfg Config, dy, w, dx *tensor.Tensor) {
	checkShapes(cfg, dx, w, dy)
	j := directBwdDataPool.Get()
	j.cfg, j.dy, j.w, j.dx = cfg, dy.Data, w.Data, dx.Data
	par.ForEachRunner(cfg.Batch*cfg.Channels, j)
	j.dy, j.w, j.dx = nil, nil, nil
	directBwdDataPool.Put(j)
}

// directBwdFilterJob accumulates one filter's gradient over the batch.
type directBwdFilterJob struct {
	cfg       Config
	x, dy, dw []float32
}

//hot:noalloc
func (j *directBwdFilterJob) Run(fi int) {
	cfg := j.cfg
	b, c, i := cfg.Batch, cfg.Channels, cfg.Input
	f, k, s, p, o := cfg.Filters, cfg.Kernel, cfg.Stride, cfg.Pad, cfg.Out()
	wBase := j.dw[fi*c*k*k : (fi+1)*c*k*k]
	clear(wBase)
	for n := 0; n < b; n++ {
		dyMap := j.dy[(n*f+fi)*o*o:]
		for ci := 0; ci < c; ci++ {
			xChan := j.x[(n*c+ci)*i*i:]
			wChan := wBase[ci*k*k:]
			for oy := 0; oy < o; oy++ {
				dyRow := dyMap[oy*o:]
				for ox := 0; ox < o; ox++ {
					g := dyRow[ox]
					if g == 0 {
						continue
					}
					for kh := 0; kh < k; kh++ {
						iy := oy*s + kh - p
						if iy < 0 || iy >= i {
							continue
						}
						xRow := xChan[iy*i:]
						wRow := wChan[kh*k:]
						for kw := 0; kw < k; kw++ {
							ix := ox*s + kw - p
							if ix < 0 || ix >= i {
								continue
							}
							wRow[kw] += g * xRow[ix]
						}
					}
				}
			}
		}
	}
}

var directBwdFilterPool = newJobPool[directBwdFilterJob]()

// DirectBackwardFilter computes dw given x and dy, accumulating over
// the batch. Work is distributed over filters so each goroutine owns
// its dw slab.
func DirectBackwardFilter(cfg Config, x, dy, dw *tensor.Tensor) {
	checkShapes(cfg, x, dw, dy)
	j := directBwdFilterPool.Get()
	j.cfg, j.x, j.dy, j.dw = cfg, x.Data, dy.Data, dw.Data
	par.ForEachRunner(cfg.Filters, j)
	j.x, j.dy, j.dw = nil, nil, nil
	directBwdFilterPool.Put(j)
}
