package conv

import (
	"testing"
	"testing/quick"

	"gpucnn/internal/gemm"
	"gpucnn/internal/im2col"
	"gpucnn/internal/tensor"
)

// materializedForward is the pre-fusion reference: im2col into a real
// buffer, then a packed GEMM against the filter matrix. The fused path
// in UnrollForward must be bit-compatible up to float reassociation.
func materializedForward(cfg Config, x, w, y *tensor.Tensor) {
	g := cfg.geom()
	rows, cols := g.ColRows(), g.ColCols()
	imgLen := cfg.Channels * cfg.Input * cfg.Input
	outLen := cfg.Filters * cols
	col := make([]float32, rows*cols)
	for n := 0; n < cfg.Batch; n++ {
		im2col.Im2col(g, x.Data[n*imgLen:(n+1)*imgLen], col)
		gemm.Packed(1, w.Data, col, 0, y.Data[n*outLen:(n+1)*outLen], cfg.Filters, cols, rows)
	}
}

// materializedBackwardFilter accumulates dw = Σ_n dy_n·col_nᵀ through
// the materialised column matrix and the NT kernel.
func materializedBackwardFilter(cfg Config, x, dy, dw *tensor.Tensor) {
	g := cfg.geom()
	rows, cols := g.ColRows(), g.ColCols()
	imgLen := cfg.Channels * cfg.Input * cfg.Input
	outLen := cfg.Filters * cols
	col := make([]float32, rows*cols)
	clear(dw.Data)
	for n := 0; n < cfg.Batch; n++ {
		im2col.Im2col(g, x.Data[n*imgLen:(n+1)*imgLen], col)
		gemm.NT(1, dy.Data[n*outLen:(n+1)*outLen], col, 1, dw.Data, cfg.Filters, rows, cols)
	}
}

func fusedTestConfigs() []Config {
	return []Config{
		{Batch: 2, Input: 8, Channels: 3, Filters: 4, Kernel: 3, Stride: 1, Pad: 1},
		{Batch: 1, Input: 13, Channels: 2, Filters: 7, Kernel: 5, Stride: 2, Pad: 2},
		{Batch: 3, Input: 9, Channels: 1, Filters: 9, Kernel: 3, Stride: 3},
		{Batch: 1, Input: 16, Channels: 4, Filters: 8, Kernel: 1, Stride: 1},
		{Batch: 2, Input: 7, Channels: 2, Filters: 3, Kernel: 7, Stride: 1, Pad: 6},
		{Batch: 1, Input: 24, Channels: 3, Filters: 16, Kernel: 3, Stride: 1, Pad: 1},
	}
}

func TestFusedForwardMatchesMaterialized(t *testing.T) {
	for _, cfg := range fusedTestConfigs() {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("bad config %v: %v", cfg, err)
		}
		x, w := randTensors(cfg, 41)
		want := tensor.New(cfg.OutputShape()...)
		got := tensor.New(cfg.OutputShape()...)
		materializedForward(cfg, x, w, want)
		UnrollForward(cfg, x, w, got)
		if !tensor.AllClose(want, got, 1e-4) {
			t.Errorf("fused forward diverges from materialised reference at %v", cfg)
		}
	}
}

func TestFusedBackwardFilterMatchesMaterialized(t *testing.T) {
	for _, cfg := range fusedTestConfigs() {
		x, _ := randTensors(cfg, 43)
		r := tensor.NewRNG(44)
		dy := tensor.New(cfg.OutputShape()...)
		dy.FillUniform(r, -1, 1)
		want := tensor.New(cfg.FilterShape()...)
		got := tensor.New(cfg.FilterShape()...)
		materializedBackwardFilter(cfg, x, dy, want)
		UnrollBackwardFilter(cfg, x, dy, got)
		if !tensor.AllClose(want, got, 1e-3) {
			t.Errorf("fused backward-filter diverges from materialised reference at %v", cfg)
		}
	}
}

// TestFusedForwardPropertyRagged drives fused-vs-materialised over
// randomly drawn ragged shapes, strides, and paddings.
func TestFusedForwardPropertyRagged(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(2), Input: 5 + r.Intn(14),
			Channels: 1 + r.Intn(4), Filters: 1 + r.Intn(9),
			Kernel: 1 + r.Intn(5), Stride: 1 + r.Intn(3), Pad: r.Intn(3),
		}
		if cfg.Validate() != nil {
			return true
		}
		x, w := randTensors(cfg, seed+7)
		want := tensor.New(cfg.OutputShape()...)
		got := tensor.New(cfg.OutputShape()...)
		materializedForward(cfg, x, w, want)
		UnrollForward(cfg, x, w, got)
		return tensor.AllClose(want, got, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// FuzzFusedUnroll lets the fuzzer search the geometry space for any
// divergence between the fused im2col→pack path and the materialised
// reference, on both the forward and backward-filter GEMMs.
func FuzzFusedUnroll(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(3), uint8(4), uint8(3), uint8(1), uint8(1))
	f.Add(uint64(9), uint8(13), uint8(2), uint8(7), uint8(5), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, input, channels, filters, kernel, stride, pad uint8) {
		cfg := Config{
			Batch:    1,
			Input:    4 + int(input%16),
			Channels: 1 + int(channels%4),
			Filters:  1 + int(filters%8),
			Kernel:   1 + int(kernel%6),
			Stride:   1 + int(stride%3),
			Pad:      int(pad % 4),
		}
		if cfg.Validate() != nil {
			t.Skip()
		}
		x, w := randTensors(cfg, seed)
		want := tensor.New(cfg.OutputShape()...)
		got := tensor.New(cfg.OutputShape()...)
		materializedForward(cfg, x, w, want)
		UnrollForward(cfg, x, w, got)
		if !tensor.AllClose(want, got, 1e-4) {
			t.Fatalf("fused forward diverges at %v", cfg)
		}
		r := tensor.NewRNG(seed + 1)
		dy := tensor.New(cfg.OutputShape()...)
		dy.FillUniform(r, -1, 1)
		dwWant := tensor.New(cfg.FilterShape()...)
		dwGot := tensor.New(cfg.FilterShape()...)
		materializedBackwardFilter(cfg, x, dy, dwWant)
		UnrollBackwardFilter(cfg, x, dy, dwGot)
		if !tensor.AllClose(dwWant, dwGot, 1e-3) {
			t.Fatalf("fused backward-filter diverges at %v", cfg)
		}
	})
}
