package conv

import (
	"testing"
	"testing/quick"

	"gpucnn/internal/tensor"
)

func TestWinogradSupported(t *testing.T) {
	ok := Config{Batch: 1, Input: 8, Channels: 1, Filters: 1, Kernel: 3, Stride: 1}
	if err := WinogradSupported(ok); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	k5 := ok
	k5.Kernel = 5
	if WinogradSupported(k5) == nil {
		t.Error("winograd must reject kernel != 3")
	}
	s2 := ok
	s2.Stride = 2
	if WinogradSupported(s2) == nil {
		t.Error("winograd must reject stride != 1")
	}
}

func TestWinogradIdentityFilter(t *testing.T) {
	// A centre-tap filter makes convolution the identity (valid mode
	// shifts by 1): y[oy][ox] = x[oy+1][ox+1].
	cfg := Config{Batch: 1, Input: 6, Channels: 1, Filters: 1, Kernel: 3, Stride: 1}
	x := tensor.New(cfg.InputShape()...)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	w := tensor.New(cfg.FilterShape()...)
	w.Set(1, 0, 0, 1, 1) // centre tap
	y := tensor.New(cfg.OutputShape()...)
	WinogradForward(cfg, x, w, y)
	o := cfg.Out()
	for oy := 0; oy < o; oy++ {
		for ox := 0; ox < o; ox++ {
			want := x.At(0, 0, oy+1, ox+1)
			if got := y.At(0, 0, oy, ox); absDiff(got, want) > 1e-4 {
				t.Fatalf("identity filter wrong at (%d,%d): %v vs %v", oy, ox, got, want)
			}
		}
	}
}

func absDiff(a, b float32) float32 {
	d := a - b
	if d < 0 {
		return -d
	}
	return d
}

func TestWinogradMatchesDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(3), Input: 5 + r.Intn(12),
			Channels: 1 + r.Intn(4), Filters: 1 + r.Intn(4),
			Kernel: 3, Stride: 1, Pad: r.Intn(2),
		}
		if cfg.Validate() != nil {
			return true
		}
		x, w := randTensors(cfg, seed+30)
		y1 := tensor.New(cfg.OutputShape()...)
		y2 := tensor.New(cfg.OutputShape()...)
		DirectForward(cfg, x, w, y1)
		WinogradForward(cfg, x, w, y2)
		return tensor.AllClose(y1, y2, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestWinogradOddOutputs(t *testing.T) {
	// Output extents that are not multiples of the 2×2 tile must clip
	// correctly.
	for _, in := range []int{5, 7, 9, 11} {
		cfg := Config{Batch: 1, Input: in, Channels: 2, Filters: 3, Kernel: 3, Stride: 1}
		x, w := randTensors(cfg, uint64(in))
		y1 := tensor.New(cfg.OutputShape()...)
		y2 := tensor.New(cfg.OutputShape()...)
		DirectForward(cfg, x, w, y1)
		WinogradForward(cfg, x, w, y2)
		if !tensor.AllClose(y1, y2, 1e-4) {
			t.Fatalf("input %d: winograd differs from direct by %g", in, tensor.RelDiff(y1, y2))
		}
	}
}

func TestWinogradMultiplyReduction(t *testing.T) {
	// For even outputs the reduction over direct convolution is exactly
	// 36/16 = 2.25×.
	cfg := Config{Batch: 4, Input: 10, Channels: 8, Filters: 16, Kernel: 3, Stride: 1}
	if cfg.Out()%2 != 0 {
		t.Fatal("test needs an even output")
	}
	direct := cfg.ForwardFLOPs() / 2 // multiplies only
	wino := WinogradMultiplies(cfg)
	if ratio := direct / wino; ratio < 2.24 || ratio > 2.26 {
		t.Fatalf("multiply reduction = %.3f, want 2.25", ratio)
	}
}

func TestWinogradRejectsBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for kernel 5")
		}
	}()
	cfg := Config{Batch: 1, Input: 8, Channels: 1, Filters: 1, Kernel: 5, Stride: 1}
	x, w := randTensors(cfg, 1)
	WinogradForward(cfg, x, w, tensor.New(cfg.OutputShape()...))
}

func TestWinogradBackwardDataMatchesDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(2), Input: 6 + r.Intn(8),
			Channels: 1 + r.Intn(3), Filters: 1 + r.Intn(3),
			Kernel: 3, Stride: 1, Pad: r.Intn(2),
		}
		if cfg.Validate() != nil {
			return true
		}
		_, w := randTensors(cfg, seed+40)
		dy := tensor.New(cfg.OutputShape()...)
		dy.FillUniform(tensor.NewRNG(seed+41), -1, 1)
		dx1 := tensor.New(cfg.InputShape()...)
		dx2 := tensor.New(cfg.InputShape()...)
		DirectBackwardData(cfg, dy, w, dx1)
		WinogradBackwardData(cfg, dy, w, dx2)
		return tensor.AllClose(dx1, dx2, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
