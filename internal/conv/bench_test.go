package conv

import (
	"testing"

	"gpucnn/internal/tensor"
)

// benchConfigs are the paper's Conv1–Conv5 shapes at Batch=1, matching
// the alloc tests; per-op FLOP counts make runs comparable across batch
// sizes.
func benchTensors(cfg Config) (x, w, y *tensor.Tensor) {
	x = tensor.New(cfg.InputShape()...)
	w = tensor.New(cfg.FilterShape()...)
	y = tensor.New(cfg.OutputShape()...)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	for i := range w.Data {
		w.Data[i] = float32(i%5) - 2
	}
	return
}

// BenchmarkConvForward measures the arena-backed unrolling engine on
// the paper's Table I layers.
func BenchmarkConvForward(b *testing.B) {
	for _, tc := range tableIConfigs {
		x, w, y := benchTensors(tc.cfg)
		b.Run("unroll/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				UnrollForward(tc.cfg, x, w, y)
			}
			b.ReportMetric(tc.cfg.ForwardFLOPs()*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			b.ReportAllocs()
		})
	}
	small := Config{Batch: 1, Input: 32, Channels: 16, Filters: 16, Kernel: 3, Stride: 1, Pad: 1}
	x, w, y := benchTensors(small)
	b.Run("fft/small3x3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			FFTForward(small, x, w, y)
		}
		b.ReportAllocs()
	})
	b.Run("winograd/small3x3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			WinogradForward(small, x, w, y)
		}
		b.ReportMetric(small.ForwardFLOPs()*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
		b.ReportAllocs()
	})
}
