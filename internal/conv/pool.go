package conv

import "sync"

// jobPool is a typed sync.Pool for the pooled par.Runner job structs
// the strategy functions dispatch: reusing the struct (and storing a
// pointer in the Runner interface) keeps steady-state dispatch
// allocation-free.
type jobPool[T any] struct{ p sync.Pool }

func newJobPool[T any]() *jobPool[T] {
	return &jobPool[T]{p: sync.Pool{New: func() any { return new(T) }}}
}

func (jp *jobPool[T]) Get() *T  { return jp.p.Get().(*T) }
func (jp *jobPool[T]) Put(t *T) { jp.p.Put(t) }
