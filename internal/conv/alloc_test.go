package conv

import (
	"testing"

	"gpucnn/internal/tensor"
)

// tableIConfigs mirrors workload.TableI (the paper's Conv1–Conv5) at
// Batch=1: testing.AllocsPerRun forces GOMAXPROCS to 1 while measuring,
// so a full batch would only repeat the same serial code path 128 times
// slower. (workload itself imports conv, so the configs are restated
// here rather than imported.)
var tableIConfigs = []struct {
	name string
	cfg  Config
}{
	{"Conv1", Config{Batch: 1, Input: 128, Channels: 3, Filters: 96, Kernel: 11, Stride: 1}},
	{"Conv2", Config{Batch: 1, Input: 128, Channels: 64, Filters: 96, Kernel: 3, Stride: 1}},
	{"Conv3", Config{Batch: 1, Input: 32, Channels: 128, Filters: 128, Kernel: 9, Stride: 1}},
	{"Conv4", Config{Batch: 1, Input: 16, Channels: 128, Filters: 128, Kernel: 7, Stride: 1}},
	{"Conv5", Config{Batch: 1, Input: 13, Channels: 384, Filters: 384, Kernel: 3, Stride: 1}},
}

func allocTensors(cfg Config) (x, w, y, dx, dw, dy *tensor.Tensor) {
	x = tensor.New(cfg.InputShape()...)
	w = tensor.New(cfg.FilterShape()...)
	y = tensor.New(cfg.OutputShape()...)
	dx = tensor.New(cfg.InputShape()...)
	dw = tensor.New(cfg.FilterShape()...)
	dy = tensor.New(cfg.OutputShape()...)
	for i := range x.Data {
		x.Data[i] = float32(i%7) - 3
	}
	for i := range w.Data {
		w.Data[i] = float32(i%5) - 2
	}
	for i := range dy.Data {
		dy.Data[i] = float32(i%3) - 1
	}
	return
}

// assertZeroAlloc warms f until the arena capacities converge, then
// requires a steady-state pass to stay off the heap entirely.
func assertZeroAlloc(t *testing.T, name string, f func()) {
	t.Helper()
	f()
	f()
	if allocs := testing.AllocsPerRun(1, f); allocs != 0 {
		t.Errorf("%s: %v allocs per steady-state run, want 0", name, allocs)
	}
}

// TestUnrollZeroAllocTableI is the acceptance gate: Conv1–Conv5
// forward and backward through the unrolling engine must perform zero
// steady-state heap allocations.
func TestUnrollZeroAllocTableI(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments allocations")
	}
	if testing.Short() {
		t.Skip("multi-GFLOP measurement, skipped in -short")
	}
	for _, tc := range tableIConfigs {
		x, w, y, dx, dw, dy := allocTensors(tc.cfg)
		assertZeroAlloc(t, tc.name+"/forward", func() {
			UnrollForward(tc.cfg, x, w, y)
		})
		assertZeroAlloc(t, tc.name+"/backward-data", func() {
			UnrollBackwardData(tc.cfg, dy, w, dx)
		})
		assertZeroAlloc(t, tc.name+"/backward-filter", func() {
			UnrollBackwardFilter(tc.cfg, x, dy, dw)
		})
	}
}

// TestOtherEnginesZeroAlloc covers the remaining arena-backed strategy
// functions on a small 3×3/stride-1 shape all of them support.
func TestOtherEnginesZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime instruments allocations")
	}
	cfg := Config{Batch: 2, Input: 12, Channels: 4, Filters: 6, Kernel: 3, Stride: 1, Pad: 1}
	x, w, y, dx, dw, dy := allocTensors(cfg)
	assertZeroAlloc(t, "direct/forward", func() { DirectForward(cfg, x, w, y) })
	assertZeroAlloc(t, "direct/backward-data", func() { DirectBackwardData(cfg, dy, w, dx) })
	assertZeroAlloc(t, "direct/backward-filter", func() { DirectBackwardFilter(cfg, x, dy, dw) })
	assertZeroAlloc(t, "fft/forward", func() { FFTForward(cfg, x, w, y) })
	assertZeroAlloc(t, "fft/backward-data", func() { FFTBackwardData(cfg, dy, w, dx) })
	assertZeroAlloc(t, "fft/backward-filter", func() { FFTBackwardFilter(cfg, x, dy, dw) })
	assertZeroAlloc(t, "winograd/forward", func() { WinogradForward(cfg, x, w, y) })
	assertZeroAlloc(t, "winograd/backward-data", func() { WinogradBackwardData(cfg, dy, w, dx) })
	assertZeroAlloc(t, "winograd4/forward", func() { Winograd4Forward(cfg, x, w, y) })
}
