package conv

import (
	"testing"

	"gpucnn/internal/tensor"
)

func TestGroupedSupported(t *testing.T) {
	cfg := Config{Batch: 2, Input: 8, Channels: 6, Filters: 8, Kernel: 3, Stride: 1}
	if err := GroupedSupported(cfg, 2); err != nil {
		t.Fatalf("2 groups rejected: %v", err)
	}
	if GroupedSupported(cfg, 4) == nil {
		t.Error("channels 6 not divisible by 4 groups")
	}
	if GroupedSupported(cfg, 3) == nil {
		t.Error("filters 8 not divisible by 3 groups")
	}
	if GroupedSupported(cfg, 0) == nil {
		t.Error("zero groups")
	}
}

// TestGroupedOneGroupMatchesDirect: groups=1 is plain convolution.
func TestGroupedOneGroupMatchesDirect(t *testing.T) {
	cfg := Config{Batch: 2, Input: 9, Channels: 3, Filters: 4, Kernel: 3, Stride: 1, Pad: 1}
	x, w := randTensors(cfg, 200)
	y1 := tensor.New(cfg.OutputShape()...)
	y2 := tensor.New(cfg.OutputShape()...)
	DirectForward(cfg, x, w, y1)
	GroupedForward(cfg, 1, x, w, y2)
	if tensor.MaxAbsDiff(y1, y2) != 0 {
		t.Fatal("groups=1 must equal direct convolution exactly")
	}
}

// TestGroupedEqualsBlockDiagonal: a grouped convolution equals a full
// convolution with a block-diagonal filter bank (cross-group weights
// zero).
func TestGroupedEqualsBlockDiagonal(t *testing.T) {
	cfg := Config{Batch: 2, Input: 8, Channels: 4, Filters: 6, Kernel: 3, Stride: 1}
	groups := 2
	cg, fg := cfg.Channels/groups, cfg.Filters/groups
	r := tensor.NewRNG(201)
	x := tensor.New(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	wg := tensor.New(GroupedFilterShape(cfg, groups)...)
	wg.FillUniform(r, -1, 1)

	// Expand to a block-diagonal full filter bank.
	full := tensor.New(cfg.FilterShape()...)
	k2 := cfg.Kernel * cfg.Kernel
	for fi := 0; fi < cfg.Filters; fi++ {
		g := fi / fg
		for ci := 0; ci < cg; ci++ {
			src := wg.Data[(fi*cg+ci)*k2 : (fi*cg+ci+1)*k2]
			dst := full.Data[(fi*cfg.Channels+g*cg+ci)*k2:]
			copy(dst[:k2], src)
		}
	}

	y1 := tensor.New(cfg.OutputShape()...)
	GroupedForward(cfg, groups, x, wg, y1)
	y2 := tensor.New(cfg.OutputShape()...)
	DirectForward(cfg, x, full, y2)
	if !tensor.AllClose(y1, y2, 1e-5) {
		t.Fatalf("grouped != block-diagonal full: %g", tensor.RelDiff(y1, y2))
	}
}

// TestGroupedAlexNetParameterCount: with 2 groups on conv2/4/5 the
// historical AlexNet lands at its published ~60.97 M parameters
// (ungrouped, internal/models measures 62.38 M).
func TestGroupedAlexNetParameterCount(t *testing.T) {
	type layer struct {
		cfg    Config
		groups int
	}
	layers := []layer{
		{Config{Batch: 1, Input: 227, Channels: 3, Filters: 96, Kernel: 11, Stride: 4}, 1},
		{Config{Batch: 1, Input: 27, Channels: 96, Filters: 256, Kernel: 5, Stride: 1, Pad: 2}, 2},
		{Config{Batch: 1, Input: 13, Channels: 256, Filters: 384, Kernel: 3, Stride: 1, Pad: 1}, 1},
		{Config{Batch: 1, Input: 13, Channels: 384, Filters: 384, Kernel: 3, Stride: 1, Pad: 1}, 2},
		{Config{Batch: 1, Input: 13, Channels: 384, Filters: 256, Kernel: 3, Stride: 1, Pad: 1}, 2},
	}
	total := 0
	for _, l := range layers {
		total += GroupedParams(l.cfg, l.groups) + l.cfg.Filters // weights + biases
	}
	// FC stack: 9216->4096->4096->1000 with biases.
	total += 9216*4096 + 4096 + 4096*4096 + 4096 + 4096*1000 + 1000
	if total < 60_500_000 || total > 61_500_000 {
		t.Fatalf("grouped AlexNet parameter count = %d, want ≈60.97 M", total)
	}
}

func TestGroupedRejectsWrongFilterShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ungrouped filter shape")
		}
	}()
	cfg := Config{Batch: 1, Input: 8, Channels: 4, Filters: 4, Kernel: 3, Stride: 1}
	x, w := randTensors(cfg, 202) // w has full C depth
	GroupedForward(cfg, 2, x, w, tensor.New(cfg.OutputShape()...))
}
