package conv

import (
	"testing"
	"testing/quick"

	"gpucnn/internal/tensor"
)

func TestConfigOut(t *testing.T) {
	cases := []struct {
		cfg  Config
		want int
	}{
		{Config{Batch: 1, Input: 128, Channels: 3, Filters: 1, Kernel: 11, Stride: 1}, 118},
		{Config{Batch: 1, Input: 227, Channels: 3, Filters: 1, Kernel: 11, Stride: 4}, 55},
		{Config{Batch: 1, Input: 32, Channels: 3, Filters: 1, Kernel: 3, Stride: 1, Pad: 1}, 32},
		{Config{Batch: 1, Input: 16, Channels: 3, Filters: 1, Kernel: 7, Stride: 1}, 10},
	}
	for _, c := range cases {
		if got := c.cfg.Out(); got != c.want {
			t.Errorf("%v Out() = %d, want %d", c.cfg, got, c.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Config{Batch: 2, Input: 8, Channels: 3, Filters: 4, Kernel: 3, Stride: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Batch: 0, Input: 8, Channels: 3, Filters: 4, Kernel: 3, Stride: 1},
		{Batch: 2, Input: 8, Channels: 3, Filters: 4, Kernel: 3, Stride: 0},
		{Batch: 2, Input: 8, Channels: 3, Filters: 4, Kernel: 3, Stride: 1, Pad: -1},
		{Batch: 2, Input: 4, Channels: 3, Filters: 4, Kernel: 9, Stride: 1},
	}
	for i, c := range bad {
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted: %v", i, c)
		}
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{Batch: 1, Input: 8, Filters: 2, Kernel: 3}.WithDefaults()
	if c.Channels != 3 || c.Stride != 1 {
		t.Fatalf("defaults not applied: %+v", c)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Batch: 64, Input: 128, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
	if got := c.String(); got != "(64,128,64,11,1)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestConfigShapesAndBytes(t *testing.T) {
	c := Config{Batch: 2, Input: 8, Channels: 3, Filters: 4, Kernel: 3, Stride: 1}
	if !c.InputShape().Equal(tensor.Shape{2, 3, 8, 8}) {
		t.Fatalf("InputShape = %v", c.InputShape())
	}
	if !c.FilterShape().Equal(tensor.Shape{4, 3, 3, 3}) {
		t.Fatalf("FilterShape = %v", c.FilterShape())
	}
	if !c.OutputShape().Equal(tensor.Shape{2, 4, 6, 6}) {
		t.Fatalf("OutputShape = %v", c.OutputShape())
	}
	if c.InputBytes() != 2*3*8*8*4 {
		t.Fatalf("InputBytes = %d", c.InputBytes())
	}
}

func TestForwardFLOPs(t *testing.T) {
	c := Config{Batch: 2, Input: 5, Channels: 3, Filters: 4, Kernel: 3, Stride: 1}
	// 2 * 2 * 4 * 3 * 9 * 9 = 3888
	if got := c.ForwardFLOPs(); got != 3888 {
		t.Fatalf("ForwardFLOPs = %v, want 3888", got)
	}
	if c.TrainingFLOPs() != 3*3888 {
		t.Fatalf("TrainingFLOPs = %v", c.TrainingFLOPs())
	}
}

func TestStrategyString(t *testing.T) {
	if Direct.String() != "direct" || Unrolling.String() != "unrolling" || FFT.String() != "fft" {
		t.Fatal("strategy names wrong")
	}
}

func TestDirectForwardHandExample(t *testing.T) {
	// 1 image, 1 channel, 3x3 input, 1 filter of 2x2 ones, stride 1:
	// output is the sum of each 2x2 window.
	cfg := Config{Batch: 1, Input: 3, Channels: 1, Filters: 1, Kernel: 2, Stride: 1}
	x := tensor.FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 1, 3, 3)
	w := tensor.FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	y := tensor.New(1, 1, 2, 2)
	DirectForward(cfg, x, w, y)
	want := []float32{12, 16, 24, 28}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("y = %v, want %v", y.Data, want)
		}
	}
}

func TestDirectForwardStride(t *testing.T) {
	cfg := Config{Batch: 1, Input: 4, Channels: 1, Filters: 1, Kernel: 2, Stride: 2}
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	w := tensor.FromSlice([]float32{1, 0, 0, 0}, 1, 1, 2, 2)
	y := tensor.New(1, 1, 2, 2)
	DirectForward(cfg, x, w, y)
	// Picking the top-left of each stride-2 window: 0, 2, 8, 10.
	want := []float32{0, 2, 8, 10}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("y = %v, want %v", y.Data, want)
		}
	}
}

func TestDirectForwardPadding(t *testing.T) {
	// 1x1 kernel with pad 1 on a 2x2 input: output 4x4 with zero border.
	cfg := Config{Batch: 1, Input: 2, Channels: 1, Filters: 1, Kernel: 1, Stride: 1, Pad: 1}
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2)
	w := tensor.FromSlice([]float32{1}, 1, 1, 1, 1)
	y := tensor.New(1, 1, 4, 4)
	DirectForward(cfg, x, w, y)
	want := []float32{
		0, 0, 0, 0,
		0, 1, 2, 0,
		0, 3, 4, 0,
		0, 0, 0, 0,
	}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("y = %v, want %v", y.Data, want)
		}
	}
}

func randTensors(cfg Config, seed uint64) (x, w *tensor.Tensor) {
	r := tensor.NewRNG(seed)
	x = tensor.New(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w = tensor.New(cfg.FilterShape()...)
	w.FillUniform(r, -1, 1)
	return
}

func TestUnrollMatchesDirectForward(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(3), Input: 6 + r.Intn(8),
			Channels: 1 + r.Intn(3), Filters: 1 + r.Intn(4),
			Kernel: 1 + r.Intn(4), Stride: 1 + r.Intn(2), Pad: r.Intn(2),
		}
		if cfg.Validate() != nil {
			return true
		}
		x, w := randTensors(cfg, seed+1)
		y1 := tensor.New(cfg.OutputShape()...)
		y2 := tensor.New(cfg.OutputShape()...)
		DirectForward(cfg, x, w, y1)
		UnrollForward(cfg, x, w, y2)
		return tensor.AllClose(y1, y2, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTMatchesDirectForward(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(3), Input: 6 + r.Intn(10),
			Channels: 1 + r.Intn(3), Filters: 1 + r.Intn(4),
			Kernel: 1 + r.Intn(5), Stride: 1, Pad: r.Intn(2),
		}
		if cfg.Validate() != nil {
			return true
		}
		x, w := randTensors(cfg, seed+2)
		y1 := tensor.New(cfg.OutputShape()...)
		y2 := tensor.New(cfg.OutputShape()...)
		DirectForward(cfg, x, w, y1)
		FFTForward(cfg, x, w, y2)
		return tensor.AllClose(y1, y2, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTForwardRejectsStride2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FFT with stride 2 should panic")
		}
	}()
	cfg := Config{Batch: 1, Input: 8, Channels: 1, Filters: 1, Kernel: 3, Stride: 2}
	x, w := randTensors(cfg, 1)
	FFTForward(cfg, x, w, tensor.New(cfg.OutputShape()...))
}

func TestBackwardDataAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(2), Input: 6 + r.Intn(6),
			Channels: 1 + r.Intn(3), Filters: 1 + r.Intn(3),
			Kernel: 1 + r.Intn(4), Stride: 1, Pad: r.Intn(2),
		}
		if cfg.Validate() != nil {
			return true
		}
		_, w := randTensors(cfg, seed+3)
		dy := tensor.New(cfg.OutputShape()...)
		dy.FillUniform(tensor.NewRNG(seed+4), -1, 1)
		dx1 := tensor.New(cfg.InputShape()...)
		dx2 := tensor.New(cfg.InputShape()...)
		dx3 := tensor.New(cfg.InputShape()...)
		DirectBackwardData(cfg, dy, w, dx1)
		UnrollBackwardData(cfg, dy, w, dx2)
		FFTBackwardData(cfg, dy, w, dx3)
		return tensor.AllClose(dx1, dx2, 1e-4) && tensor.AllClose(dx1, dx3, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBackwardFilterAgreement(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		cfg := Config{
			Batch: 1 + r.Intn(2), Input: 6 + r.Intn(6),
			Channels: 1 + r.Intn(3), Filters: 1 + r.Intn(3),
			Kernel: 1 + r.Intn(4), Stride: 1, Pad: r.Intn(2),
		}
		if cfg.Validate() != nil {
			return true
		}
		x, _ := randTensors(cfg, seed+5)
		dy := tensor.New(cfg.OutputShape()...)
		dy.FillUniform(tensor.NewRNG(seed+6), -1, 1)
		dw1 := tensor.New(cfg.FilterShape()...)
		dw2 := tensor.New(cfg.FilterShape()...)
		dw3 := tensor.New(cfg.FilterShape()...)
		DirectBackwardFilter(cfg, x, dy, dw1)
		UnrollBackwardFilter(cfg, x, dy, dw2)
		FFTBackwardFilter(cfg, x, dy, dw3)
		return tensor.AllClose(dw1, dw2, 1e-4) && tensor.AllClose(dw1, dw3, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestStridedBackwardAgreement(t *testing.T) {
	// FFT cannot do stride > 1, but direct and unrolling must agree.
	cfg := Config{Batch: 2, Input: 9, Channels: 2, Filters: 3, Kernel: 3, Stride: 2}
	x, w := randTensors(cfg, 10)
	dy := tensor.New(cfg.OutputShape()...)
	dy.FillUniform(tensor.NewRNG(11), -1, 1)
	dx1 := tensor.New(cfg.InputShape()...)
	dx2 := tensor.New(cfg.InputShape()...)
	DirectBackwardData(cfg, dy, w, dx1)
	UnrollBackwardData(cfg, dy, w, dx2)
	if !tensor.AllClose(dx1, dx2, 1e-4) {
		t.Fatalf("strided backward-data disagreement: %g", tensor.RelDiff(dx1, dx2))
	}
	dw1 := tensor.New(cfg.FilterShape()...)
	dw2 := tensor.New(cfg.FilterShape()...)
	DirectBackwardFilter(cfg, x, dy, dw1)
	UnrollBackwardFilter(cfg, x, dy, dw2)
	if !tensor.AllClose(dw1, dw2, 1e-4) {
		t.Fatalf("strided backward-filter disagreement: %g", tensor.RelDiff(dw1, dw2))
	}
}

func TestBackwardDataMatchesNumericalGradient(t *testing.T) {
	cfg := Config{Batch: 1, Input: 5, Channels: 2, Filters: 2, Kernel: 3, Stride: 1}
	x, w := randTensors(cfg, 20)
	r := tensor.New(cfg.OutputShape()...)
	r.FillUniform(tensor.NewRNG(21), -1, 1)
	dx := tensor.New(cfg.InputShape()...)
	DirectBackwardData(cfg, r, w, dx)
	num := NumericalGradInput(cfg, DirectForward, x, w, r, 1e-2)
	if !tensor.AllClose(dx, num, 2e-2) {
		t.Fatalf("analytic dx differs from numerical: %g", tensor.RelDiff(dx, num))
	}
}

func TestBackwardFilterMatchesNumericalGradient(t *testing.T) {
	cfg := Config{Batch: 1, Input: 5, Channels: 2, Filters: 2, Kernel: 3, Stride: 1}
	x, w := randTensors(cfg, 22)
	r := tensor.New(cfg.OutputShape()...)
	r.FillUniform(tensor.NewRNG(23), -1, 1)
	dw := tensor.New(cfg.FilterShape()...)
	DirectBackwardFilter(cfg, x, r, dw)
	num := NumericalGradFilter(cfg, DirectForward, x, w, r, 1e-2)
	if !tensor.AllClose(dw, num, 2e-2) {
		t.Fatalf("analytic dw differs from numerical: %g", tensor.RelDiff(dw, num))
	}
}

func TestFFTPlanSize(t *testing.T) {
	cfg := Config{Batch: 1, Input: 100, Channels: 1, Filters: 1, Kernel: 3, Stride: 1}
	if got := FFTPlanSize(cfg); got != 128 {
		t.Fatalf("FFTPlanSize = %d, want 128", got)
	}
	cfg.Pad = 15
	if got := FFTPlanSize(cfg); got != 256 {
		t.Fatalf("padded FFTPlanSize = %d, want 256", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	cfg := Config{Batch: 1, Input: 8, Channels: 1, Filters: 1, Kernel: 3, Stride: 1}
	x := tensor.New(1, 1, 9, 9) // wrong input extent
	w := tensor.New(cfg.FilterShape()...)
	y := tensor.New(cfg.OutputShape()...)
	DirectForward(cfg, x, w, y)
}
