package conv

import (
	"fmt"

	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// Grouped convolution: the original AlexNet split its conv2/4/5 layers
// into two groups (one per GTX 580) — each output filter sees only its
// group's slice of the input channels, dividing both computation and
// parameters by the group count. The surveyed frameworks' reference
// re-implementations dropped grouping (as internal/models does), but it
// remains part of the historical model; these functions provide the
// exact semantics for the grouped AlexNet variant and its parameter
// count.

// GroupedFilterShape returns the filter-bank shape for g groups:
// (F, C/g, K, K) — each filter only spans its group's channels.
func GroupedFilterShape(cfg Config, groups int) tensor.Shape {
	return tensor.Shape{cfg.Filters, cfg.Channels / groups, cfg.Kernel, cfg.Kernel}
}

// GroupedSupported validates a group count against a config.
func GroupedSupported(cfg Config, groups int) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if groups <= 0 {
		return fmt.Errorf("conv: non-positive group count %d", groups)
	}
	if cfg.Channels%groups != 0 {
		return fmt.Errorf("conv: channels %d not divisible by %d groups", cfg.Channels, groups)
	}
	if cfg.Filters%groups != 0 {
		return fmt.Errorf("conv: filters %d not divisible by %d groups", cfg.Filters, groups)
	}
	return nil
}

// GroupedForward computes a grouped convolution: filters of group g
// read only input channels [g·C/G, (g+1)·C/G). With groups == 1 it is
// DirectForward.
func GroupedForward(cfg Config, groups int, x, w, y *tensor.Tensor) {
	if err := GroupedSupported(cfg, groups); err != nil {
		panic(err)
	}
	if !w.Shape().Equal(GroupedFilterShape(cfg, groups)) {
		panic(fmt.Sprintf("conv: grouped filter shape %v, want %v", w.Shape(), GroupedFilterShape(cfg, groups)))
	}
	b, c, i := cfg.Batch, cfg.Channels, cfg.Input
	f, k, s, p, o := cfg.Filters, cfg.Kernel, cfg.Stride, cfg.Pad, cfg.Out()
	cg := c / groups // channels per group
	fg := f / groups // filters per group
	par.ForEach(b*f, func(job int) {
		n, fi := job/f, job%f
		g := fi / fg
		wBase := w.Data[fi*cg*k*k:]
		for oy := 0; oy < o; oy++ {
			for ox := 0; ox < o; ox++ {
				var acc float32
				for ci := 0; ci < cg; ci++ {
					xChan := x.Data[(n*c+g*cg+ci)*i*i:]
					wChan := wBase[ci*k*k:]
					for kh := 0; kh < k; kh++ {
						iy := oy*s + kh - p
						if iy < 0 || iy >= i {
							continue
						}
						xRow := xChan[iy*i:]
						wRow := wChan[kh*k:]
						for kw := 0; kw < k; kw++ {
							ix := ox*s + kw - p
							if ix < 0 || ix >= i {
								continue
							}
							acc += xRow[ix] * wRow[kw]
						}
					}
				}
				y.Data[((n*f+fi)*o+oy)*o+ox] = acc
			}
		}
	})
}

// GroupedParams returns the weight parameter count of a grouped layer:
// F · (C/g) · K² — grouping divides parameters by g.
func GroupedParams(cfg Config, groups int) int {
	return cfg.Filters * (cfg.Channels / groups) * cfg.Kernel * cfg.Kernel
}
