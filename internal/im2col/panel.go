package im2col

import (
	"fmt"
	"sync"
)

// PanelPacker generates packed GEMM micro-panels of the lowered column
// matrix straight from the image, so the unrolling convolution engines
// never materialise col at all — the fusion cuConv (PAPERS.md) applies
// on the GPU, here applied to the packed kernel's B-side data staging.
// It implements gemm.BPacker structurally (PackPanelB) in two
// orientations:
//
//   - Reset: op(B) = col, the (C·KH·KW)×(OutH·OutW) lowered matrix.
//     This is the forward GEMM y = W·col.
//   - ResetTransposed: op(B) = colᵀ, (OutH·OutW)×(C·KH·KW). This turns
//     the backward-filter NT GEMM dw = dy·colᵀ into a plain NN GEMM
//     with a virtual right operand.
//
// A PanelPacker is stateless between panels, so one instance may serve
// concurrent PackPanelB calls on disjoint panels (the parallel packed
// kernel does exactly that). Instances are pooled via GetPacker /
// PutPacker for allocation-free steady state.
type PanelPacker struct {
	g     Geom
	img   []float32
	trans bool
	ow    int // OutW, cached for the column→(oy,ox) unflattening
	khkw  int // KH·KW, cached for the row→(c,kh,kw) unflattening
}

var packerPool = sync.Pool{New: func() any { return new(PanelPacker) }}

// GetPacker returns a pooled PanelPacker; Reset/ResetTransposed must be
// called before use.
func GetPacker() *PanelPacker { return packerPool.Get().(*PanelPacker) }

// PutPacker releases the image reference and returns the packer to the
// pool.
func PutPacker(p *PanelPacker) {
	p.img = nil
	packerPool.Put(p)
}

// Reset points the packer at one image (C×H×W row-major) in the
// forward orientation: op(B) = col.
func (p *PanelPacker) Reset(g Geom, img []float32) {
	if len(img) < g.C*g.H*g.W {
		panic(fmt.Sprintf("im2col: image too small for %+v", g))
	}
	p.g, p.img, p.trans = g, img, false
	p.ow, p.khkw = g.OutW(), g.KH*g.KW
}

// ResetTransposed points the packer at one image in the transposed
// orientation: op(B) = colᵀ.
func (p *PanelPacker) ResetTransposed(g Geom, img []float32) {
	p.Reset(g, img)
	p.trans = true
}

// PackPanelB writes the kc×nv block of op(B) at (p0, j0) into dst as a
// p-major panel with row stride ldp: dst[p*ldp+c] = op(B)[p0+p][j0+c].
// Out-of-image taps (padding) are written as zeros; only the nv valid
// columns of each row are touched. This is the gemm.BPacker contract.
//
//hot:noalloc
func (p *PanelPacker) PackPanelB(dst []float32, ldp, p0, kc, j0, nv int) {
	if p.trans {
		p.packTransposed(dst, ldp, p0, kc, j0, nv)
		return
	}
	p.packForward(dst, ldp, p0, kc, j0, nv)
}

// packForward: panel rows are lowered-matrix rows (one (c, kh, kw) tap
// each), panel columns are consecutive output positions. The output
// position advances incrementally — one add and a wrap test per element
// instead of a div/mod — and the input row index only recomputes on an
// output-row wrap.
//
//hot:noalloc
func (p *PanelPacker) packForward(dst []float32, ldp, p0, kc, j0, nv int) {
	g := p.g
	for pi := 0; pi < kc; pi++ {
		r := p0 + pi
		ch := r / p.khkw
		rem := r % p.khkw
		kh := rem / g.KW
		kw := rem % g.KW
		base := ch * g.H * g.W
		d := dst[pi*ldp : pi*ldp+nv]
		oy := j0 / p.ow
		ox := j0 % p.ow
		iy := oy*g.StrideH + kh - g.PadH
		for c := range d {
			var v float32
			if iy >= 0 && iy < g.H {
				ix := ox*g.StrideW + kw - g.PadW
				if ix >= 0 && ix < g.W {
					v = p.img[base+iy*g.W+ix]
				}
			}
			d[c] = v
			ox++
			if ox == p.ow {
				ox = 0
				oy++
				iy = oy*g.StrideH + kh - g.PadH
			}
		}
	}
}

// packTransposed: panel rows are output positions, panel columns are
// lowered-matrix rows. Each (c, kh, kw) tap is decomposed once and its
// column of the panel filled with an ldp-strided walk over the kc
// output positions.
//
//hot:noalloc
func (p *PanelPacker) packTransposed(dst []float32, ldp, p0, kc, j0, nv int) {
	g := p.g
	for c := 0; c < nv; c++ {
		r := j0 + c
		ch := r / p.khkw
		rem := r % p.khkw
		kh := rem / g.KW
		kw := rem % g.KW
		base := ch * g.H * g.W
		oy := p0 / p.ow
		ox := p0 % p.ow
		iy := oy*g.StrideH + kh - g.PadH
		di := c
		for pi := 0; pi < kc; pi++ {
			var v float32
			if iy >= 0 && iy < g.H {
				ix := ox*g.StrideW + kw - g.PadW
				if ix >= 0 && ix < g.W {
					v = p.img[base+iy*g.W+ix]
				}
			}
			dst[di] = v
			di += ldp
			ox++
			if ox == p.ow {
				ox = 0
				oy++
				iy = oy*g.StrideH + kh - g.PadH
			}
		}
	}
}
