package im2col

import (
	"math"
	"testing"
	"testing/quick"

	"gpucnn/internal/tensor"
)

func TestGeomOutputDims(t *testing.T) {
	cases := []struct {
		g          Geom
		wantH, wOW int
	}{
		{Geom{C: 1, H: 5, W: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1}, 3, 3},
		{Geom{C: 1, H: 5, W: 5, KH: 3, KW: 3, StrideH: 2, StrideW: 2}, 2, 2},
		{Geom{C: 1, H: 5, W: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}, 5, 5},
		{Geom{C: 1, H: 128, W: 128, KH: 11, KW: 11, StrideH: 1, StrideW: 1}, 118, 118},
		{Geom{C: 1, H: 7, W: 9, KH: 3, KW: 5, StrideH: 2, StrideW: 2}, 3, 3},
	}
	for _, c := range cases {
		if c.g.OutH() != c.wantH || c.g.OutW() != c.wOW {
			t.Errorf("%+v: got %dx%d, want %dx%d", c.g, c.g.OutH(), c.g.OutW(), c.wantH, c.wOW)
		}
	}
}

func TestGeomValidate(t *testing.T) {
	good := Geom{C: 3, H: 8, W: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
	bad := []Geom{
		{C: 0, H: 8, W: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1},
		{C: 3, H: 8, W: 8, KH: 3, KW: 3, StrideH: 0, StrideW: 1},
		{C: 3, H: 8, W: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: -1},
		{C: 3, H: 2, W: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1},
	}
	for i, g := range bad {
		if g.Validate() == nil {
			t.Errorf("bad geometry %d accepted: %+v", i, g)
		}
	}
}

func TestColDims(t *testing.T) {
	g := Geom{C: 3, H: 10, W: 10, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	if g.ColRows() != 27 {
		t.Fatalf("ColRows = %d, want 27", g.ColRows())
	}
	if g.ColCols() != 64 {
		t.Fatalf("ColCols = %d, want 64", g.ColCols())
	}
	if g.ColBytes() != 27*64*4 {
		t.Fatalf("ColBytes = %d", g.ColBytes())
	}
}

func TestIm2colHandExample(t *testing.T) {
	// 1 channel, 3x3 image, 2x2 kernel, stride 1: 4 output positions.
	g := Geom{C: 1, H: 3, W: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	img := []float32{
		1, 2, 3,
		4, 5, 6,
		7, 8, 9,
	}
	col := make([]float32, g.ColRows()*g.ColCols())
	Im2col(g, img, col)
	// Rows are (kh,kw) pairs; columns are output positions row-major.
	want := []float32{
		1, 2, 4, 5, // kh=0 kw=0
		2, 3, 5, 6, // kh=0 kw=1
		4, 5, 7, 8, // kh=1 kw=0
		5, 6, 8, 9, // kh=1 kw=1
	}
	for i := range want {
		if col[i] != want[i] {
			t.Fatalf("col[%d] = %v, want %v (full %v)", i, col[i], want[i], col)
		}
	}
}

func TestIm2colPaddingZeros(t *testing.T) {
	g := Geom{C: 1, H: 2, W: 2, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	img := []float32{1, 2, 3, 4}
	col := make([]float32, g.ColRows()*g.ColCols())
	Im2col(g, img, col)
	// Centre kernel tap (kh=1,kw=1) sees the unshifted image.
	centre := col[4*g.ColCols() : 5*g.ColCols()]
	for i, want := range []float32{1, 2, 3, 4} {
		if centre[i] != want {
			t.Fatalf("centre tap col = %v", centre)
		}
	}
	// Top-left tap (kh=0,kw=0) at output (0,0) reads padding -> 0.
	if col[0] != 0 {
		t.Fatalf("padded read should be zero, got %v", col[0])
	}
}

func TestCol2imAccumulates(t *testing.T) {
	// With a 2x2 kernel over a 3x3 image, the centre pixel is covered by
	// all 4 receptive fields; col of all ones must scatter multiplicity.
	g := Geom{C: 1, H: 3, W: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	col := make([]float32, g.ColRows()*g.ColCols())
	for i := range col {
		col[i] = 1
	}
	img := make([]float32, 9)
	Col2im(g, col, img)
	want := []float32{
		1, 2, 1,
		2, 4, 2,
		1, 2, 1,
	}
	for i := range want {
		if img[i] != want[i] {
			t.Fatalf("img = %v, want %v", img, want)
		}
	}
}

func TestCol2imZeroesTarget(t *testing.T) {
	g := Geom{C: 1, H: 3, W: 3, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	col := make([]float32, g.ColRows()*g.ColCols())
	img := []float32{9, 9, 9, 9, 9, 9, 9, 9, 9}
	Col2im(g, col, img)
	for i, v := range img {
		if v != 0 {
			t.Fatalf("img[%d] = %v, want 0 (Col2im must clear target)", i, v)
		}
	}
}

// TestRoundTripMultiplicity: col2im(im2col(x)) multiplies each pixel by
// the number of receptive fields covering it. With stride==kernel
// (non-overlapping tiling, no padding) that multiplicity is exactly 1.
func TestRoundTripNonOverlapping(t *testing.T) {
	g := Geom{C: 2, H: 6, W: 6, KH: 3, KW: 3, StrideH: 3, StrideW: 3}
	r := tensor.NewRNG(1)
	img := make([]float32, g.C*g.H*g.W)
	for i := range img {
		img[i] = 2*r.Float32() - 1
	}
	col := make([]float32, g.ColRows()*g.ColCols())
	Im2col(g, img, col)
	back := make([]float32, len(img))
	Col2im(g, col, back)
	for i := range img {
		if math.Abs(float64(img[i]-back[i])) > 1e-6 {
			t.Fatalf("non-overlapping round trip should be identity at %d: %v vs %v", i, img[i], back[i])
		}
	}
}

// coverageCount computes, for each input pixel, how many receptive
// fields include it — the expected round-trip multiplicity.
func coverageCount(g Geom) []float32 {
	cnt := make([]float32, g.C*g.H*g.W)
	oh, ow := g.OutH(), g.OutW()
	for c := 0; c < g.C; c++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for kh := 0; kh < g.KH; kh++ {
					for kw := 0; kw < g.KW; kw++ {
						iy := oy*g.StrideH + kh - g.PadH
						ix := ox*g.StrideW + kw - g.PadW
						if iy >= 0 && iy < g.H && ix >= 0 && ix < g.W {
							cnt[(c*g.H+iy)*g.W+ix]++
						}
					}
				}
			}
		}
	}
	return cnt
}

func TestRoundTripMultiplicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		g := Geom{
			C: 1 + r.Intn(3), H: 4 + r.Intn(8), W: 4 + r.Intn(8),
			KH: 1 + r.Intn(3), KW: 1 + r.Intn(3),
			StrideH: 1 + r.Intn(2), StrideW: 1 + r.Intn(2),
			PadH: r.Intn(2), PadW: r.Intn(2),
		}
		if g.Validate() != nil {
			return true // skip degenerate draws
		}
		img := make([]float32, g.C*g.H*g.W)
		for i := range img {
			img[i] = 2*r.Float32() - 1
		}
		col := make([]float32, g.ColRows()*g.ColCols())
		Im2col(g, img, col)
		back := make([]float32, len(img))
		Col2im(g, col, back)
		cnt := coverageCount(g)
		for i := range img {
			if math.Abs(float64(back[i]-img[i]*cnt[i])) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestIm2colBufferTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on undersized buffer")
		}
	}()
	g := Geom{C: 1, H: 4, W: 4, KH: 2, KW: 2, StrideH: 1, StrideW: 1}
	Im2col(g, make([]float32, 16), make([]float32, 3))
}
