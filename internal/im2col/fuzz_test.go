package im2col

import (
	"math"
	"testing"

	"gpucnn/internal/tensor"
)

// FuzzRoundTripMultiplicity fuzzes geometries and checks the
// col2im(im2col(x)) multiplicity identity that anchors the unrolling
// strategy's backward pass.
func FuzzRoundTripMultiplicity(f *testing.F) {
	f.Add(uint64(1), uint8(8), uint8(3), uint8(1), uint8(0))
	f.Add(uint64(7), uint8(12), uint8(2), uint8(2), uint8(1))
	f.Add(uint64(9), uint8(6), uint8(1), uint8(1), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, size, kernel, stride, pad uint8) {
		g := Geom{
			C: 1 + int(seed%3),
			H: 4 + int(size)%12, W: 4 + int(size)%12,
			KH: 1 + int(kernel)%4, KW: 1 + int(kernel)%4,
			StrideH: 1 + int(stride)%3, StrideW: 1 + int(stride)%3,
			PadH: int(pad) % 3, PadW: int(pad) % 3,
		}
		if g.Validate() != nil {
			t.Skip("degenerate geometry")
		}
		r := tensor.NewRNG(seed)
		img := make([]float32, g.C*g.H*g.W)
		for i := range img {
			img[i] = 2*r.Float32() - 1
		}
		col := make([]float32, g.ColRows()*g.ColCols())
		Im2col(g, img, col)
		back := make([]float32, len(img))
		Col2im(g, col, back)
		cnt := coverageCount(g)
		for i := range img {
			if math.Abs(float64(back[i]-img[i]*cnt[i])) > 1e-4 {
				t.Fatalf("geometry %+v: multiplicity identity violated at %d", g, i)
			}
		}
	})
}
