package im2col

import (
	"math/rand"
	"testing"
)

// panelGeoms covers ragged spatial extents, all the stride/pad
// combinations the Table I sweep uses, and 1×1 kernels.
var panelGeoms = []Geom{
	{C: 1, H: 4, W: 4, KH: 3, KW: 3, StrideH: 1, StrideW: 1},
	{C: 3, H: 8, W: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1},
	{C: 2, H: 9, W: 7, KH: 3, KW: 5, StrideH: 2, StrideW: 1, PadH: 2, PadW: 0},
	{C: 4, H: 11, W: 11, KH: 5, KW: 5, StrideH: 3, StrideW: 3, PadH: 2, PadW: 2},
	{C: 3, H: 16, W: 16, KH: 1, KW: 1, StrideH: 1, StrideW: 1},
	{C: 1, H: 5, W: 5, KH: 5, KW: 5, StrideH: 1, StrideW: 1, PadH: 4, PadW: 4},
	{C: 5, H: 6, W: 13, KH: 2, KW: 4, StrideH: 2, StrideW: 3, PadH: 1, PadW: 1},
}

func randImage(rng *rand.Rand, g Geom) []float32 {
	img := make([]float32, g.C*g.H*g.W)
	for i := range img {
		img[i] = float32(rng.NormFloat64())
	}
	return img
}

// checkPanels reconstructs op(B) panel by panel through the packer and
// compares every element against the materialised reference matrix.
func checkPanels(t *testing.T, g Geom, pk *PanelPacker, ref []float32, rows, cols int) {
	t.Helper()
	const ldp = 8
	for _, kc := range []int{1, 3, 8, rows} {
		if kc > rows {
			continue
		}
		for p0 := 0; p0 < rows; p0 += kc {
			kcv := kc
			if p0+kcv > rows {
				kcv = rows - p0
			}
			for j0 := 0; j0 < cols; j0 += ldp {
				nv := cols - j0
				if nv > ldp {
					nv = ldp
				}
				dst := make([]float32, kcv*ldp)
				for i := range dst {
					dst[i] = -999 // sentinel: tails must stay untouched
				}
				pk.PackPanelB(dst, ldp, p0, kcv, j0, nv)
				for p := 0; p < kcv; p++ {
					for c := 0; c < nv; c++ {
						want := ref[(p0+p)*cols+(j0+c)]
						if got := dst[p*ldp+c]; got != want {
							t.Fatalf("geom %+v panel p0=%d j0=%d: [%d,%d] = %g, want %g",
								g, p0, j0, p, c, got, want)
						}
					}
					for c := nv; c < ldp; c++ {
						if dst[p*ldp+c] != -999 {
							t.Fatalf("geom %+v panel p0=%d j0=%d: tail column %d written", g, p0, j0, c)
						}
					}
				}
			}
		}
	}
}

func TestPanelPackerMatchesIm2col(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, g := range panelGeoms {
		if err := g.Validate(); err != nil {
			t.Fatalf("bad test geom: %v", err)
		}
		img := randImage(rng, g)
		rows, cols := g.ColRows(), g.ColCols()
		col := make([]float32, rows*cols)
		Im2col(g, img, col)

		pk := GetPacker()
		pk.Reset(g, img)
		checkPanels(t, g, pk, col, rows, cols)

		// Transposed orientation: op(B) = colᵀ.
		colT := make([]float32, cols*rows)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				colT[c*rows+r] = col[r*cols+c]
			}
		}
		pk.ResetTransposed(g, img)
		checkPanels(t, g, pk, colT, cols, rows)
		PutPacker(pk)
	}
}

// FuzzPanelPacker compares fused panel generation against materialised
// Im2col over fuzzer-chosen geometry, panel window, and orientation.
func FuzzPanelPacker(f *testing.F) {
	f.Add(3, 8, 8, 3, 3, 1, 1, 1, 1, 0, 10, false)
	f.Add(2, 9, 7, 5, 3, 2, 1, 2, 0, 4, 0, true)
	f.Add(1, 4, 4, 3, 3, 1, 1, 0, 0, 0, 0, false)
	f.Fuzz(func(t *testing.T, c, h, w, kh, kw, sh, sw, ph, pw, p0, j0 int, trans bool) {
		fold := func(v, lo, hi int) int {
			if v < 0 {
				v = -v
			}
			return lo + v%(hi-lo+1)
		}
		g := Geom{
			C: fold(c, 1, 4), H: fold(h, 1, 12), W: fold(w, 1, 12),
			KH: fold(kh, 1, 5), KW: fold(kw, 1, 5),
			StrideH: fold(sh, 1, 3), StrideW: fold(sw, 1, 3),
			PadH: fold(ph, 0, 3), PadW: fold(pw, 0, 3),
		}
		if g.Validate() != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(77))
		img := randImage(rng, g)
		rows, cols := g.ColRows(), g.ColCols()
		col := make([]float32, rows*cols)
		Im2col(g, img, col)

		kRows, kCols := rows, cols
		if trans {
			kRows, kCols = cols, rows
		}
		P0 := fold(p0, 0, kRows-1)
		J0 := fold(j0, 0, kCols-1)
		kc := kRows - P0
		if kc > 9 {
			kc = 9
		}
		nv := kCols - J0
		if nv > 8 {
			nv = 8
		}
		const ldp = 8

		pk := GetPacker()
		defer PutPacker(pk)
		if trans {
			pk.ResetTransposed(g, img)
		} else {
			pk.Reset(g, img)
		}
		dst := make([]float32, kc*ldp)
		pk.PackPanelB(dst, ldp, P0, kc, J0, nv)
		for p := 0; p < kc; p++ {
			for cc := 0; cc < nv; cc++ {
				var want float32
				if trans {
					want = col[(J0+cc)*cols+(P0+p)]
				} else {
					want = col[(P0+p)*cols+(J0+cc)]
				}
				if dst[p*ldp+cc] != want {
					t.Fatalf("geom %+v trans=%v panel (%d,%d): [%d,%d] = %g, want %g",
						g, trans, P0, J0, p, cc, dst[p*ldp+cc], want)
				}
			}
		}
	})
}
