// Package im2col implements the unrolling transforms behind
// unrolling-based convolution (Caffe, Torch-cunn, Theano-CorrMM, cuDNN).
// Im2col flattens every receptive field of an input image into a column
// of a matrix so convolution becomes a single GEMM; col2im scatters a
// column matrix back, accumulating where receptive fields overlap (the
// backward-data path).
package im2col

import "fmt"

// Geom describes the geometry of one unrolling: a single image of
// C×H×W convolved with kernels of Kh×Kw at the given stride and padding.
type Geom struct {
	C, H, W    int // input channels, height, width
	KH, KW     int // kernel extents
	StrideH    int
	StrideW    int
	PadH, PadW int
}

// OutH returns the output height.
func (g Geom) OutH() int { return (g.H+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width.
func (g Geom) OutW() int { return (g.W+2*g.PadW-g.KW)/g.StrideW + 1 }

// ColRows returns the number of rows of the unrolled matrix (C·KH·KW).
func (g Geom) ColRows() int { return g.C * g.KH * g.KW }

// ColCols returns the number of columns of the unrolled matrix
// (OutH·OutW).
func (g Geom) ColCols() int { return g.OutH() * g.OutW() }

// ColBytes returns the size in bytes of the unrolled buffer for one
// image — this is the extra workspace unrolling engines pay for.
func (g Geom) ColBytes() int64 { return int64(g.ColRows()) * int64(g.ColCols()) * 4 }

// Validate reports an error for degenerate geometries.
func (g Geom) Validate() error {
	if g.C <= 0 || g.H <= 0 || g.W <= 0 || g.KH <= 0 || g.KW <= 0 {
		return fmt.Errorf("im2col: non-positive dimension in %+v", g)
	}
	if g.StrideH <= 0 || g.StrideW <= 0 {
		return fmt.Errorf("im2col: non-positive stride in %+v", g)
	}
	if g.PadH < 0 || g.PadW < 0 {
		return fmt.Errorf("im2col: negative padding in %+v", g)
	}
	if g.H+2*g.PadH < g.KH || g.W+2*g.PadW < g.KW {
		return fmt.Errorf("im2col: kernel %dx%d larger than padded input %dx%d",
			g.KH, g.KW, g.H+2*g.PadH, g.W+2*g.PadW)
	}
	return nil
}

// Im2col unrolls img (C×H×W row-major) into col, which must have
// ColRows()×ColCols() elements. Row r of col corresponds to one
// (channel, kernel-row, kernel-col) triple; column c corresponds to one
// output position.
//
//hot:noalloc
func Im2col(g Geom, img []float32, col []float32) {
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	if len(img) < g.C*g.H*g.W || len(col) < g.ColRows()*cols {
		//lint:ignore hotalloc the failed-precondition panic may format its message; the hot loop below stays clean
		panic(fmt.Sprintf("im2col: buffers too small for %+v", g))
	}
	row := 0
	for c := 0; c < g.C; c++ {
		chanBase := c * g.H * g.W
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				dst := col[row*cols:]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH + kh - g.PadH
					if iy < 0 || iy >= g.H {
						for ox := 0; ox < ow; ox++ {
							dst[idx] = 0
							idx++
						}
						continue
					}
					rowBase := chanBase + iy*g.W
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW + kw - g.PadW
						if ix < 0 || ix >= g.W {
							dst[idx] = 0
						} else {
							dst[idx] = img[rowBase+ix]
						}
						idx++
					}
				}
				row++
			}
		}
	}
}

// Col2im scatters col (ColRows()×ColCols()) back into img (C×H×W),
// accumulating overlapping contributions. img is zeroed first.
//
//hot:noalloc
func Col2im(g Geom, col []float32, img []float32) {
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	if len(img) < g.C*g.H*g.W || len(col) < g.ColRows()*cols {
		//lint:ignore hotalloc the failed-precondition panic may format its message; the hot loop below stays clean
		panic(fmt.Sprintf("im2col: buffers too small for %+v", g))
	}
	for i := range img[:g.C*g.H*g.W] {
		img[i] = 0
	}
	row := 0
	for c := 0; c < g.C; c++ {
		chanBase := c * g.H * g.W
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				src := col[row*cols:]
				idx := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH + kh - g.PadH
					if iy < 0 || iy >= g.H {
						idx += ow
						continue
					}
					rowBase := chanBase + iy*g.W
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW + kw - g.PadW
						if ix >= 0 && ix < g.W {
							img[rowBase+ix] += src[idx]
						}
						idx++
					}
				}
				row++
			}
		}
	}
}
