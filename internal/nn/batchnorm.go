package nn

import (
	"math"

	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// BatchNorm is spatial batch normalisation (Ioffe & Szegedy, 2015 —
// contemporary with the paper's frameworks and the standard extension
// they all grew): per-channel normalisation over the (N, H, W) axes
// with learned scale and shift, running statistics for evaluation.
type BatchNorm struct {
	name     string
	Eps      float64
	Momentum float32 // running-stat update rate

	gamma, beta *Param
	runMean     []float32
	runVar      []float32

	// Backward caches.
	lastX  *Value
	xhat   []float32
	invStd []float64
	mean   []float64
}

// NewBatchNorm builds a batch-normalisation layer (eps defaults to
// 1e-5, momentum to 0.1).
func NewBatchNorm(name string, eps float64, momentum float32) *BatchNorm {
	if eps == 0 {
		eps = 1e-5
	}
	if momentum == 0 {
		momentum = 0.1
	}
	return &BatchNorm{name: name, Eps: eps, Momentum: momentum}
}

// Name returns the layer name.
func (l *BatchNorm) Name() string { return l.name }

// Kind groups batch norm with LRN in the Figure 2 taxonomy (both are
// normalisation layers).
func (l *BatchNorm) Kind() Kind { return KindLRN }

// OutShape is the identity.
func (l *BatchNorm) OutShape(in tensor.Shape) tensor.Shape { return in.Clone() }

func (l *BatchNorm) ensureParams(c int) {
	if l.gamma != nil {
		return
	}
	l.gamma = NewParam(l.name+".gamma", c)
	l.gamma.W.Fill(1)
	l.beta = NewParam(l.name+".beta", c)
	l.runMean = make([]float32, c)
	l.runVar = make([]float32, c)
	for i := range l.runVar {
		l.runVar[i] = 1
	}
}

// Forward normalises per channel. In training mode batch statistics
// are used and the running statistics updated; in evaluation mode the
// running statistics are used.
func (l *BatchNorm) Forward(ctx *Context, x *Value) *Value {
	n, c, h, w := checkRank4(x, "batchnorm "+l.name)
	l.ensureParams(c)
	l.lastX = x
	out := &Value{Shape: x.Shape.Clone()}
	ctx.timed(KindLRN, func() {
		if x.Real() {
			out.Data = tensor.New(out.Shape...)
			hw := h * w
			m := float64(n * hw)
			l.xhat = make([]float32, x.Elems())
			l.invStd = make([]float64, c)
			l.mean = make([]float64, c)
			par.ForEach(c, func(ci int) {
				var mean, variance float64
				if ctx.Train {
					for bi := 0; bi < n; bi++ {
						seg := x.Data.Data[(bi*c+ci)*hw : (bi*c+ci+1)*hw]
						for _, v := range seg {
							mean += float64(v)
						}
					}
					mean /= m
					for bi := 0; bi < n; bi++ {
						seg := x.Data.Data[(bi*c+ci)*hw : (bi*c+ci+1)*hw]
						for _, v := range seg {
							d := float64(v) - mean
							variance += d * d
						}
					}
					variance /= m
					l.runMean[ci] = (1-l.Momentum)*l.runMean[ci] + l.Momentum*float32(mean)
					l.runVar[ci] = (1-l.Momentum)*l.runVar[ci] + l.Momentum*float32(variance)
				} else {
					mean = float64(l.runMean[ci])
					variance = float64(l.runVar[ci])
				}
				inv := 1 / math.Sqrt(variance+l.Eps)
				l.invStd[ci] = inv
				l.mean[ci] = mean
				g, b := l.gamma.W.Data[ci], l.beta.W.Data[ci]
				for bi := 0; bi < n; bi++ {
					base := (bi*c + ci) * hw
					for j := 0; j < hw; j++ {
						xh := float32((float64(x.Data.Data[base+j]) - mean) * inv)
						l.xhat[base+j] = xh
						out.Data.Data[base+j] = g*xh + b
					}
				}
			})
		}
		ctx.launch(elementwiseSpec("batchnorm_fwd", x.Elems(), 16))
	})
	return out
}

// Backward implements the full batch-norm gradient, including the
// dependence of the batch statistics on the input.
func (l *BatchNorm) Backward(ctx *Context, dy *Value) *Value {
	n, c, h, w := checkRank4(l.lastX, "batchnorm "+l.name)
	out := &Value{Shape: dy.Shape.Clone()}
	ctx.timed(KindLRN, func() {
		if dy.Real() && l.lastX.Real() {
			out.Data = tensor.New(out.Shape...)
			hw := h * w
			m := float64(n * hw)
			par.ForEach(c, func(ci int) {
				g := float64(l.gamma.W.Data[ci])
				inv := l.invStd[ci]
				// Accumulate Σdy and Σdy·x̂ for the channel.
				var sumDy, sumDyXhat float64
				for bi := 0; bi < n; bi++ {
					base := (bi*c + ci) * hw
					for j := 0; j < hw; j++ {
						d := float64(dy.Data.Data[base+j])
						sumDy += d
						sumDyXhat += d * float64(l.xhat[base+j])
					}
				}
				l.beta.Grad.Data[ci] += float32(sumDy)
				l.gamma.Grad.Data[ci] += float32(sumDyXhat)
				// dx = (g·inv/m)·(m·dy − Σdy − x̂·Σ(dy·x̂))
				scale := g * inv / m
				for bi := 0; bi < n; bi++ {
					base := (bi*c + ci) * hw
					for j := 0; j < hw; j++ {
						d := float64(dy.Data.Data[base+j])
						xh := float64(l.xhat[base+j])
						out.Data.Data[base+j] = float32(scale * (m*d - sumDy - xh*sumDyXhat))
					}
				}
			})
		}
		ctx.launch(elementwiseSpec("batchnorm_bwd", dy.Elems(), 20))
	})
	return out
}

// Params returns gamma and beta.
func (l *BatchNorm) Params() []*Param {
	if l.gamma == nil {
		return nil
	}
	return []*Param{l.gamma, l.beta}
}
