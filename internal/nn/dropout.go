package nn

import "gpucnn/internal/tensor"

// Dropout zeroes activations with probability P during training
// (inverted dropout: survivors are scaled by 1/(1-P) so evaluation
// needs no rescaling).
type Dropout struct {
	name string
	P    float32

	mask []float32
}

// NewDropout builds a dropout layer with drop probability p.
func NewDropout(name string, p float32) *Dropout { return &Dropout{name: name, P: p} }

// Name returns the layer name.
func (l *Dropout) Name() string { return l.name }

// Kind returns KindDropout.
func (l *Dropout) Kind() Kind { return KindDropout }

// OutShape is the identity.
func (l *Dropout) OutShape(in tensor.Shape) tensor.Shape { return in.Clone() }

// Forward samples a fresh mask each training pass.
func (l *Dropout) Forward(ctx *Context, x *Value) *Value {
	out := &Value{Shape: x.Shape.Clone()}
	ctx.timed(KindDropout, func() {
		if x.Real() {
			out.Data = tensor.New(out.Shape...)
			if !ctx.Train || l.P <= 0 {
				copy(out.Data.Data, x.Data.Data)
				l.mask = nil
			} else {
				keep := 1 - l.P
				scale := 1 / keep
				l.mask = make([]float32, x.Elems())
				for i := range l.mask {
					if ctx.RNG.Float32() < keep {
						l.mask[i] = scale
					}
				}
				for i, v := range x.Data.Data {
					out.Data.Data[i] = v * l.mask[i]
				}
			}
		}
		ctx.launch(elementwiseSpec("dropout_fwd", x.Elems(), 9))
	})
	return out
}

// Backward applies the same mask to the gradient.
func (l *Dropout) Backward(ctx *Context, dy *Value) *Value {
	out := &Value{Shape: dy.Shape.Clone()}
	ctx.timed(KindDropout, func() {
		if dy.Real() {
			out.Data = tensor.New(out.Shape...)
			if l.mask == nil {
				copy(out.Data.Data, dy.Data.Data)
			} else {
				for i, v := range dy.Data.Data {
					out.Data.Data[i] = v * l.mask[i]
				}
			}
		}
		ctx.launch(elementwiseSpec("dropout_bwd", dy.Elems(), 9))
	})
	return out
}

// Params returns nil; dropout has no parameters.
func (l *Dropout) Params() []*Param { return nil }
