package nn

import (
	"fmt"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// PoolMode selects max or average pooling.
type PoolMode int

// Pooling modes.
const (
	MaxPool PoolMode = iota
	AvgPool
)

// Pool is a spatial pooling layer.
type Pool struct {
	name   string
	Mode   PoolMode
	Window int
	Stride int
	Pad    int

	lastX  *Value
	argmax []int32 // flat input index per output element (max mode)
}

// NewMaxPool builds a max-pooling layer.
func NewMaxPool(name string, window, stride, pad int) *Pool {
	return &Pool{name: name, Mode: MaxPool, Window: window, Stride: stride, Pad: pad}
}

// NewAvgPool builds an average-pooling layer.
func NewAvgPool(name string, window, stride, pad int) *Pool {
	return &Pool{name: name, Mode: AvgPool, Window: window, Stride: stride, Pad: pad}
}

// Name returns the layer name.
func (l *Pool) Name() string { return l.name }

// Kind returns KindPool.
func (l *Pool) Kind() Kind { return KindPool }

func (l *Pool) outHW(h int) int {
	o := (h+2*l.Pad-l.Window)/l.Stride + 1
	// Caffe-style ceil pooling keeps the last partial window.
	if (o-1)*l.Stride+l.Window < h+2*l.Pad {
		o++
	}
	return o
}

// OutShape computes the pooled NCHW shape.
func (l *Pool) OutShape(in tensor.Shape) tensor.Shape {
	if len(in) != 4 {
		panic(fmt.Sprintf("nn: pool %s requires NCHW input, got %v", l.name, in))
	}
	return tensor.Shape{in[0], in[1], l.outHW(in[2]), l.outHW(in[3])}
}

func (l *Pool) spec(name string, elemsIn, elemsOut int) gpusim.KernelSpec {
	bytes := float64(elemsIn+elemsOut) * 4
	return gpusim.KernelSpec{
		Name:             name,
		Grid:             gpusim.Dim3{X: (elemsOut + 255) / 256},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    24,
		FLOPs:            float64(elemsOut) * float64(l.Window*l.Window),
		GlobalLoadBytes:  bytes * 0.7,
		GlobalStoreBytes: bytes * 0.3,
		LoadTransPerReq:  1.4,
		StoreTransPerReq: 1.1,
		L2HitFrac:        0.5,
		ActiveThreadFrac: 0.98,
		ILP:              2,
		EfficiencyScale:  0.85,
	}
}

// Forward pools each window (max keeps argmax indices for backward).
func (l *Pool) Forward(ctx *Context, x *Value) *Value {
	n, c, h, w := checkRank4(x, "pool "+l.name)
	oh, ow := l.outHW(h), l.outHW(w)
	l.lastX = x
	out := &Value{Shape: tensor.Shape{n, c, oh, ow}}
	ctx.timed(KindPool, func() {
		if x.Real() {
			out.Data = tensor.New(out.Shape...)
			l.argmax = make([]int32, out.Elems())
			par.ForEach(n*c, func(j int) {
				src := x.Data.Data[j*h*w:]
				dst := out.Data.Data[j*oh*ow:]
				arg := l.argmax[j*oh*ow:]
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						var acc float32
						var best int32 = -1
						count := 0
						first := true
						for ky := 0; ky < l.Window; ky++ {
							iy := oy*l.Stride + ky - l.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < l.Window; kx++ {
								ix := ox*l.Stride + kx - l.Pad
								if ix < 0 || ix >= w {
									continue
								}
								v := src[iy*w+ix]
								count++
								if l.Mode == MaxPool {
									if first || v > acc {
										acc = v
										best = int32(iy*w + ix)
										first = false
									}
								} else {
									acc += v
								}
							}
						}
						if l.Mode == AvgPool && count > 0 {
							acc /= float32(count)
						}
						dst[oy*ow+ox] = acc
						arg[oy*ow+ox] = best
					}
				}
			})
		}
		ctx.launch(l.spec("pool_fwd", x.Elems(), out.Elems()))
	})
	return out
}

// Backward scatters gradient to the max positions (or spreads it for
// average pooling).
func (l *Pool) Backward(ctx *Context, dy *Value) *Value {
	n, c, h, w := checkRank4(l.lastX, "pool "+l.name)
	oh, ow := l.outHW(h), l.outHW(w)
	out := &Value{Shape: l.lastX.Shape.Clone()}
	ctx.timed(KindPool, func() {
		if dy.Real() && l.lastX.Real() {
			out.Data = tensor.New(out.Shape...)
			par.ForEach(n*c, func(j int) {
				dst := out.Data.Data[j*h*w:]
				g := dy.Data.Data[j*oh*ow:]
				arg := l.argmax[j*oh*ow:]
				for oy := 0; oy < oh; oy++ {
					for ox := 0; ox < ow; ox++ {
						grad := g[oy*ow+ox]
						if l.Mode == MaxPool {
							if idx := arg[oy*ow+ox]; idx >= 0 {
								dst[idx] += grad
							}
							continue
						}
						// Average: spread over the valid window.
						count := 0
						for ky := 0; ky < l.Window; ky++ {
							iy := oy*l.Stride + ky - l.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < l.Window; kx++ {
								ix := ox*l.Stride + kx - l.Pad
								if ix >= 0 && ix < w {
									count++
								}
							}
						}
						if count == 0 {
							continue
						}
						share := grad / float32(count)
						for ky := 0; ky < l.Window; ky++ {
							iy := oy*l.Stride + ky - l.Pad
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < l.Window; kx++ {
								ix := ox*l.Stride + kx - l.Pad
								if ix >= 0 && ix < w {
									dst[iy*w+ix] += share
								}
							}
						}
					}
				}
			})
		}
		ctx.launch(l.spec("pool_bwd", l.lastX.Elems(), dy.Elems()))
	})
	return out
}

// Params returns nil; pooling has no parameters.
func (l *Pool) Params() []*Param { return nil }
