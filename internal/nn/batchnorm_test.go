package nn

import (
	"math"
	"testing"

	"gpucnn/internal/tensor"
)

func TestBatchNormNormalises(t *testing.T) {
	l := NewBatchNorm("bn", 0, 0)
	x := tensor.New(4, 3, 5, 5)
	x.FillUniform(tensor.NewRNG(1), -3, 7) // deliberately off-centre
	ctx := NewContext(nil, true)
	y := l.Forward(ctx, NewValue(x))
	// With gamma=1, beta=0 each channel of the output has ~zero mean
	// and ~unit variance.
	n, c, hw := 4, 3, 25
	for ci := 0; ci < c; ci++ {
		var mean, variance float64
		for bi := 0; bi < n; bi++ {
			for j := 0; j < hw; j++ {
				mean += float64(y.Data.At(bi, ci, j/5, j%5))
			}
		}
		mean /= float64(n * hw)
		for bi := 0; bi < n; bi++ {
			for j := 0; j < hw; j++ {
				d := float64(y.Data.At(bi, ci, j/5, j%5)) - mean
				variance += d * d
			}
		}
		variance /= float64(n * hw)
		if math.Abs(mean) > 1e-4 || math.Abs(variance-1) > 1e-3 {
			t.Fatalf("channel %d: mean %v var %v", ci, mean, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	l := NewBatchNorm("bn", 0, 0.5)
	x := tensor.New(8, 2, 4, 4)
	x.FillUniform(tensor.NewRNG(2), 2, 4) // mean ≈ 3
	train := NewContext(nil, true)
	for i := 0; i < 20; i++ {
		l.Forward(train, NewValue(x))
	}
	// Evaluation with a different input must normalise by the learned
	// running stats, not batch stats.
	probe := tensor.New(8, 2, 4, 4)
	probe.Fill(3) // equals the running mean
	eval := NewContext(nil, false)
	y := l.Forward(eval, NewValue(probe))
	if m := y.Data.Sum() / float64(y.Data.Len()); math.Abs(m) > 0.05 {
		t.Fatalf("eval output mean %v, want ~0 (input at running mean)", m)
	}
}

func TestBatchNormGradientInput(t *testing.T) {
	l := NewBatchNorm("bn", 0, 0)
	x := tensor.New(2, 2, 3, 3)
	x.FillUniform(tensor.NewRNG(3), -1, 1)
	gradCheckInput(t, l, x, x.Shape(), 3e-2)
}

func TestBatchNormGradientParams(t *testing.T) {
	l := NewBatchNorm("bn", 0, 0)
	x := tensor.New(2, 2, 3, 3)
	x.FillUniform(tensor.NewRNG(4), -1, 1)
	proj := tensor.New(x.Shape()...)
	proj.FillUniform(tensor.NewRNG(5), -1, 1)
	ctx := NewContext(nil, true)
	l.Forward(ctx, NewValue(x)) // materialise params
	l.gamma.W.FillUniform(tensor.NewRNG(6), 0.5, 1.5)
	l.gamma.Grad.Zero()
	l.beta.Grad.Zero()
	analyticGrads(l, x, proj)
	numG := numericalGrad(t, l, x, l.gamma.W, proj, 1e-2)
	if !tensor.AllClose(l.gamma.Grad, numG, 3e-2) {
		t.Fatalf("gamma gradient mismatch: %g", tensor.RelDiff(l.gamma.Grad, numG))
	}
	numB := numericalGrad(t, l, x, l.beta.W, proj, 1e-2)
	if !tensor.AllClose(l.beta.Grad, numB, 3e-2) {
		t.Fatalf("beta gradient mismatch: %g", tensor.RelDiff(l.beta.Grad, numB))
	}
}

func TestBatchNormInNetwork(t *testing.T) {
	net := NewNet("bn-net",
		NewConv("c1", nil, 4, 3, 1, 1),
		NewBatchNorm("bn1", 0, 0),
		NewReLU("r1"),
		NewFC("fc", 2),
		NewSoftmaxLoss("loss"),
	)
	r := tensor.NewRNG(7)
	ctx := NewContext(nil, true)
	opt := NewSGD(0.05, 0.9, 0)
	var first, last float64
	for step := 0; step < 30; step++ {
		x := tensor.New(8, 1, 6, 6)
		labels := make([]int, 8)
		for bi := 0; bi < 8; bi++ {
			labels[bi] = r.Intn(2)
			base := float32(labels[bi])*2 - 1
			for j := 0; j < 36; j++ {
				x.Data[bi*36+j] = base + 0.3*(2*r.Float32()-1)
			}
		}
		loss, _ := net.TrainStep(ctx, x, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(net.Params())
	}
	if last >= first/2 {
		t.Fatalf("batch-normed net did not converge: %v -> %v", first, last)
	}
}
