package nn

import (
	"math"
	"strings"
	"testing"
	"time"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// numericalGrad estimates d(loss)/d(target) for the scalar loss
// Σ out ⊙ proj by central differences, where target aliases either the
// input tensor or a parameter tensor.
func numericalGrad(t *testing.T, layer Layer, x *tensor.Tensor, target *tensor.Tensor, proj *tensor.Tensor, eps float32) *tensor.Tensor {
	t.Helper()
	grad := tensor.New(target.Shape()...)
	loss := func() float64 {
		ctx := NewContext(nil, true)
		ctx.RNG = tensor.NewRNG(42) // freeze dropout masks
		out := layer.Forward(ctx, NewValue(x))
		var s float64
		for i := range out.Data.Data {
			s += float64(out.Data.Data[i]) * float64(proj.Data[i])
		}
		return s
	}
	for i := range target.Data {
		orig := target.Data[i]
		target.Data[i] = orig + eps
		lp := loss()
		target.Data[i] = orig - eps
		lm := loss()
		target.Data[i] = orig
		grad.Data[i] = float32((lp - lm) / (2 * float64(eps)))
	}
	return grad
}

// nudgeAwayFromZero shifts every element at least margin away from
// zero, so finite differences don't straddle the ReLU kink.
func nudgeAwayFromZero(x *tensor.Tensor, margin float32) {
	for i, v := range x.Data {
		if v >= 0 && v < margin {
			x.Data[i] = v + margin
		} else if v < 0 && v > -margin {
			x.Data[i] = v - margin
		}
	}
}

// analyticGrads runs forward+backward once and returns dx.
func analyticGrads(layer Layer, x, proj *tensor.Tensor) *Value {
	ctx := NewContext(nil, true)
	ctx.RNG = tensor.NewRNG(42)
	layer.Forward(ctx, NewValue(x))
	return layer.Backward(ctx, NewValue(proj))
}

func gradCheckInput(t *testing.T, layer Layer, x *tensor.Tensor, outShape tensor.Shape, tol float64) {
	t.Helper()
	proj := tensor.New(outShape...)
	proj.FillUniform(tensor.NewRNG(7), -1, 1)
	dx := analyticGrads(layer, x, proj)
	num := numericalGrad(t, layer, x, x, proj, 1e-2)
	if !tensor.AllClose(dx.Data, num, tol) {
		t.Fatalf("input gradient mismatch: rel diff %g", tensor.RelDiff(dx.Data, num))
	}
}

func TestReLUForward(t *testing.T) {
	l := NewReLU("r")
	x := tensor.FromSlice([]float32{-1, 0, 2, -3}, 1, 1, 2, 2)
	ctx := NewContext(nil, false)
	y := l.Forward(ctx, NewValue(x))
	want := []float32{0, 0, 2, 0}
	for i := range want {
		if y.Data.Data[i] != want[i] {
			t.Fatalf("relu = %v, want %v", y.Data.Data, want)
		}
	}
}

func TestReLUGradient(t *testing.T) {
	x := tensor.New(2, 3, 4, 4)
	x.FillUniform(tensor.NewRNG(1), -1, 1)
	nudgeAwayFromZero(x, 0.05)
	gradCheckInput(t, NewReLU("r"), x, x.Shape(), 2e-2)
}

func TestMaxPoolForward(t *testing.T) {
	l := NewMaxPool("p", 2, 2, 0)
	x := tensor.FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 0,
	}, 1, 1, 4, 4)
	ctx := NewContext(nil, false)
	y := l.Forward(ctx, NewValue(x))
	want := []float32{4, 8, 9, 4}
	for i := range want {
		if y.Data.Data[i] != want[i] {
			t.Fatalf("maxpool = %v, want %v", y.Data.Data, want)
		}
	}
}

func TestPoolCeilMode(t *testing.T) {
	// 13 -> 6 with window 3 stride 2 (AlexNet pool5), 7x7 avg -> 1.
	l := NewMaxPool("p", 3, 2, 0)
	if got := l.OutShape(tensor.Shape{1, 1, 13, 13}); got[2] != 6 {
		t.Fatalf("pool(13,3,2) = %v, want 6", got)
	}
	if got := l.OutShape(tensor.Shape{1, 1, 55, 55}); got[2] != 27 {
		t.Fatalf("pool(55,3,2) = %v, want 27", got)
	}
	// Ceil mode: 28 with window 3 stride 2 -> 14 (Caffe's GoogLeNet).
	if got := l.OutShape(tensor.Shape{1, 1, 28, 28}); got[2] != 14 {
		t.Fatalf("pool(28,3,2) = %v, want 14", got)
	}
}

func TestMaxPoolGradient(t *testing.T) {
	l := NewMaxPool("p", 2, 2, 0)
	x := tensor.New(2, 2, 6, 6)
	x.FillUniform(tensor.NewRNG(2), -1, 1)
	gradCheckInput(t, l, x, l.OutShape(x.Shape()), 2e-2)
}

func TestAvgPoolGradient(t *testing.T) {
	l := NewAvgPool("p", 3, 2, 1)
	x := tensor.New(1, 2, 7, 7)
	x.FillUniform(tensor.NewRNG(3), -1, 1)
	gradCheckInput(t, l, x, l.OutShape(x.Shape()), 2e-2)
}

func TestFCForwardKnown(t *testing.T) {
	l := NewFC("fc", 2)
	x := tensor.FromSlice([]float32{1, 2, 3}, 1, 3)
	ctx := NewContext(nil, false)
	l.Forward(ctx, NewValue(x)) // initialise params
	// Overwrite with known weights.
	copy(l.weight.W.Data, []float32{1, 0, 0, 0, 1, 0})
	copy(l.bias.W.Data, []float32{10, 20})
	y := l.Forward(ctx, NewValue(x))
	if y.Data.Data[0] != 11 || y.Data.Data[1] != 22 {
		t.Fatalf("fc = %v, want [11 22]", y.Data.Data)
	}
}

func TestFCGradients(t *testing.T) {
	l := NewFC("fc", 5)
	x := tensor.New(3, 7)
	x.FillUniform(tensor.NewRNG(4), -1, 1)
	gradCheckInput(t, l, x, tensor.Shape{3, 5}, 2e-2)

	// Weight gradient check.
	proj := tensor.New(3, 5)
	proj.FillUniform(tensor.NewRNG(5), -1, 1)
	l.weight.Grad.Zero()
	l.bias.Grad.Zero()
	analyticGrads(l, x, proj)
	numW := numericalGrad(t, l, x, l.weight.W, proj, 1e-2)
	if !tensor.AllClose(l.weight.Grad, numW, 2e-2) {
		t.Fatalf("fc weight gradient mismatch: %g", tensor.RelDiff(l.weight.Grad, numW))
	}
	numB := numericalGrad(t, l, x, l.bias.W, proj, 1e-2)
	if !tensor.AllClose(l.bias.Grad, numB, 2e-2) {
		t.Fatalf("fc bias gradient mismatch: %g", tensor.RelDiff(l.bias.Grad, numB))
	}
}

func TestLRNIdentityAtZeroAlpha(t *testing.T) {
	l := NewLRN("n", 5, 1e-12, 0.75, 1)
	x := tensor.New(1, 8, 3, 3)
	x.FillUniform(tensor.NewRNG(6), -1, 1)
	ctx := NewContext(nil, false)
	y := l.Forward(ctx, NewValue(x))
	if !tensor.AllClose(x, y.Data, 1e-5) {
		t.Fatal("LRN with alpha~0, k=1 should be the identity")
	}
}

func TestLRNGradient(t *testing.T) {
	// Use a large alpha so the normalisation term actually matters.
	l := NewLRN("n", 3, 0.5, 0.75, 2)
	x := tensor.New(1, 6, 3, 3)
	x.FillUniform(tensor.NewRNG(7), -1, 1)
	gradCheckInput(t, l, x, x.Shape(), 3e-2)
}

func TestDropoutEvalIsIdentity(t *testing.T) {
	l := NewDropout("d", 0.5)
	x := tensor.New(4, 10)
	x.FillUniform(tensor.NewRNG(8), -1, 1)
	ctx := NewContext(nil, false) // eval mode
	y := l.Forward(ctx, NewValue(x))
	if tensor.MaxAbsDiff(x, y.Data) != 0 {
		t.Fatal("eval-mode dropout must be the identity")
	}
}

func TestDropoutTrainMasksAndScales(t *testing.T) {
	l := NewDropout("d", 0.5)
	x := tensor.New(1, 10000)
	x.Fill(1)
	ctx := NewContext(nil, true)
	y := l.Forward(ctx, NewValue(x))
	zeros, twos := 0, 0
	for _, v := range y.Data.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("dropout output must be 0 or 1/(1-p)=2, got %v", v)
		}
	}
	if zeros < 4000 || zeros > 6000 {
		t.Fatalf("drop rate looks wrong: %d/10000 zeros", zeros)
	}
	if twos+zeros != 10000 {
		t.Fatal("mask accounting wrong")
	}
	// Backward applies the same mask.
	dy := tensor.New(1, 10000)
	dy.Fill(1)
	dx := l.Backward(ctx, NewValue(dy))
	for i, v := range dx.Data.Data {
		if (y.Data.Data[i] == 0) != (v == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestSoftmaxProbabilities(t *testing.T) {
	l := NewSoftmaxLoss("s")
	x := tensor.FromSlice([]float32{1, 2, 3, 1, 1, 1}, 2, 3)
	ctx := NewContext(nil, true)
	y := l.Forward(ctx, NewValue(x))
	for bi := 0; bi < 2; bi++ {
		var sum float64
		for j := 0; j < 3; j++ {
			sum += float64(y.Data.At(bi, j))
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d probabilities sum to %v", bi, sum)
		}
	}
	// Uniform logits -> loss = ln(3).
	loss, acc := l.Loss([]int{2, 0})
	_ = acc
	want := (-math.Log(float64(y.Data.At(0, 2))) - math.Log(1.0/3)) / 2
	if math.Abs(loss-want) > 1e-5 {
		t.Fatalf("loss = %v, want %v", loss, want)
	}
}

func TestSoftmaxGradientSumsToZero(t *testing.T) {
	l := NewSoftmaxLoss("s")
	x := tensor.New(4, 6)
	x.FillUniform(tensor.NewRNG(9), -1, 1)
	ctx := NewContext(nil, true)
	out := l.Forward(ctx, NewValue(x))
	l.Loss([]int{0, 1, 2, 3})
	g := l.Backward(ctx, &Value{Shape: out.Shape})
	var sum float64
	for _, v := range g.Data.Data {
		sum += float64(v)
	}
	if math.Abs(sum) > 1e-5 {
		t.Fatalf("softmax-loss gradient rows must sum to zero, got %v", sum)
	}
}

func TestConvLayerGradient(t *testing.T) {
	l := NewConv("c", nil, 4, 3, 1, 1)
	x := tensor.New(2, 3, 6, 6)
	x.FillUniform(tensor.NewRNG(10), -1, 1)
	gradCheckInput(t, l, x, l.OutShape(x.Shape()), 2e-2)

	proj := tensor.New(l.OutShape(x.Shape())...)
	proj.FillUniform(tensor.NewRNG(11), -1, 1)
	l.weight.Grad.Zero()
	l.bias.Grad.Zero()
	analyticGrads(l, x, proj)
	numW := numericalGrad(t, l, x, l.weight.W, proj, 1e-2)
	if !tensor.AllClose(l.weight.Grad, numW, 3e-2) {
		t.Fatalf("conv weight gradient mismatch: %g", tensor.RelDiff(l.weight.Grad, numW))
	}
	numB := numericalGrad(t, l, x, l.bias.W, proj, 1e-2)
	if !tensor.AllClose(l.bias.Grad, numB, 3e-2) {
		t.Fatalf("conv bias gradient mismatch: %g", tensor.RelDiff(l.bias.Grad, numB))
	}
}

func TestBranchConcatShapes(t *testing.T) {
	b := NewBranch("inc",
		[]Layer{NewConv("a", nil, 4, 1, 1, 0)},
		[]Layer{NewConv("b", nil, 6, 3, 1, 1)},
		[]Layer{NewMaxPool("p", 3, 1, 1)},
	)
	in := tensor.Shape{2, 3, 8, 8}
	out := b.OutShape(in)
	if !out.Equal(tensor.Shape{2, 4 + 6 + 3, 8, 8}) {
		t.Fatalf("branch OutShape = %v", out)
	}
}

func TestBranchForwardConcatenates(t *testing.T) {
	b := NewBranch("inc",
		[]Layer{NewReLU("r1")},
		[]Layer{NewReLU("r2")},
	)
	x := tensor.New(2, 3, 4, 4)
	x.FillUniform(tensor.NewRNG(12), -1, 1)
	ctx := NewContext(nil, false)
	y := b.Forward(ctx, NewValue(x))
	if !y.Shape.Equal(tensor.Shape{2, 6, 4, 4}) {
		t.Fatalf("branch output shape %v", y.Shape)
	}
	// Both halves must equal relu(x).
	for n := 0; n < 2; n++ {
		for c := 0; c < 3; c++ {
			for h := 0; h < 4; h++ {
				for w := 0; w < 4; w++ {
					v := x.At(n, c, h, w)
					if v < 0 {
						v = 0
					}
					if y.Data.At(n, c, h, w) != v || y.Data.At(n, c+3, h, w) != v {
						t.Fatal("concat halves wrong")
					}
				}
			}
		}
	}
}

func TestBranchGradient(t *testing.T) {
	b := NewBranch("inc",
		[]Layer{NewConv("a", nil, 2, 1, 1, 0)},
		[]Layer{NewMaxPool("p", 3, 1, 1)},
	)
	x := tensor.New(1, 3, 5, 5)
	x.FillUniform(tensor.NewRNG(13), -1, 1)
	gradCheckInput(t, b, x, b.OutShape(x.Shape()), 3e-2)
}

func TestSGDStep(t *testing.T) {
	p := NewParam("w", 3)
	p.W.Fill(1)
	p.Grad.Fill(2)
	opt := NewSGD(0.1, 0, 0)
	opt.Step([]*Param{p})
	for _, v := range p.W.Data {
		if math.Abs(float64(v)-0.8) > 1e-6 {
			t.Fatalf("w = %v, want 0.8", v)
		}
	}
	if p.Grad.Sum() != 0 {
		t.Fatal("Step must zero gradients")
	}
	// Momentum accumulates across steps.
	p.Grad.Fill(2)
	optM := NewSGD(0.1, 0.9, 0)
	optM.Step([]*Param{p})
	first := p.W.Data[0]
	p.Grad.Fill(2)
	optM.Step([]*Param{p})
	if step2 := first - p.W.Data[0]; step2 <= 0.2 {
		t.Fatalf("momentum step %v should exceed the plain step 0.2", step2)
	}
}

func TestNetShapePropagation(t *testing.T) {
	net := NewNet("tiny",
		NewConv("c1", nil, 4, 3, 1, 1),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2, 0),
		NewFC("fc", 10),
		NewSoftmaxLoss("loss"),
	)
	out := net.OutShape(tensor.Shape{8, 3, 8, 8})
	if !out.Equal(tensor.Shape{8, 10}) {
		t.Fatalf("net OutShape = %v", out)
	}
}

// TestTrainingReducesLoss trains a tiny net on linearly separable
// synthetic data and checks convergence.
func TestTrainingReducesLoss(t *testing.T) {
	net := NewNet("tiny",
		NewConv("c1", nil, 4, 3, 1, 0),
		NewReLU("r1"),
		NewFC("fc", 2),
		NewSoftmaxLoss("loss"),
	)
	r := tensor.NewRNG(17)
	batch := 16
	makeBatch := func() (*tensor.Tensor, []int) {
		x := tensor.New(batch, 1, 6, 6)
		labels := make([]int, batch)
		for bi := 0; bi < batch; bi++ {
			label := r.Intn(2)
			labels[bi] = label
			base := float32(label)*2 - 1 // class 0 -> -1, class 1 -> +1
			for i := 0; i < 36; i++ {
				x.Data[bi*36+i] = base + 0.3*(2*r.Float32()-1)
			}
		}
		return x, labels
	}
	ctx := NewContext(nil, true)
	opt := NewSGD(0.05, 0.9, 0)
	var first, last float64
	for step := 0; step < 30; step++ {
		x, labels := makeBatch()
		loss, _ := net.TrainStep(ctx, x, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(net.Params())
	}
	if last >= first/2 {
		t.Fatalf("training did not converge: first %.4f last %.4f", first, last)
	}
	x, labels := makeBatch()
	net.Forward(ctx, NewValue(x))
	_, acc := net.Loss().Loss(labels)
	if acc < 0.9 {
		t.Fatalf("accuracy after training = %v, want >= 0.9", acc)
	}
}

// TestSimulateIterationAdvancesClock: shape-only runs must produce a
// per-kind ledger without touching data.
func TestSimulateIterationAdvancesClock(t *testing.T) {
	net := NewNet("tiny",
		NewConv("c1", nil, 16, 3, 1, 1),
		NewReLU("r1"),
		NewMaxPool("p1", 2, 2, 0),
		NewFC("fc", 10),
		NewSoftmaxLoss("loss"),
	)
	dev := gpusim.New(gpusim.TeslaK40c())
	ctx := NewContext(dev, true)
	net.SimulateIteration(ctx, tensor.Shape{32, 3, 32, 32})
	if dev.Elapsed() <= 0 {
		t.Fatal("simulated clock did not advance")
	}
	if ctx.TimeByKind[KindConv] <= 0 || ctx.TimeByKind[KindFC] <= 0 {
		t.Fatalf("missing ledger entries: %v", ctx.TimeByKind)
	}
	if ctx.TotalTime() > dev.Elapsed() {
		t.Fatal("ledger exceeds device clock")
	}
	net.Release()
	if dev.Mem.Used() != 0 {
		t.Fatalf("Release leaked %d device bytes", dev.Mem.Used())
	}
}

func TestConvShareAndReport(t *testing.T) {
	times := map[Kind]time.Duration{
		KindConv: 90 * time.Millisecond,
		KindFC:   10 * time.Millisecond,
	}
	if s := ConvShare(times); math.Abs(s-0.9) > 1e-9 {
		t.Fatalf("ConvShare = %v, want 0.9", s)
	}
	rep := BreakdownReport(times)
	if !strings.Contains(rep, "Conv") || !strings.Contains(rep, "90.0%") {
		t.Fatalf("report missing content:\n%s", rep)
	}
	if ConvShare(nil) != 0 {
		t.Fatal("empty ledger should have zero share")
	}
}

func TestNestedBranchGradient(t *testing.T) {
	inner := NewBranch("inner",
		[]Layer{NewConv("ia", nil, 2, 1, 1, 0)},
		[]Layer{NewReLU("ib")},
	)
	outer := NewBranch("outer",
		[]Layer{inner},
		[]Layer{NewAvgPool("op", 3, 1, 1)}, // avg: smooth, so finite differences are exact
	)
	x := tensor.New(1, 2, 5, 5)
	x.FillUniform(tensor.NewRNG(31), -1, 1)
	nudgeAwayFromZero(x, 0.05)
	out := outer.OutShape(x.Shape())
	// inner: 2 conv + 2 relu channels = 4; outer: 4 + 2 pool = 6.
	if !out.Equal(tensor.Shape{1, 6, 5, 5}) {
		t.Fatalf("nested branch OutShape = %v", out)
	}
	gradCheckInput(t, outer, x, out, 3e-2)
}

func TestFCFlattensRank4(t *testing.T) {
	l := NewFC("fc", 5)
	x := tensor.New(3, 2, 4, 4) // flattens to (3, 32)
	x.FillUniform(tensor.NewRNG(32), -1, 1)
	ctx := NewContext(nil, false)
	y := l.Forward(ctx, NewValue(x))
	if !y.Shape.Equal(tensor.Shape{3, 5}) {
		t.Fatalf("FC on rank-4 input -> %v", y.Shape)
	}
	// Changing the input width afterwards must be rejected.
	defer func() {
		if recover() == nil {
			t.Fatal("FC must reject a changed input width")
		}
	}()
	l.Forward(ctx, NewValue(tensor.New(3, 2, 5, 5)))
}

func TestNetWithEveryLayerTypeTrains(t *testing.T) {
	net := NewNet("kitchen-sink",
		NewConv("c1", nil, 6, 3, 1, 1),
		NewBatchNorm("bn1", 0, 0),
		NewReLU("r1"),
		NewLRN("n1", 3, 0, 0, 0),
		NewBranch("b1",
			[]Layer{NewConv("b1a", nil, 4, 1, 1, 0)},
			[]Layer{NewMaxPool("b1p", 3, 1, 1)},
		),
		NewMaxPool("p1", 2, 2, 0),
		NewDropout("d1", 0.2),
		NewFC("fc", 2),
		NewSoftmaxLoss("loss"),
	)
	r := tensor.NewRNG(33)
	ctx := NewContext(nil, true)
	opt := NewSGD(0.03, 0.9, 0)
	var first, last float64
	for step := 0; step < 40; step++ {
		x := tensor.New(8, 1, 8, 8)
		labels := make([]int, 8)
		for bi := 0; bi < 8; bi++ {
			labels[bi] = r.Intn(2)
			base := float32(labels[bi])*2 - 1
			for j := 0; j < 64; j++ {
				x.Data[bi*64+j] = base + 0.4*(2*r.Float32()-1)
			}
		}
		loss, _ := net.TrainStep(ctx, x, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		opt.Step(net.Params())
	}
	if last >= first*0.6 {
		t.Fatalf("kitchen-sink net did not learn: %v -> %v", first, last)
	}
}

func TestActivationAccounting(t *testing.T) {
	net := NewNet("tiny",
		NewConv("c1", nil, 4, 3, 1, 1), // out 8x8x4 = 256 elems/img
		NewMaxPool("p1", 2, 2, 0),      // out 4x4x4 = 64
		NewFC("fc", 10),                // out 10
		NewSoftmaxLoss("loss"),         // out 10
	)
	ctx := NewContext(nil, true)
	net.Forward(ctx, ShapeOnly(2, 3, 8, 8))
	// (512 + 128 + 20 + 20) elems × 4 B × 2 (grads) = 5440.
	want := int64(512+128+20+20) * 4 * 2
	if ctx.ActivationBytes != want {
		t.Fatalf("ActivationBytes = %d, want %d", ctx.ActivationBytes, want)
	}
	// Evaluation mode counts no gradient twin.
	eval := NewContext(nil, false)
	net.Forward(eval, ShapeOnly(2, 3, 8, 8))
	if eval.ActivationBytes != want/2 {
		t.Fatalf("eval ActivationBytes = %d, want %d", eval.ActivationBytes, want/2)
	}
}
