package nn

import (
	"bytes"
	"strings"
	"testing"

	"gpucnn/internal/tensor"
)

func tinyNet() *Net {
	return NewNet("tiny",
		NewConv("c1", nil, 4, 3, 1, 1),
		NewReLU("r1"),
		NewFC("fc", 3),
		NewSoftmaxLoss("loss"),
	)
}

func materialise(n *Net) {
	x := tensor.New(1, 2, 6, 6)
	x.FillUniform(tensor.NewRNG(1), -1, 1)
	n.Forward(NewContext(nil, false), NewValue(x))
}

func TestCheckpointRoundTrip(t *testing.T) {
	a := tinyNet()
	materialise(a)
	// Perturb weights so the round trip is meaningful.
	for _, p := range a.Params() {
		p.W.FillUniform(tensor.NewRNG(uint64(len(p.Name))), -1, 1)
	}
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}

	b := tinyNet()
	materialise(b)
	if err := b.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("param count mismatch %d vs %d", len(pa), len(pb))
	}
	for i := range pa {
		if tensor.MaxAbsDiff(pa[i].W, pb[i].W) != 0 {
			t.Fatalf("parameter %s not restored exactly", pa[i].Name)
		}
	}
}

func TestCheckpointPredictionsSurvive(t *testing.T) {
	a := tinyNet()
	x := tensor.New(2, 2, 6, 6)
	x.FillUniform(tensor.NewRNG(5), -1, 1)
	outA := a.Forward(NewContext(nil, false), NewValue(x))

	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := tinyNet()
	materialise(b)
	if err := b.Load(&buf); err != nil {
		t.Fatal(err)
	}
	outB := b.Forward(NewContext(nil, false), NewValue(x))
	if tensor.MaxAbsDiff(outA.Data, outB.Data) > 1e-6 {
		t.Fatal("restored network gives different predictions")
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	a := tinyNet()
	materialise(a)
	var buf bytes.Buffer
	a.Save(&buf)

	other := NewNet("other",
		NewConv("different", nil, 4, 3, 1, 1),
		NewFC("fc", 3),
		NewSoftmaxLoss("loss"),
	)
	x := tensor.New(1, 2, 6, 6)
	other.Forward(NewContext(nil, false), NewValue(x))
	err := other.Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("wrong-architecture load should fail with a name mismatch, got %v", err)
	}
}

func TestLoadRejectsWrongShape(t *testing.T) {
	a := tinyNet()
	materialise(a)
	var buf bytes.Buffer
	a.Save(&buf)

	bigger := NewNet("tiny",
		NewConv("c1", nil, 8, 3, 1, 1), // 8 filters instead of 4
		NewReLU("r1"),
		NewFC("fc", 3),
		NewSoftmaxLoss("loss"),
	)
	x := tensor.New(1, 2, 6, 6)
	bigger.Forward(NewContext(nil, false), NewValue(x))
	if err := bigger.Load(&buf); err == nil {
		t.Fatal("shape mismatch should fail")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	n := tinyNet()
	materialise(n)
	if err := n.Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage input should fail")
	}
	if err := n.Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input should fail")
	}
}
