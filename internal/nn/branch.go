package nn

import (
	"fmt"

	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// Branch runs several layer stacks on the same input and concatenates
// their outputs along the channel axis — GoogLeNet's inception module.
// The concatenation cost is attributed to the Concat category, matching
// the "Concat layer" slice in the paper's Figure 2 GoogLeNet breakdown.
type Branch struct {
	name    string
	Paths   [][]Layer
	lastX   *Value
	splitsC []int // per-path channel widths of the last forward
}

// NewBranch builds a branch layer over the given paths.
func NewBranch(name string, paths ...[]Layer) *Branch {
	return &Branch{name: name, Paths: paths}
}

// Name returns the layer name.
func (l *Branch) Name() string { return l.name }

// Kind returns KindConcat (the module's own cost is the concatenation;
// inner layers bill their own kinds).
func (l *Branch) Kind() Kind { return KindConcat }

// OutShape concatenates path outputs along channels.
func (l *Branch) OutShape(in tensor.Shape) tensor.Shape {
	var outC int
	var spatial tensor.Shape
	for pi, path := range l.Paths {
		s := in.Clone()
		for _, layer := range path {
			s = layer.OutShape(s)
		}
		if len(s) != 4 {
			panic(fmt.Sprintf("nn: branch %s path %d must output NCHW, got %v", l.name, pi, s))
		}
		if spatial == nil {
			spatial = s
		} else if s[2] != spatial[2] || s[3] != spatial[3] {
			panic(fmt.Sprintf("nn: branch %s path %d spatial %v mismatches %v", l.name, pi, s, spatial))
		}
		outC += s[1]
	}
	return tensor.Shape{spatial[0], outC, spatial[2], spatial[3]}
}

// Forward runs every path and concatenates.
func (l *Branch) Forward(ctx *Context, x *Value) *Value {
	l.lastX = x
	outs := make([]*Value, len(l.Paths))
	l.splitsC = make([]int, len(l.Paths))
	for pi, path := range l.Paths {
		v := x
		for _, layer := range path {
			v = layer.Forward(ctx, v)
		}
		outs[pi] = v
		l.splitsC[pi] = v.Shape[1]
	}
	shape := l.OutShape(x.Shape)
	out := &Value{Shape: shape}
	ctx.timed(KindConcat, func() {
		if x.Real() {
			out.Data = tensor.New(shape...)
			n, hw := shape[0], shape[2]*shape[3]
			totalC := shape[1]
			par.ForEach(n, func(bi int) {
				cOff := 0
				for pi, v := range outs {
					cw := l.splitsC[pi]
					src := v.Data.Data[bi*cw*hw : (bi+1)*cw*hw]
					dst := out.Data.Data[(bi*totalC+cOff)*hw:]
					copy(dst[:cw*hw], src)
					cOff += cw
				}
			})
		}
		ctx.launch(elementwiseSpec("concat", shape.Elems(), 8))
	})
	return out
}

// Backward splits the gradient and sums the paths' input gradients.
func (l *Branch) Backward(ctx *Context, dy *Value) *Value {
	n := dy.Shape[0]
	hw := dy.Shape[2] * dy.Shape[3]
	totalC := dy.Shape[1]

	// Split dy per path.
	parts := make([]*Value, len(l.Paths))
	ctx.timed(KindConcat, func() {
		cOff := 0
		for pi, cw := range l.splitsC {
			part := &Value{Shape: tensor.Shape{n, cw, dy.Shape[2], dy.Shape[3]}}
			if dy.Real() {
				part.Data = tensor.New(part.Shape...)
				for bi := 0; bi < n; bi++ {
					src := dy.Data.Data[(bi*totalC+cOff)*hw:]
					copy(part.Data.Data[bi*cw*hw:(bi+1)*cw*hw], src[:cw*hw])
				}
			}
			parts[pi] = part
			cOff += cw
		}
		ctx.launch(elementwiseSpec("concat_bwd", dy.Elems(), 8))
	})

	out := &Value{Shape: l.lastX.Shape.Clone()}
	if dy.Real() {
		out.Data = tensor.New(out.Shape...)
	}
	for pi, path := range l.Paths {
		g := parts[pi]
		for i := len(path) - 1; i >= 0; i-- {
			g = path[i].Backward(ctx, g)
		}
		if g.Real() {
			out.Data.AddScaled(g.Data, 1)
		}
	}
	return out
}

// Params collects parameters from every path.
func (l *Branch) Params() []*Param {
	var ps []*Param
	for _, path := range l.Paths {
		for _, layer := range path {
			ps = append(ps, layer.Params()...)
		}
	}
	return ps
}
