// Package nn is a small CNN framework over the convolution engines: the
// layer types that make up the paper's four profiled models
// (convolution, pooling, ReLU, LRN, dropout, fully-connected, concat /
// inception branches, softmax loss), a sequential network container
// with backpropagation, per-layer-kind simulated-time accounting (the
// instrument behind Figure 2), and an SGD trainer.
//
// Layers run in two modes, controlled by the Context:
//
//   - Real mode: Values carry tensors, layers compute real arithmetic
//     (goroutine-parallel) and simultaneously emit their kernel launches
//     to the simulated device.
//   - Simulate-only mode (Value.Data == nil): only shapes flow through
//     the network and only the device clock advances — this is how the
//     big model profiles run without allocating ImageNet-scale
//     activations on the host.
package nn

import (
	"fmt"
	"time"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/tensor"
)

// Kind is the layer category used in the paper's Figure 2 runtime
// breakdown.
type Kind string

// Layer kinds, matching Figure 2's categories.
const (
	KindConv    Kind = "Conv"
	KindPool    Kind = "Pooling"
	KindReLU    Kind = "ReLU"
	KindFC      Kind = "FC"
	KindConcat  Kind = "Concat"
	KindLRN     Kind = "LRN"
	KindDropout Kind = "Dropout"
	KindLoss    Kind = "Loss"
)

// Value is an activation flowing between layers: always a shape,
// optionally real data (nil in simulate-only mode).
type Value struct {
	Shape tensor.Shape
	Data  *tensor.Tensor
}

// NewValue wraps a tensor as a Value.
func NewValue(t *tensor.Tensor) *Value {
	return &Value{Shape: t.Shape(), Data: t}
}

// ShapeOnly builds a data-less Value for simulate-only runs.
func ShapeOnly(dims ...int) *Value {
	return &Value{Shape: tensor.Shape(dims).Clone()}
}

// Real reports whether the value carries data.
func (v *Value) Real() bool { return v != nil && v.Data != nil }

// Elems returns the element count of the value's shape.
func (v *Value) Elems() int { return v.Shape.Elems() }

// Param is a learnable tensor with its gradient.
type Param struct {
	Name string
	W    *tensor.Tensor
	Grad *tensor.Tensor
}

// NewParam allocates a parameter and its gradient buffer.
func NewParam(name string, dims ...int) *Param {
	return &Param{Name: name, W: tensor.New(dims...), Grad: tensor.New(dims...)}
}

// Elems returns the parameter element count.
func (p *Param) Elems() int { return p.W.Len() }

// Context carries the per-run state: the simulated device (optional),
// training flag, RNG for dropout, and the per-kind time ledger.
type Context struct {
	Dev   *gpusim.Device
	Train bool
	RNG   *tensor.RNG

	TimeByKind map[Kind]time.Duration

	// ActivationBytes estimates the device memory the network's
	// activations (and their gradients, in training mode) would occupy —
	// accumulated by Net.Forward.
	ActivationBytes int64

	// Telemetry (all optional): the current parent span, the metrics
	// registry fed by Net.Forward/Backward, and the device-event
	// recorder that nests kernel launches under the active span. Wire
	// them up with AttachTelemetry.
	Span    *telemetry.Span
	Metrics *telemetry.Registry
	Rec     *telemetry.Recorder
}

// NewContext builds a context. dev may be nil to run pure arithmetic
// with no simulation.
func NewContext(dev *gpusim.Device, train bool) *Context {
	return &Context{Dev: dev, Train: train, RNG: tensor.NewRNG(1), TimeByKind: map[Kind]time.Duration{}}
}

// AttachTelemetry roots the context's span tree at parent and routes
// per-layer latency histograms into reg (either may be nil). With a
// device attached, kernel and transfer events are recorded as leaves of
// whichever span is active when they launch, and the span tracer's
// simulated clock follows the device, so layer spans and kernel events
// share one timeline.
func (c *Context) AttachTelemetry(parent *telemetry.Span, reg *telemetry.Registry) {
	c.Span = parent
	c.Metrics = reg
	if c.Dev == nil || parent == nil {
		return
	}
	if tr := parent.Tracer(); tr != nil {
		tr.SetSimClock(c.Dev.Elapsed)
	}
	c.Rec = telemetry.NewRecorder()
	if reg != nil {
		c.Rec.CountInto(reg, nil)
	}
	c.Rec.Attach(parent)
	c.Dev.SetSink(c.Rec)
}

// StartSpan opens a child of the context's current span, makes it the
// attach point for device events, and returns the closure restoring the
// parent. With no telemetry attached both returns are safe no-ops.
func (c *Context) StartSpan(name string) (*telemetry.Span, func()) {
	if c.Span == nil {
		return nil, func() {}
	}
	parent := c.Span
	sp := parent.Child(name)
	c.Span = sp
	c.Rec.Attach(sp)
	return sp, func() {
		sp.End()
		c.Span = parent
		c.Rec.Attach(parent)
	}
}

// simNow samples the simulated device clock (0 without a device).
func (c *Context) simNow() time.Duration {
	if c.Dev == nil {
		return 0
	}
	return c.Dev.Elapsed()
}

// timed runs f and attributes the simulated-clock delta to kind.
func (c *Context) timed(kind Kind, f func()) {
	if c.Dev == nil {
		f()
		return
	}
	start := c.Dev.Elapsed()
	f()
	c.TimeByKind[kind] += c.Dev.Elapsed() - start
}

// launch emits a kernel if a device is attached.
func (c *Context) launch(spec gpusim.KernelSpec) {
	if c.Dev == nil {
		return
	}
	c.Dev.MustLaunch(spec)
}

// TotalTime sums the ledger.
func (c *Context) TotalTime() time.Duration {
	var t time.Duration
	for _, d := range c.TimeByKind {
		t += d
	}
	return t
}

// Layer is one network stage.
type Layer interface {
	Name() string
	Kind() Kind
	// OutShape computes the output shape for an input shape, validating
	// compatibility (panics on impossible shapes, like the engines do).
	OutShape(in tensor.Shape) tensor.Shape
	// Forward consumes x and produces the layer output. Layers cache
	// what they need for Backward.
	Forward(ctx *Context, x *Value) *Value
	// Backward consumes the output gradient and returns the input
	// gradient, accumulating parameter gradients internally.
	Backward(ctx *Context, dy *Value) *Value
	// Params returns the layer's learnable parameters (may be empty).
	Params() []*Param
}

// elementwiseSpec models a streaming elementwise kernel (ReLU, dropout,
// bias add): purely memory-bound, perfectly coalesced.
func elementwiseSpec(name string, elems int, bytesPerElem float64) gpusim.KernelSpec {
	bytes := float64(elems) * bytesPerElem
	return gpusim.KernelSpec{
		Name:             name,
		Grid:             gpusim.Dim3{X: (elems + 255) / 256},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    16,
		FLOPs:            float64(elems),
		GlobalLoadBytes:  bytes * 0.6,
		GlobalStoreBytes: bytes * 0.4,
		LoadTransPerReq:  1,
		StoreTransPerReq: 1,
		ActiveThreadFrac: 0.99,
		ILP:              2,
		EfficiencyScale:  0.9,
	}
}

// fcGemmSpec models the cuBLAS SGEMM behind a fully-connected layer:
// out×in weight panel times an in×batch activation panel. The batch is
// the GEMM's narrow dimension, so FC layers run far below peak — the
// reason convolution, not the parameter-heavy FC stack, dominates
// Figure 2's runtime breakdown.
func fcGemmSpec(m, n, k int) gpusim.KernelSpec {
	nUtil := float64(n) / 512
	if nUtil > 1 {
		nUtil = 1
	}
	eff := 0.85 * (0.25 + 0.75*nUtil)
	weightBytes := 4 * float64(m) * float64(k)
	ioBytes := 4 * float64(n) * float64(m+k)
	return gpusim.KernelSpec{
		Name:             "cublas_sgemm",
		Grid:             gpusim.Dim3{X: ((m+63)/64)*((n+63)/64) + 1},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    86,
		SharedPerBlock:   8704,
		FLOPs:            2 * float64(m) * float64(n) * float64(k),
		GlobalLoadBytes:  weightBytes + ioBytes*0.6,
		GlobalStoreBytes: ioBytes * 0.4,
		LoadTransPerReq:  1.5,
		StoreTransPerReq: 1.2,
		L2HitFrac:        0.5,
		UsesShared:       true,
		SharedBroadcast:  1.1,
		ActiveThreadFrac: 0.99,
		ILP:              3,
		EfficiencyScale:  eff,
	}
}

func checkRank4(v *Value, who string) (n, c, h, w int) {
	if len(v.Shape) != 4 {
		panic(fmt.Sprintf("nn: %s requires a rank-4 NCHW input, got %v", who, v.Shape))
	}
	return v.Shape[0], v.Shape[1], v.Shape[2], v.Shape[3]
}
