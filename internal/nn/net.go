package nn

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gpucnn/internal/telemetry"
	"gpucnn/internal/tensor"
)

// Net is a sequential network (inception modules nest inside Branch
// layers, so even GoogLeNet is a flat sequence at this level).
type Net struct {
	Name   string
	Layers []Layer
}

// NewNet builds a network.
func NewNet(name string, layers ...Layer) *Net {
	return &Net{Name: name, Layers: layers}
}

// Add appends a layer.
func (n *Net) Add(l Layer) *Net {
	n.Layers = append(n.Layers, l)
	return n
}

// OutShape propagates a shape through all layers.
func (n *Net) OutShape(in tensor.Shape) tensor.Shape {
	s := in.Clone()
	for _, l := range n.Layers {
		s = l.OutShape(s)
	}
	return s
}

// Forward runs all layers, accounting each layer's output activation
// (plus its gradient twin during training) toward the context's
// activation-byte estimate — the quantity that decides whether a model
// and batch size fit the device. With telemetry attached each layer
// runs inside its own span and lands in a per-layer latency histogram.
func (n *Net) Forward(ctx *Context, x *Value) *Value {
	_, endPass := ctx.StartSpan("forward")
	defer endPass()
	v := x
	for _, l := range n.Layers {
		end := n.observeLayer(ctx, l, "forward")
		v = l.Forward(ctx, v)
		end()
		bytes := int64(v.Elems()) * 4
		if ctx.Train {
			bytes *= 2 // the backward pass holds the matching gradient
		}
		ctx.ActivationBytes += bytes
	}
	return v
}

// Backward runs all layers in reverse, starting from the terminal
// gradient seed (for a SoftmaxLoss tail, pass the forward output shape).
func (n *Net) Backward(ctx *Context, dy *Value) *Value {
	_, endPass := ctx.StartSpan("backward")
	defer endPass()
	g := dy
	for i := len(n.Layers) - 1; i >= 0; i-- {
		l := n.Layers[i]
		end := n.observeLayer(ctx, l, "backward")
		g = l.Backward(ctx, g)
		end()
	}
	return g
}

// observeLayer opens the layer's span and returns the closure that ends
// it and records the layer's latency (simulated when a device drives
// the clock, host wall time otherwise) into the pass's histogram, plus
// its attributed device work into per-layer counters.
func (n *Net) observeLayer(ctx *Context, l Layer, pass string) func() {
	if ctx.Span == nil && ctx.Metrics == nil {
		return func() {}
	}
	sp, endSpan := ctx.StartSpan(l.Name())
	sp.SetAttr("kind", string(l.Kind())).SetAttr("pass", pass)
	simStart := ctx.simNow()
	wallStart := time.Now()
	return func() {
		endSpan()
		if ctx.Metrics == nil {
			return
		}
		dur := ctx.simNow() - simStart
		if ctx.Dev == nil {
			dur = time.Since(wallStart)
		}
		labels := telemetry.Labels{
			"net": n.Name, "layer": l.Name(), "kind": string(l.Kind()),
		}
		ctx.Metrics.Help("nn_layer_"+pass+"_seconds",
			"Per-layer "+pass+" latency (simulated seconds).")
		ctx.Metrics.Histogram("nn_layer_"+pass+"_seconds", labels, nil).Observe(dur.Seconds())
		if sp != nil {
			tot := sp.Totals()
			ctx.Metrics.Counter("nn_layer_flops_total", labels).Add(tot.FLOPs)
			ctx.Metrics.Counter("nn_layer_dram_bytes_total", labels).Add(tot.DRAMBytes)
			ctx.Metrics.Counter("nn_layer_kernels_total", labels).Add(float64(tot.Kernels))
		}
	}
}

// Params collects every learnable parameter.
func (n *Net) Params() []*Param {
	var ps []*Param
	for _, l := range n.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// ParamCount returns the total number of learnable scalars. Layers
// initialise parameters lazily, so the network must have seen one
// Forward (real or simulate-only) first.
func (n *Net) ParamCount() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Elems()
	}
	return total
}

// ZeroGrads clears all parameter gradients.
func (n *Net) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// Loss returns the terminal SoftmaxLoss layer, if present.
func (n *Net) Loss() *SoftmaxLoss {
	if len(n.Layers) == 0 {
		return nil
	}
	sl, _ := n.Layers[len(n.Layers)-1].(*SoftmaxLoss)
	return sl
}

// TrainStep runs one full forward/backward on real data and returns the
// loss and accuracy. Parameter gradients are accumulated (call
// ZeroGrads first or use the SGD trainer).
func (n *Net) TrainStep(ctx *Context, x *tensor.Tensor, labels []int) (loss, acc float64) {
	ctx.Train = true
	out := n.Forward(ctx, NewValue(x))
	sl := n.Loss()
	if sl == nil {
		panic("nn: TrainStep requires a SoftmaxLoss terminal layer")
	}
	loss, acc = sl.Loss(labels)
	n.Backward(ctx, &Value{Shape: out.Shape.Clone()})
	return loss, acc
}

// SimulateIteration runs one shape-only forward+backward, advancing the
// simulated device clock; per-kind times land in ctx.TimeByKind. This
// is the measurement loop behind Figure 2.
func (n *Net) SimulateIteration(ctx *Context, inputShape tensor.Shape) {
	ctx.Train = true
	out := n.Forward(ctx, &Value{Shape: inputShape.Clone()})
	n.Backward(ctx, &Value{Shape: out.Shape.Clone()})
}

// Release frees any device plans held by convolution layers.
func (n *Net) Release() {
	var walk func(ls []Layer)
	walk = func(ls []Layer) {
		for _, l := range ls {
			switch t := l.(type) {
			case *Conv:
				t.Release()
			case *Branch:
				for _, p := range t.Paths {
					walk(p)
				}
			}
		}
	}
	walk(n.Layers)
}

// BreakdownReport renders the per-kind time ledger as percentage rows,
// largest first — one bar of the paper's Figure 2.
func BreakdownReport(times map[Kind]time.Duration) string {
	var total time.Duration
	for _, d := range times {
		total += d
	}
	type row struct {
		kind Kind
		d    time.Duration
	}
	rows := make([]row, 0, len(times))
	for k, d := range times {
		rows = append(rows, row{k, d})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d > rows[j].d })
	var b strings.Builder
	for _, r := range rows {
		pct := 0.0
		if total > 0 {
			pct = float64(r.d) / float64(total) * 100
		}
		fmt.Fprintf(&b, "%-10s %12s %5.1f%%\n", r.kind, r.d.Round(time.Microsecond), pct)
	}
	return b.String()
}

// ConvShare returns the convolution fraction of the time ledger.
func ConvShare(times map[Kind]time.Duration) float64 {
	var total, convT time.Duration
	for k, d := range times {
		total += d
		if k == KindConv {
			convT = d
		}
	}
	if total == 0 {
		return 0
	}
	return float64(convT) / float64(total)
}
