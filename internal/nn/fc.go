package nn

import (
	"fmt"
	"math"

	"gpucnn/internal/gemm"
	"gpucnn/internal/tensor"
)

// FC is a fully-connected (inner-product) layer. Input of any rank is
// flattened to (batch, features).
type FC struct {
	name string
	Out  int

	weight *Param // (Out, In)
	bias   *Param // (Out)
	lastX  *Value
	inDim  int
	inited bool
}

// NewFC builds a fully-connected layer with the given output width.
func NewFC(name string, out int) *FC { return &FC{name: name, Out: out} }

// Name returns the layer name.
func (l *FC) Name() string { return l.name }

// Kind returns KindFC.
func (l *FC) Kind() Kind { return KindFC }

func (l *FC) inFeatures(in tensor.Shape) int {
	if len(in) < 2 {
		panic(fmt.Sprintf("nn: fc %s requires at least rank-2 input, got %v", l.name, in))
	}
	features := 1
	for _, d := range in[1:] {
		features *= d
	}
	return features
}

// OutShape flattens to (batch, Out).
func (l *FC) OutShape(in tensor.Shape) tensor.Shape {
	l.inFeatures(in)
	return tensor.Shape{in[0], l.Out}
}

func (l *FC) ensureParams(in int) {
	if l.weight != nil {
		if l.inDim != in {
			panic(fmt.Sprintf("nn: fc %s input width changed from %d to %d", l.name, l.inDim, in))
		}
		return
	}
	l.inDim = in
	l.weight = NewParam(l.name+".weight", l.Out, in)
	l.bias = NewParam(l.name+".bias", l.Out)
}

// initWeights fills the weights on first real use.
func (l *FC) initWeights() {
	if l.inited {
		return
	}
	l.inited = true
	sigma := float32(math.Sqrt(2 / float64(l.inDim)))
	l.weight.W.FillNormal(tensor.NewRNG(uint64(len(l.name))*0x9E3779B9+13), sigma)
}

// Forward computes y = x·Wᵀ + b.
func (l *FC) Forward(ctx *Context, x *Value) *Value {
	batch := x.Shape[0]
	in := l.inFeatures(x.Shape)
	l.ensureParams(in)
	l.lastX = x
	out := &Value{Shape: tensor.Shape{batch, l.Out}}
	ctx.timed(KindFC, func() {
		if x.Real() {
			l.initWeights()
			out.Data = tensor.New(batch, l.Out)
			flat := x.Data.Reshape(batch, in)
			// y (batch×out) = x (batch×in) · Wᵀ (in×out)
			gemm.ParallelNT(1, flat.Data, l.weight.W.Data, 0, out.Data.Data, batch, l.Out, in)
			for bi := 0; bi < batch; bi++ {
				row := out.Data.Data[bi*l.Out:]
				for j := 0; j < l.Out; j++ {
					row[j] += l.bias.W.Data[j]
				}
			}
		}
		ctx.launch(fcGemmSpec(l.Out, batch, in))
		ctx.launch(elementwiseSpec("add_bias", batch*l.Out, 8))
	})
	return out
}

// Backward computes dx, dW and db.
func (l *FC) Backward(ctx *Context, dy *Value) *Value {
	batch := l.lastX.Shape[0]
	in := l.inDim
	out := &Value{Shape: l.lastX.Shape.Clone()}
	ctx.timed(KindFC, func() {
		if dy.Real() && l.lastX.Real() {
			// db = column sums of dy.
			for bi := 0; bi < batch; bi++ {
				row := dy.Data.Data[bi*l.Out:]
				for j := 0; j < l.Out; j++ {
					l.bias.Grad.Data[j] += row[j]
				}
			}
			// dW (out×in) += dyᵀ (out×batch) · x (batch×in)
			flat := l.lastX.Data.Reshape(batch, in)
			gemm.TN(1, dy.Data.Data, flat.Data, 1, l.weight.Grad.Data, l.Out, in, batch)
			// dx (batch×in) = dy (batch×out) · W (out×in)
			out.Data = tensor.New(out.Shape...)
			gemm.Parallel(1, dy.Data.Data, l.weight.W.Data, 0, out.Data.Reshape(batch, in).Data, batch, in, l.Out)
		}
		ctx.launch(fcGemmSpec(in, batch, l.Out)) // dx
		ctx.launch(fcGemmSpec(l.Out, in, batch)) // dW
		ctx.launch(elementwiseSpec("bias_grad", batch*l.Out, 4))
	})
	return out
}

// Params returns weight and bias.
func (l *FC) Params() []*Param {
	if l.weight == nil {
		return nil
	}
	return []*Param{l.weight, l.bias}
}
