package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Checkpoint format: a magic string, a parameter count, then for each
// parameter its name, shape and float32 data, all little-endian. The
// format is self-describing enough to verify a checkpoint matches the
// network it is loaded into.

var checkpointMagic = [8]byte{'g', 'p', 'u', 'c', 'n', 'n', 'c', '1'}

// SaveParams writes the parameters to w.
func SaveParams(w io.Writer, params []*Param) error {
	if _, err := w.Write(checkpointMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(w, p.Name); err != nil {
			return err
		}
		shape := p.W.Shape()
		if err := binary.Write(w, binary.LittleEndian, uint32(len(shape))); err != nil {
			return err
		}
		for _, d := range shape {
			if err := binary.Write(w, binary.LittleEndian, uint32(d)); err != nil {
				return err
			}
		}
		buf := make([]byte, 4*len(p.W.Data))
		for i, v := range p.W.Data {
			binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(v))
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// LoadParams reads a checkpoint written by SaveParams into params. The
// parameter names and shapes must match exactly, in order — loading a
// checkpoint into a different architecture is an error, not silent
// corruption.
func LoadParams(r io.Reader, params []*Param) error {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return fmt.Errorf("nn: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return fmt.Errorf("nn: bad checkpoint magic %q", magic)
	}
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return err
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d parameters, network has %d", count, len(params))
	}
	for _, p := range params {
		name, err := readString(r)
		if err != nil {
			return err
		}
		if name != p.Name {
			return fmt.Errorf("nn: checkpoint parameter %q does not match network parameter %q", name, p.Name)
		}
		var rank uint32
		if err := binary.Read(r, binary.LittleEndian, &rank); err != nil {
			return err
		}
		shape := p.W.Shape()
		if int(rank) != len(shape) {
			return fmt.Errorf("nn: %s rank %d vs %d", name, rank, len(shape))
		}
		for i := range shape {
			var d uint32
			if err := binary.Read(r, binary.LittleEndian, &d); err != nil {
				return err
			}
			if int(d) != shape[i] {
				return fmt.Errorf("nn: %s dim %d is %d in checkpoint, %d in network", name, i, d, shape[i])
			}
		}
		buf := make([]byte, 4*len(p.W.Data))
		if _, err := io.ReadFull(r, buf); err != nil {
			return fmt.Errorf("nn: reading %s data: %w", name, err)
		}
		for i := range p.W.Data {
			p.W.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
		}
	}
	return nil
}

// Save writes the network's parameters to w.
func (n *Net) Save(w io.Writer) error { return SaveParams(w, n.Params()) }

// Load reads a checkpoint into the network. The network must already
// have its parameters materialised (run one forward pass first).
func (n *Net) Load(r io.Reader) error { return LoadParams(r, n.Params()) }

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("nn: implausible name length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
