package nn

import (
	"fmt"
	"math"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// Conv is a convolutional layer backed by one of the seven engines.
// Weights are FCHW, plus a per-filter bias.
type Conv struct {
	name    string
	engine  impls.Engine
	Filters int
	Kernel  int
	Stride  int
	Pad     int

	weight *Param
	bias   *Param
	inited bool

	// Cached per-shape engine plan and the inputs of the last forward.
	plan    impls.Plan
	planCfg conv.Config
	planDev *gpusim.Device
	lastX   *Value
}

// NewConv builds a convolutional layer using the given engine (nil
// selects cuDNN, the paper's best all-round choice).
func NewConv(name string, engine impls.Engine, filters, kernel, stride, pad int) *Conv {
	if engine == nil {
		engine = impls.NewCuDNN()
	}
	return &Conv{name: name, engine: engine, Filters: filters, Kernel: kernel, Stride: stride, Pad: pad}
}

// Name returns the layer name.
func (l *Conv) Name() string { return l.name }

// Kind returns KindConv.
func (l *Conv) Kind() Kind { return KindConv }

// Engine returns the backing convolution engine.
func (l *Conv) Engine() impls.Engine { return l.engine }

func (l *Conv) cfgFor(in tensor.Shape) conv.Config {
	if len(in) != 4 {
		panic(fmt.Sprintf("nn: conv %s requires NCHW input, got %v", l.name, in))
	}
	if in[2] != in[3] {
		panic(fmt.Sprintf("nn: conv %s requires square input, got %v", l.name, in))
	}
	cfg := conv.Config{
		Batch: in[0], Channels: in[1], Input: in[2],
		Filters: l.Filters, Kernel: l.Kernel, Stride: l.Stride, Pad: l.Pad,
	}
	if err := cfg.Validate(); err != nil {
		panic(fmt.Sprintf("nn: conv %s: %v", l.name, err))
	}
	return cfg
}

// OutShape computes the output NCHW shape.
func (l *Conv) OutShape(in tensor.Shape) tensor.Shape {
	cfg := l.cfgFor(in)
	return cfg.OutputShape()
}

func (l *Conv) ensureParams(channels int) {
	if l.weight != nil {
		return
	}
	l.weight = NewParam(l.name+".weight", l.Filters, channels, l.Kernel, l.Kernel)
	l.bias = NewParam(l.name+".bias", l.Filters)
}

// initWeights fills the weights on first real use (simulate-only runs
// never pay for initialising VGG-scale parameter tensors).
func (l *Conv) initWeights() {
	if l.inited {
		return
	}
	l.inited = true
	// He-style fan-in scaling keeps deep stacks trainable.
	fanIn := float64(l.weight.W.Dim(1) * l.Kernel * l.Kernel)
	sigma := float32(1.0)
	if fanIn > 0 {
		sigma = float32(math.Sqrt(2 / fanIn))
	}
	l.weight.W.FillNormal(tensor.NewRNG(uint64(len(l.name))*2654435761+7), sigma)
}

func (l *Conv) ensurePlan(ctx *Context, cfg conv.Config) impls.Plan {
	if ctx.Dev == nil {
		return nil
	}
	if l.plan != nil && l.planCfg == cfg && l.planDev == ctx.Dev {
		return l.plan
	}
	if l.plan != nil {
		l.plan.Release()
	}
	p, err := l.engine.PlanShared(ctx.Dev, cfg)
	if err != nil {
		panic(fmt.Sprintf("nn: conv %s: %v", l.name, err))
	}
	l.plan, l.planCfg, l.planDev = p, cfg, ctx.Dev
	return p
}

// Release frees the layer's device plan.
func (l *Conv) Release() {
	if l.plan != nil {
		l.plan.Release()
		l.plan = nil
	}
}

// Forward runs the engine (real or simulate-only) plus the bias add.
func (l *Conv) Forward(ctx *Context, x *Value) *Value {
	cfg := l.cfgFor(x.Shape)
	l.ensureParams(cfg.Channels)
	l.lastX = x
	out := &Value{Shape: cfg.OutputShape()}
	ctx.timed(KindConv, func() {
		plan := l.ensurePlan(ctx, cfg)
		if x.Real() {
			l.initWeights()
			out.Data = tensor.New(out.Shape...)
			if plan != nil {
				if err := plan.Forward(x.Data, l.weight.W, out.Data); err != nil {
					panic(err)
				}
			} else {
				conv.UnrollForward(cfg, x.Data, l.weight.W, out.Data)
			}
			l.addBias(out.Data)
		} else if plan != nil {
			if err := plan.Forward(nil, nil, nil); err != nil {
				panic(err)
			}
		}
		ctx.launch(elementwiseSpec("add_bias", out.Elems(), 8))
	})
	return out
}

func (l *Conv) addBias(y *tensor.Tensor) {
	n, f := y.Dim(0), y.Dim(1)
	hw := y.Dim(2) * y.Dim(3)
	par.ForEach(n*f, func(j int) {
		b := l.bias.W.Data[j%f]
		seg := y.Data[j*hw : (j+1)*hw]
		for i := range seg {
			seg[i] += b
		}
	})
}

// Backward computes dx and accumulates weight/bias gradients.
func (l *Conv) Backward(ctx *Context, dy *Value) *Value {
	cfg := l.cfgFor(l.lastX.Shape)
	out := &Value{Shape: l.lastX.Shape.Clone()}
	ctx.timed(KindConv, func() {
		plan := l.ensurePlan(ctx, cfg)
		if dy.Real() && l.lastX.Real() {
			// Bias gradient: per-filter sum of dy.
			n, f := dy.Shape[0], dy.Shape[1]
			hw := dy.Shape[2] * dy.Shape[3]
			for j := 0; j < n*f; j++ {
				var s float32
				seg := dy.Data.Data[j*hw : (j+1)*hw]
				for _, v := range seg {
					s += v
				}
				l.bias.Grad.Data[j%f] += s
			}
			out.Data = tensor.New(out.Shape...)
			dw := tensor.New(l.weight.W.Shape()...)
			if plan != nil {
				if err := plan.BackwardData(dy.Data, l.weight.W, out.Data); err != nil {
					panic(err)
				}
				if err := plan.BackwardFilter(l.lastX.Data, dy.Data, dw); err != nil {
					panic(err)
				}
			} else {
				conv.UnrollBackwardData(cfg, dy.Data, l.weight.W, out.Data)
				conv.UnrollBackwardFilter(cfg, l.lastX.Data, dy.Data, dw)
			}
			l.weight.Grad.AddScaled(dw, 1)
		} else if plan != nil {
			if err := plan.BackwardData(nil, nil, nil); err != nil {
				panic(err)
			}
			if err := plan.BackwardFilter(nil, nil, nil); err != nil {
				panic(err)
			}
		}
		ctx.launch(elementwiseSpec("bias_grad", dy.Elems(), 4))
	})
	return out
}

// Params returns weight and bias.
func (l *Conv) Params() []*Param {
	if l.weight == nil {
		return nil
	}
	return []*Param{l.weight, l.bias}
}
