package nn

import (
	"math"

	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// LRN is cross-channel local response normalisation (the AlexNet /
// GoogLeNet variant): y_i = x_i / (k + α/n · Σ_{j∈window(i)} x_j²)^β.
type LRN struct {
	name  string
	N     int     // window size across channels
	Alpha float64 //
	Beta  float64
	K     float64

	lastX *Value
	scale []float32 // cached (k + α/n Σ x²) per element
}

// NewLRN builds an LRN layer with AlexNet's default parameters when
// alpha/beta/k are zero.
func NewLRN(name string, n int, alpha, beta, k float64) *LRN {
	if alpha == 0 {
		alpha = 1e-4
	}
	if beta == 0 {
		beta = 0.75
	}
	if k == 0 {
		k = 2
	}
	return &LRN{name: name, N: n, Alpha: alpha, Beta: beta, K: k}
}

// Name returns the layer name.
func (l *LRN) Name() string { return l.name }

// Kind returns KindLRN.
func (l *LRN) Kind() Kind { return KindLRN }

// OutShape is the identity.
func (l *LRN) OutShape(in tensor.Shape) tensor.Shape { return in.Clone() }

// Forward normalises each element by its cross-channel energy window.
func (l *LRN) Forward(ctx *Context, x *Value) *Value {
	n, c, h, w := checkRank4(x, "lrn "+l.name)
	l.lastX = x
	out := &Value{Shape: x.Shape.Clone()}
	ctx.timed(KindLRN, func() {
		if x.Real() {
			out.Data = tensor.New(out.Shape...)
			l.scale = make([]float32, x.Elems())
			hw := h * w
			half := l.N / 2
			par.ForEach(n, func(bi int) {
				base := bi * c * hw
				for pos := 0; pos < hw; pos++ {
					for ci := 0; ci < c; ci++ {
						var energy float64
						lo, hi := ci-half, ci+half
						if lo < 0 {
							lo = 0
						}
						if hi >= c {
							hi = c - 1
						}
						for j := lo; j <= hi; j++ {
							v := float64(x.Data.Data[base+j*hw+pos])
							energy += v * v
						}
						s := l.K + l.Alpha/float64(l.N)*energy
						idx := base + ci*hw + pos
						l.scale[idx] = float32(s)
						out.Data.Data[idx] = x.Data.Data[idx] / float32(math.Pow(s, l.Beta))
					}
				}
			})
		}
		// Each output reads an N-deep channel window.
		ctx.launch(elementwiseSpec("lrn_fwd", x.Elems(), float64(4*(l.N+2))))
	})
	return out
}

// Backward applies the LRN gradient:
// dx_i = dy_i·s_i^{-β} − (2αβ/n)·x_i·Σ_{j∋i} dy_j·x_j·s_j^{-β-1}.
func (l *LRN) Backward(ctx *Context, dy *Value) *Value {
	n, c, h, w := checkRank4(l.lastX, "lrn "+l.name)
	out := &Value{Shape: dy.Shape.Clone()}
	ctx.timed(KindLRN, func() {
		if dy.Real() && l.lastX.Real() {
			out.Data = tensor.New(out.Shape...)
			hw := h * w
			half := l.N / 2
			ratio := 2 * l.Alpha * l.Beta / float64(l.N)
			x := l.lastX.Data.Data
			par.ForEach(n, func(bi int) {
				base := bi * c * hw
				for pos := 0; pos < hw; pos++ {
					// Precompute g_j = dy_j · x_j · s_j^{-β-1} per channel.
					g := make([]float64, c)
					for j := 0; j < c; j++ {
						idx := base + j*hw + pos
						s := float64(l.scale[idx])
						g[j] = float64(dy.Data.Data[idx]) * float64(x[idx]) * math.Pow(s, -l.Beta-1)
					}
					for ci := 0; ci < c; ci++ {
						idx := base + ci*hw + pos
						s := float64(l.scale[idx])
						acc := float64(dy.Data.Data[idx]) * math.Pow(s, -l.Beta)
						lo, hi := ci-half, ci+half
						if lo < 0 {
							lo = 0
						}
						if hi >= c {
							hi = c - 1
						}
						var sum float64
						for j := lo; j <= hi; j++ {
							sum += g[j]
						}
						acc -= ratio * float64(x[idx]) * sum
						out.Data.Data[idx] = float32(acc)
					}
				}
			})
		}
		ctx.launch(elementwiseSpec("lrn_bwd", dy.Elems(), float64(4*(l.N+4))))
	})
	return out
}

// Params returns nil; LRN has no parameters.
func (l *LRN) Params() []*Param { return nil }
