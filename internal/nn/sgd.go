package nn

// SGD is stochastic gradient descent with momentum and weight decay —
// the optimiser the surveyed frameworks trained with.
type SGD struct {
	LR       float32
	Momentum float32
	Decay    float32

	velocity map[*Param][]float32
}

// NewSGD builds an SGD optimiser.
func NewSGD(lr, momentum, decay float32) *SGD {
	return &SGD{LR: lr, Momentum: momentum, Decay: decay, velocity: map[*Param][]float32{}}
}

// Step applies one update to every parameter and zeroes the gradients.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float32, p.Elems())
			s.velocity[p] = v
		}
		for i := range p.W.Data {
			g := p.Grad.Data[i] + s.Decay*p.W.Data[i]
			v[i] = s.Momentum*v[i] - s.LR*g
			p.W.Data[i] += v[i]
		}
		p.Grad.Zero()
	}
}
