package nn

import (
	"fmt"
	"math"

	"gpucnn/internal/tensor"
)

// SoftmaxLoss combines a softmax over the class axis with the negative
// log-likelihood loss. It terminates the network: Forward returns the
// class probabilities, Loss computes the scalar loss against labels,
// and Backward seeds the gradient (softmax − one-hot)/batch.
type SoftmaxLoss struct {
	name string

	probs  *tensor.Tensor
	labels []int
}

// NewSoftmaxLoss builds the loss layer.
func NewSoftmaxLoss(name string) *SoftmaxLoss { return &SoftmaxLoss{name: name} }

// Name returns the layer name.
func (l *SoftmaxLoss) Name() string { return l.name }

// Kind returns KindLoss.
func (l *SoftmaxLoss) Kind() Kind { return KindLoss }

// OutShape is the identity (probabilities per class).
func (l *SoftmaxLoss) OutShape(in tensor.Shape) tensor.Shape {
	if len(in) != 2 {
		panic(fmt.Sprintf("nn: softmax %s requires (batch, classes) input, got %v", l.name, in))
	}
	return in.Clone()
}

// Forward computes row-wise softmax (numerically stabilised).
func (l *SoftmaxLoss) Forward(ctx *Context, x *Value) *Value {
	out := &Value{Shape: l.OutShape(x.Shape)}
	ctx.timed(KindLoss, func() {
		if x.Real() {
			batch, classes := x.Shape[0], x.Shape[1]
			out.Data = tensor.New(batch, classes)
			for bi := 0; bi < batch; bi++ {
				row := x.Data.Data[bi*classes : (bi+1)*classes]
				dst := out.Data.Data[bi*classes : (bi+1)*classes]
				maxV := row[0]
				for _, v := range row {
					if v > maxV {
						maxV = v
					}
				}
				var sum float64
				for i, v := range row {
					e := math.Exp(float64(v - maxV))
					dst[i] = float32(e)
					sum += e
				}
				inv := float32(1 / sum)
				for i := range dst {
					dst[i] *= inv
				}
			}
			l.probs = out.Data
		}
		ctx.launch(elementwiseSpec("softmax", x.Elems(), 12))
	})
	return out
}

// Loss returns the mean NLL over the batch for the last Forward, plus
// the top-1 accuracy.
func (l *SoftmaxLoss) Loss(labels []int) (loss float64, accuracy float64) {
	if l.probs == nil {
		panic("nn: Loss called before a real Forward pass")
	}
	batch, classes := l.probs.Dim(0), l.probs.Dim(1)
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: %d labels for batch %d", len(labels), batch))
	}
	l.labels = labels
	correct := 0
	for bi, label := range labels {
		row := l.probs.Data[bi*classes : (bi+1)*classes]
		p := float64(row[label])
		if p < 1e-12 {
			p = 1e-12
		}
		loss -= math.Log(p)
		argmax := 0
		for i, v := range row {
			if v > row[argmax] {
				argmax = i
			}
		}
		if argmax == label {
			correct++
		}
	}
	return loss / float64(batch), float64(correct) / float64(batch)
}

// Backward seeds the network gradient: (probs − one-hot) / batch. The
// dy argument is ignored (the loss is the terminal node).
func (l *SoftmaxLoss) Backward(ctx *Context, dy *Value) *Value {
	out := &Value{Shape: dy.Shape.Clone()}
	ctx.timed(KindLoss, func() {
		if l.probs != nil && l.labels != nil {
			batch, classes := l.probs.Dim(0), l.probs.Dim(1)
			out.Data = l.probs.Clone()
			inv := float32(1.0 / float64(batch))
			for bi, label := range l.labels {
				row := out.Data.Data[bi*classes : (bi+1)*classes]
				row[label] -= 1
				for i := range row {
					row[i] *= inv
				}
			}
		}
		ctx.launch(elementwiseSpec("softmax_bwd", dy.Elems(), 8))
	})
	return out
}

// Params returns nil; the loss has no parameters.
func (l *SoftmaxLoss) Params() []*Param { return nil }
