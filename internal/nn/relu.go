package nn

import (
	"gpucnn/internal/par"
	"gpucnn/internal/tensor"
)

// ReLU is the rectified-linear activation, computed in place on a copy.
type ReLU struct {
	name  string
	lastX *Value
}

// NewReLU builds a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name returns the layer name.
func (l *ReLU) Name() string { return l.name }

// Kind returns KindReLU.
func (l *ReLU) Kind() Kind { return KindReLU }

// OutShape is the identity.
func (l *ReLU) OutShape(in tensor.Shape) tensor.Shape { return in.Clone() }

// Forward computes max(0, x).
func (l *ReLU) Forward(ctx *Context, x *Value) *Value {
	l.lastX = x
	out := &Value{Shape: x.Shape.Clone()}
	ctx.timed(KindReLU, func() {
		if x.Real() {
			out.Data = tensor.New(out.Shape...)
			par.Chunks(x.Data.Len(), 0, func(lo, hi int) {
				src, dst := x.Data.Data, out.Data.Data
				for i := lo; i < hi; i++ {
					if v := src[i]; v > 0 {
						dst[i] = v
					}
				}
			})
		}
		ctx.launch(elementwiseSpec("relu_fwd", x.Elems(), 8))
	})
	return out
}

// Backward passes gradient where the input was positive.
func (l *ReLU) Backward(ctx *Context, dy *Value) *Value {
	out := &Value{Shape: dy.Shape.Clone()}
	ctx.timed(KindReLU, func() {
		if dy.Real() && l.lastX.Real() {
			out.Data = tensor.New(out.Shape...)
			par.Chunks(dy.Data.Len(), 0, func(lo, hi int) {
				x, g, dst := l.lastX.Data.Data, dy.Data.Data, out.Data.Data
				for i := lo; i < hi; i++ {
					if x[i] > 0 {
						dst[i] = g[i]
					}
				}
			})
		}
		ctx.launch(elementwiseSpec("relu_bwd", dy.Elems(), 12))
	})
	return out
}

// Params returns nil; ReLU has no parameters.
func (l *ReLU) Params() []*Param { return nil }
