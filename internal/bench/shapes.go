package bench

import (
	"fmt"
	"strings"

	"gpucnn/internal/conv"
	"gpucnn/internal/impls"
)

// ShapeCase is one probe of the shape-limitation matrix.
type ShapeCase struct {
	Name string
	Cfg  conv.Config
}

// ShapeCases returns probes for every limitation the paper's Section
// IV.B summary names: arbitrary batches and filter counts (rejected by
// cuda-convnet2's multiples-of-32/16 rules) and strides above 1
// (rejected by the FFT engines).
func ShapeCases() []ShapeCase {
	base := conv.Config{Batch: 64, Input: 64, Channels: 3, Filters: 64, Kernel: 5, Stride: 1}
	odd := base
	odd.Batch = 50 // not a multiple of 32
	oddF := base
	oddF.Filters = 100 // not a multiple of 16
	strided := base
	strided.Stride = 2
	return []ShapeCase{
		{"base (64,64,64,5,1)", base},
		{"batch 50", odd},
		{"filters 100", oddF},
		{"stride 2", strided},
	}
}

// ShapeMatrix probes every implementation against every case and
// returns support[caseName][implName].
func ShapeMatrix() map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for _, sc := range ShapeCases() {
		row := map[string]bool{}
		for _, e := range impls.All() {
			row[e.Name()] = e.Supports(sc.Cfg) == nil
		}
		out[sc.Name] = row
	}
	return out
}

// RenderShapeMatrix renders the support matrix as a table, reproducing
// the paper's shape-restriction summary ("unrolling-based
// implementations are most flexible … cuda-convnet2 only supports …
// FFT-based convolutions … stride must be 1").
func RenderShapeMatrix() string {
	matrix := ShapeMatrix()
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", "Configuration")
	for _, name := range impls.Names() {
		fmt.Fprintf(&b, " %14s", name)
	}
	b.WriteByte('\n')
	for _, sc := range ShapeCases() {
		fmt.Fprintf(&b, "%-22s", sc.Name)
		for _, name := range impls.Names() {
			mark := "yes"
			if !matrix[sc.Name][name] {
				mark = "-"
			}
			fmt.Fprintf(&b, " %14s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
