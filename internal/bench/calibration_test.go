package bench

import (
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

// This file asserts the paper's comparative observations — the "shape"
// of every figure — against the simulated measurements. Exact values
// are not expected to match the 2016 testbed; orderings, bands and
// crossovers are. EXPERIMENTS.md records paper-vs-measured per claim.

func measure(t *testing.T, name string, cfg conv.Config) Cell {
	t.Helper()
	e, err := impls.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return Measure(e, cfg)
}

// --- Figure 3a/3b: fbfft fastest across batch and input sweeps -------

func TestFig3aFbfftFastestAcrossBatchSweep(t *testing.T) {
	rows := Figure3("batch")
	for _, row := range rows {
		fb, ok := row.CellFor("fbfft")
		if !ok || !fb.Ok() {
			t.Fatalf("fbfft missing at batch %d", row.Value)
		}
		for _, c := range row.Cells {
			if c.Impl == "fbfft" || !c.Ok() {
				continue
			}
			ratio := c.Time.Seconds() / fb.Time.Seconds()
			if ratio < 1.0 {
				t.Errorf("batch %d: %s (%v) beat fbfft (%v)", row.Value, c.Impl, c.Time, fb.Time)
			}
			// Paper: 1.4×–9.7×. Our margins run 1.0×–15×; the lower
			// bound asserted here is the ordering itself plus a floor.
			if ratio > 20 {
				t.Errorf("batch %d: fbfft margin %0.1f× over %s looks runaway", row.Value, ratio, c.Impl)
			}
		}
	}
}

func TestFig3bFbfftFastestAcrossInputSweepSamples(t *testing.T) {
	// At input sizes just below a power-of-two boundary the padding
	// waste lets cuDNN tie fbfft (documented deviation); everywhere in
	// the sampled sweep fbfft must win or stay within 10%.
	rows := Figure3("input")
	wins := 0
	for _, row := range rows {
		fb, _ := row.CellFor("fbfft")
		best, ok := row.Best()
		if !ok {
			t.Fatalf("no result at input %d", row.Value)
		}
		if best.Impl == "fbfft" {
			wins++
			continue
		}
		if ratio := fb.Time.Seconds() / best.Time.Seconds(); ratio > 1.10 {
			t.Errorf("input %d: fbfft %.2f× slower than %s", row.Value, ratio, best.Impl)
		}
	}
	if wins < len(rows)-2 {
		t.Errorf("fbfft won only %d of %d input sizes", wins, len(rows))
	}
}

func TestFig3TheanoFFTSlowestEverywhere(t *testing.T) {
	for _, sweep := range []string{"batch", "kernel"} {
		for _, row := range Figure3(sweep) {
			tf, ok := row.CellFor("Theano-fft")
			if !ok || !tf.Ok() {
				continue
			}
			for _, c := range row.Cells {
				if c.Impl == "Theano-fft" || !c.Ok() {
					continue
				}
				if c.Time >= tf.Time {
					t.Errorf("%s=%d: %s (%v) slower than Theano-fft (%v)",
						sweep, row.Value, c.Impl, c.Time, tf.Time)
				}
			}
		}
	}
}

func TestFig3CuDNNBestUnrollingAtBase(t *testing.T) {
	base := workload.Base()
	cudnn := measure(t, "cuDNN", base)
	for _, name := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM"} {
		other := measure(t, name, base)
		if cudnn.Time >= other.Time {
			t.Errorf("cuDNN (%v) should beat %s (%v) at the base config", cudnn.Time, name, other.Time)
		}
	}
}

// --- Figure 3c: Theano-CorrMM overtakes cuDNN at high filter counts --

func TestFig3cCorrMMOvertakesCuDNNAtHighFilterCounts(t *testing.T) {
	base := workload.Base()
	at := func(f int) (corrMM, cuDNN Cell) {
		cfg := base
		cfg.Filters = f
		return measure(t, "Theano-CorrMM", cfg), measure(t, "cuDNN", cfg)
	}
	// Below the paper's ~160-filter threshold cuDNN must win clearly.
	for _, f := range []int{32, 64, 128} {
		cm, cu := at(f)
		if cu.Time >= cm.Time {
			t.Errorf("f=%d: cuDNN (%v) should beat Theano-CorrMM (%v)", f, cu.Time, cm.Time)
		}
	}
	// Above some crossover in (160, 384] CorrMM must win.
	for _, f := range []int{384, 512} {
		cm, cu := at(f)
		if cm.Time >= cu.Time {
			t.Errorf("f=%d: Theano-CorrMM (%v) should beat cuDNN (%v)", f, cm.Time, cu.Time)
		}
	}
}

// --- Figure 3d: kernel-size crossover -------------------------------

func TestFig3dKernelSizeCrossover(t *testing.T) {
	base := workload.Base()
	ratioAt := func(k int) float64 {
		cfg := base
		cfg.Kernel = k
		cu := measure(t, "cuDNN", cfg)
		fb := measure(t, "fbfft", cfg)
		return cu.Time.Seconds() / fb.Time.Seconds() // >1 means fbfft wins
	}
	// Small kernels: cuDNN wins by 1.2–2.8× (paper: 1.21–2.62×).
	r3 := ratioAt(3)
	if r3 >= 1 {
		t.Errorf("k=3: fbfft should lose, ratio %.2f", r3)
	}
	if adv := 1 / r3; adv < 1.1 || adv > 3.0 {
		t.Errorf("k=3: cuDNN advantage %.2f× outside the paper-calibrated band [1.1, 3.0]", adv)
	}
	// Large kernels: fbfft wins, increasingly (paper: 1.15×–19×,
	// runtime flat in k).
	r9, r11, r15 := ratioAt(9), ratioAt(11), ratioAt(15)
	if r9 <= 1 {
		t.Errorf("k=9: fbfft should win, ratio %.2f", r9)
	}
	if !(r9 < r11 && r11 < r15) {
		t.Errorf("fbfft advantage should grow with kernel size: %.2f, %.2f, %.2f", r9, r11, r15)
	}
	if r15 < 3 {
		t.Errorf("k=15: fbfft advantage %.2f× too small", r15)
	}
	// The crossover sits in the paper's small-kernel band (≈7; we
	// accept [5, 9]).
	crossed := -1
	for k := 5; k <= 9; k += 2 {
		if ratioAt(k) >= 1 {
			crossed = k
			break
		}
	}
	if crossed < 0 {
		t.Error("no cuDNN/fbfft crossover found in k ∈ [5, 9]")
	}
}

func TestFig3dFbfftRuntimeFlatInKernelSize(t *testing.T) {
	base := workload.Base()
	times := map[int]float64{}
	for _, k := range []int{3, 7, 11, 15} {
		cfg := base
		cfg.Kernel = k
		times[k] = measure(t, "fbfft", cfg).Time.Seconds()
	}
	// The paper: "the runtime of fbfft tends to be a constant value".
	if spread := times[15] / times[3]; spread > 1.25 || spread < 0.8 {
		t.Errorf("fbfft runtime should be ~flat in k: k3=%.4f k15=%.4f", times[3], times[15])
	}
	// While cuDNN grows superlinearly across the same span.
	cfg3, cfg15 := base, base
	cfg3.Kernel, cfg15.Kernel = 3, 15
	c3 := measure(t, "cuDNN", cfg3).Time.Seconds()
	c15 := measure(t, "cuDNN", cfg15).Time.Seconds()
	if c15/c3 < 4 {
		t.Errorf("cuDNN runtime should grow strongly with k: k3=%.4f k15=%.4f", c3, c15)
	}
}

// --- Figure 3e: stride ----------------------------------------------

func TestFig3eStride(t *testing.T) {
	rows := Figure3("stride")
	for _, row := range rows {
		fb, _ := row.CellFor("fbfft")
		tf, _ := row.CellFor("Theano-fft")
		if row.Value == 1 {
			if !fb.Ok() || !tf.Ok() {
				t.Fatal("FFT engines must support stride 1")
			}
			best, _ := row.Best()
			if best.Impl != "fbfft" {
				t.Errorf("stride 1: best = %s, want fbfft", best.Impl)
			}
			continue
		}
		// Paper: "fbfft and Theano-fft only support stride size of 1";
		// "For greater stride, cuDNN results in the best performance."
		if fb.Ok() || tf.Ok() {
			t.Errorf("stride %d: FFT engines should be unsupported", row.Value)
		}
		best, ok := row.Best()
		if !ok || best.Impl != "cuDNN" {
			t.Errorf("stride %d: best = %s, want cuDNN", row.Value, best.Impl)
		}
	}
}

// --- Figure 3a: cuda-convnet2 batch-multiple behaviour ---------------

func TestFig3aCudaConvnet2BatchMultiples(t *testing.T) {
	base := workload.Base()
	perImage := func(b int) float64 {
		cfg := base
		cfg.Batch = b
		c := measure(t, "cuda-convnet2", cfg)
		if !c.Ok() {
			t.Fatalf("cuda-convnet2 should support batch %d", b)
		}
		return c.Time.Seconds() / float64(b)
	}
	if at128, at96 := perImage(128), perImage(96); at128 >= at96 {
		t.Errorf("per-image cost at b=128 (%.6f) should beat b=96 (%.6f)", at128, at96)
	}
	if at256, at224 := perImage(256), perImage(224); at256 >= at224 {
		t.Errorf("per-image cost at b=256 (%.6f) should beat b=224 (%.6f)", at256, at224)
	}
}

// --- Figure 4: hotspot kernels --------------------------------------

func TestFig4GEMMDominatesUnrolling(t *testing.T) {
	shares := Figure4()
	// Paper: GEMM takes 87%, 83%, 80% of Caffe, Torch-cunn,
	// Theano-CorrMM. We assert the dominant-share band [65%, 95%].
	for _, name := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM"} {
		g := GEMMShare(shares[name])
		if g < 0.65 || g > 0.95 {
			t.Errorf("%s GEMM share = %.1f%%, want within [65%%, 95%%]", name, g*100)
		}
	}
	// cuDNN: cudnn_gemm + wgrad_alg0_engine dominate (Figure 4d).
	if g := GEMMShare(shares["cuDNN"]); g < 0.75 {
		t.Errorf("cuDNN compute kernels share = %.1f%%, want ≥ 75%%", g*100)
	}
}

func TestFig4KernelNames(t *testing.T) {
	shares := Figure4()
	wantKernels := map[string][]string{
		"Caffe":         {"im2col_gpu_kernel", "col2im_gpu_kernel", "cublas_sgemm"},
		"cuDNN":         {"cudnn_gemm", "wgrad_alg0_engine"},
		"cuda-convnet2": {"filterActs_YxX_color", "img_acts_color", "conv_weight_acts_c_preload"},
		"fbfft":         {"decimateInFrequency", "transpose", "cgemm_batched", "decimateInFrequencyInverse"},
		"Theano-fft":    {"pad_and_copy", "decimateInFrequency"},
	}
	for impl, kernels := range wantKernels {
		have := map[string]bool{}
		for _, k := range shares[impl] {
			have[k.Kernel] = true
		}
		for _, k := range kernels {
			if !have[k] {
				t.Errorf("%s profile is missing kernel %q (has %v)", impl, k, have)
			}
		}
	}
}

func TestFig4FFTKernelFamilies(t *testing.T) {
	shares := Figure4()
	// Paper: "GEMM, FFT transform, FFT inverse and data transposition
	// account for most of the runtime in fbfft".
	var covered float64
	for _, k := range shares["fbfft"] {
		switch k.Kernel {
		case "decimateInFrequency", "decimateInFrequencyInverse", "transpose", "cgemm_batched":
			covered += k.Share
		}
	}
	if covered < 0.95 {
		t.Errorf("fbfft's four kernel families cover %.1f%%, want ≥95%%", covered*100)
	}
}

// --- Figure 5: memory -----------------------------------------------

func TestFig5MemoryOrderingAcrossBatchSweep(t *testing.T) {
	for _, row := range Figure5("batch") {
		get := func(name string) int64 {
			c, _ := row.CellFor(name)
			if !c.Ok() {
				t.Fatalf("%s missing at batch %d", name, row.Value)
			}
			return c.PeakBytes
		}
		cc2 := get("cuda-convnet2")
		torch := get("Torch-cunn")
		caffe := get("Caffe")
		fb := get("fbfft")
		if !(cc2 < torch && torch < caffe && caffe < fb) {
			t.Errorf("batch %d: memory ordering cc2(%d) < torch(%d) < caffe(%d) < fbfft(%d) violated",
				row.Value, cc2, torch, caffe, fb)
		}
	}
}

func TestFig5FbfftHighestEverywhere(t *testing.T) {
	for _, sweep := range []string{"batch", "filter"} {
		for _, row := range Figure5(sweep) {
			fb, _ := row.CellFor("fbfft")
			if !fb.Ok() {
				continue
			}
			for _, c := range row.Cells {
				if c.Impl == "fbfft" || !c.Ok() {
					continue
				}
				if c.PeakBytes >= fb.PeakBytes {
					t.Errorf("%s=%d: %s (%d B) should use less memory than fbfft (%d B)",
						sweep, row.Value, c.Impl, c.PeakBytes, fb.PeakBytes)
				}
			}
		}
	}
}

func TestFig5MemoryBandsMatchPaper(t *testing.T) {
	// Paper ranges over all sweeps: cc2 125–2076 MB, Torch-cunn
	// 170–2093 MB, Caffe 136–3809 MB, cuDNN 155–3810 MB, fbfft
	// 1632–10866 MB. We assert the same order of magnitude at the
	// sweep extremes.
	small := workload.Base()
	small.Batch = 32
	big := workload.Base()
	big.Batch = 512
	checks := []struct {
		impl             string
		minAtSmall       int64 // MB
		maxAtSmall       int64
		minAtBig, maxBig int64
	}{
		{"cuda-convnet2", 50, 400, 1000, 3500},
		{"Torch-cunn", 60, 450, 1200, 3600},
		{"Caffe", 100, 700, 2500, 6000},
		{"cuDNN", 100, 800, 2500, 6000},
		{"fbfft", 300, 1700, 5000, 12000},
	}
	for _, c := range checks {
		s := measure(t, c.impl, small).PeakBytes >> 20
		b := measure(t, c.impl, big).PeakBytes >> 20
		if s < c.minAtSmall || s > c.maxAtSmall {
			t.Errorf("%s at batch 32 uses %d MB, want [%d, %d]", c.impl, s, c.minAtSmall, c.maxAtSmall)
		}
		if b < c.minAtBig || b > c.maxBig {
			t.Errorf("%s at batch 512 uses %d MB, want [%d, %d]", c.impl, b, c.minAtBig, c.maxBig)
		}
	}
}

// --- Figure 6: GPU metrics ------------------------------------------

func TestFig6MetricBands(t *testing.T) {
	conv1 := workload.TableI()[0].Cfg
	m := func(name string) Cell { return measure(t, name, conv1) }

	// cuda-convnet2: achieved occupancy 14–22% (paper, Section V.C.1).
	if occ := m("cuda-convnet2").Metrics.AchievedOccupancy * 100; occ < 13 || occ > 23 {
		t.Errorf("cuda-convnet2 occupancy = %.1f%%, paper band 14-22%%", occ)
	}
	// Theano-fft: occupancy 39–59%, WEE 66–81%, shared efficiency
	// 8–20% (paper, Sections V.C.1, V.C.3, V.C.4).
	tf := m("Theano-fft").Metrics
	if occ := tf.AchievedOccupancy * 100; occ < 35 || occ > 62 {
		t.Errorf("Theano-fft occupancy = %.1f%%, paper band 39-59%%", occ)
	}
	if tf.WarpExecEff < 64 || tf.WarpExecEff > 83 {
		t.Errorf("Theano-fft WEE = %.1f%%, paper band 66-81%%", tf.WarpExecEff)
	}
	if tf.SharedEff < 6 || tf.SharedEff > 22 {
		t.Errorf("Theano-fft shared efficiency = %.1f%%, paper band 8-20%%", tf.SharedEff)
	}
	// cuDNN: occupancy 29–37%, shared efficiency over 130%.
	cu := m("cuDNN").Metrics
	if occ := cu.AchievedOccupancy * 100; occ < 28 || occ > 39 {
		t.Errorf("cuDNN occupancy = %.1f%%, paper band 29-37%%", occ)
	}
	if cu.SharedEff <= 125 {
		t.Errorf("cuDNN shared efficiency = %.1f%%, paper reports over 130%%", cu.SharedEff)
	}
	// Theano-CorrMM: gld efficiency 11.64–15.79%.
	if g := m("Theano-CorrMM").Metrics.GldEff; g < 10 || g > 18 {
		t.Errorf("Theano-CorrMM gld efficiency = %.1f%%, paper band 11.6-15.8%%", g)
	}
	// Caffe / Torch-cunn: "very low" (< 25%) gld efficiency.
	for _, name := range []string{"Caffe", "Torch-cunn"} {
		if g := m(name).Metrics.GldEff; g > 25 {
			t.Errorf("%s gld efficiency = %.1f%%, paper reports very low values", name, g)
		}
	}
	// Most implementations keep WEE over 97% (paper: "over 97%").
	for _, name := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM", "cuDNN", "cuda-convnet2", "fbfft"} {
		if wee := m(name).Metrics.WarpExecEff; wee < 96 {
			t.Errorf("%s WEE = %.1f%%, want ≥96%%", name, wee)
		}
	}
}

func TestFig6HigherOccupancyNotFaster(t *testing.T) {
	// The paper's key observation: Theano-fft has the HIGHEST occupancy
	// of the FFT engines yet the WORST runtime.
	conv1 := workload.TableI()[0].Cfg
	tf := measure(t, "Theano-fft", conv1)
	fb := measure(t, "fbfft", conv1)
	if tf.Metrics.AchievedOccupancy <= fb.Metrics.AchievedOccupancy*0.9 {
		t.Skip("occupancy relation changed; revisit calibration")
	}
	if tf.Time <= fb.Time {
		t.Error("Theano-fft should be slower than fbfft despite higher occupancy")
	}
}

// --- Figure 7: transfers --------------------------------------------

func TestFig7TransferGroups(t *testing.T) {
	rows := Figure7()
	for _, r := range rows {
		if !r.Ok {
			continue
		}
		switch r.Impl {
		case "Caffe", "cuDNN", "fbfft":
			if r.Share > 0.005 {
				t.Errorf("%s/%s transfer share %.1f%%, want ≈0 (hidden transfers)", r.Config, r.Impl, r.Share*100)
			}
		case "Torch-cunn", "cuda-convnet2", "Theano-fft":
			if r.Share <= 0 || r.Share > 0.25 {
				t.Errorf("%s/%s transfer share %.1f%%, want within (0, 25%%]", r.Config, r.Impl, r.Share*100)
			}
		case "Theano-CorrMM":
			if r.Config == "Conv2" {
				if r.Share < 0.5 {
					t.Errorf("Theano-CorrMM Conv2 transfer share %.1f%%, paper reports >60%%", r.Share*100)
				}
			} else if r.Share > 0.25 {
				t.Errorf("Theano-CorrMM %s transfer share %.1f%%, want moderate", r.Config, r.Share*100)
			}
		}
	}
}

// --- Tables -----------------------------------------------------------

func TestTableIIMatchesPaper(t *testing.T) {
	want := map[string]struct {
		regs int
		smem float64 // KB
	}{
		"Caffe":         {86, 8.5},
		"cuDNN":         {80, 8.4},
		"Torch-cunn":    {84, 8.1},
		"Theano-CorrMM": {72, 7.0},
		"cuda-convnet2": {116, 16.0},
		"fbfft":         {106, 10.0},
		"Theano-fft":    {2, 4.5},
	}
	rows := TableII()
	if len(rows) != 7 {
		t.Fatalf("Table II has %d rows, want 7", len(rows))
	}
	for _, r := range rows {
		w, ok := want[r.Impl]
		if !ok {
			t.Errorf("unexpected Table II row %q", r.Impl)
			continue
		}
		if r.RegsPerThread != w.regs {
			t.Errorf("%s registers = %d, Table II says %d", r.Impl, r.RegsPerThread, w.regs)
		}
		kb := float64(r.SmemPerBlockB) / 1024
		if kb < w.smem-0.3 || kb > w.smem+0.3 {
			t.Errorf("%s shared memory = %.1f KB, Table II says %.1f KB", r.Impl, kb, w.smem)
		}
	}
}

func TestTableIConfigs(t *testing.T) {
	rows := workload.TableI()
	if len(rows) != 5 {
		t.Fatalf("Table I has %d rows, want 5", len(rows))
	}
	// The paper's tuples: (128,128,96,11,1), (128,128,96,3,1),
	// (128,32,128,9,1), (128,16,128,7,1), (128,13,384,3,1).
	want := [][5]int{
		{128, 128, 96, 11, 1},
		{128, 128, 96, 3, 1},
		{128, 32, 128, 9, 1},
		{128, 16, 128, 7, 1},
		{128, 13, 384, 3, 1},
	}
	for i, nc := range rows {
		got := [5]int{nc.Cfg.Batch, nc.Cfg.Input, nc.Cfg.Filters, nc.Cfg.Kernel, nc.Cfg.Stride}
		if got != want[i] {
			t.Errorf("%s = %v, want %v", nc.Name, got, want[i])
		}
		if err := nc.Cfg.Validate(); err != nil {
			t.Errorf("%s invalid: %v", nc.Name, err)
		}
	}
}

// --- Figure 2 ---------------------------------------------------------

func TestFig2ConvolutionDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("model profiling in short mode")
	}
	for _, mb := range Figure2() {
		if mb.ConvShare < 0.80 || mb.ConvShare > 0.98 {
			t.Errorf("%s conv share %.1f%%, paper band 86-94%% (accepting [80, 98])",
				mb.Model, mb.ConvShare*100)
		}
		if mb.Total <= 0 {
			t.Errorf("%s: no simulated time", mb.Model)
		}
	}
}

// TestFig6BandsAcrossAllConfigs: the per-implementation metric
// characters must hold across all five Table I configurations, not
// just Conv1 — occupancy is resource-bound (shape-independent), WEE is
// code-structure-bound.
func TestFig6BandsAcrossAllConfigs(t *testing.T) {
	for _, r := range Figure6() {
		if !r.Cell.Ok() {
			t.Errorf("%s/%s failed to run", r.Config, r.Impl)
			continue
		}
		m := r.Cell.Metrics
		switch r.Impl {
		case "cuda-convnet2":
			if occ := m.AchievedOccupancy * 100; occ < 12 || occ > 24 {
				t.Errorf("%s cuda-convnet2 occupancy %.1f%% outside 12-24%%", r.Config, occ)
			}
		case "Theano-fft":
			if m.WarpExecEff < 64 || m.WarpExecEff > 95 {
				t.Errorf("%s Theano-fft WEE %.1f%% outside the divergent band", r.Config, m.WarpExecEff)
			}
		case "cuDNN":
			if m.SharedEff < 120 {
				t.Errorf("%s cuDNN shared efficiency %.1f%% should stay >120%% (broadcast tiles)",
					r.Config, m.SharedEff)
			}
		}
		// Universal sanity on every cell.
		if m.AchievedOccupancy <= 0 || m.AchievedOccupancy > 1 {
			t.Errorf("%s/%s occupancy %v out of range", r.Config, r.Impl, m.AchievedOccupancy)
		}
		if m.WarpExecEff <= 0 || m.WarpExecEff > 100 {
			t.Errorf("%s/%s WEE %v out of range", r.Config, r.Impl, m.WarpExecEff)
		}
		if m.IPC < 0 || m.IPC > 8 {
			t.Errorf("%s/%s IPC %v implausible for Kepler", r.Config, r.Impl, m.IPC)
		}
	}
}
