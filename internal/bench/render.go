package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gpucnn/internal/impls"
	"gpucnn/internal/nn"
)

// fmtDur renders a duration in milliseconds with fixed precision.
// Milliseconds are computed from Seconds() so sub-microsecond runtime
// is rounded, not truncated away.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2f", d.Seconds()*1e3)
}

// cellMarker returns the text standing in for a failed cell, or ""
// when the cell holds a valid measurement: "OOM" for the paper's
// "program crush" cases, "n/s" for shape limitations, "panic" for an
// engine failure the executor isolated, "canceled" for a cell cut off
// by context cancellation or timeout.
func cellMarker(c Cell) string {
	switch {
	case c.OOM:
		return "OOM"
	case c.Unsupported != "":
		return "n/s"
	case c.Panic != "":
		return "panic"
	case c.Canceled:
		return "canceled"
	}
	return ""
}

// sweepImpls derives the column set of a sweep from the rows' own
// cells, in first-seen order — headers stay aligned even when the rows
// cover a subset or reordering of the registered implementations.
func sweepImpls(rows []Row) []string {
	var names []string
	seen := map[string]bool{}
	for _, row := range rows {
		for _, c := range row.Cells {
			if !seen[c.Impl] {
				seen[c.Impl] = true
				names = append(names, c.Impl)
			}
		}
	}
	return names
}

// fmtMB renders bytes as whole mebibytes.
func fmtMB(b int64) string {
	return fmt.Sprintf("%d", b>>20)
}

// RenderSweepTimes renders a Figure 3 panel: one row per swept value,
// one column per implementation, entries in milliseconds per training
// iteration ("n/s" = shape unsupported, "OOM" = out of device memory).
func RenderSweepTimes(param string, rows []Row) string {
	return renderSweep(param, rows, "runtime (ms/iter)", func(c Cell) string {
		return fmtDur(c.Time)
	})
}

// RenderSweepMemory renders a Figure 5 panel: peak device memory in MB.
func RenderSweepMemory(param string, rows []Row) string {
	return renderSweep(param, rows, "peak device memory (MB)", func(c Cell) string {
		return fmtMB(c.PeakBytes)
	})
}

func renderSweep(param string, rows []Row, what string, cell func(Cell) string) string {
	names := sweepImpls(rows)
	var b strings.Builder
	fmt.Fprintf(&b, "%s sweep — %s\n", param, what)
	fmt.Fprintf(&b, "%-8s", param)
	for _, name := range names {
		fmt.Fprintf(&b, " %14s", name)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%-8d", row.Value)
		// Cells are looked up by implementation name, not position, so
		// a row with missing or reordered cells cannot shift columns.
		for _, name := range names {
			c, ok := row.CellFor(name)
			switch {
			case !ok:
				fmt.Fprintf(&b, " %14s", "-")
			case !c.Ok():
				fmt.Fprintf(&b, " %14s", cellMarker(c))
			default:
				fmt.Fprintf(&b, " %14s", cell(c))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure2 renders the model layer breakdowns.
func RenderFigure2(breakdowns []ModelBreakdown) string {
	var b strings.Builder
	for _, mb := range breakdowns {
		fmt.Fprintf(&b, "%s (batch %d, %.2fM params): iteration %s, Conv %.1f%%\n",
			mb.Model, mb.Batch, float64(mb.Params)/1e6,
			mb.Total.Round(time.Millisecond), mb.ConvShare*100)
		b.WriteString(indent(nn.BreakdownReport(mb.ByKind), "  "))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderFigure4 renders the hotspot-kernel shares per implementation.
func RenderFigure4(shares map[string][]KernelShare) string {
	var b strings.Builder
	for _, name := range impls.Names() {
		ks, ok := shares[name]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "%s (GEMM-class kernels: %.1f%%)\n", name, GEMMShare(ks)*100)
		for _, k := range ks {
			fmt.Fprintf(&b, "  %-36s %5.1f%%  %s\n", k.Kernel, k.Share*100, k.Time.Round(time.Microsecond))
		}
	}
	return b.String()
}

// RenderFigure6 renders the metric profile table.
func RenderFigure6(rows []MetricsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-7s %-15s %10s %7s %6s %7s %7s %7s %8s\n",
		"Config", "Impl", "Time(ms)", "Occ%", "IPC", "WEE%", "Gld%", "Gst%", "Shared%")
	for _, r := range rows {
		if !r.Cell.Ok() {
			fmt.Fprintf(&b, "%-7s %-15s %10s\n", r.Config, r.Impl, cellMarker(r.Cell))
			continue
		}
		m := r.Cell.Metrics
		fmt.Fprintf(&b, "%-7s %-15s %10s %7.1f %6.2f %7.1f %7.1f %7.1f %8.1f\n",
			r.Config, r.Impl, fmtDur(r.Cell.Time),
			m.AchievedOccupancy*100, m.IPC, m.WarpExecEff, m.GldEff, m.GstEff, m.SharedEff)
	}
	return b.String()
}

// RenderFigure7 renders transfer shares as a config × implementation
// percentage table.
func RenderFigure7(rows []TransferRow) string {
	configs := []string{}
	seen := map[string]bool{}
	names := []string{}
	seenImpl := map[string]bool{}
	for _, r := range rows {
		if !seen[r.Config] {
			seen[r.Config] = true
			configs = append(configs, r.Config)
		}
		if !seenImpl[r.Impl] {
			seenImpl[r.Impl] = true
			names = append(names, r.Impl)
		}
	}
	byKey := map[string]TransferRow{}
	for _, r := range rows {
		byKey[r.Config+"/"+r.Impl] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "Config")
	for _, name := range names {
		fmt.Fprintf(&b, " %14s", name)
	}
	b.WriteByte('\n')
	for _, cfg := range configs {
		fmt.Fprintf(&b, "%-8s", cfg)
		for _, name := range names {
			r, ok := byKey[cfg+"/"+name]
			if !ok || !r.Ok {
				fmt.Fprintf(&b, " %14s", "n/s")
				continue
			}
			fmt.Fprintf(&b, " %13.1f%%", r.Share*100)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTableII renders the resource-usage table.
func RenderTableII(rows []TableIIRow) string {
	sorted := append([]TableIIRow(nil), rows...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Impl < sorted[j].Impl })
	var b strings.Builder
	fmt.Fprintf(&b, "%-15s %10s %18s\n", "Implementation", "Registers", "Shared Memory(KB)")
	for _, r := range sorted {
		fmt.Fprintf(&b, "%-15s %10d %18.1f\n", r.Impl, r.RegsPerThread, float64(r.SmemPerBlockB)/1024)
	}
	return b.String()
}

// CSVSweep renders a sweep as CSV for plotting. Columns derive from
// the rows' own cells (see sweepImpls); failed cells carry the same
// markers as the tables ("OOM", "n/s", "panic", "canceled") so the
// paper's "program crush" distinction survives into the CSV — plotting
// scripts should treat any non-numeric entry as a missing point. A
// cell absent from a row altogether renders empty.
func CSVSweep(param string, rows []Row, memory bool) string {
	names := sweepImpls(rows)
	var b strings.Builder
	fmt.Fprintf(&b, "%s", param)
	for _, name := range names {
		fmt.Fprintf(&b, ",%s", name)
	}
	b.WriteByte('\n')
	for _, row := range rows {
		fmt.Fprintf(&b, "%d", row.Value)
		for _, name := range names {
			c, ok := row.CellFor(name)
			switch {
			case !ok:
				b.WriteString(",")
			case !c.Ok():
				fmt.Fprintf(&b, ",%s", cellMarker(c))
			case memory:
				fmt.Fprintf(&b, ",%d", c.PeakBytes>>20)
			default:
				fmt.Fprintf(&b, ",%.3f", c.Time.Seconds()*1e3)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n") + "\n"
}
