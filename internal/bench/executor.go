package bench

import (
	"context"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/obs"
	"gpucnn/internal/par"
	"gpucnn/internal/telemetry"
)

// Options configure the parallel measurement executor. The zero value
// is a sensible default: one worker per CPU, no per-cell timeout.
type Options struct {
	// Workers bounds the number of concurrent measurements. Zero or
	// negative means runtime.GOMAXPROCS(0).
	Workers int
	// Timeout bounds each individual measurement. Zero means none.
	// Cancellation is cooperative: a running cell is abandoned at its
	// next iteration boundary and marked Canceled.
	Timeout time.Duration
	// Engines overrides the engine set a sweep measures. Nil means the
	// paper's seven (impls.All(), fresh instances per configuration);
	// non-nil instances are shared across every cell of the sweep, so
	// stateful engines — the planner's Autotuned, the Auto dispatcher —
	// must be safe for concurrent use (both are).
	Engines []impls.Engine
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Task is one (implementation, configuration, device) measurement cell
// for the executor. Each task builds its own gpusim.Device, so tasks
// are independent; engines are stateless, but callers that want zero
// sharing can hand every task its own instance (SweepCtx does).
type Task struct {
	Engine impls.Engine
	Cfg    conv.Config
	Spec   gpusim.DeviceSpec
}

// RunCells fans the tasks out across a bounded worker pool and returns
// one Cell per task, by task index — results are positioned
// deterministically no matter which worker finishes first, so a
// parallel sweep renders byte-identically to a serial one.
//
// Failure isolation: a panic inside an engine or plan poisons only its
// own cell (Cell.Panic carries the recovered message); cancelling ctx
// or exceeding opt.Timeout marks the affected cells Canceled. The
// other cells complete normally either way.
//
// When ctx carries a telemetry registry, per-cell latency lands in the
// bench_cell_latency_seconds histogram (labelled by implementation)
// and pool behaviour in the bench_executor_* series.
func RunCells(ctx context.Context, tasks []Task, opt Options) []Cell {
	cells := make([]Cell, len(tasks))
	reg := telemetry.RegistryFromContext(ctx)
	plane := obs.FromContext(ctx)
	errs := runIndexed(ctx, len(tasks), opt, func(ctx context.Context, i int) {
		t := tasks[i]
		if opt.Timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, opt.Timeout)
			defer cancel()
		}
		// The active-op tag keys profile captures to the sweep cell in
		// flight (last writer wins across concurrent workers — any of
		// the simultaneously running cells is a truthful answer).
		plane.SetOp(fmt.Sprintf("sweep/%s/%s", t.Engine.Name(), t.Cfg))
		start := time.Now()
		defer func() {
			wall := time.Since(start).Seconds()
			if reg != nil {
				reg.Histogram("bench_cell_latency_seconds",
					telemetry.Labels{"impl": t.Engine.Name()}, nil).
					Observe(wall)
			}
			plane.Counter("bench.cells").Inc()
			plane.Histogram("bench.cell_seconds", nil).Observe(wall)
		}()
		cells[i] = MeasureCtx(ctx, t.Engine, t.Cfg, t.Spec)
	})
	for i, err := range errs {
		if err == nil {
			continue
		}
		cells[i] = Cell{Impl: tasks[i].Engine.Name(), Cfg: tasks[i].Cfg, Panic: err.Error()}
		if reg != nil {
			reg.Counter("bench_measurements_total",
				telemetry.Labels{"impl": tasks[i].Engine.Name(), "outcome": "panic"}).Inc()
		}
	}
	return cells
}

// runIndexed distributes jobs 0..n-1 over a bounded worker pool and
// waits for all of them. Jobs are claimed in index order but may
// complete in any order; each writes only its own slot, so callers get
// deterministic placement for free. A panicking job is recovered into
// its errs slot instead of taking down the sweep. Worker utilisation
// (busy seconds per worker over the pool's wall time) is recorded in
// the context's telemetry registry, if any.
func runIndexed(ctx context.Context, n int, opt Options, job func(ctx context.Context, i int)) []error {
	errs := make([]error, n)
	if n == 0 {
		return errs
	}
	workers := opt.workers()
	if workers > n {
		workers = n
	}
	start := time.Now()
	busy := make([]time.Duration, workers)
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		par.Go(fmt.Sprintf("bench.executor-%d", w), func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				t0 := time.Now()
				func() {
					defer func() {
						if r := recover(); r != nil {
							errs[i] = fmt.Errorf("%v", r)
						}
					}()
					job(ctx, i)
				}()
				busy[w] += time.Since(t0)
			}
		})
	}
	wg.Wait()
	if plane := obs.FromContext(ctx); plane != nil {
		wall := time.Since(start)
		var totalBusy time.Duration
		for _, b := range busy {
			totalBusy += b
		}
		plane.Gauge("bench.pool_workers").Set(float64(workers))
		plane.Counter("bench.pool_jobs").Add(float64(n))
		if wall > 0 {
			plane.Gauge("bench.pool_utilization").
				Set(totalBusy.Seconds() / (float64(workers) * wall.Seconds()))
		}
	}
	if reg := telemetry.RegistryFromContext(ctx); reg != nil {
		wall := time.Since(start)
		reg.Gauge("bench_executor_workers", nil).Set(float64(workers))
		reg.Counter("bench_executor_jobs_total", nil).Add(float64(n))
		reg.Histogram("bench_executor_pool_wall_seconds", nil, nil).Observe(wall.Seconds())
		for w, b := range busy {
			labels := telemetry.Labels{"worker": strconv.Itoa(w)}
			reg.Counter("bench_executor_busy_seconds_total", labels).Add(b.Seconds())
			if wall > 0 {
				reg.Gauge("bench_executor_utilization", labels).Set(b.Seconds() / wall.Seconds())
			}
		}
	}
	return errs
}
