package bench

import (
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

// Ablations of the design choices DESIGN.md calls out: fbfft's
// overlap-add tiling, its transform reuse, Caffe's pinned-prefetch
// transfers, and the cross-architecture sanity of the headline results.

func measureOn(t *testing.T, e impls.Engine, cfg conv.Config, spec gpusim.DeviceSpec) Cell {
	t.Helper()
	cell := Cell{Impl: e.Name(), Cfg: cfg}
	dev := gpusim.New(spec)
	plan, err := e.Plan(dev, cfg)
	if err != nil {
		t.Fatalf("%s: %v", e.Name(), err)
	}
	defer plan.Release()
	if err := plan.Iteration(); err != nil {
		t.Fatalf("%s: %v", e.Name(), err)
	}
	cell.Time = dev.Elapsed()
	cell.PeakBytes = dev.Mem.Peak()
	return cell
}

// TestAblationFbfftTiling: overlap-add tiling is what keeps fbfft
// competitive past input 128 — without it the transform pads to the
// next power of two and both time and memory jump.
func TestAblationFbfftTiling(t *testing.T) {
	cfg := workload.Base()
	cfg.Input = 144 // just past the 128 boundary
	spec := gpusim.TeslaK40c()
	tiled := measureOn(t, impls.NewFbfft(), cfg, spec)
	padded := measureOn(t, impls.NewFbfftVariant(impls.FbfftOptions{DisableTiling: true}), cfg, spec)
	if tiled.Time >= padded.Time {
		t.Errorf("tiling should be faster at i=144: tiled %v vs padded %v", tiled.Time, padded.Time)
	}
	if tiled.PeakBytes >= padded.PeakBytes {
		t.Errorf("tiling should use less memory at i=144: %d vs %d", tiled.PeakBytes, padded.PeakBytes)
	}
	// At i=128 (exact power of two) the two are identical.
	cfg.Input = 128
	a := measureOn(t, impls.NewFbfft(), cfg, spec)
	b := measureOn(t, impls.NewFbfftVariant(impls.FbfftOptions{DisableTiling: true}), cfg, spec)
	if a.Time != b.Time {
		t.Errorf("at i=128 tiling must be a no-op: %v vs %v", a.Time, b.Time)
	}
}

// TestAblationFbfftTransformReuse: reusing the x/dy spectra for the
// weight-gradient pass saves roughly the cost of re-transforming the
// largest grid set.
func TestAblationFbfftTransformReuse(t *testing.T) {
	cfg := workload.Base()
	spec := gpusim.TeslaK40c()
	with := measureOn(t, impls.NewFbfft(), cfg, spec)
	without := measureOn(t, impls.NewFbfftVariant(impls.FbfftOptions{DisableTransformReuse: true}), cfg, spec)
	if with.Time >= without.Time {
		t.Fatalf("transform reuse should be faster: %v vs %v", with.Time, without.Time)
	}
	if saving := 1 - with.Time.Seconds()/without.Time.Seconds(); saving < 0.05 || saving > 0.6 {
		t.Fatalf("reuse saving %.1f%% outside the plausible band", saving*100)
	}
}

// TestAblationPinnedPrefetch: Caffe's hidden transfers vs Theano's
// synchronous pageable staging — the Figure 7 mechanism isolated.
func TestAblationPinnedPrefetch(t *testing.T) {
	// Conv2: the transfer-heaviest Table I configuration.
	cfg := workload.TableI()[1].Cfg
	caffe := Measure(impls.NewCaffe(), cfg)
	corrMM := Measure(impls.NewTheanoCorrMM(), cfg)
	if caffe.TransferShare > 0.001 {
		t.Errorf("Caffe's prefetch should hide transfers, share %.2f%%", caffe.TransferShare*100)
	}
	if corrMM.TransferShare < 0.3 {
		t.Errorf("CorrMM's pageable staging should be visible, share %.2f%%", corrMM.TransferShare*100)
	}
}

// TestCrossArchitectureConclusions: on the Maxwell Titan X the paper's
// comparative conclusions persist (they are strategy-driven, not
// K40c-specific): fbfft still wins big kernels, cuDNN still wins small
// ones, everything is faster than on Kepler.
func TestCrossArchitectureConclusions(t *testing.T) {
	k40, titan := gpusim.TeslaK40c(), gpusim.TitanXMaxwell()
	base := workload.Base()

	fbK40 := measureOn(t, impls.NewFbfft(), base, k40)
	fbTitan := measureOn(t, impls.NewFbfft(), base, titan)
	if fbTitan.Time >= fbK40.Time {
		t.Errorf("Titan X should be faster than K40c: %v vs %v", fbTitan.Time, fbK40.Time)
	}

	cuTitan := measureOn(t, impls.NewCuDNN(), base, titan)
	if fbTitan.Time >= cuTitan.Time {
		t.Errorf("fbfft should still beat cuDNN at k=11 on Maxwell: %v vs %v", fbTitan.Time, cuTitan.Time)
	}
	small := base
	small.Kernel = 3
	if fb, cu := measureOn(t, impls.NewFbfft(), small, titan), measureOn(t, impls.NewCuDNN(), small, titan); cu.Time >= fb.Time {
		t.Errorf("cuDNN should still beat fbfft at k=3 on Maxwell: %v vs %v", cu.Time, fb.Time)
	}
}

// TestMaxwellOccupancyShift: cuda-convnet2's register-bound occupancy
// is identical across the two parts (same 64K register file), but the
// doubled shared-memory pool lifts shared-limited kernels — an
// architecture-specific effect the occupancy calculator exposes.
func TestMaxwellOccupancyShift(t *testing.T) {
	k40, titan := gpusim.TeslaK40c(), gpusim.TitanXMaxwell()
	// Shared-limited: 24 KB/block.
	oK, err := k40.ComputeOccupancy(64, 16, 24*1024)
	if err != nil {
		t.Fatal(err)
	}
	oT, err := titan.ComputeOccupancy(64, 16, 24*1024)
	if err != nil {
		t.Fatal(err)
	}
	if oT.BlocksPerSM <= oK.BlocksPerSM {
		t.Errorf("Maxwell's 96 KB shared pool should fit more blocks: %d vs %d",
			oT.BlocksPerSM, oK.BlocksPerSM)
	}
	// Register-limited: identical register files, identical ceilings.
	rK, _ := k40.ComputeOccupancy(256, 116, 0)
	rT, _ := titan.ComputeOccupancy(256, 116, 0)
	if rK.ActiveWarps != rT.ActiveWarps {
		t.Errorf("register-bound warp ceilings should match: %d vs %d", rK.ActiveWarps, rT.ActiveWarps)
	}
}

// Benchmarks for the same ablations, runnable via `go test -bench`.

func BenchmarkAblationFbfftTiling(b *testing.B) {
	cfg := workload.Base()
	cfg.Input = 144
	for _, e := range []impls.Engine{
		impls.NewFbfft(),
		impls.NewFbfftVariant(impls.FbfftOptions{DisableTiling: true}),
	} {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell := Measure(e, cfg)
				if i == 0 {
					b.ReportMetric(float64(cell.Time.Microseconds())/1000, "sim_ms")
					b.ReportMetric(float64(cell.PeakBytes>>20), "sim_MB")
				}
			}
		})
	}
}

func BenchmarkAblationWinograd(b *testing.B) {
	// A VGG-style 3×3 layer: the Winograd extension vs the paper's
	// best small-kernel implementation.
	cfg := conv.Config{Batch: 64, Input: 56, Channels: 128, Filters: 128, Kernel: 3, Stride: 1, Pad: 1}
	for _, e := range []impls.Engine{impls.NewCuDNN(), impls.NewWinograd()} {
		e := e
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell := Measure(e, cfg)
				if i == 0 {
					b.ReportMetric(float64(cell.Time.Microseconds())/1000, "sim_ms")
				}
			}
		})
	}
}

func BenchmarkAblationCrossArchitecture(b *testing.B) {
	specs := map[string]gpusim.DeviceSpec{
		"K40c":   gpusim.TeslaK40c(),
		"TitanX": gpusim.TitanXMaxwell(),
	}
	for name, spec := range specs {
		spec := spec
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dev := gpusim.New(spec)
				plan, err := impls.NewCuDNN().Plan(dev, workload.Base())
				if err != nil {
					b.Fatal(err)
				}
				if err := plan.Iteration(); err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(dev.Elapsed().Microseconds())/1000, "sim_ms")
				}
				plan.Release()
			}
		})
	}
}

// TestWhatIfStreamOverlap uses the multi-stream scheduler to quantify
// the headroom a two-stream fbfft forward pass would have: the input
// and filter transforms are independent, so overlapping them shortens
// the pass toward its critical path — an optimisation opportunity of
// exactly the kind the paper's conclusion invites.
func TestWhatIfStreamOverlap(t *testing.T) {
	dev := gpusim.New(gpusim.TeslaK40c())
	k := func(name string, flops, bytes float64) gpusim.KernelSpec {
		return gpusim.KernelSpec{
			Name: name, Grid: gpusim.Dim3{X: 4096}, Block: gpusim.Dim3{X: 256},
			RegsPerThread: 106, SharedPerBlock: 10 << 10,
			FLOPs: flops, GlobalLoadBytes: bytes, GlobalStoreBytes: bytes,
			UsesShared: true, ILP: 3, EfficiencyScale: 0.8,
		}
	}
	tasks := []gpusim.Task{
		{Kernel: k("fft_inputs", 2e9, 3e8)},                    // 0
		{Kernel: k("fft_filters", 5e8, 5e7)},                   // 1 (independent of 0)
		{Kernel: k("cgemm", 3e9, 2e8), Deps: []int{0, 1}},      // 2
		{Kernel: k("transpose_out", 1e7, 3e8), Deps: []int{2}}, // 3
		{Kernel: k("ifft_outputs", 2e9, 3e8), Deps: []int{3}},  // 4
	}
	serial, err := dev.Schedule(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	overlapped, err := dev.Schedule(tasks, 2)
	if err != nil {
		t.Fatal(err)
	}
	if overlapped.Makespan >= serial.Makespan {
		t.Fatalf("2 streams should shorten the pass: %v vs %v", overlapped.Makespan, serial.Makespan)
	}
	if overlapped.Makespan < overlapped.CriticalPath {
		t.Fatal("makespan below the critical path is impossible")
	}
	saving := 1 - overlapped.Makespan.Seconds()/serial.Makespan.Seconds()
	// The filter transform is the only overlappable work: modest but
	// real headroom.
	if saving <= 0 || saving > 0.4 {
		t.Fatalf("overlap saving %.1f%% outside the plausible band", saving*100)
	}
}
