package bench

import (
	"math"
	"testing"

	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

// Golden pins: the exact headline values EXPERIMENTS.md documents. The
// simulation is deterministic, so any drift here means the performance
// model changed and EXPERIMENTS.md must be regenerated — this test
// turns silent drift into a visible diff. A 1% tolerance absorbs
// innocuous float reordering.

func pinMs(t *testing.T, name string, wantMs float64) {
	t.Helper()
	e, err := impls.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	cell := Measure(e, workload.Base())
	if !cell.Ok() {
		t.Fatalf("%s failed at base config", name)
	}
	got := float64(cell.Time.Microseconds()) / 1000
	if math.Abs(got-wantMs)/wantMs > 0.01 {
		t.Errorf("%s base runtime = %.2f ms, pinned %.2f ms — update EXPERIMENTS.md if intentional",
			name, got, wantMs)
	}
}

func TestGoldenBaseRuntimes(t *testing.T) {
	// From `go run ./cmd/runall` (documented in EXPERIMENTS.md).
	pinMs(t, "fbfft", 16.76)
	pinMs(t, "cuDNN", 43.74)
	pinMs(t, "cuda-convnet2", 54.15)
	pinMs(t, "Theano-CorrMM", 81.07)
	pinMs(t, "Caffe", 100.68)
	pinMs(t, "Torch-cunn", 105.00)
	pinMs(t, "Theano-fft", 211.26)
}

func TestGoldenBaseMemory(t *testing.T) {
	want := map[string]int64{ // MB at the base config
		"cuda-convnet2": 229,
		"Torch-cunn":    261,
		"Caffe":         478,
		"cuDNN":         502,
		"Theano-fft":    1019,
		"fbfft":         1028,
	}
	for name, mb := range want {
		e, _ := impls.ByName(name)
		cell := Measure(e, workload.Base())
		got := cell.PeakBytes >> 20
		if got < mb-6 || got > mb+6 {
			t.Errorf("%s base memory = %d MB, pinned %d MB", name, got, mb)
		}
	}
}

func TestGoldenConv2TransferSpike(t *testing.T) {
	conv2 := workload.TableI()[1].Cfg
	e, _ := impls.ByName("Theano-CorrMM")
	cell := Measure(e, conv2)
	if cell.TransferShare < 0.58 || cell.TransferShare > 0.64 {
		t.Errorf("Conv2 transfer share = %.1f%%, pinned ≈60.4%%", cell.TransferShare*100)
	}
}
