// Package bench regenerates every table and figure of the paper's
// evaluation: Figure 2 (model layer breakdown), Figure 3 (runtime
// sweeps), Figure 4 (hotspot kernels), Figure 5 (memory sweeps),
// Figure 6 (GPU metric profile over the Table I configs), Figure 7
// (transfer overhead), Table I (the configs themselves) and Table II
// (register / shared-memory usage).
//
// All results come from the simulated Tesla K40c in internal/gpusim;
// absolute values are model outputs, but the comparative shapes are
// calibrated against the paper's reported observations (see
// calibration_test.go and EXPERIMENTS.md).
package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
)

// Cell is one (implementation, configuration) measurement.
type Cell struct {
	Impl string
	Cfg  conv.Config

	// Unsupported carries the shape-limitation message when the engine
	// cannot run the configuration (the paper renders these as missing
	// points / dots).
	Unsupported string
	// OOM is set when the configuration exceeds the 12 GB device (the
	// paper's fbfft "program crush" cases).
	OOM bool
	// Panic carries the recovered message when the engine or plan
	// panicked during measurement. The parallel executor isolates such
	// failures to their own cell instead of killing the sweep.
	Panic string
	// Canceled is set when the measurement's context was cancelled or
	// its per-cell timeout expired before the iterations completed.
	Canceled bool

	Time          time.Duration // one training iteration (fwd + bwd)
	PeakBytes     int64
	TransferShare float64 // fraction of runtime spent in visible transfers
	Metrics       gpusim.Metrics
}

// Ok reports whether the cell holds a valid measurement.
func (c Cell) Ok() bool {
	return c.Unsupported == "" && !c.OOM && c.Panic == "" && !c.Canceled
}

// Iterations is how many training iterations each measurement averages
// over, matching the paper's methodology ("averaged over 10 iterations").
const Iterations = 10

// Measure runs Iterations training iterations of one engine on one
// configuration on a fresh simulated K40c and reports averaged results.
func Measure(e impls.Engine, cfg conv.Config) Cell {
	return MeasureOn(e, cfg, gpusim.TeslaK40c())
}

// MeasureOn is Measure on an arbitrary device specification — used by
// the cross-architecture ablations and the CLI tools' -device flag.
func MeasureOn(e impls.Engine, cfg conv.Config, spec gpusim.DeviceSpec) Cell {
	return MeasureCtx(context.Background(), e, cfg, spec)
}

// MeasureCtx is MeasureOn with telemetry: when the context carries a
// span or tracer, the measurement runs inside a span holding the full
// kernel/transfer stream of its iterations, and outcome counters
// (measurements, OOMs, unsupported shapes) land in the context's
// registry, if any — regression-visible substrate for the sweeps.
func MeasureCtx(ctx context.Context, e impls.Engine, cfg conv.Config, spec gpusim.DeviceSpec) Cell {
	cell := Cell{Impl: e.Name(), Cfg: cfg}
	_, span := telemetry.StartSpan(ctx, "measure:"+e.Name())
	span.SetAttr("impl", e.Name()).SetAttr("cfg", fmt.Sprint(cfg))
	defer span.End()
	reg := telemetry.RegistryFromContext(ctx)
	count := func(outcome string) {
		if reg != nil {
			reg.Counter("bench_measurements_total",
				telemetry.Labels{"impl": e.Name(), "outcome": outcome}).Inc()
		}
	}
	if ctx.Err() != nil {
		cell.Canceled = true
		count("canceled")
		return cell
	}
	if err := e.Supports(cfg.WithDefaults()); err != nil {
		cell.Unsupported = err.Error()
		count("unsupported")
		return cell
	}
	dev := gpusim.New(spec)
	if span != nil {
		rec := telemetry.NewRecorder()
		rec.Attach(span)
		dev.SetSink(rec)
	}
	plan, err := e.Plan(dev, cfg)
	if err != nil {
		var oom *gpusim.OOMError
		if errors.As(err, &oom) {
			cell.OOM = true
			count("oom")
			return cell
		}
		cell.Unsupported = err.Error()
		count("unsupported")
		return cell
	}
	defer plan.Release()
	for i := 0; i < Iterations; i++ {
		// Cooperative cancellation: a cancelled context or an expired
		// per-cell timeout abandons the cell at the next iteration
		// boundary — the finest grain the simulation exposes.
		if ctx.Err() != nil {
			cell.Canceled = true
			count("canceled")
			return cell
		}
		if err := plan.Iteration(); err != nil {
			var oom *gpusim.OOMError
			if errors.As(err, &oom) {
				cell.OOM = true
				count("oom")
				return cell
			}
			cell.Unsupported = err.Error()
			count("unsupported")
			return cell
		}
	}
	cell.Time = dev.Elapsed() / Iterations
	cell.PeakBytes = dev.Mem.Peak()
	if el := dev.Elapsed(); el > 0 {
		cell.TransferShare = dev.TransferTime().Seconds() / el.Seconds()
	}
	cell.Metrics = dev.Prof.WeightedMetrics(5)
	count("ok")
	span.SetAttr("time", cell.Time.String()).
		SetAttr("peak_bytes", fmt.Sprint(cell.PeakBytes))
	return cell
}

// Row is one sweep point: the swept parameter value and one cell per
// implementation, in registry order.
type Row struct {
	Value int
	Cells []Cell
}

// Sweep measures every implementation across a list of configurations
// on the paper's K40c.
func Sweep(cfgs []conv.Config, value func(conv.Config) int) []Row {
	return SweepOn(cfgs, value, gpusim.TeslaK40c())
}

// SweepOn is Sweep on an arbitrary device specification.
func SweepOn(cfgs []conv.Config, value func(conv.Config) int, spec gpusim.DeviceSpec) []Row {
	return SweepCtx(context.Background(), cfgs, value, spec, Options{})
}

// SweepCtx runs the sweep grid through the parallel executor: every
// (implementation, configuration) cell is an independent measurement on
// its own device, fanned out over opt.Workers goroutines. Results land
// by grid position, so the rows are identical to a serial sweep's.
func SweepCtx(ctx context.Context, cfgs []conv.Config, value func(conv.Config) int, spec gpusim.DeviceSpec, opt Options) []Row {
	if len(cfgs) == 0 {
		return nil
	}
	var tasks []Task
	for _, cfg := range cfgs {
		engines := opt.Engines
		if engines == nil {
			// Fresh engine instances per configuration: the paper's seven
			// carry no mutable state, but per-cell instantiation keeps the
			// worker pool race-free by construction.
			engines = impls.All()
		}
		for _, e := range engines {
			tasks = append(tasks, Task{Engine: e, Cfg: cfg, Spec: spec})
		}
	}
	cells := RunCells(ctx, tasks, opt)
	perRow := len(tasks) / len(cfgs)
	rows := make([]Row, len(cfgs))
	for i, cfg := range cfgs {
		rows[i] = Row{Value: value(cfg), Cells: cells[i*perRow : (i+1)*perRow]}
	}
	return rows
}

// deviceSpecs lists the canonical -device names with the normalized
// aliases each accepts.
var deviceSpecs = []struct {
	name    string
	aliases []string
	spec    func() gpusim.DeviceSpec
}{
	{"k40c", []string{"k40c", "k40", "teslak40c"}, gpusim.TeslaK40c},
	{"titanx", []string{"titanx", "titan", "titanxmaxwell"}, gpusim.TitanXMaxwell},
}

// normalizeDeviceName lower-cases and strips separator punctuation so
// "TitanX", "titan-x" and "Titan_X" all resolve to the same device.
func normalizeDeviceName(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch r {
		case '-', '_', '.', ' ':
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// SpecByName resolves a device name for CLI -device flags. Matching is
// case-insensitive and ignores -, _, . and spaces; the empty name means
// the paper's K40c.
func SpecByName(name string) (gpusim.DeviceSpec, error) {
	norm := normalizeDeviceName(name)
	if norm == "" {
		return gpusim.TeslaK40c(), nil
	}
	valid := make([]string, 0, len(deviceSpecs))
	for _, d := range deviceSpecs {
		for _, a := range d.aliases {
			if norm == a {
				return d.spec(), nil
			}
		}
		valid = append(valid, d.name)
	}
	return gpusim.DeviceSpec{}, fmt.Errorf("bench: unknown device %q (valid names: %s)",
		name, strings.Join(valid, ", "))
}

// Best returns the fastest valid cell of a row.
func (r Row) Best() (Cell, bool) {
	var best Cell
	found := false
	for _, c := range r.Cells {
		if !c.Ok() {
			continue
		}
		if !found || c.Time < best.Time {
			best, found = c, true
		}
	}
	return best, found
}

// CellFor returns the row's cell for an implementation name.
func (r Row) CellFor(name string) (Cell, bool) {
	for _, c := range r.Cells {
		if c.Impl == name {
			return c, true
		}
	}
	return Cell{}, false
}
