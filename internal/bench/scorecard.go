package bench

import (
	"context"
	"fmt"
	"strings"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

// Claim is one of the paper's comparative findings, re-measured on the
// simulator and graded. The scorecard (cmd/report) is the one-page
// answer to "did the reproduction hold?".
type Claim struct {
	ID       string
	Text     string // the paper's statement
	Paper    string // the paper's value/band
	Measured string
	Pass     bool
}

// Scorecard measures every tracked claim. It is deterministic and
// reasonably fast (a few hundred milliseconds of simulation).
func Scorecard() []Claim {
	return ScorecardCtx(context.Background(), Options{})
}

// ScorecardCtx is Scorecard with every underlying measurement fanned
// out over the parallel executor: the full cell grid the claims need
// is enumerated up front, measured concurrently, and the claims are
// then graded from the (deterministic, index-ordered) results — so the
// verdicts are identical to the serial run's.
func ScorecardCtx(ctx context.Context, opt Options) []Claim {
	base := workload.Base()
	conv1 := workload.TableI()[0].Cfg
	conv2 := workload.TableI()[1].Cfg

	// Enumerate every (implementation, configuration) cell the claims
	// read, deduplicated, and measure them all in one parallel batch.
	type mkey struct {
		impl string
		cfg  conv.Config
	}
	var tasks []Task
	index := map[mkey]int{}
	want := func(name string, cfg conv.Config) {
		k := mkey{name, cfg}
		if _, ok := index[k]; ok {
			return
		}
		e, err := impls.ByName(name)
		if err != nil {
			panic(err)
		}
		index[k] = len(tasks)
		tasks = append(tasks, Task{Engine: e, Cfg: cfg, Spec: gpusim.TeslaK40c()})
	}
	for _, name := range impls.Names() {
		want(name, base) // Figure 3 ordering + Figure 5 memory claims
	}
	for k := 3; k <= 15; k += 2 { // Figure 3d kernel crossover
		cfg := base
		cfg.Kernel = k
		want("cuDNN", cfg)
		want("fbfft", cfg)
	}
	for _, f := range []int{64, 512} { // Figure 3c filter crossover
		cfg := base
		cfg.Filters = f
		want("Theano-CorrMM", cfg)
		want("cuDNN", cfg)
	}
	for _, b := range []int{96, 128} { // Figure 3a batch multiples
		cfg := base
		cfg.Batch = b
		want("cuda-convnet2", cfg)
	}
	for _, name := range []string{"cuda-convnet2", "Theano-fft", "cuDNN", "Theano-CorrMM"} {
		want(name, conv1) // Figure 6 metric claims
	}
	want("Theano-CorrMM", conv2) // Figure 7 transfer claims
	want("Caffe", conv2)
	cells := RunCells(ctx, tasks, opt)
	measured := func(name string, cfg conv.Config) Cell {
		i, ok := index[mkey{name, cfg}]
		if !ok {
			panic(fmt.Sprintf("bench: scorecard cell %s/%v was not pre-measured", name, cfg))
		}
		return cells[i]
	}

	var claims []Claim
	add := func(id, text, paper, measured string, pass bool) {
		claims = append(claims, Claim{ID: id, Text: text, Paper: paper, Measured: measured, Pass: pass})
	}
	t := func(name string) float64 { return measured(name, base).Time.Seconds() }

	// --- Figure 2 ---
	for _, mb := range Figure2Ctx(ctx, opt) {
		add("F2/"+mb.Model,
			"convolutional layers dominate "+mb.Model+"'s training iteration",
			"86–94%",
			fmt.Sprintf("%.1f%%", mb.ConvShare*100),
			mb.ConvShare >= 0.80 && mb.ConvShare <= 0.98)
	}

	// --- Figure 3: base ordering ---
	fb, cu, tf := t("fbfft"), t("cuDNN"), t("Theano-fft")
	slowestOther := 0.0
	allOthersSlower := true
	for _, name := range impls.Names() {
		if name == "fbfft" {
			continue
		}
		v := t(name)
		if v > slowestOther {
			slowestOther = v
		}
		if v <= fb {
			allOthersSlower = false
		}
	}
	add("F3/fastest", "fbfft is the overall fastest implementation at the base configuration",
		"1.4×–9.7× over the others",
		fmt.Sprintf("%.1f×–%.1f× faster", cu/fb, slowestOther/fb),
		allOthersSlower)
	add("F3/slowest", "Theano-fft results in the slowest speed",
		"slowest everywhere",
		fmt.Sprintf("%.1f ms vs next-slowest", tf*1000),
		tf > slowestOther*0.999)
	add("F3/unrolling", "cuDNN has consistent superior performance among unrolling implementations",
		"best unrolling",
		fmt.Sprintf("cuDNN %.1f ms vs Caffe %.1f ms", cu*1000, t("Caffe")*1000),
		cu < t("Caffe") && cu < t("Torch-cunn") && cu < t("Theano-CorrMM"))

	// --- Figure 3d: kernel crossover ---
	ratioAt := func(k int) float64 {
		cfg := base
		cfg.Kernel = k
		return measured("cuDNN", cfg).Time.Seconds() / measured("fbfft", cfg).Time.Seconds()
	}
	crossover := -1
	for k := 3; k <= 15; k += 2 {
		if ratioAt(k) >= 1 {
			crossover = k
			break
		}
	}
	add("F3d/crossover", "for kernels smaller than 7 cuDNN outperforms fbfft; beyond that fbfft wins",
		"crossover at k≈7",
		fmt.Sprintf("fbfft first wins at k=%d", crossover),
		crossover >= 5 && crossover <= 9)
	adv3 := 1 / ratioAt(3)
	add("F3d/smallk", "the speed advantage of cuDNN over fbfft at small kernels",
		"1.21×–2.62×",
		fmt.Sprintf("%.2f× at k=3", adv3),
		adv3 >= 1.1 && adv3 <= 3.0)

	// --- Figure 3c: CorrMM vs cuDNN ---
	at := func(name string, f int) float64 {
		cfg := base
		cfg.Filters = f
		return measured(name, cfg).Time.Seconds()
	}
	corrWins512 := at("Theano-CorrMM", 512) < at("cuDNN", 512)
	cuWins64 := at("cuDNN", 64) < at("Theano-CorrMM", 64)
	add("F3c/corrmm", "Theano-CorrMM slightly outperforms cuDNN for large filter numbers",
		"crossover above ~160 filters",
		fmt.Sprintf("CorrMM wins at f=512: %v; cuDNN wins at f=64: %v", corrWins512, cuWins64),
		corrWins512 && cuWins64)

	// --- Figure 3a: cuda-convnet2 batch multiples ---
	perImage := func(b int) float64 {
		cfg := base
		cfg.Batch = b
		return measured("cuda-convnet2", cfg).Time.Seconds() / float64(b)
	}
	add("F3a/cc2", "cuda-convnet2 performs well only for mini-batch multiples of 128",
		"multiples of 128 favoured",
		fmt.Sprintf("per-image cost %.3f ms at b=128 vs %.3f ms at b=96", perImage(128)*1000, perImage(96)*1000),
		perImage(128) < perImage(96))

	// --- Figure 4 ---
	shares := Figure4()
	g := GEMMShare(shares["Caffe"])
	add("F4/gemm", "GEMM operations are the essence of unrolling convolutional layers",
		"80–87% of runtime",
		fmt.Sprintf("%.1f%% in Caffe", g*100),
		g >= 0.65 && g <= 0.95)

	// --- Figure 5 ---
	mem := func(name string) int64 { return measured(name, base).PeakBytes }
	ordered := mem("cuda-convnet2") < mem("Torch-cunn") &&
		mem("Torch-cunn") < mem("Caffe") &&
		mem("Caffe") < mem("Theano-fft") &&
		mem("Theano-fft") < mem("fbfft")
	add("F5/order", "cuda-convnet2 is the most memory-efficient; fbfft requires the most, followed by Theano-fft",
		"cc2 < Torch < Caffe ≈ cuDNN < Theano-fft < fbfft",
		fmt.Sprintf("%d < %d < %d < %d < %d MB",
			mem("cuda-convnet2")>>20, mem("Torch-cunn")>>20, mem("Caffe")>>20,
			mem("Theano-fft")>>20, mem("fbfft")>>20),
		ordered)

	// --- Figure 6 ---
	m6 := func(name string) Cell { return measured(name, conv1) }
	cc2occ := m6("cuda-convnet2").Metrics.AchievedOccupancy * 100
	add("F6/cc2occ", "the achieved occupancy in cuda-convnet2 is lower than the average level",
		"14–22%",
		fmt.Sprintf("%.1f%%", cc2occ),
		cc2occ >= 12 && cc2occ <= 24)
	tfm := m6("Theano-fft").Metrics
	add("F6/tfocc", "Theano-fft has higher occupancy but worse performance",
		"39–59% occupancy",
		fmt.Sprintf("%.1f%% occupancy, slowest runtime", tfm.AchievedOccupancy*100),
		tfm.AchievedOccupancy*100 >= 35 && tfm.AchievedOccupancy*100 <= 62)
	add("F6/tfshm", "Theano-fft has the lowest shared-memory efficiency (bank conflicts)",
		"8.16–20%",
		fmt.Sprintf("%.1f%%", tfm.SharedEff),
		tfm.SharedEff >= 6 && tfm.SharedEff <= 22)
	add("F6/tfwee", "Theano-fft suffers warp divergence",
		"WEE 66–81%",
		fmt.Sprintf("%.1f%%", tfm.WarpExecEff),
		tfm.WarpExecEff >= 64 && tfm.WarpExecEff <= 83)
	cuM := m6("cuDNN").Metrics
	add("F6/cudnnshm", "cuDNN has the highest shared-memory efficiency",
		"over 130%",
		fmt.Sprintf("%.1f%%", cuM.SharedEff),
		cuM.SharedEff > 125)
	corrGld := m6("Theano-CorrMM").Metrics.GldEff
	add("F6/corrgld", "Theano-CorrMM has very low global-load efficiency",
		"11.64–15.79%",
		fmt.Sprintf("%.1f%%", corrGld),
		corrGld >= 10 && corrGld <= 18)

	// --- Figure 7 ---
	spike := measured("Theano-CorrMM", conv2).TransferShare
	add("F7/spike", "Theano-CorrMM on Conv2 has a significant data-transfer overhead",
		"more than 60%",
		fmt.Sprintf("%.1f%%", spike*100),
		spike >= 0.5)
	hidden := measured("Caffe", conv2).TransferShare
	add("F7/hidden", "cuDNN, Caffe and fbfft have the lowest transfer share",
		"≈0%",
		fmt.Sprintf("Caffe %.2f%%", hidden*100),
		hidden < 0.005)

	// --- Table II ---
	tbl := TableIICtx(ctx, opt)
	wantRegs := map[string]int{"Caffe": 86, "cuDNN": 80, "Torch-cunn": 84,
		"Theano-CorrMM": 72, "cuda-convnet2": 116, "fbfft": 106, "Theano-fft": 2}
	exact := len(tbl) == len(wantRegs)
	for _, r := range tbl {
		if wantRegs[r.Impl] != r.RegsPerThread {
			exact = false
		}
	}
	add("T2/regs", "register usage per thread matches Table II",
		"86/80/84/72/116/106/2",
		fmt.Sprintf("%d implementations matched", len(tbl)),
		exact)

	return claims
}

// RenderScorecard formats the claims as a table with a summary line.
func RenderScorecard(claims []Claim) string {
	var b strings.Builder
	passed := 0
	fmt.Fprintf(&b, "%-14s %-6s %-28s %-38s %s\n", "Claim", "Status", "Paper", "Measured", "Statement")
	for _, c := range claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		} else {
			passed++
		}
		fmt.Fprintf(&b, "%-14s %-6s %-28s %-38s %s\n", c.ID, status, c.Paper, c.Measured, c.Text)
	}
	fmt.Fprintf(&b, "\n%d/%d claims reproduced\n", passed, len(claims))
	return b.String()
}
