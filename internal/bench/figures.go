package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workload"
)

// ModelBreakdown is one bar of Figure 2.
type ModelBreakdown struct {
	Model     string
	Batch     int
	Total     time.Duration
	ByKind    map[nn.Kind]time.Duration
	ConvShare float64
	Params    int
}

// Figure2 profiles the paper's four real-life models for one training
// iteration each (the paper averaged 10; the simulation is
// deterministic, so one suffices) and returns the per-layer-kind
// runtime breakdowns. The models run on the Caffe engine, the
// framework the paper profiled the full models in.
func Figure2() []ModelBreakdown {
	batches := map[string]int{"AlexNet": 128, "GoogLeNet": 128, "OverFeat": 128, "VGG": 64}
	order := []string{"GoogLeNet", "VGG", "OverFeat", "AlexNet"}
	var out []ModelBreakdown
	for _, name := range order {
		m := models.All(impls.NewCaffe())[name]
		dev := gpusim.New(gpusim.TeslaK40c())
		ctx := nn.NewContext(dev, true)
		batch := batches[name]
		m.Net.SimulateIteration(ctx, tensor.Shape(m.InputShape(batch)))
		out = append(out, ModelBreakdown{
			Model:     name,
			Batch:     batch,
			Total:     dev.Elapsed(),
			ByKind:    ctx.TimeByKind,
			ConvShare: nn.ConvShare(ctx.TimeByKind),
			Params:    m.Net.ParamCount(),
		})
		m.Net.Release()
	}
	return out
}

// Figure3 runs the runtime comparison for one named sweep ("batch",
// "input", "filter", "kernel" or "stride") on the paper's K40c.
func Figure3(sweep string) []Row {
	return Figure3On(sweep, gpusim.TeslaK40c())
}

// Figure3On is Figure3 on an arbitrary device specification.
func Figure3On(sweep string, spec gpusim.DeviceSpec) []Row {
	cfgs, ok := workload.Sweeps()[sweep]
	if !ok {
		panic(fmt.Sprintf("bench: unknown sweep %q", sweep))
	}
	return SweepOn(cfgs, func(c conv.Config) int { return workload.SweptValue(sweep, c) }, spec)
}

// KernelShare is one slice of a Figure 4 pie.
type KernelShare struct {
	Kernel string
	Share  float64
	Time   time.Duration
}

// Figure4 profiles the hotspot kernels of every implementation at the
// representative configuration (64,128,64,11,1) and returns each
// implementation's kernel-share breakdown, largest first.
func Figure4() map[string][]KernelShare {
	out := map[string][]KernelShare{}
	for _, e := range impls.All() {
		dev := gpusim.New(gpusim.TeslaK40c())
		plan, err := e.Plan(dev, workload.Base())
		if err != nil {
			continue
		}
		if err := plan.Iteration(); err != nil {
			plan.Release()
			continue
		}
		total := dev.Prof.TotalTime().Seconds()
		var shares []KernelShare
		for _, k := range dev.Prof.Kernels() {
			shares = append(shares, KernelShare{
				Kernel: k.Name,
				Share:  k.Total.Seconds() / total,
				Time:   k.Total,
			})
		}
		out[e.Name()] = shares
		plan.Release()
	}
	return out
}

// GEMMShare sums the GEMM-classified kernel shares of a Figure 4
// breakdown (the paper groups all matrix-multiply kernels as GEMM).
func GEMMShare(shares []KernelShare) float64 {
	var s float64
	for _, k := range shares {
		name := strings.ToLower(k.Kernel)
		if strings.Contains(name, "gemm") || strings.Contains(name, "wgrad") {
			s += k.Share
		}
	}
	return s
}

// Figure5 runs the peak-memory comparison for one named sweep.
// Sweep cells already carry PeakBytes; this simply reuses Figure3's
// machinery (the paper, likewise, measured both in the same runs).
func Figure5(sweep string) []Row {
	return Figure3(sweep)
}

// MetricsRow is one implementation's weighted metric profile on one
// Table I configuration (Figure 6).
type MetricsRow struct {
	Config string
	Impl   string
	Cell   Cell
}

// Figure6 profiles every implementation over the five Table I
// configurations, reporting runtime plus the five nvprof metrics,
// weighted over the top kernels as in the paper.
func Figure6() []MetricsRow {
	var out []MetricsRow
	for _, nc := range workload.TableI() {
		for _, e := range impls.All() {
			out = append(out, MetricsRow{Config: nc.Name, Impl: e.Name(), Cell: Measure(e, nc.Cfg)})
		}
	}
	return out
}

// TransferRow is one implementation's transfer share on one Table I
// configuration (Figure 7).
type TransferRow struct {
	Config string
	Impl   string
	Share  float64
	Ok     bool
}

// Figure7 measures the CPU↔GPU transfer overhead share over the five
// Table I configurations.
func Figure7() []TransferRow {
	var out []TransferRow
	for _, nc := range workload.TableI() {
		for _, e := range impls.All() {
			cell := Measure(e, nc.Cfg)
			out = append(out, TransferRow{Config: nc.Name, Impl: e.Name(), Share: cell.TransferShare, Ok: cell.Ok()})
		}
	}
	return out
}

// TableIIRow is one implementation's top-kernel resource usage.
type TableIIRow struct {
	Impl          string
	RegsPerThread int
	SmemPerBlockB int
}

// TableII reports the register and shared-memory footprint of each
// implementation's dominant kernel, reproducing the paper's Table II.
func TableII() []TableIIRow {
	var out []TableIIRow
	for _, e := range impls.All() {
		dev := gpusim.New(gpusim.TeslaK40c())
		plan, err := e.Plan(dev, workload.Base())
		if err != nil {
			continue
		}
		if err := plan.Iteration(); err != nil {
			plan.Release()
			continue
		}
		// The paper's Table II lists each implementation's characteristic
		// compute kernel: the transform kernel for the FFT engines, the
		// longest-running kernel otherwise.
		var pick *gpusim.KernelStats
		for _, k := range dev.Prof.Kernels() {
			if e.Strategy() == conv.FFT {
				if strings.Contains(k.Name, "decimateInFrequency") ||
					strings.Contains(strings.ToLower(k.Name), "fft") {
					pick = k
					break
				}
				continue
			}
			pick = k // Kernels() is sorted by total time
			break
		}
		if pick != nil {
			out = append(out, TableIIRow{
				Impl:          e.Name(),
				RegsPerThread: pick.RegsPerThread,
				SmemPerBlockB: pick.SmemPerBlock,
			})
		}
		plan.Release()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Impl < out[j].Impl })
	return out
}
