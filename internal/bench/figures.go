package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/models"
	"gpucnn/internal/nn"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workload"
)

// ModelBreakdown is one bar of Figure 2.
type ModelBreakdown struct {
	Model     string
	Batch     int
	Total     time.Duration
	ByKind    map[nn.Kind]time.Duration
	ConvShare float64
	Params    int
}

// Figure2 profiles the paper's four real-life models for one training
// iteration each (the paper averaged 10; the simulation is
// deterministic, so one suffices) and returns the per-layer-kind
// runtime breakdowns. The models run on the Caffe engine, the
// framework the paper profiled the full models in.
func Figure2() []ModelBreakdown {
	return Figure2Ctx(context.Background(), Options{})
}

// Figure2Ctx is Figure2 with the four models profiled concurrently on
// the executor's worker pool. Each model gets its own engine, device
// and simulation context, so the breakdowns match the serial run
// exactly; a model whose simulation panics or is cancelled is dropped
// from the result instead of aborting the figure.
func Figure2Ctx(ctx context.Context, opt Options) []ModelBreakdown {
	batches := map[string]int{"AlexNet": 128, "GoogLeNet": 128, "OverFeat": 128, "VGG": 64}
	order := []string{"GoogLeNet", "VGG", "OverFeat", "AlexNet"}
	results := make([]ModelBreakdown, len(order))
	done := make([]bool, len(order))
	errs := runIndexed(ctx, len(order), opt, func(ctx context.Context, i int) {
		if ctx.Err() != nil {
			return
		}
		name := order[i]
		m := models.All(impls.NewCaffe())[name]
		dev := gpusim.New(gpusim.TeslaK40c())
		nctx := nn.NewContext(dev, true)
		batch := batches[name]
		m.Net.SimulateIteration(nctx, tensor.Shape(m.InputShape(batch)))
		results[i] = ModelBreakdown{
			Model:     name,
			Batch:     batch,
			Total:     dev.Elapsed(),
			ByKind:    nctx.TimeByKind,
			ConvShare: nn.ConvShare(nctx.TimeByKind),
			Params:    m.Net.ParamCount(),
		}
		done[i] = true
		m.Net.Release()
	})
	var out []ModelBreakdown
	for i := range results {
		if done[i] && errs[i] == nil {
			out = append(out, results[i])
		}
	}
	return out
}

// Figure3 runs the runtime comparison for one named sweep ("batch",
// "input", "filter", "kernel" or "stride") on the paper's K40c.
func Figure3(sweep string) []Row {
	return Figure3On(sweep, gpusim.TeslaK40c())
}

// Figure3On is Figure3 on an arbitrary device specification.
func Figure3On(sweep string, spec gpusim.DeviceSpec) []Row {
	return Figure3Ctx(context.Background(), sweep, spec, Options{})
}

// Figure3Ctx is Figure3On with a context, worker pool and per-cell
// timeout: the sweep grid runs through the parallel executor.
func Figure3Ctx(ctx context.Context, sweep string, spec gpusim.DeviceSpec, opt Options) []Row {
	cfgs, ok := workload.Sweeps()[sweep]
	if !ok {
		panic(fmt.Sprintf("bench: unknown sweep %q", sweep))
	}
	return SweepCtx(ctx, cfgs, func(c conv.Config) int { return workload.SweptValue(sweep, c) }, spec, opt)
}

// KernelShare is one slice of a Figure 4 pie.
type KernelShare struct {
	Kernel string
	Share  float64
	Time   time.Duration
}

// Figure4 profiles the hotspot kernels of every implementation at the
// representative configuration (64,128,64,11,1) and returns each
// implementation's kernel-share breakdown, largest first.
func Figure4() map[string][]KernelShare {
	out := map[string][]KernelShare{}
	for _, e := range impls.All() {
		dev := gpusim.New(gpusim.TeslaK40c())
		plan, err := e.Plan(dev, workload.Base())
		if err != nil {
			continue
		}
		if err := plan.Iteration(); err != nil {
			plan.Release()
			continue
		}
		total := dev.Prof.TotalTime().Seconds()
		var shares []KernelShare
		for _, k := range dev.Prof.Kernels() {
			shares = append(shares, KernelShare{
				Kernel: k.Name,
				Share:  k.Total.Seconds() / total,
				Time:   k.Total,
			})
		}
		out[e.Name()] = shares
		plan.Release()
	}
	return out
}

// GEMMShare sums the GEMM-classified kernel shares of a Figure 4
// breakdown (the paper groups all matrix-multiply kernels as GEMM).
func GEMMShare(shares []KernelShare) float64 {
	var s float64
	for _, k := range shares {
		name := strings.ToLower(k.Kernel)
		if strings.Contains(name, "gemm") || strings.Contains(name, "wgrad") {
			s += k.Share
		}
	}
	return s
}

// Figure5 runs the peak-memory comparison for one named sweep.
// Sweep cells already carry PeakBytes; this simply reuses Figure3's
// machinery (the paper, likewise, measured both in the same runs).
func Figure5(sweep string) []Row {
	return Figure3(sweep)
}

// Figure5Ctx is Figure5 through the parallel executor.
func Figure5Ctx(ctx context.Context, sweep string, spec gpusim.DeviceSpec, opt Options) []Row {
	return Figure3Ctx(ctx, sweep, spec, opt)
}

// MetricsRow is one implementation's weighted metric profile on one
// Table I configuration (Figure 6).
type MetricsRow struct {
	Config string
	Impl   string
	Cell   Cell
}

// tableIGrid measures every implementation over the five Table I
// configurations through the parallel executor, preserving the serial
// (config-major, registry-order) cell layout Figures 6 and 7 share.
func tableIGrid(ctx context.Context, opt Options) ([]workload.NamedConfig, []Cell) {
	configs := workload.TableI()
	var tasks []Task
	for _, nc := range configs {
		for _, e := range impls.All() {
			tasks = append(tasks, Task{Engine: e, Cfg: nc.Cfg, Spec: gpusim.TeslaK40c()})
		}
	}
	return configs, RunCells(ctx, tasks, opt)
}

// Figure6 profiles every implementation over the five Table I
// configurations, reporting runtime plus the five nvprof metrics,
// weighted over the top kernels as in the paper.
func Figure6() []MetricsRow {
	return Figure6Ctx(context.Background(), Options{})
}

// Figure6Ctx is Figure6 through the parallel executor.
func Figure6Ctx(ctx context.Context, opt Options) []MetricsRow {
	configs, cells := tableIGrid(ctx, opt)
	per := len(cells) / len(configs)
	var out []MetricsRow
	for i, nc := range configs {
		for _, c := range cells[i*per : (i+1)*per] {
			out = append(out, MetricsRow{Config: nc.Name, Impl: c.Impl, Cell: c})
		}
	}
	return out
}

// TransferRow is one implementation's transfer share on one Table I
// configuration (Figure 7).
type TransferRow struct {
	Config string
	Impl   string
	Share  float64
	Ok     bool
}

// Figure7 measures the CPU↔GPU transfer overhead share over the five
// Table I configurations.
func Figure7() []TransferRow {
	return Figure7Ctx(context.Background(), Options{})
}

// Figure7Ctx is Figure7 through the parallel executor.
func Figure7Ctx(ctx context.Context, opt Options) []TransferRow {
	configs, cells := tableIGrid(ctx, opt)
	per := len(cells) / len(configs)
	var out []TransferRow
	for i, nc := range configs {
		for _, c := range cells[i*per : (i+1)*per] {
			out = append(out, TransferRow{Config: nc.Name, Impl: c.Impl, Share: c.TransferShare, Ok: c.Ok()})
		}
	}
	return out
}

// TableIIRow is one implementation's top-kernel resource usage.
type TableIIRow struct {
	Impl          string
	RegsPerThread int
	SmemPerBlockB int
}

// TableII reports the register and shared-memory footprint of each
// implementation's dominant kernel, reproducing the paper's Table II.
func TableII() []TableIIRow {
	return TableIICtx(context.Background(), Options{})
}

// TableIICtx is TableII with the per-implementation profiling runs
// fanned out over the executor's worker pool (each on its own device).
func TableIICtx(ctx context.Context, opt Options) []TableIIRow {
	engines := impls.All()
	rows := make([]*TableIIRow, len(engines))
	runIndexed(ctx, len(engines), opt, func(ctx context.Context, i int) {
		if ctx.Err() != nil {
			return
		}
		e := engines[i]
		dev := gpusim.New(gpusim.TeslaK40c())
		plan, err := e.Plan(dev, workload.Base())
		if err != nil {
			return
		}
		if err := plan.Iteration(); err != nil {
			plan.Release()
			return
		}
		// The paper's Table II lists each implementation's characteristic
		// compute kernel: the transform kernel for the FFT engines, the
		// longest-running kernel otherwise.
		var pick *gpusim.KernelStats
		for _, k := range dev.Prof.Kernels() {
			if e.Strategy() == conv.FFT {
				if strings.Contains(k.Name, "decimateInFrequency") ||
					strings.Contains(strings.ToLower(k.Name), "fft") {
					pick = k
					break
				}
				continue
			}
			pick = k // Kernels() is sorted by total time
			break
		}
		if pick != nil {
			rows[i] = &TableIIRow{
				Impl:          e.Name(),
				RegsPerThread: pick.RegsPerThread,
				SmemPerBlockB: pick.SmemPerBlock,
			}
		}
		plan.Release()
	})
	var out []TableIIRow
	for _, r := range rows {
		if r != nil {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Impl < out[j].Impl })
	return out
}
