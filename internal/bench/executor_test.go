package bench

import (
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/tensor"
)

// fakeEngine is a controllable implementation for executor tests: it
// can sleep per iteration (to exercise cancellation and timeouts) or
// panic (to exercise isolation).
type fakeEngine struct {
	name      string
	delay     time.Duration // host sleep per iteration
	panicPlan string        // panic message thrown from Plan
	panicIter string        // panic message thrown from Iteration
}

func (f *fakeEngine) Name() string                   { return f.name }
func (f *fakeEngine) Strategy() conv.Strategy        { return conv.Direct }
func (f *fakeEngine) Supports(cfg conv.Config) error { return nil }

func (f *fakeEngine) Plan(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	if f.panicPlan != "" {
		panic(f.panicPlan)
	}
	return &fakePlan{cfg: cfg, eng: f}, nil
}

func (f *fakeEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return f.Plan(dev, cfg)
}

type fakePlan struct {
	cfg conv.Config
	eng *fakeEngine
}

func (p *fakePlan) Config() conv.Config                           { return p.cfg }
func (p *fakePlan) Forward(x, w, y *tensor.Tensor) error          { return nil }
func (p *fakePlan) BackwardData(dy, w, dx *tensor.Tensor) error   { return nil }
func (p *fakePlan) BackwardFilter(x, dy, dw *tensor.Tensor) error { return nil }
func (p *fakePlan) Release()                                      {}

func (p *fakePlan) Inference() error { return nil }

func (p *fakePlan) Iteration() error {
	if p.eng.panicIter != "" {
		panic(p.eng.panicIter)
	}
	if p.eng.delay > 0 {
		time.Sleep(p.eng.delay)
	}
	return nil
}

func smallCfg() conv.Config {
	return conv.Config{Batch: 2, Input: 8, Channels: 1, Filters: 2, Kernel: 3, Stride: 1}
}

// TestSweepDeterministicAcrossParallelism: a -j 8 sweep must place
// every cell exactly where the serial sweep does — the rendered tables
// and CSVs are byte-identical.
func TestSweepDeterministicAcrossParallelism(t *testing.T) {
	cfgs := []conv.Config{
		{Batch: 32, Input: 32, Channels: 3, Filters: 16, Kernel: 3, Stride: 1},
		{Batch: 32, Input: 32, Channels: 3, Filters: 16, Kernel: 5, Stride: 1},
		{Batch: 32, Input: 32, Channels: 3, Filters: 16, Kernel: 7, Stride: 1},
	}
	value := func(c conv.Config) int { return c.Kernel }
	ctx := context.Background()
	spec := gpusim.TeslaK40c()
	serial := SweepCtx(ctx, cfgs, value, spec, Options{Workers: 1})
	parallel := SweepCtx(ctx, cfgs, value, spec, Options{Workers: 8})
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel sweep rows differ from serial rows")
	}
	for _, memory := range []bool{false, true} {
		if CSVSweep("kernel", serial, memory) != CSVSweep("kernel", parallel, memory) {
			t.Fatalf("CSV output differs between -j 1 and -j 8 (memory=%v)", memory)
		}
	}
	if RenderSweepTimes("kernel", serial) != RenderSweepTimes("kernel", parallel) {
		t.Fatal("rendered sweep differs between -j 1 and -j 8")
	}
}

// TestRunCellsPanicIsolation: a panicking engine poisons only its own
// cell; neighbours complete normally.
func TestRunCellsPanicIsolation(t *testing.T) {
	spec := gpusim.TeslaK40c()
	tasks := []Task{
		{Engine: &fakeEngine{name: "ok-a"}, Cfg: smallCfg(), Spec: spec},
		{Engine: &fakeEngine{name: "boom-plan", panicPlan: "plan exploded"}, Cfg: smallCfg(), Spec: spec},
		{Engine: &fakeEngine{name: "boom-iter", panicIter: "iteration exploded"}, Cfg: smallCfg(), Spec: spec},
		{Engine: &fakeEngine{name: "ok-b"}, Cfg: smallCfg(), Spec: spec},
	}
	cells := RunCells(context.Background(), tasks, Options{Workers: 4})
	if !cells[0].Ok() || !cells[3].Ok() {
		t.Fatalf("healthy cells poisoned: %+v / %+v", cells[0], cells[3])
	}
	if !strings.Contains(cells[1].Panic, "plan exploded") {
		t.Fatalf("cell 1 missing recovered plan panic: %+v", cells[1])
	}
	if !strings.Contains(cells[2].Panic, "iteration exploded") {
		t.Fatalf("cell 2 missing recovered iteration panic: %+v", cells[2])
	}
	for i, c := range cells {
		if c.Impl != tasks[i].Engine.Name() {
			t.Fatalf("cell %d landed out of order: %q", i, c.Impl)
		}
	}
	if cells[1].Ok() || cells[2].Ok() {
		t.Fatal("panicked cells must not be Ok")
	}
}

// TestRunCellsCancellationPrompt: cancelling the sweep context returns
// promptly and marks unfinished cells Canceled.
func TestRunCellsCancellationPrompt(t *testing.T) {
	spec := gpusim.TeslaK40c()
	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, Task{
			Engine: &fakeEngine{name: "slow", delay: 20 * time.Millisecond},
			Cfg:    smallCfg(), Spec: spec,
		})
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cells := RunCells(ctx, tasks, Options{Workers: 2})
	// Serially the sweep would take 8 cells × 10 iterations × 20 ms =
	// 16 s; a prompt cancellation must come back well under that.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation not prompt: took %v", elapsed)
	}
	canceled := 0
	for _, c := range cells {
		if c.Canceled {
			canceled++
		}
	}
	if canceled == 0 {
		t.Fatal("no cell observed the cancellation")
	}
}

// TestRunCellsPerCellTimeout: a cell exceeding opt.Timeout is marked
// Canceled without affecting fast cells.
func TestRunCellsPerCellTimeout(t *testing.T) {
	spec := gpusim.TeslaK40c()
	tasks := []Task{
		{Engine: &fakeEngine{name: "fast"}, Cfg: smallCfg(), Spec: spec},
		{Engine: &fakeEngine{name: "slow", delay: 30 * time.Millisecond}, Cfg: smallCfg(), Spec: spec},
	}
	cells := RunCells(context.Background(), tasks, Options{Workers: 2, Timeout: 50 * time.Millisecond})
	if !cells[0].Ok() {
		t.Fatalf("fast cell should succeed: %+v", cells[0])
	}
	if !cells[1].Canceled {
		t.Fatalf("slow cell should hit the per-cell timeout: %+v", cells[1])
	}
}

// TestExecutorTelemetry: the worker pool records utilization and
// per-cell latency in the context's registry.
func TestExecutorTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	ctx := telemetry.WithRegistry(context.Background(), reg)
	spec := gpusim.TeslaK40c()
	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, Task{Engine: &fakeEngine{name: "ok"}, Cfg: smallCfg(), Spec: spec})
	}
	RunCells(ctx, tasks, Options{Workers: 3})
	if got := reg.Gauge("bench_executor_workers", nil).Value(); got != 3 {
		t.Fatalf("bench_executor_workers = %v, want 3", got)
	}
	if got := reg.Counter("bench_executor_jobs_total", nil).Value(); got != 6 {
		t.Fatalf("bench_executor_jobs_total = %v, want 6", got)
	}
	h := reg.Histogram("bench_cell_latency_seconds", telemetry.Labels{"impl": "ok"}, nil)
	if h.Count() != 6 {
		t.Fatalf("bench_cell_latency_seconds count = %d, want 6", h.Count())
	}
	util := reg.Gauge("bench_executor_utilization", telemetry.Labels{"worker": "0"}).Value()
	if util < 0 || util > 1.5 {
		t.Fatalf("worker utilization out of range: %v", util)
	}
}

// TestMeasureCtxCanceledBeforeStart: an already-cancelled context
// yields a Canceled cell immediately.
func TestMeasureCtxCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cell := MeasureCtx(ctx, &fakeEngine{name: "ok"}, smallCfg(), gpusim.TeslaK40c())
	if !cell.Canceled || cell.Ok() {
		t.Fatalf("expected canceled cell, got %+v", cell)
	}
}

// TestSpecByNameNormalization: device names resolve case- and
// punctuation-insensitively, and the error lists the valid names.
func TestSpecByNameNormalization(t *testing.T) {
	for _, name := range []string{"TitanX", "Titanx", "TITAN-X", "titan_x", "titan x", "TitanXMaxwell"} {
		spec, err := SpecByName(name)
		if err != nil {
			t.Fatalf("SpecByName(%q): %v", name, err)
		}
		if spec.Name != gpusim.TitanXMaxwell().Name {
			t.Fatalf("SpecByName(%q) resolved %q", name, spec.Name)
		}
	}
	for _, name := range []string{"", "k40c", "K40C", "Tesla-K40c", "tesla k40c"} {
		spec, err := SpecByName(name)
		if err != nil {
			t.Fatalf("SpecByName(%q): %v", name, err)
		}
		if spec.Name != gpusim.TeslaK40c().Name {
			t.Fatalf("SpecByName(%q) resolved %q", name, spec.Name)
		}
	}
	if _, err := SpecByName("gtx1080"); err == nil {
		t.Fatal("unknown device should error")
	} else if !strings.Contains(err.Error(), "k40c") || !strings.Contains(err.Error(), "titanx") {
		t.Fatalf("error should list valid names: %v", err)
	}
}

// TestScorecardParallelMatchesSerial: the parallel scorecard grades
// every claim identically to the serial one.
func TestScorecardParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full scorecard in -short mode")
	}
	serial := ScorecardCtx(context.Background(), Options{Workers: 1})
	parallel := ScorecardCtx(context.Background(), Options{Workers: 8})
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("parallel scorecard differs from serial scorecard")
	}
}
