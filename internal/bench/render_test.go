package bench

import (
	"strings"
	"testing"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

func sampleRows() []Row {
	cells := []Cell{
		{Impl: "Caffe", Time: 100 * time.Millisecond, PeakBytes: 500 << 20},
		{Impl: "fbfft", Time: 20 * time.Millisecond, PeakBytes: 1000 << 20},
		{Impl: "Theano-fft", Unsupported: "stride"},
		{Impl: "cuda-convnet2", OOM: true},
	}
	return []Row{{Value: 64, Cells: cells}}
}

func TestRenderSweepTimesMarksSpecialCells(t *testing.T) {
	out := RenderSweepTimes("batch", sampleRows())
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "20.00") {
		t.Fatalf("times missing:\n%s", out)
	}
	if !strings.Contains(out, "n/s") {
		t.Fatalf("unsupported marker missing:\n%s", out)
	}
	if !strings.Contains(out, "OOM") {
		t.Fatalf("OOM marker missing:\n%s", out)
	}
}

func TestRenderSweepMemory(t *testing.T) {
	out := RenderSweepMemory("batch", sampleRows())
	if !strings.Contains(out, "500") || !strings.Contains(out, "1000") {
		t.Fatalf("memory values missing:\n%s", out)
	}
	if !strings.Contains(out, "peak device memory") {
		t.Fatalf("header missing:\n%s", out)
	}
}

func TestCSVSweep(t *testing.T) {
	out := CSVSweep("batch", sampleRows(), false)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "batch,") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "64,") {
		t.Fatalf("bad row %q", lines[1])
	}
	mem := CSVSweep("batch", sampleRows(), true)
	if !strings.Contains(mem, "500") {
		t.Fatalf("memory CSV missing values:\n%s", mem)
	}
}

// TestRenderSweepHeadersFollowRows: headers derive from the rows' own
// cells, so a subset or reordered sweep cannot misalign columns.
func TestRenderSweepHeadersFollowRows(t *testing.T) {
	rows := []Row{
		{Value: 1, Cells: []Cell{
			{Impl: "fbfft", Time: 10 * time.Millisecond},
			{Impl: "Caffe", Time: 20 * time.Millisecond},
		}},
		// Second row reordered and missing Caffe: values must still land
		// under their own headers.
		{Value: 2, Cells: []Cell{
			{Impl: "Caffe", Time: 40 * time.Millisecond},
			{Impl: "fbfft", Time: 30 * time.Millisecond},
		}},
		{Value: 3, Cells: []Cell{
			{Impl: "fbfft", Time: 50 * time.Millisecond},
		}},
	}
	out := RenderSweepTimes("batch", rows)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	header := strings.Fields(lines[1])
	if len(header) != 3 || header[1] != "fbfft" || header[2] != "Caffe" {
		t.Fatalf("header should come from the rows' impls, got %v", header)
	}
	row2 := strings.Fields(lines[3])
	if row2[1] != "30.00" || row2[2] != "40.00" {
		t.Fatalf("reordered row misaligned: %v", row2)
	}
	row3 := strings.Fields(lines[4])
	if row3[1] != "50.00" || row3[2] != "-" {
		t.Fatalf("missing cell should render a placeholder: %v", row3)
	}

	csv := CSVSweep("batch", rows, false)
	csvLines := strings.Split(strings.TrimSpace(csv), "\n")
	if csvLines[0] != "batch,fbfft,Caffe" {
		t.Fatalf("CSV header should come from the rows' impls: %q", csvLines[0])
	}
	if csvLines[2] != "2,30.000,40.000" {
		t.Fatalf("reordered CSV row misaligned: %q", csvLines[2])
	}
	if csvLines[3] != "3,50.000," {
		t.Fatalf("missing CSV cell should render empty: %q", csvLines[3])
	}
}

// TestCSVSweepMarkers: the CSV keeps the paper's OOM-vs-unsupported
// distinction instead of collapsing both to an empty cell.
func TestCSVSweepMarkers(t *testing.T) {
	out := CSVSweep("batch", sampleRows(), false)
	line := strings.Split(strings.TrimSpace(out), "\n")[1]
	if !strings.Contains(line, ",n/s") || !strings.Contains(line, ",OOM") {
		t.Fatalf("CSV should mark n/s and OOM distinctly: %q", line)
	}
	failed := []Row{{Value: 1, Cells: []Cell{
		{Impl: "a", Panic: "boom"},
		{Impl: "b", Canceled: true},
	}}}
	line = strings.Split(strings.TrimSpace(CSVSweep("batch", failed, false)), "\n")[1]
	if line != "1,panic,canceled" {
		t.Fatalf("CSV should mark panicked/canceled cells: %q", line)
	}
}

// TestFmtDurSubMicrosecond: millisecond rendering must round from the
// full-precision duration instead of truncating at the microsecond.
func TestFmtDurSubMicrosecond(t *testing.T) {
	if got := fmtDur(1234567 * time.Nanosecond); got != "1.23" {
		t.Fatalf("fmtDur = %q, want 1.23", got)
	}
	if got := fmtDur(4999 * time.Nanosecond); got != "0.00" {
		t.Fatalf("fmtDur = %q", got)
	}
	// CSV keeps three decimals: 1.5 µs rounds to 0.002 ms, where the
	// old microsecond truncation rendered 0.001.
	rows := []Row{{Value: 1, Cells: []Cell{{Impl: "a", Time: 1500 * time.Nanosecond}}}}
	if out := CSVSweep("x", rows, false); !strings.Contains(out, "1,0.002") {
		t.Fatalf("CSV truncated sub-microsecond runtime:\n%s", out)
	}
}

func TestRowHelpers(t *testing.T) {
	row := sampleRows()[0]
	best, ok := row.Best()
	if !ok || best.Impl != "fbfft" {
		t.Fatalf("Best = %v", best)
	}
	c, ok := row.CellFor("Caffe")
	if !ok || c.Time != 100*time.Millisecond {
		t.Fatalf("CellFor(Caffe) = %v", c)
	}
	if _, ok := row.CellFor("nope"); ok {
		t.Fatal("CellFor on unknown impl should report false")
	}
}

func TestCellOk(t *testing.T) {
	if (Cell{OOM: true}).Ok() || (Cell{Unsupported: "x"}).Ok() {
		t.Fatal("failed cells must not be Ok")
	}
	if !(Cell{Time: time.Millisecond}).Ok() {
		t.Fatal("valid cell should be Ok")
	}
}

func TestMeasureUnsupportedAndOOM(t *testing.T) {
	fb, _ := impls.ByName("fbfft")
	strided := conv.Config{Batch: 4, Input: 16, Channels: 1, Filters: 4, Kernel: 3, Stride: 2}
	c := Measure(fb, strided)
	if c.Unsupported == "" {
		t.Fatal("Measure should mark unsupported shape")
	}
	huge := conv.Config{Batch: 256, Input: 256, Channels: 3, Filters: 96, Kernel: 11, Stride: 1}
	c = Measure(fb, huge)
	if !c.OOM {
		t.Fatalf("Measure should mark OOM, got %+v", c)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	e, _ := impls.ByName("cuDNN")
	a := Measure(e, workload.Base())
	b := Measure(e, workload.Base())
	if a.Time != b.Time || a.PeakBytes != b.PeakBytes {
		t.Fatalf("Measure not deterministic: %v/%v vs %v/%v", a.Time, a.PeakBytes, b.Time, b.PeakBytes)
	}
}

func TestRenderFigure6AndFigure7(t *testing.T) {
	rows6 := []MetricsRow{{Config: "Conv1", Impl: "cuDNN", Cell: Cell{Time: time.Millisecond}}}
	out := RenderFigure6(rows6)
	if !strings.Contains(out, "Conv1") || !strings.Contains(out, "cuDNN") {
		t.Fatalf("figure 6 render missing rows:\n%s", out)
	}
	rows7 := []TransferRow{
		{Config: "Conv2", Impl: "Theano-CorrMM", Share: 0.6, Ok: true},
		{Config: "Conv2", Impl: "fbfft", Ok: true},
	}
	out = RenderFigure7(rows7)
	if !strings.Contains(out, "60.0%") {
		t.Fatalf("figure 7 render missing share:\n%s", out)
	}
}

func TestRenderTableII(t *testing.T) {
	out := RenderTableII([]TableIIRow{{Impl: "fbfft", RegsPerThread: 106, SmemPerBlockB: 10240}})
	if !strings.Contains(out, "106") || !strings.Contains(out, "10.0") {
		t.Fatalf("table II render wrong:\n%s", out)
	}
}

func TestShapeMatrixMatchesPaperSummary(t *testing.T) {
	m := ShapeMatrix()
	// Unrolling engines support everything.
	for _, name := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM", "cuDNN"} {
		for caseName, row := range m {
			if !row[name] {
				t.Errorf("%s should support %q", name, caseName)
			}
		}
	}
	// cuda-convnet2 rejects odd batches and filter counts.
	if m["batch 50"]["cuda-convnet2"] || m["filters 100"]["cuda-convnet2"] {
		t.Error("cuda-convnet2 should reject non-multiple shapes")
	}
	if !m["stride 2"]["cuda-convnet2"] {
		t.Error("cuda-convnet2 supports strides")
	}
	// FFT engines reject stride 2 only.
	for _, name := range []string{"fbfft", "Theano-fft"} {
		if m["stride 2"][name] {
			t.Errorf("%s should reject stride 2", name)
		}
		if !m["batch 50"][name] || !m["filters 100"][name] {
			t.Errorf("%s should accept odd batch/filter counts", name)
		}
	}
	out := RenderShapeMatrix()
	if !strings.Contains(out, "stride 2") || !strings.Contains(out, "yes") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestScorecardAllClaimsPass(t *testing.T) {
	claims := Scorecard()
	if len(claims) < 18 {
		t.Fatalf("scorecard has %d claims, want a comprehensive set", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: paper %q, measured %q", c.ID, c.Paper, c.Measured)
		}
	}
	out := RenderScorecard(claims)
	if !strings.Contains(out, "claims reproduced") || !strings.Contains(out, "PASS") {
		t.Fatalf("scorecard render wrong:\n%s", out)
	}
}
