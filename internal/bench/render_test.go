package bench

import (
	"strings"
	"testing"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

func sampleRows() []Row {
	cells := []Cell{
		{Impl: "Caffe", Time: 100 * time.Millisecond, PeakBytes: 500 << 20},
		{Impl: "fbfft", Time: 20 * time.Millisecond, PeakBytes: 1000 << 20},
		{Impl: "Theano-fft", Unsupported: "stride"},
		{Impl: "cuda-convnet2", OOM: true},
	}
	return []Row{{Value: 64, Cells: cells}}
}

func TestRenderSweepTimesMarksSpecialCells(t *testing.T) {
	out := RenderSweepTimes("batch", sampleRows())
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "20.00") {
		t.Fatalf("times missing:\n%s", out)
	}
	if !strings.Contains(out, "n/s") {
		t.Fatalf("unsupported marker missing:\n%s", out)
	}
	if !strings.Contains(out, "OOM") {
		t.Fatalf("OOM marker missing:\n%s", out)
	}
}

func TestRenderSweepMemory(t *testing.T) {
	out := RenderSweepMemory("batch", sampleRows())
	if !strings.Contains(out, "500") || !strings.Contains(out, "1000") {
		t.Fatalf("memory values missing:\n%s", out)
	}
	if !strings.Contains(out, "peak device memory") {
		t.Fatalf("header missing:\n%s", out)
	}
}

func TestCSVSweep(t *testing.T) {
	out := CSVSweep("batch", sampleRows(), false)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "batch,") {
		t.Fatalf("bad header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "64,") {
		t.Fatalf("bad row %q", lines[1])
	}
	mem := CSVSweep("batch", sampleRows(), true)
	if !strings.Contains(mem, "500") {
		t.Fatalf("memory CSV missing values:\n%s", mem)
	}
}

func TestRowHelpers(t *testing.T) {
	row := sampleRows()[0]
	best, ok := row.Best()
	if !ok || best.Impl != "fbfft" {
		t.Fatalf("Best = %v", best)
	}
	c, ok := row.CellFor("Caffe")
	if !ok || c.Time != 100*time.Millisecond {
		t.Fatalf("CellFor(Caffe) = %v", c)
	}
	if _, ok := row.CellFor("nope"); ok {
		t.Fatal("CellFor on unknown impl should report false")
	}
}

func TestCellOk(t *testing.T) {
	if (Cell{OOM: true}).Ok() || (Cell{Unsupported: "x"}).Ok() {
		t.Fatal("failed cells must not be Ok")
	}
	if !(Cell{Time: time.Millisecond}).Ok() {
		t.Fatal("valid cell should be Ok")
	}
}

func TestMeasureUnsupportedAndOOM(t *testing.T) {
	fb, _ := impls.ByName("fbfft")
	strided := conv.Config{Batch: 4, Input: 16, Channels: 1, Filters: 4, Kernel: 3, Stride: 2}
	c := Measure(fb, strided)
	if c.Unsupported == "" {
		t.Fatal("Measure should mark unsupported shape")
	}
	huge := conv.Config{Batch: 256, Input: 256, Channels: 3, Filters: 96, Kernel: 11, Stride: 1}
	c = Measure(fb, huge)
	if !c.OOM {
		t.Fatalf("Measure should mark OOM, got %+v", c)
	}
}

func TestMeasureDeterministic(t *testing.T) {
	e, _ := impls.ByName("cuDNN")
	a := Measure(e, workload.Base())
	b := Measure(e, workload.Base())
	if a.Time != b.Time || a.PeakBytes != b.PeakBytes {
		t.Fatalf("Measure not deterministic: %v/%v vs %v/%v", a.Time, a.PeakBytes, b.Time, b.PeakBytes)
	}
}

func TestRenderFigure6AndFigure7(t *testing.T) {
	rows6 := []MetricsRow{{Config: "Conv1", Impl: "cuDNN", Cell: Cell{Time: time.Millisecond}}}
	out := RenderFigure6(rows6)
	if !strings.Contains(out, "Conv1") || !strings.Contains(out, "cuDNN") {
		t.Fatalf("figure 6 render missing rows:\n%s", out)
	}
	rows7 := []TransferRow{
		{Config: "Conv2", Impl: "Theano-CorrMM", Share: 0.6, Ok: true},
		{Config: "Conv2", Impl: "fbfft", Ok: true},
	}
	out = RenderFigure7(rows7)
	if !strings.Contains(out, "60.0%") {
		t.Fatalf("figure 7 render missing share:\n%s", out)
	}
}

func TestRenderTableII(t *testing.T) {
	out := RenderTableII([]TableIIRow{{Impl: "fbfft", RegsPerThread: 106, SmemPerBlockB: 10240}})
	if !strings.Contains(out, "106") || !strings.Contains(out, "10.0") {
		t.Fatalf("table II render wrong:\n%s", out)
	}
}

func TestShapeMatrixMatchesPaperSummary(t *testing.T) {
	m := ShapeMatrix()
	// Unrolling engines support everything.
	for _, name := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM", "cuDNN"} {
		for caseName, row := range m {
			if !row[name] {
				t.Errorf("%s should support %q", name, caseName)
			}
		}
	}
	// cuda-convnet2 rejects odd batches and filter counts.
	if m["batch 50"]["cuda-convnet2"] || m["filters 100"]["cuda-convnet2"] {
		t.Error("cuda-convnet2 should reject non-multiple shapes")
	}
	if !m["stride 2"]["cuda-convnet2"] {
		t.Error("cuda-convnet2 supports strides")
	}
	// FFT engines reject stride 2 only.
	for _, name := range []string{"fbfft", "Theano-fft"} {
		if m["stride 2"][name] {
			t.Errorf("%s should reject stride 2", name)
		}
		if !m["batch 50"][name] || !m["filters 100"][name] {
			t.Errorf("%s should accept odd batch/filter counts", name)
		}
	}
	out := RenderShapeMatrix()
	if !strings.Contains(out, "stride 2") || !strings.Contains(out, "yes") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestScorecardAllClaimsPass(t *testing.T) {
	claims := Scorecard()
	if len(claims) < 18 {
		t.Fatalf("scorecard has %d claims, want a comprehensive set", len(claims))
	}
	for _, c := range claims {
		if !c.Pass {
			t.Errorf("claim %s failed: paper %q, measured %q", c.ID, c.Paper, c.Measured)
		}
	}
	out := RenderScorecard(claims)
	if !strings.Contains(out, "claims reproduced") || !strings.Contains(out, "PASS") {
		t.Fatalf("scorecard render wrong:\n%s", out)
	}
}
