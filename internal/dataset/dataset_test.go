package dataset

import (
	"bytes"
	"testing"

	"gpucnn/internal/tensor"
)

func TestSyntheticShapesAndDeterminism(t *testing.T) {
	d := Synthetic(100, 28, 0.1, 7)
	if d.Len() != 100 {
		t.Fatalf("Len = %d", d.Len())
	}
	c, h, w := d.Dims()
	if c != 1 || h != 28 || w != 28 {
		t.Fatalf("Dims = %d,%d,%d", c, h, w)
	}
	d2 := Synthetic(100, 28, 0.1, 7)
	if tensor.MaxAbsDiff(d.Images, d2.Images) != 0 {
		t.Fatal("same seed must reproduce the dataset")
	}
	for _, l := range d.Labels {
		if l < 0 || l >= 10 {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestSyntheticClassesAreDistinct(t *testing.T) {
	// Noise-free class prototypes must pairwise differ.
	d := Synthetic(400, 16, 0, 3)
	proto := map[int][]float32{}
	per := 16 * 16
	for i := 0; i < d.Len(); i++ {
		l := d.Labels[i]
		if _, ok := proto[l]; !ok {
			proto[l] = d.Images.Data[i*per : (i+1)*per]
		}
	}
	if len(proto) != 10 {
		t.Fatalf("only %d classes sampled", len(proto))
	}
	// Jitter makes same-class images differ slightly, but cross-class
	// prototypes should differ in many pixels.
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			diff := 0
			for j := range proto[a] {
				if proto[a][j] != proto[b][j] {
					diff++
				}
			}
			if diff < 4 {
				t.Errorf("classes %d and %d nearly identical (%d differing pixels)", a, b, diff)
			}
		}
	}
}

func TestBatchWrapsAround(t *testing.T) {
	d := Synthetic(10, 8, 0, 1)
	x, labels := d.Batch(8, 4) // indices 8, 9, 0, 1
	if !x.Shape().Equal(tensor.Shape{4, 1, 8, 8}) {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if labels[2] != d.Labels[0] || labels[3] != d.Labels[1] {
		t.Fatal("wraparound labels wrong")
	}
	per := 64
	for j := 0; j < per; j++ {
		if x.Data[2*per+j] != d.Images.Data[j] {
			t.Fatal("wraparound pixels wrong")
		}
	}
}

func TestSplit(t *testing.T) {
	d := Synthetic(50, 8, 0, 2)
	train, test := d.Split(40)
	if train.Len() != 40 || test.Len() != 10 {
		t.Fatalf("split sizes %d/%d", train.Len(), test.Len())
	}
	if test.Labels[0] != d.Labels[40] {
		t.Fatal("split labels misaligned")
	}
}

func TestSplitPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Synthetic(10, 8, 0, 1).Split(10)
}

func TestIDXRoundTrip(t *testing.T) {
	d := Synthetic(25, 12, 0, 9)
	var imgBuf, lblBuf bytes.Buffer
	if err := WriteIDXImages(&imgBuf, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteIDXLabels(&lblBuf, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadIDX(&imgBuf, &lblBuf, 10)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 25 {
		t.Fatalf("round-trip len %d", back.Len())
	}
	for i, l := range back.Labels {
		if l != d.Labels[i] {
			t.Fatalf("label %d: %d vs %d", i, l, d.Labels[i])
		}
	}
	// Pixels survive within the uint8 quantisation step.
	if diff := tensor.MaxAbsDiff(d.Images, back.Images); diff > 1.0/255+1e-6 {
		t.Fatalf("round-trip pixel error %g", diff)
	}
}

func TestReadIDXRejectsBadMagic(t *testing.T) {
	bad := bytes.NewReader([]byte{0, 0, 9, 9, 0, 0, 0, 0})
	if _, err := ReadIDX(bad, bytes.NewReader(nil), 10); err == nil {
		t.Fatal("bad magic should error")
	}
}

func TestReadIDXRejectsLabelMismatch(t *testing.T) {
	d := Synthetic(5, 8, 0, 1)
	var imgBuf, lblBuf bytes.Buffer
	WriteIDXImages(&imgBuf, d)
	short := Synthetic(3, 8, 0, 1)
	WriteIDXLabels(&lblBuf, short)
	if _, err := ReadIDX(&imgBuf, &lblBuf, 10); err == nil {
		t.Fatal("label-count mismatch should error")
	}
}

func TestSyntheticColor(t *testing.T) {
	d := SyntheticColor(60, 32, 0.1, 5)
	c, h, w := d.Dims()
	if c != 3 || h != 32 || w != 32 {
		t.Fatalf("Dims = %d,%d,%d", c, h, w)
	}
	if !d.Images.AllFinite() {
		t.Fatal("non-finite pixels")
	}
	d2 := SyntheticColor(60, 32, 0.1, 5)
	if tensor.MaxAbsDiff(d.Images, d2.Images) != 0 {
		t.Fatal("not deterministic")
	}
	// Channels must differ (colour mix is class-dependent).
	same := true
	per := 32 * 32
	for j := 0; j < per; j++ {
		if d.Images.Data[j] != d.Images.Data[per+j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("channels identical — colour mix not applied")
	}
}
