package dataset

import (
	"encoding/binary"
	"fmt"
	"io"

	"gpucnn/internal/tensor"
)

// IDX is the file format MNIST ships in: a magic number encoding the
// element type and rank, big-endian dimension sizes, then raw data.
// This reader/writer handles the unsigned-byte variants used by the
// image (rank 3) and label (rank 1) files.

const (
	idxTypeUint8 = 0x08
)

// WriteIDXImages encodes the dataset's images as an IDX3 unsigned-byte
// file (values clamped to [0, 1] and scaled to 0–255).
func WriteIDXImages(w io.Writer, d *Dataset) error {
	c, h, width := d.Dims()
	if c != 1 {
		return fmt.Errorf("dataset: IDX images must be single-channel, have %d", c)
	}
	header := []uint32{uint32(idxTypeUint8)<<8 | 3, uint32(d.Len()), uint32(h), uint32(width)}
	for _, v := range header {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, h*width)
	for i := 0; i < d.Len(); i++ {
		img := d.Images.Data[i*h*width : (i+1)*h*width]
		for j, v := range img {
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			buf[j] = byte(v * 255)
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteIDXLabels encodes the dataset's labels as an IDX1 file.
func WriteIDXLabels(w io.Writer, d *Dataset) error {
	header := []uint32{uint32(idxTypeUint8)<<8 | 1, uint32(d.Len())}
	for _, v := range header {
		if err := binary.Write(w, binary.BigEndian, v); err != nil {
			return err
		}
	}
	buf := make([]byte, d.Len())
	for i, l := range d.Labels {
		if l < 0 || l > 255 {
			return fmt.Errorf("dataset: label %d does not fit IDX uint8", l)
		}
		buf[i] = byte(l)
	}
	_, err := w.Write(buf)
	return err
}

// ReadIDX reads paired IDX image and label streams into a Dataset,
// normalising pixels to [0, 1].
func ReadIDX(images, labels io.Reader, classes int) (*Dataset, error) {
	var magic uint32
	if err := binary.Read(images, binary.BigEndian, &magic); err != nil {
		return nil, fmt.Errorf("dataset: reading image magic: %w", err)
	}
	if magic>>8 != idxTypeUint8 || magic&0xff != 3 {
		return nil, fmt.Errorf("dataset: image magic %#x is not IDX3 uint8", magic)
	}
	var dims [3]uint32
	for i := range dims {
		if err := binary.Read(images, binary.BigEndian, &dims[i]); err != nil {
			return nil, err
		}
	}
	n, h, w := int(dims[0]), int(dims[1]), int(dims[2])
	raw := make([]byte, n*h*w)
	if _, err := io.ReadFull(images, raw); err != nil {
		return nil, fmt.Errorf("dataset: reading %d image bytes: %w", len(raw), err)
	}
	imgTensor := tensor.New(n, 1, h, w)
	for i, b := range raw {
		imgTensor.Data[i] = float32(b) / 255
	}

	if err := binary.Read(labels, binary.BigEndian, &magic); err != nil {
		return nil, fmt.Errorf("dataset: reading label magic: %w", err)
	}
	if magic>>8 != idxTypeUint8 || magic&0xff != 1 {
		return nil, fmt.Errorf("dataset: label magic %#x is not IDX1 uint8", magic)
	}
	var count uint32
	if err := binary.Read(labels, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	if int(count) != n {
		return nil, fmt.Errorf("dataset: %d labels for %d images", count, n)
	}
	rawLabels := make([]byte, n)
	if _, err := io.ReadFull(labels, rawLabels); err != nil {
		return nil, err
	}
	labelInts := make([]int, n)
	for i, b := range rawLabels {
		labelInts[i] = int(b)
	}
	return &Dataset{Images: imgTensor, Labels: labelInts, Classes: classes}, nil
}
