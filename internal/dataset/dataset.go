// Package dataset provides the training-data substrate for the
// examples: a deterministic synthetic digit dataset with the geometry
// of MNIST (the dataset LeNet-5 — the paper's Figure 1 network — was
// built for), a batch iterator, and a reader/writer for the IDX file
// format so real MNIST files can be used when available. Runtime
// results in this repository depend only on tensor shapes, so the
// synthetic generator preserves everything the experiments need.
package dataset

import (
	"fmt"

	"gpucnn/internal/tensor"
)

// Dataset is a labelled image collection in NCHW order.
type Dataset struct {
	Images  *tensor.Tensor // (N, C, H, W)
	Labels  []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return d.Images.Dim(0) }

// Dims returns (channels, height, width).
func (d *Dataset) Dims() (c, h, w int) {
	return d.Images.Dim(1), d.Images.Dim(2), d.Images.Dim(3)
}

// Batch copies examples [start, start+size) into a fresh batch tensor
// and label slice, wrapping around the end of the dataset.
func (d *Dataset) Batch(start, size int) (*tensor.Tensor, []int) {
	c, h, w := d.Dims()
	x := tensor.New(size, c, h, w)
	labels := make([]int, size)
	per := c * h * w
	n := d.Len()
	for i := 0; i < size; i++ {
		src := (start + i) % n
		copy(x.Data[i*per:(i+1)*per], d.Images.Data[src*per:(src+1)*per])
		labels[i] = d.Labels[src]
	}
	return x, labels
}

// Split partitions the dataset into train/test at the given index.
func (d *Dataset) Split(trainN int) (train, test *Dataset) {
	if trainN <= 0 || trainN >= d.Len() {
		panic(fmt.Sprintf("dataset: split %d of %d", trainN, d.Len()))
	}
	c, h, w := d.Dims()
	per := c * h * w
	train = &Dataset{
		Images:  tensor.FromSlice(d.Images.Data[:trainN*per], trainN, c, h, w),
		Labels:  d.Labels[:trainN],
		Classes: d.Classes,
	}
	test = &Dataset{
		Images:  tensor.FromSlice(d.Images.Data[trainN*per:], d.Len()-trainN, c, h, w),
		Labels:  d.Labels[trainN:],
		Classes: d.Classes,
	}
	return train, test
}

// strokes describes each synthetic digit class as a small set of line
// segments on a 7×7 design grid, scaled to the image size. The classes
// are visually distinct enough for LeNet-5 to separate quickly while
// remaining a real spatial-pattern problem.
var strokes = [10][][4]int{
	{{1, 1, 1, 5}, {1, 5, 5, 5}, {5, 5, 5, 1}, {5, 1, 1, 1}}, // 0: box
	{{1, 3, 5, 3}}, // 1: vertical bar
	{{1, 1, 1, 5}, {1, 5, 3, 5}, {3, 5, 3, 1}, {3, 1, 5, 1}, {5, 1, 5, 5}}, // 2
	{{1, 1, 1, 5}, {3, 1, 3, 5}, {5, 1, 5, 5}, {1, 5, 5, 5}},               // 3
	{{1, 1, 3, 1}, {3, 1, 3, 5}, {1, 3, 5, 3}},                             // 4 (rough)
	{{1, 5, 1, 1}, {1, 1, 3, 1}, {3, 1, 3, 5}, {3, 5, 5, 5}, {5, 5, 5, 1}}, // 5
	{{1, 3, 5, 3}, {5, 3, 5, 5}, {3, 3, 3, 5}},                             // 6 (rough)
	{{1, 1, 1, 5}, {1, 5, 5, 2}},                                           // 7
	{{1, 1, 1, 5}, {3, 1, 3, 5}, {5, 1, 5, 5}, {1, 1, 5, 1}, {1, 5, 5, 5}}, // 8
	{{1, 1, 1, 5}, {1, 5, 3, 5}, {3, 5, 3, 1}, {1, 1, 3, 1}},               // 9 (rough)
}

// Synthetic generates n deterministic digit-like examples of size
// size×size (single channel) with additive noise controlled by
// noise ∈ [0, 1).
func Synthetic(n, size int, noise float32, seed uint64) *Dataset {
	if size < 8 {
		panic("dataset: size must be at least 8")
	}
	r := tensor.NewRNG(seed)
	images := tensor.New(n, 1, size, size)
	labels := make([]int, n)
	scale := float32(size) / 7
	for i := 0; i < n; i++ {
		label := r.Intn(10)
		labels[i] = label
		img := images.Data[i*size*size : (i+1)*size*size]
		// Jitter the whole glyph by up to ±1 pixel.
		jx, jy := r.Intn(3)-1, r.Intn(3)-1
		for _, s := range strokes[label] {
			drawLine(img, size,
				int(float32(s[0])*scale)+jy, int(float32(s[1])*scale)+jx,
				int(float32(s[2])*scale)+jy, int(float32(s[3])*scale)+jx)
		}
		if noise > 0 {
			for j := range img {
				img[j] += noise * (2*r.Float32() - 1)
			}
		}
	}
	return &Dataset{Images: images, Labels: labels, Classes: 10}
}

// drawLine rasterises a segment from (y0,x0) to (y1,x1) with value 1.
func drawLine(img []float32, size, y0, x0, y1, x1 int) {
	steps := abs(y1-y0) + abs(x1-x0)
	if steps == 0 {
		steps = 1
	}
	for s := 0; s <= steps; s++ {
		y := y0 + (y1-y0)*s/steps
		x := x0 + (x1-x0)*s/steps
		if y >= 0 && y < size && x >= 0 && x < size {
			img[y*size+x] = 1
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// SyntheticColor generates n deterministic 3-channel examples of size
// size×size: each class is a digit glyph rendered with a
// class-dependent colour mix over a coloured background — a CIFAR-like
// stand-in (the paper's introduction cites CIFAR-10's 32×32 colour
// images as a canonical workload).
func SyntheticColor(n, size int, noise float32, seed uint64) *Dataset {
	if size < 8 {
		panic("dataset: size must be at least 8")
	}
	r := tensor.NewRNG(seed)
	images := tensor.New(n, 3, size, size)
	labels := make([]int, n)
	scale := float32(size) / 7
	for i := 0; i < n; i++ {
		label := r.Intn(10)
		labels[i] = label
		mono := make([]float32, size*size)
		jx, jy := r.Intn(3)-1, r.Intn(3)-1
		for _, s := range strokes[label] {
			drawLine(mono, size,
				int(float32(s[0])*scale)+jy, int(float32(s[1])*scale)+jx,
				int(float32(s[2])*scale)+jy, int(float32(s[3])*scale)+jx)
		}
		// Class-dependent colour mix keeps channels informative.
		mix := [3]float32{
			0.3 + 0.7*float32(label%3)/2,
			0.3 + 0.7*float32((label/3)%3)/2,
			0.3 + 0.7*float32(label%2),
		}
		for ch := 0; ch < 3; ch++ {
			dst := images.Data[(i*3+ch)*size*size:]
			for j, v := range mono {
				dst[j] = v * mix[ch]
				if noise > 0 {
					dst[j] += noise * (2*r.Float32() - 1)
				}
			}
		}
	}
	return &Dataset{Images: images, Labels: labels, Classes: 10}
}
