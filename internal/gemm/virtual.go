package gemm

import "fmt"

// Virtual operands: instead of reading a materialised row-major matrix,
// the packing loops call back into the operand to generate each
// micro-panel in place. This is the fusion seam the unrolling
// convolution engines use — im2col lowers each kc×nr (or mr×kc) panel
// of the conceptual lowered matrix directly into the packed buffer, so
// the full m×k / k×n matrix never exists anywhere (cf. cuConv's fused
// data staging, PAPERS.md). The packed kernel is oblivious: panels
// arrive in the same layout whether copied or generated.

// APacker generates micro-panels of a virtual left operand op(A) (m×k).
type APacker interface {
	// PackPanelA writes the mv×kc block of op(A) at (i0, p0) into dst as
	// a row-major panel with row stride kc: dst[r*kc+p] = A[i0+r][p0+p].
	// Only the mv valid rows need be written; the caller zero-pads rows
	// [mv, mr).
	PackPanelA(dst []float32, i0, mv, p0, kc int)
}

// BPacker generates micro-panels of a virtual right operand op(B) (k×n).
type BPacker interface {
	// PackPanelB writes the kc×nv block of op(B) at (p0, j0) into dst as
	// a p-major panel with row stride ldp: dst[p*ldp+c] = B[p0+p][j0+c].
	// Only the nv valid columns need be written; the caller zero-pads
	// columns [nv, ldp).
	PackPanelB(dst []float32, ldp, p0, kc, j0, nv int)
}

// PackAFunc adapts a function to APacker. Note that func values capture
// by heap allocation — zero-allocation hot paths should implement
// APacker on a pooled struct instead (see im2col.PanelPacker).
type PackAFunc func(dst []float32, i0, mv, p0, kc int)

func (f PackAFunc) PackPanelA(dst []float32, i0, mv, p0, kc int) { f(dst, i0, mv, p0, kc) }

// PackBFunc adapts a function to BPacker, with the same allocation
// caveat as PackAFunc.
type PackBFunc func(dst []float32, ldp, p0, kc, j0, nv int)

func (f PackBFunc) PackPanelB(dst []float32, ldp, p0, kc, j0, nv int) { f(dst, ldp, p0, kc, j0, nv) }

// MicroPanelB reports the fixed column stride (ldp) of packed B
// micro-panels, for callers that pre-compute panel geometry.
func MicroPanelB() int { return nr }

// BlockedVirtualA computes C = alpha*va*B + beta*C serially, where va
// is a virtual m×k left operand whose panels are generated on demand.
func BlockedVirtualA(alpha float32, va APacker, b []float32, beta float32, c []float32, m, n, k int) {
	if len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("gemm: virtual-A buffers too small for m=%d n=%d k=%d", m, n, k))
	}
	scaleRows(beta, c, 0, m, n)
	packedGEMM(1, alpha, virtA(va), matB(b, n), c, m, n, k)
}

// BlockedVirtualB computes C = alpha*A*vb + beta*C serially, where vb
// is a virtual k×n right operand whose panels are generated on demand.
// This is the fused im2col forward path: A is the filter matrix, vb the
// lowered input that is never materialised.
func BlockedVirtualB(alpha float32, a []float32, vb BPacker, beta float32, c []float32, m, n, k int) {
	if len(a) < m*k || len(c) < m*n {
		panic(fmt.Sprintf("gemm: virtual-B buffers too small for m=%d n=%d k=%d", m, n, k))
	}
	scaleRows(beta, c, 0, m, n)
	packedGEMM(1, alpha, matA(a, k), virtB(vb), c, m, n, k)
}

// ParallelVirtualB is BlockedVirtualB with the macro-loops fanned out
// over the par worker pool; the virtual packer must be safe for
// concurrent PackPanelB calls on disjoint panels.
func ParallelVirtualB(alpha float32, a []float32, vb BPacker, beta float32, c []float32, m, n, k int) {
	if len(a) < m*k || len(c) < m*n {
		panic(fmt.Sprintf("gemm: virtual-B buffers too small for m=%d n=%d k=%d", m, n, k))
	}
	workers := gemmWorkers(m, n, k)
	scaleRows(beta, c, 0, m, n)
	packedGEMM(workers, alpha, matA(a, k), virtB(vb), c, m, n, k)
}
