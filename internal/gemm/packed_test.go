package gemm

import (
	"math"
	"math/rand"
	"testing"
)

// raggedSizes covers the packing edge cases: tiny shapes, the mr/nr
// tile boundaries ±1, and cache-block boundaries.
var raggedSizes = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 63, 64, 65, 127}

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = float32(rng.NormFloat64())
	}
	return s
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i] - b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

// tol scales the comparison tolerance with the reduction depth: the
// packed kernel sums in a different order than the oracle.
func tol(k int) float64 {
	return 1e-4 * math.Sqrt(float64(k)+1)
}

func TestPackedMatchesNaiveRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range raggedSizes {
		for _, n := range raggedSizes {
			for _, k := range raggedSizes {
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				want := randSlice(rng, m*n)
				got := append([]float32(nil), want...)
				Naive(1.3, a, b, 0.4, want, m, n, k)
				Packed(1.3, a, b, 0.4, got, m, n, k)
				if d := maxAbsDiff(want, got); d > tol(k) {
					t.Fatalf("Packed mismatch m=%d n=%d k=%d: max diff %g", m, n, k, d)
				}
			}
		}
	}
}

func TestPackedParallelMatchesNaiveRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// Force the parallel dispatch path regardless of GOMAXPROCS so the
	// tile-distribution logic is exercised (and races surface under
	// -race) even on single-CPU runners.
	for _, m := range []int{1, 7, 9, 64, 127} {
		for _, k := range []int{1, 8, 127} {
			n := 65
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			want := randSlice(rng, m*n)
			got := append([]float32(nil), want...)
			Naive(1, a, b, 0.5, want, m, n, k)
			scaleRows(0.5, got, 0, m, n)
			packedGEMM(4, 1, matA(a, k), matB(b, n), got, m, n, k)
			if d := maxAbsDiff(want, got); d > tol(k) {
				t.Fatalf("parallel packed mismatch m=%d n=%d k=%d: max diff %g", m, n, k, d)
			}
		}
	}
}

func TestPackedNTMatchesOracleRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, m := range raggedSizes {
		for _, n := range []int{1, 7, 8, 9, 64, 127} {
			k := 33
			a := randSlice(rng, m*k)
			b := randSlice(rng, n*k)
			want := make([]float32, m*n)
			got := make([]float32, m*n)
			ntLegacy(1, a, b, 0, want, m, n, k)
			scaleRows(0, got, 0, m, n)
			packedGEMM(1, 1, matA(a, k), matBT(b, k), got, m, n, k)
			if d := maxAbsDiff(want, got); d > tol(k) {
				t.Fatalf("packed NT mismatch m=%d n=%d k=%d: max diff %g", m, n, k, d)
			}
		}
	}
}

func TestPackedTNMatchesOracleRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, m := range []int{1, 7, 8, 9, 64, 127} {
		for _, k := range raggedSizes {
			n := 31
			a := randSlice(rng, k*m)
			b := randSlice(rng, k*n)
			want := make([]float32, m*n)
			got := make([]float32, m*n)
			tnLegacy(1, a, b, 0, want, m, n, k)
			scaleRows(0, got, 0, m, n)
			packedGEMM(1, 1, matAT(a, m), matB(b, n), got, m, n, k)
			if d := maxAbsDiff(want, got); d > tol(k) {
				t.Fatalf("packed TN mismatch m=%d n=%d k=%d: max diff %g", m, n, k, d)
			}
		}
	}
}

// TestLargeEntryPointsUsePackedKernel pushes the public entry points
// over the packed-routing threshold so the packed path (not the legacy
// fallback) is what's verified against the oracle.
func TestLargeEntryPointsUsePackedKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m, n, k = 70, 65, 40 // m*n*k = 182000 > packedThreshold()
	if !routesToPacked(m, n, k) {
		t.Fatalf("test shape %dx%dx%d no longer routes to the packed kernel (threshold %d)",
			m, n, k, packedThreshold())
	}
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	bT := make([]float32, n*k) // b transposed: n×k
	for p := 0; p < k; p++ {
		for j := 0; j < n; j++ {
			bT[j*k+p] = b[p*n+j]
		}
	}
	aT := make([]float32, k*m) // a transposed: k×m
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			aT[p*m+i] = a[i*k+p]
		}
	}
	want := make([]float32, m*n)
	Naive(2, a, b, 0, want, m, n, k)

	for _, tc := range []struct {
		name string
		run  func(c []float32)
	}{
		{"Blocked", func(c []float32) { Blocked(2, a, b, 0, c, m, n, k) }},
		{"Parallel", func(c []float32) { Parallel(2, a, b, 0, c, m, n, k) }},
		{"NT", func(c []float32) { NT(2, a, bT, 0, c, m, n, k) }},
		{"TN", func(c []float32) { TN(2, aT, b, 0, c, m, n, k) }},
		{"ParallelNT", func(c []float32) { ParallelNT(2, a, bT, 0, c, m, n, k) }},
	} {
		got := make([]float32, m*n)
		tc.run(got)
		if d := maxAbsDiff(want, got); d > tol(k) {
			t.Fatalf("%s mismatch at m=%d n=%d k=%d: max diff %g", tc.name, m, n, k, d)
		}
	}
}

func TestCPackedMatchesCNaiveRagged(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 9, 17, 33}
	randC := func(n int) []complex64 {
		s := make([]complex64, n)
		for i := range s {
			s[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
		}
		return s
	}
	for _, m := range sizes {
		for _, n := range sizes {
			for _, k := range []int{1, 4, 5, 9, 33} {
				a := randC(m * k)
				b := randC(k * n)
				want := randC(m * n)
				got := append([]complex64(nil), want...)
				alpha := complex64(complex(1.1, -0.3))
				beta := complex64(complex(0.2, 0.7))
				CNaive(alpha, a, b, beta, want, m, n, k)
				CPacked(alpha, a, b, beta, got, m, n, k)
				for i := range want {
					dr := math.Abs(float64(real(want[i]) - real(got[i])))
					di := math.Abs(float64(imag(want[i]) - imag(got[i])))
					if dr > tol(k)*2 || di > tol(k)*2 {
						t.Fatalf("CPacked mismatch m=%d n=%d k=%d at %d: want %v got %v", m, n, k, i, want[i], got[i])
					}
				}
			}
		}
	}
}

func TestCParallelMatchesCNaiveLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	const m, n, k = 48, 33, 40
	a := make([]complex64, m*k)
	b := make([]complex64, k*n)
	for i := range a {
		a[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	for i := range b {
		b[i] = complex(float32(rng.NormFloat64()), float32(rng.NormFloat64()))
	}
	want := make([]complex64, m*n)
	got := make([]complex64, m*n)
	CNaive(1, a, b, 0, want, m, n, k)
	CParallel(1, a, b, 0, got, m, n, k)
	for i := range want {
		dr := math.Abs(float64(real(want[i]) - real(got[i])))
		di := math.Abs(float64(imag(want[i]) - imag(got[i])))
		if dr > tol(k)*2 || di > tol(k)*2 {
			t.Fatalf("CParallel mismatch at %d: want %v got %v", i, want[i], got[i])
		}
	}
}
