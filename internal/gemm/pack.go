package gemm

import (
	"runtime"
	"sync"

	"gpucnn/internal/par"
	"gpucnn/internal/workspace"
)

// BLIS-style packed kernel. The operands are repacked into contiguous
// panels — A into row-major mr×kc panels, B into p-major kc×nr panels —
// so the register-tiled micro-kernel streams both with unit stride and
// the C tile's dot products accumulate in registers instead of bouncing
// through cache lines of strided B rows. This is the data-layout half of
// what cuBLAS/cuDNN do on the device (cuConv, arXiv:2103.16234, makes
// the same point for convolution proper): packing and reuse, not extra
// FLOPs, are where GEMM performance lives.
const (
	mr = 8 // rows per micro-tile (one packed A panel)
	nr = 8 // columns per micro-tile (one packed B panel)

	// kcBlock is the reduction-panel depth: one packed B panel
	// (kcBlock×nr floats ≈ 8 KB) stays L1-resident across the whole A
	// panel, and one packed A panel (mr×kcBlock ≈ 8 KB) across all B
	// panels of the block.
	kcBlock = 256

	// ncBlock bounds the packed B block (kcBlock×ncBlock ≈ 2 MB) so it
	// stays L2-resident while the m-loop re-streams it.
	ncBlock = 2048

	// packThreshold routes tiny problems to the legacy kernel: below it
	// the packing traffic costs more than the register tiling saves.
	packThreshold = 1 << 15
)

func roundUp(x, m int) int { return (x + m - 1) / m * m }

// packA copies the mv×kc block of op(A) at (i0, p0) into a row-major
// mr×kc panel, zero-padding the tail rows. With transA, A is stored k×m
// and the logical element (i, p) is a[p*lda+i].
func packA(dst, a []float32, lda, i0, mv, p0, kc int, transA bool) {
	if transA {
		for r := 0; r < mv; r++ {
			col := i0 + r
			row := dst[r*kc : (r+1)*kc]
			for p := range row {
				row[p] = a[(p0+p)*lda+col]
			}
		}
	} else {
		for r := 0; r < mv; r++ {
			src := a[(i0+r)*lda+p0:]
			copy(dst[r*kc:(r+1)*kc], src[:kc])
		}
	}
	clear(dst[mv*kc : mr*kc])
}

// packB copies the kc×nv block of op(B) at (p0, j0) into a p-major
// kc×nr panel (nr consecutive column values per reduction step),
// zero-padding the tail columns. With transB, B is stored n×k and the
// logical element (p, j) is b[j*ldb+p].
func packB(dst, b []float32, ldb, p0, kc, j0, nv int, transB bool) {
	if transB {
		if nv < nr {
			clear(dst[:kc*nr])
		}
		for c := 0; c < nv; c++ {
			src := b[(j0+c)*ldb+p0:]
			for p := 0; p < kc; p++ {
				dst[p*nr+c] = src[p]
			}
		}
		return
	}
	if nv == nr {
		for p := 0; p < kc; p++ {
			src := b[(p0+p)*ldb+j0:]
			d := dst[p*nr : p*nr+nr : p*nr+nr]
			d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			d[4], d[5], d[6], d[7] = src[4], src[5], src[6], src[7]
		}
		return
	}
	for p := 0; p < kc; p++ {
		src := b[(p0+p)*ldb+j0:]
		d := dst[p*nr : p*nr+nr]
		for c := 0; c < nv; c++ {
			d[c] = src[c]
		}
		for c := nv; c < nr; c++ {
			d[c] = 0
		}
	}
}

// microKernel multiplies one packed A panel (row-major mr×kc) with one
// packed B panel (p-major kc×nr) and adds the alpha-scaled mv×nv valid
// region into the C tile at ct (leading dimension ldc). Each row's nr
// partial sums live in registers for the whole reduction — C is touched
// exactly once per (row, panel) — and both panels stream with unit
// stride out of L1.
func microKernel(kc int, ap, bp, ct []float32, ldc int, alpha float32, mv, nv int) {
	for r := 0; r < mv; r++ {
		arow := ap[r*kc : r*kc+kc]
		var s0, s1, s2, s3, s4, s5, s6, s7 float32
		bi := 0
		for _, av := range arow {
			brow := bp[bi : bi+nr : bi+nr]
			s0 += av * brow[0]
			s1 += av * brow[1]
			s2 += av * brow[2]
			s3 += av * brow[3]
			s4 += av * brow[4]
			s5 += av * brow[5]
			s6 += av * brow[6]
			s7 += av * brow[7]
			bi += nr
		}
		crow := ct[r*ldc:]
		if nv == nr {
			crow = crow[:nr:nr]
			crow[0] += alpha * s0
			crow[1] += alpha * s1
			crow[2] += alpha * s2
			crow[3] += alpha * s3
			crow[4] += alpha * s4
			crow[5] += alpha * s5
			crow[6] += alpha * s6
			crow[7] += alpha * s7
		} else {
			sums := [nr]float32{s0, s1, s2, s3, s4, s5, s6, s7}
			for c := 0; c < nv; c++ {
				crow[c] += alpha * sums[c]
			}
		}
	}
}

// packedTileJob is the parallel work unit: one mr-row panel of C across
// the current packed B block. It is pooled so Parallel dispatches with
// zero allocations.
type packedTileJob struct {
	alpha  float32
	a, c   []float32
	lda    int
	ldc    int
	transA bool
	m      int
	pc, kc int
	jc, nc int
	bp     []float32
}

func (j *packedTileJob) Run(pi int) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	ap := ws.Float32Uninit(mr * j.kc)
	i0 := pi * mr
	mv := j.m - i0
	if mv > mr {
		mv = mr
	}
	packA(ap, j.a, j.lda, i0, mv, j.pc, j.kc, j.transA)
	for t, jr := 0, 0; jr < j.nc; t, jr = t+1, jr+nr {
		nv := j.nc - jr
		if nv > nr {
			nv = nr
		}
		microKernel(j.kc, ap, j.bp[t*j.kc*nr:], j.c[i0*j.ldc+j.jc+jr:], j.ldc, j.alpha, mv, nv)
	}
}

var tileJobPool = newPool[packedTileJob]()

// packedGEMM computes C += alpha·op(A)·op(B) over beta-prescaled C,
// packing both operands and distributing mr-row C tiles over up to
// `workers` goroutines (1 = serial). op is selected per operand:
// transA reads A as its k×m transpose, transB reads B as its n×k
// transpose — which is how the NT/TN entry points reuse the same
// micro-kernel.
func packedGEMM(workers int, alpha float32, a, b, c []float32, m, n, k int, transA, transB bool) {
	if m == 0 || n == 0 || k == 0 || alpha == 0 {
		return
	}
	lda := k
	if transA {
		lda = m
	}
	ldb := n
	if transB {
		ldb = k
	}
	ws := workspace.Get()
	defer workspace.Put(ws)
	ncMax := n
	if ncMax > ncBlock {
		ncMax = ncBlock
	}
	bp := ws.Float32Uninit(kcBlock * roundUp(ncMax, nr))
	j := tileJobPool.Get()
	j.alpha, j.a, j.c = alpha, a, c
	j.lda, j.ldc, j.transA, j.m = lda, n, transA, m
	panels := (m + mr - 1) / mr
	for jc := 0; jc < n; jc += ncBlock {
		nc := n - jc
		if nc > ncBlock {
			nc = ncBlock
		}
		for pc := 0; pc < k; pc += kcBlock {
			kc := k - pc
			if kc > kcBlock {
				kc = kcBlock
			}
			for t, jr := 0, 0; jr < nc; t, jr = t+1, jr+nr {
				nv := nc - jr
				if nv > nr {
					nv = nr
				}
				packB(bp[t*kc*nr:], b, ldb, pc, kc, jc+jr, nv, transB)
			}
			j.pc, j.kc, j.jc, j.nc, j.bp = pc, kc, jc, nc, bp
			par.ForEachNRunner(panels, workers, j)
		}
	}
	j.a, j.c, j.bp = nil, nil, nil
	tileJobPool.Put(j)
}

// gemmWorkers picks the fan-out for a parallel entry point: GOMAXPROCS,
// or 1 when the problem is too small to amortise dispatch.
func gemmWorkers(m, n, k int) int {
	if m*n*k < 1<<20 {
		return 1
	}
	return runtime.GOMAXPROCS(0)
}

// jobPool is a typed sync.Pool for parallel job structs: Get/Put of a
// *T avoids both the interface-conversion allocation of storing the
// struct by value and the per-call make of a fresh job.
type jobPool[T any] struct{ p sync.Pool }

func newPool[T any]() *jobPool[T] {
	return &jobPool[T]{p: sync.Pool{New: func() any { return new(T) }}}
}

func (jp *jobPool[T]) Get() *T  { return jp.p.Get().(*T) }
func (jp *jobPool[T]) Put(t *T) { jp.p.Put(t) }
