package gemm

import (
	"fmt"
	"runtime"
)

// CNaive computes the complex GEMM C = alpha*A*B + beta*C with A (m×k),
// B (k×n), C (m×n) row-major complex64. Reference implementation.
func CNaive(alpha complex64, a []complex64, b []complex64, beta complex64, c []complex64, m, n, k int) {
	checkCDims(len(a), len(b), len(c), m, n, k)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc complex64
			for p := 0; p < k; p++ {
				acc += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = alpha*acc + beta*c[i*n+j]
		}
	}
}

// CPacked computes the complex GEMM C = alpha*A*B + beta*C through the
// planar packed kernel unconditionally (no small-size fallback); it is
// the path property-tested against CNaive.
func CPacked(alpha complex64, a []complex64, b []complex64, beta complex64, c []complex64, m, n, k int) {
	checkCDims(len(a), len(b), len(c), m, n, k)
	cscale(beta, c[:m*n])
	cpackedGEMM(1, alpha, a, b, c, m, n, k)
}

// CParallel computes the complex GEMM C = alpha*A*B + beta*C through the
// planar packed kernel, with mrC-row C tiles distributed over the par
// worker pool. The FFT-based convolution engines perform one small CGEMM
// per frequency-domain pixel; batching them row-wise here mirrors how
// fbfft batches its Cgemm kernel.
func CParallel(alpha complex64, a []complex64, b []complex64, beta complex64, c []complex64, m, n, k int) {
	checkCDims(len(a), len(b), len(c), m, n, k)
	if m*n*k < cpackedThreshold() {
		CNaive(alpha, a, b, beta, c, m, n, k)
		return
	}
	workers := 1
	if m*n*k >= 1<<17 {
		workers = runtime.GOMAXPROCS(0)
	}
	cscale(beta, c[:m*n])
	cpackedGEMM(workers, alpha, a, b, c, m, n, k)
}

// CMulAccPointwise accumulates c[i] += a[i] * conj-or-plain b[i] over a
// slice. With conjB set it computes the correlation form used by
// convolution backward passes in the frequency domain.
func CMulAccPointwise(c, a, b []complex64, conjB bool) {
	if len(a) != len(b) || len(a) != len(c) {
		panic("gemm: pointwise length mismatch")
	}
	if conjB {
		for i := range c {
			br := real(b[i])
			bi := -imag(b[i])
			ar := real(a[i])
			ai := imag(a[i])
			c[i] += complex(ar*br-ai*bi, ar*bi+ai*br)
		}
		return
	}
	for i := range c {
		c[i] += a[i] * b[i]
	}
}

// CFLOPs returns the real floating-point operation count of a complex
// m×n×k GEMM: each complex multiply-add costs 8 real flops.
func CFLOPs(m, n, k int) float64 {
	return 8 * float64(m) * float64(n) * float64(k)
}

func checkCDims(la, lb, lc, m, n, k int) {
	if la < m*k || lb < k*n || lc < m*n {
		panic(fmt.Sprintf("gemm: complex buffers too small for m=%d n=%d k=%d", m, n, k))
	}
}
