package gemm

import (
	"fmt"
	"testing"
)

func benchMatrices(m, n, k int) (a, b, c []float32) {
	a = make([]float32, m*k)
	b = make([]float32, k*n)
	c = make([]float32, m*n)
	for i := range a {
		a[i] = float32(i%13) - 6
	}
	for i := range b {
		b[i] = float32(i%7) - 3
	}
	return a, b, c
}

// BenchmarkBlockedGEMM compares the legacy cache-blocked kernel against
// the packed register-tiled kernel at the acceptance size (256³). The
// "legacy" sub-benchmark is the pre-PR Blocked implementation.
func BenchmarkBlockedGEMM(bm *testing.B) {
	const m, n, k = 256, 256, 256
	a, b, c := benchMatrices(m, n, k)
	bm.Run("legacy", func(bm *testing.B) {
		bm.SetBytes(int64(4 * (m*k + k*n + m*n)))
		for i := 0; i < bm.N; i++ {
			blockedLegacy(1, a, b, 0, c, m, n, k)
		}
		bm.ReportMetric(FLOPs(m, n, k)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
	})
	bm.Run("packed", func(bm *testing.B) {
		bm.SetBytes(int64(4 * (m*k + k*n + m*n)))
		for i := 0; i < bm.N; i++ {
			Packed(1, a, b, 0, c, m, n, k)
		}
		bm.ReportMetric(FLOPs(m, n, k)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
	})
}

// BenchmarkGEMM sweeps the packed serial kernel over square sizes.
func BenchmarkGEMM(bm *testing.B) {
	for _, s := range []int{64, 128, 256, 512} {
		a, b, c := benchMatrices(s, s, s)
		bm.Run(fmt.Sprintf("packed/%d", s), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				Packed(1, a, b, 0, c, s, s, s)
			}
			bm.ReportMetric(FLOPs(s, s, s)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
	for _, s := range []int{256, 512} {
		a, b, c := benchMatrices(s, s, s)
		bm.Run(fmt.Sprintf("parallel/%d", s), func(bm *testing.B) {
			for i := 0; i < bm.N; i++ {
				Parallel(1, a, b, 0, c, s, s, s)
			}
			bm.ReportMetric(FLOPs(s, s, s)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
		})
	}
}

// BenchmarkGEMMFused compares the materialised im2col-shaped virtual-B
// path against the plain packed kernel at the same shape: the delta is
// the cost (or win) of generating B panels through the fusion seam.
func BenchmarkGEMMFused(bm *testing.B) {
	const m, n, k = 64, 1024, 576 // a Conv-ish f×o²×ck² shape
	a, b, c := benchMatrices(m, n, k)
	bm.Run("materialized", func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			Packed(1, a, b, 0, c, m, n, k)
		}
		bm.ReportMetric(FLOPs(m, n, k)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
	})
	bm.Run("virtualB", func(bm *testing.B) {
		vb := materializedB(b, n)
		for i := 0; i < bm.N; i++ {
			BlockedVirtualB(1, a, vb, 0, c, m, n, k)
		}
		bm.ReportMetric(FLOPs(m, n, k)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
	})
}

// BenchmarkCGEMM compares the naive and planar-packed complex kernels.
func BenchmarkCGEMM(bm *testing.B) {
	const m, n, k = 128, 128, 128
	a := make([]complex64, m*k)
	b := make([]complex64, k*n)
	c := make([]complex64, m*n)
	for i := range a {
		a[i] = complex(float32(i%5)-2, float32(i%3)-1)
	}
	for i := range b {
		b[i] = complex(float32(i%7)-3, float32(i%4)-2)
	}
	bm.Run("naive", func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			CNaive(1, a, b, 0, c, m, n, k)
		}
		bm.ReportMetric(CFLOPs(m, n, k)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
	})
	bm.Run("packed", func(bm *testing.B) {
		for i := 0; i < bm.N; i++ {
			CPacked(1, a, b, 0, c, m, n, k)
		}
		bm.ReportMetric(CFLOPs(m, n, k)*float64(bm.N)/bm.Elapsed().Seconds()/1e9, "GFLOPS")
	})
}
