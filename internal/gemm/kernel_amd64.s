//go:build amd64

#include "textflag.h"

// func cpuHasAVX2FMA() bool
//
// Leaf 1 ECX: FMA (bit 12), OSXSAVE (bit 27), AVX (bit 28).
// XGETBV(0): XMM|YMM state enabled by the OS (bits 1-2).
// Leaf 7 EBX: AVX2 (bit 5).
TEXT ·cpuHasAVX2FMA(SB), NOSPLIT, $0-1
	// Max basic leaf must reach 7.
	MOVL $0, AX
	MOVL $0, CX
	CPUID
	CMPL AX, $7
	JL   no

	MOVL $1, AX
	MOVL $0, CX
	CPUID
	MOVL CX, R8
	ANDL $((1<<12)|(1<<27)|(1<<28)), R8
	CMPL R8, $((1<<12)|(1<<27)|(1<<28))
	JNE  no

	MOVL   $0, CX
	XGETBV
	ANDL   $6, AX
	CMPL   AX, $6
	JNE    no

	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no

	MOVB $1, ret+0(FP)
	RET

no:
	MOVB $0, ret+0(FP)
	RET

// func microKernelFMA(kc int, ap, bp, ct *float32, ldc int, alpha float32)
//
// One full 8x8 micro-tile: ap is a row-major 8xkc A panel (row stride
// kc floats), bp a p-major kcx8 B panel (unit-stride rows), ct the C
// tile origin with row stride ldc floats. Per reduction step one B row
// is loaded into Y8 and each A row's scalar is broadcast and FMA'd into
// its accumulator (Y0-Y7) — 16 FMA lanes/cycle peak, C touched once in
// the epilogue. PREFETCHT0 stays ~4 B-rows ahead of the stream and
// runs into the next panel at the tail (panels are contiguous).
TEXT ·microKernelFMA(SB), NOSPLIT, $0-44
	MOVQ kc+0(FP), DX
	MOVQ ap+8(FP), SI
	MOVQ bp+16(FP), BX
	MOVQ ct+24(FP), DI
	MOVQ ldc+32(FP), R11

	// A panel row bases: SI=row0, R9=row3, R10=row6; stride R8=kc*4.
	// Rows 1,2,4,5,7 reach via (base)(R8*{1,2,4}).
	MOVQ DX, R8
	SHLQ $2, R8
	LEAQ (SI)(R8*2), R9
	ADDQ R8, R9
	LEAQ (R9)(R8*2), R10
	ADDQ R8, R10

	VXORPS Y0, Y0, Y0
	VXORPS Y1, Y1, Y1
	VXORPS Y2, Y2, Y2
	VXORPS Y3, Y3, Y3
	VXORPS Y4, Y4, Y4
	VXORPS Y5, Y5, Y5
	VXORPS Y6, Y6, Y6
	VXORPS Y7, Y7, Y7

loop:
	VMOVUPS    (BX), Y8
	PREFETCHT0 128(BX)
	VBROADCASTSS (SI), Y9
	VFMADD231PS  Y8, Y9, Y0
	VBROADCASTSS (SI)(R8*1), Y9
	VFMADD231PS  Y8, Y9, Y1
	VBROADCASTSS (SI)(R8*2), Y9
	VFMADD231PS  Y8, Y9, Y2
	VBROADCASTSS (R9), Y9
	VFMADD231PS  Y8, Y9, Y3
	VBROADCASTSS (SI)(R8*4), Y9
	VFMADD231PS  Y8, Y9, Y4
	VBROADCASTSS (R9)(R8*2), Y9
	VFMADD231PS  Y8, Y9, Y5
	VBROADCASTSS (R10), Y9
	VFMADD231PS  Y8, Y9, Y6
	VBROADCASTSS (R10)(R8*1), Y9
	VFMADD231PS  Y8, Y9, Y7
	ADDQ $32, BX
	ADDQ $4, SI
	ADDQ $4, R9
	ADDQ $4, R10
	DECQ DX
	JNZ  loop

	// Epilogue: C row r += alpha * acc_r. Same three-base addressing
	// trick over ct with stride R8=ldc*4.
	VBROADCASTSS alpha+40(FP), Y9
	MOVQ R11, R8
	SHLQ $2, R8
	LEAQ (DI)(R8*2), R9
	ADDQ R8, R9
	LEAQ (R9)(R8*2), R10
	ADDQ R8, R10

	VMOVUPS     (DI), Y10
	VFMADD231PS Y9, Y0, Y10
	VMOVUPS     Y10, (DI)
	VMOVUPS     (DI)(R8*1), Y10
	VFMADD231PS Y9, Y1, Y10
	VMOVUPS     Y10, (DI)(R8*1)
	VMOVUPS     (DI)(R8*2), Y10
	VFMADD231PS Y9, Y2, Y10
	VMOVUPS     Y10, (DI)(R8*2)
	VMOVUPS     (R9), Y10
	VFMADD231PS Y9, Y3, Y10
	VMOVUPS     Y10, (R9)
	VMOVUPS     (DI)(R8*4), Y10
	VFMADD231PS Y9, Y4, Y10
	VMOVUPS     Y10, (DI)(R8*4)
	VMOVUPS     (R9)(R8*2), Y10
	VFMADD231PS Y9, Y5, Y10
	VMOVUPS     Y10, (R9)(R8*2)
	VMOVUPS     (R10), Y10
	VFMADD231PS Y9, Y6, Y10
	VMOVUPS     Y10, (R10)
	VMOVUPS     (R10)(R8*1), Y10
	VFMADD231PS Y9, Y7, Y10
	VMOVUPS     Y10, (R10)(R8*1)

	VZEROUPPER
	RET
