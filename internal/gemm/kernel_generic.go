//go:build !amd64

package gemm

// useFMA is false off amd64: every tile goes through the portable
// scalar micro-kernel.
const useFMA = false

// microKernelFMA exists so pack.go links on every GOARCH; the useFMA
// guard means it is never reached here.
func microKernelFMA(kc int, ap, bp, ct *float32, ldc int, alpha float32) {
	panic("gemm: microKernelFMA called on a non-amd64 build")
}
