package gemm

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Runtime autotuning of the cache-blocking parameters. The packed
// kernel's loop nest is governed by three extents, derived at startup
// from the detected cache hierarchy per the BLIS analytical model
// (Low et al., "Analytical Modeling Is Enough for High-Performance
// BLIS") and then refined once per problem-shape class by a measured
// probe:
//
//   - kc: reduction-panel depth. One packed B micro-panel (kc×nr) plus
//     one packed A micro-panel (mr×kc) must stay L1-resident across the
//     whole micro-kernel reduction.
//   - mc: rows per packed A block. The mc×kc block is what the macro
//     loop keeps L2-resident while it streams B panels over it.
//   - nc: columns per packed B block. The kc×nc block stays in L3 (or
//     a bounded arena carve when L3 is effectively unbounded, as on
//     large shared virtual machines) while the m loop re-reads it.
type blockParams struct {
	mc, kc, nc int
}

// cacheSizes holds the detected per-core data-cache capacities in
// bytes.
type cacheSizes struct {
	l1d, l2, l3 int
}

// defaultCaches are the safe fallbacks when detection fails: a small
// modern x86 core (32 KB L1d, 1 MB L2, 8 MB L3). Underestimating cache
// only costs a little reuse; overestimating causes thrashing, so the
// defaults are conservative.
var defaultCaches = cacheSizes{l1d: 32 << 10, l2: 1 << 20, l3: 8 << 20}

// clampBlock bounds a derived extent and rounds it down to a multiple
// of the register-tile quantum.
func clampBlock(v, lo, hi, quantum int) int {
	if v > hi {
		v = hi
	}
	if v < lo {
		v = lo
	}
	return v / quantum * quantum
}

// analyticParams derives (mc, kc, nc) from cache sizes per the BLIS
// rules, quantised to the micro-tile extents.
func analyticParams(cs cacheSizes) blockParams {
	// L1: the B micro-panel (kc×nr) and the streaming A micro-panel
	// (mr×kc) should together fill about half of L1d, leaving the rest
	// for the C tile and incidental lines.
	kc := cs.l1d / 2 / (4 * (mr + nr))
	kc = clampBlock(kc, 64, 512, 8)
	// L2: the packed A block (mc×kc) takes about half of L2 so B panels
	// streaming through the other half don't evict it.
	mc := cs.l2 / 2 / (4 * kc)
	mc = clampBlock(mc, mr, 4096, mr)
	// L3: the packed B block (kc×nc) would take about half of L3, but
	// it is also a workspace carve-out, so cap it at a few MB — beyond
	// that the m loop's reuse no longer pays for the footprint.
	nc := cs.l3 / 2 / (4 * kc)
	nc = clampBlock(nc, nr, 4096, nr)
	return blockParams{mc: mc, kc: kc, nc: nc}
}

// parseCacheSize parses sysfs "size" values like "48K", "2048K", "1M".
func parseCacheSize(s string) (int, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	mult := 1
	switch s[len(s)-1] {
	case 'K', 'k':
		mult, s = 1<<10, s[:len(s)-1]
	case 'M', 'm':
		mult, s = 1<<20, s[:len(s)-1]
	case 'G', 'g':
		mult, s = 1<<30, s[:len(s)-1]
	}
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n <= 0 {
		return 0, false
	}
	return n * mult, true
}

// detectCaches reads the per-core cache hierarchy from Linux sysfs,
// falling back to defaultCaches for any level it cannot read. On
// non-Linux hosts the sysfs reads fail and the defaults win — safe,
// just not tuned.
func detectCaches() cacheSizes {
	cs := defaultCaches
	for i := 0; i < 8; i++ {
		base := fmt.Sprintf("/sys/devices/system/cpu/cpu0/cache/index%d", i)
		level, err := os.ReadFile(base + "/level")
		if err != nil {
			break
		}
		typ, err := os.ReadFile(base + "/type")
		if err != nil {
			continue
		}
		ty := strings.TrimSpace(string(typ))
		if ty == "Instruction" {
			continue
		}
		raw, err := os.ReadFile(base + "/size")
		if err != nil {
			continue
		}
		size, ok := parseCacheSize(string(raw))
		if !ok {
			continue
		}
		switch strings.TrimSpace(string(level)) {
		case "1":
			cs.l1d = size
		case "2":
			cs.l2 = size
		case "3":
			cs.l3 = size
		}
	}
	return cs
}

var (
	tuneOnce     sync.Once
	baseParams   blockParams
	smallCutoff  int
	detectedInfo cacheSizes
)

// tuneInit derives the analytic baseline once per process.
func tuneInit() {
	tuneOnce.Do(func() {
		detectedInfo = detectCaches()
		baseParams = analyticParams(detectedInfo)
		// Small-problem cutoff (legacy-kernel crossover), derived from
		// the tuned blocking instead of a hard-coded constant: one
		// kc-deep panel pass costs ~kc·(mr+nr) elements of packing
		// traffic, so a problem needs a multiple of that many
		// multiply-adds before packing amortises. The SIMD micro-kernel
		// amortises far sooner than the scalar one because the packed
		// side gets faster while the legacy kernel does not.
		scale := 8
		if useFMA {
			scale = 2
		}
		smallCutoff = scale * baseParams.kc * (mr + nr)
	})
}

// Blocking reports the autotuned analytic blocking parameters
// (mc, kc, nc) and the detected cache sizes they were derived from.
// Exposed for benchmarks and the experiment reports.
func Blocking() (mc, kc, nc, l1d, l2, l3 int) {
	tuneInit()
	return baseParams.mc, baseParams.kc, baseParams.nc,
		detectedInfo.l1d, detectedInfo.l2, detectedInfo.l3
}

// packedThreshold returns the m·n·k extent below which the legacy
// kernels win (packing cannot amortise). Derived from the autotuned
// blocking; see tuneInit.
func packedThreshold() int {
	tuneInit()
	return smallCutoff
}

// routesToPacked reports whether an m×n×k problem goes through the
// packed kernel (as opposed to the legacy fallback). Split out so the
// crossover is pinned by a regression test.
func routesToPacked(m, n, k int) bool {
	return m*n*k >= packedThreshold()
}

// --- measured-probe refinement ---
//
// The analytic parameters assume dense square-ish operands. Skinny or
// deep shapes (im2col GEMMs are both) sometimes prefer a shallower or
// deeper kc, so the first large GEMM of each shape class times a small
// bounded probe over kc candidates and caches the winner. One probe
// per class per process; everything after hits the cache.

// shapeClass buckets a problem by the ceil-log2 of each extent, so all
// "Conv3-forward-sized" calls share one tuning decision.
func shapeClass(m, n, k int) int {
	return log2Ceil(m)<<16 | log2Ceil(n)<<8 | log2Ceil(k)
}

func log2Ceil(v int) int {
	b := 0
	for (1 << b) < v {
		b++
	}
	return b
}

const (
	// probeMinVolume gates probing to problems big enough that a few
	// milliseconds of one-shot measurement is noise (≥ ~16 MFLOP).
	probeMinVolume = 1 << 23
	// probe sub-problem caps: enough work to rank candidates, bounded
	// so a probe never costs more than a few milliseconds.
	probeMaxM = 128
	probeMaxN = 512
	probeMaxK = 768
)

var (
	probeMu    sync.RWMutex
	probeCache = map[int]blockParams{}
	// probeDisabled short-circuits the measured probe (tests use it to
	// pin deterministic parameters).
	probeDisabled bool
)

// tuneFor returns the blocking parameters for an m×n×k problem:
// the analytic baseline, or the probe-refined parameters for large
// shapes (computed on first sight of the shape class, cached after).
func tuneFor(m, n, k int) blockParams {
	tuneInit()
	if probeDisabled || m*n*k < probeMinVolume {
		return baseParams
	}
	class := shapeClass(m, n, k)
	probeMu.RLock()
	p, ok := probeCache[class]
	probeMu.RUnlock()
	if ok {
		return p
	}
	p = probeClass(m, n, k)
	probeMu.Lock()
	// First writer wins; concurrent probes of the same class measured
	// the same candidates, so any winner is fine.
	if prev, ok := probeCache[class]; ok {
		p = prev
	} else {
		probeCache[class] = p
	}
	probeMu.Unlock()
	return p
}

// probeClass times the packed kernel on a capped synthetic sub-problem
// for each kc candidate and returns the analytic params with the
// winning kc (mc re-derived so the A block still fits L2).
func probeClass(m, n, k int) blockParams {
	mp, np, kp := m, n, k
	if mp > probeMaxM {
		mp = probeMaxM
	}
	if np > probeMaxN {
		np = probeMaxN
	}
	if kp > probeMaxK {
		kp = probeMaxK
	}
	candidates := kcCandidates(baseParams.kc, kp)
	best := baseParams
	if len(candidates) < 2 {
		return best
	}
	a := probeBuf(mp * kp)
	b := probeBuf(kp * np)
	c := probeBuf(mp * np)
	defer putProbeBufs()
	bestT := time.Duration(1<<63 - 1)
	for _, kc := range candidates {
		cand := withKC(baseParams, kc)
		var min time.Duration
		for rep := 0; rep < 2; rep++ {
			t0 := time.Now()
			packedGEMMParams(1, 1, matA(a, kp), matB(b, np), c, mp, np, kp, cand)
			el := time.Since(t0)
			if rep == 0 || el < min {
				min = el
			}
		}
		if min < bestT {
			bestT, best = min, cand
		}
	}
	return best
}

// withKC rebuilds params around a candidate kc, re-deriving mc from L2
// and nc from the panel cap so footprints stay constant.
func withKC(base blockParams, kc int) blockParams {
	mc := detectedInfo.l2 / 2 / (4 * kc)
	mc = clampBlock(mc, mr, 4096, mr)
	nc := detectedInfo.l3 / 2 / (4 * kc)
	nc = clampBlock(nc, nr, 4096, nr)
	return blockParams{mc: mc, kc: kc, nc: nc}
}

// kcCandidates proposes the analytic kc and its half/double neighbours,
// clamped to the probe's reduction depth and deduplicated.
func kcCandidates(kc, kMax int) []int {
	raw := [3]int{kc / 2, kc, kc * 2}
	out := make([]int, 0, 3)
	for _, v := range raw {
		v = clampBlock(v, 64, 512, 8)
		if v > kMax {
			v = clampBlock(kMax, 8, 512, 8)
			if v == 0 {
				continue
			}
		}
		dup := false
		for _, o := range out {
			if o == v {
				dup = true
			}
		}
		if !dup {
			out = append(out, v)
		}
	}
	return out
}

// Probe scratch: zeroed once, reused across candidates. Zeros keep the
// probe off subnormal slow paths and make candidate timings comparable.
var (
	probeScratchMu sync.Mutex
	probeScratch   []float32
	probeOff       int
)

func probeBuf(n int) []float32 {
	probeScratchMu.Lock()
	defer probeScratchMu.Unlock()
	if probeOff+n > len(probeScratch) {
		probeScratch = make([]float32, probeOff+n)
	}
	s := probeScratch[probeOff : probeOff+n : probeOff+n]
	probeOff += n
	return s
}

func putProbeBufs() {
	probeScratchMu.Lock()
	probeOff = 0
	probeScratch = nil // one-shot per class: release, don't retain MBs
	probeScratchMu.Unlock()
}
