package gemm

import (
	"math"
	"testing"
	"testing/quick"

	"gpucnn/internal/tensor"
)

func randMat(r *tensor.RNG, rows, cols int) []float32 {
	m := make([]float32, rows*cols)
	for i := range m {
		m[i] = 2*r.Float32() - 1
	}
	return m
}

func maxDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		d := math.Abs(float64(a[i]) - float64(b[i]))
		if d > m {
			m = d
		}
	}
	return m
}

func TestNaiveIdentity(t *testing.T) {
	// I * B == B
	n := 8
	id := make([]float32, n*n)
	for i := 0; i < n; i++ {
		id[i*n+i] = 1
	}
	r := tensor.NewRNG(1)
	b := randMat(r, n, n)
	c := make([]float32, n*n)
	Naive(1, id, b, 0, c, n, n, n)
	if maxDiff(b, c) != 0 {
		t.Fatal("identity multiplication should be exact")
	}
}

func TestNaiveKnownValues(t *testing.T) {
	// [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
	a := []float32{1, 2, 3, 4}
	b := []float32{5, 6, 7, 8}
	c := make([]float32, 4)
	Naive(1, a, b, 0, c, 2, 2, 2)
	want := []float32{19, 22, 43, 50}
	if maxDiff(c, want) != 0 {
		t.Fatalf("got %v, want %v", c, want)
	}
}

func TestAlphaBeta(t *testing.T) {
	a := []float32{1, 0, 0, 1}
	b := []float32{2, 0, 0, 2}
	c := []float32{1, 1, 1, 1}
	Naive(3, a, b, 2, c, 2, 2, 2)
	// C = 3*(2I) + 2*ones = [8 2; 2 8]
	want := []float32{8, 2, 2, 8}
	if maxDiff(c, want) != 0 {
		t.Fatalf("got %v, want %v", c, want)
	}
}

func TestBlockedMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {64, 64, 64}, {65, 63, 70}, {128, 17, 200}} {
		m, n, k := dims[0], dims[1], dims[2]
		r := tensor.NewRNG(uint64(m*1000 + n*10 + k))
		a, b := randMat(r, m, k), randMat(r, k, n)
		c1 := randMat(r, m, n)
		c2 := append([]float32(nil), c1...)
		Naive(1.5, a, b, 0.5, c1, m, n, k)
		Blocked(1.5, a, b, 0.5, c2, m, n, k)
		if d := maxDiff(c1, c2); d > 1e-4 {
			t.Fatalf("m=%d n=%d k=%d: blocked differs from naive by %g", m, n, k, d)
		}
	}
}

func TestParallelMatchesNaive(t *testing.T) {
	for _, dims := range [][3]int{{200, 150, 120}, {301, 99, 77}, {33, 513, 64}} {
		m, n, k := dims[0], dims[1], dims[2]
		r := tensor.NewRNG(uint64(m + n + k))
		a, b := randMat(r, m, k), randMat(r, k, n)
		c1 := make([]float32, m*n)
		c2 := make([]float32, m*n)
		Naive(1, a, b, 0, c1, m, n, k)
		Parallel(1, a, b, 0, c2, m, n, k)
		if d := maxDiff(c1, c2); d > 1e-3 {
			t.Fatalf("m=%d n=%d k=%d: parallel differs from naive by %g", m, n, k, d)
		}
	}
}

func TestNTMatchesNaive(t *testing.T) {
	m, n, k := 13, 17, 19
	r := tensor.NewRNG(4)
	a := randMat(r, m, k)
	bt := randMat(r, n, k) // B stored transposed: n×k
	// Build B (k×n) explicitly for the naive reference.
	b := make([]float32, k*n)
	for j := 0; j < n; j++ {
		for p := 0; p < k; p++ {
			b[p*n+j] = bt[j*k+p]
		}
	}
	c1 := make([]float32, m*n)
	c2 := make([]float32, m*n)
	Naive(1, a, b, 0, c1, m, n, k)
	NT(1, a, bt, 0, c2, m, n, k)
	if d := maxDiff(c1, c2); d > 1e-4 {
		t.Fatalf("NT differs from naive by %g", d)
	}
}

func TestTNMatchesNaive(t *testing.T) {
	m, n, k := 11, 23, 15
	r := tensor.NewRNG(5)
	at := randMat(r, k, m) // A stored transposed: k×m
	b := randMat(r, k, n)
	a := make([]float32, m*k)
	for i := 0; i < m; i++ {
		for p := 0; p < k; p++ {
			a[i*k+p] = at[p*m+i]
		}
	}
	c1 := make([]float32, m*n)
	c2 := make([]float32, m*n)
	Naive(1, a, b, 0, c1, m, n, k)
	TN(1, at, b, 0, c2, m, n, k)
	if d := maxDiff(c1, c2); d > 1e-4 {
		t.Fatalf("TN differs from naive by %g", d)
	}
}

func TestParallelNTMatchesNT(t *testing.T) {
	m, n, k := 220, 130, 140
	r := tensor.NewRNG(6)
	a := randMat(r, m, k)
	bt := randMat(r, n, k)
	c1 := make([]float32, m*n)
	c2 := make([]float32, m*n)
	NT(1, a, bt, 0, c1, m, n, k)
	ParallelNT(1, a, bt, 0, c2, m, n, k)
	if d := maxDiff(c1, c2); d > 1e-3 {
		t.Fatalf("ParallelNT differs from NT by %g", d)
	}
}

// TestDistributive checks the algebraic property A*(B+C) = A*B + A*C.
func TestDistributive(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n, k := 1+r.Intn(20), 1+r.Intn(20), 1+r.Intn(20)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		c := randMat(r, k, n)
		bc := make([]float32, k*n)
		for i := range bc {
			bc[i] = b[i] + c[i]
		}
		out1 := make([]float32, m*n)
		Parallel(1, a, bc, 0, out1, m, n, k)
		out2 := make([]float32, m*n)
		Parallel(1, a, b, 0, out2, m, n, k)
		Parallel(1, a, c, 1, out2, m, n, k)
		return maxDiff(out1, out2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestScalarPullOut checks (alpha*A)*B == alpha*(A*B).
func TestScalarPullOut(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n, k := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		out1 := make([]float32, m*n)
		Blocked(2.5, a, b, 0, out1, m, n, k)
		scaled := make([]float32, len(a))
		for i := range a {
			scaled[i] = 2.5 * a[i]
		}
		out2 := make([]float32, m*n)
		Blocked(1, scaled, b, 0, out2, m, n, k)
		return maxDiff(out1, out2) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBetaZeroOverwritesGarbage(t *testing.T) {
	m, n, k := 4, 4, 4
	r := tensor.NewRNG(7)
	a, b := randMat(r, m, k), randMat(r, k, n)
	nan := float32(math.NaN())
	c1 := make([]float32, m*n)
	c2 := []float32{nan, nan, nan, nan, nan, nan, nan, nan, nan, nan, nan, nan, nan, nan, nan, nan}
	Blocked(1, a, b, 0, c1, m, n, k)
	Blocked(1, a, b, 0, c2, m, n, k)
	if d := maxDiff(c1, c2); d != 0 || math.IsNaN(float64(c2[0])) {
		t.Fatal("beta=0 must overwrite pre-existing NaNs")
	}
}

func TestTooSmallBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on undersized buffer")
		}
	}()
	Naive(1, make([]float32, 3), make([]float32, 4), 0, make([]float32, 4), 2, 2, 2)
}

func TestFLOPs(t *testing.T) {
	if FLOPs(2, 3, 4) != 48 {
		t.Fatalf("FLOPs = %v, want 48", FLOPs(2, 3, 4))
	}
	if CFLOPs(2, 3, 4) != 192 {
		t.Fatalf("CFLOPs = %v, want 192", CFLOPs(2, 3, 4))
	}
}

func cmaxDiff(a, b []complex64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		v := math.Hypot(float64(real(d)), float64(imag(d)))
		if v > m {
			m = v
		}
	}
	return m
}

func randCMat(r *tensor.RNG, rows, cols int) []complex64 {
	m := make([]complex64, rows*cols)
	for i := range m {
		m[i] = complex(2*r.Float32()-1, 2*r.Float32()-1)
	}
	return m
}

func TestCNaiveKnown(t *testing.T) {
	// (1+i)*(1-i) = 2
	a := []complex64{complex(1, 1)}
	b := []complex64{complex(1, -1)}
	c := make([]complex64, 1)
	CNaive(1, a, b, 0, c, 1, 1, 1)
	if c[0] != 2 {
		t.Fatalf("got %v, want 2", c[0])
	}
}

func TestCParallelMatchesCNaive(t *testing.T) {
	m, n, k := 90, 70, 40
	r := tensor.NewRNG(8)
	a := randCMat(r, m, k)
	b := randCMat(r, k, n)
	c1 := make([]complex64, m*n)
	c2 := make([]complex64, m*n)
	CNaive(1, a, b, 0, c1, m, n, k)
	CParallel(1, a, b, 0, c2, m, n, k)
	if d := cmaxDiff(c1, c2); d > 1e-3 {
		t.Fatalf("CParallel differs by %g", d)
	}
}

func TestCMulAccPointwiseConj(t *testing.T) {
	a := []complex64{complex(1, 2)}
	b := []complex64{complex(3, 4)}
	c := []complex64{0}
	CMulAccPointwise(c, a, b, true)
	// (1+2i)*(3-4i) = 3-4i+6i+8 = 11+2i
	if c[0] != complex(11, 2) {
		t.Fatalf("conj pointwise got %v, want 11+2i", c[0])
	}
	c[0] = 0
	CMulAccPointwise(c, a, b, false)
	// (1+2i)*(3+4i) = 3+4i+6i-8 = -5+10i
	if c[0] != complex(-5, 10) {
		t.Fatalf("plain pointwise got %v, want -5+10i", c[0])
	}
}

func TestCMulAccPointwiseLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	CMulAccPointwise(make([]complex64, 2), make([]complex64, 3), make([]complex64, 3), false)
}

// TestAssociativity checks (A·B)·C == A·(B·C) within float32 noise.
func TestAssociativity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n, k, l := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a := randMat(r, m, k)
		b := randMat(r, k, n)
		c := randMat(r, n, l)
		ab := make([]float32, m*n)
		Blocked(1, a, b, 0, ab, m, n, k)
		abc1 := make([]float32, m*l)
		Blocked(1, ab, c, 0, abc1, m, l, n)
		bc := make([]float32, k*l)
		Blocked(1, b, c, 0, bc, k, l, n)
		abc2 := make([]float32, m*l)
		Blocked(1, a, bc, 0, abc2, m, l, k)
		return maxDiff(abc1, abc2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCGEMMLinearity: complex GEMM is linear in its left operand.
func TestCGEMMLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		m, n, k := 1+r.Intn(8), 1+r.Intn(8), 1+r.Intn(8)
		a1 := randCMat(r, m, k)
		a2 := randCMat(r, m, k)
		b := randCMat(r, k, n)
		sum := make([]complex64, m*k)
		for i := range sum {
			sum[i] = a1[i] + a2[i]
		}
		c1 := make([]complex64, m*n)
		CNaive(1, sum, b, 0, c1, m, n, k)
		c2 := make([]complex64, m*n)
		CNaive(1, a1, b, 0, c2, m, n, k)
		CNaive(1, a2, b, 1, c2, m, n, k)
		return cmaxDiff(c1, c2) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestGEMMTransposeIdentity: (A·B)ᵀ == Bᵀ·Aᵀ via the NT/TN kernels.
func TestGEMMConsistencyAcrossKernels(t *testing.T) {
	m, n, k := 9, 11, 7
	r := tensor.NewRNG(77)
	a := randMat(r, m, k)
	b := randMat(r, k, n)
	want := make([]float32, m*n)
	Naive(1, a, b, 0, want, m, n, k)
	// The same product through Blocked and Parallel.
	got1 := make([]float32, m*n)
	Blocked(1, a, b, 0, got1, m, n, k)
	got2 := make([]float32, m*n)
	Parallel(1, a, b, 0, got2, m, n, k)
	if maxDiff(want, got1) > 1e-4 || maxDiff(want, got2) > 1e-4 {
		t.Fatal("kernel variants disagree")
	}
}
