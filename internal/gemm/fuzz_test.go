package gemm

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzPackedGEMM drives the packing routines and micro-kernel with
// fuzzer-chosen shapes and data seeds, comparing against the Naive
// oracle. The shape space is folded into [1, 40] per dimension so the
// fuzzer explores tile-edge interactions rather than giant products.
func FuzzPackedGEMM(f *testing.F) {
	f.Add(uint8(3), uint8(5), uint8(7), int64(1))
	f.Add(uint8(8), uint8(8), uint8(8), int64(2))
	f.Add(uint8(9), uint8(7), uint8(16), int64(3))
	f.Add(uint8(1), uint8(1), uint8(1), int64(4))
	f.Add(uint8(17), uint8(33), uint8(40), int64(5))
	f.Fuzz(func(t *testing.T, mm, nn, kk uint8, seed int64) {
		m := int(mm)%40 + 1
		n := int(nn)%40 + 1
		k := int(kk)%40 + 1
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, m*k)
		b := make([]float32, k*n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
		}
		for i := range b {
			b[i] = float32(rng.NormFloat64())
		}
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		for i := range want {
			v := float32(rng.NormFloat64())
			want[i], got[i] = v, v
		}
		Naive(1.5, a, b, 0.25, want, m, n, k)
		Packed(1.5, a, b, 0.25, got, m, n, k)
		limit := 1e-4 * math.Sqrt(float64(k)+1)
		for i := range want {
			if d := math.Abs(float64(want[i] - got[i])); d > limit {
				t.Fatalf("m=%d n=%d k=%d: c[%d] diff %g (want %v got %v)", m, n, k, i, d, want[i], got[i])
			}
		}
	})
}
