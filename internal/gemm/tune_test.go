package gemm

import "testing"

func TestParseCacheSize(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"48K", 48 << 10, true},
		{"2048K", 2048 << 10, true},
		{"1M", 1 << 20, true},
		{" 32K\n", 32 << 10, true},
		{"64", 64, true},
		{"", 0, false},
		{"x", 0, false},
		{"-4K", 0, false},
	}
	for _, c := range cases {
		got, ok := parseCacheSize(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("parseCacheSize(%q) = %d,%v want %d,%v", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestAnalyticParamsDefaults(t *testing.T) {
	p := analyticParams(defaultCaches)
	// 32K L1d → kc = 32768/2/(4·16) = 256; 1M L2 → mc = 524288/(4·256)
	// = 512; 8M L3 → nc capped at 4096.
	if p.kc != 256 || p.mc != 512 || p.nc != 4096 {
		t.Fatalf("analyticParams(defaults) = %+v, want {mc:512 kc:256 nc:4096}", p)
	}
}

func TestAnalyticParamsQuantisedAndBounded(t *testing.T) {
	cases := []cacheSizes{
		{l1d: 1 << 10, l2: 1 << 14, l3: 1 << 16},    // tiny caches
		{l1d: 1 << 21, l2: 1 << 26, l3: 1 << 30},    // huge caches
		{l1d: 48 << 10, l2: 2 << 20, l3: 105 << 20}, // this CI machine
	}
	for _, cs := range cases {
		p := analyticParams(cs)
		if p.kc < 64 || p.kc > 512 || p.kc%8 != 0 {
			t.Errorf("caches %+v: kc=%d out of [64,512] or not 8-aligned", cs, p.kc)
		}
		if p.mc < mr || p.mc > 4096 || p.mc%mr != 0 {
			t.Errorf("caches %+v: mc=%d out of [mr,4096] or not mr-aligned", cs, p.mc)
		}
		if p.nc < nr || p.nc > 4096 || p.nc%nr != 0 {
			t.Errorf("caches %+v: nc=%d out of [nr,4096] or not nr-aligned", cs, p.nc)
		}
		// The L1 working set the kc rule targets must actually fit.
		if ws := 4 * p.kc * (mr + nr); cs.l1d >= 16<<10 && ws > cs.l1d {
			t.Errorf("caches %+v: panel working set %d exceeds L1d %d", cs, ws, cs.l1d)
		}
	}
}

// TestThresholdCrossover pins the legacy-kernel crossover to the
// derived formula: problems below scale·kc·(mr+nr) take the legacy
// kernels, problems at or above it take the packed path. This replaces
// the old hard-coded 1<<15 constant — the regression this guards is the
// threshold silently decoupling from the tuned blocking.
func TestThresholdCrossover(t *testing.T) {
	_, kc, _, _, _, _ := Blocking()
	scale := 8
	if useFMA {
		scale = 2
	}
	want := scale * kc * (mr + nr)
	if got := packedThreshold(); got != want {
		t.Fatalf("packedThreshold() = %d, want scale(%d)·kc(%d)·(mr+nr) = %d", got, scale, kc, want)
	}
	th := packedThreshold()
	if routesToPacked(1, 1, th-1) {
		t.Errorf("volume %d (below threshold) routes to packed", th-1)
	}
	if !routesToPacked(1, 1, th) {
		t.Errorf("volume %d (at threshold) routes to legacy", th)
	}
	// The complex crossover tracks the real one at a quarter (a complex
	// MAC is four real ones).
	if got := cpackedThreshold(); got != th/4 {
		t.Errorf("cpackedThreshold() = %d, want %d", got, th/4)
	}
}

func TestShapeClassBuckets(t *testing.T) {
	if shapeClass(256, 256, 256) != shapeClass(129, 200, 255) {
		t.Error("shapes in the same log2 buckets got different classes")
	}
	if shapeClass(256, 256, 256) == shapeClass(512, 256, 256) {
		t.Error("shapes in different m buckets share a class")
	}
	if shapeClass(64, 128, 256) == shapeClass(256, 128, 64) {
		t.Error("shapeClass is permutation-blind; m/n/k must be distinguished")
	}
}

func TestKCCandidates(t *testing.T) {
	got := kcCandidates(256, 768)
	want := []int{128, 256, 512}
	if len(got) != len(want) {
		t.Fatalf("kcCandidates(256,768) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("kcCandidates(256,768) = %v, want %v", got, want)
		}
	}
	// Shallow reductions collapse the candidates (and disable probing).
	if got := kcCandidates(256, 100); len(got) != 1 || got[0] != 96 {
		t.Fatalf("kcCandidates(256,100) = %v, want [96]", got)
	}
}

func TestTuneForCachesProbeDecision(t *testing.T) {
	// Small problems never probe: the analytic baseline comes back.
	small := tuneFor(8, 8, 8)
	if small != baseParams {
		t.Fatalf("small-problem tuneFor = %+v, want baseline %+v", small, baseParams)
	}
	// Large problems probe once per shape class and cache the winner.
	p1 := tuneFor(256, 256, 256)
	p2 := tuneFor(255, 255, 255) // same log2 class, above the volume gate
	if p1 != p2 {
		t.Fatalf("same-class tuneFor disagrees: %+v vs %+v", p1, p2)
	}
	if p1.kc < 64 || p1.kc > 512 || p1.kc%8 != 0 {
		t.Fatalf("probed kc=%d out of range", p1.kc)
	}
	probeMu.RLock()
	_, cached := probeCache[shapeClass(256, 256, 256)]
	probeMu.RUnlock()
	if !cached {
		t.Fatal("probe result not cached for the shape class")
	}
}

func TestProbeDisabledReturnsBaseline(t *testing.T) {
	probeMu.Lock()
	probeDisabled = true
	probeMu.Unlock()
	defer func() {
		probeMu.Lock()
		probeDisabled = false
		probeMu.Unlock()
	}()
	if p := tuneFor(512, 512, 512); p != baseParams {
		t.Fatalf("probeDisabled tuneFor = %+v, want baseline %+v", p, baseParams)
	}
}
