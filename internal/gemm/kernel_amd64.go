//go:build amd64

package gemm

// useFMA gates the assembly micro-kernel: true when the CPU supports
// AVX2+FMA and the OS saves YMM state on context switch (OSXSAVE +
// XCR0). Checked once at init; the scalar Go kernel remains the
// fallback for ragged edge tiles even when true.
var useFMA = cpuHasAVX2FMA()

// cpuHasAVX2FMA probes CPUID/XGETBV; implemented in kernel_amd64.s.
func cpuHasAVX2FMA() bool

// microKernelFMA multiplies one packed row-major mr×kc A panel with one
// packed p-major kc×nr B panel and adds the alpha-scaled full 8×8 tile
// into C at ct (row stride ldc floats). AVX2/FMA assembly in
// kernel_amd64.s; callers guarantee kc ≥ 1 and a full mv==mr, nv==nr
// tile.
//
//go:noescape
func microKernelFMA(kc int, ap, bp, ct *float32, ldc int, alpha float32)
