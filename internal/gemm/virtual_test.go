package gemm

import (
	"math/rand"
	"testing"
)

// materializedB wraps a row-major k×n matrix as a BPacker, generating
// panels by straight copy — the reference for the virtual plumbing.
func materializedB(b []float32, n int) PackBFunc {
	return func(dst []float32, ldp, p0, kc, j0, nv int) {
		for p := 0; p < kc; p++ {
			src := b[(p0+p)*n+j0:]
			d := dst[p*ldp:]
			for c := 0; c < nv; c++ {
				d[c] = src[c]
			}
		}
	}
}

// materializedA wraps a row-major m×k matrix as an APacker.
func materializedA(a []float32, k int) PackAFunc {
	return func(dst []float32, i0, mv, p0, kc int) {
		for r := 0; r < mv; r++ {
			copy(dst[r*kc:r*kc+kc], a[(i0+r)*k+p0:(i0+r)*k+p0+kc])
		}
	}
}

func TestBlockedVirtualBMatchesBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{1, 7, 8, 17, 70} {
		for _, n := range []int{1, 9, 64, 65} {
			for _, k := range []int{1, 8, 40, 127} {
				a := randSlice(rng, m*k)
				b := randSlice(rng, k*n)
				want := randSlice(rng, m*n)
				got := append([]float32(nil), want...)
				Packed(1.2, a, b, 0.3, want, m, n, k)
				BlockedVirtualB(1.2, a, materializedB(b, n), 0.3, got, m, n, k)
				if d := maxAbsDiff(want, got); d > tol(k) {
					t.Fatalf("virtual-B mismatch m=%d n=%d k=%d: max diff %g", m, n, k, d)
				}
			}
		}
	}
}

func TestBlockedVirtualAMatchesBlocked(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, m := range []int{1, 7, 9, 64, 70} {
		for _, k := range []int{1, 8, 127} {
			n := 33
			a := randSlice(rng, m*k)
			b := randSlice(rng, k*n)
			want := randSlice(rng, m*n)
			got := append([]float32(nil), want...)
			Packed(0.7, a, b, 1, want, m, n, k)
			BlockedVirtualA(0.7, materializedA(a, k), b, 1, got, m, n, k)
			if d := maxAbsDiff(want, got); d > tol(k) {
				t.Fatalf("virtual-A mismatch m=%d n=%d k=%d: max diff %g", m, n, k, d)
			}
		}
	}
}

func TestParallelVirtualBMatchesPacked(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	// Big enough that gemmWorkers picks the parallel path on
	// multi-core hosts; on single-core runners this still exercises
	// the workers==1 virtual dispatch.
	const m, n, k = 160, 96, 96
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := make([]float32, m*n)
	got := make([]float32, m*n)
	Packed(1, a, b, 0, want, m, n, k)
	ParallelVirtualB(1, a, materializedB(b, n), 0, got, m, n, k)
	if d := maxAbsDiff(want, got); d > tol(k) {
		t.Fatalf("parallel virtual-B mismatch: max diff %g", d)
	}
}

// TestVirtualForcedParallelPartitioning drives the macro-loop
// partitioning directly with forced worker counts — on a single-core
// runner the wall-clock cannot scale, but every (ic, jr) partition
// shape must still produce exact panel coverage.
func TestVirtualForcedParallelPartitioning(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	const m, n, k = 96, 80, 64
	a := randSlice(rng, m*k)
	b := randSlice(rng, k*n)
	want := make([]float32, m*n)
	Packed(1, a, b, 0, want, m, n, k)
	for _, workers := range []int{2, 3, 4, 7, 8, 16} {
		got := make([]float32, m*n)
		packedGEMM(workers, 1, matA(a, k), virtB(materializedB(b, n)), got, m, n, k)
		if d := maxAbsDiff(want, got); d > tol(k) {
			t.Fatalf("workers=%d: mismatch %g", workers, d)
		}
	}
}
