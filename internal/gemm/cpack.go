package gemm

import (
	"gpucnn/internal/par"
	"gpucnn/internal/workspace"
)

// Complex packed kernel. complex64 operands are split into planar
// real/imag float32 panels during packing, so the micro-kernel runs on
// plain float32 register accumulators — the same planar trick fbfft
// uses for its frequency-domain batched Cgemm. nrC is half of nr
// because each C column needs two accumulators (real and imag) and the
// register budget is what it is.
const (
	mrC = 8 // rows per complex micro-tile
	nrC = 4 // columns per complex micro-tile (×2 accumulators each)

	// cKcCap/cNcCap bound the tuned blocking for the planar kernel:
	// packed blocks exist twice (real+imag planes), so the single-
	// precision extents would double the footprint.
	cKcCap = 256
	cNcCap = 2048
)

// cpackedThreshold routes tiny complex problems to CNaive. A complex
// multiply-add is four real ones, so the packed kernel amortises at a
// quarter of the real-valued crossover.
func cpackedThreshold() int { return packedThreshold() / 4 }

// ctuneFor caps the autotuned blocking for planar-complex packing.
func ctuneFor(m, n, k int) blockParams {
	bp := tuneFor(m, n, k)
	if bp.kc > cKcCap {
		bp.kc = cKcCap
	}
	if bp.nc > cNcCap {
		bp.nc = cNcCap
	}
	return bp
}

// cpackA splits the mv×kc block of A at (i0, p0) into planar row-major
// mrC×kc panels, zero-padding tail rows.
func cpackA(dstR, dstI []float32, a []complex64, lda, i0, mv, p0, kc int) {
	for r := 0; r < mv; r++ {
		src := a[(i0+r)*lda+p0:]
		dr := dstR[r*kc : (r+1)*kc]
		di := dstI[r*kc : (r+1)*kc]
		for p := 0; p < kc; p++ {
			v := src[p]
			dr[p] = real(v)
			di[p] = imag(v)
		}
	}
	clear(dstR[mv*kc : mrC*kc])
	clear(dstI[mv*kc : mrC*kc])
}

// cpackB splits the kc×nv block of B at (p0, j0) into planar p-major
// kc×nrC panels, zero-padding tail columns.
func cpackB(dstR, dstI []float32, b []complex64, ldb, p0, kc, j0, nv int) {
	if nv < nrC {
		clear(dstR[:kc*nrC])
		clear(dstI[:kc*nrC])
	}
	for p := 0; p < kc; p++ {
		src := b[(p0+p)*ldb+j0:]
		dr := dstR[p*nrC : p*nrC+nrC]
		di := dstI[p*nrC : p*nrC+nrC]
		for c := 0; c < nv; c++ {
			v := src[c]
			dr[c] = real(v)
			di[c] = imag(v)
		}
	}
}

// cmicroKernel multiplies one planar A panel with one planar B panel
// and adds the alpha-scaled mv×nv valid region into the complex C tile.
// Per row, the four columns' real and imag partial sums (eight float32
// accumulators) stay in registers across the whole reduction.
func cmicroKernel(kc int, apR, apI, bpR, bpI []float32, alpha complex64, ct []complex64, ldc, mv, nv int) {
	ar0 := real(alpha)
	ai0 := imag(alpha)
	for r := 0; r < mv; r++ {
		arow := apR[r*kc : r*kc+kc]
		irow := apI[r*kc : r*kc+kc]
		var sr0, sr1, sr2, sr3, si0, si1, si2, si3 float32
		bi := 0
		for p, ar := range arow {
			ai := irow[p]
			br := bpR[bi : bi+nrC : bi+nrC]
			bm := bpI[bi : bi+nrC : bi+nrC]
			sr0 += ar*br[0] - ai*bm[0]
			si0 += ar*bm[0] + ai*br[0]
			sr1 += ar*br[1] - ai*bm[1]
			si1 += ar*bm[1] + ai*br[1]
			sr2 += ar*br[2] - ai*bm[2]
			si2 += ar*bm[2] + ai*br[2]
			sr3 += ar*br[3] - ai*bm[3]
			si3 += ar*bm[3] + ai*br[3]
			bi += nrC
		}
		srs := [nrC]float32{sr0, sr1, sr2, sr3}
		sis := [nrC]float32{si0, si1, si2, si3}
		crow := ct[r*ldc:]
		for c := 0; c < nv; c++ {
			tr, ti := srs[c], sis[c]
			crow[c] += complex(ar0*tr-ai0*ti, ar0*ti+ai0*tr)
		}
	}
}

// cpackedTileJob is one mrC-row panel of complex C across the current
// packed B block; pooled for allocation-free dispatch.
type cpackedTileJob struct {
	alpha  complex64
	a      []complex64
	c      []complex64
	lda    int
	ldc    int
	m      int
	pc, kc int
	jc, nc int
	bpR    []float32
	bpI    []float32
}

func (j *cpackedTileJob) Run(pi int) {
	ws := workspace.Get()
	defer workspace.Put(ws)
	apR := ws.Float32Uninit(mrC * j.kc)
	apI := ws.Float32Uninit(mrC * j.kc)
	i0 := pi * mrC
	mv := j.m - i0
	if mv > mrC {
		mv = mrC
	}
	cpackA(apR, apI, j.a, j.lda, i0, mv, j.pc, j.kc)
	for t, jr := 0, 0; jr < j.nc; t, jr = t+1, jr+nrC {
		nv := j.nc - jr
		if nv > nrC {
			nv = nrC
		}
		off := t * j.kc * nrC
		cmicroKernel(j.kc, apR, apI, j.bpR[off:], j.bpI[off:], j.alpha,
			j.c[i0*j.ldc+j.jc+jr:], j.ldc, mv, nv)
	}
}

var ctileJobPool = newPool[cpackedTileJob]()

// cpackedGEMM computes C += alpha·A·B over beta-prescaled complex C,
// with planar packing and mrC-row tiles distributed over up to
// `workers` goroutines.
func cpackedGEMM(workers int, alpha complex64, a, b, c []complex64, m, n, k int) {
	if m == 0 || n == 0 || k == 0 || alpha == 0 {
		return
	}
	ws := workspace.Get()
	defer workspace.Put(ws)
	bp := ctuneFor(m, n, k)
	ncMax := n
	if ncMax > bp.nc {
		ncMax = bp.nc
	}
	kcMax := k
	if kcMax > bp.kc {
		kcMax = bp.kc
	}
	panelFloats := kcMax * roundUp(ncMax, nrC)
	bpR := ws.Float32Uninit(panelFloats)
	bpI := ws.Float32Uninit(panelFloats)
	j := ctileJobPool.Get()
	j.alpha, j.a, j.c = alpha, a, c
	j.lda, j.ldc, j.m = k, n, m
	panels := (m + mrC - 1) / mrC
	for jc := 0; jc < n; jc += bp.nc {
		nc := n - jc
		if nc > bp.nc {
			nc = bp.nc
		}
		for pc := 0; pc < k; pc += bp.kc {
			kc := k - pc
			if kc > bp.kc {
				kc = bp.kc
			}
			for t, jr := 0, 0; jr < nc; t, jr = t+1, jr+nrC {
				nv := nc - jr
				if nv > nrC {
					nv = nrC
				}
				cpackB(bpR[t*kc*nrC:], bpI[t*kc*nrC:], b, n, pc, kc, jc+jr, nv)
			}
			j.pc, j.kc, j.jc, j.nc, j.bpR, j.bpI = pc, kc, jc, nc, bpR, bpI
			par.ForEachNRunner(panels, workers, j)
		}
	}
	j.a, j.c, j.bpR, j.bpI = nil, nil, nil, nil
	ctileJobPool.Put(j)
}

// cscale applies C *= beta in place.
func cscale(beta complex64, c []complex64) {
	if beta == 1 {
		return
	}
	if beta == 0 {
		clear(c)
		return
	}
	for i := range c {
		c[i] *= beta
	}
}
