// Package gemm implements single-precision and complex general
// matrix-matrix multiplication. It is the arithmetic core of the
// unrolling-based convolution engines (which lower convolution to a
// single SGEMM, the way Caffe/Torch-cunn/Theano-CorrMM call cuBLAS) and
// of the FFT engines' frequency-domain CGEMM.
//
// Three tiers are provided:
//
//   - Naive: the textbook triple loop, used as the correctness oracle.
//   - Packed/Blocked: BLIS-style serial kernel — both operands are
//     repacked into contiguous panels and multiplied by a register-tiled
//     mr×nr micro-kernel (AVX2/FMA assembly on capable amd64 hosts,
//     portable Go otherwise; see pack.go, kernel_amd64.s) under
//     runtime-autotuned cache blocking (tune.go).
//   - Parallel: the packed kernel with the ic/jr macro-loops fanned out
//     over the par worker pool — workers share one packed B block and
//     pack their own A blocks; this is the tier the convolution engines
//     call.
//
// Operands may also be virtual (BlockedVirtualB and friends in
// virtual.go): a panel packer generates op(A)/op(B) micro-panels on
// demand, which is how the unrolling convolution engines fuse im2col
// into GEMM packing without materialising the lowered matrix.
//
// The legacy cache-blocked kernel is kept (unexported) both as a
// fallback for problems too small to amortise packing (crossover
// derived from the autotuned blocking, see packedThreshold) and as the
// benchmark reference the packed kernel is measured against.
package gemm

import "fmt"

// blockM/blockN/blockK are the cache-block extents of the legacy serial
// kernel. They are sized so one block of A (blockM×blockK) plus one
// block of B (blockK×blockN) fits comfortably in L1/L2.
const (
	blockM = 64
	blockN = 64
	blockK = 64
)

// Naive computes C = alpha*A*B + beta*C with A (m×k), B (k×n), C (m×n),
// all row-major. It is O(mnk) with no blocking and exists as the oracle
// against which the optimised kernels are tested.
func Naive(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	checkDims(len(a), len(b), len(c), m, n, k)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var acc float32
			for p := 0; p < k; p++ {
				acc += a[i*k+p] * b[p*n+j]
			}
			c[i*n+j] = alpha*acc + beta*c[i*n+j]
		}
	}
}

// Blocked computes C = alpha*A*B + beta*C serially. Problems large
// enough to amortise panel packing go through the packed register-tiled
// kernel; tiny ones use the legacy cache-blocked loop.
func Blocked(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	checkDims(len(a), len(b), len(c), m, n, k)
	if !routesToPacked(m, n, k) {
		blockedLegacy(alpha, a, b, beta, c, m, n, k)
		return
	}
	scaleRows(beta, c, 0, m, n)
	packedGEMM(1, alpha, matA(a, k), matB(b, n), c, m, n, k)
}

// Packed computes C = alpha*A*B + beta*C through the packed
// register-tiled kernel unconditionally (no small-size fallback). It is
// the kernel benchmarked against blockedLegacy and property-tested
// against Naive.
func Packed(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	checkDims(len(a), len(b), len(c), m, n, k)
	scaleRows(beta, c, 0, m, n)
	packedGEMM(1, alpha, matA(a, k), matB(b, n), c, m, n, k)
}

// blockedLegacy is the pre-packing cache-blocked kernel, kept as the
// small-problem fallback and as the baseline BenchmarkBlockedGEMM
// measures the packed kernel against.
func blockedLegacy(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	scaleRows(beta, c, 0, m, n)
	for i0 := 0; i0 < m; i0 += blockM {
		i1 := min(i0+blockM, m)
		blockedRows(alpha, a, b, c, i0, i1, m, n, k)
	}
}

// blockedRows multiplies the row stripe [i0,i1) of A into C with the
// legacy axpy-style inner loop.
//
//hot:noalloc
func blockedRows(alpha float32, a, b, c []float32, i0, i1, m, n, k int) {
	for p0 := 0; p0 < k; p0 += blockK {
		p1 := min(p0+blockK, k)
		for j0 := 0; j0 < n; j0 += blockN {
			j1 := min(j0+blockN, n)
			for i := i0; i < i1; i++ {
				arow := a[i*k:]
				crow := c[i*n:]
				for p := p0; p < p1; p++ {
					av := alpha * arow[p]
					if av == 0 {
						continue
					}
					brow := b[p*n:]
					for j := j0; j < j1; j++ {
						crow[j] += av * brow[j]
					}
				}
			}
		}
	}
}

// Parallel computes C = alpha*A*B + beta*C, partitioning the packed
// kernel's ic/jr macro-loops over the par worker pool. Small problems
// fall through to the serial kernel to avoid dispatch overhead.
func Parallel(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	checkDims(len(a), len(b), len(c), m, n, k)
	workers := gemmWorkers(m, n, k)
	if workers <= 1 {
		Blocked(alpha, a, b, beta, c, m, n, k)
		return
	}
	scaleRows(beta, c, 0, m, n)
	packedGEMM(workers, alpha, matA(a, k), matB(b, n), c, m, n, k)
}

// NT computes C = alpha*A*Bᵀ + beta*C where A is m×k and B is n×k,
// both row-major. This is the backward-filter GEMM shape; B's rows
// become packed micro-panel columns, so no transpose copy of B is ever
// materialised.
func NT(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic(fmt.Sprintf("gemm: NT buffer too small for m=%d n=%d k=%d", m, n, k))
	}
	if !routesToPacked(m, n, k) {
		ntLegacy(alpha, a, b, beta, c, m, n, k)
		return
	}
	scaleRows(beta, c, 0, m, n)
	packedGEMM(1, alpha, matA(a, k), matBT(b, k), c, m, n, k)
}

// ntLegacy is the pre-packing dot-product NT kernel (small-problem
// fallback).
func ntLegacy(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	for i := 0; i < m; i++ {
		arow := a[i*k : (i+1)*k]
		crow := c[i*n:]
		for j := 0; j < n; j++ {
			brow := b[j*k : (j+1)*k]
			var acc float32
			for p := 0; p < k; p++ {
				acc += arow[p] * brow[p]
			}
			crow[j] = alpha*acc + beta*crow[j]
		}
	}
}

// TN computes C = alpha*Aᵀ*B + beta*C where A is k×m and B is k×n,
// both row-major. This is the backward-data GEMM shape; A's columns are
// gathered during packing instead of in the inner loop.
func TN(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	if len(a) < k*m || len(b) < k*n || len(c) < m*n {
		panic(fmt.Sprintf("gemm: TN buffer too small for m=%d n=%d k=%d", m, n, k))
	}
	if !routesToPacked(m, n, k) {
		tnLegacy(alpha, a, b, beta, c, m, n, k)
		return
	}
	scaleRows(beta, c, 0, m, n)
	packedGEMM(1, alpha, matAT(a, m), matB(b, n), c, m, n, k)
}

// tnLegacy is the pre-packing axpy TN kernel (small-problem fallback).
func tnLegacy(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	scaleRows(beta, c, 0, m, n)
	for p := 0; p < k; p++ {
		arow := a[p*m:]
		brow := b[p*n:]
		for i := 0; i < m; i++ {
			av := alpha * arow[i]
			if av == 0 {
				continue
			}
			crow := c[i*n:]
			for j := 0; j < n; j++ {
				crow[j] += av * brow[j]
			}
		}
	}
}

// ParallelNT is NT with the packed macro-loops fanned out over the par
// worker pool.
func ParallelNT(alpha float32, a []float32, b []float32, beta float32, c []float32, m, n, k int) {
	if len(a) < m*k || len(b) < n*k || len(c) < m*n {
		panic(fmt.Sprintf("gemm: NT buffer too small for m=%d n=%d k=%d", m, n, k))
	}
	workers := gemmWorkers(m, n, k)
	if workers <= 1 {
		NT(alpha, a, b, beta, c, m, n, k)
		return
	}
	scaleRows(beta, c, 0, m, n)
	packedGEMM(workers, alpha, matA(a, k), matBT(b, k), c, m, n, k)
}

// FLOPs returns the floating-point operation count of an m×n×k GEMM
// (one multiply plus one add per inner-loop step).
func FLOPs(m, n, k int) float64 {
	return 2 * float64(m) * float64(n) * float64(k)
}

//hot:noalloc
func scaleRows(beta float32, c []float32, i0, i1, n int) {
	if beta == 1 {
		return
	}
	seg := c[i0*n : i1*n]
	if beta == 0 {
		for i := range seg {
			seg[i] = 0
		}
		return
	}
	for i := range seg {
		seg[i] *= beta
	}
}

func checkDims(la, lb, lc, m, n, k int) {
	if la < m*k || lb < k*n || lc < m*n {
		panic(fmt.Sprintf("gemm: buffers too small for m=%d n=%d k=%d (a=%d b=%d c=%d)",
			m, n, k, la, lb, lc))
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
