package fft

import (
	"fmt"
	"runtime"
	"sync"
)

// Plan2D performs square 2-D transforms of size n×n by applying the 1-D
// plan along rows and then columns. Convolution pads both extents to
// the same power of two, so only the square case is needed.
type Plan2D struct {
	n    int
	plan *Plan
}

// NewPlan2D builds a 2-D plan of size n×n (n must be a power of two).
func NewPlan2D(n int) *Plan2D {
	return &Plan2D{n: n, plan: NewPlan(n)}
}

// N returns the per-axis transform size.
func (p *Plan2D) N() int { return p.n }

// Forward transforms x (row-major, length n*n) in place.
func (p *Plan2D) Forward(x []complex64) { p.apply(x, (*Plan).Forward) }

// Inverse inverse-transforms x in place, including full 1/n² scaling.
func (p *Plan2D) Inverse(x []complex64) { p.apply(x, (*Plan).Inverse) }

func (p *Plan2D) apply(x []complex64, f func(*Plan, []complex64)) {
	n := p.n
	if len(x) != n*n {
		panic(fmt.Sprintf("fft: 2-D input length %d does not match %d×%d", len(x), n, n))
	}
	// Rows.
	for r := 0; r < n; r++ {
		f(p.plan, x[r*n:(r+1)*n])
	}
	// Columns via gather/scatter through a scratch buffer.
	col := make([]complex64, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = x[r*n+c]
		}
		f(p.plan, col)
		for r := 0; r < n; r++ {
			x[r*n+c] = col[r]
		}
	}
}

// ForwardReal transforms a real-valued h×w image zero-padded into an
// n×n complex grid and returns the frequency-domain grid. This is the
// padding step that inflates FFT-convolution memory usage: the filter
// (k×k) and the image (i×i) are both padded to the same n×n extent.
func (p *Plan2D) ForwardReal(img []float32, h, w int) []complex64 {
	n := p.n
	if h > n || w > n {
		panic(fmt.Sprintf("fft: real input %dx%d exceeds plan size %d", h, w, n))
	}
	grid := make([]complex64, n*n)
	for r := 0; r < h; r++ {
		src := img[r*w : (r+1)*w]
		dst := grid[r*n:]
		for c, v := range src {
			dst[c] = complex(v, 0)
		}
	}
	p.Forward(grid)
	return grid
}

// InverseRealInto inverse-transforms grid in place and writes the real
// parts of the top-left h×w corner (offset by offH/offW) into out.
func (p *Plan2D) InverseRealInto(grid []complex64, out []float32, h, w, offH, offW int) {
	n := p.n
	p.Inverse(grid)
	for r := 0; r < h; r++ {
		src := grid[(r+offH)*n:]
		dst := out[r*w : (r+1)*w]
		for c := range dst {
			dst[c] = real(src[c+offW])
		}
	}
}

// BatchForwardReal transforms count images in parallel. images[i] must
// be an h×w real image; the result slice holds count frequency grids.
func (p *Plan2D) BatchForwardReal(images [][]float32, h, w int) [][]complex64 {
	out := make([][]complex64, len(images))
	parallelFor(len(images), func(i int) {
		out[i] = p.ForwardReal(images[i], h, w)
	})
	return out
}

// parallelFor runs f(i) for i in [0,n) across GOMAXPROCS goroutines.
func parallelFor(n int, f func(int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				f(i)
			}
		}()
	}
	wg.Wait()
}

// FLOPs1D returns the approximate real-flop cost of one length-n
// radix-2 transform: 5 n log2(n) (the standard split-radix-free count).
func FLOPs1D(n int) float64 {
	if n <= 1 {
		return 0
	}
	log2 := 0
	for m := n; m > 1; m >>= 1 {
		log2++
	}
	return 5 * float64(n) * float64(log2)
}

// FLOPs2D returns the approximate real-flop cost of one n×n transform
// (2n row/column transforms of length n).
func FLOPs2D(n int) float64 {
	return 2 * float64(n) * FLOPs1D(n)
}
