package fft

import (
	"fmt"
	"sync"

	"gpucnn/internal/par"
	"gpucnn/internal/workspace"
)

// Plan2D performs square 2-D transforms of size n×n by applying the 1-D
// plan along rows and then columns. Convolution pads both extents to
// the same power of two, so only the square case is needed.
type Plan2D struct {
	n    int
	plan *Plan
}

// NewPlan2D builds a 2-D plan of size n×n (n must be a power of two).
func NewPlan2D(n int) *Plan2D {
	return &Plan2D{n: n, plan: PlanFor(n)}
}

// plan2DCache holds one immutable *Plan2D per size, sharing the 1-D
// plan cache underneath.
var plan2DCache sync.Map // int -> *Plan2D

// Plan2DFor returns the shared cached 2-D plan for size n×n, building
// it on first use. Safe for concurrent use.
func Plan2DFor(n int) *Plan2D {
	if p, ok := plan2DCache.Load(n); ok {
		return p.(*Plan2D)
	}
	p, _ := plan2DCache.LoadOrStore(n, NewPlan2D(n))
	return p.(*Plan2D)
}

// N returns the per-axis transform size.
func (p *Plan2D) N() int { return p.n }

// Forward transforms x (row-major, length n*n) in place.
func (p *Plan2D) Forward(x []complex64) { p.apply(x, (*Plan).Forward) }

// Inverse inverse-transforms x in place, including full 1/n² scaling.
func (p *Plan2D) Inverse(x []complex64) { p.apply(x, (*Plan).Inverse) }

func (p *Plan2D) apply(x []complex64, f func(*Plan, []complex64)) {
	n := p.n
	if len(x) != n*n {
		panic(fmt.Sprintf("fft: 2-D input length %d does not match %d×%d", len(x), n, n))
	}
	// Rows.
	for r := 0; r < n; r++ {
		f(p.plan, x[r*n:(r+1)*n])
	}
	// Columns via gather/scatter through arena scratch.
	ws := workspace.Get()
	defer workspace.Put(ws)
	col := ws.Complex64Uninit(n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = x[r*n+c]
		}
		f(p.plan, col)
		for r := 0; r < n; r++ {
			x[r*n+c] = col[r]
		}
	}
}

// ForwardRealInto zero-pads a real-valued h×w image into the caller's
// n×n complex grid and transforms it in place. Every grid element is
// written (the pad region is cleared), so an uninitialised arena
// carve-out is a valid destination.
func (p *Plan2D) ForwardRealInto(img []float32, h, w int, grid []complex64) {
	n := p.n
	if h > n || w > n {
		panic(fmt.Sprintf("fft: real input %dx%d exceeds plan size %d", h, w, n))
	}
	if len(grid) != n*n {
		panic(fmt.Sprintf("fft: grid length %d does not match %d×%d", len(grid), n, n))
	}
	for r := 0; r < h; r++ {
		src := img[r*w : (r+1)*w]
		dst := grid[r*n : (r+1)*n]
		for c, v := range src {
			dst[c] = complex(v, 0)
		}
		clear(dst[w:])
	}
	clear(grid[h*n:])
	p.Forward(grid)
}

// ForwardReal transforms a real-valued h×w image zero-padded into a
// freshly allocated n×n complex grid and returns it. This is the
// padding step that inflates FFT-convolution memory usage: the filter
// (k×k) and the image (i×i) are both padded to the same n×n extent.
// Zero-allocation paths use ForwardRealInto with an arena grid instead.
func (p *Plan2D) ForwardReal(img []float32, h, w int) []complex64 {
	grid := make([]complex64, p.n*p.n)
	p.ForwardRealInto(img, h, w, grid)
	return grid
}

// InverseRealInto inverse-transforms grid in place and writes the real
// parts of the top-left h×w corner (offset by offH/offW) into out.
func (p *Plan2D) InverseRealInto(grid []complex64, out []float32, h, w, offH, offW int) {
	n := p.n
	p.Inverse(grid)
	for r := 0; r < h; r++ {
		src := grid[(r+offH)*n:]
		dst := out[r*w : (r+1)*w]
		for c := range dst {
			dst[c] = real(src[c+offW])
		}
	}
}

// BatchForwardReal transforms count images in parallel. images[i] must
// be an h×w real image; the result slice holds count frequency grids.
func (p *Plan2D) BatchForwardReal(images [][]float32, h, w int) [][]complex64 {
	out := make([][]complex64, len(images))
	par.ForEach(len(images), func(i int) {
		out[i] = p.ForwardReal(images[i], h, w)
	})
	return out
}

// FLOPs1D returns the approximate real-flop cost of one length-n
// radix-2 transform: 5 n log2(n) (the standard split-radix-free count).
func FLOPs1D(n int) float64 {
	if n <= 1 {
		return 0
	}
	log2 := 0
	for m := n; m > 1; m >>= 1 {
		log2++
	}
	return 5 * float64(n) * float64(log2)
}

// FLOPs2D returns the approximate real-flop cost of one n×n transform
// (2n row/column transforms of length n).
func FLOPs2D(n int) float64 {
	return 2 * float64(n) * FLOPs1D(n)
}
