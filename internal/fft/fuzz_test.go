package fft

import (
	"testing"

	"gpucnn/internal/tensor"
)

// FuzzRoundTrip drives the forward/inverse identity with fuzzed seeds
// and transform sizes; under plain `go test` the seed corpus runs as
// unit cases, and `go test -fuzz=FuzzRoundTrip` explores further.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint64(1), uint8(4))
	f.Add(uint64(42), uint8(7))
	f.Add(uint64(12345), uint8(1))
	f.Fuzz(func(t *testing.T, seed uint64, logN uint8) {
		n := 1 << (uint(logN)%9 + 1) // 2..512
		r := tensor.NewRNG(seed)
		x := make([]complex64, n)
		for i := range x {
			x[i] = complex(2*r.Float32()-1, 2*r.Float32()-1)
		}
		p := NewPlan(n)
		y := append([]complex64(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := cdist(x, y); d > 1e-3 {
			t.Fatalf("n=%d seed=%d: round-trip error %g", n, seed, d)
		}
		// DIF must agree with DIT on the same input.
		a := append([]complex64(nil), x...)
		b := append([]complex64(nil), x...)
		p.Forward(a)
		p.ForwardDIF(b)
		if d := cdist(a, b); d > 1e-3 {
			t.Fatalf("n=%d seed=%d: DIF/DIT mismatch %g", n, seed, d)
		}
	})
}
