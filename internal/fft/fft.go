// Package fft implements the Fast Fourier Transform machinery behind the
// FFT-based convolution strategy (fbfft, Theano-fft). It provides an
// iterative radix-2 decimation-in-time transform, a decimation-in-
// frequency variant (fbfft's decimateInFrequency kernel uses DIF), 2-D
// transforms, and a naive DFT used as the correctness oracle in tests.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// NextPow2 returns the smallest power of two >= n (and >= 1). FFT-based
// convolution pads spatial extents to this size, which is the source of
// the dramatic memory-usage fluctuations the paper reports for fbfft.
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool {
	return n > 0 && n&(n-1) == 0
}

// twiddles[k] = exp(-2πi k / n) for k in [0, n/2).
func twiddles(n int, inverse bool) []complex64 {
	tw := make([]complex64, n/2)
	sign := -2 * math.Pi / float64(n)
	if inverse {
		sign = -sign
	}
	for k := range tw {
		s, c := math.Sincos(sign * float64(k))
		tw[k] = complex(float32(c), float32(s))
	}
	return tw
}

// Plan caches twiddle factors and the bit-reversal permutation for a
// fixed power-of-two length, so repeated transforms (one per image row,
// per channel, per batch element) don't recompute trigonometry.
type Plan struct {
	n       int
	forward []complex64
	inverse []complex64
	rev     []int
}

// NewPlan builds a transform plan for length n, which must be a power
// of two.
func NewPlan(n int) *Plan {
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: plan length %d is not a power of two", n))
	}
	p := &Plan{n: n, forward: twiddles(n, false), inverse: twiddles(n, true)}
	p.rev = make([]int, n)
	shift := bits.LeadingZeros(uint(n)) + 1
	for i := range p.rev {
		p.rev[i] = int(bits.Reverse(uint(i)) >> shift)
	}
	return p
}

// N returns the plan's transform length.
func (p *Plan) N() int { return p.n }

// planCache holds one immutable *Plan per transform size. Plans are
// read-only after construction, so a cached plan is safe to share
// across goroutines; under a concurrent first-use race sync.Map keeps
// exactly one winner.
var planCache sync.Map // int -> *Plan

// PlanFor returns the shared cached plan for length n (a power of two),
// building it on first use. Convolution engines transform thousands of
// rows per pass at one or two sizes; caching makes the twiddle tables
// and bit-reversal permutation a one-time cost per size instead of a
// per-call one.
func PlanFor(n int) *Plan {
	if p, ok := planCache.Load(n); ok {
		return p.(*Plan)
	}
	p, _ := planCache.LoadOrStore(n, NewPlan(n))
	return p.(*Plan)
}

// Forward performs an in-place forward DFT of x (length must equal the
// plan length) using iterative radix-2 decimation in time.
func (p *Plan) Forward(x []complex64) { p.transform(x, p.forward, false) }

// Inverse performs an in-place inverse DFT including the 1/n scaling.
func (p *Plan) Inverse(x []complex64) { p.transform(x, p.inverse, true) }

func (p *Plan) transform(x []complex64, tw []complex64, scale bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), n))
	}
	// Bit-reversal permutation.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterfly stages.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				w := tw[k]
				a := x[i]
				b := x[i+half] * w
				x[i] = a + b
				x[i+half] = a - b
				k += step
			}
		}
	}
	if scale {
		inv := complex(float32(1)/float32(n), 0)
		for i := range x {
			x[i] *= inv
		}
	}
}

// ForwardDIF performs an in-place forward DFT using decimation in
// frequency, leaving the output in natural order. Numerically it
// matches Forward; it exists because fbfft's hotspot kernel
// (decimateInFrequency) uses this schedule, and the kernel cost model
// keys off it.
func (p *Plan) ForwardDIF(x []complex64) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d does not match plan length %d", len(x), n))
	}
	tw := p.forward
	for size := n; size >= 2; size >>= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for i := start; i < start+half; i++ {
				a := x[i]
				b := x[i+half]
				x[i] = a + b
				x[i+half] = (a - b) * tw[k]
				k += step
			}
		}
	}
	// DIF leaves results bit-reversed; restore natural order.
	for i, j := range p.rev {
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// DFTNaive computes the O(n²) discrete Fourier transform, used as the
// oracle in tests. inverse selects the inverse transform with 1/n
// scaling.
func DFTNaive(x []complex64, inverse bool) []complex64 {
	n := len(x)
	out := make([]complex64, n)
	sign := -2 * math.Pi / float64(n)
	if inverse {
		sign = -sign
	}
	for k := 0; k < n; k++ {
		var acc complex128
		for t := 0; t < n; t++ {
			s, c := math.Sincos(sign * float64(k) * float64(t))
			acc += complex128(x[t]) * complex(c, s)
		}
		if inverse {
			acc /= complex(float64(n), 0)
		}
		out[k] = complex64(acc)
	}
	return out
}
