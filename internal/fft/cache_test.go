package fft

import (
	"math"
	"sync"
	"testing"
)

// TestPlanForReturnsSharedInstance verifies the cache hands every
// caller the same plan pointer for a size, including under concurrent
// first use.
func TestPlanForReturnsSharedInstance(t *testing.T) {
	const n = 64
	const goroutines = 16
	got := make([]*Plan, goroutines)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			got[g] = PlanFor(n)
		}(g)
	}
	start.Done()
	done.Wait()
	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatalf("PlanFor(%d) returned distinct plans under concurrency", n)
		}
	}
	if got[0] != PlanFor(n) {
		t.Fatalf("PlanFor(%d) not cached across calls", n)
	}
}

func TestPlan2DForReturnsSharedInstance(t *testing.T) {
	if Plan2DFor(32) != Plan2DFor(32) {
		t.Fatalf("Plan2DFor(32) not cached")
	}
	if Plan2DFor(32) == Plan2DFor(64) {
		t.Fatalf("Plan2DFor conflates sizes")
	}
}

// TestCachedPlanMatchesOracle runs a cached plan against the naive DFT
// to confirm cached twiddle tables are the correct ones.
func TestCachedPlanMatchesOracle(t *testing.T) {
	for _, n := range []int{2, 8, 32, 128} {
		p := PlanFor(n)
		x := make([]complex64, n)
		for i := range x {
			x[i] = complex(float32(i%5)-2, float32(i%3)-1)
		}
		want := DFTNaive(x, false)
		got := append([]complex64(nil), x...)
		p.Forward(got)
		for i := range want {
			if d := cmplxAbsDiff(want[i], got[i]); d > 1e-3*float64(n) {
				t.Fatalf("n=%d: cached plan diverges from DFT oracle at %d (want %v got %v)", n, i, want[i], got[i])
			}
		}
	}
}

// TestConcurrentTransformsShareOnePlan hammers one cached plan from
// many goroutines; failures here (or under -race) would indicate the
// plan is not read-only.
func TestConcurrentTransformsShareOnePlan(t *testing.T) {
	const n = 64
	p := PlanFor(n)
	ref := make([]complex64, n)
	for i := range ref {
		ref[i] = complex(float32(i), float32(-i))
	}
	want := DFTNaive(ref, false)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 50; it++ {
				x := append([]complex64(nil), ref...)
				p.Forward(x)
				for i := range want {
					if d := cmplxAbsDiff(want[i], x[i]); d > 1e-2*float64(n) {
						t.Errorf("concurrent transform diverged at %d", i)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

func cmplxAbsDiff(a, b complex64) float64 {
	return math.Hypot(float64(real(a)-real(b)), float64(imag(a)-imag(b)))
}

// TestForwardRealIntoClearsPadRegion feeds a dirty grid through
// ForwardRealInto and checks the result equals a transform of a clean
// zero-padded grid — i.e. the pad region is fully overwritten, which is
// what lets callers pass uninitialised arena carve-outs.
func TestForwardRealIntoClearsPadRegion(t *testing.T) {
	const n, h, w = 16, 5, 3
	p := Plan2DFor(n)
	img := make([]float32, h*w)
	for i := range img {
		img[i] = float32(i + 1)
	}
	clean := p.ForwardReal(img, h, w)
	dirty := make([]complex64, n*n)
	for i := range dirty {
		dirty[i] = complex(999, -999)
	}
	p.ForwardRealInto(img, h, w, dirty)
	for i := range clean {
		if d := cmplxAbsDiff(clean[i], dirty[i]); d > 1e-3 {
			t.Fatalf("dirty grid leaked into transform at %d: want %v got %v", i, clean[i], dirty[i])
		}
	}
}
