package fft

import (
	"math"
	"testing"
	"testing/quick"

	"gpucnn/internal/tensor"
)

func cdist(a, b []complex64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		v := math.Hypot(float64(real(d)), float64(imag(d)))
		if v > m {
			m = v
		}
	}
	return m
}

func randSignal(r *tensor.RNG, n int) []complex64 {
	x := make([]complex64, n)
	for i := range x {
		x[i] = complex(2*r.Float32()-1, 2*r.Float32()-1)
	}
	return x
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 127: 128, 128: 128, 129: 256, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 64, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) should be true", n)
		}
	}
	for _, n := range []int{0, -4, 3, 6, 100} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) should be false", n)
		}
	}
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		r := tensor.NewRNG(uint64(n))
		x := randSignal(r, n)
		want := DFTNaive(x, false)
		got := append([]complex64(nil), x...)
		NewPlan(n).Forward(got)
		if d := cdist(got, want); d > 1e-3 {
			t.Fatalf("n=%d: FFT differs from DFT by %g", n, d)
		}
	}
}

func TestDIFMatchesDIT(t *testing.T) {
	for _, n := range []int{2, 8, 32, 128} {
		r := tensor.NewRNG(uint64(100 + n))
		x := randSignal(r, n)
		p := NewPlan(n)
		a := append([]complex64(nil), x...)
		b := append([]complex64(nil), x...)
		p.Forward(a)
		p.ForwardDIF(b)
		if d := cdist(a, b); d > 1e-3 {
			t.Fatalf("n=%d: DIF differs from DIT by %g", n, d)
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 << (1 + r.Intn(8))
		x := randSignal(r, n)
		p := NewPlan(n)
		y := append([]complex64(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		return cdist(x, y) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearity(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 << (1 + r.Intn(6))
		x := randSignal(r, n)
		y := randSignal(r, n)
		p := NewPlan(n)
		sum := make([]complex64, n)
		for i := range sum {
			sum[i] = x[i] + y[i]
		}
		p.Forward(sum)
		p.Forward(x)
		p.Forward(y)
		for i := range x {
			x[i] += y[i]
		}
		return cdist(sum, x) < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	// sum |x|^2 == (1/n) sum |X|^2
	n := 128
	r := tensor.NewRNG(9)
	x := randSignal(r, n)
	var timeE float64
	for _, v := range x {
		timeE += float64(real(v))*float64(real(v)) + float64(imag(v))*float64(imag(v))
	}
	NewPlan(n).Forward(x)
	var freqE float64
	for _, v := range x {
		freqE += float64(real(v))*float64(real(v)) + float64(imag(v))*float64(imag(v))
	}
	if rel := math.Abs(timeE-freqE/float64(n)) / timeE; rel > 1e-4 {
		t.Fatalf("Parseval violated: time=%g freq/n=%g", timeE, freqE/float64(n))
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	n := 64
	x := make([]complex64, n)
	x[0] = 1
	NewPlan(n).Forward(x)
	for i, v := range x {
		if math.Hypot(float64(real(v)-1), float64(imag(v))) > 1e-5 {
			t.Fatalf("impulse bin %d = %v, want 1", i, v)
		}
	}
}

func TestNonPow2PlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two plan")
		}
	}()
	NewPlan(12)
}

func TestWrongLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input length")
		}
	}()
	NewPlan(8).Forward(make([]complex64, 4))
}

func Test2DRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 << (1 + r.Intn(5))
		x := randSignal(r, n*n)
		p := NewPlan2D(n)
		y := append([]complex64(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		return cdist(x, y) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func Test2DSeparability(t *testing.T) {
	// 2-D DFT of f(r,c) = g(r)*h(c) equals G(r)·H(c) outer product.
	n := 16
	r := tensor.NewRNG(10)
	g := randSignal(r, n)
	h := randSignal(r, n)
	grid := make([]complex64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			grid[i*n+j] = g[i] * h[j]
		}
	}
	NewPlan2D(n).Forward(grid)
	p := NewPlan(n)
	G := append([]complex64(nil), g...)
	H := append([]complex64(nil), h...)
	p.Forward(G)
	p.Forward(H)
	want := make([]complex64, n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i*n+j] = G[i] * H[j]
		}
	}
	if d := cdist(grid, want); d > 1e-2 {
		t.Fatalf("2-D separability violated: %g", d)
	}
}

func TestForwardRealPadding(t *testing.T) {
	// A real 2x2 image in an 8x8 grid: DC bin must equal the pixel sum.
	img := []float32{1, 2, 3, 4}
	p := NewPlan2D(8)
	grid := p.ForwardReal(img, 2, 2)
	if math.Abs(float64(real(grid[0]))-10) > 1e-4 || math.Abs(float64(imag(grid[0]))) > 1e-4 {
		t.Fatalf("DC bin = %v, want 10", grid[0])
	}
}

func TestInverseRealIntoOffset(t *testing.T) {
	// Forward then inverse with an offset crop recovers the shifted image.
	n := 8
	img := make([]float32, n*n)
	r := tensor.NewRNG(11)
	for i := range img {
		img[i] = r.Float32()
	}
	p := NewPlan2D(n)
	grid := p.ForwardReal(img, n, n)
	out := make([]float32, 4*4)
	p.InverseRealInto(grid, out, 4, 4, 2, 3)
	for rr := 0; rr < 4; rr++ {
		for cc := 0; cc < 4; cc++ {
			want := img[(rr+2)*n+cc+3]
			if math.Abs(float64(out[rr*4+cc]-want)) > 1e-4 {
				t.Fatalf("offset crop wrong at (%d,%d)", rr, cc)
			}
		}
	}
}

func TestBatchForwardRealMatchesSerial(t *testing.T) {
	p := NewPlan2D(16)
	r := tensor.NewRNG(12)
	images := make([][]float32, 9)
	for i := range images {
		images[i] = make([]float32, 10*12)
		for j := range images[i] {
			images[i][j] = r.Float32()
		}
	}
	batch := p.BatchForwardReal(images, 10, 12)
	for i := range images {
		want := p.ForwardReal(images[i], 10, 12)
		if d := cdist(batch[i], want); d != 0 {
			t.Fatalf("batch transform %d differs by %g", i, d)
		}
	}
}

func TestFLOPCounts(t *testing.T) {
	if FLOPs1D(1) != 0 {
		t.Fatal("length-1 transform should be free")
	}
	if got := FLOPs1D(8); got != 5*8*3 {
		t.Fatalf("FLOPs1D(8) = %v, want 120", got)
	}
	if got := FLOPs2D(8); got != 2*8*120 {
		t.Fatalf("FLOPs2D(8) = %v, want 1920", got)
	}
}

func TestConvolutionTheorem(t *testing.T) {
	// Circular convolution via FFT equals direct circular convolution.
	n := 32
	r := tensor.NewRNG(13)
	x := make([]float32, n)
	h := make([]float32, n)
	for i := range x {
		x[i] = 2*r.Float32() - 1
		h[i] = 2*r.Float32() - 1
	}
	// Direct circular convolution.
	want := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want[i] += float64(x[j]) * float64(h[(i-j+n)%n])
		}
	}
	// FFT path.
	X := make([]complex64, n)
	H := make([]complex64, n)
	for i := 0; i < n; i++ {
		X[i] = complex(x[i], 0)
		H[i] = complex(h[i], 0)
	}
	p := NewPlan(n)
	p.Forward(X)
	p.Forward(H)
	for i := range X {
		X[i] *= H[i]
	}
	p.Inverse(X)
	for i := 0; i < n; i++ {
		if math.Abs(float64(real(X[i]))-want[i]) > 1e-3 {
			t.Fatalf("convolution theorem violated at %d: %v vs %v", i, real(X[i]), want[i])
		}
	}
}
