package fft

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"gpucnn/internal/tensor"
)

// TestHermitianSymmetry: the DFT of a real signal satisfies
// X[k] = conj(X[n-k]).
func TestHermitianSymmetry(t *testing.T) {
	f := func(seed uint64) bool {
		r := tensor.NewRNG(seed)
		n := 1 << (2 + r.Intn(6))
		x := make([]complex64, n)
		for i := range x {
			x[i] = complex(2*r.Float32()-1, 0)
		}
		NewPlan(n).Forward(x)
		for k := 1; k < n; k++ {
			a := x[k]
			b := x[n-k]
			if math.Abs(float64(real(a)-real(b))) > 1e-3 ||
				math.Abs(float64(imag(a)+imag(b))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShiftTheorem: a circular shift multiplies the spectrum by a
// phase factor; magnitudes are invariant.
func TestShiftTheorem(t *testing.T) {
	n := 64
	r := tensor.NewRNG(21)
	x := randSignal(r, n)
	shifted := make([]complex64, n)
	for i := range x {
		shifted[(i+5)%n] = x[i]
	}
	p := NewPlan(n)
	X := append([]complex64(nil), x...)
	S := append([]complex64(nil), shifted...)
	p.Forward(X)
	p.Forward(S)
	for k := 0; k < n; k++ {
		magX := math.Hypot(float64(real(X[k])), float64(imag(X[k])))
		magS := math.Hypot(float64(real(S[k])), float64(imag(S[k])))
		if math.Abs(magX-magS) > 1e-3 {
			t.Fatalf("bin %d magnitude changed under shift: %v vs %v", k, magX, magS)
		}
	}
}

// TestPlanIsConcurrencySafe: a single plan may be used from many
// goroutines on separate buffers (the convolution engines do exactly
// this through par.ForEach).
func TestPlanIsConcurrencySafe(t *testing.T) {
	p := NewPlan(256)
	r := tensor.NewRNG(22)
	inputs := make([][]complex64, 32)
	want := make([][]complex64, 32)
	for i := range inputs {
		inputs[i] = randSignal(r, 256)
		want[i] = append([]complex64(nil), inputs[i]...)
		p.Forward(want[i])
	}
	var wg sync.WaitGroup
	got := make([][]complex64, len(inputs))
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := append([]complex64(nil), inputs[i]...)
			p.Forward(buf)
			got[i] = buf
		}(i)
	}
	wg.Wait()
	for i := range inputs {
		if cdist(got[i], want[i]) != 0 {
			t.Fatalf("concurrent transform %d differs", i)
		}
	}
}

// TestDIFInverseRoundTrip: DIF forward composed with the (DIT) inverse
// is the identity.
func TestDIFInverseRoundTrip(t *testing.T) {
	n := 128
	r := tensor.NewRNG(23)
	x := randSignal(r, n)
	p := NewPlan(n)
	y := append([]complex64(nil), x...)
	p.ForwardDIF(y)
	p.Inverse(y)
	if d := cdist(x, y); d > 1e-4 {
		t.Fatalf("DIF/inverse round trip error %g", d)
	}
}

// TestLengthOnePlan: n=1 must be the identity transform.
func TestLengthOnePlan(t *testing.T) {
	p := NewPlan(1)
	x := []complex64{complex(3, -2)}
	p.Forward(x)
	if x[0] != complex(3, -2) {
		t.Fatalf("length-1 forward = %v", x[0])
	}
	p.Inverse(x)
	if x[0] != complex(3, -2) {
		t.Fatalf("length-1 inverse = %v", x[0])
	}
}

// Test2DLinearity on the 2-D transform.
func Test2DLinearity(t *testing.T) {
	n := 16
	r := tensor.NewRNG(24)
	a := randSignal(r, n*n)
	b := randSignal(r, n*n)
	sum := make([]complex64, n*n)
	for i := range sum {
		sum[i] = a[i] + b[i]
	}
	p := NewPlan2D(n)
	p.Forward(sum)
	p.Forward(a)
	p.Forward(b)
	for i := range a {
		a[i] += b[i]
	}
	if d := cdist(sum, a); d > 1e-2 {
		t.Fatalf("2-D linearity violated: %g", d)
	}
}
