package impls

import (
	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// theanoLegacyEngine models Theano-legacy, the direct-convolution
// implementation the paper's Section II.B names as the other
// representative of the direct strategy (next to cuda-convnet2) but
// does not include in the seven-way evaluation — so it lives in
// Extensions(). It is the naive GPU port of the nested convolution
// loops: one thread per output element, no register blocking, heavy
// uncoalesced global traffic — the baseline every optimised
// implementation is implicitly compared against.
type theanoLegacyEngine struct{}

// NewTheanoLegacy returns the Theano-legacy direct-convolution engine.
func NewTheanoLegacy() Engine { return &theanoLegacyEngine{} }

func (e *theanoLegacyEngine) Name() string            { return "Theano-legacy" }
func (e *theanoLegacyEngine) Strategy() conv.Strategy { return conv.Direct }

// Supports: the naive loops accept any shape.
func (e *theanoLegacyEngine) Supports(cfg conv.Config) error { return cfg.Validate() }

func (e *theanoLegacyEngine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *theanoLegacyEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, true)
}

func (e *theanoLegacyEngine) plan(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	cfg = cfg.WithDefaults()
	if err := e.Supports(cfg); err != nil {
		return nil, err
	}
	bs := &bufSet{dev: dev}
	// Direct convolution: no workspace at all, like cuda-convnet2 but
	// without the in-place gradient tricks.
	if err := bs.allocTrainingSet(cfg, false, false, shared); err != nil {
		bs.release()
		return nil, err
	}
	return &theanoLegacyPlan{dev: dev, cfg: cfg, bufs: bs}, nil
}

type theanoLegacyPlan struct {
	dev  *gpusim.Device
	cfg  conv.Config
	bufs *bufSet
}

func (p *theanoLegacyPlan) Config() conv.Config { return p.cfg }
func (p *theanoLegacyPlan) Release()            { p.bufs.release() }

func (p *theanoLegacyPlan) spec(name string) gpusim.KernelSpec {
	cfg := p.cfg
	o := cfg.Out()
	// One thread per output pixel; every thread re-reads its receptive
	// field from global memory — the naive pattern with k²·c reloads.
	flops := cfg.ForwardFLOPs()
	reload := float64(cfg.Batch*cfg.Filters*o*o) * float64(cfg.Channels*cfg.Kernel*cfg.Kernel) * 4
	return gpusim.KernelSpec{
		Name:             name,
		Grid:             gpusim.Dim3{X: (cfg.Batch*cfg.Filters*o*o + 255) / 256},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    40,
		FLOPs:            flops,
		GlobalLoadBytes:  reload,
		GlobalStoreBytes: float64(cfg.OutputBytes()),
		LoadTransPerReq:  4.0,
		StoreTransPerReq: 1.2,
		L2HitFrac:        0.92, // the k² reloads mostly hit cache, but not free
		ActiveThreadFrac: 0.97,
		ILP:              1,
		EfficiencyScale:  0.5,
	}
}

func (p *theanoLegacyPlan) Forward(x, w, y *tensor.Tensor) error {
	defer beginPhase(p.dev, "forward")()
	if _, err := p.dev.Launch(p.spec("conv_patch_stack")); err != nil {
		return err
	}
	if x != nil {
		conv.DirectForward(p.cfg, x, w, y)
	}
	return nil
}

func (p *theanoLegacyPlan) BackwardData(dy, w, dx *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_data")()
	if _, err := p.dev.Launch(p.spec("conv_grad_input")); err != nil {
		return err
	}
	if dy != nil {
		conv.DirectBackwardData(p.cfg, dy, w, dx)
	}
	return nil
}

func (p *theanoLegacyPlan) BackwardFilter(x, dy, dw *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_filter")()
	if _, err := p.dev.Launch(p.spec("conv_grad_weight")); err != nil {
		return err
	}
	if x != nil {
		conv.DirectBackwardFilter(p.cfg, x, dy, dw)
	}
	return nil
}

func (p *theanoLegacyPlan) Inference() error {
	transferPolicy{pinned: false, async: false}.doTransfer(p.dev, p.cfg)
	return p.Forward(nil, nil, nil)
}

func (p *theanoLegacyPlan) Iteration() error {
	// Theano stages batches synchronously through pageable memory.
	transferPolicy{pinned: false, async: false}.doTransfer(p.dev, p.cfg)
	if err := p.Forward(nil, nil, nil); err != nil {
		return err
	}
	if err := p.BackwardData(nil, nil, nil); err != nil {
		return err
	}
	return p.BackwardFilter(nil, nil, nil)
}
