// Package impls contains the seven convolution implementations the
// paper compares: Caffe, cuDNN(v3), Torch-cunn, Theano-CorrMM,
// Theano-fft, cuda-convnet2, and fbfft. Each engine couples a real
// (CPU-executed, goroutine-parallel) convolution from internal/conv
// with a GPU cost model: the kernel sequence it would launch, each
// kernel's resource usage (Table II), access-pattern behaviour, shape
// limitations, device-memory workspace policy, and host↔device
// transfer policy. Running a plan therefore yields both a numerically
// correct result and the simulated runtime, memory and nvprof metrics
// the paper reports.
//
// The engines' numerics inherit the zero-allocation discipline of
// internal/conv: every strategy function carves its scratch (im2col
// column matrices, FFT grids, Winograd transform banks, GEMM packing
// panels) from internal/workspace arenas and dispatches pooled jobs
// through internal/par, so steady-state Forward/BackwardData/
// BackwardFilter passes do not touch the Go heap.
package impls

import (
	"fmt"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// Engine is one of the seven convolution implementations.
type Engine interface {
	// Name returns the implementation name as used in the paper.
	Name() string
	// Strategy returns the convolution family the engine follows.
	Strategy() conv.Strategy
	// Supports returns nil if the engine can run the configuration, or
	// an error describing the shape limitation it violates.
	Supports(cfg conv.Config) error
	// Plan allocates device memory for the configuration and returns an
	// executable plan. The caller must Release the plan.
	Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error)
	// PlanShared is Plan for use inside a network whose activation and
	// gradient tensors are owned by the framework and shared between
	// layers: only the engine's weights and private workspace are
	// allocated.
	PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error)
}

// Plan is a convolution layer instantiated on a device. The tensor
// arguments of the passes may all be nil, in which case the pass is
// simulated (kernels launched, clock advanced, metrics recorded) but no
// arithmetic is performed — that is how the large benchmark sweeps run.
type Plan interface {
	Config() conv.Config
	// Forward computes y = x ⋆ w.
	Forward(x, w, y *tensor.Tensor) error
	// BackwardData computes dx from dy and w.
	BackwardData(dy, w, dx *tensor.Tensor) error
	// BackwardFilter computes dw from x and dy.
	BackwardFilter(x, dy, dw *tensor.Tensor) error
	// Iteration simulates one full training iteration: the input-batch
	// transfer (per the engine's transfer policy) plus forward,
	// backward-data and backward-filter passes.
	Iteration() error
	// Inference simulates one forward-only serving pass: the input-batch
	// transfer (per the engine's transfer policy) plus the forward pass.
	// This is the unit of work an inference server dispatches per batch.
	Inference() error
	// Release frees the plan's device memory.
	Release()
}

// bufSet tracks device buffers for bulk release.
type bufSet struct {
	dev  *gpusim.Device
	bufs []*gpusim.Buffer
}

// alloc reserves device memory or returns the allocation error
// (typically gpusim.OOMError when a sweep exceeds the 12 GB card).
func (b *bufSet) alloc(bytes int64, tag string) error {
	buf, err := b.dev.Mem.Alloc(bytes, tag)
	if err != nil {
		return err
	}
	b.bufs = append(b.bufs, buf)
	return nil
}

func (b *bufSet) release() {
	for _, buf := range b.bufs {
		buf.Free()
	}
	b.bufs = nil
}

// allocTrainingSet reserves the resident tensors of a training
// iteration. Engines differ in how many gradient buffers they keep
// live (inPlaceGrads drops one output-sized buffer, the Torch-cunn
// buffer-reuse behaviour; reuseInputGrad drops the input-gradient
// buffer, cuda-convnet2's in-place trick). With shared set, activation
// and activation-gradient buffers are owned by the enclosing framework
// and only the weights are reserved here.
func (b *bufSet) allocTrainingSet(cfg conv.Config, inPlaceGrads, reuseInputGrad, shared bool) error {
	if err := b.alloc(cfg.FilterBytes(), "weights"); err != nil {
		return err
	}
	if err := b.alloc(cfg.FilterBytes(), "weight-grad"); err != nil {
		return err
	}
	if shared {
		return nil
	}
	if err := b.alloc(cfg.InputBytes(), "input"); err != nil {
		return err
	}
	if err := b.alloc(cfg.OutputBytes(), "output"); err != nil {
		return err
	}
	if !inPlaceGrads {
		if err := b.alloc(cfg.OutputBytes(), "output-grad"); err != nil {
			return err
		}
	}
	if !reuseInputGrad {
		if err := b.alloc(cfg.InputBytes(), "input-grad"); err != nil {
			return err
		}
	}
	return nil
}

// phaser is the slice of internal/telemetry's Recorder the engines
// need: opening a named phase span under whatever span is currently
// collecting the device's events. Declared locally so impls carries no
// telemetry dependency.
type phaser interface {
	StartPhase(name string) func()
}

// beginPhase opens a telemetry phase span ("forward", "backward_data",
// "backward_filter", "h2d") on the device's event sink, returning the
// closure that ends it. A no-op when no hierarchical sink is installed.
func beginPhase(dev *gpusim.Device, name string) func() {
	if ph, ok := dev.Sink().(phaser); ok {
		return ph.StartPhase(name)
	}
	return func() {}
}

// transferPolicy describes how an implementation moves the input batch
// to the device each iteration — the behaviour behind Figure 7.
type transferPolicy struct {
	pinned bool    // page-locked staging buffers
	async  bool    // overlapped with compute (Caffe's prefetch thread)
	factor float64 // bytes moved as a multiple of the input batch size

	// spillThreshold/spillFactor model Theano-CorrMM's pathological
	// Conv2 behaviour: when the input batch exceeds the graph
	// optimiser's staging threshold, the tensor makes extra host
	// round-trips, blowing the transfer share past 60% of runtime.
	spillThreshold int64
	spillFactor    float64
}

// doTransfer simulates the iteration's host→device traffic.
func (tp transferPolicy) doTransfer(dev *gpusim.Device, cfg conv.Config) {
	defer beginPhase(dev, "h2d")()
	f := tp.factor
	if f <= 0 {
		f = 1
	}
	if tp.spillThreshold > 0 && cfg.InputBytes() > tp.spillThreshold {
		f += tp.spillFactor
	}
	dev.Copy(gpusim.Transfer{
		Bytes:  int64(float64(cfg.InputBytes()) * f),
		Pinned: tp.pinned,
		Async:  tp.async,
	})
}

// errUnsupported builds the standard shape-limitation error.
func errUnsupported(engine string, cfg conv.Config, reason string) error {
	return fmt.Errorf("%s does not support %v: %s", engine, cfg, reason)
}
