package impls

import (
	"math"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// cudnnEngine models cuDNN v3 as evaluated in the paper (inside Caffe):
// an unrolling-strategy implementation whose tiled matrix multiply is
// fused with the unrolling and runs almost entirely out of shared
// memory ("the unrolling operations and matrix-matrix multiplications
// are optimized by using shared memory and tiled matrix multiplication").
// Its compute kernels therefore report 0% global-load efficiency in the
// profile (all operands staged through shared memory), while small
// precompute kernels carry the tensor traffic at poor coalescing — both
// effects the paper observes in Figure 6.
type cudnnEngine struct{}

// NewCuDNN returns the cuDNN v3 engine.
func NewCuDNN() Engine { return &cudnnEngine{} }

func (e *cudnnEngine) Name() string            { return "cuDNN" }
func (e *cudnnEngine) Strategy() conv.Strategy { return conv.Unrolling }

// Supports: cuDNN accepts any shape.
func (e *cudnnEngine) Supports(cfg conv.Config) error { return cfg.Validate() }

func (e *cudnnEngine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *cudnnEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, true)
}

func (e *cudnnEngine) plan(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	cfg = cfg.WithDefaults()
	if err := e.Supports(cfg); err != nil {
		return nil, err
	}
	bs := &bufSet{dev: dev}
	if err := bs.allocTrainingSet(cfg, false, false, shared); err != nil {
		bs.release()
		return nil, err
	}
	// cuDNN keeps no explicit column buffer but requests an algorithm
	// workspace slightly larger than one (it trades memory for speed —
	// the paper notes it "consumes more memory than other
	// unrolling-based implementations to achieve a better performance").
	workspace := geomColBytes(cfg) + 24<<20
	if err := bs.alloc(workspace, "cudnn-workspace"); err != nil {
		bs.release()
		return nil, err
	}
	return &cudnnPlan{dev: dev, cfg: cfg, bufs: bs}, nil
}

type cudnnPlan struct {
	dev  *gpusim.Device
	cfg  conv.Config
	bufs *bufSet
}

func (p *cudnnPlan) Config() conv.Config { return p.cfg }
func (p *cudnnPlan) Release()            { p.bufs.release() }

// computeSpec is the batched implicit-GEMM kernel: the whole pass is
// one launch over all images (unlike Caffe's per-image loop), computing
// from shared memory with broadcast-friendly tiles.
func (p *cudnnPlan) computeSpec(name string, m, n, k int) gpusim.KernelSpec {
	rowUtil := float64(m) / 96
	if rowUtil > 1 {
		rowUtil = 1
	}
	kUtil := float64(k) / 96
	if kUtil > 1 {
		kUtil = 1
	}
	// Sub-linear reduction-depth utilisation: the fused pipeline
	// tolerates short k better than a plain GEMM.
	kTerm := 0.5 + 0.5*math.Pow(kUtil, 0.7)
	eff := 0.95 * (0.45 + 0.55*rowUtil) * kTerm
	flops := 2 * float64(m) * float64(n) * float64(k) * float64(p.cfg.Batch)
	return gpusim.KernelSpec{
		Name:           name,
		Grid:           gpusim.Dim3{X: p.cfg.Batch * ((m + 63) / 64) * ((n + 63) / 64)},
		Block:          gpusim.Dim3{X: 256},
		RegsPerThread:  80,   // Table II
		SharedPerBlock: 8602, // Table II: 8.4 KB
		FLOPs:          flops,
		// Operands are staged by the precompute kernel; the compute
		// kernel issues no global requests of its own, so nvprof
		// reports 0% gld/gst efficiency for it.
		UsesShared:       true,
		SharedBroadcast:  1.35, // paper: "over 130% in most cases"
		BankConflictRate: 0.03,
		ActiveThreadFrac: 0.99,
		ILP:              3,
		EfficiencyScale:  eff,
		OccupancyDerate:  0.92,
	}
}

// stageSpec is the per-pass staging/precompute kernel that moves the
// pass's tensors through global memory with mediocre coalescing.
func (p *cudnnPlan) stageSpec(bytes float64) gpusim.KernelSpec {
	return gpusim.KernelSpec{
		Name:             "cudnn_precompute_stage",
		Grid:             gpusim.Dim3{X: int(bytes/4/256) + 1},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    64,
		FLOPs:            bytes / 8,
		GlobalLoadBytes:  bytes * 0.6,
		GlobalStoreBytes: bytes * 0.4,
		LoadTransPerReq:  3.6,
		StoreTransPerReq: 2.8,
		L2HitFrac:        0.45,
		ActiveThreadFrac: 0.98,
		ILP:              2,
		EfficiencyScale:  0.9,
	}
}

func (p *cudnnPlan) passBytes() float64 {
	return float64(p.cfg.InputBytes() + p.cfg.OutputBytes() + p.cfg.FilterBytes())
}

func (p *cudnnPlan) gemmDims() (m, n, k int) {
	o := p.cfg.Out()
	return p.cfg.Filters, o * o, p.cfg.Channels * p.cfg.Kernel * p.cfg.Kernel
}

func (p *cudnnPlan) Forward(x, w, y *tensor.Tensor) error {
	defer beginPhase(p.dev, "forward")()
	m, n, k := p.gemmDims()
	if _, err := p.dev.Launch(p.stageSpec(p.passBytes())); err != nil {
		return err
	}
	if _, err := p.dev.Launch(p.computeSpec("cudnn_gemm", m, n, k)); err != nil {
		return err
	}
	if x != nil {
		conv.UnrollForward(p.cfg, x, w, y)
	}
	return nil
}

func (p *cudnnPlan) BackwardData(dy, w, dx *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_data")()
	m, n, k := p.gemmDims()
	if _, err := p.dev.Launch(p.stageSpec(p.passBytes())); err != nil {
		return err
	}
	if _, err := p.dev.Launch(p.computeSpec("cudnn_gemm", k, n, m)); err != nil {
		return err
	}
	if dy != nil {
		conv.UnrollBackwardData(p.cfg, dy, w, dx)
	}
	return nil
}

func (p *cudnnPlan) BackwardFilter(x, dy, dw *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_filter")()
	m, n, k := p.gemmDims()
	if _, err := p.dev.Launch(p.stageSpec(p.passBytes())); err != nil {
		return err
	}
	if _, err := p.dev.Launch(p.computeSpec("wgrad_alg0_engine", m, k, n)); err != nil {
		return err
	}
	if x != nil {
		conv.UnrollBackwardFilter(p.cfg, x, dy, dw)
	}
	return nil
}

func (p *cudnnPlan) Inference() error {
	transferPolicy{pinned: true, async: true}.doTransfer(p.dev, p.cfg)
	return p.Forward(nil, nil, nil)
}

func (p *cudnnPlan) Iteration() error {
	// cuDNN was profiled inside Caffe, inheriting its pinned prefetch
	// thread: transfers are hidden (≈0% in Figure 7).
	transferPolicy{pinned: true, async: true}.doTransfer(p.dev, p.cfg)
	if err := p.Forward(nil, nil, nil); err != nil {
		return err
	}
	if err := p.BackwardData(nil, nil, nil); err != nil {
		return err
	}
	return p.BackwardFilter(nil, nil, nil)
}
