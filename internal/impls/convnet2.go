package impls

import (
	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// convnet2Engine models cuda-convnet2: direct convolution in CHWN
// layout with aggressive register blocking. Its kernels use 116
// registers per thread and 16 KB of shared memory per block (Table II),
// which caps theoretical occupancy at ~17 resident warps per SM — the
// paper measures 14–22% achieved occupancy — and the kernels compensate
// with high instruction-level parallelism. The batch dimension is the
// innermost vector axis, so throughput peaks when the mini-batch is a
// multiple of the 128-image register tile and degrades off-multiple.
type convnet2Engine struct{}

// NewCudaConvnet2 returns the cuda-convnet2 engine.
func NewCudaConvnet2() Engine { return &convnet2Engine{} }

func (e *convnet2Engine) Name() string            { return "cuda-convnet2" }
func (e *convnet2Engine) Strategy() conv.Strategy { return conv.Direct }

// Supports enforces the paper's reported shape limitations: square
// inputs and kernels (our Config is always square), mini-batch a
// multiple of 32, and filter count a multiple of 16.
func (e *convnet2Engine) Supports(cfg conv.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Batch%32 != 0 {
		return errUnsupported(e.Name(), cfg, "mini-batch size must be a multiple of 32")
	}
	if cfg.Filters%16 != 0 {
		return errUnsupported(e.Name(), cfg, "filter number must be a multiple of 16")
	}
	return nil
}

func (e *convnet2Engine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *convnet2Engine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, true)
}

func (e *convnet2Engine) plan(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	cfg = cfg.WithDefaults()
	if err := e.Supports(cfg); err != nil {
		return nil, err
	}
	bs := &bufSet{dev: dev}
	// Direct convolution needs no unrolling workspace, and
	// cuda-convnet2 computes both gradients in place (the output
	// gradient overwrites the activations, the input gradient the
	// inputs) — the paper's most memory-frugal implementation.
	if err := bs.allocTrainingSet(cfg, true, true, shared); err != nil {
		bs.release()
		return nil, err
	}
	return &convnet2Plan{dev: dev, cfg: cfg, bufs: bs}, nil
}

type convnet2Plan struct {
	dev  *gpusim.Device
	cfg  conv.Config
	bufs *bufSet
}

func (p *convnet2Plan) Config() conv.Config { return p.cfg }
func (p *convnet2Plan) Release()            { p.bufs.release() }

// batchEff returns the efficiency of the 128-wide register tile for
// this mini-batch: full at multiples of 128, degraded on the narrower
// fallback paths.
func (p *convnet2Plan) batchEff() float64 {
	switch {
	case p.cfg.Batch%128 == 0:
		return 0.74
	case p.cfg.Batch%64 == 0:
		return 0.60
	default: // multiples of 32
		return 0.42
	}
}

func (p *convnet2Plan) kernelSpec(name string) gpusim.KernelSpec {
	cfg := p.cfg
	flops := cfg.ForwardFLOPs() // each pass moves the same madd volume
	tensorBytes := float64(cfg.InputBytes() + cfg.OutputBytes() + cfg.FilterBytes())
	o := cfg.Out()
	return gpusim.KernelSpec{
		Name:           name,
		Grid:           gpusim.Dim3{X: (cfg.Filters / 16) * o * ((cfg.Batch + 127) / 128)},
		Block:          gpusim.Dim3{X: 256},
		RegsPerThread:  116,       // Table II
		SharedPerBlock: 16 * 1024, // Table II
		FLOPs:          flops,
		// CHWN layout makes batch-contiguous accesses perfectly
		// coalesced; the filter taps stream through shared memory.
		GlobalLoadBytes:  tensorBytes * 2.2,
		GlobalStoreBytes: tensorBytes * 0.4,
		LoadTransPerReq:  1.6,
		StoreTransPerReq: 1.3,
		L2HitFrac:        0.6,
		UsesShared:       true,
		SharedBroadcast:  1.05,
		BankConflictRate: 0.15,
		ActiveThreadFrac: 0.98,
		ILP:              6, // register blocking compensates the 25% occupancy cap
		EfficiencyScale:  p.batchEff(),
		OccupancyDerate:  0.75, // paper: 14-22% achieved vs 25% theoretical
	}
}

func (p *convnet2Plan) Forward(x, w, y *tensor.Tensor) error {
	defer beginPhase(p.dev, "forward")()
	if _, err := p.dev.Launch(p.kernelSpec("filterActs_YxX_color")); err != nil {
		return err
	}
	if x != nil {
		conv.DirectForward(p.cfg, x, w, y)
	}
	return nil
}

func (p *convnet2Plan) BackwardData(dy, w, dx *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_data")()
	if _, err := p.dev.Launch(p.kernelSpec("img_acts_color")); err != nil {
		return err
	}
	if dy != nil {
		conv.DirectBackwardData(p.cfg, dy, w, dx)
	}
	return nil
}

func (p *convnet2Plan) BackwardFilter(x, dy, dw *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_filter")()
	if _, err := p.dev.Launch(p.kernelSpec("conv_weight_acts_c_preload")); err != nil {
		return err
	}
	if x != nil {
		conv.DirectBackwardFilter(p.cfg, x, dy, dw)
	}
	return nil
}

func (p *convnet2Plan) Inference() error {
	transferPolicy{pinned: true, async: false}.doTransfer(p.dev, p.cfg)
	return p.Forward(nil, nil, nil)
}

func (p *convnet2Plan) Iteration() error {
	// The cuda-convnet2.torch wrapper stages inputs synchronously
	// through pinned memory (1–15% of runtime in Figure 7).
	transferPolicy{pinned: true, async: false}.doTransfer(p.dev, p.cfg)
	if err := p.Forward(nil, nil, nil); err != nil {
		return err
	}
	if err := p.BackwardData(nil, nil, nil); err != nil {
		return err
	}
	return p.BackwardFilter(nil, nil, nil)
}
