package impls

import (
	"errors"
	"strings"
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

func newDev() *gpusim.Device { return gpusim.New(gpusim.TeslaK40c()) }

func TestRegistryHasSevenEngines(t *testing.T) {
	all := All()
	if len(all) != 7 {
		t.Fatalf("expected 7 implementations, got %d", len(all))
	}
	want := map[string]conv.Strategy{
		"Caffe":         conv.Unrolling,
		"Torch-cunn":    conv.Unrolling,
		"Theano-CorrMM": conv.Unrolling,
		"Theano-fft":    conv.FFT,
		"cuDNN":         conv.Unrolling,
		"cuda-convnet2": conv.Direct,
		"fbfft":         conv.FFT,
	}
	for _, e := range all {
		strat, ok := want[e.Name()]
		if !ok {
			t.Errorf("unexpected engine %q", e.Name())
			continue
		}
		if e.Strategy() != strat {
			t.Errorf("%s strategy = %v, want %v", e.Name(), e.Strategy(), strat)
		}
	}
}

func TestByName(t *testing.T) {
	e, err := ByName("fbfft")
	if err != nil || e.Name() != "fbfft" {
		t.Fatalf("ByName(fbfft) = %v, %v", e, err)
	}
	e, err = ByName("CUDNN") // case-insensitive
	if err != nil || e.Name() != "cuDNN" {
		t.Fatalf("ByName(CUDNN) = %v, %v", e, err)
	}
	if _, err := ByName("tensorflow"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Fatalf("unknown engine should error, got %v", err)
	}
}

// TestEnginesAgreeNumerically: every engine must compute the same
// convolution. This is the cross-validation that grounds the simulated
// comparison in real arithmetic.
func TestEnginesAgreeNumerically(t *testing.T) {
	// Batch 32 / filters 16 so cuda-convnet2's shape limits are met.
	cfg := conv.Config{Batch: 32, Input: 12, Channels: 2, Filters: 16, Kernel: 3, Stride: 1}
	r := tensor.NewRNG(99)
	x := tensor.New(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w := tensor.New(cfg.FilterShape()...)
	w.FillUniform(r, -1, 1)
	dy := tensor.New(cfg.OutputShape()...)
	dy.FillUniform(r, -1, 1)

	ref := tensor.New(cfg.OutputShape()...)
	conv.DirectForward(cfg, x, w, ref)
	refDx := tensor.New(cfg.InputShape()...)
	conv.DirectBackwardData(cfg, dy, w, refDx)
	refDw := tensor.New(cfg.FilterShape()...)
	conv.DirectBackwardFilter(cfg, x, dy, refDw)

	for _, e := range All() {
		e := e
		t.Run(e.Name(), func(t *testing.T) {
			dev := newDev()
			p, err := e.Plan(dev, cfg)
			if err != nil {
				t.Fatalf("Plan: %v", err)
			}
			defer p.Release()
			y := tensor.New(cfg.OutputShape()...)
			if err := p.Forward(x, w, y); err != nil {
				t.Fatalf("Forward: %v", err)
			}
			if !tensor.AllClose(ref, y, 1e-3) {
				t.Fatalf("forward mismatch: rel diff %g", tensor.RelDiff(ref, y))
			}
			dx := tensor.New(cfg.InputShape()...)
			if err := p.BackwardData(dy, w, dx); err != nil {
				t.Fatalf("BackwardData: %v", err)
			}
			if !tensor.AllClose(refDx, dx, 1e-3) {
				t.Fatalf("backward-data mismatch: rel diff %g", tensor.RelDiff(refDx, dx))
			}
			dw := tensor.New(cfg.FilterShape()...)
			if err := p.BackwardFilter(x, dy, dw); err != nil {
				t.Fatalf("BackwardFilter: %v", err)
			}
			if !tensor.AllClose(refDw, dw, 1e-3) {
				t.Fatalf("backward-filter mismatch: rel diff %g", tensor.RelDiff(refDw, dw))
			}
		})
	}
}

// TestShapeLimitations verifies the constraints in the paper's Section
// IV.B summary.
func TestShapeLimitations(t *testing.T) {
	ok := conv.Config{Batch: 64, Input: 32, Channels: 3, Filters: 64, Kernel: 5, Stride: 1}
	badBatch := ok
	badBatch.Batch = 33
	badFilters := ok
	badFilters.Filters = 50
	strided := ok
	strided.Stride = 2

	cc2, _ := ByName("cuda-convnet2")
	if err := cc2.Supports(ok); err != nil {
		t.Errorf("cc2 should support %v: %v", ok, err)
	}
	if cc2.Supports(badBatch) == nil {
		t.Error("cc2 must reject batch not a multiple of 32")
	}
	if cc2.Supports(badFilters) == nil {
		t.Error("cc2 must reject filters not a multiple of 16")
	}
	if err := cc2.Supports(strided); err != nil {
		t.Errorf("cc2 should support stride 2: %v", err)
	}

	for _, name := range []string{"fbfft", "Theano-fft"} {
		e, _ := ByName(name)
		if e.Supports(strided) == nil {
			t.Errorf("%s must reject stride > 1", name)
		}
		if err := e.Supports(badBatch); err != nil {
			t.Errorf("%s should accept odd batch sizes: %v", name, err)
		}
	}

	// Unrolling engines accept everything, as the paper notes.
	for _, name := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM", "cuDNN"} {
		e, _ := ByName(name)
		for _, cfg := range []conv.Config{ok, badBatch, badFilters, strided} {
			if err := e.Supports(cfg); err != nil {
				t.Errorf("%s should support %v: %v", name, cfg, err)
			}
		}
	}
}

func TestPlanRejectsUnsupportedConfig(t *testing.T) {
	e, _ := ByName("fbfft")
	cfg := conv.Config{Batch: 4, Input: 16, Channels: 1, Filters: 4, Kernel: 3, Stride: 2}
	if _, err := e.Plan(newDev(), cfg); err == nil {
		t.Fatal("Plan must fail for unsupported stride")
	}
}

func iterate(t *testing.T, e Engine, cfg conv.Config) (elapsed, transfer float64, peak int64) {
	t.Helper()
	dev := newDev()
	p, err := e.Plan(dev, cfg)
	if err != nil {
		t.Fatalf("%s Plan: %v", e.Name(), err)
	}
	defer p.Release()
	if err := p.Iteration(); err != nil {
		t.Fatalf("%s Iteration: %v", e.Name(), err)
	}
	return dev.Elapsed().Seconds(), dev.TransferTime().Seconds(), dev.Mem.Peak()
}

// TestMemoryOrdering reproduces the paper's Figure 5 ranking at the base
// configuration: cuda-convnet2 lowest, Torch-cunn lowest of unrolling,
// FFT engines highest with fbfft on top.
func TestMemoryOrdering(t *testing.T) {
	cfg := conv.Config{Batch: 64, Input: 128, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
	peak := map[string]int64{}
	for _, e := range All() {
		_, _, p := iterate(t, e, cfg)
		peak[e.Name()] = p
	}
	order := []string{"cuda-convnet2", "Torch-cunn", "Caffe", "cuDNN", "Theano-fft", "fbfft"}
	for i := 0; i+1 < len(order); i++ {
		if peak[order[i]] >= peak[order[i+1]] {
			t.Errorf("memory ordering violated: %s (%d) >= %s (%d)",
				order[i], peak[order[i]], order[i+1], peak[order[i+1]])
		}
	}
	if peak["Theano-CorrMM"] >= peak["Theano-fft"] {
		t.Error("Theano-CorrMM should use less memory than Theano-fft")
	}
}

// TestRuntimeOrderingAtBase reproduces the paper's headline Figure 3
// result at (64,128,64,11,1): fbfft fastest, cuDNN fastest unrolling,
// Theano-fft slowest.
func TestRuntimeOrderingAtBase(t *testing.T) {
	cfg := conv.Config{Batch: 64, Input: 128, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
	times := map[string]float64{}
	for _, e := range All() {
		el, _, _ := iterate(t, e, cfg)
		times[e.Name()] = el
	}
	for name, el := range times {
		if name == "fbfft" {
			continue
		}
		if times["fbfft"] >= el {
			t.Errorf("fbfft (%.3fs) should beat %s (%.3fs)", times["fbfft"], name, el)
		}
		if name != "Theano-fft" && times["Theano-fft"] <= el {
			t.Errorf("Theano-fft (%.3fs) should be slower than %s (%.3fs)", times["Theano-fft"], name, el)
		}
	}
	for _, unroll := range []string{"Caffe", "Torch-cunn", "Theano-CorrMM"} {
		if times["cuDNN"] >= times[unroll] {
			t.Errorf("cuDNN (%.3fs) should beat %s (%.3fs)", times["cuDNN"], unroll, times[unroll])
		}
	}
}

// TestTransferShares reproduces Figure 7's grouping: hidden transfers
// for Caffe/cuDNN/fbfft, visible ones for the rest.
func TestTransferShares(t *testing.T) {
	cfg := conv.Config{Batch: 128, Input: 64, Channels: 3, Filters: 64, Kernel: 7, Stride: 1}
	for _, e := range All() {
		el, tr, _ := iterate(t, e, cfg)
		share := tr / el
		switch e.Name() {
		case "Caffe", "cuDNN", "fbfft":
			if share > 0.001 {
				t.Errorf("%s transfer share = %.1f%%, want ~0 (hidden)", e.Name(), share*100)
			}
		default:
			if share <= 0 {
				t.Errorf("%s transfer share should be visible, got %.3f%%", e.Name(), share*100)
			}
		}
	}
}

// TestCorrMMConv2TransferSpike reproduces the paper's >60% transfer
// share for Theano-CorrMM on the Conv2 configuration.
func TestCorrMMConv2TransferSpike(t *testing.T) {
	conv2 := conv.Config{Batch: 128, Input: 128, Channels: 64, Filters: 96, Kernel: 3, Stride: 1}
	e, _ := ByName("Theano-CorrMM")
	el, tr, _ := iterate(t, e, conv2)
	if share := tr / el; share < 0.5 {
		t.Fatalf("Conv2 transfer share = %.1f%%, want > 50%%", share*100)
	}
	// And it must NOT spike on Conv1, whose input batch is small.
	conv1 := conv.Config{Batch: 128, Input: 128, Channels: 3, Filters: 96, Kernel: 11, Stride: 1}
	el, tr, _ = iterate(t, e, conv1)
	if share := tr / el; share > 0.15 {
		t.Fatalf("Conv1 transfer share = %.1f%%, want small", share*100)
	}
}

// TestFbfftOOM reproduces the paper's observation that fbfft's memory
// appetite can crash on large configurations (Section V.B).
func TestFbfftOOM(t *testing.T) {
	huge := conv.Config{Batch: 256, Input: 256, Channels: 3, Filters: 96, Kernel: 11, Stride: 1}
	e, _ := ByName("fbfft")
	_, err := e.Plan(newDev(), huge)
	var oom *gpusim.OOMError
	if !errors.As(err, &oom) {
		t.Fatalf("want OOMError for %v, got %v", huge, err)
	}
	// The same configuration must fit with cuda-convnet2.
	cc2, _ := ByName("cuda-convnet2")
	p, err := cc2.Plan(newDev(), huge)
	if err != nil {
		t.Fatalf("cuda-convnet2 should fit %v: %v", huge, err)
	}
	p.Release()
}

// TestFbfftMemoryFluctuates reproduces Figure 5(b): fbfft's peak memory
// is non-monotonic in the input size (power-of-two padding steps),
// while Caffe's grows monotonically.
func TestFbfftMemoryFluctuates(t *testing.T) {
	fb, _ := ByName("fbfft")
	ca, _ := ByName("Caffe")
	var fbPeaks, caPeaks []int64
	for i := 32; i <= 160; i += 16 {
		cfg := conv.Config{Batch: 64, Input: i, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
		_, _, p := iterate(t, fb, cfg)
		fbPeaks = append(fbPeaks, p)
		_, _, p = iterate(t, ca, cfg)
		caPeaks = append(caPeaks, p)
	}
	jumpy := false
	for i := 1; i < len(fbPeaks); i++ {
		prev, cur := float64(fbPeaks[i-1]), float64(fbPeaks[i])
		if cur > 2.2*prev || cur < prev {
			jumpy = true
		}
	}
	if !jumpy {
		t.Errorf("fbfft memory should fluctuate across input sizes: %v", fbPeaks)
	}
	for i := 1; i < len(caPeaks); i++ {
		if caPeaks[i] < caPeaks[i-1] {
			t.Errorf("Caffe memory should grow monotonically: %v", caPeaks)
		}
	}
}

// TestCudaConvnet2BatchSensitivity: per-image cost at a multiple of 128
// beats the off-multiple cost (the paper's Figure 3a observation).
func TestCudaConvnet2BatchSensitivity(t *testing.T) {
	e, _ := ByName("cuda-convnet2")
	perImage := func(b int) float64 {
		cfg := conv.Config{Batch: b, Input: 64, Channels: 3, Filters: 64, Kernel: 7, Stride: 1}
		el, _, _ := iterate(t, e, cfg)
		return el / float64(b)
	}
	at128 := perImage(128)
	at96 := perImage(96)
	if at128 >= at96 {
		t.Fatalf("per-image cost at batch 128 (%.6fs) should beat batch 96 (%.6fs)", at128, at96)
	}
}

// TestSimulateOnlyIterationsTouchNoTensors: a nil-tensor iteration must
// still advance the simulated clock (that is how sweeps run).
func TestSimulateOnlyIteration(t *testing.T) {
	cfg := conv.Config{Batch: 64, Input: 64, Channels: 3, Filters: 32, Kernel: 5, Stride: 1}
	for _, e := range All() {
		dev := newDev()
		p, err := e.Plan(dev, cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if err := p.Iteration(); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if dev.Elapsed() <= 0 {
			t.Errorf("%s: simulate-only iteration should advance the clock", e.Name())
		}
		if dev.Launches() == 0 {
			t.Errorf("%s: no kernels launched", e.Name())
		}
		p.Release()
		if dev.Mem.Used() != 0 {
			t.Errorf("%s: Release leaked %d device bytes", e.Name(), dev.Mem.Used())
		}
	}
}

// TestPlanReleaseFreesMemory verifies repeated plan/release cycles don't
// accumulate device memory (the sweeps rely on this).
func TestPlanReleaseFreesMemory(t *testing.T) {
	dev := newDev()
	cfg := conv.Config{Batch: 64, Input: 64, Channels: 3, Filters: 32, Kernel: 5, Stride: 1}
	e, _ := ByName("fbfft")
	for i := 0; i < 5; i++ {
		p, err := e.Plan(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		p.Release()
	}
	if dev.Mem.Used() != 0 {
		t.Fatalf("leaked %d bytes after 5 plan/release cycles", dev.Mem.Used())
	}
}

func TestConfigMethodOnPlans(t *testing.T) {
	cfg := conv.Config{Batch: 32, Input: 32, Channels: 3, Filters: 16, Kernel: 3, Stride: 1}
	for _, e := range All() {
		p, err := e.Plan(newDev(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		got := p.Config()
		if got.Batch != cfg.Batch || got.Input != cfg.Input || got.Kernel != cfg.Kernel {
			t.Errorf("%s: Config() = %v, want %v", e.Name(), got, cfg)
		}
		p.Release()
	}
}
