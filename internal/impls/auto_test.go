package impls

import (
	"strings"
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/workload"
)

func pickName(t *testing.T, cfg conv.Config, budget int64) (string, string) {
	t.Helper()
	a := NewAuto(budget).(*autoEngine)
	e, reason := a.Pick(cfg)
	return e.Name(), reason
}

func TestAutoPicksPerPaperGuidance(t *testing.T) {
	base := workload.Base() // k=11

	// Large kernels -> fbfft.
	if name, _ := pickName(t, base, 0); name != "fbfft" {
		t.Errorf("k=11 pick = %s, want fbfft", name)
	}
	// Small kernels -> cuDNN.
	small := base
	small.Kernel = 3
	if name, _ := pickName(t, small, 0); name != "cuDNN" {
		t.Errorf("k=3 pick = %s, want cuDNN", name)
	}
	// Strided + huge filter count -> Theano-CorrMM (measured: its
	// larger row tiles beat cuDNN there, e.g. 71.1 vs 74.9 ms at
	// (64,128,512,11,2)).
	wide := base
	wide.Stride = 2
	wide.Filters = 512
	if name, _ := pickName(t, wide, 0); name != "Theano-CorrMM" {
		t.Errorf("s=2,f=512 pick = %s, want Theano-CorrMM", name)
	}
	// Stride > 1 at moderate filter counts -> cuDNN.
	strided := base
	strided.Stride = 4
	if name, _ := pickName(t, strided, 0); name != "cuDNN" {
		t.Errorf("stride pick = %s, want cuDNN", name)
	}
	// Tight memory budget -> cuda-convnet2.
	if name, reason := pickName(t, base, 600<<20); name != "cuda-convnet2" {
		t.Errorf("memory-limited pick = %s (%s), want cuda-convnet2", name, reason)
	}
	// Tight budget with a shape cc2 cannot run -> Torch-cunn fallback.
	odd := base
	odd.Batch = 50
	if name, _ := pickName(t, odd, 600<<20); name != "Torch-cunn" {
		t.Errorf("memory-limited odd-batch pick = %s, want Torch-cunn", name)
	}
}

// TestAutoBudgetFollowsPlannedDevice: with no explicit budget, the
// dispatcher must budget memory against the device actually being
// planned for, not the paper's K40c. On a small-memory spec the
// fbfft-sized footprint of the base config no longer fits, so the plan
// must dispatch to the frugal cuda-convnet2 — before the fix it used
// the K40c's 12 GB regardless and picked fbfft.
func TestAutoBudgetFollowsPlannedDevice(t *testing.T) {
	small := gpusim.TeslaK40c()
	small.Name = "small-mem"
	small.GlobalMemBytes = 600 << 20

	a := NewAuto(0).(*autoEngine)
	if name, _ := a.PickOn(small, workload.Base()); name.Name() != "cuda-convnet2" {
		t.Errorf("PickOn(small-mem) = %s, want cuda-convnet2", name.Name())
	}
	// End-to-end through the Plan path: the profile must show the
	// convnet2 kernels, not fbfft's.
	dev := gpusim.New(small)
	p, err := NewAuto(0).Plan(dev, workload.Base())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if err := p.Iteration(); err != nil {
		t.Fatal(err)
	}
	for _, k := range dev.Prof.Kernels() {
		if strings.Contains(k.Name, "decimateInFrequency") {
			t.Fatalf("auto on a 600 MB device dispatched to fbfft (kernel %s)", k.Name)
		}
	}
	found := false
	for _, k := range dev.Prof.Kernels() {
		if strings.Contains(k.Name, "filterActs") {
			found = true
		}
	}
	if !found {
		t.Fatal("auto on a 600 MB device should have dispatched to cuda-convnet2")
	}
}

// TestAutoStrategyMatchesPick: Strategy() must report the delegated
// engine's convolution family after a pick — before the fix it
// reported conv.Unrolling unconditionally, mislabeling FFT-dispatched
// cells in sweep tables and telemetry.
func TestAutoStrategyMatchesPick(t *testing.T) {
	a := NewAuto(0)
	if got := a.Strategy(); got != conv.Unrolling {
		t.Errorf("pre-pick Strategy() = %v, want unrolling fallback", got)
	}
	dev := newDev()
	p, err := a.Plan(dev, workload.Base()) // k=11 -> fbfft
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	if got := a.Strategy(); got != conv.FFT {
		t.Errorf("Strategy() after fbfft dispatch = %v, want fft", got)
	}
	small := workload.Base()
	small.Kernel = 3 // -> cuDNN
	p, err = a.Plan(dev, small)
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	if got := a.Strategy(); got != conv.Unrolling {
		t.Errorf("Strategy() after cuDNN dispatch = %v, want unrolling", got)
	}
}

func TestAutoPlanDelegates(t *testing.T) {
	dev := newDev()
	a := NewAuto(0)
	p, err := a.Plan(dev, workload.Base())
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	if err := p.Iteration(); err != nil {
		t.Fatal(err)
	}
	// The fbfft kernels must appear in the profile — proof of dispatch.
	found := false
	for _, k := range dev.Prof.Kernels() {
		if strings.Contains(k.Name, "decimateInFrequency") {
			found = true
		}
	}
	if !found {
		t.Fatal("auto at k=11 should have dispatched to fbfft")
	}
}

// TestAutoNeverSlowerThanWorstCase: across the kernel sweep, Auto's
// runtime matches the per-point winner it selects — never the loser.
func TestAutoBeatsFixedChoicesAcrossKernelSweep(t *testing.T) {
	for _, k := range []int{3, 11} {
		cfg := workload.Base()
		cfg.Kernel = k
		run := func(e Engine) float64 {
			dev := newDev()
			p, err := e.Plan(dev, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer p.Release()
			if err := p.Iteration(); err != nil {
				t.Fatal(err)
			}
			return dev.Elapsed().Seconds()
		}
		auto := run(NewAuto(0))
		fixedFFT := run(NewFbfft())
		fixedCuDNN := run(NewCuDNN())
		best := fixedFFT
		if fixedCuDNN < best {
			best = fixedCuDNN
		}
		if auto > best*1.0001 {
			t.Errorf("k=%d: auto %.4fs should match the per-point best %.4fs", k, auto, best)
		}
	}
}
