package impls

import (
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/tensor"
)

func TestWinogradEngineIsExtensionNotCore(t *testing.T) {
	for _, e := range All() {
		if e.Name() == "cuDNN-Winograd" {
			t.Fatal("Winograd must not be in the paper's seven")
		}
	}
	ext := Extensions()
	if len(ext) == 0 || ext[0].Name() != "cuDNN-Winograd" {
		t.Fatalf("Extensions = %v", ext)
	}
	if _, err := ByName("cudnn-winograd"); err != nil {
		t.Fatalf("ByName should find extensions: %v", err)
	}
}

func TestWinogradEngineShapeLimits(t *testing.T) {
	e := NewWinograd()
	ok := conv.Config{Batch: 8, Input: 16, Channels: 4, Filters: 8, Kernel: 3, Stride: 1}
	if err := e.Supports(ok); err != nil {
		t.Fatalf("3x3/s1 rejected: %v", err)
	}
	k5 := ok
	k5.Kernel = 5
	if e.Supports(k5) == nil {
		t.Error("kernel 5 must be rejected")
	}
	s2 := ok
	s2.Stride = 2
	if e.Supports(s2) == nil {
		t.Error("stride 2 must be rejected")
	}
}

func TestWinogradEngineNumericallyCorrect(t *testing.T) {
	cfg := conv.Config{Batch: 4, Input: 12, Channels: 3, Filters: 8, Kernel: 3, Stride: 1, Pad: 1}
	r := tensor.NewRNG(55)
	x := tensor.New(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w := tensor.New(cfg.FilterShape()...)
	w.FillUniform(r, -1, 1)
	ref := tensor.New(cfg.OutputShape()...)
	conv.DirectForward(cfg, x, w, ref)

	dev := newDev()
	p, err := NewWinograd().Plan(dev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	y := tensor.New(cfg.OutputShape()...)
	if err := p.Forward(x, w, y); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(ref, y, 1e-4) {
		t.Fatalf("winograd engine differs from direct by %g", tensor.RelDiff(ref, y))
	}
	// Backward passes agree with the direct reference too.
	dy := tensor.New(cfg.OutputShape()...)
	dy.FillUniform(r, -1, 1)
	dx := tensor.New(cfg.InputShape()...)
	refDx := tensor.New(cfg.InputShape()...)
	conv.DirectBackwardData(cfg, dy, w, refDx)
	if err := p.BackwardData(dy, w, dx); err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(refDx, dx, 1e-4) {
		t.Fatal("winograd backward-data mismatch")
	}
}

// TestWinogradBeatsCuDNNOnThreeByThree: the extension must deliver the
// speedup the paper's conclusion anticipates — faster than cuDNN v3's
// unrolling on 3×3 layers (where the 2.25× multiply reduction applies).
func TestWinogradBeatsCuDNNOnThreeByThree(t *testing.T) {
	cfg := conv.Config{Batch: 64, Input: 64, Channels: 64, Filters: 64, Kernel: 3, Stride: 1, Pad: 1}
	run := func(e Engine) float64 {
		dev := newDev()
		p, err := e.Plan(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Release()
		if err := p.Iteration(); err != nil {
			t.Fatal(err)
		}
		return dev.Elapsed().Seconds()
	}
	wino := run(NewWinograd())
	cudnn := run(NewCuDNN())
	if wino >= cudnn {
		t.Fatalf("Winograd (%.4fs) should beat cuDNN v3 unrolling (%.4fs) on 3x3", wino, cudnn)
	}
	if ratio := cudnn / wino; ratio > 4 {
		t.Fatalf("Winograd speedup %.1f× implausibly large (theory caps near 2.25× on multiplies)", ratio)
	}
}

// TestTheanoLegacySlowerThanOptimised: the naive direct baseline must
// lose to every optimised implementation at the base configuration —
// the reason the paper studies the optimised seven at all.
func TestTheanoLegacySlowerThanOptimised(t *testing.T) {
	cfg := conv.Config{Batch: 64, Input: 128, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
	run := func(e Engine) float64 {
		dev := newDev()
		p, err := e.Plan(dev, cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Release()
		if err := p.Iteration(); err != nil {
			t.Fatal(err)
		}
		return dev.Elapsed().Seconds()
	}
	legacy := run(NewTheanoLegacy())
	for _, e := range All() {
		if e.Name() == "Theano-fft" {
			continue // the paper's slowest can legitimately lose to anything
		}
		if opt := run(e); opt >= legacy {
			t.Errorf("%s (%.4fs) should beat the naive baseline (%.4fs)", e.Name(), opt, legacy)
		}
	}
}

// TestTheanoLegacyCorrect: the baseline computes the right answer.
func TestTheanoLegacyCorrect(t *testing.T) {
	cfg := conv.Config{Batch: 2, Input: 10, Channels: 2, Filters: 3, Kernel: 3, Stride: 2}
	r := tensor.NewRNG(77)
	x := tensor.New(cfg.InputShape()...)
	x.FillUniform(r, -1, 1)
	w := tensor.New(cfg.FilterShape()...)
	w.FillUniform(r, -1, 1)
	ref := tensor.New(cfg.OutputShape()...)
	conv.DirectForward(cfg, x, w, ref)
	p, err := NewTheanoLegacy().Plan(newDev(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Release()
	y := tensor.New(cfg.OutputShape()...)
	if err := p.Forward(x, w, y); err != nil {
		t.Fatal(err)
	}
	if tensor.MaxAbsDiff(ref, y) != 0 {
		t.Fatal("legacy engine shares the direct reference; must be exact")
	}
}
