package impls

import (
	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// unrollParams captures everything that distinguishes the three
// explicit-unrolling implementations (Caffe, Torch-cunn,
// Theano-CorrMM): Table II resource usage, kernel quality knobs, buffer
// policy, and transfer policy.
type unrollParams struct {
	name string

	// Table II: resource usage of the implementation's top kernels.
	gemmRegs int
	gemmSmem int // bytes per block

	// GEMM kernel quality.
	gemmBaseEff   float64 // sustained fraction of peak for ideal shapes
	gemmRowSat    float64 // m (filter count) at which row-tile utilisation saturates
	gemmLoadTrans float64 // transactions per request (1 = coalesced)
	gemmL2Hit     float64 // fraction of replayed transactions absorbed by L2
	gemmBroadcast float64 // shared-memory broadcast factor (cuBLAS tiles)
	gemmConflict  float64 // shared-memory bank-conflict rate

	// Unrolling kernels (im2col/col2im) quality.
	im2colName  string
	col2imName  string
	imLoadTrans float64
	imL2Hit     float64

	// Memory policy: Torch-cunn reuses one output-sized gradient buffer
	// in place, which is why it peaks ~1.7 GB lower than Caffe on the
	// big sweeps.
	inPlaceGrads bool

	transfer transferPolicy
}

type unrollEngine struct{ p unrollParams }

func (e *unrollEngine) Name() string            { return e.p.name }
func (e *unrollEngine) Strategy() conv.Strategy { return conv.Unrolling }

// Supports: unrolling convolution has no shape limitation — the paper
// calls these implementations "most flexible in configuration
// selection as they support any possible shapes".
func (e *unrollEngine) Supports(cfg conv.Config) error {
	return cfg.Validate()
}

func (e *unrollEngine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *unrollEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, true)
}

func (e *unrollEngine) plan(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	cfg = cfg.WithDefaults()
	if err := e.Supports(cfg); err != nil {
		return nil, err
	}
	bs := &bufSet{dev: dev}
	if err := bs.allocTrainingSet(cfg, e.p.inPlaceGrads, false, shared); err != nil {
		bs.release()
		return nil, err
	}
	// One column buffer, reused image by image (Caffe's scheme).
	if err := bs.alloc(geomColBytes(cfg), "col-buffer"); err != nil {
		bs.release()
		return nil, err
	}
	return &unrollPlan{engine: e, dev: dev, cfg: cfg, bufs: bs}, nil
}

// geomColBytes is the im2col workspace for one image.
func geomColBytes(cfg conv.Config) int64 {
	o := cfg.Out()
	return int64(cfg.Channels*cfg.Kernel*cfg.Kernel) * int64(o*o) * 4
}

type unrollPlan struct {
	engine *unrollEngine
	dev    *gpusim.Device
	cfg    conv.Config
	bufs   *bufSet
}

func (p *unrollPlan) Config() conv.Config { return p.cfg }
func (p *unrollPlan) Release()            { p.bufs.release() }

// gemmDims returns the per-image GEMM dimensions of the forward pass:
// (f × o²) = (f × ck²) · (ck² × o²).
func (p *unrollPlan) gemmDims() (m, n, k int) {
	o := p.cfg.Out()
	return p.cfg.Filters, o * o, p.cfg.Channels * p.cfg.Kernel * p.cfg.Kernel
}

// gemmSpec builds the cuBLAS-style SGEMM kernel launch for one image.
// Row-tile utilisation penalises skinny GEMMs (few filters), and
// reduction-depth utilisation penalises short k (small c·k²) — the two
// shape effects behind the paper's filter-count and kernel-size trends.
func (p *unrollPlan) gemmSpec(m, n, k int) gpusim.KernelSpec {
	e := p.engine.p
	rowUtil := float64(m) / e.gemmRowSat
	if rowUtil > 1 {
		rowUtil = 1
	}
	kUtil := float64(k) / 128
	if kUtil > 1 {
		kUtil = 1
	}
	eff := e.gemmBaseEff * (0.30 + 0.70*rowUtil) * (0.45 + 0.55*kUtil)

	// DRAM traffic of a 64×64-tiled GEMM: each A panel is re-read once
	// per column tile and vice versa; replayed transactions mostly hit
	// L2.
	tiles := func(x int) float64 { return float64((x + 63) / 64) }
	useful := 4 * (float64(m)*float64(k)*tiles(n)/4 + float64(k)*float64(n)*tiles(m)/4 + 2*float64(m)*float64(n))

	return gpusim.KernelSpec{
		Name:             "cublas_sgemm",
		Grid:             gpusim.Dim3{X: int(tiles(m) * tiles(n))},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    e.gemmRegs,
		SharedPerBlock:   e.gemmSmem,
		FLOPs:            2 * float64(m) * float64(n) * float64(k),
		GlobalLoadBytes:  useful * 0.8,
		GlobalStoreBytes: useful * 0.2,
		LoadTransPerReq:  e.gemmLoadTrans,
		StoreTransPerReq: e.gemmLoadTrans * 0.6,
		L2HitFrac:        e.gemmL2Hit,
		UsesShared:       true,
		SharedBroadcast:  e.gemmBroadcast,
		BankConflictRate: e.gemmConflict,
		ActiveThreadFrac: 0.99,
		ILP:              3,
		EfficiencyScale:  eff,
	}
}

// imSpec builds the im2col / col2im kernel launch for one image: a
// memory-bound gather (or scatter-accumulate) whose useful traffic is
// the column buffer plus the image.
func (p *unrollPlan) imSpec(name string, scatter bool) gpusim.KernelSpec {
	e := p.engine.p
	colBytes := float64(geomColBytes(p.cfg))
	imgBytes := float64(p.cfg.Channels*p.cfg.Input*p.cfg.Input) * 4
	load, store := colBytes*0.15+imgBytes, colBytes
	if scatter {
		// col2im: stream the column buffer in, accumulate into the
		// image; the read-modify-write traffic stays mostly in L2.
		load, store = colBytes, colBytes*0.5
	}
	o := p.cfg.Out()
	return gpusim.KernelSpec{
		Name:             name,
		Grid:             gpusim.Dim3{X: (p.cfg.Channels*o*o + 255) / 256},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    28,
		FLOPs:            colBytes / 4 * 2, // index arithmetic, negligible
		GlobalLoadBytes:  load,
		GlobalStoreBytes: store,
		LoadTransPerReq:  e.imLoadTrans,
		StoreTransPerReq: e.imLoadTrans * 0.8,
		L2HitFrac:        e.imL2Hit,
		ActiveThreadFrac: 0.97,
		ILP:              1.5,
		EfficiencyScale:  0.9,
	}
}

// forwardSim launches the forward kernel sequence: per image, one
// im2col and one SGEMM (Caffe's loop-over-batch structure).
func (p *unrollPlan) forwardSim() error {
	m, n, k := p.gemmDims()
	for i := 0; i < p.cfg.Batch; i++ {
		if _, err := p.dev.Launch(p.imSpec(p.engine.p.im2colName, false)); err != nil {
			return err
		}
		if _, err := p.dev.Launch(p.gemmSpec(m, n, k)); err != nil {
			return err
		}
	}
	return nil
}

func (p *unrollPlan) Forward(x, w, y *tensor.Tensor) error {
	defer beginPhase(p.dev, "forward")()
	if err := p.forwardSim(); err != nil {
		return err
	}
	if x != nil {
		conv.UnrollForward(p.cfg, x, w, y)
	}
	return nil
}

func (p *unrollPlan) BackwardData(dy, w, dx *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_data")()
	m, n, k := p.gemmDims()
	for i := 0; i < p.cfg.Batch; i++ {
		// col = Wᵀ·dy: GEMM of (ck² × o²) with reduction depth f.
		if _, err := p.dev.Launch(p.gemmSpec(k, n, m)); err != nil {
			return err
		}
		if _, err := p.dev.Launch(p.imSpec(p.engine.p.col2imName, true)); err != nil {
			return err
		}
	}
	if dy != nil {
		conv.UnrollBackwardData(p.cfg, dy, w, dx)
	}
	return nil
}

func (p *unrollPlan) BackwardFilter(x, dy, dw *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_filter")()
	m, n, k := p.gemmDims()
	for i := 0; i < p.cfg.Batch; i++ {
		if _, err := p.dev.Launch(p.imSpec(p.engine.p.im2colName, false)); err != nil {
			return err
		}
		// dw += dy·colᵀ: GEMM of (f × ck²) with reduction depth o².
		if _, err := p.dev.Launch(p.gemmSpec(m, k, n)); err != nil {
			return err
		}
	}
	if x != nil {
		conv.UnrollBackwardFilter(p.cfg, x, dy, dw)
	}
	return nil
}

func (p *unrollPlan) Inference() error {
	p.engine.p.transfer.doTransfer(p.dev, p.cfg)
	return p.Forward(nil, nil, nil)
}

func (p *unrollPlan) Iteration() error {
	p.engine.p.transfer.doTransfer(p.dev, p.cfg)
	if err := p.Forward(nil, nil, nil); err != nil {
		return err
	}
	if err := p.BackwardData(nil, nil, nil); err != nil {
		return err
	}
	return p.BackwardFilter(nil, nil, nil)
}

// The three explicit-unrolling engines.

// NewCaffe returns the Caffe engine: per-image im2col + cuBLAS SGEMM,
// one persistent column buffer, full gradient buffers, and a pinned
// prefetch thread that hides input transfers (its Figure 7 share is
// ~0%).
func NewCaffe() Engine {
	return &unrollEngine{p: unrollParams{
		name:     "Caffe",
		gemmRegs: 86, gemmSmem: 8704, // Table II: 86 regs, 8.5 KB
		gemmBaseEff: 0.64, gemmRowSat: 128,
		gemmLoadTrans: 6.0, gemmL2Hit: 0.93,
		gemmBroadcast: 1.10, gemmConflict: 0.08,
		im2colName: "im2col_gpu_kernel", col2imName: "col2im_gpu_kernel",
		imLoadTrans: 4.0, imL2Hit: 0.88,
		inPlaceGrads: false,
		transfer:     transferPolicy{pinned: true, async: true},
	}}
}

// NewTorchCunn returns the Torch-cunn engine: the same im2col+SGEMM
// scheme as Caffe but with in-place gradient buffer reuse (the paper's
// lowest-memory unrolling implementation) and synchronous pinned input
// transfers (1–15% of runtime in Figure 7).
func NewTorchCunn() Engine {
	return &unrollEngine{p: unrollParams{
		name:     "Torch-cunn",
		gemmRegs: 84, gemmSmem: 8294, // Table II: 84 regs, 8.1 KB
		gemmBaseEff: 0.62, gemmRowSat: 128,
		gemmLoadTrans: 5.5, gemmL2Hit: 0.93,
		gemmBroadcast: 1.08, gemmConflict: 0.10,
		im2colName: "im2col_gpu_kernel", col2imName: "col2im_gpu_kernel",
		imLoadTrans: 4.0, imL2Hit: 0.88,
		inPlaceGrads: true,
		transfer:     transferPolicy{pinned: true, async: false},
	}}
}

// NewTheanoCorrMM returns the Theano-CorrMM engine: im2col+SGEMM with a
// larger row tile that only reaches peak utilisation at high filter
// counts (it overtakes cuDNN beyond ~160 filters, Figure 3c), the worst
// global-load coalescing of the group (11.6–15.8% in Figure 6), and
// synchronous pageable transfers — the source of its >60% transfer
// share on Conv2 in Figure 7.
func NewTheanoCorrMM() Engine {
	return &unrollEngine{p: unrollParams{
		name:     "Theano-CorrMM",
		gemmRegs: 72, gemmSmem: 7168, // Table II: 72 regs, 7 KB
		gemmBaseEff: 1.08, gemmRowSat: 170, // 192-row tiles: slow ramp, high ceiling
		gemmLoadTrans: 7.5, gemmL2Hit: 0.97,
		gemmBroadcast: 1.05, gemmConflict: 0.12,
		im2colName: "corrMM_im2col_kernel", col2imName: "corrMM_col2im_kernel",
		imLoadTrans: 6.0, imL2Hit: 0.93,
		inPlaceGrads: false,
		transfer: transferPolicy{
			pinned: false, async: false,
			spillThreshold: 256 << 20, spillFactor: 2.5,
		},
	}}
}
