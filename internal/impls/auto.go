package impls

import (
	"fmt"
	"sync"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
)

// autoEngine encodes the paper's practitioner guidance (the Section IV
// and V summaries) as a dispatching implementation: per layer shape it
// selects the engine the study recommends and delegates to it.
//
//   - "From the perspective of speed, fbfft is the fastest
//     implementation to train a CNN model with large kernels. For small
//     kernels, cuDNN would be a good choice."
//   - "For a model with small kernel and large filter number,
//     Theano-CorrMM slightly outperforms other implementations."
//   - "Cuda-convnet2 is well suitable for cases when the memory is
//     limited."
//   - FFT engines cannot run strides above 1; cuDNN takes those.
type autoEngine struct {
	memBudget int64 // 0 = the full device

	mu   sync.Mutex
	last Engine // most recently picked delegate
}

// NewAuto returns the rule-based dispatcher. memBudget (bytes) bounds
// the chosen engine's expected peak memory; 0 means the limit of the
// device the plan is built for.
func NewAuto(memBudget int64) Engine { return &autoEngine{memBudget: memBudget} }

func (e *autoEngine) Name() string { return "Auto" }

// Strategy reports the convolution family of the most recently picked
// delegate, so sweep tables and telemetry label dispatched cells by
// what actually ran (an FFT-dispatched cell reports conv.FFT, not the
// fallback's family). Before any pick it reports the fallback's
// (cuDNN's) unrolling strategy.
func (e *autoEngine) Strategy() conv.Strategy {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.last != nil {
		return e.last.Strategy()
	}
	return conv.Unrolling // of its fallback
}

// Supports: the dispatcher always has a fallback (cuDNN runs anything).
func (e *autoEngine) Supports(cfg conv.Config) error { return cfg.Validate() }

// Pick returns the engine the paper's guidance selects for the config,
// with the reason, budgeting memory against the paper's K40c. Callers
// planning for a specific device should use PickOn with that device's
// spec.
func (e *autoEngine) Pick(cfg conv.Config) (Engine, string) {
	return e.PickOn(gpusim.TeslaK40c(), cfg)
}

// PickOn is Pick with the memory budget taken from the device actually
// being planned for (unless the dispatcher was built with an explicit
// budget).
func (e *autoEngine) PickOn(spec gpusim.DeviceSpec, cfg conv.Config) (Engine, string) {
	chosen, reason := e.pick(spec, cfg)
	e.mu.Lock()
	e.last = chosen
	e.mu.Unlock()
	return chosen, reason
}

func (e *autoEngine) pick(spec gpusim.DeviceSpec, cfg conv.Config) (Engine, string) {
	cfg = cfg.WithDefaults()
	budget := e.memBudget
	if budget <= 0 {
		budget = spec.GlobalMemBytes
	}
	// Memory-limited regimes go to the most frugal implementation.
	if est := fbfftMemEstimate(cfg); est > budget {
		if cc2 := NewCudaConvnet2(); cc2.Supports(cfg) == nil {
			return cc2, "memory-limited: cuda-convnet2 is the most frugal"
		}
		return NewTorchCunn(), "memory-limited: Torch-cunn is the most frugal unrolling engine"
	}
	// Strided layers cannot use FFT. cuDNN is best there, except at
	// very large filter counts where Theano-CorrMM's bigger row tiles
	// pull ahead (the regime behind the paper's Figure 3c remark).
	if cfg.Stride > 1 {
		if cfg.Filters > 256 {
			return NewTheanoCorrMM(), "stride > 1, large filter count: Theano-CorrMM"
		}
		return NewCuDNN(), "stride > 1: FFT unsupported, cuDNN fastest"
	}
	// Large kernels: fbfft.
	if cfg.Kernel >= 7 {
		return NewFbfft(), "large kernel: fbfft fastest"
	}
	return NewCuDNN(), "small kernel: cuDNN fastest"
}

func (e *autoEngine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.planWith(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *autoEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.planWith(dev, cfg, true)
}

func (e *autoEngine) planWith(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	chosen, reason := e.PickOn(dev.Spec, cfg)
	var p Plan
	var err error
	if shared {
		p, err = chosen.PlanShared(dev, cfg)
	} else {
		p, err = chosen.Plan(dev, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("auto (%s, %s): %w", chosen.Name(), reason, err)
	}
	return p, nil
}

// fbfftMemEstimate approximates fbfft's resident footprint for the
// budget check: the training tensors plus double-buffered Hermitian
// frequency grids.
func fbfftMemEstimate(cfg conv.Config) int64 {
	tensors := 2*cfg.InputBytes() + 2*cfg.OutputBytes() + 2*cfg.FilterBytes()
	n := conv.FFTPlanSize(cfg)
	bins := int64(n * (n/2 + 1))
	grids := int64(cfg.Batch*cfg.Channels + cfg.Filters*cfg.Channels + cfg.Batch*cfg.Filters)
	return tensors + 2*grids*bins*8
}
