package impls

import (
	"fmt"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
)

// autoEngine encodes the paper's practitioner guidance (the Section IV
// and V summaries) as a dispatching implementation: per layer shape it
// selects the engine the study recommends and delegates to it.
//
//   - "From the perspective of speed, fbfft is the fastest
//     implementation to train a CNN model with large kernels. For small
//     kernels, cuDNN would be a good choice."
//   - "For a model with small kernel and large filter number,
//     Theano-CorrMM slightly outperforms other implementations."
//   - "Cuda-convnet2 is well suitable for cases when the memory is
//     limited."
//   - FFT engines cannot run strides above 1; cuDNN takes those.
type autoEngine struct {
	memBudget int64 // 0 = the full device
}

// NewAuto returns the rule-based dispatcher. memBudget (bytes) bounds
// the chosen engine's expected peak memory; 0 means the device limit.
func NewAuto(memBudget int64) Engine { return &autoEngine{memBudget: memBudget} }

func (e *autoEngine) Name() string            { return "Auto" }
func (e *autoEngine) Strategy() conv.Strategy { return conv.Unrolling } // of its fallback

// Supports: the dispatcher always has a fallback (cuDNN runs anything).
func (e *autoEngine) Supports(cfg conv.Config) error { return cfg.Validate() }

// Pick returns the engine the paper's guidance selects for the config,
// with the reason.
func (e *autoEngine) Pick(cfg conv.Config) (Engine, string) {
	cfg = cfg.WithDefaults()
	budget := e.memBudget
	if budget <= 0 {
		budget = gpusim.TeslaK40c().GlobalMemBytes
	}
	// Memory-limited regimes go to the most frugal implementation.
	if est := fbfftMemEstimate(cfg); est > budget {
		if cc2 := NewCudaConvnet2(); cc2.Supports(cfg) == nil {
			return cc2, "memory-limited: cuda-convnet2 is the most frugal"
		}
		return NewTorchCunn(), "memory-limited: Torch-cunn is the most frugal unrolling engine"
	}
	// Strided layers cannot use FFT. cuDNN is best there, except at
	// very large filter counts where Theano-CorrMM's bigger row tiles
	// pull ahead (the regime behind the paper's Figure 3c remark).
	if cfg.Stride > 1 {
		if cfg.Filters > 256 {
			return NewTheanoCorrMM(), "stride > 1, large filter count: Theano-CorrMM"
		}
		return NewCuDNN(), "stride > 1: FFT unsupported, cuDNN fastest"
	}
	// Large kernels: fbfft.
	if cfg.Kernel >= 7 {
		return NewFbfft(), "large kernel: fbfft fastest"
	}
	return NewCuDNN(), "small kernel: cuDNN fastest"
}

func (e *autoEngine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.planWith(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *autoEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.planWith(dev, cfg, true)
}

func (e *autoEngine) planWith(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	chosen, reason := e.Pick(cfg)
	var p Plan
	var err error
	if shared {
		p, err = chosen.PlanShared(dev, cfg)
	} else {
		p, err = chosen.Plan(dev, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("auto (%s, %s): %w", chosen.Name(), reason, err)
	}
	return p, nil
}

// fbfftMemEstimate approximates fbfft's resident footprint for the
// budget check: the training tensors plus double-buffered Hermitian
// frequency grids.
func fbfftMemEstimate(cfg conv.Config) int64 {
	tensors := 2*cfg.InputBytes() + 2*cfg.OutputBytes() + 2*cfg.FilterBytes()
	n := conv.FFTPlanSize(cfg)
	bins := int64(n * (n/2 + 1))
	grids := int64(cfg.Batch*cfg.Channels + cfg.Filters*cfg.Channels + cfg.Batch*cfg.Filters)
	return tensors + 2*grids*bins*8
}
