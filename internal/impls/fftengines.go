package impls

import (
	"gpucnn/internal/conv"
	"gpucnn/internal/fft"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// fftParams distinguishes fbfft from Theano-fft: fbfft is hand-written
// CUDA exploiting Hermitian symmetry with tight transposes around a
// batched CGEMM; Theano-fft allocates full complex grids, pads on
// device with poorly-coalesced copy kernels, suffers shared-memory bank
// conflicts and warp divergence in its transform (Table II shows it
// uses just 2 registers/thread — high occupancy, terrible per-thread
// throughput), and stages data synchronously through pageable memory.
type fftParams struct {
	name string

	hermitian bool // store n·(n/2+1) bins instead of n²
	tiled     bool // overlap-add tiling for large inputs (fbfft)

	fftRegs, fftSmem int
	fftEff           float64
	fftConflictRate  float64
	fftBroadcast     float64
	fftWEE           float64
	fftILP           float64
	fftTrans         float64 // transactions/request of the transform kernels
	fftL2            float64
	occDerate        float64 // achieved/theoretical occupancy of the kernels

	cgemmEff float64

	transposeTrans float64 // transactions/request of the transpose kernels
	transposeL2    float64

	padKernel bool // Theano-fft's device-side data-preparation pass

	// reuseTransforms: the backward-filter pass reuses the spectra of
	// x and dy computed by the forward and backward-data passes of the
	// same iteration instead of re-transforming them.
	reuseTransforms bool

	doubleBuffer bool // fbfft keeps a second copy of all grids for transpose

	transfer transferPolicy
}

type fftEngine struct{ p fftParams }

func (e *fftEngine) Name() string            { return e.p.name }
func (e *fftEngine) Strategy() conv.Strategy { return conv.FFT }

// Supports enforces the FFT strategy's shape limitation: stride must be
// 1 ("FFT-based convolutions are applicable to any configuration shapes
// except that their stride must be 1").
func (e *fftEngine) Supports(cfg conv.Config) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if cfg.Stride != 1 {
		return errUnsupported(e.Name(), cfg, "FFT-based convolution only supports stride 1")
	}
	return nil
}

// gridBins returns the number of frequency bins per 2-D grid.
func (e *fftEngine) gridBins(n int) int {
	if e.p.hermitian {
		return n * (n/2 + 1)
	}
	return n * n
}

// tiling picks the transform size and overlap-add tile count for a
// config. Theano-fft always pads the whole image to the next power of
// two; fbfft decomposes large inputs into overlapping power-of-two
// tiles and picks the tile size that minimises total frequency bins —
// the behaviour that keeps its runtime competitive on inputs past 128
// while still producing the step-function memory profile of Figure 5.
func (e *fftEngine) tiling(cfg conv.Config) (n, tilesPerAxis int) {
	ip := cfg.Input + 2*cfg.Pad
	full := fft.NextPow2(ip)
	if !e.p.tiled {
		return full, 1
	}
	o := ip - cfg.Kernel + 1 // stride 1 output extent
	bestN, bestTiles, bestBins := full, 1, e.gridBins(full)
	for cand := fft.NextPow2(cfg.Kernel + 1); cand < full; cand *= 2 {
		step := cand - cfg.Kernel + 1
		if step <= 0 {
			continue
		}
		t := (o + step - 1) / step
		bins := t * t * e.gridBins(cand)
		if bins < bestBins {
			bestN, bestTiles, bestBins = cand, t, bins
		}
	}
	return bestN, bestTiles
}

func (e *fftEngine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *fftEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, true)
}

func (e *fftEngine) plan(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	cfg = cfg.WithDefaults()
	if err := e.Supports(cfg); err != nil {
		return nil, err
	}
	bs := &bufSet{dev: dev}
	if err := bs.allocTrainingSet(cfg, false, false, shared); err != nil {
		bs.release()
		return nil, err
	}
	// Frequency-domain workspace: transformed inputs, filters and
	// outputs, all padded to the power-of-two plan size. This padding
	// is the step-function memory blow-up of Figure 5.
	n, tiles := e.tiling(cfg)
	t2 := int64(tiles * tiles)
	bins := int64(e.gridBins(n))
	grids := int64(cfg.Batch*cfg.Channels)*t2 +
		int64(cfg.Filters*cfg.Channels) +
		int64(cfg.Batch*cfg.Filters)*t2
	freqBytes := grids * bins * 8
	if e.p.doubleBuffer {
		freqBytes *= 2
	}
	if err := bs.alloc(freqBytes, "fft-workspace"); err != nil {
		bs.release()
		return nil, err
	}
	return &fftPlan{engine: e, dev: dev, cfg: cfg, bufs: bs, n: n, tiles: tiles * tiles}, nil
}

type fftPlan struct {
	engine *fftEngine
	dev    *gpusim.Device
	cfg    conv.Config
	bufs   *bufSet
	n      int // per-axis transform size
	tiles  int // total overlap-add tiles (1 when untiled)

	// Spectra-residency flags for transform reuse within an iteration.
	xTransformed  bool
	dyTransformed bool
}

func (p *fftPlan) Config() conv.Config { return p.cfg }
func (p *fftPlan) Release()            { p.bufs.release() }

// fftSpec is one batched transform launch over `grids` 2-D grids.
func (p *fftPlan) fftSpec(name string, grids int) gpusim.KernelSpec {
	e := p.engine.p
	bins := float64(p.engine.gridBins(p.n))
	flops := fft.FLOPs2D(p.n) * float64(grids)
	if e.hermitian {
		flops /= 2
	}
	bytes := float64(grids) * bins * 8
	return gpusim.KernelSpec{
		Name:             name,
		Grid:             gpusim.Dim3{X: grids},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    e.fftRegs,
		SharedPerBlock:   e.fftSmem,
		FLOPs:            flops,
		GlobalLoadBytes:  bytes,
		GlobalStoreBytes: bytes,
		LoadTransPerReq:  e.fftTrans,
		StoreTransPerReq: e.fftTrans,
		L2HitFrac:        e.fftL2,
		UsesShared:       true,
		SharedBroadcast:  e.fftBroadcast,
		BankConflictRate: e.fftConflictRate,
		ActiveThreadFrac: e.fftWEE,
		ILP:              e.fftILP,
		EfficiencyScale:  e.fftEff,
		OccupancyDerate:  e.occDerate,
	}
}

// transposeSpec converts grids between BDHW and HWBD layouts around the
// frequency-domain CGEMM (fbfft's Transpose kernel).
func (p *fftPlan) transposeSpec(grids int) gpusim.KernelSpec {
	e := p.engine.p
	bytes := float64(grids) * float64(p.engine.gridBins(p.n)) * 8
	return gpusim.KernelSpec{
		Name:             "transpose",
		Grid:             gpusim.Dim3{X: grids},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    24,
		SharedPerBlock:   4 * 1024,
		FLOPs:            0,
		GlobalLoadBytes:  bytes,
		GlobalStoreBytes: bytes,
		LoadTransPerReq:  e.transposeTrans,
		StoreTransPerReq: e.transposeTrans,
		L2HitFrac:        e.transposeL2,
		UsesShared:       true,
		SharedBroadcast:  1,
		BankConflictRate: e.fftConflictRate * 0.6,
		ActiveThreadFrac: 0.99,
		ILP:              2,
		EfficiencyScale:  0.9,
		OccupancyDerate:  e.occDerate,
	}
}

// cgemmSpec is the batched per-frequency-bin complex GEMM: one m×n×k
// complex product per bin.
func (p *fftPlan) cgemmSpec(m, n, k int) gpusim.KernelSpec {
	e := p.engine.p
	bins := p.engine.gridBins(p.n) * p.tiles
	flops := 8 * float64(m) * float64(n) * float64(k) * float64(bins)
	// Operand traffic: each bin reads its m×k and k×n panels once.
	bytes := float64(bins) * 8 * (float64(m*k) + float64(k*n) + float64(m*n))
	kUtil := float64(k) / 16
	if kUtil > 1 {
		kUtil = 1
	}
	eff := e.cgemmEff * (0.55 + 0.45*kUtil)
	return gpusim.KernelSpec{
		Name:             "cgemm_batched",
		Grid:             gpusim.Dim3{X: bins},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    64,
		SharedPerBlock:   6 * 1024,
		FLOPs:            flops,
		GlobalLoadBytes:  bytes * 0.8,
		GlobalStoreBytes: bytes * 0.2,
		LoadTransPerReq:  1.8,
		StoreTransPerReq: 1.4,
		L2HitFrac:        0.5,
		UsesShared:       true,
		SharedBroadcast:  1.1,
		BankConflictRate: 0.1,
		ActiveThreadFrac: 0.99,
		ILP:              3,
		EfficiencyScale:  eff,
	}
}

// padSpec is Theano-fft's device-side zero-pad / data-preparation pass.
func (p *fftPlan) padSpec(grids int) gpusim.KernelSpec {
	bytes := float64(grids) * float64(p.engine.gridBins(p.n)) * 8
	return gpusim.KernelSpec{
		Name:             "pad_and_copy",
		Grid:             gpusim.Dim3{X: grids},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    16,
		GlobalLoadBytes:  bytes * 0.5,
		GlobalStoreBytes: bytes,
		LoadTransPerReq:  5.0,
		StoreTransPerReq: 4.0,
		L2HitFrac:        0.3,
		ActiveThreadFrac: 0.9,
		ILP:              1,
		EfficiencyScale:  0.7,
		OccupancyDerate:  p.engine.p.occDerate,
	}
}

// pass simulates one frequency-domain pass: forward transforms of the
// two operand grid sets, layout transposes, the batched CGEMM, and the
// inverse transform of the result grids. When inTransformed is set the
// operands are already resident in the frequency domain from an earlier
// pass of the same iteration (fbfft reuses the spectra of x and dy for
// the weight-gradient pass), so the input-side transforms are skipped.
func (p *fftPlan) pass(inGrids1, inGrids2, outGrids, m, n, k int, inTransformed bool) error {
	e := p.engine.p
	if !inTransformed {
		if e.padKernel {
			if _, err := p.dev.Launch(p.padSpec(inGrids1 + inGrids2)); err != nil {
				return err
			}
		}
		if _, err := p.dev.Launch(p.fftSpec("decimateInFrequency", inGrids1+inGrids2)); err != nil {
			return err
		}
		if _, err := p.dev.Launch(p.transposeSpec(inGrids1 + inGrids2)); err != nil {
			return err
		}
	}
	if _, err := p.dev.Launch(p.cgemmSpec(m, n, k)); err != nil {
		return err
	}
	if _, err := p.dev.Launch(p.transposeSpec(outGrids)); err != nil {
		return err
	}
	_, err := p.dev.Launch(p.fftSpec("decimateInFrequencyInverse", outGrids))
	return err
}

func (p *fftPlan) Forward(x, w, y *tensor.Tensor) error {
	defer beginPhase(p.dev, "forward")()
	cfg := p.cfg
	// y_f = Σ_c X_c · conj(W_fc): per bin an (f×c)·(c×b) product.
	// Activation and output grids multiply with the overlap-add tile
	// count; filter grids are transformed once and reused per tile.
	if err := p.pass(cfg.Batch*cfg.Channels*p.tiles, cfg.Filters*cfg.Channels,
		cfg.Batch*cfg.Filters*p.tiles, cfg.Filters, cfg.Batch, cfg.Channels, false); err != nil {
		return err
	}
	p.xTransformed = true
	if x != nil {
		conv.FFTForward(cfg, x, w, y)
	}
	return nil
}

func (p *fftPlan) BackwardData(dy, w, dx *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_data")()
	cfg := p.cfg
	// dx_c = Σ_f DY_f · W_fc: per bin a (c×f)·(f×b) product.
	if err := p.pass(cfg.Batch*cfg.Filters*p.tiles, cfg.Filters*cfg.Channels,
		cfg.Batch*cfg.Channels*p.tiles, cfg.Channels, cfg.Batch, cfg.Filters, false); err != nil {
		return err
	}
	p.dyTransformed = true
	if dy != nil {
		conv.FFTBackwardData(cfg, dy, w, dx)
	}
	return nil
}

func (p *fftPlan) BackwardFilter(x, dy, dw *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_filter")()
	cfg := p.cfg
	// dw_fc = Σ_b X_bc · conj(DY_bf): per bin an (f×b)·(b×c) product
	// with the batch as the reduction depth; the filter-gradient grids
	// accumulate across tiles.
	reuse := p.engine.p.reuseTransforms && p.xTransformed && p.dyTransformed
	if err := p.pass(cfg.Batch*cfg.Channels*p.tiles, cfg.Batch*cfg.Filters*p.tiles,
		cfg.Filters*cfg.Channels, cfg.Filters, cfg.Channels, cfg.Batch, reuse); err != nil {
		return err
	}
	p.xTransformed, p.dyTransformed = false, false
	if x != nil {
		conv.FFTBackwardFilter(cfg, x, dy, dw)
	}
	return nil
}

func (p *fftPlan) Inference() error {
	p.engine.p.transfer.doTransfer(p.dev, p.cfg)
	return p.Forward(nil, nil, nil)
}

func (p *fftPlan) Iteration() error {
	p.engine.p.transfer.doTransfer(p.dev, p.cfg)
	if err := p.Forward(nil, nil, nil); err != nil {
		return err
	}
	if err := p.BackwardData(nil, nil, nil); err != nil {
		return err
	}
	return p.BackwardFilter(nil, nil, nil)
}

// FbfftOptions toggles fbfft's two key design choices for ablation
// studies: overlap-add tiling of large inputs and the reuse of x/dy
// spectra across the passes of one iteration.
type FbfftOptions struct {
	DisableTiling         bool
	DisableTransformReuse bool
}

// NewFbfftVariant builds an fbfft engine with selected optimisations
// disabled — the ablation knobs behind the design-choice benchmarks in
// DESIGN.md. The returned engine's name records the ablation.
func NewFbfftVariant(opts FbfftOptions) Engine {
	e := NewFbfft().(*fftEngine)
	if opts.DisableTiling {
		e.p.tiled = false
		e.p.name += "/no-tiling"
	}
	if opts.DisableTransformReuse {
		e.p.reuseTransforms = false
		e.p.name += "/no-reuse"
	}
	return e
}

// NewFbfft returns the fbfft engine: Facebook's hand-tuned FFT
// convolution (decimation in frequency, Hermitian-symmetric grids,
// BDHW↔HWBD transposes around a batched CGEMM). The paper's overall
// fastest implementation for large kernels, at the cost of the highest
// memory consumption.
func NewFbfft() Engine {
	return &fftEngine{p: fftParams{
		name:      "fbfft",
		hermitian: true,
		tiled:     true,
		fftRegs:   106, fftSmem: 10 * 1024, // Table II
		fftEff: 0.75, fftConflictRate: 0.08, fftBroadcast: 1.1,
		fftWEE: 0.98, fftILP: 3, fftTrans: 1.5, fftL2: 0.55,
		occDerate:       0.85,
		cgemmEff:        0.75,
		reuseTransforms: true,
		transposeTrans:  1.5, transposeL2: 0.55,
		padKernel:    false,
		doubleBuffer: true,
		transfer:     transferPolicy{pinned: true, async: true}, // ≈0% in Fig. 7
	}}
}

// NewTheanoFFT returns the Theano-fft engine: the same strategy as
// fbfft implemented through Theano's generic graph — full complex
// grids, device-side padding passes, bank-conflicted transform kernels
// with divergent warps (WEE 66–81% in Figure 6), minimal register use
// (2 registers/thread in Table II: high occupancy, poor throughput),
// and synchronous pageable host staging. The paper's slowest
// implementation throughout.
func NewTheanoFFT() Engine {
	return &fftEngine{p: fftParams{
		name:      "Theano-fft",
		hermitian: false,
		fftRegs:   2, fftSmem: 4608, // Table II: 2 regs, 4.5 KB
		fftEff: 0.28, fftConflictRate: 10.0, fftBroadcast: 1.0,
		fftWEE: 0.74, fftILP: 1, fftTrans: 3.5, fftL2: 0.3,
		occDerate:      0.50,
		cgemmEff:       0.30,
		transposeTrans: 4.0, transposeL2: 0.35,
		padKernel:    true,
		doubleBuffer: false,
		transfer:     transferPolicy{pinned: false, async: false, factor: 2},
	}}
}
