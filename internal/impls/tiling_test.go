package impls

import (
	"testing"

	"gpucnn/internal/conv"
)

// Direct unit tests of fbfft's transform-size / tile-count selection.
func TestFbfftTilingChoices(t *testing.T) {
	e := NewFbfft().(*fftEngine)
	cases := []struct {
		input, kernel int
		wantN, wantT  int
	}{
		{128, 11, 128, 1}, // exact power of two: single tile
		{96, 11, 128, 1},  // pads up (cheaper than 4 tiles of 64)
		{144, 11, 64, 3},  // just past 128: 3×3 tiles of 64 beat one 256
		{256, 11, 256, 1}, // 256 single beats 9 tiles of 128
		{32, 11, 32, 1},
	}
	for _, c := range cases {
		cfg := conv.Config{Batch: 64, Input: c.input, Channels: 3, Filters: 64, Kernel: c.kernel, Stride: 1}
		n, tiles := e.tiling(cfg)
		if n != c.wantN || tiles != c.wantT {
			t.Errorf("i=%d k=%d: tiling = (%d, %d), want (%d, %d)",
				c.input, c.kernel, n, tiles, c.wantN, c.wantT)
		}
	}
}

func TestTheanoFFTNeverTiles(t *testing.T) {
	e := NewTheanoFFT().(*fftEngine)
	for _, i := range []int{64, 144, 200, 256} {
		cfg := conv.Config{Batch: 64, Input: i, Channels: 3, Filters: 64, Kernel: 11, Stride: 1}
		n, tiles := e.tiling(cfg)
		if tiles != 1 {
			t.Errorf("Theano-fft should never tile, got %d tiles at i=%d", tiles, i)
		}
		if n < i {
			t.Errorf("transform %d smaller than input %d", n, i)
		}
	}
}

func TestFbfftVariantNames(t *testing.T) {
	v := NewFbfftVariant(FbfftOptions{DisableTiling: true, DisableTransformReuse: true})
	if v.Name() != "fbfft/no-tiling/no-reuse" {
		t.Fatalf("variant name = %q", v.Name())
	}
	if NewFbfft().Name() != "fbfft" {
		t.Fatal("base name changed")
	}
}
