package impls

import (
	"testing"

	"gpucnn/internal/workload"
)

// TestPlanSharedUsesLessMemorySameTime: PlanShared skips the
// activation buffers (the framework owns them) but must launch the
// identical kernel sequence.
func TestPlanSharedUsesLessMemorySameTime(t *testing.T) {
	cfg := workload.Base()
	for _, e := range append(All(), Extensions()...) {
		if err := e.Supports(cfg); err != nil {
			continue
		}
		devA, devB := newDev(), newDev()
		full, err := e.Plan(devA, cfg)
		if err != nil {
			t.Fatalf("%s Plan: %v", e.Name(), err)
		}
		shared, err := e.PlanShared(devB, cfg)
		if err != nil {
			t.Fatalf("%s PlanShared: %v", e.Name(), err)
		}
		if devB.Mem.Peak() >= devA.Mem.Peak() {
			t.Errorf("%s: PlanShared peak %d should be below Plan peak %d",
				e.Name(), devB.Mem.Peak(), devA.Mem.Peak())
		}
		if err := full.Iteration(); err != nil {
			t.Fatal(err)
		}
		if err := shared.Iteration(); err != nil {
			t.Fatal(err)
		}
		if devA.Elapsed() != devB.Elapsed() {
			t.Errorf("%s: shared plan timing %v differs from full plan %v",
				e.Name(), devB.Elapsed(), devA.Elapsed())
		}
		full.Release()
		shared.Release()
	}
}

// TestEnginesDeterministicAcrossInstances: two independent engine
// instances on independent devices must produce identical simulations.
func TestEnginesDeterministicAcrossInstances(t *testing.T) {
	cfg := workload.Base()
	for _, name := range Names() {
		e1, _ := ByName(name)
		e2, _ := ByName(name)
		d1, d2 := newDev(), newDev()
		p1, err := e1.Plan(d1, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p2, err := e2.Plan(d2, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p1.Iteration()
		p2.Iteration()
		if d1.Elapsed() != d2.Elapsed() || d1.Mem.Peak() != d2.Mem.Peak() {
			t.Errorf("%s not deterministic: %v/%d vs %v/%d",
				name, d1.Elapsed(), d1.Mem.Peak(), d2.Elapsed(), d2.Mem.Peak())
		}
		p1.Release()
		p2.Release()
	}
}

// TestKernelNamesStable: the profile kernel names are part of the
// Figure 4 contract; pin them.
func TestKernelNamesStable(t *testing.T) {
	want := map[string][]string{
		"Caffe":          {"cublas_sgemm", "im2col_gpu_kernel", "col2im_gpu_kernel"},
		"Torch-cunn":     {"cublas_sgemm", "im2col_gpu_kernel", "col2im_gpu_kernel"},
		"Theano-CorrMM":  {"cublas_sgemm", "corrMM_im2col_kernel", "corrMM_col2im_kernel"},
		"cuDNN":          {"cudnn_gemm", "wgrad_alg0_engine", "cudnn_precompute_stage"},
		"cuda-convnet2":  {"filterActs_YxX_color", "img_acts_color", "conv_weight_acts_c_preload"},
		"fbfft":          {"decimateInFrequency", "decimateInFrequencyInverse", "transpose", "cgemm_batched"},
		"Theano-fft":     {"decimateInFrequency", "decimateInFrequencyInverse", "transpose", "cgemm_batched", "pad_and_copy"},
		"cuDNN-Winograd": {"winograd_fwd_3x3_s1", "winograd_bwd_data_3x3_s1", "winograd_bwd_filter_3x3_s1"},
	}
	for name, kernels := range want {
		e, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		cfg := workload.Base()
		if name == "cuDNN-Winograd" {
			cfg.Kernel = 3
		}
		dev := newDev()
		p, err := e.Plan(dev, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		p.Iteration()
		have := map[string]bool{}
		for _, k := range dev.Prof.Kernels() {
			have[k.Name] = true
		}
		for _, k := range kernels {
			if !have[k] {
				t.Errorf("%s: kernel %q missing from profile", name, k)
			}
		}
		// Besides the transfer, no unexpected kernels.
		if len(have) > len(kernels)+1 {
			t.Errorf("%s: unexpected extra kernels: %v", name, have)
		}
		p.Release()
	}
}
