package impls

import (
	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/tensor"
)

// winogradEngine is an *extension* beyond the paper's seven
// implementations: the F(2×2, 3×3) minimal-filtering convolution that
// cuDNN shipped after the paper's study — exactly the "opportunity for
// further optimization" its conclusion calls for. It is exposed through
// Extensions(), not All(), so the paper's comparisons stay faithful.
//
// The cost model mirrors cuDNN's fused style (tiled compute from
// shared memory) but with the 2.25× multiply reduction of the Winograd
// transform, paid for by transform overhead on the input/output tiles.
type winogradEngine struct{}

// NewWinograd returns the F(2×2,3×3) Winograd engine.
func NewWinograd() Engine { return &winogradEngine{} }

func (e *winogradEngine) Name() string            { return "cuDNN-Winograd" }
func (e *winogradEngine) Strategy() conv.Strategy { return conv.Direct }

// Supports: 3×3 kernels with stride 1 only.
func (e *winogradEngine) Supports(cfg conv.Config) error {
	if err := conv.WinogradSupported(cfg.WithDefaults()); err != nil {
		return errUnsupported(e.Name(), cfg, err.Error())
	}
	return nil
}

func (e *winogradEngine) Plan(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, false)
}

// PlanShared plans with framework-owned activations.
func (e *winogradEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (Plan, error) {
	return e.plan(dev, cfg, true)
}

func (e *winogradEngine) plan(dev *gpusim.Device, cfg conv.Config, shared bool) (Plan, error) {
	cfg = cfg.WithDefaults()
	if err := e.Supports(cfg); err != nil {
		return nil, err
	}
	bs := &bufSet{dev: dev}
	if err := bs.allocTrainingSet(cfg, false, false, shared); err != nil {
		bs.release()
		return nil, err
	}
	// Transformed-filter workspace: 16 floats per (f, c) plane.
	if err := bs.alloc(int64(cfg.Filters*cfg.Channels)*16*4, "winograd-filters"); err != nil {
		bs.release()
		return nil, err
	}
	return &winogradPlan{dev: dev, cfg: cfg, bufs: bs}, nil
}

type winogradPlan struct {
	dev  *gpusim.Device
	cfg  conv.Config
	bufs *bufSet
}

func (p *winogradPlan) Config() conv.Config { return p.cfg }
func (p *winogradPlan) Release()            { p.bufs.release() }

func (p *winogradPlan) spec(name string) gpusim.KernelSpec {
	cfg := p.cfg
	// Effective multiply-add volume after the 2.25× reduction, plus
	// ~25% transform overhead (adds, not multiplies).
	flops := 2 * conv.WinogradMultiplies(cfg) * 1.25
	tensorBytes := float64(cfg.InputBytes() + cfg.OutputBytes() + cfg.FilterBytes())
	o := cfg.Out()
	return gpusim.KernelSpec{
		Name:             name,
		Grid:             gpusim.Dim3{X: cfg.Batch * ((o + 1) / 2) * ((o + 1) / 2) / 4},
		Block:            gpusim.Dim3{X: 256},
		RegsPerThread:    96,
		SharedPerBlock:   12 * 1024,
		FLOPs:            flops,
		GlobalLoadBytes:  tensorBytes * 1.2,
		GlobalStoreBytes: tensorBytes * 0.3,
		LoadTransPerReq:  1.5,
		StoreTransPerReq: 1.2,
		L2HitFrac:        0.6,
		UsesShared:       true,
		SharedBroadcast:  1.2,
		BankConflictRate: 0.05,
		ActiveThreadFrac: 0.99,
		ILP:              4,
		EfficiencyScale:  0.85,
	}
}

func (p *winogradPlan) Forward(x, w, y *tensor.Tensor) error {
	defer beginPhase(p.dev, "forward")()
	if _, err := p.dev.Launch(p.spec("winograd_fwd_3x3_s1")); err != nil {
		return err
	}
	if x != nil {
		conv.WinogradForward(p.cfg, x, w, y)
	}
	return nil
}

func (p *winogradPlan) BackwardData(dy, w, dx *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_data")()
	if _, err := p.dev.Launch(p.spec("winograd_bwd_data_3x3_s1")); err != nil {
		return err
	}
	if dy != nil {
		// Backward-data is itself a 3×3 stride-1 correlation, so the
		// Winograd transform applies to it directly.
		conv.WinogradBackwardData(p.cfg, dy, w, dx)
	}
	return nil
}

func (p *winogradPlan) BackwardFilter(x, dy, dw *tensor.Tensor) error {
	defer beginPhase(p.dev, "backward_filter")()
	if _, err := p.dev.Launch(p.spec("winograd_bwd_filter_3x3_s1")); err != nil {
		return err
	}
	if x != nil {
		conv.UnrollBackwardFilter(p.cfg, x, dy, dw)
	}
	return nil
}

func (p *winogradPlan) Inference() error {
	transferPolicy{pinned: true, async: true}.doTransfer(p.dev, p.cfg)
	return p.Forward(nil, nil, nil)
}

func (p *winogradPlan) Iteration() error {
	transferPolicy{pinned: true, async: true}.doTransfer(p.dev, p.cfg)
	if err := p.Forward(nil, nil, nil); err != nil {
		return err
	}
	if err := p.BackwardData(nil, nil, nil); err != nil {
		return err
	}
	return p.BackwardFilter(nil, nil, nil)
}
