package impls

import (
	"fmt"
	"strings"
	"sync"
)

// All returns the seven implementations in the order the paper lists
// them: Caffe, Torch-cunn, Theano-CorrMM, Theano-fft, cuDNN,
// cuda-convnet2, fbfft.
func All() []Engine {
	return []Engine{
		NewCaffe(),
		NewTorchCunn(),
		NewTheanoCorrMM(),
		NewTheanoFFT(),
		NewCuDNN(),
		NewCudaConvnet2(),
		NewFbfft(),
	}
}

// Names returns the names of all engines in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name()
	}
	return names
}

var (
	extMu   sync.Mutex
	extCtor []func() Engine
)

// RegisterExtension adds an engine constructor to the Extensions()
// registry (and therefore to ByName lookup). Packages layered on top
// of impls that provide additional engines — internal/planner's
// cost-model-driven Autotuned — call this from init(), which keeps the
// dependency edge pointing outward: impls never imports them.
func RegisterExtension(ctor func() Engine) {
	extMu.Lock()
	defer extMu.Unlock()
	extCtor = append(extCtor, ctor)
}

// Extensions returns implementations that go beyond the paper's seven —
// post-publication optimisations implemented as the "opportunities for
// further optimization" the paper's conclusion identifies, plus any
// engines installed via RegisterExtension. They are kept out of All()
// so the reproduced comparisons stay faithful.
func Extensions() []Engine {
	out := []Engine{NewWinograd(), NewAuto(0), NewTheanoLegacy()}
	extMu.Lock()
	defer extMu.Unlock()
	for _, ctor := range extCtor {
		out = append(out, ctor())
	}
	return out
}

// ByName looks an engine up case-insensitively by its paper name
// (extensions included).
func ByName(name string) (Engine, error) {
	for _, e := range append(All(), Extensions()...) {
		if strings.EqualFold(e.Name(), name) {
			return e, nil
		}
	}
	return nil, fmt.Errorf("impls: unknown implementation %q (have %s)",
		name, strings.Join(Names(), ", "))
}
