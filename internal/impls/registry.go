package impls

import (
	"fmt"
	"strings"
)

// All returns the seven implementations in the order the paper lists
// them: Caffe, Torch-cunn, Theano-CorrMM, Theano-fft, cuDNN,
// cuda-convnet2, fbfft.
func All() []Engine {
	return []Engine{
		NewCaffe(),
		NewTorchCunn(),
		NewTheanoCorrMM(),
		NewTheanoFFT(),
		NewCuDNN(),
		NewCudaConvnet2(),
		NewFbfft(),
	}
}

// Names returns the names of all engines in registry order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, e := range all {
		names[i] = e.Name()
	}
	return names
}

// Extensions returns implementations that go beyond the paper's seven —
// post-publication optimisations implemented as the "opportunities for
// further optimization" the paper's conclusion identifies. They are
// kept out of All() so the reproduced comparisons stay faithful.
func Extensions() []Engine {
	return []Engine{NewWinograd(), NewAuto(0), NewTheanoLegacy()}
}

// ByName looks an engine up case-insensitively by its paper name
// (extensions included).
func ByName(name string) (Engine, error) {
	for _, e := range append(All(), Extensions()...) {
		if strings.EqualFold(e.Name(), name) {
			return e, nil
		}
	}
	return nil, fmt.Errorf("impls: unknown implementation %q (have %s)",
		name, strings.Join(Names(), ", "))
}
