package multigpu

import (
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/workload"
)

func TestClusterConstruction(t *testing.T) {
	c := New(4, gpusim.TeslaK40c())
	if c.Size() != 4 || len(c.Devices) != 4 {
		t.Fatalf("cluster size %d", c.Size())
	}
}

func TestNewPanicsOnZeroDevices(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(0, gpusim.TeslaK40c())
}

func TestAllReduceTime(t *testing.T) {
	spec := gpusim.TeslaK40c()
	single := New(1, spec)
	if single.AllReduceTime(100<<20) != 0 {
		t.Fatal("single device needs no all-reduce")
	}
	two := New(2, spec)
	four := New(4, spec)
	t2 := two.AllReduceTime(100 << 20)
	t4 := four.AllReduceTime(100 << 20)
	if t2 <= 0 || t4 <= 0 {
		t.Fatal("all-reduce must take time")
	}
	// Ring volume 2(N-1)/N approaches 2 as N grows: t4 > t2 but < 2*t2.
	if t4 <= t2 || t4 > 2*t2 {
		t.Fatalf("ring scaling wrong: t2=%v t4=%v", t2, t4)
	}
}

func TestDataParallelSpeedup(t *testing.T) {
	// A compute-heavy convolution: data parallelism should pay off.
	cfg := workload.Base()
	cfg.Batch = 128
	results, err := ScalingStudy(impls.NewCuDNN(), cfg, gpusim.TeslaK40c(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Speedup < 0.99 || results[0].Speedup > 1.01 {
		t.Fatalf("1-device speedup = %v, want 1.0", results[0].Speedup)
	}
	if results[1].Speedup < 1.4 {
		t.Fatalf("2-device speedup = %.2f, want ≥1.4", results[1].Speedup)
	}
	if results[2].Speedup <= results[1].Speedup {
		t.Fatalf("4 devices (%.2f×) should beat 2 (%.2f×)", results[2].Speedup, results[1].Speedup)
	}
	// Strong scaling is sub-linear: communication + shard inefficiency.
	if results[2].Speedup > 4 {
		t.Fatalf("4-device speedup %.2f× super-linear", results[2].Speedup)
	}
}

func TestCommunicationGrowsWithWeights(t *testing.T) {
	// A weight-heavy, compute-light shape (1×1 spatial output via big
	// kernel) must show a larger communication fraction than the
	// conv-heavy base config — the effect that drove reference [18] to
	// model-parallel FC layers.
	c := New(4, gpusim.TeslaK40c())
	convHeavy := workload.Base()
	convHeavy.Batch = 128
	weightHeavy := conv.Config{Batch: 128, Input: 13, Channels: 384, Filters: 384, Kernel: 3, Stride: 1}
	rConv, err := c.Iteration(impls.NewCuDNN(), convHeavy)
	if err != nil {
		t.Fatal(err)
	}
	rW, err := c.Iteration(impls.NewCuDNN(), weightHeavy)
	if err != nil {
		t.Fatal(err)
	}
	if rW.CommFraction <= rConv.CommFraction {
		t.Fatalf("weight-heavy comm fraction %.3f should exceed conv-heavy %.3f",
			rW.CommFraction, rConv.CommFraction)
	}
}

func TestBatchMustShardEvenly(t *testing.T) {
	c := New(3, gpusim.TeslaK40c())
	cfg := workload.Base() // batch 64, not divisible by 3
	if _, err := c.Iteration(impls.NewCuDNN(), cfg); err == nil {
		t.Fatal("uneven shard should error")
	}
}

func TestShardShapeLimitsPropagate(t *testing.T) {
	// cuda-convnet2 needs batch % 32 == 0 per shard: a global batch of
	// 64 across 4 devices gives shards of 16 — unsupported.
	c := New(4, gpusim.TeslaK40c())
	cfg := workload.Base()
	if _, err := c.Iteration(impls.NewCudaConvnet2(), cfg); err == nil {
		t.Fatal("shard of 16 should violate cuda-convnet2's batch constraint")
	}
	// With a global batch of 128 the 32-image shards work.
	cfg.Batch = 128
	if _, err := c.Iteration(impls.NewCudaConvnet2(), cfg); err != nil {
		t.Fatalf("32-image shards should work: %v", err)
	}
}

func TestResultAccounting(t *testing.T) {
	c := New(2, gpusim.TeslaK40c())
	cfg := workload.Base()
	r, err := c.Iteration(impls.NewFbfft(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != r.ComputeTime+r.AllReduce {
		t.Fatal("Total must equal compute + all-reduce")
	}
	if r.ShardBatch != 32 || r.Devices != 2 {
		t.Fatalf("shard accounting wrong: %+v", r)
	}
	if r.CommFraction <= 0 || r.CommFraction >= 1 {
		t.Fatalf("comm fraction %v out of range", r.CommFraction)
	}
}

// TestNewShards: the fleet constructor hands back n fully independent
// clusters — private device arrays, shared spec.
func TestNewShards(t *testing.T) {
	shards := NewShards(3, 2, gpusim.TeslaK40c())
	if len(shards) != 3 {
		t.Fatalf("got %d shards, want 3", len(shards))
	}
	seen := map[*gpusim.Device]bool{}
	for i, c := range shards {
		if c.Size() != 2 {
			t.Fatalf("shard %d has %d devices, want 2", i, c.Size())
		}
		for _, d := range c.Devices {
			if seen[d] {
				t.Fatalf("shard %d shares a device with another shard", i)
			}
			seen[d] = true
		}
		cfg := workload.Base()
		if _, err := c.Iteration(impls.NewFbfft(), cfg); err != nil {
			t.Fatalf("shard %d cannot run: %v", i, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewShards(0, ...) did not panic")
		}
	}()
	NewShards(0, 2, gpusim.TeslaK40c())
}
