package multigpu

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/telemetry"
	"gpucnn/internal/tensor"
	"gpucnn/internal/workload"
)

// failEngine fails on a chosen replica: either Plan or Iteration
// errors once the device-call counter reaches failAt.
type failEngine struct {
	mu       sync.Mutex
	calls    int
	failAt   int  // 0-based index of the Plan call that misbehaves
	failPlan bool // fail in Plan; otherwise in Iteration
}

var errInjected = errors.New("injected failure")

func (f *failEngine) Name() string                   { return "fail" }
func (f *failEngine) Strategy() conv.Strategy        { return conv.Direct }
func (f *failEngine) Supports(cfg conv.Config) error { return nil }

func (f *failEngine) Plan(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	f.mu.Lock()
	n := f.calls
	f.calls++
	f.mu.Unlock()
	if n == f.failAt && f.failPlan {
		return nil, errInjected
	}
	return &failPlan{cfg: cfg, dev: dev, fail: n == f.failAt}, nil
}

func (f *failEngine) PlanShared(dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	return f.Plan(dev, cfg)
}

type failPlan struct {
	cfg  conv.Config
	dev  *gpusim.Device
	fail bool
}

func (p *failPlan) Config() conv.Config                           { return p.cfg }
func (p *failPlan) Forward(x, w, y *tensor.Tensor) error          { return nil }
func (p *failPlan) BackwardData(dy, w, dx *tensor.Tensor) error   { return nil }
func (p *failPlan) BackwardFilter(x, dy, dw *tensor.Tensor) error { return nil }
func (p *failPlan) Inference() error                              { return nil }
func (p *failPlan) Release()                                      {}

func (p *failPlan) Iteration() error {
	if p.fail {
		return errInjected
	}
	p.dev.MustLaunch(gpusim.KernelSpec{
		Name:  "fake_kernel",
		Grid:  gpusim.Dim3{X: 64},
		Block: gpusim.Dim3{X: 128},
		FLOPs: 1e6,
	})
	return nil
}

// assertHygiene walks the tracer's forest checking every span ended,
// and checks no device still carries a telemetry sink.
func assertHygiene(t *testing.T, tr *telemetry.Tracer, c *Cluster) {
	t.Helper()
	for _, root := range tr.Roots() {
		root.Walk(func(depth int, s *telemetry.Span) {
			if !s.Ended() {
				t.Errorf("span %q (depth %d) left un-ended after failed iteration", s.Name(), depth)
			}
		})
	}
	for i, dev := range c.Devices {
		if dev.Sink() != nil {
			t.Errorf("device %d still has a telemetry sink attached", i)
		}
	}
}

// TestFailedIterationLeavesNoDanglingTelemetry: whichever replica the
// engine fails on — and whether it fails planning or iterating — every
// span must be ended and every device sink detached, so a later export
// from the same cluster is uncorrupted.
func TestFailedIterationLeavesNoDanglingTelemetry(t *testing.T) {
	cfg := workload.Base() // batch 64 shards across 4 devices
	for _, failPlan := range []bool{true, false} {
		for failAt := 0; failAt < 3; failAt++ {
			name := fmt.Sprintf("failPlan=%v/replica=%d", failPlan, failAt)
			tr := telemetry.NewTracer()
			ctx := telemetry.WithTracer(context.Background(), tr)
			c := New(4, gpusim.TeslaK40c())
			_, err := c.IterationCtx(ctx, &failEngine{failAt: failAt, failPlan: failPlan}, cfg)
			if !errors.Is(err, errInjected) {
				t.Fatalf("%s: want injected failure, got %v", name, err)
			}
			assertHygiene(t, tr, c)
		}
	}
}

// TestHealthyIterationStillTraces: the hygiene restructure must not
// change the happy path — replica spans exist, carry events, and end.
func TestHealthyIterationStillTraces(t *testing.T) {
	tr := telemetry.NewTracer()
	ctx := telemetry.WithTracer(context.Background(), tr)
	c := New(2, gpusim.TeslaK40c())
	cfg := workload.Base()
	if _, err := c.IterationCtx(ctx, impls.NewCuDNN(), cfg); err != nil {
		t.Fatal(err)
	}
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("want 1 root span, got %d", len(roots))
	}
	replicas := 0
	for _, ch := range roots[0].Children() {
		if ch.Name() == "replica-0" || ch.Name() == "replica-1" {
			replicas++
			if tot := ch.Totals(); tot.Kernels == 0 {
				t.Errorf("%s recorded no kernel events", ch.Name())
			}
		}
	}
	if replicas != 2 {
		t.Fatalf("want 2 replica spans, got %d", replicas)
	}
	assertHygiene(t, tr, c)
}

// TestPlanCacheReuseAndRelease: the same (device, config) pair must
// yield one plan across calls; distinct configs and devices must not
// share plans; Release must leave the cache rebuildable.
func TestPlanCacheReuseAndRelease(t *testing.T) {
	c := New(2, gpusim.TeslaK40c())
	eng := &failEngine{failAt: -1}
	pc := NewPlanCache(c, eng)
	cfg := conv.Config{Batch: 4, Input: 16, Channels: 3, Filters: 8, Kernel: 3, Stride: 1}

	var p1, p2 impls.Plan
	if err := pc.Exec(0, cfg, func(_ *gpusim.Device, p impls.Plan) error { p1 = p; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := pc.Exec(0, cfg, func(_ *gpusim.Device, p impls.Plan) error { p2 = p; return nil }); err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("same device+config must reuse the cached plan")
	}
	if err := pc.Exec(1, cfg, func(_ *gpusim.Device, p impls.Plan) error { p2 = p; return nil }); err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("devices must not share plans")
	}
	other := cfg
	other.Batch = 8
	if err := pc.Exec(0, other, func(_ *gpusim.Device, p impls.Plan) error { p2 = p; return nil }); err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("configs must not share plans")
	}
	if eng.calls != 3 {
		t.Fatalf("want 3 Plan calls, got %d", eng.calls)
	}
	pc.Release()
	if err := pc.Exec(0, cfg, func(_ *gpusim.Device, p impls.Plan) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if eng.calls != 4 {
		t.Fatalf("plan must rebuild after Release; got %d calls", eng.calls)
	}
}

// TestExecOnSerialisesDevice: concurrent ExecOn calls on one device
// must not interleave (the Elapsed-delta measurement pattern).
func TestExecOnSerialisesDevice(t *testing.T) {
	c := New(1, gpusim.TeslaK40c())
	var inside, peak int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.ExecOn(0, func(dev *gpusim.Device) error {
				mu.Lock()
				inside++
				if inside > peak {
					peak = inside
				}
				mu.Unlock()
				dev.MustLaunch(gpusim.KernelSpec{Name: "k", Grid: gpusim.Dim3{X: 1}, Block: gpusim.Dim3{X: 32}})
				mu.Lock()
				inside--
				mu.Unlock()
				return nil
			})
		}()
	}
	wg.Wait()
	if peak != 1 {
		t.Fatalf("ExecOn admitted %d concurrent users of one device", peak)
	}
}
