package multigpu

import (
	"sync"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
)

// PlanCache is the thread-safe per-device plan path a concurrent
// dispatcher (the inference server) needs: one engine, one plan per
// (device, configuration), built lazily and reused across batches so
// steady-state serving does not re-allocate device memory. Execution
// through the cache is serialised per device via Cluster.ExecOn, so an
// Elapsed()-delta measured inside Exec is attributable to exactly the
// work fn issued.
type PlanCache struct {
	cluster *Cluster
	engine  impls.Engine

	mu    sync.Mutex
	plans []map[conv.Config]impls.Plan // per device, keyed by config
}

// NewPlanCache creates an empty cache over the cluster's devices.
func NewPlanCache(c *Cluster, e impls.Engine) *PlanCache {
	return &PlanCache{
		cluster: c,
		engine:  e,
		plans:   make([]map[conv.Config]impls.Plan, c.Size()),
	}
}

// Engine returns the engine the cache plans for.
func (pc *PlanCache) Engine() impls.Engine { return pc.engine }

// plan returns the cached plan for (device i, cfg), building it on
// first use. Plan errors (shape limits, device OOM) are not cached.
func (pc *PlanCache) plan(i int, dev *gpusim.Device, cfg conv.Config) (impls.Plan, error) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if pc.plans[i] == nil {
		pc.plans[i] = make(map[conv.Config]impls.Plan)
	}
	if p, ok := pc.plans[i][cfg]; ok {
		return p, nil
	}
	p, err := pc.engine.Plan(dev, cfg)
	if err != nil {
		return nil, err
	}
	pc.plans[i][cfg] = p
	return p, nil
}

// Exec runs fn with exclusive access to device i and its plan for cfg.
// Safe for concurrent use across devices; calls against the same device
// serialise.
func (pc *PlanCache) Exec(i int, cfg conv.Config, fn func(dev *gpusim.Device, p impls.Plan) error) error {
	cfg = cfg.WithDefaults()
	return pc.cluster.ExecOn(i, func(dev *gpusim.Device) error {
		p, err := pc.plan(i, dev, cfg)
		if err != nil {
			return err
		}
		return fn(dev, p)
	})
}

// Release frees every cached plan's device memory. The cache is
// reusable afterwards (plans rebuild on demand).
func (pc *PlanCache) Release() {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for i, m := range pc.plans {
		for _, p := range m {
			p.Release()
		}
		pc.plans[i] = nil
	}
}
