// Package multigpu extends the single-device study with data-parallel
// training across several simulated GPUs — the "one weird trick"
// scheme (the paper's reference [18], cuda-convnet2) that all the
// surveyed frameworks grew during this period: each device computes a
// shard of the mini-batch, then weight gradients are all-reduced over
// the PCIe interconnect before the update.
//
// The scaling behaviour the model exposes is the classical one: compute
// shrinks with 1/N while the ring all-reduce cost is nearly constant in
// N, so convolutional layers (many flops, few weights) scale well and
// fully-connected layers (few flops, many weights) stall — the reason
// reference [18] parallelises conv layers by data and FC layers by
// model.
package multigpu

import (
	"context"
	"fmt"
	"sync"
	"time"

	"gpucnn/internal/conv"
	"gpucnn/internal/gpusim"
	"gpucnn/internal/impls"
	"gpucnn/internal/obs"
	"gpucnn/internal/telemetry"
)

// Cluster is a set of identical simulated GPUs on one PCIe root.
type Cluster struct {
	Devices []*gpusim.Device
	spec    gpusim.DeviceSpec
	locks   []sync.Mutex // one per device, for ExecOn serialisation
}

// New builds a cluster of n devices with the given spec.
func New(n int, spec gpusim.DeviceSpec) *Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("multigpu: cluster size %d", n))
	}
	c := &Cluster{spec: spec, locks: make([]sync.Mutex, n)}
	for i := 0; i < n; i++ {
		c.Devices = append(c.Devices, gpusim.New(spec))
	}
	return c
}

// NewShards builds n independent clusters ("shards") of devicesPer
// devices each — the serving-fleet topology: every replica owns a
// private shard, so one replica's device queues can never convoy
// another's and a shard can be added or drained without touching its
// peers.
func NewShards(n, devicesPer int, spec gpusim.DeviceSpec) []*Cluster {
	if n <= 0 {
		panic(fmt.Sprintf("multigpu: shard count %d", n))
	}
	out := make([]*Cluster, n)
	for i := range out {
		out[i] = New(devicesPer, spec)
	}
	return out
}

// Size returns the device count.
func (c *Cluster) Size() int { return len(c.Devices) }

// Spec returns the device specification shared by the cluster.
func (c *Cluster) Spec() gpusim.DeviceSpec { return c.spec }

// ExecOn runs fn with exclusive access to device i. A gpusim.Device is
// internally thread-safe, but measuring a unit of work as an
// Elapsed()-delta (and attaching a telemetry sink around it) is not —
// concurrent dispatchers would interleave their kernels on one clock.
// Every concurrent user of a cluster device must go through ExecOn.
func (c *Cluster) ExecOn(i int, fn func(dev *gpusim.Device) error) error {
	c.locks[i].Lock()
	defer c.locks[i].Unlock()
	return fn(c.Devices[i])
}

// AllReduceTime models a ring all-reduce of `bytes` gradient bytes
// across the cluster over PCIe (peer-to-peer at pinned bandwidth):
// each device sends and receives 2·(N−1)/N of the buffer.
func (c *Cluster) AllReduceTime(bytes int64) time.Duration {
	n := len(c.Devices)
	if n == 1 {
		return 0
	}
	bw := c.spec.PCIePinnedGBps * 1e9
	vol := 2 * float64(n-1) / float64(n) * float64(bytes)
	sec := vol/bw + float64(n-1)*c.spec.TransferLatencyNs/1e9
	return time.Duration(sec * 1e9)
}

// Result summarises one data-parallel iteration.
type Result struct {
	Devices      int
	ShardBatch   int
	ComputeTime  time.Duration // slowest device's local iteration
	AllReduce    time.Duration
	Total        time.Duration
	Speedup      float64 // vs the 1-device iteration on the full batch
	CommFraction float64
}

// Iteration simulates one data-parallel training iteration of a
// convolution layer: the global batch is sharded evenly (it must
// divide; remainders would unbalance the ring), each device runs its
// shard, and the filter gradients are all-reduced.
func (c *Cluster) Iteration(e impls.Engine, cfg conv.Config) (Result, error) {
	return c.IterationCtx(context.Background(), e, cfg)
}

// IterationCtx is Iteration with telemetry: when the context carries a
// span (or tracer), every replica's kernel stream lands in its own
// process lane under a per-replica span, and the gradient all-reduce
// appears as a sync span after the slowest replica — the view that
// makes the conv-scales/FC-stalls behaviour visible on a timeline.
// Counters for sharded iterations, all-reduced bytes and sync time land
// in the context's registry, if any.
func (c *Cluster) IterationCtx(ctx context.Context, e impls.Engine, cfg conv.Config) (Result, error) {
	n := len(c.Devices)
	cfg = cfg.WithDefaults()
	if cfg.Batch%n != 0 {
		return Result{}, fmt.Errorf("multigpu: batch %d does not shard across %d devices", cfg.Batch, n)
	}
	shard := cfg
	shard.Batch = cfg.Batch / n
	if err := e.Supports(shard); err != nil {
		return Result{}, fmt.Errorf("multigpu: shard unsupported: %w", err)
	}

	_, span := telemetry.StartSpan(ctx, "multigpu.iteration")
	span.SetAttr("impl", e.Name()).SetAttr("devices", fmt.Sprint(n))
	defer span.End()
	plane := obs.FromContext(ctx)
	plane.SetOp(fmt.Sprintf("multigpu/%s/x%d/%s", e.Name(), n, cfg))

	// runReplica executes one device's shard. The replica span is ended
	// and the device's telemetry sink detached on every exit path —
	// leaking either across an error corrupts later exports from the
	// same cluster (a stale sink keeps appending foreign events to a
	// dead span).
	runReplica := func(i int, dev *gpusim.Device) (el time.Duration, err error) {
		dev.ResetClock()
		rsp := span.Child(fmt.Sprintf("replica-%d", i)).SetProc(i).
			SetAttr("shard_batch", fmt.Sprint(shard.Batch))
		// Tee the span recorder with the plane's per-device windowed
		// sink; either leg may be absent.
		var sink gpusim.TraceSink
		if rsp != nil {
			rec := telemetry.NewRecorder()
			rec.Attach(rsp)
			sink = rec
		}
		if plane != nil {
			sink = obs.TeeSinks(sink, obs.NewDeviceSink(plane, fmt.Sprint(i)))
		}
		if sink != nil {
			dev.SetSink(sink)
		}
		defer func() {
			rsp.SetSim(0, dev.Elapsed())
			rsp.End()
			dev.SetSink(nil)
		}()
		plan, err := e.Plan(dev, shard)
		if err != nil {
			return 0, err
		}
		defer plan.Release()
		if err := plan.Iteration(); err != nil {
			return 0, err
		}
		return dev.Elapsed(), nil
	}

	var slowest time.Duration
	for i, dev := range c.Devices {
		el, err := runReplica(i, dev)
		if err != nil {
			return Result{}, err
		}
		if el > slowest {
			slowest = el
		}
	}
	ar := c.AllReduceTime(cfg.FilterBytes())
	total := slowest + ar
	span.Child("allreduce").
		SetAttr("bytes", fmt.Sprint(cfg.FilterBytes())).
		SetSim(slowest, total).End()
	span.SetSim(0, total)
	if reg := telemetry.RegistryFromContext(ctx); reg != nil {
		labels := telemetry.Labels{"impl": e.Name(), "devices": fmt.Sprint(n)}
		reg.Counter("multigpu_iterations_total", labels).Inc()
		reg.Counter("multigpu_allreduce_bytes_total", labels).Add(float64(cfg.FilterBytes()))
		reg.Counter("multigpu_allreduce_seconds_total", labels).Add(ar.Seconds())
		reg.Counter("multigpu_compute_seconds_total", labels).Add(slowest.Seconds())
	}
	plane.Counter("multigpu.iterations").Inc()
	plane.Counter("multigpu.allreduce_bytes").Add(float64(cfg.FilterBytes()))
	plane.Counter("multigpu.allreduce_seconds").Add(ar.Seconds())
	plane.Counter("multigpu.compute_seconds").Add(slowest.Seconds())

	// Single-device reference for the speedup.
	ref := gpusim.New(c.spec)
	refPlan, err := e.Plan(ref, cfg)
	if err != nil {
		return Result{}, err
	}
	if err := refPlan.Iteration(); err != nil {
		refPlan.Release()
		return Result{}, err
	}
	refPlan.Release()

	res := Result{
		Devices:     n,
		ShardBatch:  shard.Batch,
		ComputeTime: slowest,
		AllReduce:   ar,
		Total:       total,
	}
	if total > 0 {
		res.Speedup = ref.Elapsed().Seconds() / total.Seconds()
		res.CommFraction = ar.Seconds() / total.Seconds()
	}
	return res, nil
}

// ScalingStudy runs the iteration across cluster sizes (1, 2, 4, …)
// and returns the per-size results — a strong-scaling curve for the
// configuration.
func ScalingStudy(e impls.Engine, cfg conv.Config, spec gpusim.DeviceSpec, sizes []int) ([]Result, error) {
	var out []Result
	for _, n := range sizes {
		c := New(n, spec)
		r, err := c.Iteration(e, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
