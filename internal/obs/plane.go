package obs

import (
	"sort"
	"sync"
	"time"

	"gpucnn/internal/telemetry"
)

// DefaultWindow and DefaultResolution give every instrument a one
// minute of history at one-second granularity — wide enough for the
// slow SLO window, fine enough for the fast one.
const (
	DefaultWindow     = time.Minute
	DefaultResolution = time.Second
)

// Fast and Slow are the plane's canonical query windows: dashboards
// show "last 10 s" next to "last 1 m", and the burn-rate monitors pair
// a fast window (default FastWindow) with a slow one (the full
// instrument window).
const (
	FastWindow = 10 * time.Second
	SlowWindow = time.Minute
)

// Options configures a Plane. Zero values mean wall clock, one-minute
// window, one-second resolution.
type Options struct {
	Clock      Clock
	Window     time.Duration
	Resolution time.Duration
}

// Plane is one process's rolling observability surface: a registry of
// windowed instruments (same name+kind idempotency as
// telemetry.Registry), an "active operation" tag for profile
// attribution, pluggable info sections (batcher internals, worker-pool
// state) and the monitors/profilers watching it. All methods are safe
// for concurrent use and nil-safe, so layers can thread an optional
// plane through contexts unconditionally.
type Plane struct {
	clock Clock
	win   time.Duration
	res   time.Duration

	mu        sync.Mutex
	counters  map[string]*WindowedCounter
	gauges    map[string]*WindowedGauge
	hists     map[string]*WindowedHistogram
	order     map[string][]string // per kind, registration order
	op        string
	sections  map[string]func() map[string]any
	secOrder  []string
	monitors  []*Monitor
	profilers []*Profiler
}

// NewPlane creates a plane.
func NewPlane(opts Options) *Plane {
	if opts.Clock == nil {
		opts.Clock = Wall
	}
	if opts.Resolution <= 0 {
		opts.Resolution = DefaultResolution
	}
	if opts.Window < opts.Resolution {
		opts.Window = DefaultWindow
	}
	return &Plane{
		clock:    opts.Clock,
		win:      opts.Window,
		res:      opts.Resolution,
		counters: map[string]*WindowedCounter{},
		gauges:   map[string]*WindowedGauge{},
		hists:    map[string]*WindowedHistogram{},
		order:    map[string][]string{},
		sections: map[string]func() map[string]any{},
	}
}

// Clock returns the plane's clock (Wall for a nil plane), so attached
// components share one notion of time.
func (p *Plane) Clock() Clock {
	if p == nil {
		return Wall
	}
	return p.clock
}

// Window returns the configured instrument window (0 for nil).
func (p *Plane) Window() time.Duration {
	if p == nil {
		return 0
	}
	return p.win
}

// Counter returns the named windowed counter, creating it on first
// use. Returns nil (a no-op instrument) on a nil plane.
func (p *Plane) Counter(name string) *WindowedCounter {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.counters[name]
	if !ok {
		c = &WindowedCounter{r: newRing[float64](p.clock, p.win, p.res)}
		p.counters[name] = c
		p.order["counter"] = append(p.order["counter"], name)
	}
	return c
}

// Gauge returns the named windowed gauge, creating it on first use.
func (p *Plane) Gauge(name string) *WindowedGauge {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	g, ok := p.gauges[name]
	if !ok {
		g = &WindowedGauge{r: newRing[gaugeSlot](p.clock, p.win, p.res)}
		p.gauges[name] = g
		p.order["gauge"] = append(p.order["gauge"], name)
	}
	return g
}

// Histogram returns the named windowed histogram, creating it on first
// use with the given bucket bounds (first registration wins; nil means
// telemetry.DefaultLatencyBuckets).
func (p *Plane) Histogram(name string, buckets []float64) *WindowedHistogram {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	h, ok := p.hists[name]
	if !ok {
		if len(buckets) == 0 {
			buckets = telemetry.DefaultLatencyBuckets
		}
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		h = &WindowedHistogram{r: newRing[histSlot](p.clock, p.win, p.res), bounds: bs}
		p.hists[name] = h
		p.order["histogram"] = append(p.order["histogram"], name)
	}
	return h
}

// SetOp tags the plane with the operation currently in flight (sweep
// cell name, serve batch policy). Profile captures and dashboard
// snapshots carry the tag, answering "what was running when this was
// taken".
func (p *Plane) SetOp(op string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.op = op
	p.mu.Unlock()
}

// Op returns the active operation tag.
func (p *Plane) Op() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.op
}

// Section registers a named dashboard info section. The callback runs
// at snapshot time and must be safe to call from any goroutine;
// returned maps should hold JSON-encodable scalars. Re-registering a
// name replaces the callback.
func (p *Plane) Section(name string, fn func() map[string]any) {
	if p == nil {
		return
	}
	p.mu.Lock()
	if _, ok := p.sections[name]; !ok {
		p.secOrder = append(p.secOrder, name)
	}
	p.sections[name] = fn
	p.mu.Unlock()
}

// Watch attaches a monitor so its SLO states appear in dashboard
// snapshots.
func (p *Plane) Watch(m *Monitor) {
	if p == nil || m == nil {
		return
	}
	p.mu.Lock()
	p.monitors = append(p.monitors, m)
	p.mu.Unlock()
}

// Unwatch detaches a monitor (a closing server removes its stopped
// monitor so the dashboard never shows stale states).
func (p *Plane) Unwatch(m *Monitor) {
	if p == nil || m == nil {
		return
	}
	p.mu.Lock()
	for i, w := range p.monitors {
		if w == m {
			p.monitors = append(p.monitors[:i], p.monitors[i+1:]...)
			break
		}
	}
	p.mu.Unlock()
}

// AttachProfiler surfaces a profiler's latest captures in dashboard
// snapshots.
func (p *Plane) AttachProfiler(pr *Profiler) {
	if p == nil || pr == nil {
		return
	}
	p.mu.Lock()
	p.profilers = append(p.profilers, pr)
	p.mu.Unlock()
}

// instruments copies the registry under lock for snapshotting.
func (p *Plane) instruments() (counters, gauges, hists []string,
	cs map[string]*WindowedCounter, gs map[string]*WindowedGauge, hs map[string]*WindowedHistogram,
	monitors []*Monitor, profilers []*Profiler,
	sections []string, secFns map[string]func() map[string]any, op string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	counters = append([]string(nil), p.order["counter"]...)
	gauges = append([]string(nil), p.order["gauge"]...)
	hists = append([]string(nil), p.order["histogram"]...)
	cs, gs, hs = map[string]*WindowedCounter{}, map[string]*WindowedGauge{}, map[string]*WindowedHistogram{}
	for k, v := range p.counters {
		cs[k] = v
	}
	for k, v := range p.gauges {
		gs[k] = v
	}
	for k, v := range p.hists {
		hs[k] = v
	}
	monitors = append([]*Monitor(nil), p.monitors...)
	profilers = append([]*Profiler(nil), p.profilers...)
	sections = append([]string(nil), p.secOrder...)
	secFns = map[string]func() map[string]any{}
	for k, v := range p.sections {
		secFns[k] = v
	}
	return counters, gauges, hists, cs, gs, hs, monitors, profilers, sections, secFns, p.op
}
