package obs

import (
	"testing"

	"gpucnn/internal/workspace"
)

func TestAttachWorkspaceSectionAndGauges(t *testing.T) {
	p := NewPlane(Options{})
	AttachWorkspace(p)

	// Generate some arena traffic so the counters are non-trivial.
	ws := workspace.Get()
	_ = ws.Float32Uninit(2048)
	workspace.Put(ws)

	snap := p.Dash()
	sec, ok := snap.Sections["workspace"]
	if !ok {
		t.Fatalf("dashboard sections missing workspace: %+v", snap.Sections)
	}
	for _, key := range []string{"gets", "puts", "carves", "slab_grows", "carve_hit_rate", "highwater_bytes"} {
		if _, ok := sec[key]; !ok {
			t.Errorf("workspace section missing %q: %+v", key, sec)
		}
	}
	if sec["gets"].(int64) <= 0 {
		t.Errorf("gets = %v, want > 0", sec["gets"])
	}
	if hw := sec["highwater_bytes"].(int64); hw < 2048*4 {
		t.Errorf("highwater_bytes = %d, want >= %d", hw, 2048*4)
	}
	// The lazily sampled gauges must exist after a snapshot.
	if g := p.Gauge("workspace.highwater.bytes"); g.Value() < 2048*4 {
		t.Errorf("highwater gauge = %v, want >= %d", g.Value(), 2048*4)
	}
	rate := p.Gauge("workspace.carve.hitrate").Value()
	if rate < 0 || rate > 1 {
		t.Errorf("hit-rate gauge = %v, want within [0,1]", rate)
	}
}
