package obs

import (
	"testing"
	"time"
)

// sloHarness is a serving SLO pair over a fake clock: a latency
// objective (99% under 8 ms) and a shed-rate objective (under 5%),
// evaluated manually after each clock step.
type sloHarness struct {
	fc      *FakeClock
	p       *Plane
	lat     *WindowedHistogram
	offered *WindowedCounter
	shed    *WindowedCounter
	m       *Monitor
}

func newSLOHarness(t *testing.T) *sloHarness {
	t.Helper()
	fc := NewFakeClock(t0)
	p := testPlane(fc, time.Minute, time.Second)
	h := &sloHarness{
		fc:      fc,
		p:       p,
		lat:     p.Histogram("e2e", []float64{0.001, 0.002, 0.004, 0.008, 0.016}),
		offered: p.Counter("offered"),
		shed:    p.Counter("shed"),
	}
	h.m = NewMonitor(MonitorConfig{Clock: fc, Fast: 5 * time.Second, Slow: time.Minute},
		LatencyObjective{ObjName: "e2e-p99", H: h.lat, Threshold: 0.008, Target: 0.99},
		RateObjective{ObjName: "shed-rate", Bad: h.shed, Total: h.offered, MaxRate: 0.05},
	)
	t.Cleanup(h.m.Stop)
	p.Watch(h.m)
	return h
}

// tick records one second of traffic: good fast requests plus bad slow
// ones, then advances the clock and evaluates.
func (h *sloHarness) tick(good, bad int) []Transition {
	for i := 0; i < good; i++ {
		h.lat.Observe(0.002)
		h.offered.Inc()
	}
	for i := 0; i < bad; i++ {
		h.lat.Observe(0.016)
		h.offered.Inc()
	}
	h.fc.Advance(time.Second)
	return h.m.Eval()
}

// TestSLOHealthyStaysOK: traffic exactly on budget never alerts.
func TestSLOHealthyStaysOK(t *testing.T) {
	h := newSLOHarness(t)
	for i := 0; i < 90; i++ {
		h.tick(100, 0)
	}
	if got := h.m.State("e2e-p99"); got != OK {
		t.Fatalf("healthy latency objective = %v, want OK", got)
	}
	if got := h.m.State("shed-rate"); got != OK {
		t.Fatalf("healthy shed objective = %v, want OK", got)
	}
	if tr := h.m.Transitions(); len(tr) != 0 {
		t.Fatalf("healthy run produced transitions: %+v", tr)
	}
}

// TestSLOEscalationWalk is the acceptance-criterion test: a sustained
// overload drives the latency objective OK→WARN→PAGE in order — the
// fast window saturates immediately, while the slow window ramps
// through WarnBurn before PageBurn — and clearing the overload drops
// it back to OK.
func TestSLOEscalationWalk(t *testing.T) {
	h := newSLOHarness(t)

	// A healthy minute fills the slow window with good traffic.
	for i := 0; i < 60; i++ {
		h.tick(100, 0)
	}
	if got := h.m.State("e2e-p99"); got != OK {
		t.Fatalf("after healthy minute: %v, want OK", got)
	}

	// Overload: 40% of requests land beyond the 8 ms threshold. The
	// fast burn hits 40 immediately; the slow burn climbs from 0
	// toward 40 as bad seconds accumulate in the minute window.
	var walk []Transition
	for i := 0; i < 60; i++ {
		walk = append(walk, h.tick(60, 40)...)
	}
	if got := h.m.State("e2e-p99"); got != PAGE {
		t.Fatalf("after sustained overload: %v, want PAGE", got)
	}

	var states []State
	for _, tr := range walk {
		if tr.Objective == "e2e-p99" {
			states = append(states, tr.To)
		}
	}
	if len(states) != 2 || states[0] != WARN || states[1] != PAGE {
		t.Fatalf("escalation walk = %v, want [WARN PAGE]", states)
	}

	// Recovery: healthy traffic pushes the bad fraction back under
	// budget as the overload ages out of both windows.
	for i := 0; i < 90; i++ {
		h.tick(100, 0)
	}
	if got := h.m.State("e2e-p99"); got != OK {
		t.Fatalf("after recovery: %v, want OK", got)
	}
	tr := h.m.Transitions()
	last := tr[len(tr)-1]
	if last.Objective != "e2e-p99" || last.To != OK {
		t.Fatalf("last transition = %+v, want e2e-p99 -> OK", last)
	}
}

// TestSLOShedRate drives the rate objective: shedding 50% of offered
// load (10× the 5% budget) pages once both windows see it.
func TestSLOShedRate(t *testing.T) {
	h := newSLOHarness(t)
	for i := 0; i < 60; i++ {
		h.tick(100, 0)
	}
	shedTick := func() []Transition {
		for i := 0; i < 50; i++ {
			h.lat.Observe(0.002)
			h.offered.Inc()
		}
		for i := 0; i < 50; i++ {
			h.offered.Inc()
			h.shed.Inc()
		}
		h.fc.Advance(time.Second)
		return h.m.Eval()
	}
	var states []State
	for i := 0; i < 60; i++ {
		for _, tr := range shedTick() {
			if tr.Objective == "shed-rate" {
				states = append(states, tr.To)
			}
		}
	}
	if got := h.m.State("shed-rate"); got != PAGE {
		t.Fatalf("shed objective = %v, want PAGE", got)
	}
	if len(states) != 2 || states[0] != WARN || states[1] != PAGE {
		t.Fatalf("shed escalation = %v, want [WARN PAGE]", states)
	}
}

// TestSLOBlipDoesNotAlert: a short burst saturates the fast window but
// the slow window never confirms, so the state stays OK — the point of
// multi-window burn rates.
func TestSLOBlipDoesNotAlert(t *testing.T) {
	h := newSLOHarness(t)
	for i := 0; i < 60; i++ {
		h.tick(100, 0)
	}
	// Two bad seconds out of sixty: slow-window bad fraction ~3%,
	// burn ~3 < WarnBurn... with budget 1% the slow burn is
	// 2/60/0.01 ≈ 3.3 > 2 — use one bad second to stay under.
	if trs := h.tick(0, 100); len(trs) != 0 {
		t.Fatalf("single bad second alerted immediately: %+v", trs)
	}
	for i := 0; i < 3; i++ {
		if trs := h.tick(100, 0); len(trs) != 0 {
			t.Fatalf("blip recovery alerted: %+v", trs)
		}
	}
	if got := h.m.State("e2e-p99"); got != OK {
		t.Fatalf("after blip: %v, want OK", got)
	}
}

// TestSLONoTrafficIsOK: an idle service must not page (no data burns
// no budget), and a paged objective recovers once traffic stops.
func TestSLONoTrafficIsOK(t *testing.T) {
	h := newSLOHarness(t)
	for i := 0; i < 5; i++ {
		h.fc.Advance(time.Second)
		h.m.Eval()
	}
	if got := h.m.State("e2e-p99"); got != OK {
		t.Fatalf("idle objective = %v, want OK", got)
	}

	// All-bad traffic pages, then going idle recovers.
	for i := 0; i < 70; i++ {
		h.tick(0, 100)
	}
	if got := h.m.State("e2e-p99"); got != PAGE {
		t.Fatalf("all-bad traffic = %v, want PAGE", got)
	}
	h.fc.Advance(2 * time.Minute)
	h.m.Eval()
	if got := h.m.State("e2e-p99"); got != OK {
		t.Fatalf("after traffic aged out = %v, want OK", got)
	}
}

// TestMonitorCallbacksAndStatus covers OnTransition delivery and the
// dashboard Status view.
func TestMonitorCallbacksAndStatus(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, time.Minute, time.Second)
	lat := p.Histogram("e2e", []float64{0.001, 0.008})
	var seen []Transition
	m := NewMonitor(MonitorConfig{
		Clock: fc, Fast: 5 * time.Second, Slow: time.Minute,
		OnTransition: func(tr Transition) { seen = append(seen, tr) },
	}, LatencyObjective{ObjName: "lat", H: lat, Threshold: 0.008, Target: 0.99})
	defer m.Stop()

	for i := 0; i < 70; i++ {
		for j := 0; j < 10; j++ {
			lat.Observe(1) // beyond every bound
		}
		fc.Advance(time.Second)
		m.Eval()
	}
	if len(seen) == 0 || seen[len(seen)-1].To != PAGE {
		t.Fatalf("OnTransition saw %+v, want a PAGE", seen)
	}
	st := m.Status()
	if len(st) != 1 || st[0].State != "PAGE" || st[0].BurnSlow < PageBurn {
		t.Fatalf("Status = %+v", st)
	}

	m.Stop()
	m.Stop() // idempotent
}

// TestMonitorWorstAndStates covers the consumption API added for the
// serve autoscaler: Worst is the max across objectives and States a
// safe copy; both are nil-tolerant.
func TestMonitorWorstAndStates(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, time.Minute, time.Second)
	bad, total := p.Counter("bad"), p.Counter("total")
	lat := p.Histogram("e2e", []float64{0.001, 0.008})
	m := NewMonitor(MonitorConfig{Clock: fc, Fast: 5 * time.Second, Slow: 10 * time.Second},
		LatencyObjective{ObjName: "lat", H: lat, Threshold: 0.008, Target: 0.99},
		RateObjective{ObjName: "shed", Bad: bad, Total: total, MaxRate: 0.05},
	)
	defer m.Stop()

	if got := m.Worst(); got != OK {
		t.Fatalf("fresh monitor Worst = %v, want OK", got)
	}
	// Burn only the shed objective into PAGE; lat stays OK, so Worst
	// must surface the max, not the first.
	for i := 0; i < 12; i++ {
		total.Add(100)
		bad.Add(50)
		lat.Observe(0.001) // comfortably inside the latency bound
		fc.Advance(time.Second)
		m.Eval()
	}
	if got := m.Worst(); got != PAGE {
		t.Fatalf("Worst = %v, want PAGE", got)
	}
	st := m.States()
	if st["lat"] != OK || st["shed"] != PAGE {
		t.Fatalf("States = %v", st)
	}
	st["shed"] = OK // mutating the copy must not touch the monitor
	if m.State("shed") != PAGE {
		t.Fatal("States returned the monitor's internal map")
	}

	var nilM *Monitor
	if nilM.Worst() != OK || nilM.States() != nil {
		t.Fatal("nil monitor accessors not safe")
	}
}
