package obs

import (
	"fmt"
	"sync"
	"time"

	"gpucnn/internal/par"
)

// State is an SLO alert level.
type State int

const (
	// OK: both burn windows inside budget.
	OK State = iota
	// WARN: sustained burn above WarnBurn in both windows — at this
	// pace the error budget dies well before the period ends.
	WARN
	// PAGE: burn above PageBurn in both windows — budget exhaustion is
	// imminent; a human (or the load shedder) must act now.
	PAGE
)

func (s State) String() string {
	switch s {
	case OK:
		return "OK"
	case WARN:
		return "WARN"
	case PAGE:
		return "PAGE"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Objective is one service-level objective the monitor evaluates: a
// name, an error budget (the tolerated bad fraction), and the observed
// bad fraction over an arbitrary trailing window.
type Objective interface {
	Name() string
	Budget() float64
	BadFraction(window time.Duration) float64
}

// LatencyObjective is "quantile latency under threshold": the bad
// fraction is the share of requests slower than Threshold seconds,
// and the budget is 1−Target (Target 0.99 tolerates 1% slow). Align
// Threshold with a bucket bound of H — FractionAbove resolves at
// bucket granularity.
type LatencyObjective struct {
	ObjName   string
	H         *WindowedHistogram
	Threshold float64 // seconds
	Target    float64 // e.g. 0.99 for "99% of requests under Threshold"
}

// Name implements Objective.
func (o LatencyObjective) Name() string { return o.ObjName }

// Budget implements Objective.
func (o LatencyObjective) Budget() float64 { return 1 - o.Target }

// BadFraction implements Objective. An empty window reports 0: no
// traffic burns no budget, which is what lets a paged objective
// recover once the overload clears.
func (o LatencyObjective) BadFraction(w time.Duration) float64 {
	return o.H.Window(w).FractionAbove(o.Threshold)
}

// RateObjective is "bad events under a fraction of total": shed rate,
// failure rate. MaxRate is both the budget and the threshold — a shed
// rate objective with MaxRate 0.05 burns at 1× when exactly 5% of
// offered load is shed.
type RateObjective struct {
	ObjName    string
	Bad, Total *WindowedCounter
	MaxRate    float64
}

// Name implements Objective.
func (o RateObjective) Name() string { return o.ObjName }

// Budget implements Objective.
func (o RateObjective) Budget() float64 { return o.MaxRate }

// BadFraction implements Objective; 0 when the window saw no traffic.
func (o RateObjective) BadFraction(w time.Duration) float64 {
	total := o.Total.Sum(w)
	if total <= 0 {
		return 0
	}
	return o.Bad.Sum(w) / total
}

// Transition is one state change of one objective.
type Transition struct {
	Objective string    `json:"objective"`
	From      State     `json:"-"`
	To        State     `json:"-"`
	FromS     string    `json:"from"`
	ToS       string    `json:"to"`
	At        time.Time `json:"at"`
	BurnFast  float64   `json:"burn_fast"`
	BurnSlow  float64   `json:"burn_slow"`
}

// ObjectiveStatus is the dashboard view of one objective.
type ObjectiveStatus struct {
	Name     string  `json:"name"`
	State    string  `json:"state"`
	Budget   float64 `json:"budget"`
	BadFast  float64 `json:"bad_fast"`
	BadSlow  float64 `json:"bad_slow"`
	BurnFast float64 `json:"burn_fast"`
	BurnSlow float64 `json:"burn_slow"`
}

// MonitorConfig tunes a Monitor. Zero values mean: plane clock (or
// Wall), FastWindow/SlowWindow burn windows, WarnBurn 2, PageBurn 10,
// and a 1 s evaluation ticker under the wall clock (manual Eval
// otherwise). Interval < 0 forces manual evaluation.
type MonitorConfig struct {
	Clock    Clock
	Fast     time.Duration
	Slow     time.Duration
	WarnBurn float64
	PageBurn float64
	Interval time.Duration
	// OnTransition, when set, runs synchronously inside Eval for each
	// state change — keep it fast (log line, channel send).
	OnTransition func(Transition)
}

// Default burn-rate thresholds, the classic multi-window pairing: 2×
// burn in both windows warns (budget gone in half the period), 10×
// pages (budget gone in a tenth of it).
const (
	WarnBurn = 2.0
	PageBurn = 10.0
)

// Monitor evaluates objectives with multi-window burn-rate alerting.
// The burn rate is BadFraction/Budget: 1× means exactly spending the
// error budget. A state escalates only when BOTH the fast and the slow
// window exceed the threshold — the fast window reacts in seconds but
// alone would flap on blips; the slow window confirms the burn is
// sustained. Under a sustained overload the fast window saturates
// first, then the slow window climbs through WarnBurn before PageBurn,
// so an objective visibly walks OK→WARN→PAGE rather than jumping.
//
// Every NewMonitor must be paired with Stop (the obsstop analyzer
// enforces this), even in manual-evaluation mode.
type Monitor struct {
	cfg  MonitorConfig
	objs []Objective

	mu          sync.Mutex
	states      map[string]State
	transitions []Transition
	stopped     bool

	stop chan struct{}
	done chan struct{}
}

// maxTransitions bounds the kept transition log.
const maxTransitions = 256

// NewMonitor builds a monitor over the objectives and, when an
// evaluation interval applies (see MonitorConfig), starts its ticker
// goroutine. Callers must Stop it.
func NewMonitor(cfg MonitorConfig, objs ...Objective) *Monitor {
	if cfg.Clock == nil {
		cfg.Clock = Wall
	}
	if cfg.Fast <= 0 {
		cfg.Fast = FastWindow
	}
	if cfg.Slow <= 0 {
		cfg.Slow = SlowWindow
	}
	if cfg.WarnBurn <= 0 {
		cfg.WarnBurn = WarnBurn
	}
	if cfg.PageBurn <= 0 {
		cfg.PageBurn = PageBurn
	}
	if cfg.Interval == 0 && IsWall(cfg.Clock) {
		cfg.Interval = time.Second
	}
	m := &Monitor{
		cfg:    cfg,
		objs:   objs,
		states: map[string]State{},
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	for _, o := range objs {
		m.states[o.Name()] = OK
	}
	if m.cfg.Interval > 0 {
		par.Go("obs.monitor", m.loop)
	} else {
		close(m.done)
	}
	return m
}

func (m *Monitor) loop() {
	defer close(m.done)
	t := time.NewTicker(m.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-m.stop:
			return
		case <-t.C:
			m.Eval()
		}
	}
}

// Eval evaluates every objective once against the monitor's clock and
// returns the transitions it caused (often none). The ticker calls it
// under the wall clock; fake-clock tests call it directly after each
// Advance.
func (m *Monitor) Eval() []Transition {
	now := m.cfg.Clock.Now()
	var fired []Transition
	for _, o := range m.objs {
		budget := o.Budget()
		if budget <= 0 {
			continue // a zero-budget objective cannot be evaluated
		}
		bf := o.BadFraction(m.cfg.Fast)
		bs := o.BadFraction(m.cfg.Slow)
		burnF, burnS := bf/budget, bs/budget
		next := OK
		switch {
		case burnF >= m.cfg.PageBurn && burnS >= m.cfg.PageBurn:
			next = PAGE
		case burnF >= m.cfg.WarnBurn && burnS >= m.cfg.WarnBurn:
			next = WARN
		}
		m.mu.Lock()
		prev := m.states[o.Name()]
		var tr *Transition
		if next != prev {
			m.states[o.Name()] = next
			t := Transition{
				Objective: o.Name(),
				From:      prev, To: next,
				FromS: prev.String(), ToS: next.String(),
				At:       now,
				BurnFast: burnF, BurnSlow: burnS,
			}
			m.transitions = append(m.transitions, t)
			if len(m.transitions) > maxTransitions {
				m.transitions = m.transitions[len(m.transitions)-maxTransitions:]
			}
			tr = &t
		}
		m.mu.Unlock()
		if tr != nil {
			fired = append(fired, *tr)
			if m.cfg.OnTransition != nil {
				m.cfg.OnTransition(*tr)
			}
		}
	}
	return fired
}

// State returns the current state of the named objective (OK for
// unknown names).
func (m *Monitor) State(name string) State {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.states[name]
}

// Worst returns the most severe current state across the monitor's
// objectives — the single consumable signal for components that key
// decisions on SLO health (the serve autoscaler scales out on a
// sustained non-OK Worst). OK for a nil monitor or one with no
// objectives.
func (m *Monitor) Worst() State {
	if m == nil {
		return OK
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	worst := OK
	for _, st := range m.states {
		if st > worst {
			worst = st
		}
	}
	return worst
}

// States returns a copy of the per-objective state map (nil for a nil
// monitor).
func (m *Monitor) States() map[string]State {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]State, len(m.states))
	for k, v := range m.states {
		out[k] = v
	}
	return out
}

// Transitions returns the recorded state changes, oldest first.
func (m *Monitor) Transitions() []Transition {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Transition(nil), m.transitions...)
}

// Status snapshots every objective for the dashboard: current state
// plus live burn rates in both windows.
func (m *Monitor) Status() []ObjectiveStatus {
	out := make([]ObjectiveStatus, 0, len(m.objs))
	for _, o := range m.objs {
		budget := o.Budget()
		bf := o.BadFraction(m.cfg.Fast)
		bs := o.BadFraction(m.cfg.Slow)
		st := ObjectiveStatus{
			Name: o.Name(), Budget: budget,
			BadFast: bf, BadSlow: bs,
		}
		if budget > 0 {
			st.BurnFast, st.BurnSlow = bf/budget, bs/budget
		}
		m.mu.Lock()
		st.State = m.states[o.Name()].String()
		m.mu.Unlock()
		out = append(out, st)
	}
	return out
}

// Stop halts the evaluation ticker (if any) and waits for it to exit.
// Idempotent and nil-safe.
func (m *Monitor) Stop() {
	if m == nil {
		return
	}
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}
