package obs

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"gpucnn/internal/par"
)

// Frame is one attributed stack frame in a capture summary.
type Frame struct {
	Func  string `json:"func"`
	Count int64  `json:"count"` // goroutine samples (cpu) or in-use bytes (heap)
}

// Capture is one profile taken by the Profiler: the raw pprof protobuf
// (written to Path when a directory is configured) plus a parsed top-N
// frame attribution and the plane's active operation at capture time,
// so a hot profile can be traced back to the sweep cell or serve batch
// that produced it.
type Capture struct {
	Kind  string    `json:"kind"` // "cpu" or "heap"
	Op    string    `json:"op,omitempty"`
	At    time.Time `json:"at"`
	Path  string    `json:"path,omitempty"`
	Bytes int       `json:"bytes"` // raw profile size
	Top   []Frame   `json:"top,omitempty"`
}

// ProfilerConfig tunes a Profiler. Zero values mean: the plane's
// clock, a 30 s capture interval under the wall clock (manual
// CaptureOnce otherwise; Interval < 0 forces manual), 200 ms CPU
// profile duration, top 5 frames, last 16 captures kept in memory,
// and no profile files written (Dir empty).
type ProfilerConfig struct {
	Plane       *Plane
	Clock       Clock
	Dir         string
	Interval    time.Duration
	CPUDuration time.Duration
	TopN        int
	Keep        int
}

// cpuProfileMu serialises CPU profiling process-wide: the runtime
// allows only one active CPU profile.
var cpuProfileMu sync.Mutex

// Profiler periodically captures CPU and heap profiles via
// runtime/pprof. Construction only configures; Start launches the
// periodic loop (a no-op in manual mode) and every NewProfiler must
// reach Stop (enforced by the obsstop analyzer). CaptureOnce works in
// both modes.
type Profiler struct {
	cfg ProfilerConfig

	mu       sync.Mutex
	captures []Capture
	seq      int
	started  bool
	stopped  bool

	stop chan struct{}
	done chan struct{}
}

// NewProfiler builds a profiler. Pair with Stop.
func NewProfiler(cfg ProfilerConfig) *Profiler {
	if cfg.Clock == nil {
		cfg.Clock = cfg.Plane.Clock()
	}
	if cfg.Interval == 0 && IsWall(cfg.Clock) {
		cfg.Interval = 30 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 200 * time.Millisecond
	}
	if cfg.TopN <= 0 {
		cfg.TopN = 5
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 16
	}
	return &Profiler{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
}

// Start launches the periodic capture loop. In manual mode (fake
// clock or negative interval) it is a no-op; call CaptureOnce
// directly. Idempotent.
func (p *Profiler) Start() {
	p.mu.Lock()
	if p.started || p.stopped {
		p.mu.Unlock()
		return
	}
	p.started = true
	manual := p.cfg.Interval <= 0
	p.mu.Unlock()
	if manual {
		close(p.done)
		return
	}
	par.Go("obs.profiler", p.loop)
}

func (p *Profiler) loop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			if _, err := p.CaptureOnce(); err != nil {
				fmt.Fprintf(os.Stderr, "obs: profile capture failed: %v\n", err)
			}
		}
	}
}

// Stop halts the loop (if running) and waits for it. Idempotent.
func (p *Profiler) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		return
	}
	p.stopped = true
	started := p.started
	p.mu.Unlock()
	close(p.stop)
	if started {
		<-p.done
	}
}

// CaptureOnce takes one CPU profile (blocking for the configured CPU
// duration of real time) and one heap snapshot, records both, and
// returns them. The CPU attribution comes from a goroutine-profile
// sample taken mid-capture — the protobuf itself needs external
// tooling, but the sampled top frames answer "where was the process"
// without any dependency.
func (p *Profiler) CaptureOnce() ([]Capture, error) {
	op := p.cfg.Plane.Op()
	now := p.cfg.Clock.Now()

	// CPU: profile for the configured duration, sampling goroutine
	// stacks halfway through for the top-N attribution.
	cpuProfileMu.Lock()
	var cpuBuf bytes.Buffer
	if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
		cpuProfileMu.Unlock()
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	//lint:ignore lockheld cpuProfileMu exists to serialise exactly this capture window
	time.Sleep(p.cfg.CPUDuration / 2)
	var gorBuf bytes.Buffer
	_ = pprof.Lookup("goroutine").WriteTo(&gorBuf, 1)
	//lint:ignore lockheld second half of the capture window the mutex serialises
	time.Sleep(p.cfg.CPUDuration / 2)
	pprof.StopCPUProfile()
	cpuProfileMu.Unlock()

	cpu := Capture{
		Kind: "cpu", Op: op, At: now,
		Bytes: cpuBuf.Len(),
		Top:   topFrames(parseProfileBlocks(gorBuf.String(), false), p.cfg.TopN),
	}

	// Heap: the debug=1 text form is self-describing enough to
	// attribute in-use bytes per allocation site; the protobuf form
	// (debug=0) goes to disk for pprof proper.
	var heapTxt bytes.Buffer
	_ = pprof.Lookup("heap").WriteTo(&heapTxt, 1)
	var heapBin bytes.Buffer
	_ = pprof.Lookup("heap").WriteTo(&heapBin, 0)
	heap := Capture{
		Kind: "heap", Op: op, At: now,
		Bytes: heapBin.Len(),
		Top:   topFrames(parseProfileBlocks(heapTxt.String(), true), p.cfg.TopN),
	}

	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	if p.cfg.Dir != "" {
		if err := os.MkdirAll(p.cfg.Dir, 0o755); err == nil {
			cpu.Path = filepath.Join(p.cfg.Dir, fmt.Sprintf("cpu-%04d.pprof", seq))
			_ = os.WriteFile(cpu.Path, cpuBuf.Bytes(), 0o644)
			heap.Path = filepath.Join(p.cfg.Dir, fmt.Sprintf("heap-%04d.pprof", seq))
			_ = os.WriteFile(heap.Path, heapBin.Bytes(), 0o644)
		}
	}

	p.mu.Lock()
	p.captures = append(p.captures, cpu, heap)
	if len(p.captures) > p.cfg.Keep {
		p.captures = p.captures[len(p.captures)-p.cfg.Keep:]
	}
	p.mu.Unlock()
	return []Capture{cpu, heap}, nil
}

// Captures returns the retained captures, oldest first.
func (p *Profiler) Captures() []Capture {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Capture(nil), p.captures...)
}

// Last returns the most recent capture of the given kind.
func (p *Profiler) Last(kind string) (Capture, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := len(p.captures) - 1; i >= 0; i-- {
		if p.captures[i].Kind == kind {
			return p.captures[i], true
		}
	}
	return Capture{}, false
}

// parseProfileBlocks parses the debug=1 text form shared by the
// runtime's goroutine and heap profiles: blocks headed by
//
//	N @ 0x... 0x...            (goroutine: N identical goroutines)
//	N: B [Nt: Bt] @ 0x...      (heap: N objects, B in-use bytes)
//
// followed by "#\t0xADDR\tfunc+0xOFF\tfile:line" frame lines. Each
// block is attributed to its innermost frame that is not runtime or
// sync plumbing, weighted by N (goroutine) or B (heap bytes).
func parseProfileBlocks(text string, heap bool) map[string]int64 {
	weights := map[string]int64{}
	var weight int64
	attributed := true // no block open yet
	for _, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "goroutine profile:") ||
			strings.HasPrefix(trimmed, "heap profile:") {
			continue
		}
		if !strings.HasPrefix(line, "#") {
			if idx := strings.Index(trimmed, " @ "); idx >= 0 {
				head := trimmed[:idx]
				weight, attributed = blockWeight(head, heap)
			}
			continue
		}
		if attributed {
			continue
		}
		// "#\t0x...\tfunc+0x...\tfile:line"
		fields := strings.Fields(trimmed[1:])
		if len(fields) < 2 {
			continue
		}
		fn := fields[1]
		if i := strings.LastIndex(fn, "+0x"); i >= 0 {
			fn = fn[:i]
		}
		if boringFrame(fn) {
			continue
		}
		weights[fn] += weight
		attributed = true
	}
	return weights
}

// blockWeight extracts the block's weight from its header: the leading
// count for goroutine blocks ("12"), the in-use bytes for heap blocks
// ("3: 4096 [7: 9216]"). ok=false (weight 0) skips the block.
func blockWeight(head string, heap bool) (w int64, skip bool) {
	fields := strings.Fields(head)
	if len(fields) == 0 {
		return 0, true
	}
	if !heap {
		n, err := strconv.ParseInt(fields[0], 10, 64)
		return n, err != nil || n == 0
	}
	if len(fields) < 2 {
		return 0, true
	}
	b, err := strconv.ParseInt(fields[1], 10, 64)
	return b, err != nil || b == 0
}

// boringFrame filters frames that never identify the workload.
func boringFrame(fn string) bool {
	for _, p := range []string{"runtime.", "runtime/", "sync.", "sync/", "internal/poll.", "time.Sleep", "os/signal."} {
		if strings.HasPrefix(fn, p) {
			return true
		}
	}
	return false
}

// topFrames sorts the attribution map and keeps the n heaviest frames.
func topFrames(weights map[string]int64, n int) []Frame {
	out := make([]Frame, 0, len(weights))
	for fn, w := range weights {
		out = append(out, Frame{Func: fn, Count: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Func < out[j].Func
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
