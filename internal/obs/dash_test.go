package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gpucnn/internal/gpusim"
	"gpucnn/internal/telemetry"
)

// TestDashEndpoints mounts the dashboard on telemetry's exporter mux
// and checks both the text and JSON routes end to end.
func TestDashEndpoints(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, time.Minute, time.Second)
	lat := p.Histogram("e2e", []float64{0.001, 0.002, 0.004, 0.008})
	depth := p.Gauge("queue_depth")
	offered := p.Counter("offered")
	p.SetOp("conv3x3/b32")
	p.Section("batcher", func() map[string]any {
		return map[string]any{"max_batch": 32, "policy": "dynamic"}
	})
	m := NewMonitor(MonitorConfig{Clock: fc, Fast: 5 * time.Second, Slow: time.Minute},
		LatencyObjective{ObjName: "e2e-p99", H: lat, Threshold: 0.008, Target: 0.99})
	defer m.Stop()
	p.Watch(m)

	for i := 0; i < 50; i++ {
		lat.Observe(0.003)
		offered.Inc()
	}
	depth.Set(7)
	fc.Advance(time.Second)
	m.Eval()

	mux := telemetry.HandlerMux(telemetry.NewRegistry(), nil)
	Mount(mux, p)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// JSON route: decode into the typed snapshot and spot-check.
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/dash.json", nil))
	if rr.Code != 200 {
		t.Fatalf("dash.json status %d", rr.Code)
	}
	var snap DashSnapshot
	if err := json.Unmarshal(rr.Body.Bytes(), &snap); err != nil {
		t.Fatalf("dash.json decode: %v", err)
	}
	if snap.Op != "conv3x3/b32" {
		t.Errorf("op = %q", snap.Op)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].CountSlow != 50 {
		t.Errorf("histograms = %+v", snap.Histograms)
	}
	if snap.Histograms[0].P99Slow != 0.004 {
		t.Errorf("p99 = %v, want 0.004", snap.Histograms[0].P99Slow)
	}
	if len(snap.SLOs) != 1 || snap.SLOs[0].State != "OK" {
		t.Errorf("slos = %+v", snap.SLOs)
	}
	if snap.Sections["batcher"]["policy"] != "dynamic" {
		t.Errorf("sections = %+v", snap.Sections)
	}

	// Text route: the rendered frame names every surface.
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/dash", nil))
	body := rr.Body.String()
	for _, want := range []string{"e2e-p99", "OK", "queue_depth", "offered", "[batcher]", "op=conv3x3/b32"} {
		if !strings.Contains(body, want) {
			t.Errorf("text dash missing %q in:\n%s", want, body)
		}
	}

	// The telemetry routes still work on the same mux.
	rr = httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/metrics", nil))
	if rr.Code != 200 {
		t.Errorf("/metrics status %d", rr.Code)
	}
}

// TestDeviceSinkFeedsPlane runs a real simulated device with a tee of
// the span recorder and the plane sink, then checks the windowed
// throughput instruments saw the kernels.
func TestDeviceSinkFeedsPlane(t *testing.T) {
	p := NewPlane(Options{Window: time.Minute, Resolution: time.Second})
	sink := NewDeviceSink(p, "0")
	trace := &gpusim.Trace{}
	dev := gpusim.New(gpusim.TeslaK40c())
	dev.SetSink(TeeSinks(trace, sink, nil))

	dev.MustLaunch(gpusim.KernelSpec{
		Name: "gemm", Grid: gpusim.Dim3{X: 1024}, Block: gpusim.Dim3{X: 256},
		RegsPerThread: 32, FLOPs: 1e9,
	})
	dev.Copy(gpusim.Transfer{Bytes: 1 << 20, Pinned: true})

	if got := p.Counter("dev0.kernels").Total(); got != 1 {
		t.Fatalf("kernels = %v, want 1", got)
	}
	if got := p.Counter("dev0.flops").Total(); got != 1e9 {
		t.Fatalf("flops = %v", got)
	}
	if got := p.Counter("dev0.transfers").Total(); got != 1 {
		t.Fatalf("transfers = %v, want 1", got)
	}
	if got := p.Counter("dev0.transfer_bytes").Total(); got != 1<<20 {
		t.Fatalf("transfer bytes = %v", got)
	}
	if trace.Len() != 2 {
		t.Fatalf("tee dropped the recorder leg: %d events", trace.Len())
	}
	if p.Counter("dev0.busy_seconds").Total() <= 0 {
		t.Fatal("busy seconds not accumulated")
	}
}
