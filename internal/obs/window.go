package obs

import (
	"math"
	"sort"
	"sync"
	"time"

	"gpucnn/internal/telemetry"
)

// ring is the shared rotation machinery of the windowed instruments: a
// fixed array of slots, each covering one resolution interval of the
// clock, addressed by the absolute slot number floor((now−epoch)/res).
// Slots are reset lazily — a write or read that lands on a slot whose
// stored number is stale re-zeroes it first — so rotation costs nothing
// when the instrument is idle and there is no background goroutine per
// instrument.
//
// Capacity is ceil(window/res)+1 slots: the k = ceil(window/res) slots
// a full-window query merges (the current, partially filled slot plus
// the k−1 preceding full ones) plus one spare so an in-progress write
// to the oldest queried slot can never alias the newest. A query over
// window W therefore covers between W−res (new slot just opened) and W
// (slot about to close) of history; resolution is the quantisation
// step, not an error bar.
type ring[S any] struct {
	mu    sync.Mutex
	clock Clock
	epoch time.Time
	res   time.Duration
	win   time.Duration
	slots []ringSlot[S]
	zero  S
}

type ringSlot[S any] struct {
	num int64 // absolute slot number, -1 when never used
	val S
}

func slotsFor(win, res time.Duration) int {
	k := int((win + res - 1) / res)
	if k < 1 {
		k = 1
	}
	return k + 1
}

func newRing[S any](clock Clock, win, res time.Duration) *ring[S] {
	if clock == nil {
		clock = Wall
	}
	if res <= 0 {
		res = time.Second
	}
	if win < res {
		win = res
	}
	r := &ring[S]{
		clock: clock,
		epoch: clock.Now(),
		res:   res,
		win:   win,
		slots: make([]ringSlot[S], slotsFor(win, res)),
	}
	for i := range r.slots {
		r.slots[i].num = -1
	}
	return r
}

// current returns the slot for now, resetting it if stale. Callers
// hold r.mu.
func (r *ring[S]) current(now time.Time) *ringSlot[S] {
	num := int64(now.Sub(r.epoch) / r.res)
	if num < 0 {
		num = 0 // clock stepped backwards: pin to the first slot
	}
	s := &r.slots[num%int64(len(r.slots))]
	if s.num != num {
		s.num = num
		s.val = r.zero
	}
	return s
}

// recent visits the k = ceil(w/res) most-recent slots (newest first)
// that are still live, and reports the span of history they cover.
// Callers hold r.mu.
func (r *ring[S]) recent(w time.Duration, visit func(*S)) (covered time.Duration) {
	if w <= 0 || w > r.win {
		w = r.win
	}
	now := r.clock.Now()
	cur := r.current(now) // rotates, so stale slots below self-identify
	num := cur.num
	k := int64((w + r.res - 1) / r.res)
	if k < 1 {
		k = 1
	}
	for i := int64(0); i < k; i++ {
		want := num - i
		if want < 0 {
			break
		}
		s := &r.slots[want%int64(len(r.slots))]
		if s.num == want {
			visit(&s.val)
		}
	}
	partial := now.Sub(r.epoch) - time.Duration(num)*r.res
	covered = time.Duration(k-1)*r.res + partial
	if elapsed := now.Sub(r.epoch); covered > elapsed {
		covered = elapsed
	}
	return covered
}

// series returns the last k per-slot values oldest→newest, zero-filled
// where a slot has aged out or never filled. Callers hold r.mu.
func (r *ring[S]) series(w time.Duration, get func(*S) float64) []float64 {
	if w <= 0 || w > r.win {
		w = r.win
	}
	cur := r.current(r.clock.Now())
	k := int64((w + r.res - 1) / r.res)
	if k < 1 {
		k = 1
	}
	out := make([]float64, k)
	for i := int64(0); i < k; i++ {
		want := cur.num - i
		if want < 0 {
			break
		}
		s := &r.slots[want%int64(len(r.slots))]
		if s.num == want {
			out[k-1-i] = get(&s.val)
		}
	}
	return out
}

// WindowedCounter accumulates a monotonically increasing quantity and
// answers "how much in the last w". The zero window queries the full
// configured window. A nil counter no-ops on writes and reads zero.
type WindowedCounter struct {
	r     *ring[float64]
	total float64
}

// Add accumulates into the current slot; negative deltas are ignored.
func (c *WindowedCounter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	c.r.mu.Lock()
	c.r.current(c.r.clock.Now()).val += v
	c.total += v
	c.r.mu.Unlock()
}

// Inc adds 1.
func (c *WindowedCounter) Inc() { c.Add(1) }

// Total returns the all-time accumulated value.
func (c *WindowedCounter) Total() float64 {
	if c == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.total
}

// Sum returns the accumulation over the last w (0 = full window).
func (c *WindowedCounter) Sum(w time.Duration) float64 {
	if c == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	var sum float64
	c.r.recent(w, func(v *float64) { sum += *v })
	return sum
}

// Rate returns the per-second rate over the last w (0 = full window),
// dividing by the history actually covered so a freshly started
// process is not diluted by an empty window.
func (c *WindowedCounter) Rate(w time.Duration) float64 {
	if c == nil {
		return 0
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	var sum float64
	covered := c.r.recent(w, func(v *float64) { sum += *v })
	if covered <= 0 {
		return 0
	}
	return sum / covered.Seconds()
}

// Series returns per-slot sums oldest→newest over the last w.
func (c *WindowedCounter) Series(w time.Duration) []float64 {
	if c == nil {
		return nil
	}
	c.r.mu.Lock()
	defer c.r.mu.Unlock()
	return c.r.series(w, func(v *float64) float64 { return *v })
}

// gaugeSlot keeps the extrema and final value of one resolution
// interval.
type gaugeSlot struct {
	set      bool
	last     float64
	min, max float64
}

// WindowedGauge tracks an instantaneous value plus its per-slot
// extrema, so the dashboard can show both "queue depth now" and "peak
// queue depth in the last minute". A nil gauge no-ops.
type WindowedGauge struct {
	r   *ring[gaugeSlot]
	cur float64
}

// Set records the value.
func (g *WindowedGauge) Set(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	s := g.r.current(g.r.clock.Now())
	if !s.val.set {
		s.val = gaugeSlot{set: true, last: v, min: v, max: v}
	} else {
		s.val.last = v
		if v < s.val.min {
			s.val.min = v
		}
		if v > s.val.max {
			s.val.max = v
		}
	}
	g.cur = v
	g.r.mu.Unlock()
}

// Add shifts the value by a (possibly negative) delta.
func (g *WindowedGauge) Add(v float64) {
	if g == nil {
		return
	}
	g.r.mu.Lock()
	next := g.cur + v
	s := g.r.current(g.r.clock.Now())
	if !s.val.set {
		s.val = gaugeSlot{set: true, last: next, min: next, max: next}
	} else {
		s.val.last = next
		if next < s.val.min {
			s.val.min = next
		}
		if next > s.val.max {
			s.val.max = next
		}
	}
	g.cur = next
	g.r.mu.Unlock()
}

// Value returns the most recently set value (0 if never set).
func (g *WindowedGauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.cur
}

// Max returns the peak over the last w, or the current value if no
// slot in the window recorded anything.
func (g *WindowedGauge) Max(w time.Duration) float64 {
	if g == nil {
		return 0
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	peak, any := 0.0, false
	g.r.recent(w, func(s *gaugeSlot) {
		if s.set && (!any || s.max > peak) {
			peak, any = s.max, true
		}
	})
	if !any {
		return g.cur
	}
	return peak
}

// Series returns per-slot last values oldest→newest over the last w
// (0 where a slot saw no Set).
func (g *WindowedGauge) Series(w time.Duration) []float64 {
	if g == nil {
		return nil
	}
	g.r.mu.Lock()
	defer g.r.mu.Unlock()
	return g.r.series(w, func(s *gaugeSlot) float64 { return s.last })
}

// histSlot is one resolution interval of bucketed observations.
type histSlot struct {
	counts []uint64
	inf    uint64
	sum    float64
	count  uint64
}

// WindowedHistogram buckets observations per resolution interval and
// merges the live slots into a telemetry.HistogramSnapshot on query,
// so the rolling p99 reuses the same copied-array quantile math as the
// cumulative histograms. A nil histogram no-ops; an empty window
// yields a zero snapshot (NaN quantiles, zero FractionAbove).
type WindowedHistogram struct {
	r      *ring[histSlot]
	bounds []float64
}

// Observe records one value into the current slot.
func (h *WindowedHistogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.r.mu.Lock()
	s := h.r.current(h.r.clock.Now())
	if s.val.counts == nil {
		s.val.counts = make([]uint64, len(h.bounds))
	}
	s.val.sum += v
	s.val.count++
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.bounds) {
		s.val.counts[i]++
	} else {
		s.val.inf++
	}
	h.r.mu.Unlock()
}

// Window merges the last w (0 = full window) into a cumulative
// snapshot.
func (h *WindowedHistogram) Window(w time.Duration) telemetry.HistogramSnapshot {
	if h == nil {
		return telemetry.HistogramSnapshot{}
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	merged := make([]uint64, len(h.bounds))
	snap := telemetry.HistogramSnapshot{Bounds: append([]float64(nil), h.bounds...)}
	h.r.recent(w, func(s *histSlot) {
		for i, c := range s.counts {
			merged[i] += c
		}
		snap.Sum += s.sum
		snap.Count += s.count
	})
	var cum uint64
	snap.Cumulative = make([]uint64, len(merged))
	for i, c := range merged {
		cum += c
		snap.Cumulative[i] = cum
	}
	return snap
}

// Quantile estimates the q-quantile over the last w (0 = full window):
// NaN when the window is empty, +Inf when the rank lands past the last
// bound.
func (h *WindowedHistogram) Quantile(w time.Duration, q float64) float64 {
	return h.Window(w).Quantile(q)
}

// Count returns the observations in the last w.
func (h *WindowedHistogram) Count(w time.Duration) uint64 {
	return h.Window(w).Count
}

// CountSeries returns per-slot observation counts oldest→newest.
func (h *WindowedHistogram) CountSeries(w time.Duration) []float64 {
	if h == nil {
		return nil
	}
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	return h.r.series(w, func(s *histSlot) float64 { return float64(s.count) })
}

// quantileOr returns the quantile or fallback when the window is empty
// (dashboards render 0, not NaN).
func quantileOr(h *WindowedHistogram, w time.Duration, q, fallback float64) float64 {
	v := h.Quantile(w, q)
	if math.IsNaN(v) {
		return fallback
	}
	return v
}
