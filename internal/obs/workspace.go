package obs

import (
	"gpucnn/internal/workspace"
)

// AttachWorkspace surfaces the workspace arena pool on the plane: a
// "workspace" dashboard section with the raw counters, plus gauges for
// the carve hit rate and high-water mark so /debug/dash charts them in
// its windowed instrument table. The gauges are sampled lazily at
// snapshot time (the section callback runs on every dashboard render),
// so the kernels' hot paths pay nothing for the wiring.
func AttachWorkspace(p *Plane) {
	if p == nil {
		return
	}
	hwGauge := p.Gauge("workspace.highwater.bytes")
	hitGauge := p.Gauge("workspace.carve.hitrate")
	p.Section("workspace", func() map[string]any {
		s := workspace.ReadStats()
		hitRate := 1.0
		if s.Carves > 0 {
			hitRate = float64(s.Hits()) / float64(s.Carves)
		}
		hwGauge.Set(float64(s.HighWaterBytes))
		hitGauge.Set(hitRate)
		return map[string]any{
			"gets":            s.Gets,
			"puts":            s.Puts,
			"carves":          s.Carves,
			"slab_grows":      s.SlabGrows,
			"carve_hits":      s.Hits(),
			"carve_hit_rate":  hitRate,
			"highwater_bytes": s.HighWaterBytes,
		}
	})
}
