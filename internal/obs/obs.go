// Package obs is the operational observability plane layered on
// internal/telemetry. Where telemetry answers "what happened over the
// whole run" (monotonic counters, cumulative histograms, span traces),
// obs answers "what is happening right now": rolling time-windowed
// series ("p99 over the last 10 s"), SLO burn-rate monitors with
// OK→WARN→PAGE transitions, periodic CPU/heap profile capture keyed to
// the active operation, and a live /debug/dash HTTP dashboard mounted
// on telemetry's exporter mux.
//
// Every instrument is cheap enough for hot paths (a mutex-guarded ring
// slot update) and every clock-dependent component takes an injectable
// Clock, so window-edge and burn-rate behaviour is deterministic under
// test.
package obs

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the plane. Production code uses Wall;
// tests inject a FakeClock and step it across slot boundaries.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// Wall is the real-time clock.
var Wall Clock = wallClock{}

// IsWall reports whether c is the real-time clock (treating nil as
// wall). Components that poll on their own (Monitor, Profiler) use it
// to default to manual evaluation under a fake clock.
func IsWall(c Clock) bool {
	_, ok := c.(wallClock)
	return c == nil || ok
}

// FakeClock is a manually advanced Clock for deterministic tests.
type FakeClock struct {
	mu sync.Mutex
	t  time.Time
}

// NewFakeClock starts a fake clock at the given instant.
func NewFakeClock(start time.Time) *FakeClock {
	return &FakeClock{t: start}
}

// Now returns the fake instant.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to an absolute instant.
func (c *FakeClock) Set(t time.Time) {
	c.mu.Lock()
	c.t = t
	c.mu.Unlock()
}

type planeKey struct{}

// WithPlane returns a context carrying the plane, mirroring
// telemetry.WithRegistry: sweep and multi-GPU layers pick it up with
// FromContext and feed their windowed instruments without a hard
// dependency on who constructed it.
func WithPlane(ctx context.Context, p *Plane) context.Context {
	return context.WithValue(ctx, planeKey{}, p)
}

// FromContext returns the context's plane, or nil. All plane and
// instrument methods are nil-safe, so call sites need no conditionals.
func FromContext(ctx context.Context) *Plane {
	p, _ := ctx.Value(planeKey{}).(*Plane)
	return p
}
