package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func testPlane(fc *FakeClock, win, res time.Duration) *Plane {
	return NewPlane(Options{Clock: fc, Window: win, Resolution: res})
}

var t0 = time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)

// TestCounterWindowRotation pins the ring semantics: sums drop off
// exactly when their slot ages past the window, and a query at an
// exact slot boundary (new slot just opened, zero partial fill) still
// covers the k−1 preceding full slots.
func TestCounterWindowRotation(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, 10*time.Second, time.Second)
	c := p.Counter("reqs")

	// One Add of 1 at the start of each of the first 5 seconds.
	for i := 0; i < 5; i++ {
		c.Add(1)
		fc.Advance(time.Second)
	}
	// Now exactly at t0+5s, a fresh slot boundary: slots 0..4 hold one
	// each, the current slot 5 is empty.
	if got := c.Sum(0); got != 5 {
		t.Fatalf("full-window Sum = %v, want 5", got)
	}
	// A 3 s query merges k=3 slots: the just-opened empty slot 5 plus
	// slots 4 and 3 — at an exact boundary it covers w−res of history.
	if got := c.Sum(3 * time.Second); got != 2 {
		t.Fatalf("Sum(3s) at a boundary = %v, want 2 (slots 3,4 + empty partial)", got)
	}
	if got := c.Total(); got != 5 {
		t.Fatalf("Total = %v, want 5", got)
	}

	// Advance to t0+12s: the full-window query merges slots 3..12, so
	// the adds in slots 0–2 have aged out.
	fc.Advance(7 * time.Second)
	if got := c.Sum(0); got != 2 {
		t.Fatalf("Sum after aging = %v, want 2 (adds at 3s,4s)", got)
	}
	if got := c.Total(); got != 5 {
		t.Fatalf("Total must never age: %v, want 5", got)
	}

	// One resolution step further ages out the add at 3s.
	fc.Advance(time.Second)
	if got := c.Sum(0); got != 1 {
		t.Fatalf("Sum one slot later = %v, want 1", got)
	}

	// Far future: everything aged out, total intact.
	fc.Advance(time.Hour)
	if got := c.Sum(0); got != 0 {
		t.Fatalf("Sum after an idle hour = %v, want 0", got)
	}
	if got := c.Total(); got != 5 {
		t.Fatalf("Total after an idle hour = %v, want 5", got)
	}
}

// TestCounterExactBoundaryReuse drives the clock far enough that ring
// indices wrap and verifies a stale slot is re-zeroed on reuse rather
// than leaking its old sum into the new interval.
func TestCounterExactBoundaryReuse(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, 3*time.Second, time.Second) // 4 slots
	c := p.Counter("wrap")

	c.Add(100) // slot 0
	// Jump exactly one full ring ahead: slot 4 reuses slot 0's array cell.
	fc.Advance(4 * time.Second)
	c.Add(1)
	if got := c.Sum(0); got != 1 {
		t.Fatalf("Sum after exact ring wrap = %v, want 1 (the 100 must not resurface)", got)
	}
	if got := c.Total(); got != 101 {
		t.Fatalf("Total = %v, want 101", got)
	}
}

func TestCounterRate(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, 10*time.Second, time.Second)
	c := p.Counter("rate")

	// 10 events over 2 s of history — rate must divide by the covered
	// 2 s, not the configured 10 s window.
	c.Add(4)
	fc.Advance(time.Second)
	c.Add(6)
	fc.Advance(time.Second)
	if got := c.Rate(0); math.Abs(got-5) > 1e-9 {
		t.Fatalf("Rate over 2s of history = %v, want 5/s", got)
	}
}

func TestGaugeWindow(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, 10*time.Second, time.Second)
	g := p.Gauge("depth")

	g.Set(3)
	g.Set(9)
	g.Set(4)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %v, want 4", got)
	}
	if got := g.Max(0); got != 9 {
		t.Fatalf("Max = %v, want 9", got)
	}
	g.Add(-4)
	if got := g.Value(); got != 0 {
		t.Fatalf("Value after Add(-4) = %v, want 0", got)
	}

	// The peak ages out with its slot; the current value does not.
	fc.Advance(time.Hour)
	if got := g.Value(); got != 0 {
		t.Fatalf("Value after idle = %v, want 0", got)
	}
	g.Set(2)
	if got := g.Max(0); got != 2 {
		t.Fatalf("Max after aging = %v, want 2", got)
	}
}

// TestHistogramEmptyWindow pins the empty-window semantics the SLO
// layer depends on: NaN quantiles, zero FractionAbove, zero Count.
func TestHistogramEmptyWindow(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, 10*time.Second, time.Second)
	h := p.Histogram("lat", []float64{0.001, 0.01, 0.1})

	if got := h.Quantile(0, 0.99); !math.IsNaN(got) {
		t.Fatalf("empty-window quantile = %v, want NaN", got)
	}
	if got := h.Window(0).FractionAbove(0.01); got != 0 {
		t.Fatalf("empty-window FractionAbove = %v, want 0", got)
	}

	h.Observe(0.05)
	if got := h.Quantile(0, 0.99); got != 0.1 {
		t.Fatalf("quantile = %v, want 0.1", got)
	}

	// Observations age out with their slots: the window goes back to
	// the empty semantics, not to a stale last value.
	fc.Advance(time.Hour)
	if got := h.Count(0); got != 0 {
		t.Fatalf("Count after aging = %v, want 0", got)
	}
	if got := h.Quantile(0, 0.99); !math.IsNaN(got) {
		t.Fatalf("aged-out quantile = %v, want NaN", got)
	}
}

// TestHistogramRollingQuantile checks that the windowed p99 tracks the
// recent distribution, not the lifetime one: a burst of slow requests
// lifts it, and sliding past the burst drops it again.
func TestHistogramRollingQuantile(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, 10*time.Second, time.Second)
	h := p.Histogram("lat", []float64{0.001, 0.002, 0.004, 0.008, 0.016})

	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	if got := h.Quantile(0, 0.99); got != 0.001 {
		t.Fatalf("baseline p99 = %v, want 0.001", got)
	}
	fc.Advance(time.Second)
	for i := 0; i < 100; i++ {
		h.Observe(0.016)
	}
	if got := h.Quantile(0, 0.99); got != 0.016 {
		t.Fatalf("p99 during burst = %v, want 0.016", got)
	}
	// 11 s later both bursts are out of the 10 s window; only fresh
	// fast traffic remains.
	fc.Advance(11 * time.Second)
	h.Observe(0.001)
	if got := h.Quantile(0, 0.99); got != 0.001 {
		t.Fatalf("p99 after burst aged out = %v, want 0.001", got)
	}
}

func TestCounterSeries(t *testing.T) {
	fc := NewFakeClock(t0)
	p := testPlane(fc, 4*time.Second, time.Second)
	c := p.Counter("s")
	c.Add(1)
	fc.Advance(time.Second)
	c.Add(2)
	fc.Advance(time.Second)
	c.Add(3)
	got := c.Series(0)
	want := []float64{0, 1, 2, 3} // k=4 slots, oldest first; slot before t0 empty
	if len(got) != len(want) {
		t.Fatalf("Series len = %d, want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Series = %v, want %v", got, want)
		}
	}
}

// TestNilSafety: every instrument and the plane itself must be safe to
// use as nil, so optional wiring needs no conditionals.
func TestNilSafety(t *testing.T) {
	var p *Plane
	p.SetOp("x")
	if p.Op() != "" {
		t.Fatal("nil plane Op")
	}
	c := p.Counter("c")
	c.Inc()
	c.Add(2)
	if c.Sum(0) != 0 || c.Rate(0) != 0 || c.Total() != 0 || c.Series(0) != nil {
		t.Fatal("nil counter must read zero")
	}
	g := p.Gauge("g")
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 || g.Max(0) != 0 {
		t.Fatal("nil gauge must read zero")
	}
	h := p.Histogram("h", nil)
	h.Observe(1)
	if h.Count(0) != 0 || !math.IsNaN(h.Quantile(0, 0.5)) {
		t.Fatal("nil histogram must read empty")
	}
	snap := p.Dash()
	if len(snap.Counters) != 0 {
		t.Fatal("nil plane Dash must be empty")
	}
}

// TestWindowRace hammers one counter, gauge and histogram from
// concurrent writers while a reader snapshots — the -race gate for the
// ring machinery.
func TestWindowRace(t *testing.T) {
	p := NewPlane(Options{Window: time.Second, Resolution: 50 * time.Millisecond})
	c := p.Counter("c")
	g := p.Gauge("g")
	h := p.Histogram("h", nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				c.Inc()
				g.Set(float64(i))
				h.Observe(float64(i) * 1e-6)
			}
		}()
	}
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = c.Sum(0)
			_ = c.Rate(0)
			_ = g.Max(0)
			_ = h.Quantile(0, 0.99)
			_ = p.Dash()
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	if got := c.Total(); got != 4*3000 {
		t.Fatalf("Total = %v, want %v", got, 4*3000)
	}
}
