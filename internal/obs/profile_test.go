package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCaptureOnce takes a real CPU+heap capture and checks the
// attribution plumbing: kind, op tag, raw bytes, files on disk.
func TestCaptureOnce(t *testing.T) {
	dir := t.TempDir()
	p := NewPlane(Options{})
	p.SetOp("sweep/alexnet/conv2")
	pr := NewProfiler(ProfilerConfig{
		Plane: p, Dir: dir, Interval: -1, CPUDuration: 50 * time.Millisecond,
	})
	defer pr.Stop()
	pr.Start() // manual mode: Start is a no-op, CaptureOnce drives it

	caps, err := pr.CaptureOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 2 || caps[0].Kind != "cpu" || caps[1].Kind != "heap" {
		t.Fatalf("captures = %+v", caps)
	}
	for _, c := range caps {
		if c.Op != "sweep/alexnet/conv2" {
			t.Errorf("%s capture op = %q", c.Kind, c.Op)
		}
		if c.Bytes <= 0 {
			t.Errorf("%s capture has no profile bytes", c.Kind)
		}
		if c.Path == "" {
			t.Errorf("%s capture has no path despite Dir", c.Kind)
			continue
		}
		if fi, err := os.Stat(c.Path); err != nil || fi.Size() == 0 {
			t.Errorf("%s profile file missing or empty: %v", c.Kind, err)
		}
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.pprof"))
	if len(files) != 2 {
		t.Fatalf("profile files on disk = %v", files)
	}

	if last, ok := pr.Last("heap"); !ok || last.Kind != "heap" {
		t.Fatalf("Last(heap) = %+v, %v", last, ok)
	}
	if got := len(pr.Captures()); got != 2 {
		t.Fatalf("Captures = %d, want 2", got)
	}
	pr.Stop()
	pr.Stop() // idempotent
}

// TestParseProfileBlocks feeds hand-written debug=1 dumps through the
// attribution parser.
func TestParseProfileBlocks(t *testing.T) {
	goroutines := `goroutine profile: total 7
4 @ 0x1 0x2 0x3
#	0x1	runtime.gopark+0x1	/go/src/runtime/proc.go:1
#	0x2	gpucnn/internal/serve.(*Server).batchLoop+0x2	/root/repo/internal/serve/batcher.go:10
#	0x3	gpucnn/internal/par.Go.func1+0x3	/root/repo/internal/par/par.go:45

2 @ 0x4 0x5
#	0x4	gpucnn/internal/gemm.Pack+0x4	/root/repo/internal/gemm/pack.go:9
#	0x5	main.main+0x5	/root/repo/cmd/serve/main.go:1

1 @ 0x6
#	0x6	runtime.main+0x6	/go/src/runtime/proc.go:2
`
	got := parseProfileBlocks(goroutines, false)
	if got["gpucnn/internal/serve.(*Server).batchLoop"] != 4 {
		t.Errorf("batchLoop weight = %v", got)
	}
	if got["gpucnn/internal/gemm.Pack"] != 2 {
		t.Errorf("Pack weight = %v", got)
	}
	if len(got) != 2 {
		t.Errorf("parsed frames = %v (runtime-only blocks must be dropped)", got)
	}

	heap := `heap profile: 2: 3072 [4: 8192] @ heap/1048576
1: 2048 [2: 4096] @ 0x1 0x2
#	0x1	gpucnn/internal/mem.(*Arena).Alloc+0x1	/root/repo/internal/mem/arena.go:5
#	0x2	gpucnn/internal/conv.Im2col+0x2	/root/repo/internal/conv/im2col.go:7

1: 1024 [2: 4096] @ 0x3
#	0x3	sync.(*Pool).Get+0x3	/go/src/sync/pool.go:1
`
	hg := parseProfileBlocks(heap, true)
	if hg["gpucnn/internal/mem.(*Arena).Alloc"] != 2048 {
		t.Errorf("Alloc bytes = %v", hg)
	}
	// The sync.Pool block's only frame is plumbing; it attributes to
	// nothing rather than to a misleading name.
	for fn := range hg {
		if strings.HasPrefix(fn, "sync.") {
			t.Errorf("sync frame leaked into attribution: %v", hg)
		}
	}

	top := topFrames(got, 1)
	if len(top) != 1 || top[0].Func != "gpucnn/internal/serve.(*Server).batchLoop" || top[0].Count != 4 {
		t.Errorf("topFrames = %+v", top)
	}
}

// TestProfilerPeriodic runs the real ticker loop briefly.
func TestProfilerPeriodic(t *testing.T) {
	p := NewPlane(Options{})
	pr := NewProfiler(ProfilerConfig{
		Plane: p, Interval: 60 * time.Millisecond, CPUDuration: 20 * time.Millisecond,
	})
	pr.Start()
	deadline := time.Now().Add(3 * time.Second)
	for len(pr.Captures()) == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	pr.Stop()
	if len(pr.Captures()) == 0 {
		t.Fatal("periodic profiler captured nothing")
	}
}
