package obs

import (
	"fmt"

	"gpucnn/internal/gpusim"
)

// DeviceSink feeds a simulated device's event stream into the plane's
// windowed instruments: kernel/transfer counts, simulated busy
// seconds, FLOPs and DRAM traffic, all under a "dev<i>." prefix. The
// rolling GFLOPS a dashboard shows is flops.Sum(w) / w — attained
// throughput over the trailing window, the live counterpart of the
// paper's per-layer GFLOPS tables.
type DeviceSink struct {
	kernels   *WindowedCounter
	transfers *WindowedCounter
	busy      *WindowedCounter // simulated busy seconds
	flops     *WindowedCounter
	dram      *WindowedCounter
	xfer      *WindowedCounter // transferred bytes
}

// NewDeviceSink registers (or reuses) the device's instruments on the
// plane. Nil-safe: a sink over a nil plane records into nil
// instruments, which no-op.
func NewDeviceSink(p *Plane, device string) *DeviceSink {
	pre := fmt.Sprintf("dev%s.", device)
	return &DeviceSink{
		kernels:   p.Counter(pre + "kernels"),
		transfers: p.Counter(pre + "transfers"),
		busy:      p.Counter(pre + "busy_seconds"),
		flops:     p.Counter(pre + "flops"),
		dram:      p.Counter(pre + "dram_bytes"),
		xfer:      p.Counter(pre + "transfer_bytes"),
	}
}

// RecordEvent implements gpusim.TraceSink.
func (s *DeviceSink) RecordEvent(e gpusim.TraceEvent) {
	if s == nil {
		return
	}
	s.busy.Add(e.Duration.Seconds())
	switch e.Category {
	case "transfer":
		s.transfers.Inc()
		s.xfer.Add(float64(e.Bytes))
	default:
		s.kernels.Inc()
		s.flops.Add(e.FLOPs)
		s.dram.Add(e.DRAMBytes)
	}
}

// teeSink fans one event stream out to several sinks.
type teeSink []gpusim.TraceSink

// RecordEvent implements gpusim.TraceSink.
func (t teeSink) RecordEvent(e gpusim.TraceEvent) {
	for _, s := range t {
		s.RecordEvent(e)
	}
}

// TeeSinks combines sinks into one: a device whose SetSink takes a
// single sink can feed both the span-tree recorder and the windowed
// plane. Nil sinks are dropped; zero live sinks yields nil (disable).
func TeeSinks(sinks ...gpusim.TraceSink) gpusim.TraceSink {
	live := make(teeSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
