package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"time"
)

// CounterStat is the dashboard view of one windowed counter.
type CounterStat struct {
	Name     string  `json:"name"`
	Total    float64 `json:"total"`
	SumFast  float64 `json:"sum_fast"`
	SumSlow  float64 `json:"sum_slow"`
	RateFast float64 `json:"rate_fast"` // per second
	RateSlow float64 `json:"rate_slow"`
}

// GaugeStat is the dashboard view of one windowed gauge.
type GaugeStat struct {
	Name    string  `json:"name"`
	Value   float64 `json:"value"`
	MaxSlow float64 `json:"max_slow"`
}

// HistStat is the dashboard view of one windowed histogram; quantiles
// are 0 (not NaN) when a window is empty so the JSON stays valid.
type HistStat struct {
	Name      string    `json:"name"`
	CountFast uint64    `json:"count_fast"`
	CountSlow uint64    `json:"count_slow"`
	P50Fast   float64   `json:"p50_fast"`
	P99Fast   float64   `json:"p99_fast"`
	P50Slow   float64   `json:"p50_slow"`
	P99Slow   float64   `json:"p99_slow"`
	Series    []float64 `json:"series,omitempty"` // per-slot counts, oldest first
}

// DashSnapshot is one self-contained dashboard frame: every windowed
// instrument evaluated over the fast and slow windows, SLO states with
// live burn rates, recent transitions, latest profile attributions and
// the registered info sections. It is the JSON body of
// /debug/dash.json and the input of RenderText.
type DashSnapshot struct {
	At          time.Time                 `json:"at"`
	Op          string                    `json:"op,omitempty"`
	Fast        string                    `json:"fast_window"`
	Slow        string                    `json:"slow_window"`
	Counters    []CounterStat             `json:"counters,omitempty"`
	Gauges      []GaugeStat               `json:"gauges,omitempty"`
	Histograms  []HistStat                `json:"histograms,omitempty"`
	SLOs        []ObjectiveStatus         `json:"slos,omitempty"`
	Transitions []Transition              `json:"transitions,omitempty"`
	Profiles    []Capture                 `json:"profiles,omitempty"`
	Sections    map[string]map[string]any `json:"sections,omitempty"`
	SectionKeys []string                  `json:"-"`
}

// recentTransitions caps the transition tail a snapshot carries.
const recentTransitions = 12

// Dash snapshots the plane. Safe on a nil plane (returns an empty
// frame stamped by the wall clock).
func (p *Plane) Dash() DashSnapshot {
	snap := DashSnapshot{At: p.Clock().Now(), Fast: FastWindow.String()}
	if p == nil {
		snap.Slow = "0s"
		return snap
	}
	fast := FastWindow
	if fast > p.win {
		fast = p.win
	}
	snap.Fast, snap.Slow = fast.String(), p.win.String()

	cNames, gNames, hNames, cs, gs, hs, monitors, profilers, sections, secFns, op := p.instruments()
	snap.Op = op
	for _, name := range cNames {
		c := cs[name]
		snap.Counters = append(snap.Counters, CounterStat{
			Name: name, Total: c.Total(),
			SumFast: c.Sum(fast), SumSlow: c.Sum(0),
			RateFast: c.Rate(fast), RateSlow: c.Rate(0),
		})
	}
	for _, name := range gNames {
		g := gs[name]
		snap.Gauges = append(snap.Gauges, GaugeStat{Name: name, Value: g.Value(), MaxSlow: g.Max(0)})
	}
	for _, name := range hNames {
		h := hs[name]
		snap.Histograms = append(snap.Histograms, HistStat{
			Name:      name,
			CountFast: h.Count(fast), CountSlow: h.Count(0),
			P50Fast: quantileOr(h, fast, 0.5, 0), P99Fast: quantileOr(h, fast, 0.99, 0),
			P50Slow: quantileOr(h, 0, 0.5, 0), P99Slow: quantileOr(h, 0, 0.99, 0),
			Series: h.CountSeries(0),
		})
	}
	for _, m := range monitors {
		snap.SLOs = append(snap.SLOs, m.Status()...)
		snap.Transitions = append(snap.Transitions, m.Transitions()...)
	}
	sort.Slice(snap.Transitions, func(i, j int) bool {
		return snap.Transitions[i].At.Before(snap.Transitions[j].At)
	})
	if len(snap.Transitions) > recentTransitions {
		snap.Transitions = snap.Transitions[len(snap.Transitions)-recentTransitions:]
	}
	for _, pr := range profilers {
		if c, ok := pr.Last("cpu"); ok {
			snap.Profiles = append(snap.Profiles, c)
		}
		if c, ok := pr.Last("heap"); ok {
			snap.Profiles = append(snap.Profiles, c)
		}
	}
	if len(sections) > 0 {
		snap.Sections = map[string]map[string]any{}
		for _, name := range sections {
			if fn := secFns[name]; fn != nil {
				snap.Sections[name] = fn()
				snap.SectionKeys = append(snap.SectionKeys, name)
			}
		}
	}
	return snap
}

func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.4g", v)
}

func fmtSecs(v float64) string {
	return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
}

// RenderText writes the frame as an aligned plain-text dashboard — the
// body of /debug/dash and of each cmd/obswatch refresh.
func (s DashSnapshot) RenderText(w io.Writer) {
	fmt.Fprintf(w, "obs dash @ %s", s.At.Format("15:04:05.000"))
	if s.Op != "" {
		fmt.Fprintf(w, "   op=%s", s.Op)
	}
	fmt.Fprintf(w, "   windows fast=%s slow=%s\n", s.Fast, s.Slow)

	if len(s.SLOs) > 0 {
		fmt.Fprintf(w, "\nSLO%-21s %-5s %9s %10s %10s\n", "", "state", "budget", "burn-fast", "burn-slow")
		for _, o := range s.SLOs {
			fmt.Fprintf(w, "  %-22s %-5s %9.4g %10.2f %10.2f\n",
				o.Name, o.State, o.Budget, o.BurnFast, o.BurnSlow)
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(w, "\n%-24s %8s %10s %10s %10s %10s\n",
			"latency", "n(slow)", "p50-fast", "p99-fast", "p50-slow", "p99-slow")
		for _, h := range s.Histograms {
			fmt.Fprintf(w, "  %-22s %8d %10s %10s %10s %10s\n",
				h.Name, h.CountSlow,
				fmtSecs(h.P50Fast), fmtSecs(h.P99Fast), fmtSecs(h.P50Slow), fmtSecs(h.P99Slow))
		}
	}
	if len(s.Counters) > 0 {
		fmt.Fprintf(w, "\n%-24s %12s %12s %12s\n", "counter", "total", "rate-fast/s", "rate-slow/s")
		for _, c := range s.Counters {
			fmt.Fprintf(w, "  %-22s %12s %12.4g %12.4g\n", c.Name, fmtNum(c.Total), c.RateFast, c.RateSlow)
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(w, "\n%-24s %12s %12s\n", "gauge", "value", "max(slow)")
		for _, g := range s.Gauges {
			fmt.Fprintf(w, "  %-22s %12s %12s\n", g.Name, fmtNum(g.Value), fmtNum(g.MaxSlow))
		}
	}
	for _, name := range s.SectionKeys {
		sec := s.Sections[name]
		fmt.Fprintf(w, "\n[%s]\n", name)
		keys := make([]string, 0, len(sec))
		for k := range sec {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, "  %-22s %v\n", k, sec[k])
		}
	}
	if len(s.Profiles) > 0 {
		fmt.Fprintf(w, "\nprofiles\n")
		for _, c := range s.Profiles {
			fmt.Fprintf(w, "  %-4s @ %s", c.Kind, c.At.Format("15:04:05"))
			if c.Op != "" {
				fmt.Fprintf(w, " op=%s", c.Op)
			}
			var tops []string
			for _, f := range c.Top {
				tops = append(tops, fmt.Sprintf("%s(%d)", f.Func, f.Count))
			}
			if len(tops) > 0 {
				fmt.Fprintf(w, "  top: %s", strings.Join(tops, ", "))
			}
			fmt.Fprintln(w)
		}
	}
	if len(s.Transitions) > 0 {
		fmt.Fprintf(w, "\ntransitions\n")
		for _, t := range s.Transitions {
			fmt.Fprintf(w, "  %s  %-22s %s -> %s  (burn fast %.2f slow %.2f)\n",
				t.At.Format("15:04:05.000"), t.Objective, t.FromS, t.ToS, t.BurnFast, t.BurnSlow)
		}
	}
}

// Mount registers the dashboard routes on a mux (typically the one
// from telemetry.HandlerMux):
//
//	/debug/dash       plain-text frame
//	/debug/dash.json  DashSnapshot JSON
func Mount(mux *http.ServeMux, p *Plane) {
	mux.HandleFunc("/debug/dash", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		p.Dash().RenderText(w)
	})
	mux.HandleFunc("/debug/dash.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Dash())
	})
}

// DashHandler returns a standalone handler serving only the dashboard
// routes, for embedders without a telemetry mux.
func DashHandler(p *Plane) http.Handler {
	mux := http.NewServeMux()
	Mount(mux, p)
	return mux
}
