package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are the constant label set of one metric series.
type Labels map[string]string

// render serialises labels in sorted order for series identity and
// Prometheus output ("" for the empty set).
func (l Labels) render(extra ...string) string {
	if len(l) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, l[k])
	}
	// extra holds pre-rendered k="v" pairs (the histogram le label).
	for i, kv := range extra {
		if i > 0 || len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv)
	}
	b.WriteByte('}')
	return b.String()
}

func (l Labels) clone() Labels {
	c := make(Labels, len(l))
	for k, v := range l {
		c[k] = v
	}
	return c
}

// Registry is a process-wide collection of counters, gauges and
// histograms. Series are identified by name plus label set; asking for
// the same series twice returns the same instrument. Safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family // by metric name
	order    []string           // family registration order
}

type family struct {
	name   string
	typ    string // "counter", "gauge", "histogram"
	help   string
	series map[string]any // by rendered labels
	sorder []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var std = NewRegistry()

// Default returns the process-wide registry, for code without a
// registry of its own.
func Default() *Registry { return std }

// Help sets the # HELP text of a metric family.
func (r *Registry) Help(name, text string) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		f.help = text
	} else {
		r.families[name] = &family{name: name, help: text, series: make(map[string]any)}
		r.order = append(r.order, name)
	}
	return r
}

// lookup finds or creates the series, enforcing one type per family.
func (r *Registry) lookup(name, typ string, labels Labels, make_ func() any) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, typ: typ, series: make(map[string]any)}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.typ == "" {
		f.typ = typ // family pre-created by Help
	}
	if f.typ != typ {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	key := labels.render()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make_()
	f.series[key] = s
	f.sorder = append(f.sorder, key)
	return s
}

// Counter returns the monotonically increasing series.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.lookup(name, "counter", labels, func() any { return &Counter{} }).(*Counter)
}

// Gauge returns the set-to-current-value series.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.lookup(name, "gauge", labels, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram returns the bucketed-distribution series. The bucket bounds
// of the first registration win; later calls may pass nil.
func (r *Registry) Histogram(name string, labels Labels, buckets []float64) *Histogram {
	return r.lookup(name, "histogram", labels, func() any {
		if len(buckets) == 0 {
			buckets = DefaultLatencyBuckets
		}
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		return &Histogram{buckets: bs, counts: make([]uint64, len(bs))}
	}).(*Histogram)
}

// ExpBuckets builds n exponentially growing bucket bounds:
// start, start·factor, start·factor², …
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("telemetry: ExpBuckets requires start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefaultLatencyBuckets spans 1 µs … ~8 s in powers of two — wide
// enough for a single elementwise kernel up to a full VGG iteration.
var DefaultLatencyBuckets = ExpBuckets(1e-6, 2, 24)

// Counter is a monotonically increasing float64 (atomic).
type Counter struct{ bits atomic.Uint64 }

// Add increases the counter; negative deltas are ignored.
func (c *Counter) Add(v float64) {
	if v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		if c.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the counter.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous float64 (atomic).
type Gauge struct{ bits atomic.Uint64 }

// Set stores the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the value by a (possibly negative) delta.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into exponential (or caller-chosen)
// buckets, Prometheus-style: cumulative on export, with sum and count.
type Histogram struct {
	mu      sync.Mutex
	buckets []float64 // upper bounds, ascending
	counts  []uint64  // per-bucket (non-cumulative)
	inf     uint64    // observations above the last bound
	sum     float64
	count   uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.count++
	i := sort.SearchFloat64s(h.buckets, v)
	if i == len(h.buckets) {
		h.inf++
		return
	}
	h.counts[i]++
}

// HistogramSnapshot is a consistent copy of a histogram's state with
// cumulative bucket counts (the Prometheus le semantics).
type HistogramSnapshot struct {
	Bounds     []float64 `json:"bounds"`
	Cumulative []uint64  `json:"cumulative"`
	Sum        float64   `json:"sum"`
	Count      uint64    `json:"count"`
}

// Snapshot copies the histogram state under one lock acquisition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds:     append([]float64(nil), h.buckets...),
		Cumulative: make([]uint64, len(h.counts)),
		Sum:        h.sum,
		Count:      h.count,
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		s.Cumulative[i] = cum
	}
	return s
}

// Quantile estimates the q-quantile through a fresh Snapshot. All
// quantile math runs on the snapshot's copied bucket array — never on
// the live buckets — so concurrent Observe calls can at worst make the
// estimate one observation stale, not inconsistent.
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucketed
// counts: the upper bound of the bucket holding the q-th observation,
// Prometheus histogram_quantile style. An empty snapshot returns NaN;
// a rank above the last finite bound returns +Inf (the observation
// landed in the overflow bucket, beyond the instrumented range).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	if q <= 0 {
		q = math.SmallestNonzeroFloat64
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	for i, c := range s.Cumulative {
		if c >= rank {
			return s.Bounds[i]
		}
	}
	return math.Inf(1)
}

// FractionAbove estimates the fraction of observations strictly above
// v, resolved at bucket granularity: observations in the bucket whose
// upper bound is the smallest bound ≥ v count as "at or below v".
// Callers alerting on latency thresholds should align the threshold
// with a bucket bound to avoid the quantisation. Returns 0 for an
// empty snapshot.
func (s HistogramSnapshot) FractionAbove(v float64) float64 {
	if s.Count == 0 {
		return 0
	}
	below := s.Count // v beyond the last bound: only the overflow bucket is above, and it is unbounded — count nothing as above
	for i, b := range s.Bounds {
		if b >= v {
			below = s.Cumulative[i]
			break
		}
	}
	return float64(s.Count-below) / float64(s.Count)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}
