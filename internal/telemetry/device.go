package telemetry

import (
	"gpucnn/internal/gpusim"
)

// CollectDevice snapshots a simulated device's cumulative state into
// the registry as gauges: simulated clock components, launch count,
// memory accountant state, and the profiler's per-kernel totals (the
// paper's Figure 4 hotspot data, now scrapeable).
func CollectDevice(r *Registry, dev *gpusim.Device, labels Labels) {
	r.Help("gpusim_kernel_time_seconds", "Accumulated simulated kernel execution time.")
	r.Gauge("gpusim_kernel_time_seconds", labels).Set(dev.KernelTime().Seconds())
	r.Help("gpusim_transfer_time_seconds", "Accumulated critical-path transfer time.")
	r.Gauge("gpusim_transfer_time_seconds", labels).Set(dev.TransferTime().Seconds())
	r.Help("gpusim_hidden_transfer_time_seconds", "Accumulated compute-overlapped transfer time.")
	r.Gauge("gpusim_hidden_transfer_time_seconds", labels).Set(dev.HiddenTransferTime().Seconds())
	r.Help("gpusim_elapsed_seconds", "Simulated wall clock: kernels plus visible transfers.")
	r.Gauge("gpusim_elapsed_seconds", labels).Set(dev.Elapsed().Seconds())
	r.Help("gpusim_launches", "Kernels launched on the device.")
	r.Gauge("gpusim_launches", labels).Set(float64(dev.Launches()))

	r.Help("gpusim_mem_used_bytes", "Live device memory.")
	r.Gauge("gpusim_mem_used_bytes", labels).Set(float64(dev.Mem.Used()))
	r.Help("gpusim_mem_peak_bytes", "Peak device memory (the paper's Figure 5 quantity).")
	r.Gauge("gpusim_mem_peak_bytes", labels).Set(float64(dev.Mem.Peak()))
	r.Help("gpusim_mem_total_bytes", "Device memory capacity.")
	r.Gauge("gpusim_mem_total_bytes", labels).Set(float64(dev.Mem.Total()))

	r.Help("gpusim_kernel_total_seconds", "Per-kernel summed simulated time (Figure 4 hotspots).")
	r.Help("gpusim_kernel_launches", "Per-kernel launch count.")
	r.Help("gpusim_kernel_flops", "Per-kernel cumulative FLOPs.")
	r.Help("gpusim_kernel_dram_bytes", "Per-kernel cumulative DRAM traffic.")
	for _, k := range dev.Prof.Kernels() {
		kl := labels.clone()
		kl["kernel"] = k.Name
		r.Gauge("gpusim_kernel_total_seconds", kl).Set(k.Total.Seconds())
		r.Gauge("gpusim_kernel_launches", kl).Set(float64(k.Launches))
		r.Gauge("gpusim_kernel_flops", kl).Set(k.FLOPs)
		r.Gauge("gpusim_kernel_dram_bytes", kl).Set(k.DRAMBytes)
	}
}
