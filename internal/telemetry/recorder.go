package telemetry

import (
	"sync"

	"gpucnn/internal/gpusim"
)

// Recorder adapts a gpusim.Device's trace stream into the span tree: it
// implements gpusim.TraceSink and appends every kernel launch and
// host↔device copy to its currently attached span. Instrumented layers
// move the attach point as they start and finish, so device events land
// under the layer and phase that issued them.
type Recorder struct {
	mu  sync.Mutex
	cur *Span

	// Optional: device-work counters bumped on every event.
	reg    *Registry
	labels Labels
}

// NewRecorder creates a detached recorder. Attach a span before
// driving the device, and install it with gpusim.Device.SetSink.
func NewRecorder() *Recorder { return &Recorder{} }

// CountInto additionally accumulates every event into the registry's
// gpusim_* counters under the given constant labels.
func (r *Recorder) CountInto(reg *Registry, labels Labels) *Recorder {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	r.reg, r.labels = reg, labels
	r.mu.Unlock()
	return r
}

// Attach points the recorder at a span and returns the previous one.
func (r *Recorder) Attach(s *Span) (prev *Span) {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	prev, r.cur = r.cur, s
	r.mu.Unlock()
	return prev
}

// Current returns the attach point.
func (r *Recorder) Current() *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cur
}

// RecordEvent implements gpusim.TraceSink.
func (r *Recorder) RecordEvent(e gpusim.TraceEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	cur, reg, labels := r.cur, r.reg, r.labels
	r.mu.Unlock()
	cur.AddEvent(Event{
		Name:      e.Name,
		Cat:       e.Category,
		Start:     e.Start,
		Dur:       e.Duration,
		FLOPs:     e.FLOPs,
		DRAMBytes: e.DRAMBytes,
		Bytes:     e.Bytes,
	})
	if reg == nil {
		return
	}
	if e.Category == "transfer" {
		reg.Counter("gpusim_transfers_total", labels).Inc()
		reg.Counter("gpusim_transfer_bytes_total", labels).Add(float64(e.Bytes))
	} else {
		reg.Counter("gpusim_kernel_launches_total", labels).Inc()
		reg.Counter("gpusim_flops_total", labels).Add(e.FLOPs)
		reg.Counter("gpusim_dram_bytes_total", labels).Add(e.DRAMBytes)
	}
}

// StartPhase opens a child span of the current attach point, attaches
// it, and returns the closure that ends it and restores the parent.
// The convolution engines call this (through a small interface, so they
// need no telemetry import) around their Forward / BackwardData /
// BackwardFilter kernel sequences — the per-phase attribution the fbfft
// evaluation methodology is built on.
func (r *Recorder) StartPhase(name string) func() {
	if r == nil {
		return func() {}
	}
	r.mu.Lock()
	parent := r.cur
	r.mu.Unlock()
	if parent == nil {
		return func() {}
	}
	sp := parent.Child(name)
	r.Attach(sp)
	return func() {
		sp.End()
		r.Attach(parent)
	}
}
