package telemetry

import (
	"testing"
	"time"
)

// TestEndIfOpen pins the guard idiom's contract: exactly one end call
// wins, EndIfOpen reports whether it was the one, and End is now sugar
// for it.
func TestEndIfOpen(t *testing.T) {
	tr := NewTracer()
	sp := tr.Root("guarded")
	if sp.Ended() {
		t.Fatal("fresh span reports Ended")
	}
	if !sp.EndIfOpen() {
		t.Fatal("first EndIfOpen did not close the span")
	}
	if !sp.Ended() {
		t.Fatal("span not ended after EndIfOpen")
	}
	if sp.EndIfOpen() {
		t.Fatal("second EndIfOpen claimed to close an ended span")
	}
}

// TestEndIfOpenAfterEnd checks the deferred-guard ordering: an explicit
// End on the success path wins, and the deferred EndIfOpen is a no-op
// that does not overwrite the captured duration.
func TestEndIfOpenAfterEnd(t *testing.T) {
	tr := NewTracer()
	sp := tr.Root("batch")
	sp.End()
	dur := sp.WallDuration()
	time.Sleep(2 * time.Millisecond)
	if sp.EndIfOpen() {
		t.Fatal("EndIfOpen re-closed a span End had already closed")
	}
	if got := sp.WallDuration(); got != dur {
		t.Fatalf("EndIfOpen overwrote wall duration: %v -> %v", dur, got)
	}
}

// TestEndIfOpenNil: nil-safety matches the rest of the Span API.
func TestEndIfOpenNil(t *testing.T) {
	var sp *Span
	if sp.EndIfOpen() {
		t.Fatal("nil span claimed to close")
	}
	if !sp.Ended() {
		t.Fatal("nil span should report Ended")
	}
}

// TestEndIfOpenGuardIdiom runs the documented house pattern through a
// panicking body and asserts the span still closes — the exact leak the
// spanend analyzer exists to prevent.
func TestEndIfOpenGuardIdiom(t *testing.T) {
	tr := NewTracer()
	func() {
		defer func() { _ = recover() }()
		sp := tr.Root("doomed")
		defer sp.EndIfOpen()
		panic("engine exploded")
	}()
	roots := tr.Roots()
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	if !roots[0].Ended() {
		t.Fatal("panic path leaked an open span despite deferred EndIfOpen")
	}
}
